// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results). Run with:
//
//	go test -bench=. -benchmem
//
// The timing benchmarks use a moderate dataset size so the suite finishes
// quickly; cmd/elinda-bench runs the same experiments at larger scales.
package elinda_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"elinda"
	"elinda/internal/core"
	"elinda/internal/datagen"
	"elinda/internal/decomposer"
	"elinda/internal/incremental"
	"elinda/internal/ontology"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
)

// benchPersons is the dataset scale of the in-suite benchmarks.
const benchPersons = 5000

var (
	benchOnce sync.Once
	benchSys  *elinda.System
	benchErr  error
)

// system lazily builds one shared dataset for all benchmarks.
func system(b *testing.B) *elinda.System {
	benchOnce.Do(func() {
		cfg := elinda.DefaultDataConfig()
		cfg.Persons = benchPersons
		ds := elinda.GenerateDBpediaLike(cfg)
		benchSys, benchErr = elinda.Open(ds.Triples)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSys
}

// BenchmarkFig1InitialChart regenerates Figure 1: the initial pane over
// the DBpedia-like dataset — root pane statistics plus the subclass chart
// of owl:Thing with bars sorted by decreasing height.
func BenchmarkFig1InitialChart(b *testing.B) {
	sys := system(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pane := sys.Explorer.OpenRootPane()
		_ = pane.Stats()
		chart := pane.SubclassChart()
		if len(chart.Bars) != 49 {
			b.Fatalf("top-level bars = %d, want 49", len(chart.Bars))
		}
	}
}

// BenchmarkFig2ExplorationPath regenerates Figure 2: the exploration path
// owl:Thing → Agent → Person → Philosopher followed by the influencedBy
// object expansion ("persons influencing philosophers").
func BenchmarkFig2ExplorationPath(b *testing.B) {
	sys := system(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := sys.Explorer.StartExploration()
		for _, class := range []string{"Agent", "Person", "Philosopher"} {
			if _, err := x.ExpandByText(class, core.SubclassExpansion); err != nil {
				b.Fatal(err)
			}
		}
		pane := sys.Explorer.OpenPane(datagen.Ont("Philosopher"))
		chart, err := pane.ConnectionsChart(datagen.Ont("influencedBy"), false)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := chart.BarByText("Scientist"); !ok {
			b.Fatal("Scientist bar missing")
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: the level-zero outgoing and
// incoming property expansions under the three store configurations
// (generic engine playing Virtuoso, decomposer, HVS hit). The paper's
// numbers: 454s/124s vs 1.5s/1.2s vs ~80ms — the claim is the ordering
// and the orders-of-magnitude gaps, which these sub-benchmarks exhibit.
func BenchmarkFig4(b *testing.B) {
	sys := system(b)
	queries := map[string]string{
		"outgoing": core.PropertyExpansionSPARQL(rdf.OWLThingIRI, false),
		"incoming": core.PropertyExpansionSPARQL(rdf.OWLThingIRI, true),
	}
	configs := []struct {
		name string
		opts proxy.Options
		warm bool
	}{
		{"Virtuoso", proxy.Options{DisableHVS: true, DisableDecomposer: true}, false},
		{"Decomposer", proxy.Options{DisableHVS: true}, false},
		{"HVS", proxy.Options{HeavyThreshold: time.Nanosecond}, true},
	}
	for _, cfg := range configs {
		for dir, q := range queries {
			b.Run(cfg.name+"/"+dir, func(b *testing.B) {
				sys.Proxy.SetOptions(cfg.opts)
				sys.Proxy.HVS().Invalidate()
				if cfg.warm {
					if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTextFactsTopClasses regenerates T1: the 49 top-level classes
// and the 22 empty ones.
func BenchmarkTextFactsTopClasses(b *testing.B) {
	sys := system(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := ontology.Build(sys.Store)
		tops := h.DirectSubclasses(h.Root())
		empty := h.EmptyClasses(true)
		if len(tops) != 49 || len(empty) != 22 {
			b.Fatalf("T1 mismatch: %d tops, %d empty", len(tops), len(empty))
		}
	}
}

// BenchmarkTextFactsPolitician regenerates T2: Politician property
// distribution with the 20% coverage threshold (38 properties).
func BenchmarkTextFactsPolitician(b *testing.B) {
	sys := system(b)
	pane := sys.Explorer.OpenPane(datagen.Ont("Politician"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chart := pane.PropertyChart(false, 0.20)
		if len(chart.Bars) != 38 {
			b.Fatalf("T2 mismatch: %d bars above threshold", len(chart.Bars))
		}
	}
}

// BenchmarkTextFactsPhilosopherIngoing regenerates T3: the 9 ingoing
// properties of Philosopher above the threshold.
func BenchmarkTextFactsPhilosopherIngoing(b *testing.B) {
	sys := system(b)
	pane := sys.Explorer.OpenPane(datagen.Ont("Philosopher"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chart := pane.PropertyChart(true, 0.20)
		if len(chart.Bars) != 9 {
			b.Fatalf("T3 mismatch: %d bars", len(chart.Bars))
		}
	}
}

// BenchmarkIncrementalSweep regenerates T4: chart construction in chunks
// of N triples, for several N (the administrator's configuration knob).
func BenchmarkIncrementalSweep(b *testing.B) {
	sys := system(b)
	total := sys.Store.Len()
	for _, div := range []int{20, 5, 1} {
		n := total/div + 1
		b.Run(fmt.Sprintf("N=total_div_%d", div), func(b *testing.B) {
			ev := incremental.New(sys.Store, incremental.Config{ChunkSize: n})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg := incremental.NewPropertyAggregator(nil, false)
				if _, err := ev.Run(context.Background(), agg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalParallel measures the parallel sharded evaluator on
// the DBpedia-like dataset for P = 1, 2, 4, 8 workers: the Philosopher
// pane's incremental property chart (the paper's running example — a
// chart-expansion workload where the membership-filtered scan dominates
// and shard merges stay small, so the shards scale). Speedup over P=1
// requires GOMAXPROCS cores to run the shards on.
func BenchmarkIncrementalParallel(b *testing.B) {
	sys := system(b)
	total := sys.Store.Len()
	pid, ok := sys.Store.Dict().Lookup(datagen.Ont("Philosopher"))
	if !ok {
		b.Fatal("Philosopher class missing")
	}
	set := sys.Store.SubjectsOfType(pid)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			ev := incremental.New(sys.Store, incremental.Config{ChunkSize: total/5 + 1, Workers: p})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg := incremental.NewPropertyAggregator(set, false)
				if _, err := ev.Run(context.Background(), agg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkErrorDetection regenerates T5: the birthPlace object expansion
// on Person that surfaces the erroneous Food bar.
func BenchmarkErrorDetection(b *testing.B) {
	sys := system(b)
	pane := sys.Explorer.OpenPane(datagen.Ont("Person"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chart, err := pane.ConnectionsChart(datagen.Ont("birthPlace"), false)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := chart.BarByText("Food"); !ok {
			b.Fatal("T5: Food bar missing")
		}
	}
}

// BenchmarkAblationHVSThreshold regenerates A1: the same mixed workload
// under different heaviness thresholds — lower thresholds cache more and
// run faster on repeats.
func BenchmarkAblationHVSThreshold(b *testing.B) {
	sys := system(b)
	workload := []string{
		core.PropertyExpansionSPARQL(datagen.Ont("Person"), false),
		core.PropertyExpansionSPARQL(datagen.Ont("Politician"), false),
		`SELECT ?s WHERE { ?s a ` + datagen.Ont("Philosopher").String() + ` . }`,
	}
	for _, th := range []time.Duration{time.Microsecond, time.Millisecond, 100 * time.Millisecond, time.Second} {
		b.Run(th.String(), func(b *testing.B) {
			sys.Proxy.SetOptions(proxy.Options{HeavyThreshold: th, DisableDecomposer: true})
			sys.Proxy.HVS().Invalidate()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range workload {
					if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationDecomposer regenerates A2: generic engine vs
// decomposer for property expansions at different hierarchy levels.
func BenchmarkAblationDecomposer(b *testing.B) {
	sys := system(b)
	classes := []rdf.Term{datagen.Ont("Person"), datagen.Ont("Politician"), datagen.Ont("Philosopher")}
	for _, class := range classes {
		q := core.PropertyExpansionSPARQL(class, false)
		b.Run("generic/"+class.LocalName(), func(b *testing.B) {
			sys.Proxy.SetOptions(proxy.Options{DisableHVS: true, DisableDecomposer: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decomposed/"+class.LocalName(), func(b *testing.B) {
			sys.Proxy.SetOptions(proxy.Options{DisableHVS: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDictionaryEncoding is the dictionary-encoding ablation from
// DESIGN.md: interning cost per triple during a bulk load.
func BenchmarkDictionaryEncoding(b *testing.B) {
	cfg := elinda.DefaultDataConfig()
	cfg.Persons = 500
	ds := elinda.GenerateDBpediaLike(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elinda.Open(ds.Triples); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(ds.Triples)))
}

// BenchmarkDecomposerEquivalence keeps the correctness property hot in
// the benchmark suite: decomposed results must equal generic results
// while being measured.
func BenchmarkDecomposerEquivalence(b *testing.B) {
	sys := system(b)
	d := decomposer.New(sys.Store)
	phil, _ := sys.Store.Dict().Lookup(datagen.Ont("Philosopher"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := d.PropertyStats(phil, decomposer.Outgoing)
		if len(stats) == 0 {
			b.Fatal("no stats")
		}
	}
}
