package elinda_test

import (
	"context"
	"fmt"
	"time"

	"elinda"
	"elinda/internal/core"
	"elinda/internal/datagen"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
)

// ExampleOpen shows the minimal path from triples to a chart.
func ExampleOpen() {
	triples, _ := rdf.ParseNTriples(`
<http://x/Person> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#Class> .
<http://x/Person> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://www.w3.org/2002/07/owl#Thing> .
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#Thing> .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#Thing> .
`)
	sys, err := elinda.Open(triples)
	if err != nil {
		fmt.Println(err)
		return
	}
	chart := sys.Explorer.OpenRootPane().SubclassChart()
	for _, b := range chart.Bars {
		fmt.Printf("%s: %d\n", b.LabelText, b.Count)
	}
	// Output:
	// Person: 2
}

// ExampleExploration walks the paper's drill-down path and prints the
// breadcrumb trail.
func ExampleExploration() {
	ds := elinda.GenerateDBpediaLike(elinda.DataConfig{Seed: 1, Persons: 200, PoliticianProps: 40})
	sys, err := elinda.Open(ds.Triples)
	if err != nil {
		fmt.Println(err)
		return
	}
	x := sys.Explorer.StartExploration()
	x.ExpandByText("Agent", core.SubclassExpansion)
	x.ExpandByText("Person", core.SubclassExpansion)
	x.ExpandByText("Philosopher", core.SubclassExpansion)
	fmt.Println(x.Breadcrumbs())
	// Output:
	// Thing → Agent → Person → Philosopher
}

// ExampleSystem_Proxy runs the paper's heavy query through the proxy
// twice and reports the route of each answer.
func ExampleSystem_Proxy() {
	ds := elinda.GenerateDBpediaLike(elinda.DataConfig{Seed: 1, Persons: 200, PoliticianProps: 40})
	// A nanosecond threshold marks every query heavy, so the repeat is
	// served from the HVS.
	sys, err := elinda.OpenWithOptions(ds.Triples, proxy.Options{HeavyThreshold: time.Nanosecond})
	if err != nil {
		fmt.Println(err)
		return
	}
	q := core.PropertyExpansionSPARQL(rdf.OWLThingIRI, false)
	_, tr1, _ := sys.Proxy.QueryTraced(context.Background(), q)
	_, tr2, _ := sys.Proxy.QueryTraced(context.Background(), q)
	fmt.Println(tr1.Route, "then", tr2.Route)
	// Output:
	// decomposer then hvs
}

// ExamplePane_PropertyChart shows the coverage-threshold filter on the
// Philosopher pane (the paper's 9 ingoing properties).
func ExamplePane_PropertyChart() {
	ds := elinda.GenerateDBpediaLike(elinda.DataConfig{Seed: 1, Persons: 200, PoliticianProps: 40})
	sys, err := elinda.Open(ds.Triples)
	if err != nil {
		fmt.Println(err)
		return
	}
	pane := sys.Explorer.OpenPane(datagen.Ont("Philosopher"))
	chart := pane.PropertyChart(true, 0.20)
	fmt.Printf("%d ingoing properties cross the 20%% threshold\n", len(chart.Bars))
	// Output:
	// 9 ingoing properties cross the 20% threshold
}
