// Package elinda is the public facade of the eLinda linked-data explorer,
// a Go reproduction of "eLinda: Explorer for Linked Data" (Mishali, Yahav,
// Kalinsky, Kimelfeld — EDBT 2018).
//
// eLinda explores an RDF graph through bar charts: each chart shows the
// distribution of a URI set over classes or properties, and each bar can
// be expanded further (subclass, property, and object expansions — see
// internal/core for the formal model). The serving architecture combines
// three responsiveness techniques from the paper: chunked incremental
// evaluation, a heavy-query store (HVS), and a query decomposer backed by
// specialized aggregate indexes.
//
// Quick start:
//
//	ds := elinda.GenerateDBpediaLike(elinda.DefaultDataConfig())
//	sys, err := elinda.Open(ds.Triples)
//	...
//	chart := sys.Explorer.OpenRootPane().SubclassChart()
//	fmt.Print(elinda.RenderChart(chart))
//
// # Building and testing
//
// The repository is the single Go module "elinda"; `go build ./...` and
// `go test ./...` (or `make check`, which adds vet and the race detector)
// exercise everything, and cmd/elinda-server, cmd/elinda-bench,
// cmd/elinda, and cmd/elinda-gen are the binaries.
//
// # Incremental evaluation and the Workers knob
//
// Streaming chart construction (Pane.StreamPropertyChart,
// StreamSubclassChart, StreamConnectionsChart) scans the store's
// insertion-order triple log in chunks of N triples, emitting a partial
// chart after every round. IncrementalOptions.Workers additionally
// parallelizes each round: the chunk is partitioned into Workers
// contiguous shards, each scanned by its own goroutine into a fresh
// aggregator clone, and the clones are merged into the round snapshot.
// The three chart aggregators count through order-independent
// deduplicating sets, which makes the merge exact: a parallel round is
// indistinguishable from a sequential scan of the same chunk, and
// Workers <= 1 runs the original sequential path. Configure defaults
// per system with SetIncrementalDefaults, per server with the
// -inc-chunk/-inc-rounds/-inc-workers flags of cmd/elinda-server, and
// per call via IncrementalOptions.
package elinda

import (
	"fmt"
	"io"
	"time"

	"elinda/internal/core"
	"elinda/internal/datagen"
	"elinda/internal/endpoint"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
	"elinda/internal/store"
	"elinda/internal/viz"
)

// System bundles a loaded dataset with every component of the eLinda
// architecture: the triple store, the explorer, and the query proxy
// (HVS + decomposer + generic engine).
type System struct {
	// Store is the dictionary-encoded triple store.
	Store *store.Store
	// Explorer evaluates bar expansions (the paper's formal model).
	Explorer *core.Explorer
	// Proxy routes SPARQL queries through the HVS and decomposer tiers.
	Proxy *proxy.Proxy
}

// Open loads triples and assembles the full system with default options
// (1-second heaviness threshold, all tiers enabled).
func Open(triples []rdf.Triple) (*System, error) {
	return OpenWithOptions(triples, proxy.Options{})
}

// OpenWithOptions is Open with explicit proxy routing options.
func OpenWithOptions(triples []rdf.Triple, opts proxy.Options) (*System, error) {
	st := store.New(len(triples))
	if _, err := st.Load(triples); err != nil {
		return nil, fmt.Errorf("elinda: %w", err)
	}
	return NewSystemFromStore(st, opts), nil
}

// NewSystemFromStore assembles the full system around an already-loaded
// store — the entry point for stores built by the streaming ingest
// pipeline (store.LoadStream) or restored from a binary snapshot
// (store.OpenSnapshot / OpenSnapshot), where the []rdf.Triple of Open
// never exists.
func NewSystemFromStore(st *store.Store, opts proxy.Options) *System {
	return &System{
		Store:    st,
		Explorer: core.NewExplorer(st),
		Proxy:    proxy.New(st, opts),
	}
}

// OpenStream builds the system by streaming triples from r through the
// parallel ingest pipeline: the input is parsed and dictionary-encoded in
// chunks by a worker pool and never materialized as a []rdf.Triple. The
// result is identical — byte for byte in a saved snapshot — to Open over
// the same parsed document.
func OpenStream(r io.Reader, syntax rdf.Syntax, opts proxy.Options) (*System, error) {
	st := store.New(0)
	if _, err := st.LoadStream(r, store.StreamOptions{Syntax: syntax}); err != nil {
		return nil, fmt.Errorf("elinda: %w", err)
	}
	return NewSystemFromStore(st, opts), nil
}

// OpenSnapshot restores the system from a binary store snapshot written
// by System.Store.SaveSnapshot — a warm start that skips parsing,
// dictionary interning and index sorting entirely.
func OpenSnapshot(path string, opts proxy.Options) (*System, error) {
	st, err := store.OpenSnapshot(path)
	if err != nil {
		return nil, fmt.Errorf("elinda: %w", err)
	}
	return NewSystemFromStore(st, opts), nil
}

// OpenTurtle reads a Turtle document and assembles the system.
func OpenTurtle(r io.Reader) (*System, error) {
	triples, err := rdf.ReadTurtle(r)
	if err != nil {
		return nil, err
	}
	return Open(triples)
}

// OpenNTriples reads an N-Triples document and assembles the system.
func OpenNTriples(r io.Reader) (*System, error) {
	triples, err := rdf.ReadNTriples(r)
	if err != nil {
		return nil, err
	}
	return Open(triples)
}

// Endpoint returns an HTTP handler exposing the system's proxy as a
// SPARQL endpoint (SPARQL 1.1 JSON results), with the proxy wired as the
// update handler: POST /sparql with an application/sparql-update body (or
// an update= form field) mutates the knowledge base through the live
// mutation path.
func (s *System) Endpoint() *endpoint.Server {
	srv := endpoint.NewServer(s.Proxy)
	srv.Updater = s.Proxy
	return srv
}

// --- Live mutation path ---

// Delta is an ordered batch of triple mutations applied atomically; build
// one with DeltaOf or the chainable Delta.Insert / Delta.Delete.
type Delta = store.Delta

// ApplyResult reports what a Delta changed: the generation it moved the
// store across and the net inserted/deleted triples.
type ApplyResult = store.ApplyResult

// TripleOp is one signed mutation: an insert or a delete of a triple.
type TripleOp = rdf.TripleOp

// DeltaOf builds a Delta from mutation ops in order.
func DeltaOf(ops ...TripleOp) Delta { return store.DeltaOf(ops...) }

// Insert makes an insertion op for DeltaOf.
func Insert(t rdf.Triple) TripleOp { return rdf.Insert(t) }

// Delete makes a deletion op for DeltaOf.
func Delete(t rdf.Triple) TripleOp { return rdf.Delete(t) }

// Apply applies a mutation delta atomically: all ops as one generation
// step, durable before return when the store has a write-ahead log
// attached. It routes through the proxy when present, so heavy-query
// cache entries whose footprint is disjoint from the delta survive the
// write; without a proxy it mutates the store directly.
func (s *System) Apply(d Delta) (ApplyResult, error) {
	if s.Proxy != nil {
		return s.Proxy.Apply(d)
	}
	return s.Store.Apply(d)
}

// Warm precomputes the level-zero property aggregates (both directions)
// for the root class, like the paper's eLinda endpoint does for its
// mirrored knowledge bases.
func (s *System) Warm() {
	h := s.Explorer.Hierarchy()
	if root := h.Root(); root != rdf.NoID {
		s.Proxy.Decomposer().Warm(root)
	}
}

// IncrementalOptions configures streaming (chunked, optionally parallel)
// chart construction: the administrator's N (ChunkSize), k (MaxRounds),
// and the per-round worker-pool size (Workers).
type IncrementalOptions = core.IncrementalOptions

// SetIncrementalDefaults installs system-wide defaults for streaming
// chart evaluation; zero fields of a call's IncrementalOptions inherit
// them. It corresponds to the paper's administrator configuration of N
// and k, extended with the parallel worker count. It is a no-op on a
// system without a local explorer (remote compatibility mode).
func (s *System) SetIncrementalDefaults(opts IncrementalOptions) {
	if s.Explorer == nil {
		return
	}
	s.Explorer.IncrementalDefaults = opts
}

// --- Re-exported configuration and helpers ---

// DataConfig configures the synthetic DBpedia-like dataset generator.
type DataConfig = datagen.Config

// DefaultDataConfig returns the test-scale generator configuration.
func DefaultDataConfig() DataConfig { return datagen.DefaultConfig() }

// GenerateDBpediaLike builds the synthetic DBpedia-like dataset whose
// shape matches the statistics quoted in the paper.
func GenerateDBpediaLike(cfg DataConfig) *datagen.Dataset { return datagen.Generate(cfg) }

// GenerateLinkedGeoDataLike builds the rootless geographic dataset.
func GenerateLinkedGeoDataLike(cfg datagen.LGDConfig) *datagen.Dataset {
	return datagen.GenerateLGD(cfg)
}

// RenderChart renders a chart as a text bar chart with default options.
func RenderChart(c *core.Chart) string {
	return viz.Chart(c, viz.Options{})
}

// RenderChartCoverage renders a property chart with coverage percentages.
func RenderChartCoverage(c *core.Chart) string {
	return viz.Chart(c, viz.Options{ShowCoverage: true})
}

// DefaultHeavyThreshold is the paper's 1-second heaviness cutoff.
const DefaultHeavyThreshold = time.Second
