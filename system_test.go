// Integration tests exercising the assembled system end to end: data
// generation → store → explorer → proxy → HTTP endpoint, plus the
// demonstration scenarios of Section 5.
package elinda_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"elinda"
	"elinda/internal/core"
	"elinda/internal/datagen"
	"elinda/internal/endpoint"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
)

func testSystem(t *testing.T) *elinda.System {
	t.Helper()
	ds := elinda.GenerateDBpediaLike(elinda.DataConfig{
		Seed: 1, Persons: 1000, PoliticianProps: 60, ErrorRate: 0.03,
	})
	sys, err := elinda.Open(ds.Triples)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenRejectsInvalidTriples(t *testing.T) {
	bad := []rdf.Triple{{S: rdf.NewLiteral("x"), P: rdf.TypeIRI, O: rdf.OWLThingIRI}}
	if _, err := elinda.Open(bad); err == nil {
		t.Error("invalid triples accepted")
	}
}

func TestOpenFromSerializedFormats(t *testing.T) {
	ds := elinda.GenerateDBpediaLike(elinda.DataConfig{Seed: 2, Persons: 100, PoliticianProps: 40})
	var nt bytes.Buffer
	if _, err := rdf.WriteNTriples(&nt, ds.Triples); err != nil {
		t.Fatal(err)
	}
	sysNT, err := elinda.OpenNTriples(&nt)
	if err != nil {
		t.Fatal(err)
	}
	if sysNT.Store.Len() != len(ds.Triples) {
		t.Errorf("NT round-trip: %d vs %d triples", sysNT.Store.Len(), len(ds.Triples))
	}

	var ttl bytes.Buffer
	if err := rdf.WriteTurtle(&ttl, ds.Triples); err != nil {
		t.Fatal(err)
	}
	sysTTL, err := elinda.OpenTurtle(&ttl)
	if err != nil {
		t.Fatal(err)
	}
	if sysTTL.Store.Len() != len(ds.Triples) {
		t.Errorf("TTL round-trip: %d vs %d triples", sysTTL.Store.Len(), len(ds.Triples))
	}
}

// TestScenarioUnderstandDataset covers the first demonstration kind:
// "examine the bar chart showing the first-level classes of the dataset"
// and "analyze the twenty most significant properties of the largest
// class in the dataset".
func TestScenarioUnderstandDataset(t *testing.T) {
	sys := testSystem(t)
	pane := sys.Explorer.OpenRootPane()
	chart := pane.SubclassChart()
	if len(chart.Bars) != 49 {
		t.Fatalf("first-level classes = %d", len(chart.Bars))
	}
	largest := chart.Bars[0]
	if largest.LabelText != "Agent" {
		t.Errorf("largest class = %s, want Agent", largest.LabelText)
	}
	sub := sys.Explorer.OpenPane(largest.Bar.Label)
	props := sub.PropertyChart(false, -1).Top(20)
	if len(props.Bars) != 20 {
		t.Fatalf("top-20 properties = %d", len(props.Bars))
	}
	for i := 1; i < len(props.Bars); i++ {
		if props.Bars[i].Count > props.Bars[i-1].Count {
			t.Fatal("significance order broken")
		}
	}
}

// TestScenarioInfluencePath covers "the types of people that influenced
// philosophers".
func TestScenarioInfluencePath(t *testing.T) {
	sys := testSystem(t)
	x := sys.Explorer.StartExploration()
	for _, c := range []string{"Agent", "Person", "Philosopher"} {
		if _, err := x.ExpandByText(c, core.SubclassExpansion); err != nil {
			t.Fatalf("expand %s: %v", c, err)
		}
	}
	if x.Breadcrumbs() != "Thing → Agent → Person → Philosopher" {
		t.Errorf("breadcrumbs = %q", x.Breadcrumbs())
	}
	pane := sys.Explorer.OpenPane(datagen.Ont("Philosopher"))
	conn, err := pane.ConnectionsChart(datagen.Ont("influencedBy"), false)
	if err != nil {
		t.Fatal(err)
	}
	sci, ok := conn.BarByText("Scientist")
	if !ok || sci.Count == 0 {
		t.Fatalf("Scientist bar: %+v ok=%v", sci, ok)
	}
}

// TestErrorDetectionScenario covers the third demonstration kind (T5).
func TestErrorDetectionScenario(t *testing.T) {
	sys := testSystem(t)
	pane := sys.Explorer.OpenPane(datagen.Ont("Person"))
	conn, err := pane.ConnectionsChart(datagen.Ont("birthPlace"), false)
	if err != nil {
		t.Fatal(err)
	}
	food, ok := conn.BarByText("Food")
	if !ok || food.Count == 0 {
		t.Fatal("erroneous Food birthplaces not detectable")
	}
	// The generated SPARQL pinpoints the bad resources.
	src := food.Bar.SPARQL()
	res, err := sys.Proxy.Query(context.Background(), src)
	if err != nil {
		t.Fatalf("bar SPARQL failed: %v\n%s", err, src)
	}
	if len(res.Rows) != food.Count {
		t.Errorf("SPARQL found %d, bar says %d", len(res.Rows), food.Count)
	}
}

// TestScenarioPerformanceToggles covers the second demonstration kind:
// heavy queries "with the discussed solutions turned on and off".
func TestScenarioPerformanceToggles(t *testing.T) {
	sys := testSystem(t)
	q := core.PropertyExpansionSPARQL(rdf.OWLThingIRI, false)

	sys.Proxy.SetOptions(proxy.Options{DisableHVS: true, DisableDecomposer: true})
	slow, err := sys.Proxy.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	sys.Proxy.SetOptions(proxy.Options{DisableHVS: true})
	fast, err := sys.Proxy.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Rows) != len(fast.Rows) {
		t.Fatalf("toggling the decomposer changed results: %d vs %d rows", len(slow.Rows), len(fast.Rows))
	}
	sys.Proxy.SetOptions(proxy.Options{HeavyThreshold: time.Nanosecond})
	if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	_, trace, err := sys.Proxy.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Route != proxy.RouteHVS {
		t.Errorf("warm repeat route = %v, want hvs", trace.Route)
	}
}

// TestFullStackOverHTTP drives the whole Figure 3 pipeline through a real
// HTTP server and compares with direct execution.
func TestFullStackOverHTTP(t *testing.T) {
	sys := testSystem(t)
	srv := httptest.NewServer(sys.Endpoint())
	defer srv.Close()
	client := endpoint.NewClient(srv.URL)

	q := core.PropertyExpansionSPARQL(datagen.Ont("Philosopher"), false)
	remote, err := client.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.Proxy.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Rows) != len(direct.Rows) {
		t.Errorf("HTTP vs direct rows: %d vs %d", len(remote.Rows), len(direct.Rows))
	}
}

func TestWarmPrecomputesRootAggregates(t *testing.T) {
	sys := testSystem(t)
	sys.Warm()
	q := core.PropertyExpansionSPARQL(rdf.OWLThingIRI, false)
	start := time.Now()
	_, trace, err := sys.Proxy.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Route != proxy.RouteDecomposer {
		t.Errorf("route after warm = %v", trace.Route)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("warmed query took %v", elapsed)
	}
}

func TestRenderHelpers(t *testing.T) {
	sys := testSystem(t)
	chart := sys.Explorer.OpenRootPane().SubclassChart()
	if out := elinda.RenderChart(chart); !strings.Contains(out, "Agent") {
		t.Error("RenderChart missing Agent")
	}
	pchart := sys.Explorer.OpenPane(datagen.Ont("Philosopher")).PropertyChart(false, 0)
	if out := elinda.RenderChartCoverage(pchart); !strings.Contains(out, "%") {
		t.Error("RenderChartCoverage missing percentages")
	}
}
