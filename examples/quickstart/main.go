// Command quickstart reproduces Figure 1 of the paper: the initial
// exploration pane over a DBpedia-like dataset — dataset statistics, the
// subclass chart of owl:Thing with bars sorted by decreasing height, and
// the hover pop-up for the Agent bar (instance count, 5 direct
// subclasses, 277 subclasses in total).
//
// Usage:
//
//	go run ./examples/quickstart [-persons N]
package main

import (
	"flag"
	"fmt"
	"log"

	"elinda"
	"elinda/internal/datagen"
	"elinda/internal/ontology"
	"elinda/internal/viz"
)

func main() {
	persons := flag.Int("persons", 2000, "size of the Person subtree in the synthetic dataset")
	flag.Parse()
	log.SetFlags(0)

	cfg := elinda.DefaultDataConfig()
	cfg.Persons = *persons
	ds := elinda.GenerateDBpediaLike(cfg)
	sys, err := elinda.Open(ds.Triples)
	if err != nil {
		log.Fatal(err)
	}

	// "The very first queries present the user with general statistics
	// about the dataset" (Section 3.1).
	stats := sys.Store.ComputeStats()
	fmt.Printf("Dataset: %d triples, %d classes (%d declared), %d typed subjects\n\n",
		stats.Triples, stats.Classes, stats.DeclaredClasses, stats.TypedSubjects)

	// The initial pane: all subjects of type owl:Thing.
	pane := sys.Explorer.OpenRootPane()
	fmt.Print(viz.PaneHeader(pane))
	chart := pane.SubclassChart()
	fmt.Print(viz.Chart(chart, viz.Options{Width: 46, MaxBars: 12}))

	// Hover pop-up for Agent (Figure 1's call-out).
	agent, ok := chart.BarByText("Agent")
	if !ok {
		log.Fatal("Agent bar missing from the initial chart")
	}
	h := ontology.Build(sys.Store)
	fmt.Println()
	fmt.Print(viz.HoverInfo(sys.Store, h, *agent))

	// The autocomplete search box (Section 3.2): find classes by name
	// without drilling down.
	fmt.Println("\nAutocomplete search for \"phil\":")
	for _, id := range sys.Store.SearchClasses("phil") {
		fmt.Printf("  %s\n", sys.Store.Label(id))
	}

	// Every bar exposes its generated SPARQL.
	x := sys.Explorer.StartExploration()
	src, err := x.BarSPARQL(datagen.Ont("Agent"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGenerated SPARQL for the Agent bar:\n%s", src)
}
