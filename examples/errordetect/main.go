// Command errordetect reproduces the third demonstration scenario of
// Section 5: using eLinda to detect erroneous data — "people who are
// indicated to be born in resources of type food". The object expansion
// of the birthPlace property over Person surfaces a Food bar that should
// not exist in clean data; the narrowed set and the generated SPARQL
// pinpoint the offending triples.
//
// Usage:
//
//	go run ./examples/errordetect [-persons N] [-errorrate F]
package main

import (
	"flag"
	"fmt"
	"log"

	"elinda"
	"elinda/internal/datagen"
	"elinda/internal/viz"
)

func main() {
	persons := flag.Int("persons", 2000, "size of the Person subtree")
	errorRate := flag.Float64("errorrate", 0.02, "fraction of erroneous birthPlace triples")
	flag.Parse()
	log.SetFlags(0)

	ds := elinda.GenerateDBpediaLike(elinda.DataConfig{
		Seed: 1, Persons: *persons, PoliticianProps: 120, ErrorRate: *errorRate,
	})
	sys, err := elinda.Open(ds.Triples)
	if err != nil {
		log.Fatal(err)
	}
	e := sys.Explorer

	pane := e.OpenPane(datagen.Ont("Person"))
	fmt.Print(viz.PaneHeader(pane))

	conn, err := pane.ConnectionsChart(datagen.Ont("birthPlace"), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nObject expansion of birthPlace — what kinds of resources are people born in?")
	fmt.Print(viz.Chart(conn, viz.Options{Width: 40, MaxBars: 10}))

	food, ok := conn.BarByText("Food")
	if !ok {
		fmt.Println("\nNo Food bar: the dataset looks clean for this check.")
		return
	}
	fmt.Printf("\n⚠ Found a Food bar: %d birth places are food resources!\n", food.Count)
	fmt.Println("\nThe offending resources (via the bar's narrowed pane):")
	bad := e.OpenPaneForBar(food.Bar)
	d := sys.Store.Dict()
	shown := 0
	for _, id := range bad.Set() {
		if shown >= 5 {
			fmt.Printf("  ... and %d more\n", len(bad.Set())-shown)
			break
		}
		fmt.Printf("  %s\n", d.Term(id).LocalName())
		shown++
	}
	fmt.Println("\nSPARQL to extract the erroneous bar:")
	fmt.Println(food.Bar.SPARQL())
}
