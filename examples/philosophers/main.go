// Command philosophers reproduces Figure 2 and Sections 3.2–3.4 of the
// paper: the exploration path owl:Thing → Agent → Person → Philosopher
// with breadcrumbs, the Philosopher property charts (outgoing with the
// 20% coverage threshold, and the 9 above-threshold ingoing properties),
// the data table for birthPlace/influencedBy with a Vienna filter, and
// the Connections tab showing "the types of people that influenced
// philosophers" — including the Scientist bar the paper calls out.
//
// Usage:
//
//	go run ./examples/philosophers [-persons N]
package main

import (
	"flag"
	"fmt"
	"log"

	"elinda"
	"elinda/internal/core"
	"elinda/internal/datagen"
	"elinda/internal/rdf"
	"elinda/internal/viz"
)

func main() {
	persons := flag.Int("persons", 2000, "size of the Person subtree")
	flag.Parse()
	log.SetFlags(0)

	ds := elinda.GenerateDBpediaLike(elinda.DataConfig{
		Seed: 1, Persons: *persons, PoliticianProps: 120, ErrorRate: 0.02,
	})
	sys, err := elinda.Open(ds.Triples)
	if err != nil {
		log.Fatal(err)
	}
	e := sys.Explorer

	// --- The Figure 2 drill-down path ---
	x := e.StartExploration()
	for _, class := range []string{"Agent", "Person", "Philosopher"} {
		if _, err := x.ExpandByText(class, core.SubclassExpansion); err != nil {
			log.Fatalf("expanding %s: %v", class, err)
		}
	}
	fmt.Print(viz.Breadcrumbs(x))
	fmt.Println()

	pane := e.OpenPane(datagen.Ont("Philosopher"))
	fmt.Print(viz.PaneHeader(pane))

	// --- Property Data tab (Section 3.3) ---
	out := pane.PropertyChart(false, 0) // default 20% threshold
	fmt.Println("\nOutgoing properties (coverage ≥ 20%):")
	fmt.Print(viz.Chart(out, viz.Options{Width: 40, MaxBars: 15, ShowCoverage: true}))

	in := pane.PropertyChart(true, 0)
	fmt.Printf("\nIngoing properties (coverage ≥ 20%%): %d properties\n", len(in.Bars))
	fmt.Print(viz.Chart(in, viz.Options{Width: 40, MaxBars: 12, ShowCoverage: true}))

	// --- Data table with a birthPlace filter (Section 3.3) ---
	birthPlace := datagen.Ont("birthPlace")
	influencedBy := datagen.Ont("influencedBy")
	table := pane.DataTable([]rdf.Term{birthPlace, influencedBy}, nil)
	fmt.Println("\nData table (birthPlace, influencedBy):")
	fmt.Print(viz.Table(table, 6))
	fmt.Println("\nThe SPARQL this table was generated from:")
	fmt.Println(table.Query)

	// Filter to one birthplace, then continue on the narrowed set Sf.
	somePlace := firstValue(table, 0)
	if !somePlace.IsZero() {
		sf := pane.FilterExpansion([]core.TableFilter{{Property: birthPlace, Equals: somePlace}})
		fmt.Printf("Filter expansion: philosophers born in %s → |Sf| = %d\n\n",
			somePlace.LocalName(), sf.Len())
	}

	// --- Connections tab (Section 3.4) ---
	conn, err := pane.ConnectionsChart(influencedBy, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Connections via influencedBy — the types of people that influenced philosophers:")
	fmt.Print(viz.Chart(conn, viz.Options{Width: 40, MaxBars: 10}))

	if sci, ok := conn.BarByText("Scientist"); ok {
		fmt.Printf("\n\"One of the bars shown is Scientist\": %d scientists influenced philosophers.\n", sci.Count)
		// Continue the exploration on the narrowed set Osp.
		sciPane := e.OpenPaneForBar(sci.Bar)
		fmt.Printf("Opening a pane on that narrowed set: |S| = %d (not all %d scientists)\n",
			sciPane.Stats().Instances, len(e.ClassBar(datagen.Ont("Scientist")).Set))
	}
}

// firstValue returns the first value in the given column of the table.
func firstValue(t *core.DataTable, col int) rdf.Term {
	for _, row := range t.Rows {
		if len(row.Values[col]) > 0 {
			return row.Values[col][0]
		}
	}
	return rdf.Term{}
}
