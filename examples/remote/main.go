// Command remote demonstrates the paper's remote-compatibility mode
// (Section 4): eLinda pointed at an online SPARQL endpoint "by merely
// specifying the endpoint URL", with no access to the raw RDF graph and
// no preprocessing. The program starts a Virtuoso-role endpoint in
// process, then talks to it exclusively over HTTP/JSON:
//
//   - dataset statistics via SPARQL aggregates,
//   - the level-zero property chart computed by chunked incremental
//     evaluation over LIMIT/OFFSET windows ("the aforementioned
//     incremental evaluation is applicable (and applied) even in the
//     remote mode"),
//   - a proxy with the HVS enabled but the decomposer disabled (its
//     indexes cannot mirror data we cannot preprocess).
//
// Usage:
//
//	go run ./examples/remote [-persons N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"elinda"
	"elinda/internal/endpoint"
	"elinda/internal/incremental"
	"elinda/internal/proxy"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

func main() {
	persons := flag.Int("persons", 1500, "size of the synthetic dataset behind the remote endpoint")
	flag.Parse()
	log.SetFlags(0)

	// --- The "remote" server: a plain SPARQL endpoint we cannot preprocess.
	cfg := elinda.DefaultDataConfig()
	cfg.Persons = *persons
	remoteSys, err := elinda.Open(elinda.GenerateDBpediaLike(cfg).Triples)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(endpoint.NewServer(sparql.NewEngine(remoteSys.Store)))
	defer srv.Close()
	fmt.Printf("remote Virtuoso-role endpoint at %s\n\n", srv.URL)

	// --- The eLinda side: only the URL is known.
	client := endpoint.NewClient(srv.URL)
	client.HTTPClient = &http.Client{Timeout: 2 * time.Minute}

	// General statistics, as the settings form does on connect.
	res, err := client.Query(context.Background(), `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote dataset: %s triples\n", res.Rows[0]["n"].Value)

	// Local proxy in remote mode: HVS on, decomposer off.
	localMirror := store.New(0) // empty: nothing preprocessed locally
	p := proxy.NewWithBackend(localMirror, client, proxy.Options{
		HeavyThreshold:    100 * time.Microsecond, // low: HTTP round-trips count as heavy here
		DisableDecomposer: true,
	})

	// A class pane over HTTP: count philosophers remotely, twice (second
	// hit comes from the HVS).
	q := `SELECT ?s WHERE { ?s a <http://elinda.example/ontology/Philosopher> . }`
	for i := 1; i <= 2; i++ {
		start := time.Now()
		res, tr, err := p.QueryTraced(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("philosopher query #%d: %d rows in %s via %s\n",
			i, len(res.Rows), time.Since(start).Round(time.Microsecond), tr.Route)
	}

	// Incremental evaluation over the remote endpoint: page the graph in
	// windows and stream partial property charts.
	fmt.Println("\nremote incremental property chart (windows of 10k triples):")
	rev := incremental.NewRemote(client, nil, incremental.Config{ChunkSize: 10_000})
	agg := incremental.NewPropertyAggregator(nil, false)
	begin := time.Now()
	final, err := rev.Run(context.Background(), agg, func(s incremental.Snapshot) bool {
		fmt.Printf("  round %2d: %7d triples paged, %4d properties so far (t=%s)\n",
			s.Round, s.TriplesSeen, len(s.Counts), time.Since(begin).Round(time.Millisecond))
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	// Top properties from the remote aggregation.
	type pc struct {
		name  string
		count int
	}
	var tops []pc
	for id, n := range final.Counts {
		term, _ := rev.Dict().TermOK(id)
		tops = append(tops, pc{term.LocalName(), n})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].count > tops[j].count })
	fmt.Println("\ntop remote properties by subject count:")
	for i, t := range tops {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-16s %d\n", t.name, t.count)
	}
}
