// Command performance reproduces the second demonstration scenario of
// Section 5 and the measurements of Figure 4: it runs the level-zero
// outgoing and incoming property-expansion queries with the paper's
// optimizations "turned on and off", printing the runtime for each store
// configuration — plain generic engine (the Virtuoso role), eLinda
// decomposer, and HVS hit — plus a demonstration of chunked incremental
// evaluation.
//
// Usage:
//
//	go run ./examples/performance [-persons N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"elinda"
	"elinda/internal/core"
	"elinda/internal/incremental"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
)

func main() {
	persons := flag.Int("persons", 5000, "size of the Person subtree (bigger = heavier queries)")
	flag.Parse()
	log.SetFlags(0)

	cfg := elinda.DefaultDataConfig()
	cfg.Persons = *persons
	ds := elinda.GenerateDBpediaLike(cfg)
	sys, err := elinda.Open(ds.Triples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dataset: %d triples\n\n", sys.Store.Len())

	queries := map[string]string{
		"outgoing": core.PropertyExpansionSPARQL(rdf.OWLThingIRI, false),
		"incoming": core.PropertyExpansionSPARQL(rdf.OWLThingIRI, true),
	}

	configs := []struct {
		name string
		opts proxy.Options
	}{
		{"Virtuoso (generic engine, no eLinda optimizations)",
			proxy.Options{DisableHVS: true, DisableDecomposer: true}},
		{"eLinda decomposer (HVS off)",
			proxy.Options{DisableHVS: true}},
		{"eLinda HVS (warm cache)",
			proxy.Options{HeavyThreshold: time.Nanosecond}},
	}

	fmt.Println("Figure 4 — runtimes of level-zero property expansions:")
	fmt.Printf("%-52s %12s %12s\n", "configuration", "outgoing", "incoming")
	for _, c := range configs {
		sys.Proxy.SetOptions(c.opts)
		sys.Proxy.HVS().Invalidate()
		times := map[string]time.Duration{}
		for dir, q := range queries {
			if c.name == "eLinda HVS (warm cache)" {
				// Warm the cache with one pass first.
				if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			if _, err := sys.Proxy.Query(context.Background(), q); err != nil {
				log.Fatal(err)
			}
			times[dir] = time.Since(start)
		}
		fmt.Printf("%-52s %12s %12s\n", c.name, times["outgoing"].Round(time.Microsecond), times["incoming"].Round(time.Microsecond))
	}

	// --- Incremental evaluation (the technique that keeps even the slow
	// path interactive): partial charts after every chunk of N triples ---
	fmt.Println("\nIncremental evaluation of the outgoing property chart (N = 1/5 of the data):")
	ev := incremental.New(sys.Store, incremental.Config{ChunkSize: sys.Store.Len()/5 + 1})
	agg := incremental.NewPropertyAggregator(nil, false)
	start := time.Now()
	_, err = ev.Run(context.Background(), agg, func(s incremental.Snapshot) bool {
		fmt.Printf("  round %d: %8d triples scanned, %4d properties found so far (t=%s)\n",
			s.Round, s.TriplesSeen, len(s.Counts), time.Since(start).Round(time.Microsecond))
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe first partial chart arrives after ~1/5 of the scan time — the")
	fmt.Println("\"effective latency for user interaction\" of Section 4.")
}
