package rdf

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// collectStream runs the chunker+parser over doc and returns all triples
// in stream order, asserting chunk invariants along the way.
func collectStream(t *testing.T, doc string, syntax Syntax, chunkBytes int) []Triple {
	t.Helper()
	var out []Triple
	wantIndex := 0
	err := StreamChunks(strings.NewReader(doc), syntax, chunkBytes, func(c Chunk) error {
		if c.Index != wantIndex {
			t.Fatalf("chunk index %d, want %d", c.Index, wantIndex)
		}
		wantIndex++
		return c.Parse(func(tr Triple) error {
			out = append(out, tr)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("stream (%v, chunk %d): %v", syntax, chunkBytes, err)
	}
	return out
}

func TestStreamNTriplesMatchesWholeDocument(t *testing.T) {
	var b bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "<http://x/s%d> <http://x/p%d> \"v %d\\n tail\"@en .\n", i, i%7, i)
		if i%50 == 0 {
			b.WriteString("# a comment line\n\n")
		}
	}
	doc := b.String()
	want, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 17, 256, 1 << 20} {
		got := collectStream(t, doc, SyntaxNTriples, chunk)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d triples, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: triple %d = %v, want %v", chunk, i, got[i], want[i])
			}
		}
	}
}

func TestStreamNTriplesReportsLineNumbers(t *testing.T) {
	doc := "<http://x/a> <http://x/p> <http://x/b> .\nnot a triple\n"
	err := StreamChunks(strings.NewReader(doc), SyntaxNTriples, 8, func(c Chunk) error {
		return c.Parse(func(Triple) error { return nil })
	})
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 2 {
		t.Fatalf("want ParseError at line 2, got %v", err)
	}
}

func TestStreamTurtleMatchesWholeDocument(t *testing.T) {
	doc := `@prefix ex: <http://example.org/> .
# leading comment
ex:alice a ex:Person ;
    ex:name "Alice \"A.\"" ;
    ex:age 42 ;
    ex:score 3.14 ;
    ex:knows ex:bob, ex:carol .
ex:bob ex:name 'Bob' ; ex:ok true .
@prefix geo: <http://geo.example/> .
geo:x1 geo:near ex:alice .
PREFIX foo: <http://foo.example/>
foo:f1 foo:p "mid . dot" ; foo:q <http://raw/iri> .
_:b1 ex:name "blank"@de .
`
	want, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference parse produced no triples")
	}
	for _, chunk := range []int{1, 9, 64, 1 << 20} {
		got := collectStream(t, doc, SyntaxTurtle, chunk)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d triples, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: triple %d = %v, want %v", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestStreamTurtlePrefixFreezing pins the directive semantics: a chunk
// parsed after a redeclared prefix must use the table in effect at its
// own position, even when chunks are tiny.
func TestStreamTurtlePrefixFreezing(t *testing.T) {
	doc := `@prefix p: <http://one/> .
p:a p:x p:b .
@prefix p: <http://two/> .
p:a p:x p:b .
`
	got := collectStream(t, doc, SyntaxTurtle, 1)
	if len(got) != 2 {
		t.Fatalf("got %d triples", len(got))
	}
	if got[0].S.Value != "http://one/a" || got[1].S.Value != "http://two/a" {
		t.Fatalf("prefix table not frozen per chunk: %v / %v", got[0].S, got[1].S)
	}
}

func TestStreamTurtleErrors(t *testing.T) {
	cases := []string{
		"ex:a ex:b ex:c .",               // undeclared prefix
		"<http://x/a> <http://x/p> \"unterminated .", // swallows the dot; hits EOF
		"@prefix broken",                 // unterminated directive
		"<http://x/a> <http://x/p> <http://x/b>", // missing terminator
	}
	for _, doc := range cases {
		err := StreamChunks(strings.NewReader(doc), SyntaxTurtle, 16, func(c Chunk) error {
			return c.Parse(func(Triple) error { return nil })
		})
		if err == nil {
			t.Errorf("no error for %q", doc)
		}
	}
}

// errReader fails after serving its payload, checking error propagation.
type errReader struct {
	data []byte
	err  error
}

func (e *errReader) Read(p []byte) (int, error) {
	if len(e.data) == 0 {
		return 0, e.err
	}
	n := copy(p, e.data)
	e.data = e.data[n:]
	return n, nil
}

func TestStreamPropagatesReadErrors(t *testing.T) {
	boom := fmt.Errorf("disk on fire")
	for _, f := range []Syntax{SyntaxNTriples, SyntaxTurtle} {
		r := &errReader{data: []byte("<http://x/a> <http://x/p> <http://x/b> .\n"), err: boom}
		err := StreamChunks(r, f, 1<<20, func(c Chunk) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "disk on fire") {
			t.Errorf("format %v: error = %v, want wrapped read error", f, err)
		}
	}
}

func TestDetectFormat(t *testing.T) {
	if DetectFormat("x.ttl") != SyntaxTurtle || DetectFormat("x.TURTLE") != SyntaxTurtle {
		t.Error("turtle extensions not detected")
	}
	if DetectFormat("x.nt") != SyntaxNTriples || DetectFormat("dump") != SyntaxNTriples {
		t.Error("nt default not applied")
	}
}

var _ io.Reader = (*errReader)(nil)

// TestStreamTurtleErrorLineNumbers pins the diagnostic parity with the
// serial reader: a malformed statement deep in a chunk (after multi-line
// statements and comments) must be reported at its true input line.
func TestStreamTurtleErrorLineNumbers(t *testing.T) {
	doc := `@prefix ex: <http://example.org/> .
ex:a ex:p ex:b ;
    ex:q ex:c ,
         ex:d .
# a comment between statements
ex:e ex:p ex:f .

ex:bad undeclared:p ex:g .
`
	err := StreamChunks(strings.NewReader(doc), SyntaxTurtle, 1<<20, func(c Chunk) error {
		return c.Parse(func(Triple) error { return nil })
	})
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want ParseError, got %v", err)
	}
	if pe.Line != 8 {
		t.Fatalf("error reported at line %d, want 8: %v", pe.Line, pe)
	}
}
