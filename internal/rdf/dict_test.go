package rdf

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictInternAssignsDenseIDs(t *testing.T) {
	d := NewDict(4)
	a := d.Intern(NewIRI("http://x/a"))
	b := d.Intern(NewIRI("http://x/b"))
	if a != 1 || b != 2 {
		t.Errorf("IDs not dense from 1: a=%d b=%d", a, b)
	}
	if got := d.Intern(NewIRI("http://x/a")); got != a {
		t.Errorf("re-intern returned %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictLookupDoesNotInsert(t *testing.T) {
	d := NewDict(1)
	if _, ok := d.Lookup(NewIRI("http://x/a")); ok {
		t.Error("Lookup found a term in empty dict")
	}
	if d.Len() != 0 {
		t.Error("Lookup must not insert")
	}
	d.Intern(NewIRI("http://x/a"))
	if id, ok := d.LookupIRI("http://x/a"); !ok || id != 1 {
		t.Errorf("LookupIRI = (%d,%v)", id, ok)
	}
}

func TestDictTermPanicsOnInvalid(t *testing.T) {
	d := NewDict(0)
	for _, id := range []ID{NoID, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Term(%d) did not panic", id)
				}
			}()
			d.Term(id)
		}()
	}
	if _, ok := d.TermOK(NoID); ok {
		t.Error("TermOK(NoID) should fail")
	}
}

func TestDictEncodeDecodeRoundtrip(t *testing.T) {
	d := NewDict(8)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		in := Triple{
			S: randomTerm(r, false),
			P: NewIRI("http://example.org/" + randIdent(r)),
			O: randomTerm(r, true),
		}
		if got := d.Decode(d.Encode(in)); got != in {
			t.Fatalf("roundtrip mismatch: %v -> %v", in, got)
		}
	}
}

func TestDictInternIdempotentProperty(t *testing.T) {
	d := NewDict(16)
	f := func(iri string) bool {
		t1 := NewIRI("http://q/" + iri)
		id1 := d.Intern(t1)
		id2 := d.Intern(t1)
		back := d.Term(id1)
		return id1 == id2 && back == t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict(0)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, perG)
			for i := 0; i < perG; i++ {
				// All goroutines intern the same term sequence; IDs must agree.
				ids[g][i] = d.Intern(NewIRI("http://x/shared"))
			}
		}(g)
	}
	wg.Wait()
	want := ids[0][0]
	for g := range ids {
		for i := range ids[g] {
			if ids[g][i] != want {
				t.Fatalf("goroutine %d saw ID %d, want %d", g, ids[g][i], want)
			}
		}
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestDictBatchCanonicalOrder(t *testing.T) {
	d := NewDict(0)
	preID := d.Intern(NewIRI("http://x/pre"))

	b := d.NewBatch()
	// Intern out of occurrence order, from two goroutines.
	terms := make([]Term, 40)
	for i := range terms {
		terms[i] = NewIRI("http://x/t" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	var wg sync.WaitGroup
	prov := make([][]ID, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prov[g] = make([]ID, len(terms))
			for i := len(terms) - 1; i >= 0; i-- {
				if i%2 == g {
					prov[g][i] = b.Intern(uint64(i), terms[i])
				}
			}
			// Existing terms resolve canonically even inside the batch.
			if got := b.Intern(999, NewIRI("http://x/pre")); got != preID {
				t.Errorf("goroutine %d: pre-interned term got %d, want %d", g, got, preID)
			}
		}(g)
	}
	wg.Wait()
	if added := b.Commit(); added != len(terms) {
		t.Fatalf("Commit added %d, want %d", added, len(terms))
	}
	// Canonical IDs follow occurrence order: terms[0] right after the
	// pre-existing vocabulary, then terms[1], ...
	for i, term := range terms {
		g := i % 2
		want := preID + ID(i) + 1
		if got := b.Canonical(prov[g][i]); got != want {
			t.Fatalf("term %d: canonical %d, want %d", i, got, want)
		}
		if id, ok := d.Lookup(term); !ok || id != want {
			t.Fatalf("term %d: dict lookup (%d,%v), want %d", i, id, ok, want)
		}
	}
}

func TestDictBatchAbandonLeavesDictUntouched(t *testing.T) {
	d := NewDict(0)
	d.Intern(NewIRI("http://x/a"))
	b := d.NewBatch()
	b.Intern(0, NewIRI("http://x/new1"))
	b.Intern(1, NewIRI("http://x/new2"))
	// No Commit: the dictionary must not have grown.
	if d.Len() != 1 {
		t.Fatalf("abandoned batch leaked terms: Len=%d", d.Len())
	}
	if _, ok := d.Lookup(NewIRI("http://x/new1")); ok {
		t.Fatal("abandoned batch term visible in dict")
	}
}

func TestNewDictFromTermsRejectsBadArenas(t *testing.T) {
	if _, err := NewDictFromTerms([]Term{NewIRI("http://x/a"), {}}); err == nil {
		t.Error("zero term accepted")
	}
	dup := NewIRI("http://x/a")
	if _, err := NewDictFromTerms([]Term{dup, NewIRI("http://x/b"), dup}); err == nil {
		t.Error("duplicate term accepted")
	}
	d, err := NewDictFromTerms([]Term{NewIRI("http://x/a"), NewBlank("b")})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := d.Lookup(NewBlank("b")); !ok || id != 2 {
		t.Fatalf("rebuilt dict lookup = (%d,%v)", id, ok)
	}
	// And it stays a normal, growable dictionary.
	if id := d.Intern(NewIRI("http://x/c")); id != 3 {
		t.Fatalf("post-rebuild intern = %d, want 3", id)
	}
}

// TestDictConcurrentInternWithPublish hammers Intern from several
// goroutines while publishReads concurrently folds shard entries into
// fresh read maps and clears the shards. Every goroutine must observe
// one stable ID per term and the dictionary must never double-assign.
func TestDictConcurrentInternWithPublish(t *testing.T) {
	d := NewDict(0)
	const goroutines, iters, vocab = 4, 3000, 257
	seen := make([]map[string]ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen[g] = make(map[string]ID, vocab)
			for i := 0; i < iters; i++ {
				name := "http://x/t" + string(rune('0'+i%10)) + "/" + string(rune('a'+(i*7)%26)) + "/" + string(rune('a'+i%vocab%26)) + string(rune('0'+(i%vocab)/26))
				id := d.Intern(NewIRI(name))
				if prev, ok := seen[g][name]; ok && prev != id {
					panic("ID changed across interns")
				}
				seen[g][name] = id
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				d.PublishReads()
			}
		}
	}()
	wg.Wait()
	close(done)
	for g := 1; g < goroutines; g++ {
		for name, id := range seen[g] {
			if seen[0][name] != id {
				t.Fatalf("goroutine %d saw %s=%d, goroutine 0 saw %d", g, name, id, seen[0][name])
			}
		}
	}
	if d.Len() != len(seen[0]) {
		t.Fatalf("Len=%d, distinct terms=%d (duplicate allocation?)", d.Len(), len(seen[0]))
	}
	// Every term still resolves after the final publish cleared shards.
	for name, id := range seen[0] {
		if got, ok := d.Lookup(NewIRI(name)); !ok || got != id {
			t.Fatalf("Lookup(%s) = (%d,%v), want %d", name, got, ok, id)
		}
	}
}
