package rdf

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictInternAssignsDenseIDs(t *testing.T) {
	d := NewDict(4)
	a := d.Intern(NewIRI("http://x/a"))
	b := d.Intern(NewIRI("http://x/b"))
	if a != 1 || b != 2 {
		t.Errorf("IDs not dense from 1: a=%d b=%d", a, b)
	}
	if got := d.Intern(NewIRI("http://x/a")); got != a {
		t.Errorf("re-intern returned %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictLookupDoesNotInsert(t *testing.T) {
	d := NewDict(1)
	if _, ok := d.Lookup(NewIRI("http://x/a")); ok {
		t.Error("Lookup found a term in empty dict")
	}
	if d.Len() != 0 {
		t.Error("Lookup must not insert")
	}
	d.Intern(NewIRI("http://x/a"))
	if id, ok := d.LookupIRI("http://x/a"); !ok || id != 1 {
		t.Errorf("LookupIRI = (%d,%v)", id, ok)
	}
}

func TestDictTermPanicsOnInvalid(t *testing.T) {
	d := NewDict(0)
	for _, id := range []ID{NoID, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Term(%d) did not panic", id)
				}
			}()
			d.Term(id)
		}()
	}
	if _, ok := d.TermOK(NoID); ok {
		t.Error("TermOK(NoID) should fail")
	}
}

func TestDictEncodeDecodeRoundtrip(t *testing.T) {
	d := NewDict(8)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		in := Triple{
			S: randomTerm(r, false),
			P: NewIRI("http://example.org/" + randIdent(r)),
			O: randomTerm(r, true),
		}
		if got := d.Decode(d.Encode(in)); got != in {
			t.Fatalf("roundtrip mismatch: %v -> %v", in, got)
		}
	}
}

func TestDictInternIdempotentProperty(t *testing.T) {
	d := NewDict(16)
	f := func(iri string) bool {
		t1 := NewIRI("http://q/" + iri)
		id1 := d.Intern(t1)
		id2 := d.Intern(t1)
		back := d.Term(id1)
		return id1 == id2 && back == t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict(0)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, perG)
			for i := 0; i < perG; i++ {
				// All goroutines intern the same term sequence; IDs must agree.
				ids[g][i] = d.Intern(NewIRI("http://x/shared"))
			}
		}(g)
	}
	wg.Wait()
	want := ids[0][0]
	for g := range ids {
		for i := range ids[g] {
			if ids[g][i] != want {
				t.Fatalf("goroutine %d saw ID %d, want %d", g, ids[g][i], want)
			}
		}
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}
