package rdf

// Well-known vocabulary IRIs used by eLinda. Section 3.1 of the paper:
// class hierarchies are declared with owl:Class / rdfs:Class and
// rdfs:subClassOf; instance typing with rdf:type; human-readable labels
// with rdfs:label.
const (
	// RDFNS is the RDF namespace.
	RDFNS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	// RDFSNS is the RDF Schema namespace.
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	// OWLNS is the OWL namespace.
	OWLNS = "http://www.w3.org/2002/07/owl#"
	// XSDNS is the XML Schema datatypes namespace.
	XSDNS = "http://www.w3.org/2001/XMLSchema#"

	// RDFType is rdf:type — "a URI u is said to be of class c if
	// (u, rdf:type, c) ∈ G".
	RDFType = RDFNS + "type"
	// RDFProperty is rdf:Property.
	RDFProperty = RDFNS + "Property"
	// RDFSSubClassOf is rdfs:subClassOf, the edge relation of the class DAG.
	RDFSSubClassOf = RDFSNS + "subClassOf"
	// RDFSLabel is rdfs:label, used for display labels.
	RDFSLabel = RDFSNS + "label"
	// RDFSClass is rdfs:Class.
	RDFSClass = RDFSNS + "Class"
	// RDFSComment is rdfs:comment.
	RDFSComment = RDFSNS + "comment"
	// OWLClass is owl:Class.
	OWLClass = OWLNS + "Class"
	// OWLThing is owl:Thing, the paper's sensible choice of root type τ.
	OWLThing = OWLNS + "Thing"

	// XSDInteger is xsd:integer.
	XSDInteger = XSDNS + "integer"
	// XSDDouble is xsd:double.
	XSDDouble = XSDNS + "double"
	// XSDString is xsd:string.
	XSDString = XSDNS + "string"
	// XSDDate is xsd:date.
	XSDDate = XSDNS + "date"
	// XSDBoolean is xsd:boolean.
	XSDBoolean = XSDNS + "boolean"
)

// TypeIRI is rdf:type as a Term.
var TypeIRI = NewIRI(RDFType)

// SubClassOfIRI is rdfs:subClassOf as a Term.
var SubClassOfIRI = NewIRI(RDFSSubClassOf)

// LabelIRI is rdfs:label as a Term.
var LabelIRI = NewIRI(RDFSLabel)

// OWLThingIRI is owl:Thing as a Term.
var OWLThingIRI = NewIRI(OWLThing)

// OWLClassIRI is owl:Class as a Term.
var OWLClassIRI = NewIRI(OWLClass)

// RDFSClassIRI is rdfs:Class as a Term.
var RDFSClassIRI = NewIRI(RDFSClass)

// WellKnownPrefixes maps conventional prefix names to their namespaces.
// Used by the Turtle parser default environment and the SPARQL generator.
var WellKnownPrefixes = map[string]string{
	"rdf":  RDFNS,
	"rdfs": RDFSNS,
	"owl":  OWLNS,
	"xsd":  XSDNS,
}

// QName compacts an IRI using the well-known prefixes, falling back to the
// angle-bracketed full form. Useful for readable SPARQL and chart labels.
func QName(iri string) string {
	for pfx, ns := range WellKnownPrefixes {
		if len(iri) > len(ns) && iri[:len(ns)] == ns {
			return pfx + ":" + iri[len(ns):]
		}
	}
	return "<" + iri + ">"
}
