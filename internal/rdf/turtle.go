package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ReadTurtle parses a pragmatic subset of Turtle sufficient for the
// datasets eLinda consumes: @prefix and PREFIX directives, prefixed names,
// the 'a' keyword, predicate lists (';'), object lists (','), numeric and
// boolean literal shorthand, and comments. Collections and anonymous blank
// node property lists are not supported (our generators never emit them);
// encountering one is a parse error rather than silent misreading.
func ReadTurtle(r io.Reader) ([]Triple, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rdf: reading turtle: %w", err)
	}
	return ParseTurtle(string(data))
}

// ParseTurtle parses a Turtle document from a string. See ReadTurtle for
// the supported subset.
func ParseTurtle(s string) ([]Triple, error) {
	p := &turtleParser{
		s:        s,
		line:     1,
		prefixes: map[string]string{},
	}
	for k, v := range WellKnownPrefixes {
		p.prefixes[k] = v
	}
	var out []Triple
	for {
		p.skipWSAndComments()
		if p.eof() {
			return out, nil
		}
		if p.peek() == '@' || p.hasKeyword("PREFIX") || p.hasKeyword("BASE") {
			if err := p.directive(); err != nil {
				return nil, err
			}
			continue
		}
		ts, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
}

// parseTurtleChunk parses the statements of a streamed chunk. The chunker
// has already extracted every directive, so prefixes and base arrive
// frozen; the parser only reads them, which is what makes concurrent
// chunk parsing safe.
func parseTurtleChunk(data string, line int, prefixes map[string]string, base string, emit func(Triple) error) error {
	p := &turtleParser{s: data, line: line, prefixes: prefixes, base: base}
	for {
		p.skipWSAndComments()
		if p.eof() {
			return nil
		}
		ts, err := p.statement()
		if err != nil {
			return err
		}
		for _, t := range ts {
			if err := emit(t); err != nil {
				return err
			}
		}
	}
}

type turtleParser struct {
	s        string
	pos      int
	line     int
	prefixes map[string]string
	base     string
}

func (p *turtleParser) eof() bool  { return p.pos >= len(p.s) }
func (p *turtleParser) peek() byte { return p.s[p.pos] }

func (p *turtleParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *turtleParser) advance() {
	if p.s[p.pos] == '\n' {
		p.line++
	}
	p.pos++
}

func (p *turtleParser) skipWSAndComments() {
	for !p.eof() {
		c := p.peek()
		if c == '#' {
			for !p.eof() && p.peek() != '\n' {
				p.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			p.advance()
			continue
		}
		return
	}
}

func (p *turtleParser) hasKeyword(kw string) bool {
	if p.pos+len(kw) > len(p.s) {
		return false
	}
	return strings.EqualFold(p.s[p.pos:p.pos+len(kw)], kw)
}

func (p *turtleParser) directive() error {
	atForm := p.peek() == '@'
	if atForm {
		p.pos++
	}
	switch {
	case p.hasKeyword("prefix"):
		p.pos += len("prefix")
		p.skipWSAndComments()
		name, err := p.prefixName()
		if err != nil {
			return err
		}
		p.skipWSAndComments()
		if p.eof() || p.peek() != '<' {
			return p.errf("expected namespace IRI in @prefix")
		}
		ns, err := p.iriRef()
		if err != nil {
			return err
		}
		p.prefixes[name] = ns.Value
	case p.hasKeyword("base"):
		p.pos += len("base")
		p.skipWSAndComments()
		if p.eof() || p.peek() != '<' {
			return p.errf("expected IRI in @base")
		}
		b, err := p.iriRef()
		if err != nil {
			return err
		}
		p.base = b.Value
	default:
		return p.errf("unknown directive")
	}
	p.skipWSAndComments()
	if atForm {
		if p.eof() || p.peek() != '.' {
			return p.errf("expected '.' after @-directive")
		}
		p.pos++
	} else if !p.eof() && p.peek() == '.' {
		p.pos++ // SPARQL-style PREFIX tolerates an optional dot
	}
	return nil
}

func (p *turtleParser) prefixName() (string, error) {
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		c := p.peek()
		if isWS(c) {
			return "", p.errf("malformed prefix name")
		}
		p.pos++
	}
	if p.eof() {
		return "", p.errf("malformed prefix declaration")
	}
	name := p.s[start:p.pos]
	p.pos++ // consume ':'
	return name, nil
}

// statement parses subject predicateObjectList '.' and expands the
// predicate (';') and object (',') lists into individual triples.
func (p *turtleParser) statement() ([]Triple, error) {
	subj, err := p.subject()
	if err != nil {
		return nil, err
	}
	var out []Triple
	for {
		p.skipWSAndComments()
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		for {
			p.skipWSAndComments()
			obj, err := p.object()
			if err != nil {
				return nil, err
			}
			t := Triple{S: subj, P: pred, O: obj}
			if err := t.Validate(); err != nil {
				return nil, p.errf("%v", err)
			}
			out = append(out, t)
			p.skipWSAndComments()
			if !p.eof() && p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if p.eof() {
			return nil, p.errf("unexpected end of document, expected '.' or ';'")
		}
		switch p.peek() {
		case ';':
			p.pos++
			p.skipWSAndComments()
			// A dangling ';' before '.' is legal Turtle.
			if !p.eof() && p.peek() == '.' {
				p.pos++
				return out, nil
			}
			continue
		case '.':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected ';' or '.', found %q", p.peek())
		}
	}
}

func (p *turtleParser) subject() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("expected subject")
	}
	switch {
	case p.peek() == '<':
		return p.iriRef()
	case p.peek() == '_':
		return p.blankNode()
	case p.peek() == '[':
		return Term{}, p.errf("anonymous blank nodes are not supported by this Turtle subset")
	case p.peek() == '(':
		return Term{}, p.errf("collections are not supported by this Turtle subset")
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) predicate() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("expected predicate")
	}
	if p.peek() == 'a' && (p.pos+1 >= len(p.s) || isWS(p.s[p.pos+1]) || p.s[p.pos+1] == '<') {
		p.pos++
		return TypeIRI, nil
	}
	if p.peek() == '<' {
		return p.iriRef()
	}
	return p.prefixedName()
}

func (p *turtleParser) object() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("expected object")
	}
	c := p.peek()
	switch {
	case c == '<':
		return p.iriRef()
	case c == '_':
		return p.blankNode()
	case c == '"' || c == '\'':
		return p.literalTerm()
	case c == '[' || c == '(':
		return Term{}, p.errf("blank node property lists / collections are not supported")
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.numericLiteral()
	case p.hasKeyword("true") && p.boundaryAt(p.pos+4):
		p.pos += 4
		return NewTypedLiteral("true", XSDBoolean), nil
	case p.hasKeyword("false") && p.boundaryAt(p.pos+5):
		p.pos += 5
		return NewTypedLiteral("false", XSDBoolean), nil
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) boundaryAt(i int) bool {
	return i >= len(p.s) || isWS(p.s[i]) || p.s[i] == '.' || p.s[i] == ';' || p.s[i] == ','
}

func (p *turtleParser) iriRef() (Term, error) {
	end := strings.IndexByte(p.s[p.pos:], '>')
	if end < 0 {
		return Term{}, p.errf("unterminated IRI")
	}
	v := p.s[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(v, "://") && !strings.HasPrefix(v, "urn:") {
		v = p.base + v
	}
	if v == "" {
		return Term{}, p.errf("empty IRI")
	}
	return NewIRI(v), nil
}

func (p *turtleParser) blankNode() (Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return Term{}, p.errf("malformed blank node")
	}
	start := p.pos + 2
	i := start
	for i < len(p.s) && isPNChar(rune(p.s[i])) {
		i++
	}
	if i == start {
		return Term{}, p.errf("empty blank node label")
	}
	label := p.s[start:i]
	p.pos = i
	return NewBlank(label), nil
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	i := p.pos
	for i < len(p.s) && p.s[i] != ':' && isPNChar(rune(p.s[i])) {
		i++
	}
	if i >= len(p.s) || p.s[i] != ':' {
		return Term{}, p.errf("expected prefixed name near %q", excerpt(p.s, start))
	}
	prefix := p.s[start:i]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	i++ // consume ':'
	lstart := i
	for i < len(p.s) && isPNLocalChar(rune(p.s[i])) {
		i++
	}
	local := p.s[lstart:i]
	p.pos = i
	return NewIRI(ns + local), nil
}

func (p *turtleParser) literalTerm() (Term, error) {
	quote := p.peek()
	i := p.pos + 1
	for i < len(p.s) {
		if p.s[i] == '\\' {
			i += 2
			continue
		}
		if p.s[i] == quote {
			break
		}
		if p.s[i] == '\n' {
			return Term{}, p.errf("newline in single-quoted literal (long literals unsupported)")
		}
		i++
	}
	if i >= len(p.s) {
		return Term{}, p.errf("unterminated literal")
	}
	lex := unescapeLiteral(p.s[p.pos+1 : i])
	p.pos = i + 1
	if !p.eof() && p.peek() == '@' {
		start := p.pos + 1
		j := start
		for j < len(p.s) && (isAlnum(p.s[j]) || p.s[j] == '-') {
			j++
		}
		if j == start {
			return Term{}, p.errf("empty language tag")
		}
		lang := p.s[start:j]
		p.pos = j
		return NewLangLiteral(lex, lang), nil
	}
	if p.pos+1 < len(p.s) && p.s[p.pos] == '^' && p.s[p.pos+1] == '^' {
		p.pos += 2
		var dt Term
		var err error
		if !p.eof() && p.peek() == '<' {
			dt, err = p.iriRef()
		} else {
			dt, err = p.prefixedName()
		}
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *turtleParser) numericLiteral() (Term, error) {
	start := p.pos
	i := p.pos
	if p.s[i] == '+' || p.s[i] == '-' {
		i++
	}
	sawDot, sawExp := false, false
	for i < len(p.s) {
		c := p.s[i]
		switch {
		case c >= '0' && c <= '9':
			i++
		case c == '.' && !sawDot && i+1 < len(p.s) && p.s[i+1] >= '0' && p.s[i+1] <= '9':
			sawDot = true
			i++
		case (c == 'e' || c == 'E') && !sawExp:
			sawExp = true
			i++
			if i < len(p.s) && (p.s[i] == '+' || p.s[i] == '-') {
				i++
			}
		default:
			goto done
		}
	}
done:
	lex := p.s[start:i]
	if lex == "" || lex == "+" || lex == "-" {
		return Term{}, p.errf("malformed numeric literal")
	}
	p.pos = i
	if sawDot || sawExp {
		return NewTypedLiteral(lex, XSDDouble), nil
	}
	return NewTypedLiteral(lex, XSDInteger), nil
}

func isPNChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func isPNLocalChar(r rune) bool {
	return isPNChar(r) || r == '.' && false /* trailing dots excluded for simplicity */
}

func excerpt(s string, at int) string {
	end := at + 20
	if end > len(s) {
		end = len(s)
	}
	return s[at:end]
}

// WriteTurtle serializes triples grouped by subject using the well-known
// prefixes. Output is valid Turtle re-readable by ReadTurtle.
func WriteTurtle(w io.Writer, triples []Triple) error {
	var b strings.Builder
	for _, p := range [...]struct{ pfx, ns string }{
		{"owl", OWLNS}, {"rdf", RDFNS}, {"rdfs", RDFSNS}, {"xsd", XSDNS},
	} {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", p.pfx, p.ns)
	}
	b.WriteByte('\n')
	// Group consecutive triples that share a subject.
	for i := 0; i < len(triples); {
		j := i
		for j < len(triples) && triples[j].S == triples[i].S {
			j++
		}
		b.WriteString(turtleTerm(triples[i].S))
		for k := i; k < j; k++ {
			if k > i {
				b.WriteString(" ;")
			}
			b.WriteString("\n    ")
			b.WriteString(turtleTerm(triples[k].P))
			b.WriteByte(' ')
			b.WriteString(turtleTerm(triples[k].O))
		}
		b.WriteString(" .\n")
		i = j
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("rdf: writing turtle: %w", err)
	}
	return nil
}

func turtleTerm(t Term) string {
	if t.Kind == IRI {
		if t.Value == RDFType {
			return "a"
		}
		q := QName(t.Value)
		// QName falls back to <...>; both forms are valid Turtle, but a
		// compacted name must not contain characters our reader rejects.
		if !strings.HasPrefix(q, "<") && strings.ContainsAny(q[strings.IndexByte(q, ':')+1:], "/#") {
			return "<" + t.Value + ">"
		}
		return q
	}
	return t.String()
}
