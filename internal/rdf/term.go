// Package rdf provides the core RDF data model used throughout eLinda:
// terms (IRIs, literals, blank nodes), triples, a term dictionary for
// compact integer encoding, and parsers/serializers for the N-Triples and
// a pragmatic Turtle subset.
//
// The model follows the paper's Section 2: an RDF triple is an element of
// U x U x (U ∪ L) where U is the set of URIs and L the set of literals.
// Blank nodes are supported for input compatibility but are treated as
// URIs with a reserved prefix during exploration.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three syntactic categories of RDF terms.
type TermKind uint8

const (
	// IRI is a Unique Resource Identifier (the paper's U).
	IRI TermKind = iota
	// Literal is an RDF literal (the paper's L), possibly tagged with a
	// language or datatype.
	Literal
	// Blank is a blank node. eLinda treats blank nodes as opaque URIs.
	Blank
)

// String returns the lowercase name of the kind.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. The zero value is the empty IRI, which is
// never a valid term in a graph; IsZero reports that state.
//
// Terms are comparable values, so they can be used as map keys directly.
type Term struct {
	// Kind selects which category this term belongs to.
	Kind TermKind
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label (without the "_:" prefix).
	Value string
	// Lang is the language tag for language-tagged literals ("en", "de").
	Lang string
	// Datatype is the datatype IRI for typed literals. Empty for plain
	// literals and IRIs.
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a typed literal term.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsZero reports whether t is the zero Term.
func (t Term) IsZero() bool {
	return t.Kind == IRI && t.Value == "" && t.Lang == "" && t.Datatype == ""
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("!badterm(%d,%q)", t.Kind, t.Value)
	}
}

// Compare orders terms: IRIs before blanks before literals, then by value,
// language and datatype. It returns -1, 0 or +1.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Lang, u.Lang); c != 0 {
		return c
	}
	return strings.Compare(t.Datatype, u.Datatype)
}

// LocalName returns the fragment or last path segment of an IRI, which is
// the best short label when no rdfs:label is available. For literals it
// returns the lexical form, for blanks the label.
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexByte(v, '#'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	if i := strings.LastIndexByte(v, '/'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLiteral reverses escapeLiteral. Unknown escapes are kept verbatim
// (backslash dropped), matching the lenient behaviour of common parsers.
func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'u':
			if i+4 < len(s) {
				var r rune
				ok := true
				for _, h := range s[i+1 : i+5] {
					d, okd := hexVal(byte(h))
					if !okd {
						ok = false
						break
					}
					r = r<<4 | rune(d)
				}
				if ok {
					b.WriteRune(r)
					i += 4
					continue
				}
			}
			b.WriteByte('u')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
