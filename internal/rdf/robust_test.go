package rdf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTurtleParserNeverPanics feeds random fragments to the Turtle parser;
// rejection is fine, panics are not.
func TestTurtleParserNeverPanics(t *testing.T) {
	fragments := []string{
		"@prefix", "ex:", "<http://x/a>", "a", ";", ",", ".", "owl:Class",
		`"literal"`, "@en", "^^", "42", "-3.5", "true", "_:b1", "{", "}",
		"@base", "PREFIX", "rdfs:subClassOf",
	}
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 5000; i++ {
		n := r.Intn(15)
		src := ""
		for j := 0; j < n; j++ {
			src += fragments[r.Intn(len(fragments))] + " "
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("turtle parser panicked on %q: %v", src, rec)
				}
			}()
			ParseTurtle(src)
		}()
	}
}

// TestTurtleParserRandomBytes goes fully random.
func TestTurtleParserRandomBytes(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("panicked on %q: %v", src, rec)
			}
		}()
		ParseTurtle(src)
		ParseNTriples(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
