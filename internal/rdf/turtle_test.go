package rdf

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
)

func TestParseTurtleBasic(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

ex:plato a ex:Philosopher ;
    foaf:name "Plato"@en ;
    ex:born 427 ;
    ex:influenced ex:aristotle, ex:plotinus .
`
	ts, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("parsed %d triples, want 5:\n%s", len(ts), FormatNTriples(ts))
	}
	if ts[0].P != TypeIRI {
		t.Errorf("'a' should expand to rdf:type, got %s", ts[0].P)
	}
	if ts[0].O != NewIRI("http://example.org/Philosopher") {
		t.Errorf("prefixed name wrong: %s", ts[0].O)
	}
	if ts[1].O != NewLangLiteral("Plato", "en") {
		t.Errorf("lang literal wrong: %+v", ts[1].O)
	}
	if ts[2].O != NewTypedLiteral("427", XSDInteger) {
		t.Errorf("integer shorthand wrong: %+v", ts[2].O)
	}
	if ts[3].O != NewIRI("http://example.org/aristotle") || ts[4].O != NewIRI("http://example.org/plotinus") {
		t.Errorf("object list wrong: %+v / %+v", ts[3].O, ts[4].O)
	}
}

func TestParseTurtleSPARQLStylePrefix(t *testing.T) {
	doc := `PREFIX ex: <http://example.org/>
ex:a ex:p ex:b .`
	ts, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("parsed %d triples", len(ts))
	}
}

func TestParseTurtleWellKnownPrefixesPreloaded(t *testing.T) {
	doc := `<http://x/C> a owl:Class ; rdfs:subClassOf owl:Thing ; rdfs:label "C" .`
	ts, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("parsed %d triples, want 3", len(ts))
	}
	if ts[0].O != OWLClassIRI {
		t.Errorf("owl:Class = %s", ts[0].O)
	}
	if ts[1].P != SubClassOfIRI || ts[1].O != OWLThingIRI {
		t.Errorf("subclass triple wrong: %v", ts[1])
	}
}

func TestParseTurtleNumericAndBoolean(t *testing.T) {
	doc := `@prefix ex: <http://example.org/> .
ex:a ex:i 42 ; ex:neg -7 ; ex:f 3.14 ; ex:e 1e9 ; ex:t true ; ex:fa false .`
	ts, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []Term{
		NewTypedLiteral("42", XSDInteger),
		NewTypedLiteral("-7", XSDInteger),
		NewTypedLiteral("3.14", XSDDouble),
		NewTypedLiteral("1e9", XSDDouble),
		NewTypedLiteral("true", XSDBoolean),
		NewTypedLiteral("false", XSDBoolean),
	}
	for i, w := range want {
		if ts[i].O != w {
			t.Errorf("object %d = %+v, want %+v", i, ts[i].O, w)
		}
	}
}

func TestParseTurtleBase(t *testing.T) {
	doc := `@base <http://example.org/data/> .
<s1> <p1> <o1> .`
	ts, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].S != NewIRI("http://example.org/data/s1") {
		t.Errorf("base resolution wrong: %s", ts[0].S)
	}
}

func TestParseTurtleDanglingSemicolon(t *testing.T) {
	doc := `@prefix ex: <http://example.org/> .
ex:a ex:p ex:b ; .`
	ts, err := ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("parsed %d triples, want 1", len(ts))
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:a ex:p ex:b .`, // undeclared prefix
		`@prefix ex: <http://x/> . ex:a ex:p [ ex:q 1 ] .`, // bnode property list
		`@prefix ex: <http://x/> . ex:a ex:p (1 2) .`,      // collection
		`@prefix ex: <http://x/> . ex:a ex:p `,             // truncated
		`@prefix ex: <http://x/> . ex:a ex:p ex:b`,         // missing dot
		`@prefix ex <http://x/> .`,                         // malformed prefix decl
		`@unknown foo .`,                                   // unknown directive
		`@prefix ex: <http://x/> . ex:a ex:p "unclosed .`,  // unterminated literal
	}
	for i, doc := range bad {
		if _, err := ParseTurtle(doc); err == nil {
			t.Errorf("case %d: no error for %q", i, doc)
		}
	}
}

func TestWriteTurtleRoundtrip(t *testing.T) {
	in := []Triple{
		{S: NewIRI("http://example.org/plato"), P: TypeIRI, O: NewIRI("http://example.org/Philosopher")},
		{S: NewIRI("http://example.org/plato"), P: LabelIRI, O: NewLangLiteral("Plato", "en")},
		{S: NewIRI("http://example.org/plato"), P: NewIRI("http://example.org/born"), O: NewTypedLiteral("-427", XSDInteger)},
		{S: NewIRI("http://example.org/aristotle"), P: TypeIRI, O: NewIRI("http://example.org/Philosopher")},
	}
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseTurtle(buf.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	sortTriples(in)
	sortTriples(out)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round-trip mismatch:\nin:\n%s\nout:\n%s", FormatNTriples(in), FormatNTriples(out))
	}
}

func TestQName(t *testing.T) {
	if got := QName(RDFType); got != "rdf:type" {
		t.Errorf("QName(rdf:type) = %q", got)
	}
	if got := QName("http://unknown.example/x"); got != "<http://unknown.example/x>" {
		t.Errorf("QName fallback = %q", got)
	}
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
