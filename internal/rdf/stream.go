package rdf

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// This file implements the chunked streaming front end of the parallel
// ingest pipeline: a single scanner pass walks the input once, cuts it
// into chunks on line (N-Triples) or statement (Turtle) boundaries, and
// hands each chunk to the caller. Chunks are self-contained — a worker
// pool can parse them concurrently and in any order — and the whole
// document is never materialized as one string or one []Triple.

// Syntax selects the concrete syntax of a streamed RDF document.
type Syntax int

const (
	// SyntaxNTriples is line-oriented N-Triples.
	SyntaxNTriples Syntax = iota
	// SyntaxTurtle is the pragmatic Turtle subset of ReadTurtle.
	SyntaxTurtle
)

// String returns the conventional file extension name of the format.
func (f Syntax) String() string {
	if f == SyntaxTurtle {
		return "ttl"
	}
	return "nt"
}

// DetectFormat picks the syntax from a file name: .ttl (and .turtle) mean
// Turtle, everything else N-Triples.
func DetectFormat(path string) Syntax {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ttl", ".turtle":
		return SyntaxTurtle
	}
	return SyntaxNTriples
}

// Chunk is one independently parseable slice of a streamed document: whole
// lines for N-Triples, whole statements for Turtle, with the prefix table
// in effect at the chunk's position frozen in. Chunks carry everything a
// worker needs, so they may be parsed concurrently and out of order.
type Chunk struct {
	// Index is the 0-based sequence number of the chunk in the stream.
	Index int
	// Data holds the chunk's raw statement text.
	Data string
	// Line is the 1-based line number of the chunk's first byte.
	Line int

	syntax   Syntax
	prefixes map[string]string // Turtle: frozen prefix table (read-only)
	base     string            // Turtle: @base in effect
}

// Parse parses every statement in the chunk, invoking emit per triple in
// document order. An emit error aborts the parse and is returned as is.
func (c *Chunk) Parse(emit func(Triple) error) error {
	if c.syntax == SyntaxTurtle {
		return parseTurtleChunk(c.Data, c.Line, c.prefixes, c.base, emit)
	}
	return parseNTChunk(c.Data, c.Line, emit)
}

// parseNTChunk parses the N-Triples lines of a chunk.
func parseNTChunk(data string, startLine int, emit func(Triple) error) error {
	line := startLine
	for len(data) > 0 {
		var l string
		if end := strings.IndexByte(data, '\n'); end >= 0 {
			l, data = data[:end], data[end+1:]
		} else {
			l, data = data, ""
		}
		t, ok, err := parseNTLine(l, line)
		if err != nil {
			return err
		}
		line++
		if !ok {
			continue
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

const (
	// defaultChunkBytes is the target chunk size: big enough that
	// per-chunk overhead vanishes, small enough that a handful of chunks
	// per worker keep the pipeline balanced.
	defaultChunkBytes = 1 << 20
	// maxStatementBytes bounds a single line/statement so a corrupt input
	// (an unterminated literal swallowing the document) fails loudly
	// instead of buffering everything. Mirrors ReadNTriples' scanner cap.
	maxStatementBytes = 16 << 20
)

// StreamChunks reads r once, cutting it into boundary-aligned chunks of
// roughly chunkBytes (0 means the default), and calls emit for each in
// stream order. For Turtle it also interprets @prefix/@base (and their
// SPARQL-style forms) on the fly, so every chunk carries the prefix table
// in effect at its position. An emit error aborts the stream.
func StreamChunks(r io.Reader, syntax Syntax, chunkBytes int, emit func(Chunk) error) error {
	if chunkBytes <= 0 {
		chunkBytes = defaultChunkBytes
	}
	if syntax == SyntaxTurtle {
		return streamTurtleChunks(r, chunkBytes, emit)
	}
	return streamNTChunks(r, chunkBytes, emit)
}

// streamNTChunks cuts the stream on newline boundaries.
func streamNTChunks(r io.Reader, chunkBytes int, emit func(Chunk) error) error {
	var (
		pend  []byte
		buf   = make([]byte, chunkBytes)
		line  = 1
		index = 0
	)
	flush := func(upto int) error {
		c := Chunk{Index: index, Data: string(pend[:upto]), Line: line}
		if err := emit(c); err != nil {
			return err
		}
		index++
		line += bytes.Count(pend[:upto], nl)
		pend = append(pend[:0], pend[upto:]...)
		return nil
	}
	noNL := 0 // pend[:noNL] is known to hold no '\n'; avoids rescans
	for {
		n, rerr := r.Read(buf)
		pend = append(pend, buf[:n]...)
		if len(pend) >= chunkBytes {
			// Cut at the last newline; the unscanned suffix is all that
			// can hold one. After a flush the tail has no newline either,
			// so a single cut per read drains everything cuttable.
			if cut := bytes.LastIndexByte(pend[noNL:], '\n'); cut >= 0 {
				if err := flush(noNL + cut + 1); err != nil {
					return err
				}
			} else if len(pend) > maxStatementBytes {
				return &ParseError{Line: line, Msg: fmt.Sprintf("line exceeds %d bytes", maxStatementBytes)}
			}
			noNL = len(pend)
		}
		if rerr == io.EOF {
			if len(pend) > 0 {
				return flush(len(pend))
			}
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("rdf: reading stream: %w", rerr)
		}
	}
}

var nl = []byte{'\n'}

// --- Turtle statement-boundary streaming ---

// ttlStream walks a Turtle stream one top-level unit (statement or
// directive) at a time, maintaining the prefix table, and groups
// statements into chunks.
type ttlStream struct {
	r    io.Reader
	buf  []byte // read scratch
	pend []byte // unconsumed input, starts mid-stream
	eof  bool
	line int // line number of pend[0]

	prefixes map[string]string
	base     string

	group     []byte // accumulated statements for the next chunk
	groupLine int
	index     int
	chunk     int
	emit      func(Chunk) error
}

// streamTurtleChunks cuts the stream on statement boundaries and applies
// directives in the chunker, so worker-parsed chunks need no shared
// mutable prefix state.
func streamTurtleChunks(r io.Reader, chunkBytes int, emit func(Chunk) error) error {
	s := &ttlStream{
		r:        r,
		buf:      make([]byte, 64*1024),
		line:     1,
		prefixes: map[string]string{},
		chunk:    chunkBytes,
		emit:     emit,
	}
	for k, v := range WellKnownPrefixes {
		s.prefixes[k] = v
	}
	for {
		if err := s.skipSeparators(); err != nil {
			return err
		}
		if s.eof && len(s.pend) == 0 {
			return s.flush()
		}
		isDirective, err := s.atDirective()
		if err != nil {
			return err
		}
		if isDirective {
			if err := s.flush(); err != nil {
				return err
			}
			if err := s.directive(); err != nil {
				return err
			}
			continue
		}
		if err := s.statement(); err != nil {
			return err
		}
		if len(s.group) >= s.chunk {
			if err := s.flush(); err != nil {
				return err
			}
		}
	}
}

// fill reads more input into pend; returns false when the source is
// exhausted and nothing was added.
func (s *ttlStream) fill() (bool, error) {
	if s.eof {
		return false, nil
	}
	n, err := s.r.Read(s.buf)
	s.pend = append(s.pend, s.buf[:n]...)
	if err == io.EOF {
		s.eof = true
	} else if err != nil {
		return false, fmt.Errorf("rdf: reading stream: %w", err)
	}
	return n > 0, nil
}

// need ensures at least n bytes are buffered, or that EOF was reached.
func (s *ttlStream) need(n int) error {
	for len(s.pend) < n && !s.eof {
		if _, err := s.fill(); err != nil {
			return err
		}
	}
	return nil
}

// consume drops n bytes from pend, updating the line counter.
func (s *ttlStream) consume(n int) {
	s.line += bytes.Count(s.pend[:n], nl)
	s.pend = append(s.pend[:0], s.pend[n:]...)
}

// skipSeparators consumes whitespace and comments between units. While a
// chunk group is open, the separator bytes are appended to it verbatim:
// chunk text then reproduces the input byte for byte from the group's
// first statement on, which keeps in-chunk parse-error line numbers
// exact even for multi-line statements.
func (s *ttlStream) skipSeparators() error {
	drop := func(i int) {
		if i > 0 && len(s.group) > 0 {
			s.group = append(s.group, s.pend[:i]...)
		}
		s.consume(i)
	}
	for {
		i := 0
		for i < len(s.pend) {
			c := s.pend[i]
			if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				i++
				continue
			}
			if c == '#' {
				j := bytes.IndexByte(s.pend[i:], '\n')
				if j < 0 {
					if !s.eof {
						break // comment may continue; read more
					}
					i = len(s.pend)
					continue
				}
				i += j + 1
				continue
			}
			drop(i)
			return nil
		}
		drop(i)
		if s.eof {
			return nil
		}
		if _, err := s.fill(); err != nil {
			return err
		}
	}
}

// atDirective reports whether pend (positioned at a unit start) begins a
// @prefix/@base/PREFIX/BASE directive.
func (s *ttlStream) atDirective() (bool, error) {
	if err := s.need(8); err != nil {
		return false, err
	}
	if len(s.pend) == 0 {
		return false, nil
	}
	if s.pend[0] == '@' {
		return true, nil
	}
	head := s.pend
	if len(head) > 8 {
		head = head[:8]
	}
	up := strings.ToUpper(string(head))
	return strings.HasPrefix(up, "PREFIX") || strings.HasPrefix(up, "BASE"), nil
}

// scanUnit returns the length of the complete statement starting at
// pend[0], reading more input as needed. A statement ends at a top-level
// '.' followed by whitespace, a comment, or EOF.
func (s *ttlStream) scanUnit() (int, error) {
	var (
		i       int
		inIRI   bool
		quote   byte
		comment bool
	)
	for {
		for i < len(s.pend) {
			c := s.pend[i]
			switch {
			case comment:
				if c == '\n' {
					comment = false
				}
			case quote != 0:
				if c == '\\' {
					i++ // skip the escaped byte
				} else if c == quote {
					quote = 0
				}
			case inIRI:
				if c == '>' {
					inIRI = false
				}
			case c == '<':
				inIRI = true
			case c == '"' || c == '\'':
				quote = c
			case c == '#':
				comment = true
			case c == '.':
				// Terminator iff followed by whitespace/comment/EOF; a
				// '.' inside a number or name is always followed by more
				// token characters.
				if i+1 >= len(s.pend) && !s.eof {
					if err := s.need(i + 2); err != nil {
						return 0, err
					}
					continue
				}
				if i+1 >= len(s.pend) || isWS(s.pend[i+1]) || s.pend[i+1] == '#' {
					return i + 1, nil
				}
			}
			i++
		}
		if s.eof {
			return 0, &ParseError{Line: s.line, Msg: "unexpected end of document, expected '.'"}
		}
		if len(s.pend) > maxStatementBytes {
			return 0, &ParseError{Line: s.line, Msg: fmt.Sprintf("statement exceeds %d bytes", maxStatementBytes)}
		}
		if _, err := s.fill(); err != nil {
			return 0, err
		}
	}
}

// statement appends the next statement to the current chunk group.
func (s *ttlStream) statement() error {
	n, err := s.scanUnit()
	if err != nil {
		return err
	}
	if len(s.group) == 0 {
		s.groupLine = s.line
	}
	s.group = append(s.group, s.pend[:n]...)
	s.consume(n)
	return nil
}

// directive parses and applies a @prefix/@base/PREFIX/BASE directive. The
// prefix table is cloned before the update: chunks already emitted keep
// reading their frozen table.
func (s *ttlStream) directive() error {
	// The '@' forms end at a top-level '.'; the SPARQL forms end after
	// the namespace IRI (with an optional trailing '.').
	var n int
	if s.pend[0] == '@' {
		var err error
		n, err = s.scanUnit()
		if err != nil {
			return err
		}
	} else {
		for {
			gt := bytes.IndexByte(s.pend, '>')
			if gt >= 0 {
				n = gt + 1
				// Include an optional trailing dot. The serial parser
				// tolerates it separated by any whitespace or comments
				// (even across lines), so scan the same way here or a
				// lone '.' would be orphaned into the next statement.
				j := n
				inComment := false
				for {
					for j < len(s.pend) {
						c := s.pend[j]
						if inComment {
							if c == '\n' {
								inComment = false
							}
							j++
							continue
						}
						if isWS(c) {
							j++
							continue
						}
						if c == '#' {
							inComment = true
							j++
							continue
						}
						break
					}
					if j < len(s.pend) || s.eof || len(s.pend) > maxStatementBytes {
						break
					}
					if _, err := s.fill(); err != nil {
						return err
					}
				}
				if j < len(s.pend) && s.pend[j] == '.' {
					n = j + 1
				}
				break
			}
			if s.eof {
				return &ParseError{Line: s.line, Msg: "unterminated directive"}
			}
			if len(s.pend) > maxStatementBytes {
				return &ParseError{Line: s.line, Msg: "unterminated directive"}
			}
			if _, err := s.fill(); err != nil {
				return err
			}
		}
	}
	next := make(map[string]string, len(s.prefixes)+1)
	for k, v := range s.prefixes {
		next[k] = v
	}
	p := &turtleParser{s: string(s.pend[:n]), line: s.line, prefixes: next, base: s.base}
	if err := p.directive(); err != nil {
		return err
	}
	s.prefixes = next
	s.base = p.base
	s.consume(n)
	return nil
}

// flush emits the accumulated statement group as one chunk.
func (s *ttlStream) flush() error {
	if len(s.group) == 0 {
		return nil
	}
	c := Chunk{
		Index:    s.index,
		Data:     string(s.group),
		Line:     s.groupLine,
		syntax:   SyntaxTurtle,
		prefixes: s.prefixes,
		base:     s.base,
	}
	s.index++
	s.group = s.group[:0]
	return s.emit(c)
}
