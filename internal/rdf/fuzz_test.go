package rdf

import (
	"bytes"
	"testing"
)

// FuzzStreamChunks drives the parallel-ingest chunker with arbitrary
// documents and checks its two contracts: it never panics, and when the
// serial parser accepts the document, cutting it into (very small)
// chunks and parsing each chunk independently yields exactly the same
// triples in the same order — i.e. the chunker never splits a statement
// and never loses or duplicates one.
func FuzzStreamChunks(f *testing.F) {
	f.Add([]byte("<http://x/s> <http://x/p> <http://x/o> .\n"), false)
	f.Add([]byte("<http://x/s> <http://x/p> \"lit\" .\n<http://x/a> <http://x/b> <http://x/c> .\n"), false)
	f.Add([]byte("# comment\n\n<http://x/s> <http://x/p> _:b0 .\n"), false)
	f.Add([]byte("@prefix ex: <http://example.org/> .\nex:s ex:p ex:o .\n"), true)
	f.Add([]byte("@prefix ex: <http://example.org/> .\nex:s ex:p \"a\", \"b\" ; ex:q ex:o .\n"), true)
	f.Add([]byte("@base <http://example.org/> .\n<s> <p> <o> .\n"), true)
	f.Add([]byte(""), false)
	f.Add([]byte("not rdf at all"), true)
	f.Add([]byte("<unterminated"), false)

	f.Fuzz(func(t *testing.T, data []byte, useTurtle bool) {
		syntax := SyntaxNTriples
		var serial []Triple
		var serialErr error
		if useTurtle {
			syntax = SyntaxTurtle
			serial, serialErr = ReadTurtle(bytes.NewReader(data))
		} else {
			serial, serialErr = ReadNTriples(bytes.NewReader(data))
		}

		var chunked []Triple
		chunkErr := StreamChunks(bytes.NewReader(data), syntax, 16, func(c Chunk) error {
			return c.Parse(func(tr Triple) error {
				chunked = append(chunked, tr)
				return nil
			})
		})

		if serialErr != nil {
			// The serial parser rejected the document; the chunker may
			// reject it too (usually with the same error). It just must
			// not crash — reaching here is the invariant.
			return
		}
		if chunkErr != nil {
			t.Fatalf("serial parse accepted %d triples but chunked parse failed: %v\ninput: %q", len(serial), chunkErr, data)
		}
		if len(chunked) != len(serial) {
			t.Fatalf("chunked parse returned %d triples, serial %d\ninput: %q", len(chunked), len(serial), data)
		}
		for i := range serial {
			if chunked[i] != serial[i] {
				t.Fatalf("triple %d differs: chunked %v, serial %v\ninput: %q", i, chunked[i], serial[i], data)
			}
		}
	})
}

// FuzzDetectFormat checks that syntax detection never panics and is a
// pure function of the path.
func FuzzDetectFormat(f *testing.F) {
	f.Add("data.nt")
	f.Add("data.ttl")
	f.Add("DATA.TURTLE")
	f.Add("")
	f.Add("no-extension")
	f.Add("weird..ttl.")
	f.Add("dir.ttl/file")

	f.Fuzz(func(t *testing.T, path string) {
		got := DetectFormat(path)
		if again := DetectFormat(path); again != got {
			t.Fatalf("DetectFormat(%q) unstable: %v then %v", path, got, again)
		}
		if s := got.String(); s != "nt" && s != "ttl" {
			t.Fatalf("DetectFormat(%q) = %v with unknown name %q", path, got, s)
		}
	})
}
