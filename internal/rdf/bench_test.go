package rdf

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
)

func benchDoc(n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://example.org/s%d> <http://example.org/p%d> \"value %d\"@en .\n", i, i%10, i)
	}
	return b.String()
}

func BenchmarkParseNTriples(b *testing.B) {
	doc := benchDoc(10_000)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, err := ParseNTriples(doc)
		if err != nil {
			b.Fatal(err)
		}
		if len(ts) != 10_000 {
			b.Fatalf("parsed %d", len(ts))
		}
	}
}

func BenchmarkWriteNTriples(b *testing.B) {
	ts, err := ParseNTriples(benchDoc(10_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WriteNTriples(&buf, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTurtle(b *testing.B) {
	var sb bytes.Buffer
	sb.WriteString("@prefix ex: <http://example.org/> .\n")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "ex:s%d a ex:C%d ; ex:name \"n%d\" ; ex:knows ex:s%d .\n", i, i%7, i, (i+1)%5000)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, err := ParseTurtle(doc)
		if err != nil {
			b.Fatal(err)
		}
		if len(ts) != 15_000 {
			b.Fatalf("parsed %d", len(ts))
		}
	}
}

func BenchmarkDictIntern(b *testing.B) {
	terms := make([]Term, 1000)
	for i := range terms {
		terms[i] = NewIRI(fmt.Sprintf("http://example.org/t%d", i))
	}
	d := NewDict(len(terms))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(terms[i%len(terms)])
	}
}

func BenchmarkDictLookupHit(b *testing.B) {
	d := NewDict(1000)
	terms := make([]Term, 1000)
	for i := range terms {
		terms[i] = NewIRI(fmt.Sprintf("http://example.org/t%d", i))
		d.Intern(terms[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup(terms[i%len(terms)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkDictInternParallel measures Intern contention: every
// goroutine hammers the same pre-populated dictionary, so throughput is
// bounded by the lock-free published read side rather than a global
// mutex. Compare with BenchmarkDictIntern for the single-threaded cost.
func BenchmarkDictInternParallel(b *testing.B) {
	terms := make([]Term, 4096)
	d := NewDict(len(terms))
	for i := range terms {
		terms[i] = NewIRI(fmt.Sprintf("http://example.org/t%d", i))
		d.Intern(terms[i])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			d.Intern(terms[i%len(terms)])
			i++
		}
	})
}

// BenchmarkDictInternParallelMisses is the insert-heavy variant: each
// iteration interns a fresh term, exercising the sharded write path and
// the serialized ID allocation.
func BenchmarkDictInternParallelMisses(b *testing.B) {
	d := NewDict(b.N)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.Intern(NewIRI(fmt.Sprintf("http://example.org/m%d", ctr.Add(1))))
		}
	})
}
