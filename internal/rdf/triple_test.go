package rdf

import (
	"sort"
	"strings"
	"testing"
)

func tr(s, p, o string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewIRI(o)}
}

func TestTripleValidate(t *testing.T) {
	ok := Triple{S: NewIRI("http://x/s"), P: NewIRI("http://x/p"), O: NewLiteral("v")}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	blankSubj := Triple{S: NewBlank("b"), P: NewIRI("http://x/p"), O: NewIRI("http://x/o")}
	if err := blankSubj.Validate(); err != nil {
		t.Errorf("blank subject should be admitted: %v", err)
	}
	bad := []Triple{
		{S: NewLiteral("x"), P: NewIRI("p"), O: NewIRI("o")},
		{S: Term{}, P: NewIRI("p"), O: NewIRI("o")},
		{S: NewIRI("s"), P: NewLiteral("p"), O: NewIRI("o")},
		{S: NewIRI("s"), P: NewBlank("p"), O: NewIRI("o")},
		{S: NewIRI("s"), P: NewIRI("p"), O: Term{}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid triple accepted: %v", i, b)
		}
	}
}

func TestTripleCompareTotalOrder(t *testing.T) {
	ts := []Triple{
		tr("http://x/b", "http://x/p", "http://x/o"),
		tr("http://x/a", "http://x/q", "http://x/o"),
		tr("http://x/a", "http://x/p", "http://x/z"),
		tr("http://x/a", "http://x/p", "http://x/o"),
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	want := []Triple{
		tr("http://x/a", "http://x/p", "http://x/o"),
		tr("http://x/a", "http://x/p", "http://x/z"),
		tr("http://x/a", "http://x/q", "http://x/o"),
		tr("http://x/b", "http://x/p", "http://x/o"),
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestGraphAddDeduplicates(t *testing.T) {
	g := NewGraph(4)
	a := tr("http://x/s", "http://x/p", "http://x/o")
	if !g.Add(a) {
		t.Error("first Add should report true")
	}
	if g.Add(a) {
		t.Error("duplicate Add should report false")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if !g.Contains(a) {
		t.Error("Contains should find the added triple")
	}
	n := g.AddAll([]Triple{a, tr("http://x/s", "http://x/p", "http://x/o2")})
	if n != 1 {
		t.Errorf("AddAll added %d, want 1", n)
	}
}

func TestGraphURIsAndLiterals(t *testing.T) {
	g := NewGraph(4)
	g.Add(Triple{S: NewIRI("http://x/s"), P: NewIRI("http://x/p"), O: NewLiteral("lit")})
	g.Add(Triple{S: NewBlank("b"), P: NewIRI("http://x/q"), O: NewIRI("http://x/o")})
	uris := g.URIs()
	for _, want := range []string{"http://x/s", "http://x/p", "http://x/q", "http://x/o"} {
		if _, ok := uris[NewIRI(want)]; !ok {
			t.Errorf("URIs missing %s", want)
		}
	}
	if _, ok := uris[NewBlank("b")]; ok {
		t.Error("URIs should not include blank nodes")
	}
	lits := g.Literals()
	if len(lits) != 1 {
		t.Errorf("Literals size = %d, want 1", len(lits))
	}
	if _, ok := lits[NewLiteral("lit")]; !ok {
		t.Error("Literals missing the object literal")
	}
}

func TestGraphStringCanonical(t *testing.T) {
	g := NewGraph(2)
	g.Add(tr("http://x/b", "http://x/p", "http://x/o"))
	g.Add(tr("http://x/a", "http://x/p", "http://x/o"))
	s := g.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 2 {
		t.Fatalf("String produced %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "<http://x/a>") {
		t.Errorf("canonical order broken: %q first", lines[0])
	}
}
