package rdf

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestParseNTriplesBasic(t *testing.T) {
	doc := `
# a comment
<http://x/s> <http://x/p> <http://x/o> .
<http://x/s> <http://x/p> "plain" .
<http://x/s> <http://x/p> "tagged"@en .
<http://x/s> <http://x/p> "7"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://x/p> _:b2 .
`
	ts, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("parsed %d triples, want 5", len(ts))
	}
	if ts[1].O != NewLiteral("plain") {
		t.Errorf("plain literal: %+v", ts[1].O)
	}
	if ts[2].O != NewLangLiteral("tagged", "en") {
		t.Errorf("lang literal: %+v", ts[2].O)
	}
	if ts[3].O != NewTypedLiteral("7", XSDInteger) {
		t.Errorf("typed literal: %+v", ts[3].O)
	}
	if ts[4].S != NewBlank("b1") || ts[4].O != NewBlank("b2") {
		t.Errorf("blank nodes: %+v", ts[4])
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	doc := `<http://x/s> <http://x/p> "line1\nline2\t\"quoted\" \\ back" .` + "\n"
	ts, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "line1\nline2\t\"quoted\" \\ back"
	if ts[0].O.Value != want {
		t.Errorf("unescaped to %q, want %q", ts[0].O.Value, want)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> <http://x/o>`,         // missing dot
		`<http://x/s> <http://x/p> .`,                    // missing object
		`<http://x/s> "lit" <http://x/o> .`,              // literal predicate
		`"lit" <http://x/p> <http://x/o> .`,              // literal subject
		`<http://x/s> <http://x/p> <http://x/o> . extra`, // trailing garbage
		`<http://x/s <http://x/p> <http://x/o> .`,        // unterminated IRI
		`<http://x/s> <http://x/p> "unterminated .`,      // unterminated literal
		`<http://x/s> <http://x/p> "x"@ .`,               // empty lang tag
		`<http://x/s> <http://x/p> "x"^^foo .`,           // bad datatype
		`<http://x/s> <http://x/p> <http://x/o x> .`,     // space in IRI
		`_: <http://x/p> <http://x/o> .`,                 // empty blank label
	}
	for i, doc := range bad {
		if _, err := ParseNTriples(doc + "\n"); err == nil {
			t.Errorf("case %d: no error for %q", i, doc)
		} else if pe, ok := err.(*ParseError); !ok {
			t.Errorf("case %d: error type %T, want *ParseError", i, err)
		} else if pe.Line != 1 {
			t.Errorf("case %d: line = %d, want 1", i, pe.Line)
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	doc := "<http://x/s> <http://x/p> <http://x/o> .\n\nbroken line\n"
	_, err := ParseNTriples(doc)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("Error() should mention the line: %q", pe.Error())
	}
}

func TestWriteReadNTriplesRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var in []Triple
	for i := 0; i < 400; i++ {
		in = append(in, Triple{
			S: randomTerm(r, false),
			P: NewIRI("http://example.org/p/" + randIdent(r)),
			O: randomTerm(r, true),
		})
	}
	var buf bytes.Buffer
	if _, err := WriteNTriples(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("round-trip mismatch")
	}
}

func TestFormatNTriples(t *testing.T) {
	ts := []Triple{tr("http://x/a", "http://x/p", "http://x/o")}
	got := FormatNTriples(ts)
	want := "<http://x/a> <http://x/p> <http://x/o> .\n"
	if got != want {
		t.Errorf("FormatNTriples = %q, want %q", got, want)
	}
}

func TestReadNTriplesLongLine(t *testing.T) {
	long := strings.Repeat("x", 200_000)
	doc := `<http://x/s> <http://x/p> "` + long + `" .` + "\n"
	ts, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts[0].O.Value) != len(long) {
		t.Error("long literal truncated")
	}
}
