package rdf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermKindString(t *testing.T) {
	cases := map[TermKind]string{IRI: "iri", Literal: "literal", Blank: "blank", TermKind(9): "TermKind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("TermKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Errorf("NewIRI kind flags wrong: %+v", iri)
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() {
		t.Errorf("NewLiteral kind wrong: %+v", lit)
	}
	lang := NewLangLiteral("hallo", "de")
	if lang.Lang != "de" {
		t.Errorf("NewLangLiteral lang = %q", lang.Lang)
	}
	typed := NewTypedLiteral("42", XSDInteger)
	if typed.Datatype != XSDInteger {
		t.Errorf("NewTypedLiteral datatype = %q", typed.Datatype)
	}
	b := NewBlank("b1")
	if !b.IsBlank() {
		t.Errorf("NewBlank kind wrong: %+v", b)
	}
}

func TestTermIsZero(t *testing.T) {
	var z Term
	if !z.IsZero() {
		t.Error("zero Term should report IsZero")
	}
	if NewIRI("x").IsZero() {
		t.Error("non-empty IRI should not be zero")
	}
	if NewLiteral("").IsZero() {
		t.Error("empty plain literal is a valid term, not zero")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewBlank("n1"), "_:n1"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("3", XSDInteger), `"3"^^<` + XSDInteger + `>`},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTermCompare(t *testing.T) {
	a := NewIRI("http://x/a")
	b := NewIRI("http://x/b")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("IRI ordering broken")
	}
	if NewIRI("z").Compare(NewLiteral("a")) >= 0 {
		t.Error("IRIs must sort before literals")
	}
	if NewLangLiteral("x", "de").Compare(NewLangLiteral("x", "en")) >= 0 {
		t.Error("language tags must participate in ordering")
	}
	if NewTypedLiteral("x", "dtA").Compare(NewTypedLiteral("x", "dtB")) >= 0 {
		t.Error("datatypes must participate in ordering")
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"http://example.org/onto#Person", "Person"},
		{"http://example.org/resource/Plato", "Plato"},
		{"http://example.org/", "http://example.org/"},
		{"urn:isbn:123", "urn:isbn:123"},
	}
	for _, c := range cases {
		if got := NewIRI(c.in).LocalName(); got != c.want {
			t.Errorf("LocalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := NewLiteral("lex").LocalName(); got != "lex" {
		t.Errorf("literal LocalName = %q", got)
	}
}

func TestEscapeUnescapeRoundtrip(t *testing.T) {
	f := func(s string) bool {
		return unescapeLiteral(escapeLiteral(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnescapeUnicode(t *testing.T) {
	if got := unescapeLiteral(`café`); got != "café" {
		t.Errorf("unicode escape: got %q", got)
	}
	if got := unescapeLiteral(`bad\u00g9`); !strings.Contains(got, "u") {
		t.Errorf("malformed unicode escape should be kept lenient, got %q", got)
	}
}

// randomTerm produces an arbitrary structurally valid term for property
// tests. Only characters legal in our N-Triples output are used for IRIs.
func randomTerm(r *rand.Rand, allowLiteral bool) Term {
	kindMax := 2
	if allowLiteral {
		kindMax = 3
	}
	switch r.Intn(kindMax) {
	case 0:
		return NewIRI("http://example.org/" + randIdent(r))
	case 1:
		return NewBlank(randIdent(r))
	default:
		switch r.Intn(3) {
		case 0:
			return NewLiteral(randText(r))
		case 1:
			return NewLangLiteral(randText(r), []string{"en", "de", "fr"}[r.Intn(3)])
		default:
			return NewTypedLiteral(randText(r), XSDString)
		}
	}
}

func randIdent(r *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}

func randText(r *rand.Rand) string {
	const chars = "abc \"\\\n\tXYZ123é"
	n := r.Intn(16)
	var b strings.Builder
	rs := []rune(chars)
	for i := 0; i < n; i++ {
		b.WriteRune(rs[r.Intn(len(rs))])
	}
	return b.String()
}

func TestRandomTermStringParse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := randomTerm(r, false)
		o := randomTerm(r, true)
		tr := Triple{S: s, P: NewIRI("http://example.org/p"), O: o}
		parsed, err := ParseNTriples(tr.String() + "\n")
		if err != nil {
			t.Fatalf("round-trip parse failed for %s: %v", tr, err)
		}
		if len(parsed) != 1 || !reflect.DeepEqual(parsed[0], tr) {
			t.Fatalf("round-trip mismatch: %s -> %+v", tr, parsed)
		}
	}
}
