package rdf

import (
	"hash/maphash"
	"slices"
	"sync"
)

// provisionalBase is the first provisional ID a DictBatch hands out. The
// dictionary's canonical IDs stay far below it (half a billion terms), so
// the two ranges never collide and Canonical can tell them apart by a
// single compare. It is also below the SPARQL executor's query-local
// overflow range (1<<31).
const provisionalBase ID = 1 << 29

// batchEntry is one new term discovered during a batch: its local index
// within the shard and the smallest occurrence key seen so far.
type batchEntry struct {
	local int32
	pos   uint64
}

// batchShard mirrors a dictionary shard for terms that are new in this
// batch. terms[local] holds the cloned term so chunk buffers are never
// pinned past the batch.
type batchShard struct {
	mu      sync.Mutex
	entries map[Term]batchEntry
	terms   []Term
	firsts  []uint64 // firsts[local] = smallest occurrence key
}

// DictBatch is a parallel bulk interner layered over a Dict. Workers call
// Intern concurrently with monotone per-worker occurrence keys; terms the
// dictionary already knows resolve to their canonical IDs immediately,
// while new terms receive provisional IDs. Commit then assigns the new
// terms canonical dense IDs in first-occurrence order — the order a
// single-threaded pass over the input would have produced — so a parallel
// load yields a dictionary (and therefore a store snapshot) that is
// byte-identical at any worker count, including worker count one.
//
// A batch is single-use: after Commit only Canonical may be called.
// Nothing is published into the Dict until Commit, so abandoning a batch
// on error leaves the dictionary untouched.
type DictBatch struct {
	d      *Dict
	base   *dictRead
	shards [dictShardCount]batchShard
	remap  [dictShardCount][]ID // filled by Commit: local index → canonical ID
}

// NewBatch starts a bulk-intern batch. It publishes the dictionary's read
// side first so every existing term resolves lock-free during the batch.
func (d *Dict) NewBatch() *DictBatch {
	d.PublishReads()
	b := &DictBatch{d: d, base: d.read.Load()}
	for i := range b.shards {
		b.shards[i].entries = map[Term]batchEntry{}
	}
	return b
}

// Intern resolves t to a canonical ID when the dictionary already knows
// it, or to a provisional ID otherwise. pos is the occurrence key — any
// value that orders occurrences the way a serial pass over the input
// would visit them (the streaming loader packs chunk index, statement
// index and triple position). Safe for concurrent use.
func (b *DictBatch) Intern(pos uint64, t Term) ID {
	if id, ok := b.base.byVal[t]; ok {
		return id
	}
	si := maphash.String(b.d.seed, t.Value) & dictShardMask
	sh := &b.shards[si]
	sh.mu.Lock()
	e, ok := sh.entries[t]
	if ok {
		if pos < sh.firsts[e.local] {
			sh.firsts[e.local] = pos
		}
	} else {
		e = batchEntry{local: int32(len(sh.terms)), pos: pos}
		clone := cloneTerm(t)
		sh.entries[clone] = e
		sh.terms = append(sh.terms, clone)
		sh.firsts = append(sh.firsts, pos)
	}
	sh.mu.Unlock()
	return provisionalBase + ID(e.local)<<dictShardBits + ID(si)
}

// dictShardBits is log2(dictShardCount), used to pack (local, shard)
// pairs into provisional IDs.
const dictShardBits = 6

// Commit sorts the batch's new terms by first occurrence, interns them
// into the dictionary in that canonical order, and records the
// provisional→canonical mapping for Canonical. It returns the number of
// terms added.
func (b *DictBatch) Commit() int {
	type pending struct {
		pos   uint64
		shard int32
		local int32
	}
	var all []pending
	for si := range b.shards {
		sh := &b.shards[si]
		b.remap[si] = make([]ID, len(sh.terms))
		for local := range sh.terms {
			all = append(all, pending{pos: sh.firsts[local], shard: int32(si), local: int32(local)})
		}
	}
	// Occurrence keys are unique per (statement, position), so this is a
	// deterministic total order regardless of worker interleaving.
	slices.SortFunc(all, func(x, y pending) int {
		switch {
		case x.pos < y.pos:
			return -1
		case x.pos > y.pos:
			return 1
		default:
			return 0
		}
	})
	for _, p := range all {
		// The shard already holds a clone the dictionary may own, so the
		// committed intern skips the defensive copy.
		t := b.shards[p.shard].terms[p.local]
		b.remap[p.shard][p.local] = b.d.intern(t, true)
	}
	b.d.PublishReads()
	return len(all)
}

// Canonical maps an ID returned by Intern to its post-Commit canonical
// ID. IDs below the provisional range pass through unchanged.
func (b *DictBatch) Canonical(id ID) ID {
	if id < provisionalBase {
		return id
	}
	p := id - provisionalBase
	return b.remap[p&dictShardMask][p>>dictShardBits]
}

// CanonicalTriple remaps all three components of a provisional triple.
func (b *DictBatch) CanonicalTriple(e EncodedTriple) EncodedTriple {
	return EncodedTriple{S: b.Canonical(e.S), P: b.Canonical(e.P), O: b.Canonical(e.O)}
}
