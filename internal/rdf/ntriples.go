package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at line %d: %s", e.Line, e.Msg)
}

// ReadNTriples parses an N-Triples document from r and returns the triples
// in document order. Comment lines (#...) and blank lines are skipped.
// The parser is strict about term structure but lenient about surrounding
// whitespace.
func ReadNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		t, ok, err := parseNTLine(sc.Text(), line)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, t)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading n-triples: %w", err)
	}
	return out, nil
}

// ParseNTriples parses an N-Triples document from a string.
func ParseNTriples(s string) ([]Triple, error) {
	return ReadNTriples(strings.NewReader(s))
}

func parseNTLine(s string, line int) (Triple, bool, error) {
	p := &ntParser{s: s, line: line}
	p.skipWS()
	if p.eof() || p.peek() == '#' {
		return Triple{}, false, nil
	}
	subj, err := p.term()
	if err != nil {
		return Triple{}, false, err
	}
	p.skipWS()
	pred, err := p.term()
	if err != nil {
		return Triple{}, false, err
	}
	p.skipWS()
	obj, err := p.term()
	if err != nil {
		return Triple{}, false, err
	}
	p.skipWS()
	if p.eof() || p.peek() != '.' {
		return Triple{}, false, p.errf("expected terminating '.'")
	}
	p.pos++
	p.skipWS()
	if !p.eof() && p.peek() != '#' {
		return Triple{}, false, p.errf("trailing content after '.'")
	}
	t := Triple{S: subj, P: pred, O: obj}
	if err := t.Validate(); err != nil {
		return Triple{}, false, p.errf("%v", err)
	}
	return t, true, nil
}

type ntParser struct {
	s    string
	pos  int
	line int
}

func (p *ntParser) eof() bool  { return p.pos >= len(p.s) }
func (p *ntParser) peek() byte { return p.s[p.pos] }
func (p *ntParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *ntParser) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t' || p.peek() == '\r') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("unexpected end of line, expected term")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, p.errf("unexpected character %q, expected term", p.peek())
	}
}

func (p *ntParser) iri() (Term, error) {
	end := strings.IndexByte(p.s[p.pos:], '>')
	if end < 0 {
		return Term{}, p.errf("unterminated IRI")
	}
	v := p.s[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if v == "" {
		return Term{}, p.errf("empty IRI")
	}
	if strings.ContainsAny(v, " \t\"{}|^`") {
		return Term{}, p.errf("invalid character in IRI %q", v)
	}
	return NewIRI(v), nil
}

func (p *ntParser) blank() (Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return Term{}, p.errf("malformed blank node")
	}
	start := p.pos + 2
	i := start
	for i < len(p.s) && !isWS(p.s[i]) && p.s[i] != '.' {
		i++
	}
	if i == start {
		return Term{}, p.errf("empty blank node label")
	}
	label := p.s[start:i]
	p.pos = i
	return NewBlank(label), nil
}

func (p *ntParser) literal() (Term, error) {
	// Find the closing quote, honoring backslash escapes.
	i := p.pos + 1
	for i < len(p.s) {
		if p.s[i] == '\\' {
			i += 2
			continue
		}
		if p.s[i] == '"' {
			break
		}
		i++
	}
	if i >= len(p.s) {
		return Term{}, p.errf("unterminated literal")
	}
	lex := unescapeLiteral(p.s[p.pos+1 : i])
	p.pos = i + 1
	if !p.eof() && p.peek() == '@' {
		start := p.pos + 1
		j := start
		for j < len(p.s) && (isAlnum(p.s[j]) || p.s[j] == '-') {
			j++
		}
		if j == start {
			return Term{}, p.errf("empty language tag")
		}
		lang := p.s[start:j]
		p.pos = j
		return NewLangLiteral(lex, lang), nil
	}
	if p.pos+1 < len(p.s) && p.s[p.pos] == '^' && p.s[p.pos+1] == '^' {
		p.pos += 2
		if p.eof() || p.peek() != '<' {
			return Term{}, p.errf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// WriteNTriples serializes triples to w in N-Triples syntax, one per line,
// in the order given. It returns the number of bytes written.
func WriteNTriples(w io.Writer, triples []Triple) (int, error) {
	bw := bufio.NewWriter(w)
	n := 0
	for _, t := range triples {
		m, err := bw.WriteString(t.String())
		n += m
		if err != nil {
			return n, fmt.Errorf("rdf: writing n-triples: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, fmt.Errorf("rdf: writing n-triples: %w", err)
		}
		n++
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("rdf: flushing n-triples: %w", err)
	}
	return n, nil
}

// FormatNTriples renders triples as an N-Triples string.
func FormatNTriples(triples []Triple) string {
	var b strings.Builder
	for _, t := range triples {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
