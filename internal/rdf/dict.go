package rdf

import (
	"fmt"
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"
)

// ID is a compact dictionary identifier for a term. ID 0 is reserved and
// never assigned, so it can serve as "no term" in index structures.
type ID uint32

// NoID is the reserved null identifier.
const NoID ID = 0

const (
	// dictShardCount is the number of write shards (power of two). Terms
	// hash to a shard by their lexical value, so concurrent Intern calls
	// on distinct terms almost never contend on the same lock.
	dictShardCount = 64
	dictShardMask  = dictShardCount - 1
)

// dictShard is one write shard: a small locked map holding every term
// whose value hashes to it. Shards are the source of truth for membership
// until entries are folded into the published read side.
type dictShard struct {
	mu    sync.Mutex
	byVal map[Term]ID
}

// dictRead is the atomically published read side: a frozen map covering
// every term published so far, plus the dense id→term arena. Both are
// immutable once published (the arena's backing array is append-only and
// readers never index past their header's length), so lookups and decodes
// need no lock at all.
type dictRead struct {
	byVal map[Term]ID
	byID  []Term // byID[i-1] is the term with ID i
}

// Dict interns RDF terms, assigning each distinct term a dense ID starting
// at 1 in first-intern order. It is safe for concurrent use and built to
// scale with cores: the common hit takes zero locks (one lookup in the
// published read map), a miss takes one per-shard lock, and only the final
// ID allocation serializes on a tiny critical section. Term/TermOK decode
// through the published arena without locking. The store keeps one Dict
// per dataset; dictionary encoding is what lets the decomposer's aggregate
// indexes fit in memory (see DESIGN.md "Dictionary encoding" ablation).
//
// Terms are cloned on insert, so callers may intern terms whose strings
// alias large parse buffers without pinning those buffers.
type Dict struct {
	seed   maphash.Seed
	shards [dictShardCount]dictShard
	read   atomic.Pointer[dictRead]

	// mu serializes ID allocation, arena appends and read-side
	// publication. It is only taken on the first intern of a new term.
	mu    sync.Mutex
	arena []Term // master id→term table, append-only under mu
	// stale counts terms allocated since the read map was last rebuilt;
	// those are findable only through their shard until the next rebuild.
	stale int
}

// NewDict returns an empty dictionary with capacity hint n terms.
func NewDict(n int) *Dict {
	d := &Dict{seed: maphash.MakeSeed()}
	hint := n / dictShardCount
	for i := range d.shards {
		d.shards[i].byVal = make(map[Term]ID, hint)
	}
	d.arena = make([]Term, 0, n)
	d.read.Store(&dictRead{byVal: map[Term]ID{}})
	return d
}

// shardOf hashes the term's lexical value to a shard. Terms sharing a
// value but differing in kind, language or datatype land on the same
// shard, which is harmless: the shard map still keys on the full term.
func (d *Dict) shardOf(t Term) *dictShard {
	return &d.shards[maphash.String(d.seed, t.Value)&dictShardMask]
}

// cloneTerm deep-copies the term's strings so the dictionary never
// retains memory owned by a caller's parse buffer.
func cloneTerm(t Term) Term {
	return Term{
		Kind:     t.Kind,
		Value:    strings.Clone(t.Value),
		Lang:     strings.Clone(t.Lang),
		Datatype: strings.Clone(t.Datatype),
	}
}

// Intern returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Intern(t Term) ID { return d.intern(t, false) }

// intern implements Intern. owned callers (the batch committer) pass
// terms the dictionary may keep as is, skipping the defensive clone.
func (d *Dict) intern(t Term, owned bool) ID {
	if id, ok := d.read.Load().byVal[t]; ok {
		return id
	}
	sh := d.shardOf(t)
	sh.mu.Lock()
	id, ok := sh.byVal[t]
	if !ok {
		// Re-check the read side now that the shard lock is held: a
		// concurrent publishReads may have folded this shard's entries
		// into a fresh read map (published before it released the shard
		// lock we just acquired) and cleared the shard.
		if pubID, pub := d.read.Load().byVal[t]; pub {
			sh.mu.Unlock()
			return pubID
		}
		key := t
		if !owned {
			key = cloneTerm(t)
		}
		id = d.alloc(key)
		sh.byVal[key] = id
	}
	sh.mu.Unlock()
	return id
}

// alloc assigns the next dense ID to a new term (whose strings the
// dictionary must already own) and republishes the read arena so decodes
// of the new ID are immediately lock-free. The caller must hold the
// term's shard lock (shard → allocation lock order is consistent
// everywhere, so this cannot deadlock).
func (d *Dict) alloc(t Term) ID {
	d.mu.Lock()
	d.arena = append(d.arena, t)
	id := ID(len(d.arena))
	old := d.read.Load()
	next := &dictRead{byVal: old.byVal, byID: d.arena}
	d.stale++
	if d.stale >= len(old.byVal)/2+1024 {
		// Rebuild the frozen read map from the arena so recent terms get
		// lock-free hits again. The geometric threshold keeps the total
		// rebuild work linear in the dictionary size.
		m := make(map[Term]ID, len(d.arena)+len(d.arena)/4)
		for i, at := range d.arena {
			m[at] = ID(i + 1)
		}
		next.byVal = m
		d.stale = 0
	}
	d.read.Store(next)
	d.mu.Unlock()
	return id
}

// PublishReads rebuilds the read map immediately so every interned term
// is findable without a shard lock, and empties the write shards — their
// entries are now redundant with the published map, so dropping them
// keeps the dictionary at one map's worth of memory instead of two.
// Bulk loaders call this once per batch; ad-hoc Interns fold in lazily.
//
// Lock order: all shard locks (in index order), then mu — the same
// shard-before-mu order intern uses, so the two cannot deadlock.
func (d *Dict) PublishReads() {
	for i := range d.shards {
		d.shards[i].mu.Lock()
	}
	d.mu.Lock()
	m := make(map[Term]ID, len(d.arena)+len(d.arena)/4)
	for i, at := range d.arena {
		m[at] = ID(i + 1)
	}
	d.read.Store(&dictRead{byVal: m, byID: d.arena})
	d.stale = 0
	d.mu.Unlock()
	for i := range d.shards {
		clear(d.shards[i].byVal)
		d.shards[i].mu.Unlock()
	}
}

// Lookup returns the ID for t without inserting. The second result reports
// whether t is interned.
func (d *Dict) Lookup(t Term) (ID, bool) {
	if id, ok := d.read.Load().byVal[t]; ok {
		return id, true
	}
	sh := d.shardOf(t)
	sh.mu.Lock()
	id, ok := sh.byVal[t]
	sh.mu.Unlock()
	if !ok {
		// The entry may have moved shard→read under a concurrent
		// publishReads; the republished map is visible once the shard
		// lock we just held has been released by it.
		id, ok = d.read.Load().byVal[t]
	}
	return id, ok
}

// LookupIRI is a convenience wrapper around Lookup(NewIRI(iri)).
func (d *Dict) LookupIRI(iri string) (ID, bool) {
	return d.Lookup(NewIRI(iri))
}

// Term returns the term for id. It panics on NoID or an unassigned ID,
// which always indicates a programming error in index code.
func (d *Dict) Term(id ID) Term {
	byID := d.read.Load().byID
	if id == NoID || int(id) > len(byID) {
		panic(fmt.Sprintf("rdf: dictionary lookup of invalid ID %d (size %d)", id, len(byID)))
	}
	return byID[id-1]
}

// TermOK is like Term but reports failure instead of panicking.
func (d *Dict) TermOK(id ID) (Term, bool) {
	byID := d.read.Load().byID
	if id == NoID || int(id) > len(byID) {
		return Term{}, false
	}
	return byID[id-1], true
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	return len(d.read.Load().byID)
}

// Terms returns the dense id→term arena (Terms()[i] is the term with ID
// i+1). The slice is shared immutable data — callers must not modify it.
// This is the bulk export the binary snapshot writer dumps.
func (d *Dict) Terms() []Term {
	return d.read.Load().byID
}

// NewDictFromTerms rebuilds a dictionary from a dense id→term arena, with
// terms[i] becoming ID i+1 — the inverse of Terms(), used when loading a
// binary snapshot. It fails on zero or duplicate terms rather than build
// a corrupt dictionary.
func NewDictFromTerms(terms []Term) (*Dict, error) {
	d := NewDict(len(terms))
	m := make(map[Term]ID, len(terms))
	for i, t := range terms {
		if t.IsZero() {
			return nil, fmt.Errorf("rdf: dictionary arena entry %d is the zero term", i+1)
		}
		if prev, dup := m[t]; dup {
			return nil, fmt.Errorf("rdf: dictionary arena duplicates term %s (IDs %d and %d)", t, prev, i+1)
		}
		m[t] = ID(i + 1)
	}
	//lint:ignore lockbalance d is freshly built by NewDict above and not yet shared with any reader
	d.arena = append(d.arena, terms...)
	// The published read map covers every term, so the write shards stay
	// empty: they only ever hold terms interned since the last publish.
	//lint:ignore lockbalance d is freshly built by NewDict above and not yet shared with any reader
	d.read.Store(&dictRead{byVal: m, byID: d.arena})
	return d, nil
}

// EncodedTriple is a dictionary-encoded triple.
type EncodedTriple struct {
	S, P, O ID
}

// Encode interns all three components of t.
func (d *Dict) Encode(t Triple) EncodedTriple {
	return EncodedTriple{S: d.Intern(t.S), P: d.Intern(t.P), O: d.Intern(t.O)}
}

// Decode maps an encoded triple back to its term form.
func (d *Dict) Decode(e EncodedTriple) Triple {
	return Triple{S: d.Term(e.S), P: d.Term(e.P), O: d.Term(e.O)}
}
