package rdf

import (
	"fmt"
	"sync"
)

// ID is a compact dictionary identifier for a term. ID 0 is reserved and
// never assigned, so it can serve as "no term" in index structures.
type ID uint32

// NoID is the reserved null identifier.
const NoID ID = 0

// Dict interns RDF terms, assigning each distinct term a dense ID starting
// at 1. It is safe for concurrent use: lookups take a read lock, inserts a
// write lock. The store keeps one Dict per dataset; dictionary encoding is
// what lets the decomposer's aggregate indexes fit in memory (see DESIGN.md
// "Dictionary encoding" ablation).
type Dict struct {
	mu    sync.RWMutex
	byID  []Term      // byID[i-1] is the term with ID i
	byVal map[Term]ID // reverse mapping
}

// NewDict returns an empty dictionary with capacity hint n terms.
func NewDict(n int) *Dict {
	return &Dict{
		byID:  make([]Term, 0, n),
		byVal: make(map[Term]ID, n),
	}
}

// Intern returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Intern(t Term) ID {
	d.mu.RLock()
	id, ok := d.byVal[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byVal[t]; ok {
		return id
	}
	d.byID = append(d.byID, t)
	id = ID(len(d.byID))
	d.byVal[t] = id
	return id
}

// Lookup returns the ID for t without inserting. The second result reports
// whether t is interned.
func (d *Dict) Lookup(t Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byVal[t]
	return id, ok
}

// LookupIRI is a convenience wrapper around Lookup(NewIRI(iri)).
func (d *Dict) LookupIRI(iri string) (ID, bool) {
	return d.Lookup(NewIRI(iri))
}

// Term returns the term for id. It panics on NoID or an unassigned ID,
// which always indicates a programming error in index code.
func (d *Dict) Term(id ID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoID || int(id) > len(d.byID) {
		panic(fmt.Sprintf("rdf: dictionary lookup of invalid ID %d (size %d)", id, len(d.byID)))
	}
	return d.byID[id-1]
}

// TermOK is like Term but reports failure instead of panicking.
func (d *Dict) TermOK(id ID) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoID || int(id) > len(d.byID) {
		return Term{}, false
	}
	return d.byID[id-1], true
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// EncodedTriple is a dictionary-encoded triple.
type EncodedTriple struct {
	S, P, O ID
}

// Encode interns all three components of t.
func (d *Dict) Encode(t Triple) EncodedTriple {
	return EncodedTriple{S: d.Intern(t.S), P: d.Intern(t.P), O: d.Intern(t.O)}
}

// Decode maps an encoded triple back to its term form.
func (d *Dict) Decode(e EncodedTriple) Triple {
	return Triple{S: d.Term(e.S), P: d.Term(e.P), O: d.Term(e.O)}
}
