package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is a single RDF statement. The subject and predicate must be IRIs
// (or blank nodes for the subject); the object may be any term.
type Triple struct {
	S, P, O Term
}

// NewTriple constructs a triple from its three components.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax including the final dot.
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Validate reports whether the triple is well formed per the paper's model:
// subject in U (we additionally admit blank nodes), predicate in U, object
// in U ∪ L.
func (t Triple) Validate() error {
	if t.S.IsLiteral() {
		return fmt.Errorf("rdf: subject must not be a literal: %s", t.S)
	}
	if t.S.IsZero() {
		return fmt.Errorf("rdf: empty subject")
	}
	if !t.P.IsIRI() || t.P.Value == "" {
		return fmt.Errorf("rdf: predicate must be a non-empty IRI: %s", t.P)
	}
	if t.O.IsZero() {
		return fmt.Errorf("rdf: empty object")
	}
	return nil
}

// TripleOp is one mutation of a triple set: the insertion of Triple, or
// (when Del is set) its deletion. Ordered slices of TripleOps are the
// shared vocabulary of the live mutation path — store deltas, WAL
// records, and cache invalidation all speak in them.
type TripleOp struct {
	Del    bool
	Triple Triple
}

// Insert wraps t as an insertion op.
func Insert(t Triple) TripleOp { return TripleOp{Triple: t} }

// Delete wraps t as a deletion op.
func Delete(t Triple) TripleOp { return TripleOp{Del: true, Triple: t} }

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// Graph is a finite collection of RDF triples (the paper's G). It is an
// in-memory value type used during parsing and generation; the query-capable
// storage lives in internal/store.
type Graph struct {
	triples []Triple
	seen    map[Triple]struct{}
}

// NewGraph returns an empty graph with capacity hint n.
func NewGraph(n int) *Graph {
	return &Graph{
		triples: make([]Triple, 0, n),
		seen:    make(map[Triple]struct{}, n),
	}
}

// Add inserts a triple unless it is already present. It reports whether the
// triple was newly added.
func (g *Graph) Add(t Triple) bool {
	if _, dup := g.seen[t]; dup {
		return false
	}
	g.seen[t] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// AddAll inserts every triple from ts, skipping duplicates, and returns the
// number actually added.
func (g *Graph) AddAll(ts []Triple) int {
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Contains reports whether the graph holds t.
func (g *Graph) Contains(t Triple) bool {
	_, ok := g.seen[t]
	return ok
}

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the triples in insertion order. The slice is shared;
// callers must not mutate it.
func (g *Graph) Triples() []Triple { return g.triples }

// Sorted returns a new slice with the triples in canonical SPO order.
func (g *Graph) Sorted() []Triple {
	out := make([]Triple, len(g.triples))
	copy(out, g.triples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// URIs returns the set U(G): all IRIs occurring in any position.
func (g *Graph) URIs() map[Term]struct{} {
	set := make(map[Term]struct{})
	for _, t := range g.triples {
		if t.S.IsIRI() {
			set[t.S] = struct{}{}
		}
		set[t.P] = struct{}{}
		if t.O.IsIRI() {
			set[t.O] = struct{}{}
		}
	}
	return set
}

// Literals returns the set L(G): all literals occurring as objects.
func (g *Graph) Literals() map[Term]struct{} {
	set := make(map[Term]struct{})
	for _, t := range g.triples {
		if t.O.IsLiteral() {
			set[t.O] = struct{}{}
		}
	}
	return set
}

// String renders the whole graph as N-Triples, sorted canonically. Intended
// for tests and debugging; large graphs should use WriteNTriples.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.Sorted() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
