package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	last := -1
	for _, d := range []time.Duration{
		0, 100, time.Microsecond, 3 * time.Microsecond, time.Millisecond,
		40 * time.Millisecond, time.Second, time.Minute, time.Hour,
	} {
		i := bucketIndex(d)
		if i < last {
			t.Fatalf("bucketIndex not monotone at %v: %d < %d", d, i, last)
		}
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", d, i)
		}
		last = i
	}
	// Every duration must land inside [floor(i), floor(i+1)) except the
	// open-ended overflow bucket.
	for _, d := range []time.Duration{time.Microsecond, 7 * time.Millisecond, 3 * time.Second} {
		i := bucketIndex(d)
		if d < bucketFloor(i) || (i < numBuckets-1 && d >= bucketFloor(i+1)) {
			t.Errorf("%v in bucket %d [%v, %v)", d, i, bucketFloor(i), bucketFloor(i+1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples, 10 slow ones: p50 must sit near 1ms, p99 near 1s.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 < 512*time.Microsecond || s.P50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", s.P50)
	}
	if s.P99 < 512*time.Millisecond || s.P99 > 2*time.Second {
		t.Errorf("p99 = %v, want ~1s", s.P99)
	}
	if s.Mean <= 0 || s.Sum <= 0 {
		t.Errorf("mean/sum = %v/%v", s.Mean, s.Sum)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Errorf("gauge = %d", g.Value())
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Errorf("gauge = %d", g.Value())
	}
}
