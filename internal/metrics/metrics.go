// Package metrics provides the small, allocation-free instruments the
// serving tier reports through the server's /metrics endpoint: a
// fixed-bucket exponential latency histogram with quantile estimation,
// and plain atomic counters/gauges. Everything here is safe for
// concurrent use and cheap enough to sit on the per-request hot path —
// an Observe is one atomic add per bucket plus two for count/sum.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers 1µs..~67s in powers of two, plus an underflow bucket
// (index 0, <1µs) and an overflow bucket (the last, >=2^26µs).
const numBuckets = 28

// bucketFloor is the lower bound of bucket i in nanoseconds: bucket 0 is
// [0, 1µs), bucket i>=1 is [2^(i-1)µs, 2^i µs).
func bucketFloor(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return time.Duration(1<<(i-1)) * time.Microsecond
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := d / time.Microsecond
	if us < 1 {
		return 0
	}
	i := bits.Len64(uint64(us)) // 1µs -> 1, 2-3µs -> 2, ...
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// Histogram is a lock-free exponential-bucket latency histogram.
// The zero value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d))
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// reporting: counters are read bucket by bucket without a global lock, so
// a snapshot taken under concurrent Observe calls may be off by the
// handful of samples that landed mid-read — fine for monitoring.
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	// Mean is Sum/Count (0 when empty).
	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`

	buckets [numBuckets]uint64
}

// Snapshot copies the histogram state and computes the summary quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range s.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.Count += s.buckets[i]
	}
	s.Sum = time.Duration(h.sumNs.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear interpolation
// inside the bucket the rank falls into. The estimate is bounded by the
// bucket edges, so it is within a factor of two of the true value — the
// right fidelity for a trend dashboard, at zero per-sample cost.
func (s *HistogramSnapshot) quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := p * float64(s.Count)
	var seen float64
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if seen+fc >= rank {
			lo := float64(bucketFloor(i))
			hi := float64(bucketFloor(i + 1))
			if i == numBuckets-1 {
				hi = lo * 2 // open-ended overflow: extrapolate one doubling
			}
			frac := (rank - seen) / fc
			return time.Duration(lo + (hi-lo)*frac)
		}
		seen += fc
	}
	return bucketFloor(numBuckets)
}

// Counter is an atomic monotonically increasing counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic up/down gauge. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
