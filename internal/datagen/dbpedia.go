// Package datagen generates deterministic synthetic datasets whose
// statistical shape matches the figures the paper quotes about its
// evaluation datasets. The real DBpedia/YAGO/LinkedGeoData dumps are not
// available offline, and eLinda's algorithms depend only on the class
// hierarchy, the type distribution and the property-coverage distribution
// — exactly the quantities these generators control (see DESIGN.md,
// substitution table).
//
// Reproduced facts:
//
//   - DBpedia's ontology "reports on 49 top-level classes, yet almost half
//     of the classes (22) do not have instances at all" (Section 1).
//   - Agent is "the second largest DBpedia class, with more than 2 million
//     instances, 5 direct subclasses, and 277 subclasses in total"
//     (Section 3.2; instance counts are scaled by Config.Persons).
//   - "in DBpedia there are nearly 40,000 instances of type Politician,
//     that feature 1,482 different properties altogether. ... only 38
//     properties ... cross the default coverage threshold of 20%"
//     (Section 3.3).
//   - "For type Philosopher, 9 ingoing properties that cross the 20%
//     coverage threshold are shown" (Section 3.3).
//   - The exploration path owl:Thing → Agent → Person → Philosopher, the
//     influencedBy connection to Scientist (Section 3.4), and the
//     erroneous "people born in resources of type food" (Section 5).
package datagen

import (
	"fmt"
	"math/rand"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// Namespaces of the synthetic DBpedia-like dataset.
const (
	// OntNS holds classes and properties.
	OntNS = "http://elinda.example/ontology/"
	// ResNS holds instances.
	ResNS = "http://elinda.example/resource/"
)

// Ont returns an ontology IRI term.
func Ont(local string) rdf.Term { return rdf.NewIRI(OntNS + local) }

// Res returns a resource IRI term.
func Res(local string) rdf.Term { return rdf.NewIRI(ResNS + local) }

// Config controls the DBpedia-like generator. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	// Seed drives all pseudo-random choices; equal seeds give identical
	// datasets.
	Seed int64
	// Persons is the number of instances in the Person subtree. Every
	// other population scales from it (Agent ≈ 1.36 × Persons, etc.).
	Persons int
	// PoliticianProps is the number of politician-specific property types.
	// The paper's full-scale figure is 1472 (which with the 10 shared
	// person properties yields the quoted 1,482 distinct properties);
	// tests use a smaller default for speed.
	PoliticianProps int
	// ErrorRate is the fraction of person birthPlace triples that
	// erroneously point at Food resources (the Section 5 data-quality
	// scenario).
	ErrorRate float64
}

// DefaultConfig returns the test-scale configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, Persons: 2000, PoliticianProps: 120, ErrorRate: 0.02}
}

// PaperScaleConfig returns a configuration matching the paper's full
// figures where feasible (1,482 distinct Politician properties); instance
// counts remain scaled by Persons.
func PaperScaleConfig(persons int) Config {
	return Config{Seed: 1, Persons: persons, PoliticianProps: 1472, ErrorRate: 0.02}
}

// Facts records the ground-truth numbers the generator promises, so tests
// and EXPERIMENTS.md can assert the paper's figures.
type Facts struct {
	// TopLevelClasses is the number of direct subclasses of owl:Thing (49).
	TopLevelClasses int
	// EmptyTopLevelClasses is how many of those have no instances (22).
	EmptyTopLevelClasses int
	// AgentDirectSubclasses is 5.
	AgentDirectSubclasses int
	// AgentTotalSubclasses is 277.
	AgentTotalSubclasses int
	// PoliticianDistinctProperties counts all distinct outgoing properties
	// on Politician instances (paper: 1,482 at full scale).
	PoliticianDistinctProperties int
	// PoliticianPropsAboveThreshold is 38 at the 20% default threshold.
	PoliticianPropsAboveThreshold int
	// PhilosopherIngoingAboveThreshold is 9 at the 20% threshold.
	PhilosopherIngoingAboveThreshold int
	// Philosophers, Politicians, Scientists record instance counts.
	Philosophers, Politicians, Scientists int
	// Triples is the total triple count.
	Triples int
}

// Dataset is a generated dataset: the triples plus the facts they satisfy.
type Dataset struct {
	Triples []rdf.Triple
	Facts   Facts
}

// NewStore loads the dataset into a fresh store.
func (d *Dataset) NewStore() (*store.Store, error) {
	st := store.New(len(d.Triples))
	if _, err := st.Load(d.Triples); err != nil {
		return nil, fmt.Errorf("datagen: loading generated data: %w", err)
	}
	return st, nil
}

// populatedTopClasses are the 27 top-level classes that receive instances
// (27 + 22 empty = 49, matching the paper).
var populatedTopClasses = []string{
	"Agent", "Place", "Work", "Event", "Species", "Food", "TimePeriod",
	"Activity", "AnatomicalStructure", "Award", "Biomolecule",
	"ChemicalSubstance", "Colour", "Currency", "Device", "Disease",
	"EthnicGroup", "Holiday", "Language", "MeanOfTransportation", "Media",
	"Name", "PersonFunction", "SportsSeason", "TopicalConcept",
	"UnitOfWork", "CareerStation",
}

// emptyTopClassCount is the number of declared-but-uninstantiated
// top-level classes.
const emptyTopClassCount = 22

// agentDirectSubclasses are Agent's 5 direct subclasses.
var agentDirectSubclasses = []string{"Person", "Organisation", "Deity", "Family", "Robot"}

// personSubclasses are the named professions under Person.
var personSubclasses = []string{
	"Philosopher", "Politician", "Scientist", "Writer", "Artist", "Athlete",
	"Cleric", "Journalist", "Judge", "Lawyer", "Engineer", "Architect",
	"Astronaut", "Chef", "Economist", "Historian", "Monarch", "Musician",
	"Painter", "Presenter", "Royalty", "Noble", "MilitaryPerson", "Model",
}

// organisationSubclasses are the named kinds under Organisation.
var organisationSubclasses = []string{
	"Company", "University", "School", "Band", "Library", "Museum",
	"PoliticalParty", "SportsTeam", "Airline", "Publisher",
}

// politicianSubclasses sit one level deeper (under Politician).
var politicianSubclasses = []string{
	"President", "Senator", "Mayor", "Governor", "PrimeMinister", "Congressman",
}

// philosopherIngoingProps are the 9 incoming property types that cross the
// 20% coverage threshold on Philosopher (Section 3.3 reports exactly 9).
var philosopherIngoingProps = []string{
	"author", "influenced", "doctoralAdvisor", "doctoralStudent",
	"academicAdvisor", "notableStudent", "philosophicalSchool", "citedBy",
	"successor",
}

// philosopherIngoingBelow are additional incoming types kept under the
// threshold, so the threshold filter has something to hide.
var philosopherIngoingBelow = []string{"translator", "dedicatee", "eponym"}

// commonPersonProps lists the shared person properties with their
// deterministic coverages. Together with rdf:type and rdfs:label (always
// 100%), exactly 8 of the shared properties sit at or above 20%.
var commonPersonProps = []struct {
	name string
	cov  float64
}{
	{"name", 0.95},
	{"birthDate", 0.80},
	{"birthPlace", 0.70},
	{"occupation", 0.50},
	{"nationality", 0.45},
	{"deathPlace", 0.35},
	{"spouse", 0.15},
	{"child", 0.10},
}

// politicianPropsAboveTarget is how many politician-specific properties
// get coverage >= 20%. 30 specific + 8 common (rdf:type, rdfs:label, name,
// birthDate, birthPlace, occupation, nationality, deathPlace) = the
// paper's 38.
const politicianPropsAboveTarget = 30

// Generate builds the synthetic DBpedia-like dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Persons <= 0 {
		cfg.Persons = DefaultConfig().Persons
	}
	if cfg.PoliticianProps < politicianPropsAboveTarget+1 {
		cfg.PoliticianProps = politicianPropsAboveTarget + 1
	}
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	g.buildOntology()
	g.buildInstances()
	g.buildPersonProperties()
	g.buildPoliticianProperties()
	g.buildPhilosopherProperties()
	g.buildAuxiliary()

	facts := Facts{
		TopLevelClasses:                  len(populatedTopClasses) + emptyTopClassCount,
		EmptyTopLevelClasses:             emptyTopClassCount,
		AgentDirectSubclasses:            len(agentDirectSubclasses),
		AgentTotalSubclasses:             277,
		PoliticianDistinctProperties:     cfg.PoliticianProps + len(commonPersonProps) + 2, // + rdf:type, rdfs:label
		PoliticianPropsAboveThreshold:    38,
		PhilosopherIngoingAboveThreshold: len(philosopherIngoingProps),
		Philosophers:                     g.count["Philosopher"],
		Politicians:                      g.count["Politician"],
		Scientists:                       g.count["Scientist"],
		Triples:                          len(g.triples),
	}
	return &Dataset{Triples: g.triples, Facts: facts}
}

type generator struct {
	cfg     Config
	rng     *rand.Rand
	triples []rdf.Triple

	// parentsOf maps each class to its superclass chain up to owl:Thing.
	parentsOf map[string][]string
	// instances maps each class name to its directly-typed instances.
	instances map[string][]rdf.Term
	count     map[string]int
	places    []rdf.Term
	foods     []rdf.Term
}

func (g *generator) add(s, p, o rdf.Term) {
	g.triples = append(g.triples, rdf.Triple{S: s, P: p, O: o})
}

func (g *generator) declClass(name string, parent rdf.Term) {
	c := Ont(name)
	g.add(c, rdf.TypeIRI, rdf.OWLClassIRI)
	g.add(c, rdf.SubClassOfIRI, parent)
	g.add(c, rdf.LabelIRI, rdf.NewLangLiteral(name, "en"))
}

// buildOntology creates the class DAG: 49 top classes (22 empty), Agent
// with 5 direct and 277 total subclasses.
func (g *generator) buildOntology() {
	g.parentsOf = map[string][]string{}
	g.add(rdf.OWLThingIRI, rdf.TypeIRI, rdf.OWLClassIRI)
	g.add(rdf.OWLThingIRI, rdf.LabelIRI, rdf.NewLangLiteral("Thing", "en"))

	for _, name := range populatedTopClasses {
		g.declClass(name, rdf.OWLThingIRI)
		g.parentsOf[name] = nil
	}
	for i := 1; i <= emptyTopClassCount; i++ {
		name := fmt.Sprintf("EmptyClass%02d", i)
		g.declClass(name, rdf.OWLThingIRI)
		g.parentsOf[name] = nil
	}

	link := func(child, parent string) {
		g.declClass(child, Ont(parent))
		g.parentsOf[child] = append([]string{parent}, g.parentsOf[parent]...)
	}

	agentTotal := 0
	for _, c := range agentDirectSubclasses {
		link(c, "Agent")
		agentTotal++
	}
	for _, c := range personSubclasses {
		link(c, "Person")
		agentTotal++
	}
	for _, c := range organisationSubclasses {
		link(c, "Organisation")
		agentTotal++
	}
	for _, c := range politicianSubclasses {
		link(c, "Politician")
		agentTotal++
	}
	// Filler professions under Person until Agent's closure reaches 277.
	for i := 1; agentTotal < 277; i++ {
		link(fmt.Sprintf("ProfessionFiller%03d", i), "Person")
		agentTotal++
	}
	// A small subtree under Place and Food for realism.
	for _, c := range []string{"City", "Country", "Village", "Mountain", "River"} {
		link(c, "Place")
	}
	for _, c := range []string{"Cheese", "Pastry", "Beverage"} {
		link(c, "Food")
	}
	for _, c := range []string{"Book", "Album", "Film"} {
		link(c, "Work")
	}
}

// typeInstance asserts rdf:type for the class and its full ancestor chain
// including owl:Thing, mirroring DBpedia's materialized typing.
func (g *generator) typeInstance(inst rdf.Term, class string) {
	g.add(inst, rdf.TypeIRI, Ont(class))
	for _, anc := range g.parentsOf[class] {
		g.add(inst, rdf.TypeIRI, Ont(anc))
	}
	g.add(inst, rdf.TypeIRI, rdf.OWLThingIRI)
	g.instances[class] = append(g.instances[class], inst)
	g.count[class]++
}

// classShares maps each populated class to its instance count as a share
// of Config.Persons. Shares within Person must sum to <= 1; the remainder
// becomes plain Persons.
var personShares = []struct {
	class string
	share float64
}{
	{"Philosopher", 0.06},
	{"Politician", 0.20},
	{"Scientist", 0.15},
	{"Writer", 0.10},
	{"Artist", 0.08},
	{"Athlete", 0.12},
}

func (g *generator) buildInstances() {
	g.instances = map[string][]rdf.Term{}
	g.count = map[string]int{}
	n := g.cfg.Persons

	mk := func(class string, count int) {
		for i := 0; i < count; i++ {
			g.typeInstance(Res(fmt.Sprintf("%s_%d", class, i)), class)
		}
	}

	used := 0
	for _, ps := range personShares {
		c := int(float64(n) * ps.share)
		if c < 5 {
			c = 5
		}
		mk(ps.class, c)
		used += c
	}
	if rest := n - used; rest > 0 {
		mk("Person", rest)
	}

	// Other Agent branches.
	mk("Organisation", n*15/100)
	mk("Company", n*8/100)
	mk("University", n*4/100)
	mk("Deity", 5+n/500)
	mk("Family", 5+n/500)
	// Robot stays empty within Agent: realistic ontologies have hollow leaves.

	// Non-agent top classes.
	mk("Place", n*40/100)
	mk("City", n*10/100)
	mk("Country", 30)
	mk("Food", 10+n*3/100)
	mk("Cheese", 5+n/100)
	mk("Work", n*30/100)
	mk("Book", n*12/100)
	mk("Event", n*5/100)
	mk("Species", n*6/100)
	// The remaining populated top classes receive a thin population so
	// they count as non-empty.
	for _, top := range populatedTopClasses {
		if g.count[top] == 0 {
			mk(top, 3+g.rng.Intn(5))
		}
	}

	g.places = append(append([]rdf.Term{}, g.instances["Place"]...), g.instances["City"]...)
	g.foods = append(append([]rdf.Term{}, g.instances["Food"]...), g.instances["Cheese"]...)
}

// personTreeInstances returns every instance in the Person subtree.
func (g *generator) personTreeInstances() []rdf.Term {
	var out []rdf.Term
	out = append(out, g.instances["Person"]...)
	for _, ps := range personShares {
		out = append(out, g.instances[ps.class]...)
	}
	return out
}

// buildPersonProperties attaches the shared person properties with their
// deterministic coverages. Coverage is applied per class — each property
// covers the first ceil(cov*n) members of every class's instance list —
// so the coverage observed on any single pane (Politician, Philosopher,
// plain Person) is exactly the configured fraction.
func (g *generator) buildPersonProperties() {
	classLists := [][]rdf.Term{g.instances["Person"]}
	for _, ps := range personShares {
		classLists = append(classLists, g.instances[ps.class])
	}
	for _, pp := range commonPersonProps {
		prop := Ont(pp.name)
		for _, list := range classLists {
			limit := coverageLimit(len(list), pp.cov)
			for i := 0; i < limit; i++ {
				inst := list[i]
				switch pp.name {
				case "birthPlace":
					g.add(inst, prop, g.pickBirthPlace())
				case "deathPlace":
					g.add(inst, prop, g.places[g.rng.Intn(len(g.places))])
				case "spouse", "child":
					// Links stay inside plain Persons so they never count as
					// ingoing properties of Philosopher (keeps T3 exact).
					plain := g.instances["Person"]
					if len(plain) > 0 {
						g.add(inst, prop, plain[g.rng.Intn(len(plain))])
					}
				case "birthDate":
					g.add(inst, prop, rdf.NewTypedLiteral(
						fmt.Sprintf("%04d-01-01", 1000+g.rng.Intn(1000)), rdf.XSDDate))
				case "name":
					g.add(inst, prop, rdf.NewLiteral(inst.LocalName()))
				default:
					g.add(inst, prop, rdf.NewLiteral(fmt.Sprintf("%s-%s", pp.name, inst.LocalName())))
				}
			}
		}
	}
	// Labels for every person.
	for _, inst := range g.personTreeInstances() {
		g.add(inst, rdf.LabelIRI, rdf.NewLangLiteral(inst.LocalName(), "en"))
	}
}

// pickBirthPlace returns a Place, or (at ErrorRate) a Food resource — the
// deliberately erroneous data of the demonstration's third scenario.
func (g *generator) pickBirthPlace() rdf.Term {
	if g.rng.Float64() < g.cfg.ErrorRate && len(g.foods) > 0 {
		return g.foods[g.rng.Intn(len(g.foods))]
	}
	return g.places[g.rng.Intn(len(g.places))]
}

// buildPoliticianProperties creates the politician-specific property pool:
// exactly politicianPropsAboveTarget of them at coverage >= 20%, the rest
// below, so the total above-threshold count (with the 8 common ones) is
// the paper's 38.
func (g *generator) buildPoliticianProperties() {
	pols := g.instances["Politician"]
	n := len(pols)
	total := g.cfg.PoliticianProps
	for i := 0; i < total; i++ {
		var cov float64
		if i < politicianPropsAboveTarget {
			// 0.90 down to 0.22, strictly above threshold.
			cov = 0.90 - 0.68*float64(i)/float64(politicianPropsAboveTarget)
		} else {
			// 0.19 down to near zero, strictly below threshold; at least
			// one instance each so the property exists in the data.
			frac := float64(i-politicianPropsAboveTarget) / float64(total-politicianPropsAboveTarget)
			cov = 0.19 * (1 - frac)
		}
		limit := coverageLimit(n, cov)
		if limit == 0 {
			limit = 1
		}
		prop := Ont(fmt.Sprintf("polProp%04d", i))
		for j := 0; j < limit && j < n; j++ {
			g.add(pols[j], prop, rdf.NewLiteral(fmt.Sprintf("v%d", j)))
		}
	}
}

// buildPhilosopherProperties creates influencedBy links (Section 3.4) and
// the 9 above-threshold ingoing properties (Section 3.3).
func (g *generator) buildPhilosopherProperties() {
	phils := g.instances["Philosopher"]
	n := len(phils)
	// Outgoing influencedBy: 60% coverage; targets are Scientists (45%),
	// Writers (30%) and a thin band of Philosophers (first 15% only, so
	// the ingoing coverage of influencedBy on Philosopher stays < 20%).
	prop := Ont("influencedBy")
	limit := coverageLimit(n, 0.60)
	scientists := g.instances["Scientist"]
	writers := g.instances["Writer"]
	for i := 0; i < limit; i++ {
		r := g.rng.Float64()
		var target rdf.Term
		switch {
		case r < 0.45 && len(scientists) > 0:
			target = scientists[g.rng.Intn(len(scientists))]
		case r < 0.75 && len(writers) > 0:
			target = writers[g.rng.Intn(len(writers))]
		default:
			target = phils[g.rng.Intn(max(1, n*15/100))]
		}
		g.add(phils[i], prop, target)
	}
	// Other philosopher-specific outgoing properties.
	for _, spec := range []struct {
		name string
		cov  float64
	}{{"mainInterest", 0.5}, {"era", 0.4}, {"notableIdea", 0.3}} {
		p := Ont(spec.name)
		for i := 0; i < coverageLimit(n, spec.cov); i++ {
			g.add(phils[i], p, rdf.NewLiteral(spec.name+"-"+fmt.Sprint(i%7)))
		}
	}
	// The 9 deterministic above-threshold ingoing properties: auxiliary
	// resources point at the first ceil(cov*n) philosophers.
	for k, name := range philosopherIngoingProps {
		p := Ont(name)
		cov := 0.85 - 0.07*float64(k) // 0.85 down to 0.29, all >= 20%
		for i := 0; i < coverageLimit(n, cov); i++ {
			src := Res(fmt.Sprintf("aux_%s_%d", name, i))
			g.add(src, p, phils[i])
			if name == "author" {
				g.typeInstance(src, "Book")
			}
		}
	}
	// Below-threshold ingoing properties.
	for k, name := range philosopherIngoingBelow {
		p := Ont(name)
		cov := 0.15 - 0.04*float64(k)
		for i := 0; i < coverageLimit(n, cov); i++ {
			g.add(Res(fmt.Sprintf("aux_%s_%d", name, i)), p, phils[i])
		}
	}
}

// buildAuxiliary fills in labels for places/foods and thin properties on
// the non-person populations so every pane has something to show.
func (g *generator) buildAuxiliary() {
	for _, set := range []string{"Place", "City", "Food", "Cheese", "Work", "Book", "Organisation", "Company"} {
		insts := g.instances[set]
		for i, inst := range insts {
			if i%2 == 0 {
				g.add(inst, rdf.LabelIRI, rdf.NewLangLiteral(inst.LocalName(), "en"))
			}
		}
	}
	// Works get authors among writers.
	writers := g.instances["Writer"]
	for i, w := range g.instances["Book"] {
		if len(writers) > 0 && i%3 != 0 {
			g.add(w, Ont("writtenBy"), writers[g.rng.Intn(len(writers))])
		}
	}
	// Cities are located in countries.
	countries := g.instances["Country"]
	for i, c := range g.instances["City"] {
		if len(countries) > 0 && i%2 == 0 {
			g.add(c, Ont("country"), countries[g.rng.Intn(len(countries))])
		}
	}
}

// coverageLimit converts a coverage fraction to an instance-prefix length.
func coverageLimit(n int, cov float64) int {
	if cov <= 0 || n == 0 {
		return 0
	}
	limit := int(cov*float64(n) + 0.999999)
	if limit > n {
		limit = n
	}
	return limit
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
