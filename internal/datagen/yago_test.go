package datagen

import (
	"reflect"
	"strings"
	"testing"

	"elinda/internal/ontology"
	"elinda/internal/rdf"
)

func TestGenerateYagoDeterministic(t *testing.T) {
	a := GenerateYago(YagoConfig{Seed: 9, Depth: 4, Branching: 2, Instances: 100})
	b := GenerateYago(YagoConfig{Seed: 9, Depth: 4, Branching: 2, Instances: 100})
	if !reflect.DeepEqual(a.Triples, b.Triples) {
		t.Fatal("YAGO generation not deterministic")
	}
}

func TestYagoDeepTaxonomy(t *testing.T) {
	cfg := DefaultYagoConfig()
	ds := GenerateYago(cfg)
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	h := ontology.Build(st)
	root := h.Root()
	if st.Dict().Term(root) != rdf.OWLThingIRI {
		t.Fatalf("root = %v", st.Dict().Term(root))
	}
	// A leaf class must have a breadcrumb path of Depth+1 nodes.
	var leaf rdf.ID
	for _, c := range h.Classes() {
		if !strings.HasPrefix(st.Dict().Term(c).Value, YagoNS) {
			continue // skip owl:Thing / owl:Class meta nodes
		}
		if len(h.DirectSubclasses(c)) == 0 && h.DirectInstanceCount(c) > 0 {
			leaf = c
			break
		}
	}
	if leaf == rdf.NoID {
		t.Fatal("no populated leaf class found")
	}
	path := h.PathFromRoot(leaf)
	if len(path) != cfg.Depth+1 {
		t.Errorf("path length = %d, want %d", len(path), cfg.Depth+1)
	}
}

func TestYagoMultipleInheritance(t *testing.T) {
	ds := GenerateYago(DefaultYagoConfig())
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	h := ontology.Build(st)
	multi := 0
	for _, c := range h.Classes() {
		if len(h.DirectSuperclasses(c)) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no class has multiple superclasses")
	}
}

func TestYagoInstancesOnlyAtLeaves(t *testing.T) {
	ds := GenerateYago(YagoConfig{Seed: 2, Depth: 4, Branching: 2, Instances: 200})
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	h := ontology.Build(st)
	for _, c := range h.Classes() {
		if len(h.DirectSubclasses(c)) > 0 && st.Dict().Term(c) != rdf.OWLThingIRI {
			if n := h.DirectInstanceCount(c); n > 0 {
				t.Errorf("internal class %s has %d direct instances", st.Label(c), n)
			}
		}
	}
	// Deep counts at the root still see every entity.
	root := h.Root()
	if h.DeepInstanceCount(root) < 200 {
		t.Errorf("deep root count = %d", h.DeepInstanceCount(root))
	}
}

func TestYagoZeroConfigDefaults(t *testing.T) {
	ds := GenerateYago(YagoConfig{Seed: 1})
	if ds.Facts.Triples == 0 {
		t.Error("zero-config YAGO generation produced nothing")
	}
}
