package datagen

import (
	"reflect"
	"testing"

	"elinda/internal/decomposer"
	"elinda/internal/ontology"
	"elinda/internal/rdf"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 3, Persons: 300, PoliticianProps: 60, ErrorRate: 0.05})
	b := Generate(Config{Seed: 3, Persons: 300, PoliticianProps: 60, ErrorRate: 0.05})
	if !reflect.DeepEqual(a.Triples, b.Triples) {
		t.Fatal("equal seeds must give identical datasets")
	}
	c := Generate(Config{Seed: 4, Persons: 300, PoliticianProps: 60, ErrorRate: 0.05})
	if reflect.DeepEqual(a.Triples, c.Triples) {
		t.Fatal("different seeds gave identical datasets")
	}
}

func TestGenerateValidTriples(t *testing.T) {
	ds := Generate(DefaultConfig())
	for i, tr := range ds.Triples {
		if err := tr.Validate(); err != nil {
			t.Fatalf("triple %d invalid: %v", i, err)
		}
	}
	if ds.Facts.Triples != len(ds.Triples) {
		t.Errorf("Facts.Triples = %d, len = %d", ds.Facts.Triples, len(ds.Triples))
	}
}

// TestDBpediaShapeTopClasses is experiment T1: "49 top-level classes, yet
// almost half of the classes (22) do not have instances at all".
func TestDBpediaShapeTopClasses(t *testing.T) {
	ds := Generate(DefaultConfig())
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	h := ontology.Build(st)
	root := h.Root()
	if root == rdf.NoID {
		t.Fatal("no root detected")
	}
	if st.Dict().Term(root) != rdf.OWLThingIRI {
		t.Errorf("root = %v", st.Dict().Term(root))
	}
	tops := h.DirectSubclasses(root)
	if len(tops) != 49 {
		t.Errorf("top-level classes = %d, want 49", len(tops))
	}
	empty := h.EmptyClasses(true)
	if len(empty) != 22 {
		t.Errorf("empty top-level classes = %d, want 22", len(empty))
	}
}

// TestAgentShape: "Agent, the second largest DBpedia class, with ... 5
// direct subclasses, and 277 subclasses in total".
func TestAgentShape(t *testing.T) {
	ds := Generate(DefaultConfig())
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	h := ontology.Build(st)
	agent, ok := st.Dict().Lookup(Ont("Agent"))
	if !ok {
		t.Fatal("Agent missing")
	}
	direct, total := h.SubclassCounts(agent)
	if direct != 5 {
		t.Errorf("Agent direct subclasses = %d, want 5", direct)
	}
	if total != 277 {
		t.Errorf("Agent total subclasses = %d, want 277", total)
	}
	// Agent should be the largest top class by deep instances except
	// owl:Thing itself (the paper says second largest overall after Thing).
	root := h.Root()
	agentCount := h.DeepInstanceCount(agent)
	for _, top := range h.DirectSubclasses(root) {
		if top == agent {
			continue
		}
		if c := h.DeepInstanceCount(top); c > agentCount {
			t.Errorf("class %s (%d) larger than Agent (%d)", st.Label(top), c, agentCount)
		}
	}
}

// TestPoliticianCoverage is experiment T2: 38 properties at or above the
// 20% coverage threshold, and the configured total distinct property
// count.
func TestPoliticianCoverage(t *testing.T) {
	cfg := DefaultConfig()
	ds := Generate(cfg)
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	d := decomposer.New(st)
	pol, ok := st.Dict().Lookup(Ont("Politician"))
	if !ok {
		t.Fatal("Politician missing")
	}
	stats := d.PropertyStats(pol, decomposer.Outgoing)
	n := ds.Facts.Politicians
	above := 0
	for _, s := range stats {
		if float64(s.Subjects) >= 0.2*float64(n) {
			above++
		}
	}
	if above != 38 {
		t.Errorf("properties above 20%% = %d, want 38", above)
	}
	if len(stats) != ds.Facts.PoliticianDistinctProperties {
		t.Errorf("distinct properties = %d, facts say %d", len(stats), ds.Facts.PoliticianDistinctProperties)
	}
}

// TestPoliticianCoveragePaperScale checks the 1,482 figure with the
// full-scale property pool.
func TestPoliticianCoveragePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	ds := Generate(PaperScaleConfig(1000))
	if ds.Facts.PoliticianDistinctProperties != 1482 {
		t.Errorf("distinct properties = %d, want 1482", ds.Facts.PoliticianDistinctProperties)
	}
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	d := decomposer.New(st)
	pol, _ := st.Dict().Lookup(Ont("Politician"))
	stats := d.PropertyStats(pol, decomposer.Outgoing)
	if len(stats) != 1482 {
		t.Errorf("measured distinct properties = %d, want 1482", len(stats))
	}
}

// TestPhilosopherIngoing is experiment T3: exactly 9 ingoing properties
// cross the 20% threshold on Philosopher.
func TestPhilosopherIngoing(t *testing.T) {
	ds := Generate(DefaultConfig())
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	d := decomposer.New(st)
	phil, ok := st.Dict().Lookup(Ont("Philosopher"))
	if !ok {
		t.Fatal("Philosopher missing")
	}
	stats := d.PropertyStats(phil, decomposer.Incoming)
	n := ds.Facts.Philosophers
	var above []string
	for _, s := range stats {
		if float64(s.Subjects) >= 0.2*float64(n) {
			above = append(above, st.Dict().Term(s.Property).LocalName())
		}
	}
	if len(above) != 9 {
		t.Errorf("ingoing above threshold = %d (%v), want 9", len(above), above)
	}
}

// TestErrorScenarioPresent: some persons are born in Food resources.
func TestErrorScenarioPresent(t *testing.T) {
	ds := Generate(DefaultConfig())
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	birthPlace, ok := st.Dict().LookupIRI(OntNS + "birthPlace")
	if !ok {
		t.Fatal("birthPlace missing")
	}
	foodID, ok := st.Dict().Lookup(Ont("Food"))
	if !ok {
		t.Fatal("Food missing")
	}
	foods := map[rdf.ID]struct{}{}
	for _, f := range st.SubjectsOfType(foodID) {
		foods[f] = struct{}{}
	}
	errs := 0
	st.Match(rdf.NoID, birthPlace, rdf.NoID, func(e rdf.EncodedTriple) bool {
		if _, isFood := foods[e.O]; isFood {
			errs++
		}
		return true
	})
	if errs == 0 {
		t.Error("no erroneous food birthplaces generated")
	}
}

// TestInfluencedByConnectsToScientists: the Section 3.4 scenario requires
// a Scientist bar in the influencedBy object expansion.
func TestInfluencedByConnectsToScientists(t *testing.T) {
	ds := Generate(DefaultConfig())
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	infBy, ok := st.Dict().LookupIRI(OntNS + "influencedBy")
	if !ok {
		t.Fatal("influencedBy missing")
	}
	sciID, _ := st.Dict().Lookup(Ont("Scientist"))
	scientists := map[rdf.ID]struct{}{}
	for _, s := range st.SubjectsOfType(sciID) {
		scientists[s] = struct{}{}
	}
	hits := 0
	st.Match(rdf.NoID, infBy, rdf.NoID, func(e rdf.EncodedTriple) bool {
		if _, isSci := scientists[e.O]; isSci {
			hits++
		}
		return true
	})
	if hits == 0 {
		t.Error("influencedBy never targets scientists")
	}
}

func TestPersonTypedAsAncestors(t *testing.T) {
	ds := Generate(Config{Seed: 1, Persons: 100, PoliticianProps: 40})
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	// Every Philosopher must also be typed Person, Agent and owl:Thing.
	philID, _ := st.Dict().Lookup(Ont("Philosopher"))
	persID, _ := st.Dict().Lookup(Ont("Person"))
	agentID, _ := st.Dict().Lookup(Ont("Agent"))
	thingID, _ := st.Dict().Lookup(rdf.OWLThingIRI)
	typeID := st.TypeID()
	for _, p := range st.SubjectsOfType(philID) {
		for _, anc := range []rdf.ID{persID, agentID, thingID} {
			if st.CountMatch(p, typeID, anc) != 1 {
				t.Fatalf("philosopher %v missing ancestor type %v",
					st.Dict().Term(p), st.Dict().Term(anc))
			}
		}
	}
}

func TestGenerateLGDRootless(t *testing.T) {
	ds := GenerateLGD(DefaultLGDConfig())
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	h := ontology.Build(st)
	if h.Root() != rdf.NoID {
		t.Errorf("LGD dataset should have no root, got %v", st.Dict().Term(h.Root()))
	}
	tops := h.TopLevelClasses()
	if len(tops) != 5 {
		t.Errorf("LGD top classes = %d, want 5", len(tops))
	}
	// All nodes typed into leaves and tops.
	cafe, ok := st.Dict().Lookup(LGD("Cafe"))
	if !ok {
		t.Fatal("Cafe missing")
	}
	if len(st.SubjectsOfType(cafe)) == 0 {
		t.Error("no cafes generated")
	}
}

func TestGenerateLGDDeterministic(t *testing.T) {
	a := GenerateLGD(LGDConfig{Seed: 5, Nodes: 200})
	b := GenerateLGD(LGDConfig{Seed: 5, Nodes: 200})
	if !reflect.DeepEqual(a.Triples, b.Triples) {
		t.Error("LGD generation not deterministic")
	}
}

func TestConfigDefaults(t *testing.T) {
	ds := Generate(Config{Seed: 1})
	if ds.Facts.Triples == 0 {
		t.Error("zero-config generation produced nothing")
	}
	lgd := GenerateLGD(LGDConfig{Seed: 1})
	if lgd.Facts.Triples == 0 {
		t.Error("zero-config LGD generation produced nothing")
	}
}
