package datagen

import (
	"fmt"
	"math/rand"

	"elinda/internal/rdf"
)

// YagoNS is the namespace of the YAGO-like dataset.
const YagoNS = "http://elinda.example/yago/"

// Yago returns a YAGO-style IRI term.
func Yago(local string) rdf.Term { return rdf.NewIRI(YagoNS + local) }

// YagoConfig controls the YAGO-like generator. YAGO's taxonomy descends
// from WordNet: it is much deeper than DBpedia's, classes frequently have
// several superclasses, and instances are typed into leaf classes (the
// upper levels are reached only through the rdfs:subClassOf closure).
// That shape stresses exactly the parts of eLinda the DBpedia-like
// dataset does not: deep drill-down paths, multi-parent breadcrumbs, and
// subclass charts whose bars overlap.
type YagoConfig struct {
	// Seed drives the pseudo-random choices.
	Seed int64
	// Depth is the taxonomy depth below the root (YAGO: ~15; default 8).
	Depth int
	// Branching is the number of children per internal class (default 3).
	Branching int
	// MultiParentRate is the probability a class gains a second
	// superclass from the level above (default 0.15).
	MultiParentRate float64
	// Instances is the number of entities, all typed into leaf classes.
	Instances int
}

// DefaultYagoConfig returns the test-scale configuration.
func DefaultYagoConfig() YagoConfig {
	return YagoConfig{Seed: 5, Depth: 8, Branching: 3, MultiParentRate: 0.15, Instances: 3000}
}

// GenerateYago builds the deep-taxonomy dataset.
func GenerateYago(cfg YagoConfig) *Dataset {
	if cfg.Depth <= 0 {
		cfg.Depth = 8
	}
	if cfg.Branching <= 1 {
		cfg.Branching = 3
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 3000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var triples []rdf.Triple
	add := func(s, p, o rdf.Term) {
		triples = append(triples, rdf.Triple{S: s, P: p, O: o})
	}

	add(rdf.OWLThingIRI, rdf.TypeIRI, rdf.OWLClassIRI)

	// Build the class levels. To keep the class count bounded at depth 8
	// with branching 3, each level has at most Branching^2 classes wide;
	// children are attached to random parents of the previous level.
	levels := make([][]rdf.Term, cfg.Depth+1)
	levels[0] = []rdf.Term{rdf.OWLThingIRI}
	classCount := 0
	maxWidth := cfg.Branching * cfg.Branching * cfg.Branching
	for d := 1; d <= cfg.Depth; d++ {
		width := len(levels[d-1]) * cfg.Branching
		if width > maxWidth {
			width = maxWidth
		}
		for i := 0; i < width; i++ {
			c := Yago(fmt.Sprintf("wordnet_c%d_%d", d, i))
			parent := levels[d-1][rng.Intn(len(levels[d-1]))]
			add(c, rdf.TypeIRI, rdf.OWLClassIRI)
			add(c, rdf.SubClassOfIRI, parent)
			add(c, rdf.LabelIRI, rdf.NewLangLiteral(fmt.Sprintf("concept %d-%d", d, i), "en"))
			// Multiple inheritance: a second parent at the same level above.
			if rng.Float64() < cfg.MultiParentRate && len(levels[d-1]) > 1 {
				second := levels[d-1][rng.Intn(len(levels[d-1]))]
				if second != parent {
					add(c, rdf.SubClassOfIRI, second)
				}
			}
			levels[d] = append(levels[d], c)
			classCount++
		}
	}

	// Instances: typed into a random leaf class only (plus owl:Thing, as
	// YAGO materializes).
	leaves := levels[cfg.Depth]
	props := []rdf.Term{Yago("wasBornIn"), Yago("hasWonPrize"), Yago("isLocatedIn"), Yago("created")}
	for i := 0; i < cfg.Instances; i++ {
		e := Yago(fmt.Sprintf("entity_%d", i))
		leaf := leaves[rng.Intn(len(leaves))]
		add(e, rdf.TypeIRI, leaf)
		add(e, rdf.TypeIRI, rdf.OWLThingIRI)
		if rng.Float64() < 0.7 {
			add(e, rdf.LabelIRI, rdf.NewLiteral(fmt.Sprintf("entity %d", i)))
		}
		for _, p := range props {
			if rng.Float64() < 0.3 {
				add(e, p, Yago(fmt.Sprintf("entity_%d", rng.Intn(cfg.Instances))))
			}
		}
	}

	return &Dataset{
		Triples: triples,
		Facts: Facts{
			TopLevelClasses: len(levels[1]),
			Triples:         len(triples),
		},
	}
}
