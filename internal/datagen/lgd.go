package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"elinda/internal/rdf"
)

// LGDNS is the namespace of the LinkedGeoData-like dataset.
const LGDNS = "http://elinda.example/lgd/"

// LGD returns a LinkedGeoData-style IRI term.
func LGD(local string) rdf.Term { return rdf.NewIRI(LGDNS + local) }

// LGDConfig controls the rootless geographic dataset generator. The paper
// (Section 3.2, footnote 7): "We also handle the case of datasets with no
// root class, as found in LinkedGeoData."
type LGDConfig struct {
	// Seed drives the pseudo-random choices.
	Seed int64
	// Nodes is the approximate number of geographic features.
	Nodes int
}

// DefaultLGDConfig returns the test-scale configuration.
func DefaultLGDConfig() LGDConfig { return LGDConfig{Seed: 7, Nodes: 1500} }

// lgdTopClasses are the roots of the forest — deliberately with NO shared
// superclass and no owl:Thing.
var lgdTopClasses = map[string][]string{
	"Amenity": {"Cafe", "Restaurant", "Pharmacy", "School", "Bank"},
	"Highway": {"Motorway", "Residential", "Footpath"},
	"Shop":    {"Bakery", "Supermarket", "Butcher"},
	"Tourism": {"Hotel", "Museum", "Viewpoint"},
	"Leisure": {"Park", "Playground"},
}

// GenerateLGD builds the rootless LinkedGeoData-like dataset.
func GenerateLGD(cfg LGDConfig) *Dataset {
	if cfg.Nodes <= 0 {
		cfg.Nodes = DefaultLGDConfig().Nodes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var triples []rdf.Triple
	add := func(s, p, o rdf.Term) {
		triples = append(triples, rdf.Triple{S: s, P: p, O: o})
	}

	tops := make([]string, 0, len(lgdTopClasses))
	for top := range lgdTopClasses {
		tops = append(tops, top)
	}
	sort.Strings(tops)

	var leaves []struct{ leaf, top string }
	for _, top := range tops {
		subs := lgdTopClasses[top]
		add(LGD(top), rdf.TypeIRI, rdf.RDFSClassIRI)
		add(LGD(top), rdf.LabelIRI, rdf.NewLangLiteral(top, "en"))
		for _, sub := range subs {
			add(LGD(sub), rdf.TypeIRI, rdf.RDFSClassIRI)
			add(LGD(sub), rdf.SubClassOfIRI, LGD(top))
			add(LGD(sub), rdf.LabelIRI, rdf.NewLangLiteral(sub, "en"))
			leaves = append(leaves, struct{ leaf, top string }{sub, top})
		}
	}

	for i := 0; i < cfg.Nodes; i++ {
		pick := leaves[rng.Intn(len(leaves))]
		node := LGD(fmt.Sprintf("node_%d", i))
		add(node, rdf.TypeIRI, LGD(pick.leaf))
		add(node, rdf.TypeIRI, LGD(pick.top))
		add(node, LGD("lat"), rdf.NewTypedLiteral(
			fmt.Sprintf("%.5f", -90+180*rng.Float64()), rdf.XSDDouble))
		add(node, LGD("long"), rdf.NewTypedLiteral(
			fmt.Sprintf("%.5f", -180+360*rng.Float64()), rdf.XSDDouble))
		if rng.Float64() < 0.6 {
			add(node, rdf.LabelIRI, rdf.NewLiteral(fmt.Sprintf("%s %d", pick.leaf, i)))
		}
		if rng.Float64() < 0.3 {
			add(node, LGD("openingHours"), rdf.NewLiteral("Mo-Fr 09:00-18:00"))
		}
	}
	return &Dataset{
		Triples: triples,
		Facts:   Facts{TopLevelClasses: len(lgdTopClasses), Triples: len(triples)},
	}
}
