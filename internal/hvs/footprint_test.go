package hvs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

func fpOf(t *testing.T, src string) *sparql.Footprint {
	t.Helper()
	fp := sparql.QueryFootprint(src)
	if fp.Wild {
		t.Fatalf("footprint of %q unexpectedly wild", src)
	}
	return fp
}

func opsFor(triples ...rdf.Triple) []rdf.TripleOp {
	ops := make([]rdf.TripleOp, len(triples))
	for i, tr := range triples {
		ops[i] = rdf.Insert(tr)
	}
	return ops
}

func triple(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI("http://x/" + s), P: rdf.NewIRI("http://x/" + p), O: rdf.NewIRI("http://x/" + o)}
}

// TestApplyDeltaRetainsDisjoint: entries whose footprint is disjoint
// from the mutation survive it, keep serving at the new generation, and
// the overlapping ones are gone.
func TestApplyDeltaRetainsDisjoint(t *testing.T) {
	s := New(time.Millisecond)
	disjoint := "SELECT ?s WHERE { ?s <http://x/pA> ?o }"
	overlapping := "SELECT ?s WHERE { ?s <http://x/pB> ?o }"
	s.RecordFootprint(disjoint, res("a"), time.Second, 1, fpOf(t, disjoint))
	s.RecordFootprint(overlapping, res("b"), time.Second, 1, fpOf(t, overlapping))

	retained, evicted := s.ApplyDelta(1, 3, opsFor(triple("s1", "pB", "o1")))
	if retained != 1 || evicted != 1 {
		t.Fatalf("ApplyDelta = (%d retained, %d evicted), want (1, 1)", retained, evicted)
	}
	if got, ok := s.Lookup(disjoint, 3); !ok || got.Rows[0]["x"].Value != "http://x/a" {
		t.Fatalf("disjoint entry lost or stale after delta: (%v, %v)", got, ok)
	}
	if _, ok := s.Lookup(overlapping, 3); ok {
		t.Fatal("overlapping entry served after the mutation it depends on")
	}
	st := s.Stats()
	if st.DeltaRetained != 1 || st.DeltaEvictions != 1 {
		t.Fatalf("stats = %+v, want DeltaRetained=1 DeltaEvictions=1", st)
	}
}

// TestApplyDeltaNilFootprintEvicted: entries recorded without a
// footprint (Record, or restored from an old snapshot) are treated as
// wild and evicted by any delta.
func TestApplyDeltaNilFootprintEvicted(t *testing.T) {
	s := New(time.Millisecond)
	s.Record("q", res("a"), time.Second, 1)
	retained, evicted := s.ApplyDelta(1, 2, opsFor(triple("s", "pZ", "o")))
	if retained != 0 || evicted != 1 {
		t.Fatalf("ApplyDelta = (%d, %d), want (0, 1)", retained, evicted)
	}
	if _, ok := s.Lookup("q", 2); ok {
		t.Fatal("footprint-less entry survived a delta")
	}
}

// TestApplyDeltaWildFootprintEvicted: an explicitly wild footprint
// (unsummarizable query) never survives.
func TestApplyDeltaWildFootprintEvicted(t *testing.T) {
	s := New(time.Millisecond)
	s.RecordFootprint("q", res("a"), time.Second, 1, sparql.WildFootprint())
	if retained, evicted := s.ApplyDelta(1, 2, opsFor(triple("s", "p", "o"))); retained != 0 || evicted != 1 {
		t.Fatalf("ApplyDelta = (%d, %d), want (0, 1)", retained, evicted)
	}
}

// TestApplyDeltaGenerationMismatch: a delta whose From does not match
// the cache's generation means the cache missed an earlier write — it
// must clear wholesale, footprints notwithstanding.
func TestApplyDeltaGenerationMismatch(t *testing.T) {
	s := New(time.Millisecond)
	q := "SELECT ?s WHERE { ?s <http://x/pA> ?o }"
	s.RecordFootprint(q, res("a"), time.Second, 1, fpOf(t, q))
	// Delta from generation 5: the cache only saw generation 1.
	retained, evicted := s.ApplyDelta(5, 7, opsFor(triple("s", "pZ", "o")))
	if retained != 0 || evicted != 1 {
		t.Fatalf("mismatched delta = (%d, %d), want wholesale (0, 1)", retained, evicted)
	}
	if _, ok := s.Lookup(q, 7); ok {
		t.Fatal("entry survived a wholesale clear")
	}
}

// TestApplyDeltaGenerationSemantics: survivors are re-tagged to the
// delta's target generation — lookups at to succeed, lookups at any
// other generation still invalidate as before.
func TestApplyDeltaGenerationSemantics(t *testing.T) {
	s := New(time.Millisecond)
	q := "SELECT ?s WHERE { ?s <http://x/pA> ?o }"
	s.RecordFootprint(q, res("a"), time.Second, 1, fpOf(t, q))
	s.ApplyDelta(1, 4, opsFor(triple("s", "pZ", "o")))
	if _, ok := s.Lookup(q, 4); !ok {
		t.Fatal("survivor not re-tagged to the delta's target generation")
	}
	// A later lookup at a generation the cache never heard about is a
	// foreign write: generation invalidation must still fire.
	if _, ok := s.Lookup(q, 9); ok {
		t.Fatal("entry served at a generation the cache never reached")
	}
	if s.Len() != 0 {
		t.Fatal("generation invalidation no longer clears")
	}
}

// TestApplyDeltaGuardPositions exercises all three guard positions: a
// query guarded by subject or object must react only to triples
// carrying that constant in that position.
func TestApplyDeltaGuardPositions(t *testing.T) {
	cases := []struct {
		name  string
		query string
		hit   rdf.Triple
		miss  rdf.Triple
	}{
		{
			name:  "predicate guard",
			query: "SELECT ?s WHERE { ?s <http://x/p1> ?o }",
			hit:   triple("any", "p1", "any"),
			miss:  triple("p1", "other", "p1"), // the constant elsewhere does not count
		},
		{
			name:  "subject guard",
			query: "SELECT ?p WHERE { <http://x/s1> ?p ?o }",
			hit:   triple("s1", "any", "any"),
			miss:  triple("other", "s1", "s1"),
		},
		{
			name:  "object guard",
			query: "SELECT ?s WHERE { ?s ?p <http://x/o1> }",
			hit:   triple("any", "any", "o1"),
			miss:  triple("o1", "o1", "other"),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New(time.Millisecond)
			s.RecordFootprint(c.query, res("a"), time.Second, 1, fpOf(t, c.query))
			if retained, evicted := s.ApplyDelta(1, 2, []rdf.TripleOp{rdf.Insert(c.miss)}); retained != 1 || evicted != 0 {
				t.Fatalf("miss triple evicted the entry: (%d, %d)", retained, evicted)
			}
			if retained, evicted := s.ApplyDelta(2, 3, []rdf.TripleOp{rdf.Insert(c.hit)}); retained != 0 || evicted != 1 {
				t.Fatalf("hit triple retained the entry: (%d, %d)", retained, evicted)
			}
		})
	}
}

// TestApplyDeltaDeleteOpsCount: delete ops trigger eviction exactly like
// inserts — removing a triple a query depends on changes its result.
func TestApplyDeltaDeleteOpsCount(t *testing.T) {
	s := New(time.Millisecond)
	q := "SELECT ?s WHERE { ?s <http://x/pA> ?o }"
	s.RecordFootprint(q, res("a"), time.Second, 1, fpOf(t, q))
	if retained, evicted := s.ApplyDelta(1, 2, []rdf.TripleOp{rdf.Delete(triple("s", "pA", "o"))}); retained != 0 || evicted != 1 {
		t.Fatalf("delete op ignored by invalidation: (%d, %d)", retained, evicted)
	}
}

// TestFootprintRetentionProperty is the randomized soundness check:
// entries are tagged with single-predicate footprints, random deltas
// land, and after every delta each surviving entry's footprint must be
// disjoint from the delta while each evicted entry's must overlap.
func TestFootprintRetentionProperty(t *testing.T) {
	preds := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		s := New(time.Millisecond)
		queries := make(map[string]string, len(preds)) // query → guarded pred
		gen := uint64(1)
		for _, p := range preds {
			q := fmt.Sprintf("SELECT ?s WHERE { ?s <http://x/%s> ?o }", p)
			queries[q] = p
			s.RecordFootprint(q, res(p), time.Second, gen, fpOf(t, q))
		}
		// A few deltas in sequence, each touching a random predicate set.
		alive := make(map[string]bool, len(queries))
		for q := range queries {
			alive[q] = true
		}
		for d := 0; d < 4; d++ {
			touched := map[string]bool{}
			var ops []rdf.TripleOp
			for n := 1 + rng.Intn(3); n > 0; n-- {
				p := preds[rng.Intn(len(preds))]
				touched[p] = true
				ops = append(ops, rdf.Insert(triple(fmt.Sprintf("s%d", rng.Intn(5)), p, "o")))
			}
			wantRetained, wantEvicted := 0, 0
			for q, p := range queries {
				if !alive[q] {
					continue
				}
				if touched[p] {
					wantEvicted++
					alive[q] = false
				} else {
					wantRetained++
				}
			}
			retained, evicted := s.ApplyDelta(gen, gen+1, ops)
			gen++
			if retained != wantRetained || evicted != wantEvicted {
				t.Fatalf("round %d delta %d: ApplyDelta = (%d, %d), want (%d, %d)",
					round, d, retained, evicted, wantRetained, wantEvicted)
			}
			for q := range queries {
				_, ok := s.Lookup(q, gen)
				if ok != alive[q] {
					t.Fatalf("round %d delta %d: Lookup(%q) = %v, model says %v", round, d, q, ok, alive[q])
				}
			}
		}
	}
}

// TestFootprintSurvivesSnapshot: the footprint round-trips through the
// gob snapshot, so a restored cache keeps its delta-retention behavior.
func TestFootprintSurvivesSnapshot(t *testing.T) {
	s := New(time.Millisecond)
	q := "SELECT ?s WHERE { ?s <http://x/pA> ?o }"
	s.RecordFootprint(q, res("a"), time.Second, 1, fpOf(t, q))
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(time.Millisecond)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if retained, evicted := restored.ApplyDelta(1, 2, opsFor(triple("s", "pZ", "o"))); retained != 1 || evicted != 0 {
		t.Fatalf("restored entry lost its footprint: (%d, %d)", retained, evicted)
	}
	if _, ok := restored.Lookup(q, 2); !ok {
		t.Fatal("restored disjoint entry not served after delta")
	}
}
