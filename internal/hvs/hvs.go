// Package hvs implements eLinda's Heavy Query Store (Section 4):
//
//	"eLinda detects heavy queries and saves their results in a key-value
//	store called heavy query store (HVS) on the eLinda endpoint. For each
//	query to the eLinda endpoint, the system first checks if the HVS
//	encountered it before and determined it to be heavy. If so, use the
//	result from the HVS, otherwise route it to the Virtuoso endpoint.
//	eLinda backend measures the run time of the routed queries. Queries
//	with runtime bigger than one second are considered heavy and saved in
//	the HVS. The HVS is cleared on any update to the eLinda knowledge
//	bases."
package hvs

import (
	"strings"
	"sync"
	"time"

	"elinda/internal/sparql"
)

// DefaultThreshold is the paper's heaviness cutoff: one second.
const DefaultThreshold = time.Second

// Entry is a cached heavy-query result.
type Entry struct {
	// Result is the stored query result.
	Result *sparql.Result
	// Runtime is the execution time observed when the entry was stored.
	Runtime time.Duration
	// StoredAt is when the entry was created.
	StoredAt time.Time
	// Hits counts cache lookups served by this entry.
	Hits int
}

// Stats summarizes store activity.
type Stats struct {
	// Entries is the current number of cached results.
	Entries int
	// Hits counts queries answered from the store.
	Hits int
	// Misses counts lookups that found nothing.
	Misses int
	// Stores counts results recorded as heavy.
	Stores int
	// Invalidations counts whole-store clears.
	Invalidations int
}

// Store is a threshold-gated key-value cache of SPARQL results. It is safe
// for concurrent use.
type Store struct {
	mu        sync.RWMutex
	entries   map[string]*Entry
	threshold time.Duration
	// generation remembers the KB generation the cache contents belong to.
	generation uint64
	haveGen    bool

	hits, misses, stores, invalidations int

	// MaxEntries bounds the cache size; 0 means unlimited. When full, the
	// least-hit entry is evicted (heavy queries are few, so a simple scan
	// suffices).
	MaxEntries int
}

// New returns a store with the given heaviness threshold
// (DefaultThreshold when zero or negative).
func New(threshold time.Duration) *Store {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Store{
		entries:   make(map[string]*Entry),
		threshold: threshold,
	}
}

// Threshold returns the heaviness cutoff.
func (s *Store) Threshold() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.threshold
}

// SetThreshold changes the heaviness cutoff. Existing entries are kept:
// they were observed heavy under the old policy and remain valid results.
func (s *Store) SetThreshold(threshold time.Duration) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.threshold = threshold
}

// Normalize canonicalizes query text so that trivially different spellings
// of the same query share a cache slot (whitespace collapsing).
func Normalize(query string) string {
	fields := strings.Fields(query)
	return strings.Join(fields, " ")
}

// Lookup returns a cached result for the query under the given KB
// generation. A generation different from the one the cache was filled at
// clears the store first ("The HVS is cleared on any update").
func (s *Store) Lookup(query string, generation uint64) (*sparql.Result, bool) {
	key := Normalize(query)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureGenerationLocked(generation)
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	e.Hits++
	s.hits++
	return e.Result, true
}

// Record reports an executed query with its observed runtime. The result
// is stored only when the runtime exceeds the threshold. It returns
// whether the query was classified heavy.
func (s *Store) Record(query string, res *sparql.Result, runtime time.Duration, generation uint64) bool {
	key := Normalize(query)
	s.mu.Lock()
	defer s.mu.Unlock()
	if runtime < s.threshold {
		return false
	}
	s.ensureGenerationLocked(generation)
	if s.MaxEntries > 0 && len(s.entries) >= s.MaxEntries {
		if _, exists := s.entries[key]; !exists {
			s.evictColdestLocked()
		}
	}
	s.entries[key] = &Entry{Result: res, Runtime: runtime, StoredAt: time.Now()}
	s.stores++
	return true
}

// ensureGenerationLocked clears the cache if the KB generation moved.
func (s *Store) ensureGenerationLocked(generation uint64) {
	if s.haveGen && s.generation == generation {
		return
	}
	if s.haveGen && len(s.entries) > 0 {
		s.entries = make(map[string]*Entry)
		s.invalidations++
	}
	s.generation = generation
	s.haveGen = true
}

// evictColdestLocked removes the least-hit entry. A found flag tracks
// whether any entry was seen: the empty string is a legitimate key (a
// whitespace-only query normalizes to ""), so it cannot double as the
// "no entry" sentinel without letting the cache exceed MaxEntries.
func (s *Store) evictColdestLocked() {
	var coldKey string
	found := false
	coldHits := 0
	for k, e := range s.entries {
		if !found || e.Hits < coldHits {
			found = true
			coldHits = e.Hits
			coldKey = k
		}
	}
	if found {
		delete(s.entries, coldKey)
	}
}

// Invalidate clears every entry unconditionally.
func (s *Store) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) > 0 {
		s.entries = make(map[string]*Entry)
		s.invalidations++
	}
	s.haveGen = false
}

// Len returns the number of cached entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Entries:       len(s.entries),
		Hits:          s.hits,
		Misses:        s.misses,
		Stores:        s.stores,
		Invalidations: s.invalidations,
	}
}

// Entry returns the cache entry for a query, if present, without counting
// a hit. Intended for introspection and tests.
func (s *Store) Entry(query string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[Normalize(query)]
	return e, ok
}
