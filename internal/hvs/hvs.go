// Package hvs implements eLinda's Heavy Query Store (Section 4):
//
//	"eLinda detects heavy queries and saves their results in a key-value
//	store called heavy query store (HVS) on the eLinda endpoint. For each
//	query to the eLinda endpoint, the system first checks if the HVS
//	encountered it before and determined it to be heavy. If so, use the
//	result from the HVS, otherwise route it to the Virtuoso endpoint.
//	eLinda backend measures the run time of the routed queries. Queries
//	with runtime bigger than one second are considered heavy and saved in
//	the HVS. The HVS is cleared on any update to the eLinda knowledge
//	bases."
//
// Beyond the paper, the store is production-bounded: every entry carries
// an approximate byte cost, and an optional byte budget (MaxBytes) evicts
// in LRU order when the cache would outgrow it, so heavy traffic cannot
// grow the HVS past its memory allowance. Generation-based invalidation
// is unchanged and always wins over recency.
package hvs

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// DefaultThreshold is the paper's heaviness cutoff: one second.
const DefaultThreshold = time.Second

// Entry is a cached heavy-query result.
type Entry struct {
	// Result is the stored query result.
	Result *sparql.Result
	// Runtime is the execution time observed when the entry was stored.
	Runtime time.Duration
	// StoredAt is when the entry was created.
	StoredAt time.Time
	// Hits counts cache lookups served by this entry.
	Hits int
	// Bytes is the approximate memory cost of Result (see ResultBytes).
	Bytes int64
	// Footprint summarizes which triples the result depends on, for
	// delta-aware invalidation (ApplyDelta). nil means unknown: the entry
	// is treated as depending on everything and evicted by any delta.
	Footprint *sparql.Footprint
}

// Stats summarizes store activity.
type Stats struct {
	// Entries is the current number of cached results.
	Entries int
	// Bytes is the approximate total cost of the cached results.
	Bytes int64
	// Hits counts queries answered from the store.
	Hits int
	// Misses counts lookups that found nothing.
	Misses int
	// Stores counts results recorded as heavy.
	Stores int
	// Evictions counts entries removed to satisfy MaxEntries or MaxBytes.
	Evictions int
	// Invalidations counts whole-store clears.
	Invalidations int
	// DeltaEvictions counts entries evicted by delta-aware invalidation
	// because their footprint overlapped a mutation.
	DeltaEvictions int
	// DeltaRetained counts entries that survived a delta-aware
	// invalidation because their footprint was disjoint from the mutation.
	DeltaRetained int
}

// Store is a threshold-gated key-value cache of SPARQL results. It is safe
// for concurrent use.
type Store struct {
	mu        sync.RWMutex
	entries   map[string]*Entry
	threshold time.Duration
	// generation remembers the KB generation the cache contents belong to.
	generation uint64
	haveGen    bool

	// lru orders keys most- to least-recently used (front = hottest);
	// lruOf finds a key's element for O(1) touch on Lookup. totalBytes
	// tracks the sum of Entry.Bytes for the byte budget.
	lru        list.List
	lruOf      map[string]*list.Element
	totalBytes int64

	hits, misses, stores, evictions, invalidations int
	deltaEvictions, deltaRetained                  int

	// MaxEntries bounds the cache size; 0 means unlimited. When full, the
	// least-hit entry is evicted (heavy queries are few, so a simple scan
	// suffices).
	MaxEntries int
	// MaxBytes bounds the approximate total byte cost of cached results;
	// 0 means unlimited. Exceeding it evicts least-recently-used entries
	// until the budget holds again. A single result larger than the whole
	// budget is never stored (it would evict everything and still not
	// fit), though the query is still classified heavy.
	MaxBytes int64
}

// New returns a store with the given heaviness threshold
// (DefaultThreshold when zero or negative).
func New(threshold time.Duration) *Store {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Store{
		entries:   make(map[string]*Entry),
		threshold: threshold,
		lruOf:     make(map[string]*list.Element),
	}
}

// Threshold returns the heaviness cutoff.
func (s *Store) Threshold() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.threshold
}

// SetThreshold changes the heaviness cutoff. Existing entries are kept:
// they were observed heavy under the old policy and remain valid results.
func (s *Store) SetThreshold(threshold time.Duration) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.threshold = threshold
}

// SetMaxBytes changes the byte budget (0 = unlimited) and immediately
// evicts LRU entries if the current contents exceed the new budget.
func (s *Store) SetMaxBytes(budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.MaxBytes = budget
	s.evictOverBudgetLocked(nil)
}

// Normalize canonicalizes query text so that trivially different spellings
// of the same query share a cache slot (whitespace collapsing).
func Normalize(query string) string {
	fields := strings.Fields(query)
	return strings.Join(fields, " ")
}

// ResultBytes approximates the in-memory cost of a result: string bytes of
// every bound term plus fixed per-row and per-binding overheads for the
// map and Term headers. It is an accounting estimate (for the byte
// budget), not an exact heap measurement.
func ResultBytes(res *sparql.Result) int64 {
	if res == nil {
		return 0
	}
	total := int64(64) // Result header + Vars slice
	for _, v := range res.Vars {
		total += int64(len(v)) + 16
	}
	for _, row := range res.Rows {
		total += SolutionBytes(row)
	}
	return total
}

// SolutionBytes approximates the cost of one solution row, with the same
// accounting ResultBytes uses — exported so streaming tees can meter a
// result incrementally.
func SolutionBytes(row sparql.Solution) int64 {
	const (
		rowOverhead     = 48 // Solution map header
		bindingOverhead = 64 // map bucket slot + Term struct
	)
	total := int64(rowOverhead)
	for v, t := range row {
		total += bindingOverhead + int64(len(v)) + int64(len(t.Value)) +
			int64(len(t.Lang)) + int64(len(t.Datatype))
	}
	return total
}

// Lookup returns a cached result for the query under the given KB
// generation. A generation different from the one the cache was filled at
// clears the store first ("The HVS is cleared on any update"). A hit
// refreshes the entry's recency for LRU byte-budget eviction.
func (s *Store) Lookup(query string, generation uint64) (*sparql.Result, bool) {
	key := Normalize(query)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureGenerationLocked(generation)
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	e.Hits++
	s.hits++
	s.touchLocked(key)
	return e.Result, true
}

// Record reports an executed query with its observed runtime. The result
// is stored only when the runtime exceeds the threshold. It returns
// whether the query was classified heavy.
//
// The byte-cost walk over the result happens before the store lock is
// taken: a multi-megabyte result must not stall every concurrent Lookup
// (the hot tier-1 path) while its cost is computed. A SetThreshold
// racing this call classifies under whichever threshold it observed —
// the same ambiguity a serialized interleaving has.
func (s *Store) Record(query string, res *sparql.Result, runtime time.Duration, generation uint64) bool {
	return s.RecordFootprint(query, res, runtime, generation, nil)
}

// RecordFootprint is Record with a dependency footprint attached to the
// stored entry, enabling the entry to survive delta-aware invalidation
// (ApplyDelta) for mutations disjoint from the footprint. A nil footprint
// stores a wholesale-invalidated entry, exactly like Record.
func (s *Store) RecordFootprint(query string, res *sparql.Result, runtime time.Duration, generation uint64, fp *sparql.Footprint) bool {
	key := Normalize(query)
	if runtime < s.Threshold() {
		return false
	}
	bytes := ResultBytes(res)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureGenerationLocked(generation)
	if s.MaxBytes > 0 && bytes > s.MaxBytes {
		// Heavy, but too large to ever fit the budget: classify without
		// storing rather than flushing the whole cache for one result.
		return true
	}
	if s.MaxEntries > 0 && len(s.entries) >= s.MaxEntries {
		if _, exists := s.entries[key]; !exists {
			s.evictColdestLocked()
		}
	}
	if old, exists := s.entries[key]; exists {
		s.totalBytes -= old.Bytes
	}
	s.entries[key] = &Entry{Result: res, Runtime: runtime, StoredAt: time.Now(), Bytes: bytes, Footprint: fp}
	s.totalBytes += bytes
	s.touchLocked(key)
	s.stores++
	s.evictOverBudgetLocked(s.lruOf[key])
	return true
}

// touchLocked moves key to the LRU front, inserting it if new.
func (s *Store) touchLocked(key string) {
	if el, ok := s.lruOf[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.lruOf[key] = s.lru.PushFront(key)
}

// removeLocked deletes key from the map, the LRU list, and the byte total.
func (s *Store) removeLocked(key string) {
	if e, ok := s.entries[key]; ok {
		s.totalBytes -= e.Bytes
		delete(s.entries, key)
	}
	if el, ok := s.lruOf[key]; ok {
		s.lru.Remove(el)
		delete(s.lruOf, key)
	}
}

// evictOverBudgetLocked drops least-recently-used entries until totalBytes
// fits MaxBytes again. keep (the element of the key just inserted, nil for
// none) is never evicted — a "" key is legitimate, so the guard compares
// list elements, not key strings.
func (s *Store) evictOverBudgetLocked(keep *list.Element) {
	if s.MaxBytes <= 0 {
		return
	}
	for s.totalBytes > s.MaxBytes && s.lru.Len() > 0 {
		back := s.lru.Back()
		if back == keep {
			return
		}
		s.removeLocked(back.Value.(string))
		s.evictions++
	}
}

// ensureGenerationLocked clears the cache if the KB generation moved.
func (s *Store) ensureGenerationLocked(generation uint64) {
	if s.haveGen && s.generation == generation {
		return
	}
	if s.haveGen && len(s.entries) > 0 {
		s.clearLocked()
		s.invalidations++
	}
	s.generation = generation
	s.haveGen = true
}

// clearLocked resets the entries, the LRU order, and the byte accounting.
func (s *Store) clearLocked() {
	s.entries = make(map[string]*Entry)
	s.lruOf = make(map[string]*list.Element)
	s.lru.Init()
	s.totalBytes = 0
}

// evictColdestLocked removes the least-hit entry. A found flag tracks
// whether any entry was seen: the empty string is a legitimate key (a
// whitespace-only query normalizes to ""), so it cannot double as the
// "no entry" sentinel without letting the cache exceed MaxEntries.
func (s *Store) evictColdestLocked() {
	var coldKey string
	found := false
	coldHits := 0
	for k, e := range s.entries {
		if !found || e.Hits < coldHits {
			found = true
			coldHits = e.Hits
			coldKey = k
		}
	}
	if found {
		s.removeLocked(coldKey)
		s.evictions++
	}
}

// ApplyDelta performs delta-aware invalidation for a mutation that moved
// the KB generation from 'from' to 'to': entries whose footprint is
// disjoint from the mutated triples survive and are re-tagged to the new
// generation; entries whose footprint overlaps (or is nil/wild) are
// evicted. When the cache's contents do not belong to generation 'from'
// — an update raced another writer, or the cache was filled elsewhere —
// provenance is unknown and the paper's wholesale clear applies.
//
// It returns how many entries were retained and evicted.
func (s *Store) ApplyDelta(from, to uint64, ops []rdf.TripleOp) (retained, evicted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveGen || s.generation != from {
		n := len(s.entries)
		if n > 0 {
			s.clearLocked()
			s.invalidations++
		}
		s.generation = to
		s.haveGen = true
		return 0, n
	}
	// Collect first, then remove: removeLocked mutates s.entries. The
	// surviving set is order-independent, so map iteration order cannot
	// change the outcome.
	var dead []string
	for k, e := range s.entries {
		if e.Footprint.Overlaps(ops) {
			//lint:ignore maporder dead is a removal set; removeLocked is per-key and the counts are set-sized, order cannot reach output
			dead = append(dead, k)
		}
	}
	for _, k := range dead {
		s.removeLocked(k)
	}
	retained = len(s.entries)
	evicted = len(dead)
	s.deltaEvictions += evicted
	s.deltaRetained += retained
	if evicted > 0 && retained == 0 {
		s.invalidations++
	}
	s.generation = to
	return retained, evicted
}

// Invalidate clears every entry unconditionally.
func (s *Store) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) > 0 {
		s.clearLocked()
		s.invalidations++
	}
	s.haveGen = false
}

// Len returns the number of cached entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Bytes returns the approximate total byte cost of the cached results.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalBytes
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Entries:        len(s.entries),
		Bytes:          s.totalBytes,
		Hits:           s.hits,
		Misses:         s.misses,
		Stores:         s.stores,
		Evictions:      s.evictions,
		Invalidations:  s.invalidations,
		DeltaEvictions: s.deltaEvictions,
		DeltaRetained:  s.deltaRetained,
	}
}

// Entry returns the cache entry for a query, if present, without counting
// a hit. Intended for introspection and tests.
func (s *Store) Entry(query string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[Normalize(query)]
	return e, ok
}
