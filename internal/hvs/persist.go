package hvs

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"
)

// snapshotDoc is the on-disk representation of the store.
type snapshotDoc struct {
	// Version guards against format drift.
	Version int
	// Generation is the KB generation the entries belong to.
	Generation uint64
	HaveGen    bool
	Threshold  time.Duration
	Entries    map[string]*Entry
}

const snapshotVersion = 1

// Snapshot serializes the cache contents with encoding/gob, so an eLinda
// endpoint can persist its heavy-query results across restarts (the
// mirrored knowledge bases change rarely; recomputing minutes-long
// queries on every boot would defeat the HVS).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	doc := snapshotDoc{
		Version:    snapshotVersion,
		Generation: s.generation,
		HaveGen:    s.haveGen,
		Threshold:  s.threshold,
		Entries:    make(map[string]*Entry, len(s.entries)),
	}
	for k, e := range s.entries {
		copied := *e
		doc.Entries[k] = &copied
	}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("hvs: encoding snapshot: %w", err)
	}
	return nil
}

// Restore replaces the cache contents from a snapshot, keeping the
// store's current threshold. The snapshot's generation is kept so that
// the first Lookup against a changed KB still invalidates correctly.
// The LRU order and byte accounting are rebuilt (snapshots written before
// byte accounting existed get their costs recomputed), and a configured
// byte budget is enforced immediately.
func (s *Store) Restore(r io.Reader) error {
	var doc snapshotDoc
	if err := gob.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("hvs: decoding snapshot: %w", err)
	}
	if doc.Version != snapshotVersion {
		return fmt.Errorf("hvs: unsupported snapshot version %d", doc.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if doc.Entries == nil {
		doc.Entries = map[string]*Entry{}
	}
	s.clearLocked()
	s.entries = doc.Entries
	for key, e := range s.entries {
		if e.Bytes == 0 {
			e.Bytes = ResultBytes(e.Result)
		}
		s.totalBytes += e.Bytes
		s.touchLocked(key)
	}
	s.evictOverBudgetLocked(nil)
	s.generation = doc.Generation
	s.haveGen = doc.HaveGen
	return nil
}
