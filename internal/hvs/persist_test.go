package hvs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	s := New(time.Millisecond)
	s.Record("q1", res("a"), time.Second, 7)
	s.Record("q2", res("b"), 2*time.Second, 7)
	s.Lookup("q1", 7)

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(time.Millisecond)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored entries = %d", restored.Len())
	}
	got, ok := restored.Lookup("q1", 7)
	if !ok || got.Rows[0]["x"].Value != "http://x/a" {
		t.Errorf("restored lookup = (%v, %v)", got, ok)
	}
	e, ok := restored.Entry("q2")
	if !ok || e.Runtime != 2*time.Second {
		t.Errorf("restored entry metadata = %+v", e)
	}
}

func TestRestoreInvalidatesOnGenerationMismatch(t *testing.T) {
	s := New(time.Millisecond)
	s.Record("q", res("a"), time.Second, 7)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(time.Millisecond)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// KB moved on while we were down: the restored entries must clear.
	if _, ok := restored.Lookup("q", 8); ok {
		t.Error("stale snapshot entry served after KB update")
	}
	if restored.Len() != 0 {
		t.Error("stale entries kept")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := New(time.Millisecond)
	if err := s.Restore(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := New(time.Millisecond)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(time.Millisecond)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Error("empty snapshot produced entries")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	// Mutating the live store after Snapshot must not corrupt the bytes
	// already produced, and restored entries must be independent copies.
	s := New(time.Millisecond)
	s.Record("q", res("a"), time.Second, 1)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Invalidate()
	restored := New(time.Millisecond)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Error("snapshot affected by later mutation")
	}
	// Hitting the restored store must not mutate the original.
	restored.Lookup("q", 1)
	if s.Len() != 0 {
		t.Error("restore aliased the original store")
	}
}

// TestRestoreRebuildsByteAccounting: restored entries regain their byte
// costs and LRU order, and a configured budget is enforced immediately.
func TestRestoreRebuildsByteAccounting(t *testing.T) {
	s := New(time.Millisecond)
	for _, q := range []string{"q1", "q2", "q3"} {
		s.Record(q, resN(q, 10), time.Second, 1)
	}
	wantBytes := s.Bytes()
	if wantBytes <= 0 {
		t.Fatal("source store has no byte accounting")
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(time.Millisecond)
	one := ResultBytes(resN("q1", 10))
	restored.MaxBytes = 2 * one // tighter than the snapshot's contents
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Errorf("restored entries = %d, want 2 (budget enforced)", restored.Len())
	}
	if restored.Bytes() > restored.MaxBytes {
		t.Errorf("restored bytes %d over budget %d", restored.Bytes(), restored.MaxBytes)
	}
	// The surviving entries keep working: a lookup hit refreshes recency
	// and further records evict in LRU order without drift.
	restored.Record("q4", resN("q4", 10), time.Second, 1)
	if restored.Bytes() > restored.MaxBytes {
		t.Errorf("post-restore record broke the budget: %d > %d", restored.Bytes(), restored.MaxBytes)
	}
}
