package hvs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

func res(v string) *sparql.Result {
	return &sparql.Result{
		Vars: []string{"x"},
		Rows: []sparql.Solution{{"x": rdf.NewIRI("http://x/" + v)}},
	}
}

func TestNormalize(t *testing.T) {
	a := Normalize("SELECT ?s  WHERE {\n  ?s ?p ?o .\n}")
	b := Normalize("SELECT ?s WHERE { ?s ?p ?o . }")
	if a != b {
		t.Errorf("normalization differs: %q vs %q", a, b)
	}
}

func TestThresholdGating(t *testing.T) {
	s := New(time.Second)
	if s.Record("q1", res("a"), 500*time.Millisecond, 1) {
		t.Error("sub-threshold query stored")
	}
	if s.Len() != 0 {
		t.Error("store should be empty")
	}
	if !s.Record("q1", res("a"), 2*time.Second, 1) {
		t.Error("heavy query not stored")
	}
	got, ok := s.Lookup("q1", 1)
	if !ok || got.Rows[0]["x"].Value != "http://x/a" {
		t.Errorf("Lookup = (%v, %v)", got, ok)
	}
}

func TestDefaultThreshold(t *testing.T) {
	if New(0).Threshold() != DefaultThreshold {
		t.Error("zero threshold should default to 1s")
	}
	if New(-5).Threshold() != DefaultThreshold {
		t.Error("negative threshold should default to 1s")
	}
	if New(10*time.Millisecond).Threshold() != 10*time.Millisecond {
		t.Error("explicit threshold ignored")
	}
}

func TestLookupNormalizesKeys(t *testing.T) {
	s := New(time.Millisecond)
	s.Record("SELECT ?s WHERE { ?s ?p ?o }", res("a"), time.Second, 1)
	if _, ok := s.Lookup("SELECT  ?s\nWHERE  { ?s ?p ?o }", 1); !ok {
		t.Error("whitespace variant missed the cache")
	}
}

func TestGenerationInvalidation(t *testing.T) {
	s := New(time.Millisecond)
	s.Record("q", res("a"), time.Second, 1)
	if _, ok := s.Lookup("q", 1); !ok {
		t.Fatal("warm lookup missed")
	}
	// KB update: generation moves, cache must clear.
	if _, ok := s.Lookup("q", 2); ok {
		t.Error("stale entry served after KB update")
	}
	st := s.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	if s.Len() != 0 {
		t.Errorf("entries after invalidation = %d", s.Len())
	}
}

func TestRecordAtNewGenerationClears(t *testing.T) {
	s := New(time.Millisecond)
	s.Record("q1", res("a"), time.Second, 1)
	s.Record("q2", res("b"), time.Second, 2) // generation moved
	if s.Len() != 1 {
		t.Errorf("entries = %d, want 1 (q1 invalidated)", s.Len())
	}
	if _, ok := s.Lookup("q1", 2); ok {
		t.Error("q1 should be gone")
	}
	if _, ok := s.Lookup("q2", 2); !ok {
		t.Error("q2 should survive")
	}
}

func TestExplicitInvalidate(t *testing.T) {
	s := New(time.Millisecond)
	s.Record("q", res("a"), time.Second, 1)
	s.Invalidate()
	if s.Len() != 0 {
		t.Error("Invalidate did not clear")
	}
	if _, ok := s.Lookup("q", 1); ok {
		t.Error("entry survived Invalidate")
	}
}

func TestStatsCounters(t *testing.T) {
	s := New(time.Millisecond)
	s.Lookup("missing", 1)
	s.Record("q", res("a"), time.Second, 1)
	s.Lookup("q", 1)
	s.Lookup("q", 1)
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	e, ok := s.Entry("q")
	if !ok || e.Hits != 2 || e.Runtime != time.Second {
		t.Errorf("entry = %+v, ok=%v", e, ok)
	}
}

func TestEviction(t *testing.T) {
	s := New(time.Millisecond)
	s.MaxEntries = 2
	s.Record("q1", res("a"), time.Second, 1)
	s.Record("q2", res("b"), time.Second, 1)
	s.Lookup("q1", 1) // q1 now hot
	s.Record("q3", res("c"), time.Second, 1)
	if s.Len() != 2 {
		t.Fatalf("entries = %d, want 2", s.Len())
	}
	if _, ok := s.Entry("q2"); ok {
		t.Error("coldest entry q2 should have been evicted")
	}
	if _, ok := s.Entry("q1"); !ok {
		t.Error("hot entry q1 evicted")
	}
	// Overwriting an existing key when full must not evict.
	s.Record("q1", res("a2"), time.Second, 1)
	if s.Len() != 2 {
		t.Errorf("overwrite changed size: %d", s.Len())
	}
}

// TestEvictionEmptyKey is the regression test for the "" sentinel bug: a
// whitespace-only query normalizes to the empty string, which is a
// legitimate cache key; when it is also the coldest entry, eviction must
// still happen, or the cache exceeds MaxEntries.
func TestEvictionEmptyKey(t *testing.T) {
	s := New(time.Millisecond)
	s.MaxEntries = 2
	s.Record("   ", res("empty"), time.Second, 1) // key normalizes to ""
	if _, ok := s.Entry(""); !ok {
		t.Fatal("whitespace-only query not cached under the empty key")
	}
	s.Record("q1", res("a"), time.Second, 1)
	s.Lookup("q1", 1) // "" is now the coldest entry
	s.Record("q2", res("b"), time.Second, 1)
	if s.Len() != 2 {
		t.Fatalf("entries = %d, want 2 (empty-key entry not evicted)", s.Len())
	}
	if _, ok := s.Entry(""); ok {
		t.Error("coldest entry (empty key) should have been evicted")
	}
	if _, ok := s.Entry("q2"); !ok {
		t.Error("new entry q2 missing")
	}
}

// TestConcurrentGenerationChurn exercises the documented contract between
// the store's generation counter and HVS invalidation: readers may Lookup
// and Record under any generation while the KB generation advances; the
// cache must never serve an entry recorded under a different generation
// than the lookup's. Every recorded result embeds the generation it was
// recorded under, so a hit can verify which generation produced it.
func TestConcurrentGenerationChurn(t *testing.T) {
	s := New(time.Millisecond)
	var gen uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				mu.Lock()
				if g == 0 && i%20 == 0 {
					gen++ // the writer: a KB update bumps the generation
				}
				cur := gen
				mu.Unlock()
				q := fmt.Sprintf("q%d", i%5)
				s.Record(q, res(fmt.Sprintf("%s@gen%d", q, cur)), time.Second, cur)
				if got, ok := s.Lookup(q, cur); ok {
					want := fmt.Sprintf("http://x/%s@gen%d", q, cur)
					if v := got.Rows[0]["x"].Value; v != want {
						t.Errorf("lookup under generation %d served %q", cur, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Invalidations == 0 {
		t.Error("generation churn caused no invalidations")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("q%d", i%10)
				s.Record(q, res(q), time.Second, 1)
				s.Lookup(q, 1)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 10 {
		t.Errorf("entries = %d, want 10", s.Len())
	}
}

func TestSetThreshold(t *testing.T) {
	s := New(time.Hour)
	if s.Record("q", res("a"), time.Second, 1) {
		t.Fatal("stored under 1h threshold")
	}
	s.SetThreshold(time.Millisecond)
	if s.Threshold() != time.Millisecond {
		t.Fatalf("threshold = %v", s.Threshold())
	}
	if !s.Record("q", res("a"), time.Second, 1) {
		t.Error("not stored after lowering threshold")
	}
	s.SetThreshold(0)
	if s.Threshold() != DefaultThreshold {
		t.Error("zero threshold should reset to default")
	}
}

// resN builds a result with n rows so byte costs are controllable.
func resN(v string, n int) *sparql.Result {
	r := &sparql.Result{Vars: []string{"x"}}
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, sparql.Solution{"x": rdf.NewIRI("http://x/" + v)})
	}
	return r
}

func TestResultBytes(t *testing.T) {
	small, big := ResultBytes(resN("a", 1)), ResultBytes(resN("a", 100))
	if small <= 0 {
		t.Fatalf("ResultBytes(small) = %d", small)
	}
	if big <= small*50 {
		t.Errorf("100-row cost %d not proportional to 1-row cost %d", big, small)
	}
	if ResultBytes(nil) != 0 {
		t.Error("nil result should cost 0")
	}
	if askCost := ResultBytes(&sparql.Result{Ask: true, AskTrue: true}); askCost <= 0 {
		t.Errorf("ASK cost = %d, want small positive", askCost)
	}
}

// TestByteBudgetLRUEviction is the satellite test: inserting past the
// budget evicts in LRU order, and a Lookup refreshes recency.
func TestByteBudgetLRUEviction(t *testing.T) {
	s := New(time.Millisecond)
	one := ResultBytes(resN("a", 10))
	s.MaxBytes = 2*one + one/2 // room for two entries, not three

	s.Record("q1", resN("a", 10), time.Second, 1)
	s.Record("q2", resN("b", 10), time.Second, 1)
	if _, ok := s.Lookup("q1", 1); !ok { // q1 is now the most recent
		t.Fatal("q1 missing before eviction")
	}
	s.Record("q3", resN("c", 10), time.Second, 1)

	if _, ok := s.Entry("q2"); ok {
		t.Error("q2 (least recently used) should have been evicted")
	}
	if _, ok := s.Entry("q1"); !ok {
		t.Error("q1 (recently used) evicted out of LRU order")
	}
	if _, ok := s.Entry("q3"); !ok {
		t.Error("q3 (just inserted) evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > s.MaxBytes || st.Bytes <= 0 {
		t.Errorf("bytes = %d, budget %d", st.Bytes, s.MaxBytes)
	}
}

// TestByteBudgetChainEviction: one large insert may evict several small
// entries at once.
func TestByteBudgetChainEviction(t *testing.T) {
	s := New(time.Millisecond)
	small := ResultBytes(resN("a", 5))
	s.MaxBytes = 4 * small
	for i := 0; i < 4; i++ {
		s.Record(fmt.Sprintf("q%d", i), resN("a", 5), time.Second, 1)
	}
	s.Record("big", resN("b", 15), time.Second, 1)
	if _, ok := s.Entry("big"); !ok {
		t.Fatal("big entry not stored")
	}
	if got := s.Bytes(); got > s.MaxBytes {
		t.Errorf("bytes = %d over budget %d", got, s.MaxBytes)
	}
	if st := s.Stats(); st.Evictions < 3 {
		t.Errorf("evictions = %d, want >= 3", st.Evictions)
	}
}

// TestByteBudgetGenerationStillWins: generation invalidation clears the
// whole cache regardless of recency or budget headroom.
func TestByteBudgetGenerationStillWins(t *testing.T) {
	s := New(time.Millisecond)
	s.MaxBytes = 1 << 20
	s.Record("q1", resN("a", 10), time.Second, 1)
	s.Record("q2", resN("b", 10), time.Second, 1)
	s.Lookup("q1", 1)
	if _, ok := s.Lookup("q1", 2); ok { // KB update
		t.Fatal("stale entry served after generation move")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Errorf("len=%d bytes=%d after invalidation, want 0/0", s.Len(), s.Bytes())
	}
	if st := s.Stats(); st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	// The cache keeps working at the new generation under the budget.
	s.Record("q3", resN("c", 10), time.Second, 2)
	if _, ok := s.Lookup("q3", 2); !ok {
		t.Error("cache dead after invalidation")
	}
}

// TestOversizedEntryNotStored: a single result larger than the whole
// budget is classified heavy but never cached.
func TestOversizedEntryNotStored(t *testing.T) {
	s := New(time.Millisecond)
	s.MaxBytes = 128
	if !s.Record("huge", resN("a", 1000), time.Second, 1) {
		t.Error("oversized result should still classify heavy")
	}
	if s.Len() != 0 {
		t.Errorf("oversized result stored: len=%d", s.Len())
	}
	if s.Bytes() != 0 {
		t.Errorf("bytes = %d, want 0", s.Bytes())
	}
}

// TestSetMaxBytesShrinks: lowering the budget evicts immediately.
func TestSetMaxBytesShrinks(t *testing.T) {
	s := New(time.Millisecond)
	for i := 0; i < 4; i++ {
		s.Record(fmt.Sprintf("q%d", i), resN("a", 10), time.Second, 1)
	}
	one := ResultBytes(resN("a", 10))
	s.SetMaxBytes(2 * one)
	if s.Len() != 2 {
		t.Errorf("len = %d after shrink, want 2", s.Len())
	}
	if s.Bytes() > 2*one {
		t.Errorf("bytes = %d over shrunk budget %d", s.Bytes(), 2*one)
	}
}

// TestByteBudgetConcurrent hammers the budgeted cache from many
// goroutines: the invariant is that accounting never drifts and the
// budget holds at every quiescent point.
func TestByteBudgetConcurrent(t *testing.T) {
	s := New(time.Millisecond)
	one := ResultBytes(resN("a", 10))
	s.MaxBytes = 3 * one
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("q%d", (g+i)%8)
				s.Record(q, resN("a", 10), time.Second, 1)
				s.Lookup(q, 1)
			}
		}(g)
	}
	wg.Wait()
	if got := s.Bytes(); got > s.MaxBytes {
		t.Errorf("bytes = %d over budget %d", got, s.MaxBytes)
	}
	if s.Len() > 3 {
		t.Errorf("len = %d, want <= 3", s.Len())
	}
}
