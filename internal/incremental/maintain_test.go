package incremental

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// The Maintain equivalence suite: after any sequence of live mutations,
// a maintained aggregator must be in exactly the state a fresh
// aggregator reaches by rescanning the post-mutation log. That is the
// contract that lets the chart layer consume deltas instead of
// rescanning on every write.

// scanAll feeds the store's current log to the aggregator.
func scanAll(st *store.Store, agg Aggregator) {
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		agg.Observe(e)
		return true
	})
}

// logTriples returns the current insertion-order log, decoded.
func logTriples(st *store.Store) []rdf.Triple {
	var out []rdf.Triple
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		out = append(out, st.Triple(e))
		return true
	})
	return out
}

// randomDelta builds a mutation mixing deletes of live triples with
// inserts of new type/property triples over the same entity pools.
func randomDelta(r *rand.Rand, st *store.Store) store.Delta {
	var d store.Delta
	live := logTriples(st)
	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0: // delete a live triple
			if len(live) > 0 {
				d.Delete(live[r.Intn(len(live))])
			}
		case 1: // insert a property triple
			d.Insert(rdf.Triple{
				S: ex(fmt.Sprintf("inst%d", r.Intn(40))),
				P: ex(fmt.Sprintf("p%d", r.Intn(4))),
				O: ex(fmt.Sprintf("obj%d", r.Intn(50))),
			})
		case 2: // insert a type triple
			d.Insert(rdf.Triple{
				S: ex(fmt.Sprintf("inst%d", r.Intn(40))),
				P: rdf.TypeIRI,
				O: ex(fmt.Sprintf("C%d", r.Intn(5))),
			})
		case 3: // delete then re-insert (re-log move)
			if len(live) > 0 {
				tr := live[r.Intn(len(live))]
				d.Delete(tr)
				d.Insert(tr)
			}
		}
	}
	return d
}

type aggFactory struct {
	name string
	make func() DeltaAggregator
}

// factories builds one factory per aggregator kind over the loaded
// graph's instance pool.
func factories(t *testing.T, st *store.Store) []aggFactory {
	t.Helper()
	typeID := st.TypeID()
	root := id(t, st, "Root")
	instances := st.SubjectsOfType(root)
	if len(instances) == 0 {
		t.Fatal("fixture has no Root instances")
	}
	var subclasses []rdf.ID
	for i := 0; i < 5; i++ {
		subclasses = append(subclasses, id(t, st, fmt.Sprintf("C%d", i)))
	}
	p0 := id(t, st, "p0")
	return []aggFactory{
		{"subclass", func() DeltaAggregator {
			return NewSubclassAggregator(typeID, instances, subclasses)
		}},
		{"property-out", func() DeltaAggregator {
			return NewPropertyAggregator(instances, false)
		}},
		{"property-in", func() DeltaAggregator {
			return NewPropertyAggregator(instances, true)
		}},
		{"object-out", func() DeltaAggregator {
			return NewObjectAggregator(typeID, p0, instances, false)
		}},
		{"object-in", func() DeltaAggregator {
			return NewObjectAggregator(typeID, p0, instances, true)
		}},
	}
}

// assertAggEqual compares the full observable state of two aggregators
// of the same kind.
func assertAggEqual(t *testing.T, desc string, got, want DeltaAggregator) {
	t.Helper()
	if !reflect.DeepEqual(countsOf(got), countsOf(want)) {
		t.Fatalf("%s: counts diverged:\n maintained %v\n rescan     %v", desc, countsOf(got), countsOf(want))
	}
	gp, gok := got.(*PropertyAggregator)
	wp, wok := want.(*PropertyAggregator)
	if gok && wok && !reflect.DeepEqual(gp.TripleCounts(), wp.TripleCounts()) {
		t.Fatalf("%s: triple counts diverged:\n maintained %v\n rescan     %v", desc, gp.TripleCounts(), wp.TripleCounts())
	}
}

func countsOf(a DeltaAggregator) map[rdf.ID]int {
	switch v := a.(type) {
	case *SubclassAggregator:
		return v.Counts()
	case *PropertyAggregator:
		return v.Counts()
	case *ObjectAggregator:
		return v.Counts()
	}
	return nil
}

// TestMaintainEqualsRescan is the differential run: for every
// aggregator kind, a maintained instance tracks a mutating store
// through many random deltas and must match a fresh rescan after every
// one of them.
func TestMaintainEqualsRescan(t *testing.T) {
	deltas := 20
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		deltas, seeds = 8, seeds[:1]
	}
	for _, seed := range seeds {
		st, r := buildGraph(t, seed, 40)
		for _, f := range factories(t, st) {
			maintained := f.make()
			scanAll(st, maintained)
			for d := 0; d < deltas; d++ {
				res, err := st.Apply(randomDelta(r, st))
				if err != nil {
					t.Fatalf("seed %d %s delta %d: %v", seed, f.name, d, err)
				}
				Maintain(maintained, res)
				fresh := f.make()
				scanAll(st, fresh)
				assertAggEqual(t, fmt.Sprintf("seed %d %s delta %d", seed, f.name, d), maintained, fresh)
			}
			// Mutating one aggregator's store mutated them all; rebuild
			// for the next factory so each starts from a known graph.
			st, r = buildGraph(t, seed, 40)
		}
	}
}

// TestMaintainTargetedRetractions pins the support-count edge cases
// directly: retracting one of two supporting triples must not drop a
// pair, retracting both must.
func TestMaintainTargetedRetractions(t *testing.T) {
	st := store.New(16)
	inst, other := ex("i1"), ex("o1")
	class := ex("C0")
	mustAdd := func(tr rdf.Triple) {
		t.Helper()
		if _, err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(rdf.Triple{S: inst, P: rdf.TypeIRI, O: class})
	mustAdd(rdf.Triple{S: other, P: rdf.TypeIRI, O: class})
	// Two distinct p0 links connect inst to other.
	mustAdd(rdf.Triple{S: inst, P: ex("p0"), O: other})
	mustAdd(rdf.Triple{S: other, P: ex("p0"), O: inst})

	typeID := st.TypeID()
	instID, _ := st.Dict().Lookup(inst)
	p0 := id(t, st, "p0")
	agg := NewObjectAggregator(typeID, p0, []rdf.ID{instID}, false)
	scanAll(st, agg)

	apply := func(d store.Delta) {
		t.Helper()
		res, err := st.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		Maintain(agg, res)
	}

	// Retract one of the two connecting triples: other stays connected
	// (outgoing aggregator keeps the inst→other link).
	var d1 store.Delta
	d1.Delete(rdf.Triple{S: other, P: ex("p0"), O: inst})
	apply(d1)
	fresh := NewObjectAggregator(typeID, p0, []rdf.ID{instID}, false)
	scanAll(st, fresh)
	assertAggEqual(t, "after first retraction", agg, fresh)

	// Retract the second: the connection (and its class count) must go.
	var d2 store.Delta
	d2.Delete(rdf.Triple{S: inst, P: ex("p0"), O: other})
	apply(d2)
	fresh = NewObjectAggregator(typeID, p0, []rdf.ID{instID}, false)
	scanAll(st, fresh)
	assertAggEqual(t, "after second retraction", agg, fresh)
	if len(agg.Counts()) != 0 {
		t.Fatalf("counts after full disconnect = %v", agg.Counts())
	}
}
