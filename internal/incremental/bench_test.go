package incremental

import (
	"context"
	"testing"
)

func BenchmarkChunkedScan(b *testing.B) {
	st, _ := buildGraphB(b, 77, 5000)
	for _, chunk := range []int{1000, 10000, 100000} {
		b.Run(sizeName(chunk), func(b *testing.B) {
			ev := New(st, Config{ChunkSize: chunk})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg := NewPropertyAggregator(nil, false)
				if _, err := ev.Run(context.Background(), agg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 100000:
		return "N=100k"
	case n >= 10000:
		return "N=10k"
	default:
		return "N=1k"
	}
}
