package incremental

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"elinda/internal/endpoint"
	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// TestRemoteMatchesLocal: paging the same graph over HTTP must converge
// to the same counts as the local chunked evaluator.
func TestRemoteMatchesLocal(t *testing.T) {
	st, _ := buildGraph(t, 11, 150)
	srv := httptest.NewServer(endpoint.NewServer(sparql.NewEngine(st)))
	defer srv.Close()

	// Local baseline.
	local := NewPropertyAggregator(nil, false)
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool { local.Observe(e); return true })
	want := decode(t, st.Dict(), local.Counts())

	rev := NewRemote(endpoint.NewClient(srv.URL), nil, Config{ChunkSize: 97})
	agg := NewPropertyAggregator(nil, false)
	final, err := rev.Run(context.Background(), agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Complete {
		t.Error("remote run incomplete")
	}
	got := decode(t, rev.Dict(), final.Counts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("remote counts differ:\n got %v\nwant %v", got, want)
	}
	if final.TriplesSeen != st.Len() {
		t.Errorf("seen = %d, want %d", final.TriplesSeen, st.Len())
	}
}

func decode(t *testing.T, d *rdf.Dict, counts map[rdf.ID]int) map[string]int {
	t.Helper()
	out := map[string]int{}
	for id, n := range counts {
		term, ok := d.TermOK(id)
		if !ok {
			t.Fatalf("undecodable ID %d", id)
		}
		out[term.Value] = n
	}
	return out
}

func TestRemoteMaxRounds(t *testing.T) {
	st, _ := buildGraph(t, 12, 100)
	srv := httptest.NewServer(endpoint.NewServer(sparql.NewEngine(st)))
	defer srv.Close()
	rev := NewRemote(endpoint.NewClient(srv.URL), nil, Config{ChunkSize: 10, MaxRounds: 2})
	final, err := rev.Run(context.Background(), NewPropertyAggregator(nil, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != 2 || final.TriplesSeen != 20 {
		t.Errorf("snapshot = %+v", final)
	}
}

func TestRemoteEndpointFailure(t *testing.T) {
	boom := endpoint.ExecutorFunc(func(ctx context.Context, src string) (*sparql.Result, error) {
		return nil, errors.New("connection refused")
	})
	rev := NewRemote(boom, nil, Config{ChunkSize: 10})
	if _, err := rev.Run(context.Background(), NewPropertyAggregator(nil, false), nil); err == nil {
		t.Error("endpoint failure swallowed")
	}
}

func TestRemoteCancellation(t *testing.T) {
	st, _ := buildGraph(t, 13, 50)
	rev := NewRemote(sparql.NewEngine(st), nil, Config{ChunkSize: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rev.Run(ctx, NewPropertyAggregator(nil, false), nil); err == nil {
		t.Error("cancelled remote run should error")
	}
}

func TestRemoteCallbackStops(t *testing.T) {
	st, _ := buildGraph(t, 14, 100)
	rev := NewRemote(sparql.NewEngine(st), nil, Config{ChunkSize: 10})
	final, err := rev.Run(context.Background(), NewPropertyAggregator(nil, false), func(s Snapshot) bool {
		return s.Round < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != 3 {
		t.Errorf("stopped at round %d", final.Round)
	}
}

func TestRemoteSkipsMalformedRows(t *testing.T) {
	// An endpoint returning rows with missing bindings must not crash the
	// aggregation.
	weird := endpoint.ExecutorFunc(func(ctx context.Context, src string) (*sparql.Result, error) {
		return &sparql.Result{
			Vars: []string{"s", "p", "o"},
			Rows: []sparql.Solution{
				{"s": rdf.NewIRI("http://x/s")}, // missing p, o
				{"s": rdf.NewIRI("http://x/s"), "p": rdf.NewIRI("http://x/p"), "o": rdf.NewIRI("http://x/o")},
			},
		}, nil
	})
	rev := NewRemote(weird, nil, Config{ChunkSize: 10})
	agg := NewPropertyAggregator(nil, false)
	final, err := rev.Run(context.Background(), agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Counts) != 1 {
		t.Errorf("counts = %v", final.Counts)
	}
}
