// Package incremental implements eLinda's incremental evaluation
// (Section 4): "eLinda builds the chart of an expansion by computing it on
// the first N triples in the RDF graph. It then continues to compute the
// query on the next N triples and aggregates the results in the frontend.
// It continues for k steps, or until the full chart is computed. In the
// current implementation, the parameters N and k are determined by an
// administrator's configuration."
//
// The evaluator scans the store's triple log in chunks of N, feeds each
// chunk to a chart Aggregator, and emits a partial snapshot after every
// round — the frontend-side aggregation that gives "effective latency for
// user interaction". It works against any triple source that supports
// offset scans, which is why it also functions in the remote compatibility
// mode (a remote endpoint can serve OFFSET/LIMIT windows).
package incremental

import (
	"context"
	"fmt"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// Config carries the administrator-set parameters.
type Config struct {
	// ChunkSize is N, the number of triples per round. Values <= 0 default
	// to DefaultChunkSize.
	ChunkSize int
	// MaxRounds is k, the number of rounds before the evaluator stops even
	// if the scan is incomplete. 0 means scan to completion.
	MaxRounds int
}

// DefaultChunkSize is the default N.
const DefaultChunkSize = 100_000

// Aggregator consumes triples and maintains partial chart counts. The
// concrete aggregators below mirror the three expansions of Section 2.
type Aggregator interface {
	// Observe processes one triple from the scan.
	Observe(e rdf.EncodedTriple)
	// Counts returns the current per-label counts. The returned map is a
	// snapshot; the aggregator keeps ownership of its internal state.
	Counts() map[rdf.ID]int
}

// Snapshot is the state published after each round.
type Snapshot struct {
	// Round is the 1-based round number.
	Round int
	// TriplesSeen is the total number of triples scanned so far.
	TriplesSeen int
	// Counts maps chart labels to their partial counts.
	Counts map[rdf.ID]int
	// Complete reports whether the full log has been scanned.
	Complete bool
}

// Evaluator runs chunked scans over a store.
type Evaluator struct {
	st  *store.Store
	cfg Config
}

// New returns an evaluator with the given configuration.
func New(st *store.Store, cfg Config) *Evaluator {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	return &Evaluator{st: st, cfg: cfg}
}

// Run scans the store in chunks, feeding agg. After each round it calls
// onRound with a snapshot; returning false stops the evaluation early.
// The final snapshot is returned. Run honors ctx cancellation between
// rounds.
func (ev *Evaluator) Run(ctx context.Context, agg Aggregator, onRound func(Snapshot) bool) (Snapshot, error) {
	offset := 0
	round := 0
	for {
		if err := ctx.Err(); err != nil {
			return Snapshot{}, fmt.Errorf("incremental: %w", err)
		}
		n := ev.st.Scan(offset, ev.cfg.ChunkSize, func(e rdf.EncodedTriple) bool {
			agg.Observe(e)
			return true
		})
		offset += n
		round++
		snap := Snapshot{
			Round:       round,
			TriplesSeen: offset,
			Counts:      agg.Counts(),
			Complete:    n < ev.cfg.ChunkSize,
		}
		if n == 0 {
			snap.Complete = true
		}
		stop := snap.Complete ||
			(ev.cfg.MaxRounds > 0 && round >= ev.cfg.MaxRounds)
		if onRound != nil && !onRound(snap) {
			return snap, nil
		}
		if stop {
			return snap, nil
		}
	}
}

// --- Concrete aggregators for the three expansions of Section 2 ---

// SubclassAggregator counts, for each direct subclass τ of the expanded
// bar's class, the members of the bar's URI set S that are of class τ.
type SubclassAggregator struct {
	typeID rdf.ID
	// s is the bar's URI set; nil means "all subjects" (the initial pane).
	s map[rdf.ID]struct{}
	// subclasses is the label set of the produced chart.
	subclasses map[rdf.ID]struct{}
	// seen deduplicates (subject, class) pairs across chunks.
	seen   map[[2]rdf.ID]struct{}
	counts map[rdf.ID]int
}

// NewSubclassAggregator builds an aggregator over the URI set s (nil = all
// subjects) for the given candidate subclasses.
func NewSubclassAggregator(typeID rdf.ID, s []rdf.ID, subclasses []rdf.ID) *SubclassAggregator {
	a := &SubclassAggregator{
		typeID:     typeID,
		subclasses: idSet(subclasses),
		seen:       make(map[[2]rdf.ID]struct{}),
		counts:     make(map[rdf.ID]int),
	}
	if s != nil {
		a.s = idSet(s)
	}
	return a
}

// Observe implements Aggregator.
func (a *SubclassAggregator) Observe(e rdf.EncodedTriple) {
	if e.P != a.typeID {
		return
	}
	if _, want := a.subclasses[e.O]; !want {
		return
	}
	if a.s != nil {
		if _, in := a.s[e.S]; !in {
			return
		}
	}
	key := [2]rdf.ID{e.S, e.O}
	if _, dup := a.seen[key]; dup {
		return
	}
	a.seen[key] = struct{}{}
	a.counts[e.O]++
}

// Counts implements Aggregator.
func (a *SubclassAggregator) Counts() map[rdf.ID]int { return copyCounts(a.counts) }

// PropertyAggregator counts, per property, the distinct members of S that
// feature the property (outgoing) or are targeted by it (incoming) — the
// coverage numerator of the property chart.
type PropertyAggregator struct {
	s        map[rdf.ID]struct{}
	incoming bool
	seen     map[[2]rdf.ID]struct{}
	counts   map[rdf.ID]int
	triples  map[rdf.ID]int
}

// NewPropertyAggregator builds a property-chart aggregator over the URI
// set s (nil = all subjects).
func NewPropertyAggregator(s []rdf.ID, incoming bool) *PropertyAggregator {
	a := &PropertyAggregator{
		incoming: incoming,
		seen:     make(map[[2]rdf.ID]struct{}),
		counts:   make(map[rdf.ID]int),
		triples:  make(map[rdf.ID]int),
	}
	if s != nil {
		a.s = idSet(s)
	}
	return a
}

// Observe implements Aggregator.
func (a *PropertyAggregator) Observe(e rdf.EncodedTriple) {
	anchor := e.S
	if a.incoming {
		anchor = e.O
	}
	if a.s != nil {
		if _, in := a.s[anchor]; !in {
			return
		}
	}
	a.triples[e.P]++
	key := [2]rdf.ID{anchor, e.P}
	if _, dup := a.seen[key]; dup {
		return
	}
	a.seen[key] = struct{}{}
	a.counts[e.P]++
}

// Counts implements Aggregator.
func (a *PropertyAggregator) Counts() map[rdf.ID]int { return copyCounts(a.counts) }

// TripleCounts returns the per-property triple totals (the SUM(?sp) of the
// paper's query).
func (a *PropertyAggregator) TripleCounts() map[rdf.ID]int { return copyCounts(a.triples) }

// ObjectAggregator implements the object expansion: for a fixed property
// λ and subject set S, it counts objects o of each class τ with
// (s, λ, o), s ∈ S. It needs two passes worth of state because the
// object's class assertion may arrive before or after the connecting
// triple; both orders are handled by keeping candidate sets.
type ObjectAggregator struct {
	typeID   rdf.ID
	property rdf.ID
	s        map[rdf.ID]struct{}
	incoming bool

	// connected holds objects seen via (s, λ, o) with s ∈ S.
	connected map[rdf.ID]struct{}
	// classOf accumulates type assertions for all nodes seen so far.
	classOf map[rdf.ID][]rdf.ID
	// counted deduplicates (object, class) pairs.
	counted map[[2]rdf.ID]struct{}
	counts  map[rdf.ID]int
}

// NewObjectAggregator builds an object-chart aggregator for property over
// the URI set s. incoming selects the inverse direction (objects that
// point INTO s via the property).
func NewObjectAggregator(typeID, property rdf.ID, s []rdf.ID, incoming bool) *ObjectAggregator {
	return &ObjectAggregator{
		typeID:    typeID,
		property:  property,
		s:         idSet(s),
		incoming:  incoming,
		connected: make(map[rdf.ID]struct{}),
		classOf:   make(map[rdf.ID][]rdf.ID),
		counted:   make(map[[2]rdf.ID]struct{}),
		counts:    make(map[rdf.ID]int),
	}
}

// Observe implements Aggregator.
func (a *ObjectAggregator) Observe(e rdf.EncodedTriple) {
	if e.P == a.typeID {
		a.classOf[e.S] = append(a.classOf[e.S], e.O)
		if _, conn := a.connected[e.S]; conn {
			a.count(e.S, e.O)
		}
		return
	}
	if e.P != a.property {
		return
	}
	anchor, other := e.S, e.O
	if a.incoming {
		anchor, other = e.O, e.S
	}
	if _, in := a.s[anchor]; !in {
		return
	}
	if _, dup := a.connected[other]; !dup {
		a.connected[other] = struct{}{}
		for _, c := range a.classOf[other] {
			a.count(other, c)
		}
	}
}

func (a *ObjectAggregator) count(obj, class rdf.ID) {
	key := [2]rdf.ID{obj, class}
	if _, dup := a.counted[key]; dup {
		return
	}
	a.counted[key] = struct{}{}
	a.counts[class]++
}

// Counts implements Aggregator.
func (a *ObjectAggregator) Counts() map[rdf.ID]int { return copyCounts(a.counts) }

// ConnectedObjects returns the set Osp of objects connected to S via the
// property, for continuing the exploration on the narrowed set.
func (a *ObjectAggregator) ConnectedObjects() []rdf.ID {
	out := make([]rdf.ID, 0, len(a.connected))
	for o := range a.connected {
		out = append(out, o)
	}
	return out
}

func idSet(ids []rdf.ID) map[rdf.ID]struct{} {
	m := make(map[rdf.ID]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return m
}

func copyCounts(in map[rdf.ID]int) map[rdf.ID]int {
	out := make(map[rdf.ID]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
