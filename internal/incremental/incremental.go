// Package incremental implements eLinda's incremental evaluation
// (Section 4): "eLinda builds the chart of an expansion by computing it on
// the first N triples in the RDF graph. It then continues to compute the
// query on the next N triples and aggregates the results in the frontend.
// It continues for k steps, or until the full chart is computed. In the
// current implementation, the parameters N and k are determined by an
// administrator's configuration."
//
// The evaluator scans the store's triple log in chunks of N, feeds each
// chunk to a chart Aggregator, and emits a partial snapshot after every
// round — the frontend-side aggregation that gives "effective latency for
// user interaction". It works against any triple source that supports
// offset scans, which is why it also functions in the remote compatibility
// mode (a remote endpoint can serve OFFSET/LIMIT windows).
//
// When Config.Workers > 1 each round's chunk is partitioned into
// contiguous shards scanned concurrently, one fresh aggregator clone per
// shard; the clones are merged into the round aggregator in shard order.
// All three chart aggregators have order-independent counting state
// (deduplicating pair sets, and for the object expansion the
// connected/classOf candidate sets that already tolerate either arrival
// order of a link and its type assertion), which is what makes the merge
// exact: a merged round is indistinguishable from a sequential scan of
// the same chunk.
package incremental

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// Config carries the administrator-set parameters.
type Config struct {
	// ChunkSize is N, the number of triples per round. Values <= 0 default
	// to DefaultChunkSize.
	ChunkSize int
	// MaxRounds is k, the number of rounds before the evaluator stops even
	// if the scan is incomplete. 0 means scan to completion.
	MaxRounds int
	// Workers is P, the number of goroutines scanning each round's chunk.
	// Each worker aggregates one contiguous shard of the chunk into a
	// fresh clone of the round aggregator; the clones are merged in shard
	// order once the round's scan completes. Values <= 1 select the
	// sequential path, whose snapshot sequence is identical to the
	// pre-parallel evaluator.
	Workers int
}

// DefaultChunkSize is the default N.
const DefaultChunkSize = 100_000

// Aggregator consumes triples and maintains partial chart counts. The
// concrete aggregators below mirror the three expansions of Section 2.
type Aggregator interface {
	// Observe processes one triple from the scan.
	Observe(e rdf.EncodedTriple)
	// Counts returns the current per-label counts. The returned map is a
	// snapshot; the aggregator keeps ownership of its internal state.
	Counts() map[rdf.ID]int
	// CloneEmpty returns a fresh aggregator with the receiver's
	// configuration (query parameters, candidate sets) but empty counting
	// state, for use as a shard worker. Configuration must be shared
	// strictly read-only: clones and the parent may all observe triples
	// concurrently with one another (the evaluator scans one shard with
	// the parent itself).
	CloneEmpty() Aggregator
	// Merge folds the counting state of other — which must be a clone of
	// the receiver observing the same configuration — into the receiver.
	// Double counting is impossible: merged state deduplicates against
	// what the receiver has already seen. An empty receiver may adopt
	// other's state wholesale, so other must not be observed again after
	// the merge. Merging an aggregator of a different concrete type or
	// configuration panics.
	Merge(other Aggregator)
}

// DeltaAggregator is an Aggregator that can additionally retract a
// triple, enabling exact chart maintenance under the live mutation path
// (store.Store.Apply) without rescanning the log. All three concrete
// aggregators implement it.
type DeltaAggregator interface {
	Aggregator
	// Unobserve retracts one triple previously observed. The triple must
	// actually have been observed (the store's net-delta contract: a
	// NetDelete was present in the log the aggregator scanned); retracting
	// a never-observed triple corrupts the counts.
	Unobserve(e rdf.EncodedTriple)
}

// Maintain applies a mutation's net effect to an aggregator that has
// already scanned the pre-mutation log: retractions first, then
// insertions. The result is exactly the state a fresh aggregator reaches
// by scanning the post-mutation log — the maintained aggregator never
// needs a rescan.
func Maintain(agg DeltaAggregator, res store.ApplyResult) {
	for _, e := range res.NetDeletes {
		agg.Unobserve(e)
	}
	for _, e := range res.NetInserts {
		agg.Observe(e)
	}
}

// Snapshot is the state published after each round.
type Snapshot struct {
	// Round is the 1-based round number.
	Round int
	// TriplesSeen is the total number of triples scanned so far.
	TriplesSeen int
	// Counts maps chart labels to their partial counts.
	Counts map[rdf.ID]int
	// Complete reports whether the full log has been scanned.
	Complete bool
}

// Evaluator runs chunked scans over a store.
type Evaluator struct {
	st  *store.Store
	cfg Config
}

// New returns an evaluator with the given configuration.
func New(st *store.Store, cfg Config) *Evaluator {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	return &Evaluator{st: st, cfg: cfg}
}

// Run scans the store in chunks, feeding agg. After each round it calls
// onRound with a snapshot; returning false stops the evaluation early.
// The final snapshot is returned. Run honors ctx cancellation between
// rounds.
//
// Completeness is judged by the scan position against the log length, not
// by a short round: a log whose length is an exact multiple of ChunkSize
// completes on its last full round instead of burning an extra empty one.
func (ev *Evaluator) Run(ctx context.Context, agg Aggregator, onRound func(Snapshot) bool) (Snapshot, error) {
	offset := 0
	round := 0
	for {
		if err := ctx.Err(); err != nil {
			return Snapshot{}, fmt.Errorf("incremental: %w", err)
		}
		// Each round binds one immutable store snapshot: the window is
		// frozen up front, shards scan it lock-free, and completeness is
		// judged against exactly the state the round observed.
		view := ev.st.Snapshot()
		offset += ev.scanRound(view, agg, offset)
		round++
		snap := Snapshot{
			Round:       round,
			TriplesSeen: offset,
			Counts:      agg.Counts(),
			Complete:    offset >= view.Len(),
		}
		stop := snap.Complete ||
			(ev.cfg.MaxRounds > 0 && round >= ev.cfg.MaxRounds)
		if onRound != nil && !onRound(snap) {
			return snap, nil
		}
		if stop {
			return snap, nil
		}
	}
}

// scanRound feeds one chunk of the bound snapshot starting at offset to
// agg and returns the number of triples scanned. With Workers <= 1 it is
// a single sequential Scan; otherwise the snapshot's window is
// partitioned into contiguous shards scanned by one goroutine each — the
// first directly into agg, the rest into fresh clones that are then
// folded into agg. The snapshot is immutable, so concurrent store writes
// can neither move triples inside the window nor open holes between
// shards.
func (ev *Evaluator) scanRound(view *store.Snapshot, agg Aggregator, offset int) int {
	if ev.cfg.Workers <= 1 {
		return view.Scan(offset, ev.cfg.ChunkSize, func(e rdf.EncodedTriple) bool {
			agg.Observe(e)
			return true
		})
	}
	avail := view.Len() - offset
	if avail > ev.cfg.ChunkSize {
		avail = ev.cfg.ChunkSize
	}
	if avail <= 0 {
		return 0
	}
	workers := ev.cfg.Workers
	if workers > avail {
		workers = avail
	}
	shard := (avail + workers - 1) / workers
	clones := make([]Aggregator, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		start := offset + i*shard
		limit := shard
		if rest := avail - i*shard; rest < limit {
			limit = rest
		}
		if limit <= 0 {
			break
		}
		// Shard 0 observes directly into agg — nobody else touches agg
		// during the scan phase, and deduplicating against the
		// accumulated state once is cheaper than a clone insert plus a
		// merge re-insert.
		c := agg
		if i > 0 {
			c = agg.CloneEmpty()
		}
		clones[i] = c
		wg.Add(1)
		go func(start, limit int, c Aggregator) {
			defer wg.Done()
			view.Scan(start, limit, func(e rdf.EncodedTriple) bool {
				c.Observe(e)
				return true
			})
		}(start, limit, c)
	}
	wg.Wait()
	live := make([]Aggregator, 0, len(clones)-1)
	for _, c := range clones[1:] {
		if c != nil {
			live = append(live, c)
		}
	}
	// Fold the clones as a pairwise tree — each level merges
	// concurrently, so the sequential tail is one merge plus the fold
	// into agg. Merge order cannot affect the result: all counting state
	// is order-independent.
	for len(live) > 1 {
		half := (len(live) + 1) / 2
		var mg sync.WaitGroup
		for i := 0; i+half < len(live); i++ {
			mg.Add(1)
			go func(dst, src Aggregator) {
				defer mg.Done()
				dst.Merge(src)
			}(live[i], live[i+half])
		}
		mg.Wait()
		live = live[:half]
	}
	if len(live) == 1 {
		agg.Merge(live[0])
	}
	return avail
}

// --- Concrete aggregators for the three expansions of Section 2 ---

// SubclassAggregator counts, for each direct subclass τ of the expanded
// bar's class, the members of the bar's URI set S that are of class τ.
type SubclassAggregator struct {
	typeID rdf.ID
	// s is the bar's URI set; nil means "all subjects" (the initial pane).
	s map[rdf.ID]struct{}
	// subclasses is the label set of the produced chart.
	subclasses map[rdf.ID]struct{}
	// seen deduplicates (subject, class) pairs across chunks.
	seen   map[[2]rdf.ID]struct{}
	counts map[rdf.ID]int
}

// NewSubclassAggregator builds an aggregator over the URI set s (nil = all
// subjects) for the given candidate subclasses.
func NewSubclassAggregator(typeID rdf.ID, s []rdf.ID, subclasses []rdf.ID) *SubclassAggregator {
	a := &SubclassAggregator{
		typeID:     typeID,
		subclasses: idSet(subclasses),
		seen:       make(map[[2]rdf.ID]struct{}),
		counts:     make(map[rdf.ID]int),
	}
	if s != nil {
		a.s = idSet(s)
	}
	return a
}

// Observe implements Aggregator.
func (a *SubclassAggregator) Observe(e rdf.EncodedTriple) {
	if e.P != a.typeID {
		return
	}
	if _, want := a.subclasses[e.O]; !want {
		return
	}
	if a.s != nil {
		if _, in := a.s[e.S]; !in {
			return
		}
	}
	key := [2]rdf.ID{e.S, e.O}
	if _, dup := a.seen[key]; dup {
		return
	}
	a.seen[key] = struct{}{}
	a.counts[e.O]++
}

// Unobserve implements DeltaAggregator: a type assertion maps one-to-one
// to its (subject, class) pair — the store holds each triple at most once
// — so retraction deletes the pair and decrements the class count.
func (a *SubclassAggregator) Unobserve(e rdf.EncodedTriple) {
	if e.P != a.typeID {
		return
	}
	key := [2]rdf.ID{e.S, e.O}
	if _, ok := a.seen[key]; !ok {
		return
	}
	delete(a.seen, key)
	if a.counts[e.O]--; a.counts[e.O] == 0 {
		delete(a.counts, e.O)
	}
}

// Counts implements Aggregator.
func (a *SubclassAggregator) Counts() map[rdf.ID]int { return copyCounts(a.counts) }

// CloneEmpty implements Aggregator: the clone shares the read-only typeID,
// URI set, and subclass label set, with fresh counting state.
func (a *SubclassAggregator) CloneEmpty() Aggregator {
	return &SubclassAggregator{
		typeID:     a.typeID,
		s:          a.s,
		subclasses: a.subclasses,
		seen:       make(map[[2]rdf.ID]struct{}),
		counts:     make(map[rdf.ID]int),
	}
}

// Merge implements Aggregator: the union of the deduplicating
// (subject, class) pair sets determines the merged counts.
func (a *SubclassAggregator) Merge(other Aggregator) {
	b := other.(*SubclassAggregator)
	if len(a.seen) == 0 {
		a.seen, a.counts = b.seen, b.counts
		return
	}
	for key := range b.seen {
		if _, dup := a.seen[key]; dup {
			continue
		}
		a.seen[key] = struct{}{}
		a.counts[key[1]]++
	}
}

// PropertyAggregator counts, per property, the distinct members of S that
// feature the property (outgoing) or are targeted by it (incoming) — the
// coverage numerator of the property chart.
//
// seen holds support counts — how many scanned triples back each
// (anchor, property) pair — rather than a plain dedup set: retracting one
// of several supporting triples must not drop the pair, so exact delta
// maintenance (Unobserve) needs the multiplicity.
type PropertyAggregator struct {
	s        map[rdf.ID]struct{}
	incoming bool
	seen     map[[2]rdf.ID]int
	counts   map[rdf.ID]int
	triples  map[rdf.ID]int
}

// NewPropertyAggregator builds a property-chart aggregator over the URI
// set s (nil = all subjects).
func NewPropertyAggregator(s []rdf.ID, incoming bool) *PropertyAggregator {
	a := &PropertyAggregator{
		incoming: incoming,
		seen:     make(map[[2]rdf.ID]int),
		counts:   make(map[rdf.ID]int),
		triples:  make(map[rdf.ID]int),
	}
	if s != nil {
		a.s = idSet(s)
	}
	return a
}

// Observe implements Aggregator.
func (a *PropertyAggregator) Observe(e rdf.EncodedTriple) {
	anchor := e.S
	if a.incoming {
		anchor = e.O
	}
	if a.s != nil {
		if _, in := a.s[anchor]; !in {
			return
		}
	}
	a.triples[e.P]++
	key := [2]rdf.ID{anchor, e.P}
	if a.seen[key]++; a.seen[key] == 1 {
		a.counts[e.P]++
	}
}

// Unobserve implements DeltaAggregator: the pair's support count drops by
// one, and the property loses the anchor only when no supporting triple
// remains.
func (a *PropertyAggregator) Unobserve(e rdf.EncodedTriple) {
	anchor := e.S
	if a.incoming {
		anchor = e.O
	}
	if a.s != nil {
		if _, in := a.s[anchor]; !in {
			return
		}
	}
	if a.triples[e.P]--; a.triples[e.P] == 0 {
		delete(a.triples, e.P)
	}
	key := [2]rdf.ID{anchor, e.P}
	if a.seen[key]--; a.seen[key] == 0 {
		delete(a.seen, key)
		if a.counts[e.P]--; a.counts[e.P] == 0 {
			delete(a.counts, e.P)
		}
	}
}

// Counts implements Aggregator.
func (a *PropertyAggregator) Counts() map[rdf.ID]int { return copyCounts(a.counts) }

// TripleCounts returns the per-property triple totals (the SUM(?sp) of the
// paper's query).
func (a *PropertyAggregator) TripleCounts() map[rdf.ID]int { return copyCounts(a.triples) }

// CloneEmpty implements Aggregator: the clone shares the read-only URI set
// and direction, with fresh counting state.
func (a *PropertyAggregator) CloneEmpty() Aggregator {
	return &PropertyAggregator{
		s:        a.s,
		incoming: a.incoming,
		seen:     make(map[[2]rdf.ID]int),
		counts:   make(map[rdf.ID]int),
		triples:  make(map[rdf.ID]int),
	}
}

// Merge implements Aggregator: per-property triple totals and pair
// support counts add (shards scan disjoint triples), while a property
// gains an anchor only when the pair is new to the receiver.
func (a *PropertyAggregator) Merge(other Aggregator) {
	b := other.(*PropertyAggregator)
	if len(a.seen) == 0 && len(a.triples) == 0 {
		a.seen, a.counts, a.triples = b.seen, b.counts, b.triples
		return
	}
	for p, n := range b.triples {
		a.triples[p] += n
	}
	for key, n := range b.seen {
		if a.seen[key] == 0 {
			a.counts[key[1]]++
		}
		a.seen[key] += n
	}
}

// ObjectAggregator implements the object expansion: for a fixed property
// λ and subject set S, it counts objects o of each class τ with
// (s, λ, o), s ∈ S. It needs two passes worth of state because the
// object's class assertion may arrive before or after the connecting
// triple; both orders are handled by keeping candidate sets.
type ObjectAggregator struct {
	typeID   rdf.ID
	property rdf.ID
	s        map[rdf.ID]struct{}
	incoming bool

	// connected counts, per object o, the connecting triples (s, λ, o)
	// with s ∈ S seen so far. The multiplicity (not just membership)
	// matters for exact delta maintenance: o stays connected until its
	// last connecting triple is retracted.
	connected map[rdf.ID]int
	// classOf accumulates type assertions for all nodes seen so far.
	classOf map[rdf.ID][]rdf.ID
	// counted deduplicates (object, class) pairs.
	counted map[[2]rdf.ID]struct{}
	counts  map[rdf.ID]int
}

// NewObjectAggregator builds an object-chart aggregator for property over
// the URI set s. incoming selects the inverse direction (objects that
// point INTO s via the property).
func NewObjectAggregator(typeID, property rdf.ID, s []rdf.ID, incoming bool) *ObjectAggregator {
	return &ObjectAggregator{
		typeID:    typeID,
		property:  property,
		s:         idSet(s),
		incoming:  incoming,
		connected: make(map[rdf.ID]int),
		classOf:   make(map[rdf.ID][]rdf.ID),
		counted:   make(map[[2]rdf.ID]struct{}),
		counts:    make(map[rdf.ID]int),
	}
}

// Observe implements Aggregator.
func (a *ObjectAggregator) Observe(e rdf.EncodedTriple) {
	if e.P == a.typeID {
		a.classOf[e.S] = append(a.classOf[e.S], e.O)
		if a.connected[e.S] > 0 {
			a.count(e.S, e.O)
		}
		return
	}
	if e.P != a.property {
		return
	}
	anchor, other := e.S, e.O
	if a.incoming {
		anchor, other = e.O, e.S
	}
	if _, in := a.s[anchor]; !in {
		return
	}
	if a.connected[other]++; a.connected[other] == 1 {
		for _, c := range a.classOf[other] {
			a.count(other, c)
		}
	}
}

// Unobserve implements DeltaAggregator, mirroring Observe: retracting a
// type assertion removes its classOf entry and uncounts the pair while
// the object stays connected; retracting the last connecting triple
// disconnects the object and uncounts all its classes.
func (a *ObjectAggregator) Unobserve(e rdf.EncodedTriple) {
	if e.P == a.typeID {
		cs := a.classOf[e.S]
		for i, c := range cs {
			if c == e.O {
				cs[i] = cs[len(cs)-1]
				cs = cs[:len(cs)-1]
				break
			}
		}
		if len(cs) == 0 {
			delete(a.classOf, e.S)
		} else {
			a.classOf[e.S] = cs
		}
		if a.connected[e.S] > 0 {
			a.uncount(e.S, e.O)
		}
		return
	}
	if e.P != a.property {
		return
	}
	anchor, other := e.S, e.O
	if a.incoming {
		anchor, other = e.O, e.S
	}
	if _, in := a.s[anchor]; !in {
		return
	}
	if a.connected[other]--; a.connected[other] == 0 {
		delete(a.connected, other)
		for _, c := range a.classOf[other] {
			a.uncount(other, c)
		}
	}
}

func (a *ObjectAggregator) count(obj, class rdf.ID) {
	key := [2]rdf.ID{obj, class}
	if _, dup := a.counted[key]; dup {
		return
	}
	a.counted[key] = struct{}{}
	a.counts[class]++
}

func (a *ObjectAggregator) uncount(obj, class rdf.ID) {
	key := [2]rdf.ID{obj, class}
	if _, ok := a.counted[key]; !ok {
		return
	}
	delete(a.counted, key)
	if a.counts[class]--; a.counts[class] == 0 {
		delete(a.counts, class)
	}
}

// Counts implements Aggregator.
func (a *ObjectAggregator) Counts() map[rdf.ID]int { return copyCounts(a.counts) }

// CloneEmpty implements Aggregator: the clone shares the read-only query
// parameters and URI set, with fresh candidate and counting state.
func (a *ObjectAggregator) CloneEmpty() Aggregator {
	return &ObjectAggregator{
		typeID:    a.typeID,
		property:  a.property,
		s:         a.s,
		incoming:  a.incoming,
		connected: make(map[rdf.ID]int),
		classOf:   make(map[rdf.ID][]rdf.ID),
		counted:   make(map[[2]rdf.ID]struct{}),
		counts:    make(map[rdf.ID]int),
	}
}

// Merge implements Aggregator. The connecting triple and the type
// assertion of an object may land in different shards, so neither side
// alone counted the pair; merging unions the candidate sets first and then
// re-derives every (object, class) pair that gained a side, with the
// counted set suppressing pairs either party already counted.
func (a *ObjectAggregator) Merge(other Aggregator) {
	b := other.(*ObjectAggregator)
	if len(a.connected) == 0 && len(a.classOf) == 0 {
		a.connected, a.classOf, a.counted, a.counts = b.connected, b.classOf, b.counted, b.counts
		return
	}
	for o, cs := range b.classOf {
		a.classOf[o] = append(a.classOf[o], cs...)
	}
	for o, n := range b.connected {
		a.connected[o] += n
		for _, c := range a.classOf[o] {
			a.count(o, c)
		}
	}
	for o, cs := range b.classOf {
		if a.connected[o] == 0 {
			continue
		}
		for _, c := range cs {
			a.count(o, c)
		}
	}
}

// ConnectedObjects returns the set Osp of objects connected to S via the
// property, for continuing the exploration on the narrowed set.
func (a *ObjectAggregator) ConnectedObjects() []rdf.ID {
	out := make([]rdf.ID, 0, len(a.connected))
	for o := range a.connected {
		out = append(out, o)
	}
	slices.Sort(out)
	return out
}

func idSet(ids []rdf.ID) map[rdf.ID]struct{} {
	m := make(map[rdf.ID]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return m
}

func copyCounts(in map[rdf.ID]int) map[rdf.ID]int {
	out := make(map[rdf.ID]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
