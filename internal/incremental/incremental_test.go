package incremental

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

// buildGraph creates a randomized graph with classes C0..C4 under Root,
// instances typed into them, properties p0..p3, and cross links.
func buildGraph(t *testing.T, seed int64, nInst int) (*store.Store, *rand.Rand) {
	t.Helper()
	return buildGraphB(t, seed, nInst)
}

// buildGraphB is buildGraph for both tests and benchmarks.
func buildGraphB(t testing.TB, seed int64, nInst int) (*store.Store, *rand.Rand) {
	st := store.New(nInst * 8)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < 5; i++ {
		st.Add(rdf.Triple{S: ex(fmt.Sprintf("C%d", i)), P: rdf.SubClassOfIRI, O: ex("Root")})
	}
	for i := 0; i < nInst; i++ {
		inst := ex(fmt.Sprintf("inst%d", i))
		class := ex(fmt.Sprintf("C%d", r.Intn(5)))
		st.Add(rdf.Triple{S: inst, P: rdf.TypeIRI, O: class})
		st.Add(rdf.Triple{S: inst, P: rdf.TypeIRI, O: ex("Root")})
		for j := 0; j < r.Intn(4); j++ {
			p := ex(fmt.Sprintf("p%d", r.Intn(4)))
			st.Add(rdf.Triple{S: inst, P: p, O: ex(fmt.Sprintf("obj%d", r.Intn(50)))})
		}
	}
	return st, r
}

func id(t *testing.T, st *store.Store, name string) rdf.ID {
	t.Helper()
	v, ok := st.Dict().Lookup(ex(name))
	if !ok {
		t.Fatalf("%s not interned", name)
	}
	return v
}

func TestRunRoundsAndCompletion(t *testing.T) {
	st, _ := buildGraph(t, 1, 100)
	total := st.Len()
	ev := New(st, Config{ChunkSize: 64})
	agg := NewPropertyAggregator(nil, false)
	var rounds []Snapshot
	final, err := ev.Run(context.Background(), agg, func(s Snapshot) bool {
		rounds = append(rounds, s)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Complete {
		t.Error("final snapshot not complete")
	}
	if final.TriplesSeen != total {
		t.Errorf("seen = %d, want %d", final.TriplesSeen, total)
	}
	wantRounds := (total + 63) / 64
	if len(rounds) != wantRounds {
		t.Errorf("rounds = %d, want %d (total=%d)", len(rounds), wantRounds, total)
	}
	// Triples seen must be monotone.
	for i := 1; i < len(rounds); i++ {
		if rounds[i].TriplesSeen < rounds[i-1].TriplesSeen {
			t.Error("TriplesSeen not monotone")
		}
	}
}

// TestRunExactMultipleBoundary is the regression test for the spurious
// empty round: a log whose length is an exact multiple of ChunkSize must
// report completion on its last full round, not on an extra empty one.
func TestRunExactMultipleBoundary(t *testing.T) {
	st := store.New(32)
	for i := 0; i < 20; i++ {
		st.Add(rdf.Triple{S: ex(fmt.Sprintf("s%d", i)), P: ex("p"), O: ex("o")})
	}
	ev := New(st, Config{ChunkSize: 10})
	var rounds []Snapshot
	final, err := ev.Run(context.Background(), NewPropertyAggregator(nil, false), func(s Snapshot) bool {
		rounds = append(rounds, s)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 {
		t.Errorf("rounds = %d, want 2 (no empty completion round)", len(rounds))
	}
	if !final.Complete || final.Round != 2 || final.TriplesSeen != 20 {
		t.Errorf("final snapshot = %+v, want complete round 2 with 20 triples", final)
	}
}

func TestRunMaxRoundsStopsEarly(t *testing.T) {
	st, _ := buildGraph(t, 2, 200)
	ev := New(st, Config{ChunkSize: 10, MaxRounds: 3})
	agg := NewPropertyAggregator(nil, false)
	final, err := ev.Run(context.Background(), agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != 3 {
		t.Errorf("rounds = %d, want 3", final.Round)
	}
	if final.TriplesSeen != 30 {
		t.Errorf("seen = %d, want 30", final.TriplesSeen)
	}
	if final.Complete {
		t.Error("k-bounded run should not report complete")
	}
}

func TestRunCallbackStops(t *testing.T) {
	st, _ := buildGraph(t, 3, 200)
	ev := New(st, Config{ChunkSize: 10})
	agg := NewPropertyAggregator(nil, false)
	final, err := ev.Run(context.Background(), agg, func(s Snapshot) bool {
		return s.Round < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != 2 {
		t.Errorf("stopped at round %d, want 2", final.Round)
	}
}

func TestRunContextCancel(t *testing.T) {
	st, _ := buildGraph(t, 4, 50)
	ev := New(st, Config{ChunkSize: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ev.Run(ctx, NewPropertyAggregator(nil, false), nil); err == nil {
		t.Error("cancelled run should error")
	}
}

// TestIncrementalConvergence (experiment T4): the chunked aggregation must
// converge to exactly the single-shot full-scan result, for every
// aggregator kind and several chunk sizes.
func TestIncrementalConvergence(t *testing.T) {
	st, _ := buildGraph(t, 5, 300)
	typeID := st.TypeID()
	root := id(t, st, "Root")
	instances := st.SubjectsOfType(root)

	subclasses := make([]rdf.ID, 5)
	for i := range subclasses {
		subclasses[i] = id(t, st, fmt.Sprintf("C%d", i))
	}

	fullScan := func(mk func() Aggregator) map[rdf.ID]int {
		agg := mk()
		st.Scan(0, 0, func(e rdf.EncodedTriple) bool {
			agg.Observe(e)
			return true
		})
		return agg.Counts()
	}

	kinds := map[string]func() Aggregator{
		"subclass": func() Aggregator {
			return NewSubclassAggregator(typeID, instances, subclasses)
		},
		"property-out": func() Aggregator {
			return NewPropertyAggregator(instances, false)
		},
		"property-in": func() Aggregator {
			return NewPropertyAggregator(instances, true)
		},
	}
	for name, mk := range kinds {
		want := fullScan(mk)
		for _, chunk := range []int{1, 7, 100, 1_000_000} {
			ev := New(st, Config{ChunkSize: chunk})
			agg := mk()
			final, err := ev.Run(context.Background(), agg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(final.Counts, want) {
				t.Errorf("%s chunk=%d: incremental result differs from full scan", name, chunk)
			}
		}
	}
}

func TestPartialCountsNeverExceedFinal(t *testing.T) {
	st, _ := buildGraph(t, 6, 200)
	ev := New(st, Config{ChunkSize: 25})
	agg := NewPropertyAggregator(nil, false)
	var partials []map[rdf.ID]int
	final, err := ev.Run(context.Background(), agg, func(s Snapshot) bool {
		partials = append(partials, s.Counts)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range partials {
		for prop, c := range p {
			if c > final.Counts[prop] {
				t.Errorf("round %d: partial %d exceeds final %d for %v", i, c, final.Counts[prop], prop)
			}
		}
	}
}

func TestSubclassAggregatorRestrictsToSet(t *testing.T) {
	st := store.New(16)
	st.Load([]rdf.Triple{
		{S: ex("a"), P: rdf.TypeIRI, O: ex("C")},
		{S: ex("b"), P: rdf.TypeIRI, O: ex("C")},
		{S: ex("c"), P: rdf.TypeIRI, O: ex("D")},
	})
	cid := id(t, st, "C")
	aID := id(t, st, "a")
	agg := NewSubclassAggregator(st.TypeID(), []rdf.ID{aID}, []rdf.ID{cid})
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool { agg.Observe(e); return true })
	counts := agg.Counts()
	if counts[cid] != 1 {
		t.Errorf("restricted count = %d, want 1", counts[cid])
	}
}

func TestSubclassAggregatorDeduplicates(t *testing.T) {
	st := store.New(8)
	st.Add(rdf.Triple{S: ex("a"), P: rdf.TypeIRI, O: ex("C")})
	cid := id(t, st, "C")
	agg := NewSubclassAggregator(st.TypeID(), nil, []rdf.ID{cid})
	e := rdf.EncodedTriple{S: id(t, st, "a"), P: st.TypeID(), O: cid}
	agg.Observe(e)
	agg.Observe(e) // same triple seen again (overlapping windows)
	if agg.Counts()[cid] != 1 {
		t.Errorf("duplicate observation double-counted")
	}
}

func TestPropertyAggregatorTripleCounts(t *testing.T) {
	st := store.New(8)
	st.Load([]rdf.Triple{
		{S: ex("s"), P: ex("p"), O: ex("o1")},
		{S: ex("s"), P: ex("p"), O: ex("o2")},
		{S: ex("t"), P: ex("p"), O: ex("o1")},
	})
	agg := NewPropertyAggregator(nil, false)
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool { agg.Observe(e); return true })
	p := id(t, st, "p")
	if agg.Counts()[p] != 2 {
		t.Errorf("subject count = %d, want 2", agg.Counts()[p])
	}
	if agg.TripleCounts()[p] != 3 {
		t.Errorf("triple count = %d, want 3", agg.TripleCounts()[p])
	}
}

func TestObjectAggregatorBothOrders(t *testing.T) {
	// The connecting triple and the object's type assertion can arrive in
	// either order across chunks; both must yield the same counts.
	mk := func(order []rdf.Triple) map[string]int {
		st := store.New(8)
		st.Load(order)
		s := id(t, st, "s")
		p := id(t, st, "influencedBy")
		agg := NewObjectAggregator(st.TypeID(), p, []rdf.ID{s}, false)
		st.Scan(0, 0, func(e rdf.EncodedTriple) bool { agg.Observe(e); return true })
		out := map[string]int{}
		for cid, n := range agg.Counts() {
			out[st.Dict().Term(cid).Value] = n
		}
		return out
	}
	link := rdf.Triple{S: ex("s"), P: ex("influencedBy"), O: ex("obj")}
	typ := rdf.Triple{S: ex("obj"), P: rdf.TypeIRI, O: ex("Scientist")}
	c1 := mk([]rdf.Triple{link, typ})
	c2 := mk([]rdf.Triple{typ, link})
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("order sensitivity: %v vs %v", c1, c2)
	}
	if len(c1) != 1 {
		t.Fatalf("counts = %v", c1)
	}
	for _, v := range c1 {
		if v != 1 {
			t.Errorf("count = %d, want 1", v)
		}
	}
}

func TestObjectAggregatorIncoming(t *testing.T) {
	st := store.New(8)
	st.Load([]rdf.Triple{
		{S: ex("work"), P: ex("author"), O: ex("phil")},
		{S: ex("work"), P: rdf.TypeIRI, O: ex("Book")},
	})
	phil := id(t, st, "phil")
	author := id(t, st, "author")
	agg := NewObjectAggregator(st.TypeID(), author, []rdf.ID{phil}, true)
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool { agg.Observe(e); return true })
	book := id(t, st, "Book")
	if agg.Counts()[book] != 1 {
		t.Errorf("incoming object count = %v", agg.Counts())
	}
	objs := agg.ConnectedObjects()
	if len(objs) != 1 || objs[0] != id(t, st, "work") {
		t.Errorf("connected objects = %v", objs)
	}
}

// --- Merge semantics and the parallel sharded evaluator ---

// scanInto observes the log window [off, off+n) with agg.
func scanInto(st *store.Store, agg Aggregator, off, n int) {
	st.Scan(off, n, func(e rdf.EncodedTriple) bool { agg.Observe(e); return true })
}

// TestMergeEqualsSequential: for every aggregator kind, splitting the log
// at every possible point, scanning the halves into separate clones, and
// merging must equal the sequential scan — including overlapping windows,
// which the pair sets must deduplicate across the merge.
func TestMergeEqualsSequential(t *testing.T) {
	st, _ := buildGraph(t, 11, 120)
	typeID := st.TypeID()
	root := id(t, st, "Root")
	instances := st.SubjectsOfType(root)
	subclasses := make([]rdf.ID, 5)
	for i := range subclasses {
		subclasses[i] = id(t, st, fmt.Sprintf("C%d", i))
	}
	p0 := id(t, st, "p0")

	kinds := map[string]func() Aggregator{
		"subclass":     func() Aggregator { return NewSubclassAggregator(typeID, instances, subclasses) },
		"property-out": func() Aggregator { return NewPropertyAggregator(instances, false) },
		"property-in":  func() Aggregator { return NewPropertyAggregator(instances, true) },
		"object":       func() Aggregator { return NewObjectAggregator(typeID, p0, instances, false) },
	}
	total := st.Len()
	for name, mk := range kinds {
		want := mk()
		scanInto(st, want, 0, 0)
		for _, cut := range []int{0, 1, total / 3, total / 2, total - 1, total} {
			merged := mk()
			left := merged.CloneEmpty()
			right := merged.CloneEmpty()
			scanInto(st, left, 0, cut)
			scanInto(st, right, cut, 0)
			merged.Merge(left)
			merged.Merge(right)
			if !reflect.DeepEqual(merged.Counts(), want.Counts()) {
				t.Errorf("%s cut=%d: merged counts differ from sequential", name, cut)
			}
			// Overlap: re-merge a window already covered; counts must not move.
			overlap := merged.CloneEmpty()
			scanInto(st, overlap, 0, total/2)
			merged.Merge(overlap)
			if !reflect.DeepEqual(merged.Counts(), want.Counts()) {
				t.Errorf("%s cut=%d: overlapping merge double-counted", name, cut)
			}
		}
	}
}

// TestPropertyAggregatorMergeTripleCounts: per-property triple totals add
// across disjoint shards.
func TestPropertyAggregatorMergeTripleCounts(t *testing.T) {
	st := store.New(8)
	st.Load([]rdf.Triple{
		{S: ex("s"), P: ex("p"), O: ex("o1")},
		{S: ex("s"), P: ex("p"), O: ex("o2")},
		{S: ex("t"), P: ex("p"), O: ex("o3")},
	})
	agg := NewPropertyAggregator(nil, false)
	left := agg.CloneEmpty()
	right := agg.CloneEmpty()
	scanInto(st, left, 0, 2)
	scanInto(st, right, 2, 0)
	agg.Merge(left)
	agg.Merge(right)
	p := id(t, st, "p")
	if agg.Counts()[p] != 2 {
		t.Errorf("merged subject count = %d, want 2", agg.Counts()[p])
	}
	if agg.TripleCounts()[p] != 3 {
		t.Errorf("merged triple count = %d, want 3", agg.TripleCounts()[p])
	}
}

// TestObjectAggregatorMergeCrossShard: the connecting triple and the type
// assertion land in different shards, so neither clone counts alone; the
// merge must surface the pair regardless of which shard holds which.
func TestObjectAggregatorMergeCrossShard(t *testing.T) {
	for _, linkFirst := range []bool{true, false} {
		st := store.New(8)
		link := rdf.Triple{S: ex("s"), P: ex("influencedBy"), O: ex("obj")}
		typ := rdf.Triple{S: ex("obj"), P: rdf.TypeIRI, O: ex("Scientist")}
		if linkFirst {
			st.Load([]rdf.Triple{link, typ})
		} else {
			st.Load([]rdf.Triple{typ, link})
		}
		s := id(t, st, "s")
		p := id(t, st, "influencedBy")
		agg := NewObjectAggregator(st.TypeID(), p, []rdf.ID{s}, false)
		left := agg.CloneEmpty()
		right := agg.CloneEmpty()
		scanInto(st, left, 0, 1)
		scanInto(st, right, 1, 0)
		if got := len(left.Counts()) + len(right.Counts()); got != 0 {
			t.Fatalf("linkFirst=%v: shards counted alone: %d", linkFirst, got)
		}
		agg.Merge(left)
		agg.Merge(right)
		sci := id(t, st, "Scientist")
		if agg.Counts()[sci] != 1 {
			t.Errorf("linkFirst=%v: merged counts = %v, want Scientist:1", linkFirst, agg.Counts())
		}
	}
}

// TestParallelMatchesSequentialSnapshots: the parallel evaluator must emit
// the exact snapshot sequence of the sequential one — same rounds, same
// TriplesSeen, same per-round counts — for every aggregator kind and for
// worker counts beyond the shard supply.
func TestParallelMatchesSequentialSnapshots(t *testing.T) {
	st, _ := buildGraph(t, 12, 300)
	typeID := st.TypeID()
	root := id(t, st, "Root")
	instances := st.SubjectsOfType(root)
	subclasses := make([]rdf.ID, 5)
	for i := range subclasses {
		subclasses[i] = id(t, st, fmt.Sprintf("C%d", i))
	}
	p1 := id(t, st, "p1")

	kinds := map[string]func() Aggregator{
		"subclass":     func() Aggregator { return NewSubclassAggregator(typeID, instances, subclasses) },
		"property-out": func() Aggregator { return NewPropertyAggregator(instances, false) },
		"object":       func() Aggregator { return NewObjectAggregator(typeID, p1, instances, false) },
	}
	run := func(workers, chunk int, mk func() Aggregator) []Snapshot {
		ev := New(st, Config{ChunkSize: chunk, Workers: workers})
		var out []Snapshot
		if _, err := ev.Run(context.Background(), mk(), func(s Snapshot) bool {
			out = append(out, s)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	for name, mk := range kinds {
		for _, chunk := range []int{3, 64, 1_000_000} {
			seq := run(1, chunk, mk)
			for _, workers := range []int{2, 4, 8, 1000} {
				par := run(workers, chunk, mk)
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%s chunk=%d workers=%d: snapshot sequence differs from sequential",
						name, chunk, workers)
				}
			}
		}
	}
}

func TestEmptyStoreRun(t *testing.T) {
	st := store.New(0)
	ev := New(st, Config{ChunkSize: 10})
	final, err := ev.Run(context.Background(), NewPropertyAggregator(nil, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Complete || final.TriplesSeen != 0 {
		t.Errorf("empty store snapshot: %+v", final)
	}
}

func TestDefaultChunkSize(t *testing.T) {
	st := store.New(0)
	ev := New(st, Config{})
	if ev.cfg.ChunkSize != DefaultChunkSize {
		t.Errorf("default chunk = %d", ev.cfg.ChunkSize)
	}
}
