package incremental

import (
	"context"
	"fmt"

	"elinda/internal/endpoint"
	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// RemoteEvaluator applies incremental evaluation against a remote SPARQL
// endpoint — the paper's remote-compatibility mode: "the aforementioned
// incremental evaluation is applicable (and applied) even in the remote
// mode, allowing for effective latency." Triple windows are fetched with
// LIMIT/OFFSET pages of the full scan query and fed to the same
// aggregators as the local evaluator; terms are interned into a local
// dictionary so aggregator state stays compact.
type RemoteEvaluator struct {
	exec endpoint.Executor
	dict *rdf.Dict
	cfg  Config
}

// NewRemote returns an evaluator that pages triples from exec. The
// dictionary is shared with the caller so IDs in snapshots can be decoded.
func NewRemote(exec endpoint.Executor, dict *rdf.Dict, cfg Config) *RemoteEvaluator {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if dict == nil {
		dict = rdf.NewDict(1024)
	}
	return &RemoteEvaluator{exec: exec, dict: dict, cfg: cfg}
}

// Dict returns the dictionary used to encode remote terms.
func (ev *RemoteEvaluator) Dict() *rdf.Dict { return ev.dict }

// scanQuery returns the page query for a window.
func (ev *RemoteEvaluator) scanQuery(offset int) string {
	return fmt.Sprintf("SELECT ?s ?p ?o WHERE { ?s ?p ?o . } LIMIT %d OFFSET %d",
		ev.cfg.ChunkSize, offset)
}

// Run pages the remote graph chunk by chunk, feeding agg, emitting a
// snapshot per round exactly like Evaluator.Run. Endpoint errors abort
// the run with the partial state unavailable (callers keep the last
// snapshot their callback saw).
func (ev *RemoteEvaluator) Run(ctx context.Context, agg Aggregator, onRound func(Snapshot) bool) (Snapshot, error) {
	offset := 0
	round := 0
	for {
		if err := ctx.Err(); err != nil {
			return Snapshot{}, fmt.Errorf("incremental: %w", err)
		}
		res, err := ev.exec.Query(ctx, ev.scanQuery(offset))
		if err != nil {
			return Snapshot{}, fmt.Errorf("incremental: remote window at offset %d: %w", offset, err)
		}
		n := 0
		for _, row := range res.Rows {
			e, ok := ev.encodeRow(row)
			if !ok {
				continue
			}
			agg.Observe(e)
			n++
		}
		offset += len(res.Rows)
		round++
		snap := Snapshot{
			Round:       round,
			TriplesSeen: offset,
			Counts:      agg.Counts(),
			Complete:    len(res.Rows) < ev.cfg.ChunkSize,
		}
		stop := snap.Complete || (ev.cfg.MaxRounds > 0 && round >= ev.cfg.MaxRounds)
		if onRound != nil && !onRound(snap) {
			return snap, nil
		}
		if stop {
			return snap, nil
		}
	}
}

func (ev *RemoteEvaluator) encodeRow(row sparql.Solution) (rdf.EncodedTriple, bool) {
	s, okS := row["s"]
	p, okP := row["p"]
	o, okO := row["o"]
	if !okS || !okP || !okO {
		return rdf.EncodedTriple{}, false
	}
	return rdf.EncodedTriple{
		S: ev.dict.Intern(s),
		P: ev.dict.Intern(p),
		O: ev.dict.Intern(o),
	}, true
}
