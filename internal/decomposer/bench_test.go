package decomposer

import (
	"context"
	"fmt"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

func benchStore(nInst int) *store.Store {
	st := store.New(nInst * 6)
	var ts []rdf.Triple
	for i := 0; i < nInst; i++ {
		inst := ex(fmt.Sprintf("i%d", i))
		ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: ex("C")})
		for j := 0; j <= i%5; j++ {
			ts = append(ts, rdf.Triple{
				S: inst,
				P: ex(fmt.Sprintf("p%d", j)),
				O: ex(fmt.Sprintf("o%d", (i+j)%500)),
			})
		}
	}
	st.Load(ts)
	return st
}

func BenchmarkDetect(b *testing.B) {
	q, err := sparql.Parse(paperOutgoing)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Detect(q); !ok {
			b.Fatal("not detected")
		}
	}
}

// BenchmarkPropertyStatsCold measures the index computation itself (the
// decomposer's "SQL decomposition" work).
func BenchmarkPropertyStatsCold(b *testing.B) {
	st := benchStore(5000)
	class, _ := st.Dict().Lookup(ex("C"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(st) // fresh memo: cold every iteration
		if stats := d.PropertyStats(class, Outgoing); len(stats) == 0 {
			b.Fatal("no stats")
		}
	}
}

// BenchmarkPropertyStatsWarm measures a memo hit.
func BenchmarkPropertyStatsWarm(b *testing.B) {
	st := benchStore(5000)
	class, _ := st.Dict().Lookup(ex("C"))
	d := New(st)
	d.PropertyStats(class, Outgoing)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stats := d.PropertyStats(class, Outgoing); len(stats) == 0 {
			b.Fatal("no stats")
		}
	}
}

// BenchmarkDecomposedVsGeneric contrasts the two execution paths on the
// same query (the per-query view of Figure 4's gap).
func BenchmarkDecomposedVsGeneric(b *testing.B) {
	st := benchStore(2000)
	q, err := sparql.Parse(`SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
FROM {SELECT ?s ?p count(*) AS ?sp
FROM {?s a <http://example.org/C>. ?s ?p ?o.}
GROUP BY ?s ?p} GROUP BY ?p`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decomposed", func(b *testing.B) {
		d := New(st)
		for i := 0; i < b.N; i++ {
			if _, ok := d.TryExecute(q); !ok {
				b.Fatal("not decomposed")
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		e := sparql.NewEngine(st)
		for i := 0; i < b.N; i++ {
			if _, err := e.Execute(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
