// Package decomposer implements the eLinda decomposer (Section 4): it
// detects the heavy property-expansion SPARQL queries that eLinda emits
// and answers them from specialized aggregate indexes instead of routing
// them through the generic engine, which would "include a complex join
// with hundreds of millions of tuples as an intermediate result".
//
// The paper's example query (outgoing property expansion at owl:Thing):
//
//	SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
//	FROM {SELECT ?s ?p count(*) AS ?sp
//	      FROM {?s a owl:Thing. ?s ?p ?o.}
//	      GROUP BY ?s ?p} GROUP BY ?p
//
// The detector recognizes this two-level shape (and the equivalent
// single-level COUNT(DISTINCT ?s) form) for both outgoing and incoming
// directions, extracts the class constant, and computes the per-property
// (subject count, triple count) aggregates with one pass over the class's
// instances using the store's SPO/OSP indexes — the Go analogue of the
// paper's "decomposition of SQL queries that utilizes the indexes".
package decomposer

import (
	"fmt"
	"sort"
	"sync"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

// Direction distinguishes outgoing from incoming property expansions.
type Direction uint8

const (
	// Outgoing counts properties leaving the instance set (?s ?p ?o).
	Outgoing Direction = iota
	// Incoming counts properties entering the instance set (?o ?p ?s).
	Incoming
)

// String returns "outgoing" or "incoming".
func (d Direction) String() string {
	if d == Incoming {
		return "incoming"
	}
	return "outgoing"
}

// PropStat is the aggregate for one property over a class's instances.
type PropStat struct {
	// Property is the property ID.
	Property rdf.ID
	// Subjects is the number of distinct instances featuring the property
	// (the COUNT(?p) of the outer query — one row per subject survives the
	// inner GROUP BY ?s ?p).
	Subjects int
	// Triples is the total number of matching triples (the SUM(?sp)).
	Triples int
}

// Decomposer answers detected property-expansion queries from indexes.
// Computed aggregates are memoized per (class, direction) and invalidated
// when the store generation moves — this memo is the "specialized index"
// of the paper, built lazily.
type Decomposer struct {
	st *store.Store

	mu         sync.Mutex
	generation uint64
	memo       map[memoKey][]PropStat

	// stats
	detected, answered, rejected int
}

type memoKey struct {
	class rdf.ID
	dir   Direction
}

// New returns a decomposer over st.
func New(st *store.Store) *Decomposer {
	return &Decomposer{st: st, memo: make(map[memoKey][]PropStat)}
}

// Detection is the outcome of analyzing a query.
type Detection struct {
	// Class is the constant class term of the type triple.
	Class rdf.Term
	// Dir is the expansion direction.
	Dir Direction
	// PropVar, CountVar, SumVar are the output variable names to use in
	// the produced result (SumVar may be empty for single-level queries).
	PropVar, CountVar, SumVar string
}

// Detect analyzes a parsed query and reports whether it is a property
// expansion the decomposer can answer.
func Detect(q *sparql.Query) (Detection, bool) {
	if q == nil || q.Ask || q.Distinct || len(q.Having) > 0 {
		return Detection{}, false
	}
	if len(q.GroupBy) != 1 {
		return Detection{}, false
	}
	groupVar := q.GroupBy[0]

	// Two-level (paper) form: subselect GROUP BY ?s ?p with COUNT(*).
	if len(q.Where.SubSelects) == 1 && len(q.Where.Triples) == 0 &&
		len(q.Where.Filters) == 0 && len(q.Where.Optionals) == 0 && len(q.Where.Unions) == 0 {
		return detectTwoLevel(q, groupVar)
	}
	// Single-level form: SELECT ?p (COUNT(DISTINCT ?s) AS ?c) [ (COUNT(*) AS ?t) ]
	if len(q.Where.SubSelects) == 0 && len(q.Where.Triples) == 2 &&
		len(q.Where.Filters) == 0 && len(q.Where.Optionals) == 0 && len(q.Where.Unions) == 0 {
		return detectSingleLevel(q, groupVar)
	}
	return Detection{}, false
}

func detectTwoLevel(q *sparql.Query, groupVar string) (Detection, bool) {
	sub := q.Where.SubSelects[0]
	if sub.Distinct || sub.Limit >= 0 || sub.Offset > 0 || len(sub.GroupBy) != 2 {
		return Detection{}, false
	}
	if len(sub.Where.Triples) != 2 || len(sub.Where.SubSelects) != 0 ||
		len(sub.Where.Filters) != 0 || len(sub.Where.Optionals) != 0 || len(sub.Where.Unions) != 0 {
		return Detection{}, false
	}
	typeVar, class, propVar, dir, ok := classifyPatterns(sub.Where.Triples)
	if !ok {
		return Detection{}, false
	}
	// Inner grouping must be exactly {typeVar, propVar}.
	if !sameSet(sub.GroupBy, []string{typeVar, propVar}) {
		return Detection{}, false
	}
	// Inner projection: ?s, ?p, COUNT(*) AS ?sp.
	innerSumVar := ""
	for _, it := range sub.Items {
		switch {
		case it.Expr == nil && (it.Var == typeVar || it.Var == propVar):
		case it.Expr != nil:
			agg, isAgg := it.Expr.(*sparql.AggExpr)
			if !isAgg || agg.Op != "COUNT" || !agg.Star || innerSumVar != "" {
				return Detection{}, false
			}
			innerSumVar = it.Var
		default:
			return Detection{}, false
		}
	}
	if innerSumVar == "" || groupVar != propVar {
		return Detection{}, false
	}
	// Outer projection: ?p, COUNT(?p) AS ?count, SUM(?sp) AS ?sum.
	det := Detection{Class: class, Dir: dir, PropVar: propVar}
	for _, it := range q.Items {
		switch e := it.Expr.(type) {
		case nil:
			if it.Var != propVar {
				return Detection{}, false
			}
		case *sparql.AggExpr:
			arg, isVar := e.Arg.(*sparql.VarExpr)
			switch e.Op {
			case "COUNT":
				if e.Star {
					// COUNT(*) over the grouped rows also counts subjects.
					if det.CountVar != "" {
						return Detection{}, false
					}
					det.CountVar = it.Var
					continue
				}
				if !isVar || arg.Name != propVar && arg.Name != typeVar || det.CountVar != "" {
					return Detection{}, false
				}
				det.CountVar = it.Var
			case "SUM":
				if !isVar || arg.Name != innerSumVar || det.SumVar != "" {
					return Detection{}, false
				}
				det.SumVar = it.Var
			default:
				return Detection{}, false
			}
		default:
			return Detection{}, false
		}
	}
	if det.CountVar == "" {
		return Detection{}, false
	}
	return det, true
}

func detectSingleLevel(q *sparql.Query, groupVar string) (Detection, bool) {
	typeVar, class, propVar, dir, ok := classifyPatterns(q.Where.Triples)
	if !ok || groupVar != propVar {
		return Detection{}, false
	}
	det := Detection{Class: class, Dir: dir, PropVar: propVar}
	for _, it := range q.Items {
		switch e := it.Expr.(type) {
		case nil:
			if it.Var != propVar {
				return Detection{}, false
			}
		case *sparql.AggExpr:
			arg, isVar := e.Arg.(*sparql.VarExpr)
			switch {
			case e.Op == "COUNT" && e.Distinct && isVar && arg.Name == typeVar && det.CountVar == "":
				det.CountVar = it.Var
			case e.Op == "COUNT" && e.Star && det.SumVar == "":
				det.SumVar = it.Var
			default:
				return Detection{}, false
			}
		default:
			return Detection{}, false
		}
	}
	if det.CountVar == "" {
		return Detection{}, false
	}
	return det, true
}

// classifyPatterns inspects the two triple patterns of an expansion query
// and extracts (typed variable, class constant, property variable,
// direction).
func classifyPatterns(tps []sparql.TriplePattern) (typeVar string, class rdf.Term, propVar string, dir Direction, ok bool) {
	if len(tps) != 2 {
		return "", rdf.Term{}, "", 0, false
	}
	var typeTP, propTP sparql.TriplePattern
	found := false
	for i, tp := range tps {
		if !tp.P.IsVar && tp.P.Term.Value == rdf.RDFType && tp.S.IsVar && !tp.O.IsVar {
			typeTP = tp
			propTP = tps[1-i]
			found = true
			break
		}
	}
	if !found {
		return "", rdf.Term{}, "", 0, false
	}
	typeVar = typeTP.S.Name
	class = typeTP.O.Term
	if !propTP.P.IsVar || !propTP.S.IsVar || !propTP.O.IsVar {
		return "", rdf.Term{}, "", 0, false
	}
	propVar = propTP.P.Name
	switch {
	case propTP.S.Name == typeVar && propTP.O.Name != typeVar && propTP.O.Name != propVar:
		return typeVar, class, propVar, Outgoing, true
	case propTP.O.Name == typeVar && propTP.S.Name != typeVar && propTP.S.Name != propVar:
		return typeVar, class, propVar, Incoming, true
	}
	return "", rdf.Term{}, "", 0, false
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	for _, y := range b {
		if _, ok := set[y]; !ok {
			return false
		}
	}
	return true
}

// PropertyStats computes (or serves from the memo) the per-property
// aggregates for the direct instances of class in the given direction,
// sorted by descending subject count then property label. The aggregation
// runs over one immutable store snapshot — lock-free reads, and the memo
// is keyed by exactly the generation the pass observed.
func (d *Decomposer) PropertyStats(class rdf.ID, dir Direction) []PropStat {
	snap := d.st.Snapshot()
	gen := snap.Generation()
	key := memoKey{class: class, dir: dir}

	d.mu.Lock()
	if d.generation != gen {
		d.memo = make(map[memoKey][]PropStat)
		d.generation = gen
	}
	if cached, ok := d.memo[key]; ok {
		d.mu.Unlock()
		return cached
	}
	d.mu.Unlock()

	stats := computeStats(snap, class, dir)

	d.mu.Lock()
	if d.generation == gen {
		d.memo[key] = stats
	}
	d.mu.Unlock()
	return stats
}

func computeStats(snap *store.Snapshot, class rdf.ID, dir Direction) []PropStat {
	type agg struct {
		subjects int
		triples  int
	}
	perProp := make(map[rdf.ID]*agg)
	subjects := snap.SubjectsOfType(class)
	seenProp := make(map[rdf.ID]bool)
	for _, s := range subjects {
		for p := range seenProp {
			delete(seenProp, p)
		}
		visit := func(e rdf.EncodedTriple) bool {
			a := perProp[e.P]
			if a == nil {
				a = &agg{}
				perProp[e.P] = a
			}
			a.triples++
			if !seenProp[e.P] {
				seenProp[e.P] = true
				a.subjects++
			}
			return true
		}
		if dir == Outgoing {
			snap.Match(s, rdf.NoID, rdf.NoID, visit)
		} else {
			snap.Match(rdf.NoID, rdf.NoID, s, visit)
		}
	}
	out := make([]PropStat, 0, len(perProp))
	for p, a := range perProp {
		out = append(out, PropStat{Property: p, Subjects: a.subjects, Triples: a.triples})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subjects != out[j].Subjects {
			return out[i].Subjects > out[j].Subjects
		}
		return snap.Label(out[i].Property) < snap.Label(out[j].Property)
	})
	return out
}

// TryExecute answers the query from indexes when it is a recognized
// property expansion. ok=false means the caller must route the query to
// the generic engine.
func (d *Decomposer) TryExecute(q *sparql.Query) (*sparql.Result, bool) {
	det, ok := Detect(q)
	if !ok {
		d.mu.Lock()
		d.rejected++
		d.mu.Unlock()
		return nil, false
	}
	d.mu.Lock()
	d.detected++
	d.mu.Unlock()

	classID, found := d.st.Dict().Lookup(det.Class)
	var stats []PropStat
	if found {
		stats = d.PropertyStats(classID, det.Dir)
	}

	res := &sparql.Result{Vars: []string{det.PropVar, det.CountVar}}
	if det.SumVar != "" {
		res.Vars = append(res.Vars, det.SumVar)
	}
	for _, s := range stats {
		row := sparql.Solution{
			det.PropVar:  d.st.Dict().Term(s.Property),
			det.CountVar: rdf.NewTypedLiteral(fmt.Sprint(s.Subjects), rdf.XSDInteger),
		}
		if det.SumVar != "" {
			row[det.SumVar] = rdf.NewTypedLiteral(fmt.Sprint(s.Triples), rdf.XSDInteger)
		}
		res.Rows = append(res.Rows, row)
	}
	applyModifiers(res, q)

	d.mu.Lock()
	d.answered++
	d.mu.Unlock()
	return res, true
}

// applyModifiers honors ORDER BY / LIMIT / OFFSET of the original query on
// the decomposed result, using the engine's exported solution modifiers so
// the fast path orders and slices exactly like the generic evaluator —
// including its bounded-heap top-k shortcut for ORDER BY + LIMIT.
func applyModifiers(res *sparql.Result, q *sparql.Query) {
	res.Rows = sparql.OrderAndSlice(res.Rows, q)
}

// Stats reports detector activity: queries detected as expansions,
// answered from indexes, and rejected (routed to the generic engine).
func (d *Decomposer) Stats() (detected, answered, rejected int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.detected, d.answered, d.rejected
}

// Warm precomputes the level-zero aggregates for the given class in both
// directions — what the eLinda endpoint does for its mirrored knowledge
// bases so the very first exploration pane is fast.
func (d *Decomposer) Warm(class rdf.ID) {
	d.PropertyStats(class, Outgoing)
	d.PropertyStats(class, Incoming)
}
