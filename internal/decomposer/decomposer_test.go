package decomposer

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

func fixture(t *testing.T) *store.Store {
	t.Helper()
	st := store.New(64)
	_, err := st.Load([]rdf.Triple{
		{S: ex("plato"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("aristotle"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("kant"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("plato"), P: ex("born"), O: rdf.NewTypedLiteral("-427", rdf.XSDInteger)},
		{S: ex("aristotle"), P: ex("born"), O: rdf.NewTypedLiteral("-384", rdf.XSDInteger)},
		{S: ex("kant"), P: ex("influencedBy"), O: ex("hume")},
		{S: ex("kant"), P: ex("influencedBy"), O: ex("rousseau")},
		{S: ex("work1"), P: ex("author"), O: ex("plato")},
		{S: ex("work2"), P: ex("author"), O: ex("plato")},
		{S: ex("work3"), P: ex("author"), O: ex("kant")},
		{S: ex("school"), P: ex("founder"), O: ex("plato")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

const paperOutgoing = `SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
FROM {SELECT ?s ?p count(*) AS ?sp
FROM {?s a <http://example.org/Philosopher>. ?s ?p ?o.}
GROUP BY ?s ?p} GROUP BY ?p`

const paperIncoming = `SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
FROM {SELECT ?s ?p count(*) AS ?sp
FROM {?s a <http://example.org/Philosopher>. ?o ?p ?s.}
GROUP BY ?s ?p} GROUP BY ?p`

func TestDetectPaperQuery(t *testing.T) {
	q, err := sparql.Parse(paperOutgoing)
	if err != nil {
		t.Fatal(err)
	}
	det, ok := Detect(q)
	if !ok {
		t.Fatal("paper query not detected")
	}
	if det.Dir != Outgoing {
		t.Errorf("direction = %v", det.Dir)
	}
	if det.Class != ex("Philosopher") {
		t.Errorf("class = %v", det.Class)
	}
	if det.PropVar != "p" || det.CountVar != "count" || det.SumVar != "sp" {
		t.Errorf("vars = %q %q %q", det.PropVar, det.CountVar, det.SumVar)
	}
}

func TestDetectIncoming(t *testing.T) {
	q, err := sparql.Parse(paperIncoming)
	if err != nil {
		t.Fatal(err)
	}
	det, ok := Detect(q)
	if !ok {
		t.Fatal("incoming query not detected")
	}
	if det.Dir != Incoming {
		t.Errorf("direction = %v", det.Dir)
	}
}

func TestDetectSingleLevel(t *testing.T) {
	q, err := sparql.Parse(`SELECT ?p (COUNT(DISTINCT ?s) AS ?c) (COUNT(*) AS ?t)
WHERE { ?s a <http://example.org/Philosopher> . ?s ?p ?o . } GROUP BY ?p`)
	if err != nil {
		t.Fatal(err)
	}
	det, ok := Detect(q)
	if !ok {
		t.Fatal("single-level query not detected")
	}
	if det.CountVar != "c" || det.SumVar != "t" {
		t.Errorf("vars = %+v", det)
	}
}

func TestDetectRejectsNonExpansions(t *testing.T) {
	negatives := []string{
		`SELECT ?s WHERE { ?s ?p ?o . }`,
		`SELECT ?p (COUNT(?s) AS ?c) WHERE { ?s ?p ?o . } GROUP BY ?p`,                                                      // no type triple
		`SELECT ?p (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s a ?cls . ?s ?p ?o . } GROUP BY ?p`,                                 // variable class
		`SELECT ?p (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s a <http://x/C> . ?s ?p ?o . FILTER (?p != rdf:type) } GROUP BY ?p`, // filter present
		`SELECT ?p (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s a <http://x/C> . ?s ?p ?s . } GROUP BY ?p`,                         // self-loop pattern
		`SELECT DISTINCT ?p (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s a <http://x/C> . ?s ?p ?o . } GROUP BY ?p`,                // DISTINCT modifier
		`SELECT ?p (SUM(?s) AS ?c) WHERE { ?s a <http://x/C> . ?s ?p ?o . } GROUP BY ?p`,                                    // wrong aggregate
		`ASK { ?s ?p ?o }`,
	}
	for i, src := range negatives {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		if _, ok := Detect(q); ok {
			t.Errorf("case %d: wrongly detected %q", i, src)
		}
	}
}

func TestPropertyStatsOutgoing(t *testing.T) {
	st := fixture(t)
	d := New(st)
	phil, _ := st.Dict().Lookup(ex("Philosopher"))
	stats := d.PropertyStats(phil, Outgoing)
	byProp := map[string]PropStat{}
	for _, s := range stats {
		byProp[st.Dict().Term(s.Property).Value] = s
	}
	if s := byProp[rdf.RDFType]; s.Subjects != 3 || s.Triples != 3 {
		t.Errorf("rdf:type = %+v", s)
	}
	if s := byProp["http://example.org/born"]; s.Subjects != 2 || s.Triples != 2 {
		t.Errorf("born = %+v", s)
	}
	if s := byProp["http://example.org/influencedBy"]; s.Subjects != 1 || s.Triples != 2 {
		t.Errorf("influencedBy = %+v", s)
	}
	// Sorted by descending subject count.
	for i := 1; i < len(stats); i++ {
		if stats[i].Subjects > stats[i-1].Subjects {
			t.Error("stats not sorted by subjects desc")
		}
	}
}

func TestPropertyStatsIncoming(t *testing.T) {
	st := fixture(t)
	d := New(st)
	phil, _ := st.Dict().Lookup(ex("Philosopher"))
	stats := d.PropertyStats(phil, Incoming)
	byProp := map[string]PropStat{}
	for _, s := range stats {
		byProp[st.Dict().Term(s.Property).Value] = s
	}
	// author enters plato and kant: 2 subjects, 3 triples.
	if s := byProp["http://example.org/author"]; s.Subjects != 2 || s.Triples != 3 {
		t.Errorf("author = %+v", s)
	}
	if s := byProp["http://example.org/founder"]; s.Subjects != 1 || s.Triples != 1 {
		t.Errorf("founder = %+v", s)
	}
	// influencedBy enters hume/rousseau, not philosophers: absent.
	if _, ok := byProp["http://example.org/influencedBy"]; ok {
		t.Error("influencedBy should not appear as incoming for Philosopher")
	}
}

// TestDecomposedEqualsGeneric is the central correctness property: the
// decomposer's answer must be identical (as a set of rows) to running the
// same query through the generic engine.
func TestDecomposedEqualsGeneric(t *testing.T) {
	st := fixture(t)
	d := New(st)
	eng := sparql.NewEngine(st)
	for _, src := range []string{paperOutgoing, paperIncoming} {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		fast, ok := d.TryExecute(q)
		if !ok {
			t.Fatalf("not decomposed: %s", src)
		}
		slow, err := eng.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, fast, slow)
	}
}

// TestDecomposedEqualsGenericRandom fuzzes the equivalence on random
// graphs.
func TestDecomposedEqualsGenericRandom(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		st := store.New(256)
		nInst := 5 + r.Intn(20)
		for i := 0; i < nInst; i++ {
			inst := ex(fmt.Sprintf("i%d", i))
			st.Add(rdf.Triple{S: inst, P: rdf.TypeIRI, O: ex("C")})
			for j := 0; j < r.Intn(5); j++ {
				p := ex(fmt.Sprintf("p%d", r.Intn(4)))
				st.Add(rdf.Triple{S: inst, P: p, O: ex(fmt.Sprintf("o%d", r.Intn(10)))})
			}
			for j := 0; j < r.Intn(3); j++ {
				p := ex(fmt.Sprintf("q%d", r.Intn(3)))
				st.Add(rdf.Triple{S: ex(fmt.Sprintf("x%d", r.Intn(10))), P: p, O: inst})
			}
		}
		d := New(st)
		eng := sparql.NewEngine(st)
		for _, dir := range []string{"?s ?p ?o.", "?o ?p ?s."} {
			src := fmt.Sprintf(`SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
FROM {SELECT ?s ?p count(*) AS ?sp FROM {?s a <http://example.org/C>. %s} GROUP BY ?s ?p} GROUP BY ?p`, dir)
			q, err := sparql.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			fast, ok := d.TryExecute(q)
			if !ok {
				t.Fatal("not decomposed")
			}
			slow, err := eng.Execute(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRows(t, fast, slow)
		}
	}
}

func assertSameRows(t *testing.T, a, b *sparql.Result) {
	t.Helper()
	key := func(rows []sparql.Solution) map[string]sparql.Solution {
		m := map[string]sparql.Solution{}
		for _, r := range rows {
			m[r["p"].Value] = r
		}
		return m
	}
	ka, kb := key(a.Rows), key(b.Rows)
	if len(ka) != len(kb) {
		t.Fatalf("row counts differ: %d vs %d\nfast=%v\nslow=%v", len(ka), len(kb), a.Rows, b.Rows)
	}
	for p, ra := range ka {
		rb, ok := kb[p]
		if !ok {
			t.Fatalf("property %s missing from generic result", p)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("rows differ for %s: fast=%v slow=%v", p, ra, rb)
		}
	}
}

func TestTryExecuteHonorsModifiers(t *testing.T) {
	st := fixture(t)
	d := New(st)
	src := paperOutgoing + ` ORDER BY DESC(?count) LIMIT 2`
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := d.TryExecute(q)
	if !ok {
		t.Fatal("not decomposed")
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0]["p"].Value != rdf.RDFType {
		t.Errorf("top property = %v, want rdf:type", res.Rows[0]["p"])
	}
}

func TestTryExecuteUnknownClass(t *testing.T) {
	st := fixture(t)
	d := New(st)
	q, err := sparql.Parse(`SELECT ?p (COUNT(DISTINCT ?s) AS ?c)
WHERE { ?s a <http://example.org/Never> . ?s ?p ?o . } GROUP BY ?p`)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := d.TryExecute(q)
	if !ok {
		t.Fatal("should still decompose")
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(res.Rows))
	}
}

func TestMemoInvalidation(t *testing.T) {
	st := fixture(t)
	d := New(st)
	phil, _ := st.Dict().Lookup(ex("Philosopher"))
	before := d.PropertyStats(phil, Outgoing)
	// Add a new property triple and verify the memo refreshes.
	st.Add(rdf.Triple{S: ex("plato"), P: ex("diedIn"), O: ex("athens")})
	after := d.PropertyStats(phil, Outgoing)
	if len(after) != len(before)+1 {
		t.Errorf("memo not invalidated: %d -> %d properties", len(before), len(after))
	}
}

func TestStatsCounters(t *testing.T) {
	st := fixture(t)
	d := New(st)
	q1, _ := sparql.Parse(paperOutgoing)
	q2, _ := sparql.Parse(`SELECT ?s WHERE { ?s ?p ?o . }`)
	d.TryExecute(q1)
	d.TryExecute(q2)
	detected, answered, rejected := d.Stats()
	if detected != 1 || answered != 1 || rejected != 1 {
		t.Errorf("stats = %d/%d/%d", detected, answered, rejected)
	}
}

func TestWarm(t *testing.T) {
	st := fixture(t)
	d := New(st)
	phil, _ := st.Dict().Lookup(ex("Philosopher"))
	d.Warm(phil)
	d.mu.Lock()
	n := len(d.memo)
	d.mu.Unlock()
	if n != 2 {
		t.Errorf("memo entries after Warm = %d, want 2", n)
	}
}
