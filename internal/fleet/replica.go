package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"elinda/internal/core"
	"elinda/internal/endpoint"
	"elinda/internal/metrics"
	"elinda/internal/netsim"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
	"elinda/internal/store"
	"elinda/internal/wal"
)

// snapshotName is the on-disk name of an installed generation; the
// .partial suffix marks an in-progress (resumable) transfer of exactly
// that generation, so a resume can never splice two generations.
func snapshotName(gen uint64) string { return fmt.Sprintf("snap-%016x.elindsn", gen) }

// ReplicaOptions configures a replica agent.
type ReplicaOptions struct {
	// CoordinatorURL is the base URL of the coordinator (scheme://host:port).
	CoordinatorURL string
	// Dir is where fetched snapshots are installed (and partial
	// transfers parked for resume). Created if missing.
	Dir string
	// Transport is the outbound seam (nil = a fresh netsim.Transport):
	// every request to the coordinator flows through it, which is what
	// lets the chaos matrix crash replica hydration at any point.
	Transport http.RoundTripper
	// Proxy configures the serving stack mounted on each promoted
	// generation (HVS, coalescing, decomposer — the PR 4 tier runs
	// unchanged on every replica).
	Proxy proxy.Options
	// PollInterval is the manifest poll cadence for Run (0 = 2s).
	PollInterval time.Duration
	// RequestTimeout bounds each manifest/generation request (0 = 5s).
	RequestTimeout time.Duration
	// FetchTimeout bounds each snapshot transfer request — one Range
	// request, not the whole resumable download (0 = 5m).
	FetchTimeout time.Duration
	// FetchAttempts bounds how many transfer/verify rounds one SyncOnce
	// tries before reporting failure (0 = 4). Partial bytes survive
	// across rounds and across SyncOnce calls: progress is never lost,
	// only re-verified.
	FetchAttempts int
	// Warm precomputes level-zero aggregates on promotion before the
	// replica advertises ready.
	Warm bool
	// WALDir, when set, replays a colocated write-ahead log on top of
	// the first fetched snapshot (boot catch-up for a replica sharing
	// the writer's disk). Homogeneous fleets leave it empty: replaying
	// locally would fork the replica's generation off its siblings'.
	WALDir string
	// QueryTimeout bounds each query on the replica endpoint.
	QueryTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// replicaState is one promoted generation: an immutable store with its
// serving stack. Promotion swaps the whole state behind one atomic
// pointer; queries in flight keep the state they started with.
type replicaState struct {
	st  *store.Store
	px  *proxy.Proxy
	srv *endpoint.Server
	gen uint64
}

// Replica is the agent process of one read replica: it polls the
// coordinator, pulls new snapshot generations (resumable, CRC-verified,
// atomically installed), and hot-swaps its serving stack on promotion.
// Its Handler serves /sparql, /readyz, /healthz, /metrics and
// /fleet/generation.
type Replica struct {
	opts   ReplicaOptions
	client *http.Client
	ready  endpoint.Readiness
	cur    atomic.Pointer[replicaState]

	promotions  metrics.Counter
	syncErrors  metrics.Counter
	fetchRounds metrics.Counter
	resumedByte metrics.Counter
	fetchedByte metrics.Counter

	// phaseHook observes readiness phase transitions (tests only).
	phaseHook func(phase string)
}

// setPhase moves the readiness probe to a new not-ready phase.
func (r *Replica) setPhase(phase string) {
	r.ready.Set(phase)
	if r.phaseHook != nil {
		r.phaseHook(phase)
	}
}

// setServing flips the readiness probe to ready.
func (r *Replica) setServing() {
	r.ready.Ready()
	if r.phaseHook != nil {
		r.phaseHook("serving")
	}
}

// NewReplica returns an unhydrated replica agent; it reports not ready
// (phase "snapshot-fetch") until the first promotion succeeds.
func NewReplica(opts ReplicaOptions) *Replica {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 2 * time.Second
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.FetchTimeout <= 0 {
		opts.FetchTimeout = 5 * time.Minute
	}
	if opts.FetchAttempts <= 0 {
		opts.FetchAttempts = 4
	}
	if opts.Transport == nil {
		opts.Transport = netsim.New(nil)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	r := &Replica{
		opts:   opts,
		client: &http.Client{Transport: opts.Transport},
	}
	r.ready.Set("snapshot-fetch")
	return r
}

// Generation returns the currently served generation (0 before the
// first promotion).
func (r *Replica) Generation() uint64 {
	if s := r.cur.Load(); s != nil {
		return s.gen
	}
	return 0
}

// IsReady reports whether the replica is serving.
func (r *Replica) IsReady() bool { return r.ready.IsReady() }

// BeginDrain flips the readiness probe to 503 "draining" so the router
// stops sending new work while in-flight queries finish. The /sparql
// handler itself keeps serving: drain means "route around me", not
// "drop my requests".
func (r *Replica) BeginDrain() { r.ready.Set("draining") }

// Run polls the coordinator until ctx is done, promoting every new
// generation it sees. Sync errors are counted and logged, never fatal:
// an unreachable coordinator degrades freshness, not availability.
func (r *Replica) Run(ctx context.Context) {
	t := time.NewTicker(r.opts.PollInterval)
	defer t.Stop()
	for {
		if _, err := r.SyncOnce(ctx); err != nil && ctx.Err() == nil {
			r.opts.Logf("fleet replica: sync: %v", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// SyncOnce performs one poll-fetch-promote cycle and reports whether a
// promotion happened.
func (r *Replica) SyncOnce(ctx context.Context) (bool, error) {
	m, err := r.manifest(ctx)
	if err != nil {
		r.syncErrors.Inc()
		return false, err
	}
	cur := r.cur.Load()
	if cur != nil && m.Generation <= cur.gen {
		return false, nil
	}
	first := cur == nil
	if first {
		r.setPhase("snapshot-fetch")
	}
	path, err := r.fetchSnapshot(ctx, m)
	if err != nil {
		r.syncErrors.Inc()
		return false, err
	}
	// The loader re-validates the format's structure and CRC trailer: a
	// file the transfer-level checksum somehow passed but the format
	// rejects is removed so the next cycle re-fetches clean.
	st, err := store.OpenSnapshot(path)
	if err != nil {
		os.Remove(path)
		r.syncErrors.Inc()
		return false, fmt.Errorf("fleet: installed snapshot failed validation: %w", err)
	}
	if first && r.opts.WALDir != "" {
		r.setPhase("wal-replay")
		if err := r.replayWAL(st); err != nil {
			r.syncErrors.Inc()
			return false, err
		}
	}
	if first && r.opts.Warm {
		r.setPhase("warming")
	}
	r.promote(st, m.Generation)
	if first {
		r.setServing()
	}
	r.gcOldSnapshots(m.Generation)
	r.opts.Logf("fleet replica: promoted generation %d (%d triples)", m.Generation, st.Len())
	return true, nil
}

// promote builds the serving stack for st and swaps it in.
func (r *Replica) promote(st *store.Store, gen uint64) {
	px := proxy.New(st, r.opts.Proxy)
	if r.opts.Warm {
		h := core.NewExplorer(st).Hierarchy()
		if root := h.Root(); root != rdf.NoID {
			px.Decomposer().Warm(root)
		}
	}
	srv := endpoint.NewServer(px)
	srv.Timeout = r.opts.QueryTimeout
	r.cur.Store(&replicaState{st: st, px: px, srv: srv, gen: gen})
	r.promotions.Inc()
}

// replayWAL folds a colocated write-ahead log into the freshly fetched
// store (replay is idempotent against whatever the snapshot already
// holds).
func (r *Replica) replayWAL(st *store.Store) error {
	w, err := wal.Open(r.opts.WALDir, wal.Options{})
	if err != nil {
		return fmt.Errorf("fleet: wal replay: %w", err)
	}
	defer w.Close()
	n, err := w.ReplayOps(func(op rdf.TripleOp) error {
		_, err := st.Apply(store.DeltaOf(op))
		return err
	})
	if err != nil {
		return fmt.Errorf("fleet: wal replay: %w", err)
	}
	if n > 0 {
		r.opts.Logf("fleet replica: replayed %d WAL records", n)
	}
	return nil
}

// manifest fetches the coordinator's current Manifest.
func (r *Replica) manifest(ctx context.Context) (Manifest, error) {
	rctx, cancel := context.WithTimeout(ctx, r.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		strings.TrimSuffix(r.opts.CoordinatorURL, "/")+"/fleet/manifest", nil)
	if err != nil {
		return Manifest{}, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return Manifest{}, fmt.Errorf("fleet: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Manifest{}, fmt.Errorf("fleet: manifest: status %d", resp.StatusCode)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("fleet: manifest: %w", err)
	}
	if m.Size <= 0 || m.SnapshotPath == "" {
		return Manifest{}, errors.New("fleet: manifest: malformed")
	}
	return m, nil
}

// fetchSnapshot downloads the manifest's snapshot into Dir and installs
// it atomically, resuming any partial transfer of the same generation.
// It returns the installed path.
func (r *Replica) fetchSnapshot(ctx context.Context, m Manifest) (string, error) {
	if err := os.MkdirAll(r.opts.Dir, 0o755); err != nil {
		return "", fmt.Errorf("fleet: fetch: %w", err)
	}
	final := filepath.Join(r.opts.Dir, snapshotName(m.Generation))
	if fi, err := os.Stat(final); err == nil && fi.Size() == m.Size {
		// Already installed (e.g. a restart right after install): the
		// loader will still CRC-validate it.
		return final, nil
	}
	part := final + ".partial"
	var lastErr error
	for attempt := 0; attempt < r.opts.FetchAttempts; attempt++ {
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		r.fetchRounds.Inc()
		have := int64(0)
		if fi, err := os.Stat(part); err == nil {
			have = fi.Size()
		}
		if have > m.Size {
			// A partial longer than the target can only be garbage.
			os.Remove(part)
			have = 0
		}
		if have < m.Size {
			if have > 0 {
				r.resumedByte.Add(uint64(have))
			}
			if err := r.fetchRange(ctx, m, part, have); err != nil {
				lastErr = err
				continue // partial bytes kept; next round resumes
			}
		}
		fi, err := os.Stat(part)
		if err != nil || fi.Size() != m.Size {
			lastErr = fmt.Errorf("fleet: fetch: incomplete transfer (%v)", err)
			continue
		}
		sum, err := crcFile(part)
		if err != nil {
			lastErr = err
			os.Remove(part)
			continue
		}
		if sum != m.CRC32 {
			// Corrupt transfer: resuming on top of bad bytes can never
			// heal, so restart the transfer from zero.
			lastErr = fmt.Errorf("fleet: fetch: CRC mismatch (got %08x want %08x)", sum, m.CRC32)
			os.Remove(part)
			continue
		}
		if err := installAtomic(part, final); err != nil {
			return "", err
		}
		return final, nil
	}
	return "", fmt.Errorf("fleet: fetch of generation %d failed after %d attempts: %w",
		m.Generation, r.opts.FetchAttempts, lastErr)
}

// fetchRange issues one transfer request, resuming at offset have, and
// appends whatever arrives to part. A mid-transfer error keeps the
// bytes already written — that is the resume contract.
func (r *Replica) fetchRange(ctx context.Context, m Manifest, part string, have int64) error {
	fctx, cancel := context.WithTimeout(ctx, r.opts.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet,
		strings.TrimSuffix(r.opts.CoordinatorURL, "/")+m.SnapshotPath, nil)
	if err != nil {
		return err
	}
	if have > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", have))
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: fetch: %w", err)
	}
	defer resp.Body.Close()

	flags := os.O_CREATE | os.O_WRONLY
	switch resp.StatusCode {
	case http.StatusPartialContent:
		flags |= os.O_APPEND
	case http.StatusOK:
		// The server ignored the Range header (or we asked from 0):
		// restart the file.
		flags |= os.O_TRUNC
	case http.StatusNotFound:
		// Generation superseded mid-transfer; the partial is useless.
		os.Remove(part)
		return fmt.Errorf("fleet: fetch: generation %d gone", m.Generation)
	default:
		return fmt.Errorf("fleet: fetch: status %d", resp.StatusCode)
	}
	f, err := os.OpenFile(part, flags, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: fetch: %w", err)
	}
	n, copyErr := io.Copy(f, resp.Body)
	r.fetchedByte.Add(uint64(n))
	if err := f.Close(); err != nil && copyErr == nil {
		copyErr = err
	}
	if copyErr != nil {
		return fmt.Errorf("fleet: fetch: %w", copyErr)
	}
	return nil
}

// installAtomic promotes a fully verified partial file to its final
// name with the same discipline as local snapshot saves: sync the data,
// rename, sync the directory — a crash mid-install leaves either the
// old state or the new file, never a torn one.
func installAtomic(part, final string) error {
	f, err := os.Open(part)
	if err != nil {
		return fmt.Errorf("fleet: install: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: install: %w", err)
	}
	f.Close()
	if err := os.Rename(part, final); err != nil {
		return fmt.Errorf("fleet: install: %w", err)
	}
	if d, err := os.Open(filepath.Dir(final)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// crcFile computes the IEEE CRC-32 of a file's contents.
func crcFile(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("fleet: fetch: %w", err)
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, fmt.Errorf("fleet: fetch: %w", err)
	}
	return h.Sum32(), nil
}

// gcOldSnapshots removes installed generations older than keep — the
// previous generation's file has served its purpose once the new one is
// live (the in-memory store needs no backing file).
func (r *Replica) gcOldSnapshots(keep uint64) {
	entries, err := os.ReadDir(r.opts.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var gen uint64
		if _, err := fmt.Sscanf(name, "snap-%016x.elindsn", &gen); err != nil {
			continue
		}
		if gen < keep && name == snapshotName(gen) {
			os.Remove(filepath.Join(r.opts.Dir, name))
		}
	}
}

// Handler returns the replica's HTTP surface.
func (r *Replica) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", func(w http.ResponseWriter, req *http.Request) {
		s := r.cur.Load()
		if s == nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "replica hydrating", http.StatusServiceUnavailable)
			return
		}
		s.srv.ServeHTTP(w, req)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		// The ready form carries the generation so the router's health
		// probe learns freshness and readiness in one request.
		if r.ready.IsReady() {
			fmt.Fprintf(w, "ready generation=%d\n", r.Generation())
			return
		}
		r.ready.ServeHTTP(w, req)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		s := r.cur.Load()
		if s == nil {
			fmt.Fprintf(w, "ok hydrating\n")
			return
		}
		fmt.Fprintf(w, "ok triples=%d generation=%d\n", s.st.Len(), s.gen)
	})
	mux.HandleFunc("/fleet/generation", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintf(w, "%d\n", r.Generation())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		doc := map[string]any{"replica": r.MetricsSnapshot()}
		if s := r.cur.Load(); s != nil {
			doc["server"] = s.srv.MetricsSnapshot()
			doc["proxy"] = s.px.MetricsSnapshot()
			doc["store"] = map[string]any{"triples": s.st.Len(), "generation": s.gen}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc)
	})
	return mux
}

// ReplicaMetrics is the replica agent's /metrics section.
type ReplicaMetrics struct {
	Generation   uint64 `json:"generation"`
	Ready        bool   `json:"ready"`
	Promotions   uint64 `json:"promotions"`
	SyncErrors   uint64 `json:"sync_errors"`
	FetchRounds  uint64 `json:"fetch_rounds"`
	ResumedBytes uint64 `json:"resumed_bytes"`
	FetchedBytes uint64 `json:"fetched_bytes"`
}

// MetricsSnapshot captures the agent's counters.
func (r *Replica) MetricsSnapshot() ReplicaMetrics {
	return ReplicaMetrics{
		Generation:   r.Generation(),
		Ready:        r.ready.IsReady(),
		Promotions:   r.promotions.Value(),
		SyncErrors:   r.syncErrors.Value(),
		FetchRounds:  r.fetchRounds.Value(),
		ResumedBytes: r.resumedByte.Value(),
		FetchedBytes: r.fetchedByte.Value(),
	}
}
