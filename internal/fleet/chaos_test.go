package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"elinda/internal/endpoint"
	"elinda/internal/netsim"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
	"elinda/internal/router"
	"elinda/internal/store"
)

// chaosFleet is a complete in-process fleet: one coordinator, three
// hydrated replicas, a router whose outbound traffic runs through a
// fault-injecting netsim transport, and an oracle server built from the
// exact snapshot bytes the replicas hydrated from.
type chaosFleet struct {
	st       *store.Store
	coord    *Coordinator
	replicas []*Replica
	repSrvs  []*httptest.Server
	tr       *netsim.Transport
	rt       *router.Router
	oracle   *httptest.Server
}

func newChaosFleet(t *testing.T) *chaosFleet {
	t.Helper()
	cf := &chaosFleet{st: seedStore(t)}
	var coordSrv *httptest.Server
	cf.coord, coordSrv = startCoordinator(t, cf.st)

	var cfgs []router.ReplicaConfig
	for i := 0; i < 3; i++ {
		r := NewReplica(ReplicaOptions{CoordinatorURL: coordSrv.URL, Dir: t.TempDir()})
		if _, err := r.SyncOnce(context.Background()); err != nil {
			t.Fatalf("replica %d hydration: %v", i, err)
		}
		srv := httptest.NewServer(r.Handler())
		t.Cleanup(srv.Close)
		cf.replicas = append(cf.replicas, r)
		cf.repSrvs = append(cf.repSrvs, srv)
		cfgs = append(cfgs, router.ReplicaConfig{Name: fmt.Sprintf("replica-%d", i), BaseURL: srv.URL})
	}

	cf.tr = netsim.New(nil)
	cf.rt = router.New(router.Options{
		Replicas:       cfgs,
		Transport:      cf.tr,
		ProbeInterval:  time.Hour, // probes driven manually for determinism
		ProbeTimeout:   500 * time.Millisecond,
		RequestTimeout: 400 * time.Millisecond,
		RetryBudget:    4,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		HedgeDelay:     10 * time.Millisecond,
		Breaker:        router.BreakerConfig{FailureThreshold: 3, OpenFor: 50 * time.Millisecond},
	})
	cf.rt.ProbeNow(context.Background())
	cf.rebuildOracle(t)
	return cf
}

// rebuildOracle points the oracle at the coordinator's current
// published bytes — the single-store ground truth every routed answer
// must be byte-identical to.
func (cf *chaosFleet) rebuildOracle(t *testing.T) {
	t.Helper()
	_, blob, _, err := cf.coord.publish()
	if err != nil {
		t.Fatal(err)
	}
	ost, err := store.ReadSnapshot(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if cf.oracle != nil {
		cf.oracle.Close()
	}
	cf.oracle = httptest.NewServer(endpoint.NewServer(proxy.New(ost, proxy.Options{})))
	t.Cleanup(cf.oracle.Close)
}

func (cf *chaosFleet) host(i int) string {
	u, _ := url.Parse(cf.repSrvs[i].URL)
	return u.Host
}

var chaosQueries = []string{
	philosophersQuery,
	`SELECT ?s ?o WHERE { ?s <http://example.org/born> ?o . }`,
	`SELECT ?w WHERE { ?w <http://example.org/author> <http://example.org/plato> . }`,
	`SELECT ?s WHERE { ?s a <http://example.org/Nothing> . }`,
}

// checkAll routes every chaos query and requires byte-identity with the
// oracle. It returns the number of successful answers (for scenarios
// that tolerate partial availability).
func (cf *chaosFleet) checkAll(t *testing.T, scenario string) {
	t.Helper()
	for _, q := range chaosQueries {
		req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(q), nil)
		w := httptest.NewRecorder()
		cf.rt.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("[%s] query %q: status %d: %s", scenario, q, w.Code, w.Body.String())
		}
		_, want := getBody(t, sparqlURL(cf.oracle.URL, q))
		if got := w.Body.String(); got != want {
			t.Fatalf("[%s] query %q diverges from oracle:\n got: %s\nwant: %s", scenario, q, got, want)
		}
		if s := w.Header().Get(router.StalenessHeader); s != "" {
			t.Fatalf("[%s] fresh fleet served stale (%s)", scenario, s)
		}
	}
}

// TestFleetChaosMatrix drives the three-replica fleet through every
// netsim fault class, against every replica, asserting that routed
// responses stay byte-identical to the single-store oracle, that
// truncated bodies are never relayed as 200s, and that single-replica
// faults never cost availability (the retry/hedge/scatter ladder masks
// them completely).
func TestFleetChaosMatrix(t *testing.T) {
	cf := newChaosFleet(t)
	ctx := context.Background()

	faults := []struct {
		name  string
		apply func(host string)
		clear func(host string)
	}{
		{
			name:  "refuse",
			apply: func(h string) { cf.tr.SetHostRule(h, netsim.Rule{Fault: netsim.FaultRefuse}) },
			clear: func(h string) { cf.tr.ClearHostRule(h) },
		},
		{
			name: "latency-spike",
			apply: func(h string) {
				cf.tr.SetHostRule(h, netsim.Rule{Fault: netsim.FaultLatency, Delay: 60 * time.Millisecond})
			},
			clear: func(h string) { cf.tr.ClearHostRule(h) },
		},
		{
			name:  "mid-body-hang",
			apply: func(h string) { cf.tr.SetHostRule(h, netsim.Rule{Fault: netsim.FaultHang, After: 10}) },
			clear: func(h string) { cf.tr.ClearHostRule(h) },
		},
		{
			name:  "truncate",
			apply: func(h string) { cf.tr.SetHostRule(h, netsim.Rule{Fault: netsim.FaultTruncate, After: 30}) },
			clear: func(h string) { cf.tr.ClearHostRule(h) },
		},
		{
			name:  "kill-restart",
			apply: func(h string) { cf.tr.Kill(h) },
			clear: func(h string) { cf.tr.Restart(h) },
		},
	}

	for _, f := range faults {
		for i := range cf.replicas {
			scenario := fmt.Sprintf("%s@replica-%d", f.name, i)
			// The fault lands while the router still believes the replica
			// is healthy: the first attempts really do hit it.
			f.apply(cf.host(i))
			cf.checkAll(t, scenario)
			f.clear(cf.host(i))
			cf.rt.ProbeNow(ctx)
			cf.checkAll(t, scenario+"/recovered")
		}
	}

	// One-shot fault at a numbered call site: a single op-level refusal
	// is absorbed without any host-level state.
	cf.tr.InjectOp(cf.tr.Ops(), netsim.Rule{Fault: netsim.FaultRefuse})
	cf.checkAll(t, "one-shot-op-refuse")

	m := cf.rt.MetricsSnapshot()
	if m.Truncations == 0 {
		t.Error("truncate scenarios detected no truncations")
	}
	if m.Hedges == 0 {
		t.Error("hang/latency scenarios fired no hedges")
	}
	if m.Retries == 0 {
		t.Error("refuse scenarios burned no retries")
	}
	if m.Unavailable503 != 0 || m.LocalFallbacks != 0 {
		t.Errorf("single-replica faults cost availability: 503=%d localFallbacks=%d",
			m.Unavailable503, m.LocalFallbacks)
	}
}

// TestFleetGenerationSkew restarts the world with one replica pinned at
// an old generation: the router must route exclusively to the newest
// generation, and the laggard must rejoin after it re-syncs.
func TestFleetGenerationSkew(t *testing.T) {
	cf := newChaosFleet(t)
	ctx := context.Background()

	// The store advances; replicas 1 and 2 follow, replica 0 lags.
	if _, err := cf.st.Add(rdf.Triple{S: ex("zeno"), P: rdf.TypeIRI, O: ex("Philosopher")}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if _, err := cf.replicas[i].SyncOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cf.rt.ProbeNow(ctx)
	cf.rebuildOracle(t)

	before := cf.rt.MetricsSnapshot().Replicas[0].Routed
	cf.checkAll(t, "generation-skew")
	if after := cf.rt.MetricsSnapshot().Replicas[0].Routed; after != before {
		t.Errorf("stale-generation replica received %d fresh-tier queries", after-before)
	}

	// The laggard catches up and rejoins the fresh tier.
	if _, err := cf.replicas[0].SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	cf.rt.ProbeNow(ctx)
	cf.checkAll(t, "generation-skew/rejoined")
}

// TestFleetDrainWindow takes one replica through a graceful drain:
// probes see the 503 window, the router routes around it, and queries
// never fail.
func TestFleetDrainWindow(t *testing.T) {
	cf := newChaosFleet(t)
	ctx := context.Background()

	cf.replicas[1].BeginDrain()
	// Queries issued inside the window — before the router has probed —
	// may hit the draining replica's still-open /sparql and succeed, or
	// another replica; either way they must succeed and match.
	cf.checkAll(t, "drain-window")
	cf.rt.ProbeNow(ctx)
	routedBefore := cf.rt.MetricsSnapshot().Replicas[1].Routed
	cf.checkAll(t, "drain-routed-around")
	if after := cf.rt.MetricsSnapshot().Replicas[1].Routed; after != routedBefore {
		t.Errorf("draining replica still receiving queries (%d new)", after-routedBefore)
	}
}
