// Package fleet implements the snapshot-replicated read tier: one
// writer (the coordinator) publishes generation-tagged binary snapshots
// of its store over HTTP, and N stateless read replicas pull them,
// verify them, and hot-swap their serving stack onto the new generation.
// The versioned snapshot format of internal/store (CRC-trailed, validated
// on load) is the replication unit; hydration from a snapshot is an
// order of magnitude faster than re-parsing, which is what makes replica
// (re)starts and rolling promotions cheap.
//
// Robustness model:
//
//   - Publication is pinned: the coordinator serializes one immutable
//     Snapshot and advertises exactly its generation, so the manifest
//     and the bytes can never disagree under concurrent writes.
//   - Transfer is resumable and verified: replicas fetch with HTTP Range
//     requests into a per-generation partial file, check the manifest's
//     CRC-32 over the whole file, and the store loader re-validates the
//     format's own trailer — a torn or corrupted transfer can delay a
//     promotion but never produce a wrong one.
//   - Installation is atomic: temp file + fsync + rename, the same
//     discipline as local snapshot saves, so a replica crash mid-install
//     leaves the previous generation intact.
//   - Promotion is lock-free for readers: the replica builds the new
//     system off to the side and swaps one atomic pointer; queries in
//     flight keep their immutable snapshot and drain naturally.
//
// All replica-side HTTP flows through the netsim seam
// (internal/netsim.Transport), so the chaos matrix can crash every
// network interaction the fleet performs.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"elinda/internal/metrics"
	"elinda/internal/store"
)

// Manifest describes the currently published snapshot. Replicas poll it
// and fetch SnapshotPath when Generation advances past their own.
type Manifest struct {
	// Generation is the store generation the snapshot bytes hold.
	Generation uint64 `json:"generation"`
	// Size is the exact byte length of the snapshot file.
	Size int64 `json:"size"`
	// CRC32 is the IEEE checksum of the whole file — verified by the
	// replica after the (possibly multi-request, resumed) transfer,
	// before install.
	CRC32 uint32 `json:"crc32"`
	// SnapshotPath is the URL path the bytes are served at.
	SnapshotPath string `json:"snapshot_path"`
	// Triples is informational (dashboards).
	Triples int `json:"triples"`
}

// Coordinator publishes a store's snapshots to the read fleet. It is an
// http.Handler serving, under the mount prefix (Register uses /fleet/):
//
//	GET /fleet/manifest        — the Manifest JSON for the newest generation
//	GET /fleet/snapshot/<gen>  — the snapshot bytes (Range supported)
//	GET /fleet/generation      — the current generation as text
//
// Snapshot bytes are built lazily per generation and cached until the
// next write advances the store, so N replicas hydrating concurrently
// serialize the store once.
type Coordinator struct {
	st *store.Store

	mu   sync.Mutex
	gen  uint64
	blob []byte
	crc  uint32

	manifests  metrics.Counter
	snapshots  metrics.Counter
	bytesSent  metrics.Counter
	publishes  metrics.Counter
	publishGen metrics.Gauge
}

// NewCoordinator returns a Coordinator publishing st.
func NewCoordinator(st *store.Store) *Coordinator {
	return &Coordinator{st: st}
}

// publish returns the cached (generation, blob, crc) triple, rebuilding
// it when the store has moved past the cached generation. The snapshot
// is pinned first and its own generation used throughout, so a write
// racing the rebuild merely leaves a slightly stale — never torn —
// publication for the next poll to refresh.
func (c *Coordinator) publish() (uint64, []byte, uint32, error) {
	snap := c.st.Snapshot()
	gen := snap.Generation()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blob != nil && c.gen == gen {
		return c.gen, c.blob, c.crc, nil
	}
	var buf bytes.Buffer
	if err := snap.WriteSnapshot(&buf); err != nil {
		return 0, nil, 0, err
	}
	c.gen = gen
	c.blob = buf.Bytes()
	c.crc = crc32.ChecksumIEEE(c.blob)
	c.publishes.Inc()
	c.publishGen.Set(int64(gen))
	return c.gen, c.blob, c.crc, nil
}

// Register mounts the coordinator's fleet endpoints on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.Handle("/fleet/", c)
}

// ServeHTTP implements http.Handler for the /fleet/ subtree.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasSuffix(r.URL.Path, "/manifest"):
		c.serveManifest(w, r)
	case strings.HasSuffix(r.URL.Path, "/generation"):
		gen, _, _, err := c.publish()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%d\n", gen)
	default:
		if i := strings.LastIndex(r.URL.Path, "/snapshot/"); i >= 0 {
			c.serveSnapshot(w, r, r.URL.Path[i+len("/snapshot/"):])
			return
		}
		http.NotFound(w, r)
	}
}

func (c *Coordinator) serveManifest(w http.ResponseWriter, r *http.Request) {
	gen, blob, crc, err := c.publish()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.manifests.Inc()
	m := Manifest{
		Generation:   gen,
		Size:         int64(len(blob)),
		CRC32:        crc,
		SnapshotPath: "/fleet/snapshot/" + strconv.FormatUint(gen, 10),
		Triples:      c.st.Len(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m)
}

func (c *Coordinator) serveSnapshot(w http.ResponseWriter, r *http.Request, genStr string) {
	want, err := strconv.ParseUint(genStr, 10, 64)
	if err != nil {
		http.Error(w, "bad generation", http.StatusBadRequest)
		return
	}
	gen, blob, _, err := c.publish()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if want != gen {
		// A replica resuming a transfer of a superseded generation must
		// restart from the new manifest, not splice bytes of two
		// different snapshots into one file.
		http.Error(w, fmt.Sprintf("generation %d gone (current %d)", want, gen), http.StatusNotFound)
		return
	}
	c.snapshots.Inc()
	c.bytesSent.Add(uint64(len(blob)))
	// ServeContent provides Range handling (resume) and consistent
	// framing; the name is synthetic and the mod time zero — replicas
	// key freshness on the generation, not on HTTP caching.
	http.ServeContent(w, r, "snapshot.elindsn", time.Time{}, bytes.NewReader(blob))
}

// CoordinatorMetrics is the coordinator's /metrics section.
type CoordinatorMetrics struct {
	PublishedGeneration int64  `json:"published_generation"`
	Publishes           uint64 `json:"publishes"`
	ManifestRequests    uint64 `json:"manifest_requests"`
	SnapshotRequests    uint64 `json:"snapshot_requests"`
	SnapshotBytesSent   uint64 `json:"snapshot_bytes_sent"`
}

// MetricsSnapshot captures the coordinator's counters.
func (c *Coordinator) MetricsSnapshot() CoordinatorMetrics {
	return CoordinatorMetrics{
		PublishedGeneration: c.publishGen.Value(),
		Publishes:           c.publishes.Value(),
		ManifestRequests:    c.manifests.Value(),
		SnapshotRequests:    c.snapshots.Value(),
		SnapshotBytesSent:   c.bytesSent.Value(),
	}
}
