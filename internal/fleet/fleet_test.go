package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"elinda/internal/endpoint"
	"elinda/internal/netsim"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
	"elinda/internal/store"
	"elinda/internal/wal"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

func seedStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New(64)
	_, err := st.Load([]rdf.Triple{
		{S: ex("plato"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("aristotle"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("plato"), P: ex("born"), O: rdf.NewTypedLiteral("-427", rdf.XSDInteger)},
		{S: ex("work1"), P: ex("author"), O: ex("plato")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

const philosophersQuery = `SELECT ?s WHERE { ?s a <http://example.org/Philosopher> . }`

// startCoordinator serves a coordinator for st over httptest.
func startCoordinator(t *testing.T, st *store.Store) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(st)
	mux := http.NewServeMux()
	c.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return c, srv
}

func getBody(t *testing.T, rawURL string) (int, string) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", rawURL, err)
	}
	return resp.StatusCode, string(b)
}

func sparqlURL(base, query string) string {
	return base + "/sparql?query=" + url.QueryEscape(query)
}

func TestReplicaHydratesAndServesIdenticalResults(t *testing.T) {
	st := seedStore(t)
	_, coord := startCoordinator(t, st)

	r := NewReplica(ReplicaOptions{CoordinatorURL: coord.URL, Dir: t.TempDir()})
	promoted, err := r.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatal("first SyncOnce did not promote")
	}
	if !r.IsReady() {
		t.Fatal("replica not ready after promotion")
	}
	if r.Generation() != st.Snapshot().Generation() {
		t.Fatalf("generation = %d, want %d", r.Generation(), st.Snapshot().Generation())
	}

	rep := httptest.NewServer(r.Handler())
	defer rep.Close()
	oracle := httptest.NewServer(endpoint.NewServer(proxy.New(st, proxy.Options{})))
	defer oracle.Close()

	status, got := getBody(t, sparqlURL(rep.URL, philosophersQuery))
	if status != http.StatusOK {
		t.Fatalf("replica status = %d: %s", status, got)
	}
	_, want := getBody(t, sparqlURL(oracle.URL, philosophersQuery))
	if got != want {
		t.Errorf("replica result diverges from oracle:\n got: %s\nwant: %s", got, want)
	}

	// A second sync at the same generation is a no-op.
	promoted, err = r.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if promoted {
		t.Error("SyncOnce promoted without a new generation")
	}
}

func TestReplicaReadyzPhaseTransitions(t *testing.T) {
	st := seedStore(t)
	_, coord := startCoordinator(t, st)

	// A colocated WAL holding one record past the snapshot.
	walDir := t.TempDir()
	w, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(func(rdf.Triple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rdf.Triple{S: ex("socrates"), P: rdf.TypeIRI, O: ex("Philosopher")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReplica(ReplicaOptions{
		CoordinatorURL: coord.URL,
		Dir:            t.TempDir(),
		WALDir:         walDir,
		Warm:           true,
	})
	var mu sync.Mutex
	var phases []string
	r.phaseHook = func(p string) {
		mu.Lock()
		phases = append(phases, p)
		mu.Unlock()
	}
	rep := httptest.NewServer(r.Handler())
	defer rep.Close()

	// Before hydration the probe names the phase it is stuck in.
	status, body := getBody(t, rep.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "snapshot-fetch") {
		t.Fatalf("pre-hydration readyz = %d %q, want 503 naming snapshot-fetch", status, body)
	}

	if _, err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := strings.Join(phases, ",")
	mu.Unlock()
	want := "snapshot-fetch,wal-replay,warming,serving"
	if got != want {
		t.Errorf("phase sequence = %s, want %s", got, want)
	}

	status, body = getBody(t, rep.URL+"/readyz")
	if status != http.StatusOK || !strings.HasPrefix(body, "ready generation=") {
		t.Errorf("post-hydration readyz = %d %q", status, body)
	}

	// The WAL record beyond the snapshot is visible in results.
	status, body = getBody(t, sparqlURL(rep.URL, philosophersQuery))
	if status != http.StatusOK || !strings.Contains(body, "socrates") {
		t.Errorf("replayed record not served: %d %s", status, body)
	}
}

func TestReplicaDrainWindow(t *testing.T) {
	st := seedStore(t)
	_, coord := startCoordinator(t, st)
	r := NewReplica(ReplicaOptions{CoordinatorURL: coord.URL, Dir: t.TempDir()})
	if _, err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := httptest.NewServer(r.Handler())
	defer rep.Close()

	r.BeginDrain()
	status, body := getBody(t, rep.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz = %d %q, want 503 naming draining", status, body)
	}
	// The 503 window applies to the probe only: queries in the drain
	// window still complete.
	status, _ = getBody(t, sparqlURL(rep.URL, philosophersQuery))
	if status != http.StatusOK {
		t.Errorf("query during drain = %d, want 200", status)
	}
}

func TestReplicaResumesTruncatedFetch(t *testing.T) {
	st := seedStore(t)
	_, coord := startCoordinator(t, st)
	tr := netsim.New(nil)
	r := NewReplica(ReplicaOptions{CoordinatorURL: coord.URL, Dir: t.TempDir(), Transport: tr})

	// Op 0 is the manifest fetch, op 1 the snapshot transfer: cut the
	// transfer after 100 bytes. The next round must resume at byte 100,
	// not start over.
	tr.InjectOp(tr.Ops()+1, netsim.Rule{Fault: netsim.FaultTruncate, After: 100})
	promoted, err := r.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatal("not promoted")
	}
	m := r.MetricsSnapshot()
	if m.ResumedBytes != 100 {
		t.Errorf("resumed bytes = %d, want 100", m.ResumedBytes)
	}
	if m.FetchRounds < 2 {
		t.Errorf("fetch rounds = %d, want >= 2", m.FetchRounds)
	}
}

func TestReplicaRejectsCorruptTransfer(t *testing.T) {
	st := seedStore(t)
	_, coord := startCoordinator(t, st)
	dir := t.TempDir()
	r := NewReplica(ReplicaOptions{CoordinatorURL: coord.URL, Dir: dir})

	m, err := r.manifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Plant a full-size garbage partial: the CRC check must throw it
	// away and re-fetch rather than install it.
	garbage := make([]byte, m.Size)
	for i := range garbage {
		garbage[i] = 0xAB
	}
	part := filepath.Join(dir, snapshotName(m.Generation)+".partial")
	if err := os.WriteFile(part, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	promoted, err := r.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !promoted {
		t.Fatal("not promoted")
	}
	if got := r.MetricsSnapshot().FetchRounds; got < 2 {
		t.Errorf("fetch rounds = %d, want >= 2 (CRC reject + clean refetch)", got)
	}
}

func TestCoordinatorRefusesStaleGeneration(t *testing.T) {
	st := seedStore(t)
	c, coord := startCoordinator(t, st)
	gen, _, _, err := c.publish()
	if err != nil {
		t.Fatal(err)
	}
	status, _ := getBody(t, fmt.Sprintf("%s/fleet/snapshot/%d", coord.URL, gen))
	if status != http.StatusOK {
		t.Fatalf("current generation = %d, want 200", status)
	}
	// Advance the store: the old generation's bytes are gone.
	if _, err := st.Add(rdf.Triple{S: ex("zeno"), P: rdf.TypeIRI, O: ex("Philosopher")}); err != nil {
		t.Fatal(err)
	}
	status, body := getBody(t, fmt.Sprintf("%s/fleet/snapshot/%d", coord.URL, gen))
	if status != http.StatusNotFound {
		t.Fatalf("stale generation = %d %q, want 404", status, body)
	}
}

func TestReplicaFollowsGenerations(t *testing.T) {
	st := seedStore(t)
	_, coord := startCoordinator(t, st)
	dir := t.TempDir()
	r := NewReplica(ReplicaOptions{CoordinatorURL: coord.URL, Dir: dir})
	if _, err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	gen1 := r.Generation()

	if _, err := st.Add(rdf.Triple{S: ex("zeno"), P: rdf.TypeIRI, O: ex("Philosopher")}); err != nil {
		t.Fatal(err)
	}
	promoted, err := r.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !promoted || r.Generation() <= gen1 {
		t.Fatalf("promoted=%v generation=%d, want promotion past %d", promoted, r.Generation(), gen1)
	}

	rep := httptest.NewServer(r.Handler())
	defer rep.Close()
	status, body := getBody(t, sparqlURL(rep.URL, philosophersQuery))
	if status != http.StatusOK || !strings.Contains(body, "zeno") {
		t.Errorf("new generation not served: %d %s", status, body)
	}

	// The superseded snapshot file is garbage-collected.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".elindsn") {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) != 1 || snaps[0] != snapshotName(r.Generation()) {
		t.Errorf("snapshot dir after promotion = %v, want only %s", snaps, snapshotName(r.Generation()))
	}
}

// TestReplicaHydrationSurvivesCoordinatorOutage: a refused manifest
// fetch is an error, not a crash, and a later sync succeeds.
func TestReplicaHydrationSurvivesCoordinatorOutage(t *testing.T) {
	st := seedStore(t)
	_, coord := startCoordinator(t, st)
	tr := netsim.New(nil)
	r := NewReplica(ReplicaOptions{CoordinatorURL: coord.URL, Dir: t.TempDir(), Transport: tr})

	u, _ := url.Parse(coord.URL)
	tr.Kill(u.Host)
	if _, err := r.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync against killed coordinator succeeded")
	}
	if r.IsReady() {
		t.Fatal("replica ready without data")
	}
	tr.Restart(u.Host)
	promoted, err := r.SyncOnce(context.Background())
	if err != nil || !promoted {
		t.Fatalf("post-restart sync: promoted=%v err=%v", promoted, err)
	}
	if got := r.MetricsSnapshot().SyncErrors; got != 1 {
		t.Errorf("sync errors = %d, want 1", got)
	}
}
