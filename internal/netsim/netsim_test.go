package netsim

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func backend(t *testing.T, body string) (*httptest.Server, string) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, strings.TrimPrefix(srv.URL, "http://")
}

func get(t *testing.T, tr *Transport, url string, timeout time.Duration) (string, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestPassthrough(t *testing.T) {
	srv, _ := backend(t, "hello fleet")
	tr := New(nil)
	body, err := get(t, tr, srv.URL, time.Second)
	if err != nil || body != "hello fleet" {
		t.Fatalf("got %q, %v", body, err)
	}
	if tr.Ops() != 1 {
		t.Fatalf("ops = %d, want 1", tr.Ops())
	}
}

func TestRefuseOpIsOneShot(t *testing.T) {
	srv, _ := backend(t, "ok")
	tr := New(nil)
	tr.InjectOp(0, Rule{Fault: FaultRefuse})
	if _, err := get(t, tr, srv.URL, time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected refusal, got %v", err)
	}
	if body, err := get(t, tr, srv.URL, time.Second); err != nil || body != "ok" {
		t.Fatalf("second request should pass: %q, %v", body, err)
	}
}

func TestTruncateNeverCompletes(t *testing.T) {
	srv, _ := backend(t, strings.Repeat("x", 1000))
	tr := New(nil)
	tr.InjectOp(0, Rule{Fault: FaultTruncate, After: 100})
	body, err := get(t, tr, srv.URL, time.Second)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want unexpected EOF, got %v (body %d bytes)", err, len(body))
	}
	if len(body) > 100 {
		t.Fatalf("delivered %d bytes past the cut", len(body))
	}
}

func TestTruncateAtExactBodyLengthStillFails(t *testing.T) {
	srv, _ := backend(t, "12345")
	tr := New(nil)
	tr.InjectOp(0, Rule{Fault: FaultTruncate, After: 5})
	if _, err := get(t, tr, srv.URL, time.Second); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("a cut body must not read as complete even at the boundary: %v", err)
	}
}

func TestHangHonorsDeadline(t *testing.T) {
	srv, _ := backend(t, strings.Repeat("y", 1000))
	tr := New(nil)
	tr.InjectOp(0, Rule{Fault: FaultHang, After: 10})
	start := time.Now()
	_, err := get(t, tr, srv.URL, 50*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang outlived the deadline")
	}
}

func TestLatencyDelays(t *testing.T) {
	srv, _ := backend(t, "slow")
	tr := New(nil)
	tr.InjectOp(0, Rule{Fault: FaultLatency, Delay: 30 * time.Millisecond})
	start := time.Now()
	body, err := get(t, tr, srv.URL, time.Second)
	if err != nil || body != "slow" {
		t.Fatalf("got %q, %v", body, err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency not injected: %v", d)
	}
}

func TestKillRefusesAndTerminatesInFlight(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("a", 600))
		if r.URL.Query().Get("stall") != "" {
			w.(http.Flusher).Flush()
			<-release
			io.WriteString(w, "tail")
		}
	}))
	defer srv.Close()
	defer close(release)
	host := strings.TrimPrefix(srv.URL, "http://")

	tr := New(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"?stall=1", nil)
	resp, err := (&http.Client{Transport: tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 600)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}

	tr.Kill(host)
	if _, err := io.ReadAll(resp.Body); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-flight body should die with the host, got %v", err)
	}
	if _, err := get(t, tr, srv.URL, time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("new request to killed host should be refused, got %v", err)
	}

	tr.Restart(host)
	// The handler of the first request may still hold its goroutine;
	// a fresh request must succeed again.
	if body, err := get(t, tr, srv.URL, time.Second); err != nil || len(body) == 0 {
		t.Fatalf("restarted host should serve: %q, %v", body, err)
	}
}

func TestHostRulePersistsUntilCleared(t *testing.T) {
	srv, host := backend(t, "z")
	tr := New(nil)
	tr.SetHostRule(host, Rule{Fault: FaultLatency, Delay: 20 * time.Millisecond})
	for i := 0; i < 2; i++ {
		start := time.Now()
		if _, err := get(t, tr, srv.URL, time.Second); err != nil {
			t.Fatal(err)
		}
		if time.Since(start) < 20*time.Millisecond {
			t.Fatalf("request %d skipped the host rule", i)
		}
	}
	tr.ClearHostRule(host)
	start := time.Now()
	if _, err := get(t, tr, srv.URL, time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 15*time.Millisecond {
		t.Fatal("rule survived ClearHostRule")
	}
}
