// Package netsim is the network seam of the read fleet — the analogue of
// internal/vfs for HTTP traffic. All outbound requests of the router and
// the replica agent flow through a *Transport (an http.RoundTripper
// wrapper); in production it adds nothing but a call counter, and in
// tests it injects the failure modes a fleet must survive:
//
//   - connection refusal (a replica that is down or unreachable)
//   - latency spikes (an overloaded replica, a slow link)
//   - mid-body hangs (a replica that accepted the request and stalled)
//   - truncated responses (a connection cut mid-transfer)
//   - host kill / restart (a crashing replica, including the in-flight
//     responses it was serving when it died)
//
// Like vfs.Mem, every RoundTrip is a numbered call site: a rehearsal run
// measures the op count of a workload, and the chaos matrix then injects
// a fault at each op in turn, so every network interaction of the fleet
// is crashed at least once. Host-level rules (Kill, SetHostRule) persist
// across ops and model a replica that is down or degraded for a stretch
// of time rather than for one call.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrInjected is wrapped by every error a netsim fault produces, so the
// chaos matrix can tell injected failures from real bugs.
var ErrInjected = errors.New("netsim: injected fault")

// Fault selects how an injected fault manifests.
type Fault int

const (
	// FaultNone disables injection.
	FaultNone Fault = iota
	// FaultRefuse fails the RoundTrip immediately, like a dial to a
	// closed port: no bytes reach the server.
	FaultRefuse
	// FaultLatency delays the request by Rule.Delay before forwarding
	// it (canceled early if the request context expires first).
	FaultLatency
	// FaultHang forwards the request, delivers the first Rule.After
	// bytes of the response body, then blocks until the request context
	// is done — the stalled-replica case a deadline must cut off.
	FaultHang
	// FaultTruncate forwards the request, delivers the first Rule.After
	// bytes of the response body, then fails the read — the
	// connection-cut-mid-transfer case that must never surface as a
	// complete response.
	FaultTruncate
)

// String returns a short name for the fault class.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultRefuse:
		return "refuse"
	case FaultLatency:
		return "latency"
	case FaultHang:
		return "hang"
	case FaultTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Rule is one injected fault: the class plus its parameters.
type Rule struct {
	Fault Fault
	// Delay is the injected latency for FaultLatency.
	Delay time.Duration
	// After is the number of response-body bytes delivered before a
	// FaultHang or FaultTruncate bites.
	After int
}

// Transport is the fault-injecting http.RoundTripper. The zero value is
// not usable; construct with New. All methods are safe for concurrent
// use.
type Transport struct {
	base http.RoundTripper

	mu     sync.Mutex
	ops    int
	byOp   map[int]Rule
	byHost map[string]Rule
	down   map[string]bool
	// open tracks in-flight response bodies per host so Kill can
	// terminate them the way a crashing process terminates its
	// connections.
	open map[*faultBody]struct{}
}

// New returns a Transport forwarding to base (nil = a fresh
// http.Transport, NOT the shared http.DefaultTransport, so fleets in
// tests and benchmarks never share a connection pool by accident).
func New(base http.RoundTripper) *Transport {
	if base == nil {
		base = &http.Transport{MaxIdleConnsPerHost: 32}
	}
	return &Transport{
		base:   base,
		byOp:   map[int]Rule{},
		byHost: map[string]Rule{},
		down:   map[string]bool{},
		open:   map[*faultBody]struct{}{},
	}
}

// Ops returns the number of RoundTrips started so far. A fault-free
// rehearsal run measures the matrix width: injecting at every op in
// [0, Ops()) covers every network interaction of the workload.
func (t *Transport) Ops() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// InjectOp arms rule for operation number n (0-based, in the order
// counted by Ops). Op rules are one-shot by construction — each op
// number occurs once — and take precedence over host rules.
func (t *Transport) InjectOp(n int, r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byOp[n] = r
}

// SetHostRule applies rule to every request to host (a "host:port"
// authority as it appears in request URLs) until ClearHostRule. This is
// the persistent-degradation knob: a slow replica is a latency host
// rule, not a thousand op rules.
func (t *Transport) SetHostRule(host string, r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byHost[host] = r
}

// ClearHostRule removes the persistent rule for host.
func (t *Transport) ClearHostRule(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.byHost, host)
}

// Kill marks host dead: every new request to it is refused, and every
// in-flight response body from it fails on its next read — exactly what
// the clients of a crashing replica observe.
func (t *Transport) Kill(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[host] = true
	for b := range t.open {
		if b.host == host {
			b.kill()
		}
	}
}

// Restart brings a killed host back.
func (t *Transport) Restart(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.down, host)
}

// Reset clears every rule and killed host (the op counter keeps
// counting, so previously measured op numbers stay meaningful).
func (t *Transport) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byOp = map[int]Rule{}
	t.byHost = map[string]Rule{}
	t.down = map[string]bool{}
}

// gate assigns the request its op number and resolves the effective
// rule: killed host, then op rule, then host rule.
func (t *Transport) gate(host string) (Rule, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	op := t.ops
	t.ops++
	if t.down[host] {
		return Rule{Fault: FaultRefuse}, true
	}
	if r, ok := t.byOp[op]; ok {
		delete(t.byOp, op)
		return r, r.Fault != FaultNone
	}
	if r, ok := t.byHost[host]; ok {
		return r, r.Fault != FaultNone
	}
	return Rule{}, false
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	rule, faulted := t.gate(host)
	if faulted {
		switch rule.Fault {
		case FaultRefuse:
			return nil, fmt.Errorf("%w: connect %s: connection refused", ErrInjected, host)
		case FaultLatency:
			timer := time.NewTimer(rule.Delay)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-req.Context().Done():
				return nil, fmt.Errorf("%w: latency injection: %v", ErrInjected, req.Context().Err())
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	fb := &faultBody{
		inner:  resp.Body,
		host:   host,
		ctx:    req.Context(),
		remain: -1,
		tr:     t,
	}
	if faulted && (rule.Fault == FaultHang || rule.Fault == FaultTruncate) {
		fb.remain = rule.After
		fb.hang = rule.Fault == FaultHang
		// A body that will be cut can no longer vouch for its framing:
		// drop the length so the only completeness signals left are the
		// ones the fleet must verify itself.
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	t.mu.Lock()
	t.open[fb] = struct{}{}
	t.mu.Unlock()
	resp.Body = fb
	return resp, nil
}

// faultBody wraps a response body: it can cut the stream after a byte
// budget (truncate), stall until the request context dies (hang), or be
// killed asynchronously when its host is.
type faultBody struct {
	inner io.ReadCloser
	host  string
	ctx   context.Context
	tr    *Transport

	mu     sync.Mutex
	remain int  // bytes still deliverable; -1 = unlimited
	hang   bool // true: stall at the budget instead of erroring
	dead   bool // host was killed mid-flight
	closed bool
}

// kill marks the body dead; the transport calls it under its own lock,
// so it must not call back into the transport.
func (b *faultBody) kill() {
	b.mu.Lock()
	b.dead = true
	b.mu.Unlock()
}

func (b *faultBody) Read(p []byte) (int, error) {
	b.mu.Lock()
	if b.dead {
		b.mu.Unlock()
		return 0, fmt.Errorf("%w: host %s killed mid-flight: %w", ErrInjected, b.host, io.ErrUnexpectedEOF)
	}
	remain, hang := b.remain, b.hang
	b.mu.Unlock()

	if remain == 0 {
		if hang {
			// Stall like a wedged replica: nothing arrives until the
			// caller's deadline cuts the request off (or the host dies).
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-b.ctx.Done():
					return 0, fmt.Errorf("%w: hang injection: %w", ErrInjected, b.ctx.Err())
				case <-tick.C:
					b.mu.Lock()
					dead := b.dead
					b.mu.Unlock()
					if dead {
						return 0, fmt.Errorf("%w: host %s killed mid-flight: %w", ErrInjected, b.host, io.ErrUnexpectedEOF)
					}
				}
			}
		}
		return 0, fmt.Errorf("%w: response truncated: %w", ErrInjected, io.ErrUnexpectedEOF)
	}
	if remain > 0 && len(p) > remain {
		p = p[:remain]
	}
	n, err := b.inner.Read(p)
	if remain > 0 {
		b.mu.Lock()
		b.remain -= n
		b.mu.Unlock()
		// The injected cut hides the true end of the stream: a short
		// body that ends inside the budget still counts as cut.
		if err == io.EOF {
			err = fmt.Errorf("%w: response truncated: %w", ErrInjected, io.ErrUnexpectedEOF)
		}
	}
	return n, err
}

func (b *faultBody) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	b.tr.mu.Lock()
	delete(b.tr.open, b)
	b.tr.mu.Unlock()
	return b.inner.Close()
}
