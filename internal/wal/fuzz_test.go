package wal

import (
	"bytes"
	"fmt"
	"testing"

	"elinda/internal/rdf"
)

// fuzzSegmentBytes builds a valid segment (magic + n records, every
// third one a delete) so the fuzzer starts from well-formed input and
// mutates from there.
func fuzzSegmentBytes(n int) []byte {
	b := []byte(segMagic)
	for i := 0; i < n; i++ {
		b = appendRecord(b, rdf.TripleOp{
			Del: i%3 == 2,
			Triple: rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i)),
				P: rdf.NewIRI("http://ex/p"),
				O: rdf.NewLangLiteral(fmt.Sprintf("o%d", i), "en"),
			},
		})
	}
	return b
}

// FuzzWALReplay feeds arbitrary bytes to the segment replay path. The
// contract: it never panics, never errors on corruption (only fn/IO
// errors propagate, and a bytes.Reader has neither), every op it
// does deliver is valid, replay is deterministic, and a valid record
// prefix replays exactly — corruption can only truncate, never
// fabricate or reorder.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzSegmentBytes(3)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-record
	f.Add(fuzzSegmentBytes(0))  // header only
	f.Add([]byte{})
	f.Add([]byte("ELINDWL\x00garbage"))
	f.Add([]byte("not a segment"))
	flipped := append([]byte(nil), valid...)
	flipped[len(segMagic)+2] ^= 0xff // corrupt the first record's header
	f.Add(flipped)
	v1 := append([]byte(segMagicV1), valid[len(segMagic):]...) // v1 header, v2 body
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []rdf.TripleOp
		n, err := replaySegment(bytes.NewReader(data), func(op rdf.TripleOp) error {
			got = append(got, op)
			return nil
		})
		if err != nil {
			t.Fatalf("replaySegment returned an error on pure corruption: %v", err)
		}
		if n != len(got) {
			t.Fatalf("applied count %d != callbacks %d", n, len(got))
		}
		for i, op := range got {
			if err := op.Triple.Validate(); err != nil {
				t.Fatalf("replayed triple %d invalid: %v", i, err)
			}
		}
		// Determinism: a second pass over the same bytes agrees exactly.
		var again []rdf.TripleOp
		n2, err := replaySegment(bytes.NewReader(data), func(op rdf.TripleOp) error {
			again = append(again, op)
			return nil
		})
		if err != nil || n2 != n {
			t.Fatalf("second replay diverged: n=%d vs %d, err=%v", n2, n, err)
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("replay not deterministic at record %d", i)
			}
		}
		// Prefix exactness: for a real segment (valid magic of either
		// version), re-encoding what replay recovered must reproduce a
		// byte-prefix of the input. If it does not, replay fabricated or
		// altered data instead of truncating. Without a magic nothing may
		// replay at all. A v1 segment additionally must never deliver a
		// delete op — delete records did not exist in that format.
		var hdr []byte
		switch {
		case bytes.HasPrefix(data, []byte(segMagic)):
			hdr = []byte(segMagic)
		case bytes.HasPrefix(data, []byte(segMagicV1)):
			hdr = []byte(segMagicV1)
			for _, op := range got {
				if op.Del {
					t.Fatal("v1 segment replayed a delete record")
				}
			}
		default:
			if len(got) != 0 {
				t.Fatalf("replayed %d records from a segment without magic", len(got))
			}
			return
		}
		enc := append([]byte(nil), hdr...)
		for _, op := range got {
			enc = appendRecord(enc, op)
		}
		if len(enc) > len(data) || !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("replayed records are not a byte-prefix of the input (%d records)", len(got))
		}
	})
}

// TestFuzzSeedsReplayExactly pins the valid-prefix guarantee on the
// committed seeds deterministically (the fuzzer only checks whatever
// inputs it happens to explore).
func TestFuzzSeedsReplayExactly(t *testing.T) {
	for n := 0; n <= 4; n++ {
		data := fuzzSegmentBytes(n)
		applied, err := replaySegment(bytes.NewReader(data), func(rdf.TripleOp) error { return nil })
		if err != nil || applied != n {
			t.Fatalf("clean segment with %d records: applied=%d err=%v", n, applied, err)
		}
		// Every truncation point of the final record replays exactly n-1.
		if n > 0 {
			prev := fuzzSegmentBytes(n - 1)
			for cut := len(prev) + 1; cut < len(data); cut++ {
				applied, err := replaySegment(bytes.NewReader(data[:cut]), func(rdf.TripleOp) error { return nil })
				if err != nil || applied != n-1 {
					t.Fatalf("torn at byte %d of %d records: applied=%d err=%v", cut, n, applied, err)
				}
			}
		}
	}
}
