package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzWALReplay when WAL_WRITE_FUZZ_CORPUS=1 is set (run
// after changing the record encoding). It is a no-op otherwise, beyond
// checking that the committed corpus exists and is well-formed.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	valid := fuzzSegmentBytes(3)
	flipped := append([]byte(nil), valid...)
	flipped[len(segMagic)+2] ^= 0xff
	seeds := map[string][]byte{
		"seed-valid":     valid,
		"seed-torn":      valid[:len(valid)-3],
		"seed-empty-seg": fuzzSegmentBytes(0),
		"seed-badmagic":  []byte("ELINDWL\x00garbage"),
		"seed-flipped":   flipped,
	}
	if os.Getenv("WAL_WRITE_FUZZ_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name := range seeds {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("committed fuzz seed missing (regenerate with WAL_WRITE_FUZZ_CORPUS=1): %v", err)
		}
	}
}
