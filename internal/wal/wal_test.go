package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"elinda/internal/rdf"
	"elinda/internal/vfs"
)

func tri(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i)),
		P: rdf.NewIRI("http://ex/p"),
		O: rdf.NewLangLiteral(fmt.Sprintf("object %d", i), "en"),
	}
}

func mustOpen(t *testing.T, fsys vfs.FS, dir string, opts Options) *WAL {
	t.Helper()
	opts.FS = fsys
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func replayAll(t *testing.T, fsys vfs.FS, dir string) []rdf.Triple {
	t.Helper()
	w := mustOpen(t, fsys, dir, Options{})
	defer w.Close()
	var got []rdf.Triple
	if _, err := w.Replay(func(tr rdf.Triple) error {
		got = append(got, tr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{Policy: SyncAlways})
	var want []rdf.Triple
	for i := 0; i < 25; i++ {
		tr := tri(i)
		if err := w.Append(tr); err != nil {
			t.Fatal(err)
		}
		want = append(want, tr)
	}
	// Mixed-shape terms: typed literal, blank node, empty-string literal.
	extra := []rdf.Triple{
		{S: rdf.NewBlank("b1"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")},
		{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral("")},
	}
	if err := w.AppendBatch(extra); err != nil {
		t.Fatal(err)
	}
	want = append(want, extra...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, m, "wal")
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestReplaySurvivesCrashWithoutClose: with SyncAlways every acknowledged
// append survives a power cut even though Close never ran.
func TestReplaySurvivesCrashWithoutClose(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{Policy: SyncAlways})
	for i := 0; i < 10; i++ {
		if err := w.Append(tri(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process dies here.
	got := replayAll(t, m.Crashed(), "wal")
	if len(got) != 10 {
		t.Fatalf("recovered %d of 10 acknowledged records", len(got))
	}
}

// TestTornTailTruncated: garbage after the valid records must not fail
// replay and must not produce extra triples.
func TestTornTailTruncated(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{})
	for i := 0; i < 5; i++ {
		if err := w.Append(tri(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	seg := filepath.Join("wal", segName(1))
	data, err := m.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"half header":     append(append([]byte(nil), data...), 0x03, 0x00),
		"header no body":  append(append([]byte(nil), data...), 0x10, 0, 0, 0, 1, 2, 3, 4),
		"bad crc":         append(append([]byte(nil), data...), 5, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'h', 'e', 'l', 'l', 'o'),
		"huge length":     append(append([]byte(nil), data...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0),
		"zero length":     append(append([]byte(nil), data...), 0, 0, 0, 0, 0, 0, 0, 0),
		"flipped payload": flipLastByte(data),
	}
	for name, torn := range cases {
		m2 := vfs.NewMem()
		m2.WriteFile(seg, torn)
		got := replayAll(t, m2, "wal")
		want := 5
		if name == "flipped payload" {
			want = 4 // the final record itself is the corrupt one
		}
		if len(got) != want {
			t.Errorf("%s: replayed %d records, want %d", name, len(got), want)
		}
	}
}

func flipLastByte(data []byte) []byte {
	b := append([]byte(nil), data...)
	b[len(b)-1] ^= 0xff
	return b
}

// TestTornSegmentDoesNotHideLaterSegments: corruption in a sealed
// segment stops that segment only; later segments still replay. (The
// writer never produces this shape for acknowledged data — sealed
// segments are synced — but replay must stay robust to it.)
func TestTornSegmentDoesNotHideLaterSegments(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{})
	if err := w.Append(tri(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Cut(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(tri(1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Corrupt segment 1's record; segment 2 must still replay.
	seg1 := filepath.Join("wal", segName(1))
	data, err := m.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	m.WriteFile(seg1, flipLastByte(data))
	got := replayAll(t, m, "wal")
	if len(got) != 1 || got[0] != tri(1) {
		t.Fatalf("replay across torn segment: %+v", got)
	}
	// A fully-garbage segment (bad magic) is skipped too.
	m.WriteFile(seg1, []byte("not a wal segment"))
	if got := replayAll(t, m, "wal"); len(got) != 1 {
		t.Fatalf("bad-magic segment not skipped: %d records", len(got))
	}
}

func TestSegmentRotationBySize(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		if err := w.Append(tri(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, err := listSegments(m, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation at 256B segments, got %d segments", len(segs))
	}
	if got := replayAll(t, m, "wal"); len(got) != 20 {
		t.Fatalf("replay across %d segments: %d of 20", len(segs), len(got))
	}
	if st := w.Stats(); st.Rotations != uint64(len(segs)) || st.Appends != 20 {
		t.Fatalf("stats %+v, want %d rotations / 20 appends", st, len(segs))
	}
}

// TestReopenStartsFreshSegment: a reopened WAL never appends into a
// possibly-torn old segment.
func TestReopenStartsFreshSegment(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{})
	if err := w.Append(tri(0)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2 := mustOpen(t, m, "wal", Options{})
	if _, err := w2.Replay(func(rdf.Triple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(tri(1)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	segs, err := listSegments(m, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0] != 1 || segs[1] != 2 {
		t.Fatalf("segments after reopen: %v, want [1 2]", segs)
	}
	if got := replayAll(t, m, "wal"); len(got) != 2 {
		t.Fatalf("replay after reopen: %d records", len(got))
	}
}

func TestCutAndTruncate(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{})
	for i := 0; i < 3; i++ {
		if err := w.Append(tri(i)); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := w.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(tri(3)); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Only the post-cut record remains.
	if got := replayAll(t, m, "wal"); len(got) != 1 || got[0] != tri(3) {
		t.Fatalf("after truncate: %+v", got)
	}
	// A crash right after truncation sees the same state (removal was
	// made durable by SyncDir).
	if got := replayAll(t, m.Crashed(), "wal"); len(got) != 1 {
		t.Fatalf("truncation not durable: %d records", len(got))
	}
}

// TestCutOnEmptyEpoch: Cut with nothing appended returns a boundary that
// truncates all existing segments and keeps none.
func TestCutOnEmptyEpoch(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{})
	if err := w.Append(tri(0)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2 := mustOpen(t, m, "wal", Options{})
	if _, err := w2.Replay(func(rdf.Triple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	cut, err := w2.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if segs, _ := listSegments(m, "wal"); len(segs) != 0 {
		t.Fatalf("segments after empty-epoch truncate: %v", segs)
	}
}

// TestAppendFailureRotates: after a failed append the WAL abandons the
// torn segment; the next append lands in a fresh one and replay sees
// every acknowledged record exactly once.
func TestAppendFailureRotates(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{Policy: SyncAlways})
	if err := w.Append(tri(0)); err != nil {
		t.Fatal(err)
	}
	m.InjectFault(m.Ops(), vfs.FaultShortWrite)
	if err := w.Append(tri(1)); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append during fault: %v", err)
	}
	if err := w.Append(tri(2)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got := replayAll(t, m, "wal")
	if len(got) != 2 || got[0] != tri(0) || got[1] != tri(2) {
		t.Fatalf("after torn append: %+v", got)
	}
}

func TestReplayAfterAppendRejected(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{})
	defer w.Close()
	if err := w.Append(tri(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(func(rdf.Triple) error { return nil }); err == nil {
		t.Fatal("Replay after Append should fail")
	}
}

func TestReplayCallbackError(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{})
	for i := 0; i < 5; i++ {
		if err := w.Append(tri(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	w2 := mustOpen(t, m, "wal", Options{})
	defer w2.Close()
	boom := errors.New("boom")
	n := 0
	applied, err := w2.Replay(func(rdf.Triple) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || applied != 2 {
		t.Fatalf("callback error: applied=%d err=%v", applied, err)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err := w.Append(tri(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := replayAll(t, m.Crashed(), "wal"); len(got) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced the record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	w.Close()
}

// TestSyncOffCloseDurable: even with sync off, Close seals the log.
func TestSyncOffCloseDurable(t *testing.T) {
	m := vfs.NewMem()
	w := mustOpen(t, m, "wal", Options{Policy: SyncOff})
	for i := 0; i < 4; i++ {
		if err := w.Append(tri(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, m.Crashed(), "wal"); len(got) != 4 {
		t.Fatalf("Close under SyncOff lost records: %d of 4", len(got))
	}
	if err := w.Append(tri(9)); err == nil {
		t.Fatal("append after Close should fail")
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	m := vfs.NewMem()
	if err := m.MkdirAll("wal"); err != nil {
		t.Fatal(err)
	}
	m.WriteFile("wal/kb.snap.tmp", []byte("stale half-written snapshot"))
	w := mustOpen(t, m, "wal", Options{})
	w.Close()
	names, err := m.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "kb.snap.tmp" {
			t.Fatal("Open left the stale temp file behind")
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"off", SyncOff}} {
		got, err := ParseSyncPolicy(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Fatalf("round trip %q -> %q", c.in, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestSegNameRoundTrip(t *testing.T) {
	for _, idx := range []uint64{1, 42, 1 << 40} {
		got, ok := parseSegName(segName(idx))
		if !ok || got != idx {
			t.Fatalf("parseSegName(segName(%d)) = %d, %v", idx, got, ok)
		}
	}
	for _, bad := range []string{"wal-xyz.log", "kb.snap", "wal-0000000000000001.tmp", ""} {
		if _, ok := parseSegName(bad); ok {
			t.Fatalf("parseSegName(%q) accepted", bad)
		}
	}
}

// TestOSBackend runs a round trip against the real filesystem.
func TestOSBackend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w := mustOpen(t, vfs.OS, dir, Options{Policy: SyncAlways})
	for i := 0; i < 8; i++ {
		if err := w.Append(tri(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, vfs.OS, dir); len(got) != 8 {
		t.Fatalf("OS round trip: %d of 8", len(got))
	}
}
