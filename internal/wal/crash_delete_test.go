package wal_test

// The delete-aware crash matrix: the PR-7 matrix drove single-triple
// inserts; this one drives the live mutation path — multi-op deltas
// through Store.Apply, mixing inserts, deletes and delete-then-reinsert
// batches — against the fault-injecting filesystem and crashes at every
// counted IO point.
//
// The invariants change shape with batches. A torn batch write can
// leave a durable prefix of the batch's records (the writer seals the
// segment and rotates after a failed write, so the garbage never hides
// later acknowledged data), which means the recovered op sequence is no
// longer simply "a prefix of the acknowledged ops". The precise
// statement, checked exactly below:
//
//  1. Decomposition: the recovered op sequence is a concatenation, in
//     submission order, of per-batch prefixes of the attempted
//     effective-op batches. Under SyncAlways an acknowledged batch must
//     contribute its whole prefix — durability before acknowledgement.
//  2. Consistency: replaying the recovered ops onto the recovered
//     snapshot yields exactly the survivor sequence a reference model
//     predicts from those same ops.
//  3. Determinism: recovering twice from the same crash image yields
//     byte-identical store snapshots.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
	"elinda/internal/vfs"
	"elinda/internal/wal"
)

// opsScript is the deterministic raw delta sequence: every index
// inserts its triple, every third batch also deletes an earlier triple,
// every seventh deletes and re-inserts one (a re-log move), and every
// fifth index is followed by a standalone delete delta.
func opsScript() [][]rdf.TripleOp {
	var batches [][]rdf.TripleOp
	for i := 0; i < crashInserts; i++ {
		b := []rdf.TripleOp{rdf.Insert(crashTriple(i))}
		if i%3 == 2 {
			b = append(b, rdf.Delete(crashTriple(i-2)))
		}
		if i%7 == 6 {
			b = append(b, rdf.Delete(crashTriple(i-5)), rdf.Insert(crashTriple(i-5)))
		}
		batches = append(batches, b)
		if i%5 == 4 {
			batches = append(batches, []rdf.TripleOp{rdf.Delete(crashTriple(i - 4))})
		}
	}
	return batches
}

// opsModel mirrors the store's membership semantics: an ordered
// survivor list plus the effective-op reduction Apply performs (and
// therefore the exact record sequence it hands to the WAL).
type opsModel struct {
	order []rdf.Triple
	seen  map[rdf.Triple]bool
}

func newOpsModel() *opsModel { return &opsModel{seen: make(map[rdf.Triple]bool)} }

// effective reduces a raw delta to the ops Apply would log, evaluated
// against the model state plus the delta's own earlier ops.
func (m *opsModel) effective(ops []rdf.TripleOp) []rdf.TripleOp {
	pending := make(map[rdf.Triple]bool)
	var eff []rdf.TripleOp
	for _, op := range ops {
		present, overridden := pending[op.Triple]
		if !overridden {
			present = m.seen[op.Triple]
		}
		if op.Del != present {
			continue
		}
		eff = append(eff, op)
		pending[op.Triple] = !op.Del
	}
	return eff
}

// apply mutates the model with ops that are already effective in
// sequence (deletes of present triples, inserts of absent ones).
func (m *opsModel) apply(ops []rdf.TripleOp) {
	for _, op := range ops {
		if op.Del {
			delete(m.seen, op.Triple)
			for i, t := range m.order {
				if t == op.Triple {
					m.order = append(m.order[:i], m.order[i+1:]...)
					break
				}
			}
		} else {
			m.seen[op.Triple] = true
			m.order = append(m.order, op.Triple)
		}
	}
}

// step applies one replayed op if it is effective (replay hands back
// ops that were effective when logged; deletes of snapshot-absent
// triples can still occur when the snapshot postdates the record).
func (m *opsModel) step(op rdf.TripleOp) {
	if op.Del == m.seen[op.Triple] {
		m.apply([]rdf.TripleOp{op})
	}
}

// crashOpsWorkload runs the mutation workload on m and returns the
// attempted effective batches in submission order plus which of them
// were acknowledged. Failed Applies are tolerated; the WAL is never
// closed — the process dies mid-flight.
func crashOpsWorkload(m *vfs.Mem, policy wal.SyncPolicy) (batches [][]rdf.TripleOp, acked []bool) {
	w, err := wal.Open(crashDir, wal.Options{FS: m, Policy: policy, SegmentBytes: 512})
	if err != nil {
		return nil, nil
	}
	st := store.New(0)
	st.AttachWAL(w)
	model := newOpsModel()
	for i, raw := range opsScript() {
		eff := model.effective(raw)
		_, err := st.Apply(store.DeltaOf(raw...))
		ok := err == nil
		if ok {
			model.apply(eff)
		}
		batches = append(batches, eff)
		acked = append(acked, ok)
		if i == 13 || i == 27 {
			// Snapshot mid-stream — the store may hold live tombstones
			// here, which persistence must serialize through the filtered
			// log exactly like a tombstone-free store.
			_ = st.SaveSnapshotFS(m, crashSnapshot)
		}
	}
	return batches, acked
}

// crashRecoverOps performs the mutation-path recovery sequence
// (snapshot load → ReplayOps → Apply per record) and returns the
// recovered store, the pre-replay survivor sequence, and the replayed
// op sequence.
func crashRecoverOps(t *testing.T, m *vfs.Mem, desc string) (*store.Store, []rdf.Triple, []rdf.TripleOp) {
	t.Helper()
	var st *store.Store
	if _, err := m.Size(crashSnapshot); err == nil {
		st, err = store.OpenSnapshotFS(m, crashSnapshot)
		if err != nil {
			t.Fatalf("%s: durable snapshot failed to load: %v", desc, err)
		}
	} else {
		st = store.New(0)
	}
	pre := storedTriples(st)
	w, err := wal.Open(crashDir, wal.Options{FS: m})
	if err != nil {
		t.Fatalf("%s: reopening WAL: %v", desc, err)
	}
	defer w.Close()
	var ops []rdf.TripleOp
	if _, err := w.ReplayOps(func(op rdf.TripleOp) error {
		ops = append(ops, op)
		_, err := st.Apply(store.DeltaOf(op))
		return err
	}); err != nil {
		t.Fatalf("%s: replay: %v", desc, err)
	}
	return st, pre, ops
}

// opsDecomposable checks invariant 1 exactly: recovered must split into
// per-batch prefixes in batch order. strictAcked additionally forces
// acknowledged batches to contribute their full op list (SyncAlways).
// Exhaustive DP, not greedy — re-log batches repeat earlier ops, so an
// earliest-match walk could reject a valid decomposition.
func opsDecomposable(recovered []rdf.TripleOp, batches [][]rdf.TripleOp, acked []bool, strictAcked bool) bool {
	memo := make(map[[2]int]bool)
	var feasible func(b, r int) bool
	feasible = func(b, r int) bool {
		if b == len(batches) {
			return r == len(recovered)
		}
		key := [2]int{b, r}
		if v, ok := memo[key]; ok {
			return v
		}
		batch := batches[b]
		maxK := 0
		for maxK < len(batch) && r+maxK < len(recovered) && recovered[r+maxK] == batch[maxK] {
			maxK++
		}
		lo := 0
		if strictAcked && acked[b] {
			lo = len(batch)
		}
		res := false
		for k := lo; k <= maxK; k++ {
			if feasible(b+1, r+k) {
				res = true
				break
			}
		}
		memo[key] = res
		return res
	}
	return feasible(0, 0)
}

func assertOpsRecovery(t *testing.T, desc string, m *vfs.Mem, batches [][]rdf.TripleOp, acked []bool, policy wal.SyncPolicy) {
	t.Helper()
	st, pre, ops := crashRecoverOps(t, m, desc)

	// 1. Decomposition against the attempted batch sequence. A snapshot
	// save truncates the log at a batch boundary, so the replayed ops
	// cover a batch suffix; the snapshot must account for exactly the
	// skipped prefix. Candidate split points are the batch counts whose
	// model state reproduces the pre-replay survivors (truncation can
	// fail partway, so the actual split may precede the snapshot point —
	// re-replaying already-covered records is legal as long as the batch
	// structure holds).
	starts := snapshotStarts(batches, acked, pre)
	if len(starts) == 0 {
		t.Fatalf("%s: pre-replay snapshot state (%d survivors) matches no batch prefix", desc, len(pre))
	}
	ok := false
	for _, b0 := range starts {
		if opsDecomposable(ops, batches[b0:], acked[b0:], policy == wal.SyncAlways) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("%s: recovered %d ops do not decompose into per-batch prefixes of the %d attempted batches (starts %v)",
			desc, len(ops), len(batches), starts)
	}

	// 2. Model consistency: snapshot survivors + replayed ops must
	// predict the recovered store exactly, in order.
	model := newOpsModel()
	model.apply(insertOps(pre))
	for _, op := range ops {
		model.step(op)
	}
	got := storedTriples(st)
	if len(got) != len(model.order) {
		t.Fatalf("%s: recovered %d survivors, model predicts %d", desc, len(got), len(model.order))
	}
	for i := range got {
		if got[i] != model.order[i] {
			t.Fatalf("%s: survivor %d = %v, model predicts %v", desc, i, got[i], model.order[i])
		}
	}

	// 3. Determinism: a second recovery from the same image is
	// byte-identical.
	st2, _, _ := crashRecoverOps(t, m, desc+"/again")
	var a, b bytes.Buffer
	if err := st.WriteSnapshot(&a); err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	if err := st2.WriteSnapshot(&b); err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("%s: two recoveries from one crash image diverged", desc)
	}
}

// snapshotStarts returns the candidate replay start points: every batch
// count up to the latest batch prefix whose acked-only model state
// reproduces the pre-replay survivor sequence. The snapshot pins that
// latest point; replay may start anywhere at or before it, because a
// failed truncation leaves older (already snapshot-covered) segments
// behind and replay legitimately re-applies them.
func snapshotStarts(batches [][]rdf.TripleOp, acked []bool, pre []rdf.Triple) []int {
	snapPoint := -1
	model := newOpsModel()
	matches := func() bool {
		if len(model.order) != len(pre) {
			return false
		}
		for i := range pre {
			if model.order[i] != pre[i] {
				return false
			}
		}
		return true
	}
	if matches() {
		snapPoint = 0
	}
	for b, batch := range batches {
		if acked[b] {
			model.apply(batch)
		}
		if matches() {
			snapPoint = b + 1
		}
	}
	if snapPoint < 0 {
		return nil
	}
	starts := make([]int, 0, snapPoint+1)
	// Latest first: the common case is a clean truncation at the
	// snapshot point.
	for b0 := snapPoint; b0 >= 0; b0-- {
		starts = append(starts, b0)
	}
	return starts
}

func insertOps(ts []rdf.Triple) []rdf.TripleOp {
	ops := make([]rdf.TripleOp, len(ts))
	for i, t := range ts {
		ops[i] = rdf.Insert(t)
	}
	return ops
}

// TestCrashMatrixDeletes is the exhaustive fault sweep over the
// mutation workload: fault modes × sync policies × every IO point.
func TestCrashMatrixDeletes(t *testing.T) {
	policies := []wal.SyncPolicy{wal.SyncAlways, wal.SyncOff}
	modes := []struct {
		name string
		mode vfs.FaultMode
	}{
		{"transient-error", vfs.FaultError},
		{"disk-gone", vfs.FaultErrorFrom},
		{"short-write", vfs.FaultShortWrite},
	}
	for _, policy := range policies {
		rehearsal := vfs.NewMem()
		batches, acked := crashOpsWorkload(rehearsal, policy)
		for i, ok := range acked {
			if !ok {
				t.Fatalf("fault-free %v workload failed batch %d", policy, i)
			}
		}
		width := rehearsal.Ops()
		if width < 50 {
			t.Fatalf("matrix width %d is implausibly small — is the workload going through vfs?", width)
		}
		assertOpsRecovery(t, fmt.Sprintf("%v/fault-free", policy), rehearsal.Crashed(), batches, acked, policy)

		for _, mode := range modes {
			for op := 0; op < width; op++ {
				desc := fmt.Sprintf("%v/%s/op%d", policy, mode.name, op)
				m := vfs.NewMem()
				m.InjectFault(op, mode.mode)
				batches, acked := crashOpsWorkload(m, policy)
				assertOpsRecovery(t, desc, m.Crashed(), batches, acked, policy)
			}
		}
	}
}

// TestReplayRejectsDeleteRecords: the insert-only Replay must refuse a
// log holding delete records rather than resurrect deleted triples by
// skipping them.
func TestReplayRejectsDeleteRecords(t *testing.T) {
	m := vfs.NewMem()
	w, err := wal.Open(crashDir, wal.Options{FS: m, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendOps([]rdf.TripleOp{
		rdf.Insert(crashTriple(0)),
		rdf.Delete(crashTriple(0)),
	}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := wal.Open(crashDir, wal.Options{FS: m})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, err = w2.Replay(func(rdf.Triple) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "delete") {
		t.Fatalf("Replay over a log with delete records: err = %v, want delete-record refusal", err)
	}
}
