package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"time"

	"elinda/internal/rdf"
)

// Replay reads every decodable record in the log in append order and
// hands each insertion to fn. It is the insert-only view of ReplayOps:
// a log holding delete records (written through AppendOps by the live
// mutation path) aborts with an error, because silently dropping
// deletes would resurrect deleted triples. Recovery paths should prefer
// ReplayOps.
func (w *WAL) Replay(fn func(rdf.Triple) error) (int, error) {
	return w.ReplayOps(func(op rdf.TripleOp) error {
		if op.Del {
			return errors.New("wal: log contains delete records; recover with ReplayOps")
		}
		return fn(op.Triple)
	})
}

// ReplayOps reads every decodable record in the log in append order and
// hands each mutation op to fn. It must run before the first append
// (replay feeds the recovered store; appending first would interleave
// epochs).
//
// Torn tails are tolerated by construction, not by flag: within a
// segment, replay stops at the first record that fails its length,
// CRC or decode check and moves on to the next segment. That is safe —
// never skips acknowledged data — because the writer seals (fsyncs)
// a segment before creating its successor and never appends to a
// segment after a failed write, so any garbage is strictly after the
// last acknowledged record of its segment. A segment with a bad or
// missing header is skipped the same way (a crash between segment
// create and the first record sync can leave one).
//
// An error from fn aborts the replay and is returned as-is; IO errors
// reading a segment abort as well (unlike corruption, an unreadable
// file is a real failure). The count of applied records is returned in
// both cases.
func (w *WAL) ReplayOps(fn func(rdf.TripleOp) error) (int, error) {
	w.mu.Lock()
	if w.replayed {
		w.mu.Unlock()
		return 0, errors.New("wal: replay after append")
	}
	w.replayed = true
	fs, dir := w.fs, w.dir
	w.mu.Unlock()

	segs, err := listSegments(fs, dir)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	applied := 0
	// Replay statistics feed the /metrics WAL section: boot dashboards
	// read them to see how much recovery work each restart did.
	record := func() {
		w.mu.Lock()
		w.stats.ReplayedRecords = uint64(applied)
		w.stats.ReplayDuration = time.Since(start)
		w.mu.Unlock()
	}
	for _, idx := range segs {
		name := filepath.Join(dir, segName(idx))
		f, err := fs.Open(name)
		if err != nil {
			record()
			return applied, fmt.Errorf("wal: replaying %s: %w", name, err)
		}
		n, err := replaySegment(f, fn)
		f.Close()
		applied += n
		if err != nil {
			record()
			return applied, err
		}
	}
	record()
	return applied, nil
}

// replaySegment applies the valid record prefix of one segment.
// Corruption ends the segment silently; only fn errors and read errors
// propagate. The segment's format version bounds the record kinds it may
// legitimately hold: a delete record inside a v1 segment is corruption.
func replaySegment(r io.Reader, fn func(rdf.TripleOp) error) (int, error) {
	br := newByteReader(r)
	var magic [len(segMagic)]byte
	if !br.full(magic[:]) {
		return 0, br.err
	}
	maxKind := byte(recDel)
	switch string(magic[:]) {
	case segMagic:
	case segMagicV1:
		maxKind = recAdd
	default:
		return 0, nil // foreign or torn header: skip the segment
	}
	applied := 0
	var hdr [8]byte
	for {
		if !br.full(hdr[:]) {
			return applied, br.err
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxRecordBytes {
			return applied, nil // implausible length: torn or corrupt tail
		}
		payload := make([]byte, n)
		if !br.full(payload) {
			return applied, br.err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return applied, nil
		}
		op, err := decodeRecord(payload, maxKind)
		if err != nil {
			return applied, nil
		}
		if err := fn(op); err != nil {
			return applied, err
		}
		applied++
	}
}

// byteReader wraps an io.Reader with a full-or-nothing read helper that
// distinguishes clean EOF / torn tail (err == nil) from real IO errors.
type byteReader struct {
	r   io.Reader
	err error
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

// full reads exactly len(p) bytes. It returns false at EOF or on a short
// read (torn tail — err stays nil) and on IO errors (err is set).
func (b *byteReader) full(p []byte) bool {
	_, err := io.ReadFull(b.r, p)
	switch {
	case err == nil:
		return true
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return false
	default:
		b.err = err
		return false
	}
}
