// Package wal implements eLinda's write-ahead log: the durability gap
// between binary snapshots (PR 5). Every triple insertion is appended to
// an on-disk, CRC-checked record stream before the store acknowledges
// it, so a crash between snapshots loses nothing the client was told
// succeeded. Recovery replays the log on top of the last snapshot;
// replay is idempotent (duplicate inserts no-op in the store), which is
// what lets the snapshot save truncate the log lazily — segments are
// removed only after the new snapshot is durably published, and a crash
// anywhere in between merely replays a few extra records.
//
// Layout: the log is a directory of segment files
//
//	wal-0000000000000001.log, wal-0000000000000002.log, ...
//
// each starting with an 8-byte magic ("ELINDWL" + version byte) and
// holding length-prefixed records:
//
//	u32  payload length (little-endian)
//	u32  CRC-32 (IEEE) of the payload
//	[..] payload: record kind byte + the term-level triple
//
// Records carry term-level triples (not dictionary IDs): IDs are
// assigned by the in-memory dictionary at replay time, so the log stays
// valid across snapshots, compactions and dictionary rebuilds.
//
// Torn tails are expected, not fatal: a power cut can leave a partial
// record at the end of the active segment, and a failed append leaves a
// partial record mid-directory (the writer never appends to a segment
// after a failed write — it rotates). Replay therefore stops a segment
// at the first bad record and continues with the next segment; full
// (rotated) segments are always synced before a newer segment is
// created, so the valid records always form a prefix of the
// acknowledged write sequence.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"elinda/internal/rdf"
	"elinda/internal/vfs"
)

const (
	// segMagic opens every segment file; the final byte is the format
	// version, bumped on incompatible changes. Version 2 added delete
	// records (recDel); version-1 segments hold only insertions and
	// still replay — a v1 segment claiming a delete record is treated
	// as corruption.
	segMagic   = "ELINDWL\x02"
	segMagicV1 = "ELINDWL\x01"
	// segPrefix/segSuffix frame segment file names; the 16 hex digits in
	// between are the segment index, so lexicographic order is replay
	// order.
	segPrefix = "wal-"
	segSuffix = ".log"
	// maxRecordBytes bounds a single record payload; anything larger in
	// the file is corruption, not data (a triple of three multi-megabyte
	// terms has no business in the KB).
	maxRecordBytes = 1 << 24

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 64 << 20
	// DefaultSyncInterval is the flush cadence for SyncInterval when
	// Options leaves Interval zero.
	DefaultSyncInterval = 100 * time.Millisecond
)

// Record kinds: one triple insertion (since v1) or deletion (since v2).
const (
	recAdd = 1
	recDel = 2
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged write is
	// durable. This is the policy the crash matrix proves exact recovery
	// for, and the default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.Interval): a crash loses
	// at most the last interval of acknowledged writes.
	SyncInterval
	// SyncOff never fsyncs on the append path (rotation and Close still
	// sync): fastest, bounded loss of the active segment's tail.
	SyncOff
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Options configures a WAL.
type Options struct {
	// FS is the filesystem seam (nil = vfs.OS). Tests inject vfs.Mem
	// here to run the crash matrix.
	FS vfs.FS
	// Policy selects append durability (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval flush cadence (0 = DefaultSyncInterval).
	Interval time.Duration
	// SegmentBytes is the rotation threshold (0 = DefaultSegmentBytes).
	SegmentBytes int64
}

// Stats counts WAL activity for the metrics endpoint and the bench
// harness.
type Stats struct {
	// Appends is the number of records acknowledged.
	Appends uint64 `json:"appends"`
	// Syncs is the number of fsync calls issued on segment files.
	Syncs uint64 `json:"syncs"`
	// Rotations counts segment rollovers (including snapshot cuts).
	Rotations uint64 `json:"rotations"`
	// ActiveSegment is the index of the segment currently appended to
	// (0 before the first append).
	ActiveSegment uint64 `json:"active_segment"`
	// ActiveBytes is the size of the active segment.
	ActiveBytes int64 `json:"active_bytes"`
	// Checkpoints counts TruncateBefore calls — one per durably
	// published snapshot that folded this log's records in.
	Checkpoints uint64 `json:"checkpoints"`
	// LastCheckpointSegment is the cut boundary of the most recent
	// checkpoint: every segment below it has been folded into a snapshot
	// and removed. Together with ActiveSegment it bounds the write-side
	// lag a fleet dashboard needs: segments in
	// [LastCheckpointSegment, ActiveSegment] hold records no snapshot
	// covers yet.
	LastCheckpointSegment uint64 `json:"last_checkpoint_segment"`
	// ReplayedRecords and ReplayDuration describe the boot-time recovery
	// pass (zero when the process started from a clean checkpoint).
	ReplayedRecords uint64        `json:"replayed_records"`
	ReplayDuration  time.Duration `json:"replay_ns"`
}

// WAL is an append-only, segmented, CRC-checked triple log. All methods
// are safe for concurrent use; appends serialize internally.
type WAL struct {
	fs   vfs.FS
	dir  string
	opts Options

	mu         sync.Mutex
	active     vfs.File
	activeIdx  uint64
	activeSize int64
	nextIdx    uint64
	// broken marks the active segment after a failed or partial append:
	// its tail may hold a torn record, so the next append rotates to a
	// fresh segment instead of writing after garbage.
	broken   bool
	dirty    bool
	lastSync time.Time
	replayed bool
	closed   bool
	stats    Stats

	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open prepares dir as a WAL directory: creates it if needed, sweeps
// stale *.tmp files, and indexes the existing segments for Replay. New
// appends go to a fresh segment created lazily on the first Append, so
// Open never writes into files a crash may have torn.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", dir, err)
	}
	if _, err := vfs.SweepTemp(opts.FS, dir); err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", dir, err)
	}
	segs, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{fs: opts.FS, dir: dir, opts: opts, nextIdx: 1}
	if n := len(segs); n > 0 {
		w.nextIdx = segs[n-1] + 1
	}
	if opts.Policy == SyncInterval {
		w.stopFlush = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(fsys vfs.FS, dir string) ([]uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []uint64
	for _, name := range names {
		idx, ok := parseSegName(name)
		if ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func segName(idx uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, idx, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+16+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var idx uint64
	if _, err := fmt.Sscanf(name[len(segPrefix):len(segPrefix)+16], "%016x", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// Dir returns the WAL directory.
func (w *WAL) Dir() string { return w.dir }

// Stats returns a snapshot of the activity counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.ActiveSegment = w.activeIdx
	s.ActiveBytes = w.activeSize
	return s
}

// flushLoop is the SyncInterval background flusher.
func (w *WAL) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && w.active != nil && !w.broken {
				w.syncActiveLocked()
			}
			w.mu.Unlock()
		}
	}
}

// syncActiveLocked fsyncs the active segment; callers hold mu.
func (w *WAL) syncActiveLocked() error {
	w.stats.Syncs++
	if err := w.active.Sync(); err != nil {
		w.broken = true
		return fmt.Errorf("wal: syncing %s: %w", segName(w.activeIdx), err)
	}
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// rotateLocked seals the active segment (sync + close) and opens the
// next one. On any failure the WAL stays on the old (possibly broken)
// segment and the error propagates — an append that cannot reach a
// clean segment must not acknowledge.
func (w *WAL) rotateLocked() error {
	if w.active != nil {
		// Seal the outgoing segment before a newer one can exist: full
		// segments are always durable, so only the newest segment can
		// have a torn or missing tail — that is what makes recovery a
		// prefix of the acknowledged sequence.
		//
		// A broken segment is sealed only under SyncOff. There, every
		// complete record was acknowledged (appends don't sync, so a
		// write either fully succeeded and acked or left a torn CRC-dead
		// tail), and the segment holds acked records no append ever
		// synced — sealing is required and safe. Under syncing policies
		// the opposite holds on both counts: every acked record already
		// reached disk with its own append, and the segment may end in a
		// complete record whose fsync failed — written, valid, but
		// reported failed to the client. Syncing now would make that
		// phantom write durable, so the segment is abandoned unsynced.
		if !w.broken || w.opts.Policy == SyncOff {
			if err := w.syncActiveLocked(); err != nil {
				return err
			}
		}
		w.active.Close()
		w.active = nil
		w.activeSize = 0
	}
	name := filepath.Join(w.dir, segName(w.nextIdx))
	f, err := w.fs.Create(name)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", name, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing %s header: %w", name, err)
	}
	// The segment's directory entry must be durable before any record in
	// it is acknowledged; one directory sync per rotation is cheap.
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing %s: %w", w.dir, err)
	}
	w.active = f
	w.activeIdx = w.nextIdx
	w.nextIdx++
	w.activeSize = int64(len(segMagic))
	w.broken = false
	w.dirty = true // the magic is unsynced until the first record syncs
	w.stats.Rotations++
	return nil
}

// Append logs one triple insertion. When it returns nil the record is as
// durable as the sync policy promises (SyncAlways: on stable storage).
func (w *WAL) Append(t rdf.Triple) error { return w.AppendOps([]rdf.TripleOp{rdf.Insert(t)}) }

// AppendBatch logs a batch of insertions; see AppendOps for the batch
// durability and failure semantics.
func (w *WAL) AppendBatch(ts []rdf.Triple) error {
	if len(ts) == 0 {
		return nil
	}
	ops := make([]rdf.TripleOp, len(ts))
	for i, t := range ts {
		ops[i] = rdf.Insert(t)
	}
	return w.AppendOps(ops)
}

// AppendOps logs a batch of mutations (insertions and deletions) as
// consecutive records with one durability point at the end — under
// SyncAlways that is one fsync for the whole batch, which is what makes
// bulk loads and multi-op update requests affordable.
//
// Failure semantics are per-batch, not per-record: on error none of the
// batch is acknowledged, but (like a timed-out commit) the outcome on
// disk is unresolved — a torn batch write can leave a prefix of the
// batch as complete records, and under SyncOff segment sealing may later
// make that prefix durable. Single-record appends do not have this
// ambiguity; callers that need the strict recovered-equals-prefix-of-
// acknowledged guarantee after an append error should treat a failed
// batch as "state unknown" and re-check after recovery.
func (w *WAL) AppendOps(ops []rdf.TripleOp) error {
	if len(ops) == 0 {
		return nil
	}
	var buf []byte
	for _, op := range ops {
		buf = appendRecord(buf, op)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: append on closed log")
	}
	w.replayed = true // appending forecloses Replay
	if w.active == nil || w.broken || w.activeSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := w.active.Write(buf)
	w.activeSize += int64(n)
	if err != nil || n != len(buf) {
		w.broken = true
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(buf))
		}
		return fmt.Errorf("wal: appending to %s: %w", segName(w.activeIdx), err)
	}
	w.dirty = true
	switch w.opts.Policy {
	case SyncAlways:
		if err := w.syncActiveLocked(); err != nil {
			return err
		}
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.Interval {
			if err := w.syncActiveLocked(); err != nil {
				return err
			}
		}
	}
	w.stats.Appends += uint64(len(ops))
	return nil
}

// Sync forces the active segment to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil || !w.dirty {
		return nil
	}
	return w.syncActiveLocked()
}

// Cut seals the active segment and returns the index of the first
// segment of the new epoch: every record appended before the Cut lives
// in a segment with index < cut, every later one in index >= cut. The
// snapshot saver calls Cut under the store's writer lock, writes the
// snapshot, and hands cut to TruncateBefore once the snapshot is
// durably published.
func (w *WAL) Cut() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: cut on closed log")
	}
	if w.active == nil {
		// Nothing appended this epoch: the boundary is wherever the next
		// segment would start.
		return w.nextIdx, nil
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.activeIdx, nil
}

// TruncateBefore removes every segment with index < cut — called after
// the snapshot covering those records is durably published. Removal is
// safe to crash anywhere: replay of a not-yet-removed segment is
// idempotent against the snapshot.
func (w *WAL) TruncateBefore(cut uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	w.stats.Checkpoints++
	w.stats.LastCheckpointSegment = cut
	removed := false
	for _, idx := range segs {
		if idx >= cut || (w.active != nil && idx == w.activeIdx) {
			continue
		}
		if err := w.fs.Remove(filepath.Join(w.dir, segName(idx))); err != nil {
			return fmt.Errorf("wal: truncating %s: %w", segName(idx), err)
		}
		removed = true
	}
	if removed {
		if err := w.fs.SyncDir(w.dir); err != nil {
			return fmt.Errorf("wal: truncating %s: %w", w.dir, err)
		}
	}
	return nil
}

// Close syncs and closes the active segment and stops the background
// flusher. The WAL rejects appends afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.active != nil {
		// Same sealing rule as rotation: see rotateLocked.
		if w.dirty && (!w.broken || w.opts.Policy == SyncOff) {
			err = w.syncActiveLocked()
		}
		w.active.Close()
		w.active = nil
	}
	stop := w.stopFlush
	done := w.flushDone
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// --- record encoding ---

// appendRecord encodes one mutation record (header + payload) onto b.
func appendRecord(b []byte, op rdf.TripleOp) []byte {
	payload := make([]byte, 0, 64)
	if op.Del {
		payload = append(payload, recDel)
	} else {
		payload = append(payload, recAdd)
	}
	payload = appendTerm(payload, op.Triple.S)
	payload = appendTerm(payload, op.Triple.P)
	payload = appendTerm(payload, op.Triple.O)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// appendTerm encodes one term: kind byte, then the three length-prefixed
// string columns.
func appendTerm(b []byte, t rdf.Term) []byte {
	b = append(b, byte(t.Kind))
	for _, s := range []string{t.Value, t.Lang, t.Datatype} {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

// decodeRecord decodes one payload back to its mutation op. maxKind is
// the highest record kind the segment's format version allows (recAdd
// for v1 segments, recDel for v2). Errors mean corruption: replay
// treats them as a torn record.
func decodeRecord(payload []byte, maxKind byte) (rdf.TripleOp, error) {
	if len(payload) == 0 || payload[0] < recAdd || payload[0] > maxKind {
		return rdf.TripleOp{}, fmt.Errorf("wal: unknown record kind")
	}
	op := rdf.TripleOp{Del: payload[0] == recDel}
	rest := payload[1:]
	var err error
	if op.Triple.S, rest, err = decodeTerm(rest); err != nil {
		return rdf.TripleOp{}, err
	}
	if op.Triple.P, rest, err = decodeTerm(rest); err != nil {
		return rdf.TripleOp{}, err
	}
	if op.Triple.O, rest, err = decodeTerm(rest); err != nil {
		return rdf.TripleOp{}, err
	}
	if len(rest) != 0 {
		return rdf.TripleOp{}, fmt.Errorf("wal: %d trailing bytes in record", len(rest))
	}
	if err := op.Triple.Validate(); err != nil {
		return rdf.TripleOp{}, err
	}
	return op, nil
}

func decodeTerm(b []byte) (rdf.Term, []byte, error) {
	if len(b) == 0 {
		return rdf.Term{}, nil, fmt.Errorf("wal: truncated term")
	}
	kind := rdf.TermKind(b[0])
	if kind > rdf.Blank {
		return rdf.Term{}, nil, fmt.Errorf("wal: unknown term kind %d", b[0])
	}
	b = b[1:]
	var cols [3]string
	for i := range cols {
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > uint64(len(b)-sz) {
			return rdf.Term{}, nil, fmt.Errorf("wal: truncated term column")
		}
		b = b[sz:]
		cols[i] = string(b[:n])
		b = b[n:]
	}
	return rdf.Term{Kind: kind, Value: cols[0], Lang: cols[1], Datatype: cols[2]}, b, nil
}
