package wal_test

// The crash matrix: run a write workload (inserts through an attached
// WAL, two snapshot saves, segment rotations) against the fault-injecting
// in-memory filesystem, crash it at EVERY counted IO point in every fault
// mode, recover the way the server does (snapshot load → WAL replay), and
// assert the two durability invariants:
//
//  1. Prefix: the recovered insertion sequence is a prefix of the
//     acknowledged insertion sequence — never a reordering, never a write
//     the client was told failed, never a gap. Under SyncAlways it is the
//     whole acknowledged sequence.
//  2. Equivalence: the recovered store is byte-identical (as a snapshot)
//     to a store built by directly adding the recovered triples — replay
//     does not produce a structurally different store.
//
// A fault-free rehearsal run measures the number of IO operations, which
// is the matrix width; determinism of that count is pinned by
// vfs.TestMemOpsDeterministic.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
	"elinda/internal/vfs"
	"elinda/internal/wal"
)

const (
	crashDir      = "data"
	crashSnapshot = crashDir + "/kb.snap"
	crashInserts  = 40
)

func crashTriple(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i)),
		P: rdf.NewIRI("http://ex/p"),
		O: rdf.NewLangLiteral(fmt.Sprintf("object %d", i), "en"),
	}
}

// crashWorkload runs the write workload on m and returns the triples
// whose Add was acknowledged. IO errors are tolerated the way a serving
// process tolerates them: the failed write is not acknowledged, later
// writes proceed. The WAL is deliberately never closed — the "process"
// dies mid-flight. Tiny segments force rotations inside the matrix.
func crashWorkload(m *vfs.Mem, policy wal.SyncPolicy) []rdf.Triple {
	w, err := wal.Open(crashDir, wal.Options{FS: m, Policy: policy, SegmentBytes: 512})
	if err != nil {
		return nil // the process never came up: nothing was acknowledged
	}
	st := store.New(0)
	st.AttachWAL(w)
	var acked []rdf.Triple
	for i := 0; i < crashInserts; i++ {
		t := crashTriple(i)
		ok, err := st.Add(t)
		if err == nil && ok {
			acked = append(acked, t)
		}
		if i == 13 || i == 27 {
			// Snapshot mid-stream; a failed save leaves the WAL covering
			// everything, which recovery must handle identically.
			_ = st.SaveSnapshotFS(m, crashSnapshot)
		}
	}
	return acked
}

// crashRecover performs the server's recovery sequence on a crashed
// filesystem and returns the recovered insertion-order triples.
func crashRecover(t *testing.T, m *vfs.Mem, desc string) []rdf.Triple {
	t.Helper()
	var st *store.Store
	if _, err := m.Size(crashSnapshot); err == nil {
		// A durably published snapshot is valid by construction (synced
		// before rename, renamed before directory sync): if it exists it
		// must load.
		st, err = store.OpenSnapshotFS(m, crashSnapshot)
		if err != nil {
			t.Fatalf("%s: durable snapshot failed to load: %v", desc, err)
		}
	} else {
		st = store.New(0)
	}
	w, err := wal.Open(crashDir, wal.Options{FS: m})
	if err != nil {
		t.Fatalf("%s: reopening WAL: %v", desc, err)
	}
	defer w.Close()
	if _, err := w.Replay(func(tr rdf.Triple) error {
		_, err := st.Add(tr)
		return err
	}); err != nil {
		t.Fatalf("%s: replay: %v", desc, err)
	}
	return storedTriples(st)
}

// storedTriples returns the store's insertion-order triple sequence.
func storedTriples(st *store.Store) []rdf.Triple {
	snap := st.Snapshot()
	out := make([]rdf.Triple, 0, snap.Len())
	snap.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		out = append(out, snap.Triple(e))
		return true
	})
	return out
}

// assertPrefix fails unless got is a prefix of want.
func assertPrefix(t *testing.T, desc string, got, want []rdf.Triple) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: recovered %d triples, only %d were acknowledged", desc, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: recovered triple %d = %v, acknowledged %v", desc, i, got[i], want[i])
		}
	}
}

// assertRecoveredStoreCanonical: replay through the recovery path must
// serialize byte-identically to a direct load of the recovered triples —
// snapshot-plus-replay is not a second, subtly different store shape.
func assertRecoveredStoreCanonical(t *testing.T, desc string, m *vfs.Mem, recovered []rdf.Triple) {
	t.Helper()
	var st *store.Store
	if _, err := m.Size(crashSnapshot); err == nil {
		st, err = store.OpenSnapshotFS(m, crashSnapshot)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
	} else {
		st = store.New(0)
	}
	w, err := wal.Open(crashDir, wal.Options{FS: m})
	if err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	defer w.Close()
	if _, err := w.Replay(func(tr rdf.Triple) error {
		_, err := st.Add(tr)
		return err
	}); err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	direct := store.New(0)
	for _, tr := range recovered {
		if _, err := direct.Add(tr); err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
	}
	var viaRecovery, viaDirect bytes.Buffer
	if err := st.WriteSnapshot(&viaRecovery); err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	if err := direct.WriteSnapshot(&viaDirect); err != nil {
		t.Fatalf("%s: %v", desc, err)
	}
	if !bytes.Equal(viaRecovery.Bytes(), viaDirect.Bytes()) {
		t.Fatalf("%s: snapshot-load + WAL-replay differs byte-wise from a direct load of the same %d triples", desc, len(recovered))
	}
}

// TestCrashMatrix is the exhaustive fault sweep. ~3 fault modes × 2 sync
// policies × every IO point of the workload — a few hundred full
// crash/recover cycles, all in memory.
func TestCrashMatrix(t *testing.T) {
	policies := []wal.SyncPolicy{wal.SyncAlways, wal.SyncOff}
	modes := []struct {
		name string
		mode vfs.FaultMode
	}{
		{"transient-error", vfs.FaultError},
		{"disk-gone", vfs.FaultErrorFrom},
		{"short-write", vfs.FaultShortWrite},
	}
	for _, policy := range policies {
		// Rehearsal: measure the matrix width and sanity-check the
		// fault-free workload end to end.
		rehearsal := vfs.NewMem()
		acked := crashWorkload(rehearsal, policy)
		if len(acked) != crashInserts {
			t.Fatalf("fault-free %v workload acked %d of %d inserts", policy, len(acked), crashInserts)
		}
		width := rehearsal.Ops()
		if width < 50 {
			t.Fatalf("matrix width %d is implausibly small — is the workload going through vfs?", width)
		}
		// Fault-free crash recovery: SyncAlways promises everything
		// acknowledged; SyncOff loses the active segment's unsynced tail
		// but still recovers a prefix covering every sealed segment.
		cleanRecovered := crashRecover(t, rehearsal.Crashed(), fmt.Sprintf("%v/fault-free", policy))
		assertPrefix(t, fmt.Sprintf("%v/fault-free", policy), cleanRecovered, acked)
		if policy == wal.SyncAlways && len(cleanRecovered) != crashInserts {
			t.Fatalf("fault-free SyncAlways recovery found %d of %d triples", len(cleanRecovered), crashInserts)
		}
		if policy == wal.SyncOff && len(cleanRecovered) < crashInserts/2 {
			t.Fatalf("fault-free SyncOff recovery found only %d of %d triples", len(cleanRecovered), crashInserts)
		}

		for _, mode := range modes {
			for op := 0; op < width; op++ {
				desc := fmt.Sprintf("%v/%s/op%d", policy, mode.name, op)
				m := vfs.NewMem()
				m.InjectFault(op, mode.mode)
				acked := crashWorkload(m, policy)
				crashed := m.Crashed()
				recovered := crashRecover(t, crashed, desc)
				assertPrefix(t, desc, recovered, acked)
				if policy == wal.SyncAlways && len(recovered) != len(acked) {
					t.Fatalf("%s: SyncAlways recovered %d of %d acknowledged writes", desc, len(recovered), len(acked))
				}
				assertRecoveredStoreCanonical(t, desc, crashed, recovered)
			}
		}
	}
}

// TestCrashMatrixLateFaults crashes during the post-workload save as
// well: inject faults starting inside the final SaveSnapshotFS +
// TruncateBefore sequence, where a crash pairs an old/new snapshot with
// an untruncated/truncated log.
func TestCrashMatrixLateFaults(t *testing.T) {
	rehearsal := vfs.NewMem()
	crashWorkload(rehearsal, wal.SyncAlways)
	preSave := rehearsal.Ops()
	// Re-run with a final save appended to measure its op span.
	finalSave := func(m *vfs.Mem) ([]rdf.Triple, error) {
		w, err := wal.Open(crashDir, wal.Options{FS: m, Policy: wal.SyncAlways, SegmentBytes: 512})
		if err != nil {
			return nil, err
		}
		st := store.New(0)
		st.AttachWAL(w)
		var acked []rdf.Triple
		for i := 0; i < crashInserts; i++ {
			t := crashTriple(i)
			if ok, err := st.Add(t); err == nil && ok {
				acked = append(acked, t)
			}
		}
		return acked, st.SaveSnapshotFS(m, crashSnapshot)
	}
	full := vfs.NewMem()
	if _, err := finalSave(full); err != nil {
		t.Fatalf("fault-free final save: %v", err)
	}
	width := full.Ops()
	if width <= preSave/2 {
		t.Fatalf("late-fault width %d vs pre-save %d: workload changed shape", width, preSave)
	}
	for op := 0; op < width; op++ {
		desc := fmt.Sprintf("late/op%d", op)
		m := vfs.NewMem()
		m.InjectFault(op, vfs.FaultErrorFrom)
		acked, err := finalSave(m)
		if err != nil && !errors.Is(err, vfs.ErrInjected) {
			t.Fatalf("%s: unexpected error class: %v", desc, err)
		}
		crashed := m.Crashed()
		recovered := crashRecover(t, crashed, desc)
		assertPrefix(t, desc, recovered, acked)
		if len(recovered) != len(acked) {
			t.Fatalf("%s: SyncAlways recovered %d of %d", desc, len(recovered), len(acked))
		}
		assertRecoveredStoreCanonical(t, desc, crashed, recovered)
	}
}

// TestRecoveryIdempotent: recovering twice from the same crash image
// (e.g. the process crashes again right after replay) yields the same
// store.
func TestRecoveryIdempotent(t *testing.T) {
	m := vfs.NewMem()
	acked := crashWorkload(m, wal.SyncAlways)
	crashed := m.Crashed()
	first := crashRecover(t, crashed, "first")
	second := crashRecover(t, crashed, "second")
	if len(first) != len(acked) || len(second) != len(first) {
		t.Fatalf("idempotence: acked=%d first=%d second=%d", len(acked), len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("recovery diverged at %d", i)
		}
	}
}
