package endpoint

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"elinda/internal/metrics"
)

func TestRecoverPanics(t *testing.T) {
	var panics metrics.Counter
	var logged []string
	h := RecoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("kaboom")
		}
		w.Write([]byte("fine"))
	}), &panics, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
	if panics.Value() != 1 {
		t.Fatalf("panics_total = %d, want 1", panics.Value())
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "kaboom") || !strings.Contains(logged[0], "goroutine") {
		t.Fatalf("panic log missing message or stack: %q", logged)
	}

	// The wrapper is transparent for healthy handlers.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "fine" {
		t.Fatalf("healthy handler: %d %q", rec.Code, rec.Body.String())
	}
	if panics.Value() != 1 {
		t.Fatalf("healthy request bumped panics_total to %d", panics.Value())
	}
}

func TestRecoverPanicsAbortHandlerPassesThrough(t *testing.T) {
	h := RecoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), nil, nil)
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("http.ErrAbortHandler was swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestReadiness(t *testing.T) {
	var r Readiness
	probe := func() (int, string) {
		rec := httptest.NewRecorder()
		r.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := probe(); code != http.StatusServiceUnavailable || body != "not ready\n" {
		t.Fatalf("zero-value probe: %d %q", code, body)
	}
	r.Set("wal-replay")
	if code, body := probe(); code != http.StatusServiceUnavailable || body != "not ready: wal-replay\n" {
		t.Fatalf("during replay: %d %q", code, body)
	}
	r.Ready()
	if code, body := probe(); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("ready probe: %d %q", code, body)
	}
	if !r.IsReady() {
		t.Fatal("IsReady() = false after Ready()")
	}
	r.Set("draining")
	if code, body := probe(); code != http.StatusServiceUnavailable || body != "not ready: draining\n" {
		t.Fatalf("during drain: %d %q", code, body)
	}
}
