package endpoint_test

// End-to-end update-protocol tests over the real stack (server → proxy
// → store). These live in an external test package because proxy itself
// imports endpoint.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"elinda/internal/endpoint"
	"elinda/internal/proxy"
	"elinda/internal/rdf"
	"elinda/internal/store"
)

func exIRI(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

func updateServer(t *testing.T, triples []rdf.Triple) (*httptest.Server, *store.Store) {
	t.Helper()
	st := store.New(len(triples))
	if len(triples) > 0 {
		if _, err := st.Load(triples); err != nil {
			t.Fatal(err)
		}
	}
	px := proxy.New(st, proxy.Options{})
	s := endpoint.NewServer(px)
	s.Updater = px
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, st
}

func TestUpdateParseErrorIs400(t *testing.T) {
	srv, _ := updateServer(t, nil)
	resp, err := http.Post(srv.URL, endpoint.UpdateContentType, strings.NewReader(`INSERT GARBAGE`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestUpdateEndToEnd checks a multi-op request mutates the store
// atomically and the query side sees the new state immediately.
func TestUpdateEndToEnd(t *testing.T) {
	srv, st := updateServer(t, []rdf.Triple{
		{S: exIRI("plato"), P: exIRI("influencedBy"), O: exIRI("socrates")},
		{S: exIRI("kant"), P: exIRI("influencedBy"), O: exIRI("hume")},
	})

	resp, err := http.Post(srv.URL, endpoint.UpdateContentType, strings.NewReader(`PREFIX ex: <http://example.org/>
DELETE WHERE { ex:kant ex:influencedBy ?o } ;
INSERT DATA { ex:hegel ex:influencedBy ex:kant }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var stats endpoint.UpdateStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 1 || stats.Deleted != 1 {
		t.Fatalf("ack = %+v", stats)
	}
	if stats.Generation != st.Generation() {
		t.Fatalf("ack generation %d, store at %d", stats.Generation, st.Generation())
	}
	if st.ContainsTriple(rdf.Triple{S: exIRI("kant"), P: exIRI("influencedBy"), O: exIRI("hume")}) {
		t.Fatal("DELETE WHERE target survived")
	}
	if !st.ContainsTriple(rdf.Triple{S: exIRI("hegel"), P: exIRI("influencedBy"), O: exIRI("kant")}) {
		t.Fatal("INSERT DATA triple missing")
	}

	qresp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(`PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:influencedBy ex:kant }`))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var doc struct {
		Results struct {
			Bindings []map[string]struct{ Value string } `json:"bindings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results.Bindings) != 1 || doc.Results.Bindings[0]["s"].Value != "http://example.org/hegel" {
		t.Fatalf("query after update: %+v", doc.Results)
	}
}

// TestUpdateRemoteBackendIs501: a proxy fronting a remote backend owns
// no data; its ErrNoUpdate must surface as 501, exactly like a server
// with no Updater at all.
func TestUpdateRemoteBackendIs501(t *testing.T) {
	st := store.New(0)
	backend := endpoint.NewServer(proxy.New(st, proxy.Options{}))
	remote := httptest.NewServer(backend)
	t.Cleanup(remote.Close)

	px := proxy.NewWithBackend(st, endpoint.NewClient(remote.URL), proxy.Options{})
	s := endpoint.NewServer(px)
	s.Updater = px
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL, endpoint.UpdateContentType,
		strings.NewReader(`INSERT DATA { <http://x/s> <http://x/p> <http://x/o> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

// TestUpdateNoOpAcksZero: an update whose ops are all ineffective acks
// with zero counts and an unchanged generation.
func TestUpdateNoOpAcksZero(t *testing.T) {
	srv, st := updateServer(t, []rdf.Triple{
		{S: exIRI("a"), P: exIRI("p"), O: exIRI("b")},
	})
	gen := st.Generation()
	resp, err := http.Post(srv.URL, endpoint.UpdateContentType, strings.NewReader(`PREFIX ex: <http://example.org/>
INSERT DATA { ex:a ex:p ex:b }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats endpoint.UpdateStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 0 || stats.Deleted != 0 || stats.Generation != gen {
		t.Fatalf("no-op ack = %+v, generation %d", stats, gen)
	}
}
