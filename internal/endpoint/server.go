package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"elinda/internal/metrics"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

// ContentType is the media type of SPARQL JSON results.
const ContentType = "application/sparql-results+json"

// CompleteTrailer is the HTTP trailer a streaming response carries when
// the result document was fully written. Chunked transfer encoding ends
// a mid-stream abort with perfectly clean framing — the body is
// syntactically truncated but the HTTP layer looks complete — so a
// relaying tier (the fleet router) cannot rely on framing alone. The
// trailer is the explicit completeness signal: absent means the stream
// was cut, and the relay must treat the attempt as failed rather than
// forward half a body as success.
const CompleteTrailer = "X-Elinda-Complete"

// Executor answers SPARQL queries. *sparql.Engine satisfies it; the proxy
// in internal/proxy wraps one Executor with caching and routing.
type Executor interface {
	Query(ctx context.Context, src string) (*sparql.Result, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx context.Context, src string) (*sparql.Result, error)

// Query implements Executor.
func (f ExecutorFunc) Query(ctx context.Context, src string) (*sparql.Result, error) {
	return f(ctx, src)
}

// Updater applies SPARQL Update requests. *proxy.Proxy satisfies it; a
// server without one is read-only and answers update requests with 501.
type Updater interface {
	Update(ctx context.Context, src string) (store.ApplyResult, error)
}

// Explainer reports a query's plan without executing it. *sparql.Engine
// and *proxy.Proxy (over a local backend) satisfy it; an executor that
// does not answers explain requests with 501.
type Explainer interface {
	Explain(ctx context.Context, src string) (*sparql.PlanReport, error)
}

// ErrReadOnly marks an update rejected because this process does not
// own the data it serves (a remote-backed proxy, a fleet replica). An
// Updater returning an error wrapping it is answered with 501, same as
// having no Updater at all.
var ErrReadOnly = errors.New("endpoint: read-only")

// UpdateStats is the JSON body acknowledging an applied update. The
// acknowledgment is written only after the mutation is durable (the
// store appends to its write-ahead log before publishing the result).
type UpdateStats struct {
	// Inserted and Deleted are the net triple counts the request changed
	// (an insert of a present triple or delete of an absent one is a
	// no-op and counts zero).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Generation is the store generation after the update.
	Generation uint64 `json:"generation"`
}

// UpdateContentType is the SPARQL 1.1 protocol media type for a direct
// POST of an update request body.
const UpdateContentType = "application/sparql-update"

// maxUpdateBytes bounds a direct-POST update body; bulk loads belong in
// the offline ingest path.
const maxUpdateBytes = 8 << 20

// Server is an HTTP handler exposing an Executor at /sparql, accepting the
// query via GET ?query= or POST form field "query" (the two access methods
// the SPARQL protocol defines that Virtuoso supports over AJAX).
//
// Production hardening on top of the protocol:
//
//   - Admission control: an optional weighted-semaphore Limiter bounds
//     concurrent query work. A request that cannot be admitted within
//     AcquireTimeout is shed with 429 and a Retry-After header instead of
//     stacking goroutines until the process collapses.
//   - Per-query deadline: Timeout bounds execution; an expired query is
//     cut off inside the engine's join loops and answered with 504.
//   - Streaming results: when the executor implements sparql.RowExecutor
//     and the negotiated format has a streaming encoder (JSON, TSV), rows
//     are encoded and flushed every FlushRows rows instead of
//     materializing the whole result and its serialized body.
type Server struct {
	exec Executor
	// Updater handles SPARQL Update requests (POST with an
	// application/sparql-update body or an update= form field). nil makes
	// the endpoint read-only: update requests get 501.
	Updater Updater
	// Timeout bounds each query's execution (0 = no bound).
	Timeout time.Duration
	// Limiter admission-controls query work (nil = unlimited).
	Limiter *Limiter
	// AcquireTimeout bounds how long a request may wait for admission
	// when the limiter is saturated (0 = fail immediately).
	AcquireTimeout time.Duration
	// Cost maps a query to its admission weight (nil = every query
	// weighs 1). Heavier weights let one expensive query hold more of
	// the limiter's capacity.
	Cost func(query string) int64
	// FlushRows is the streaming flush cadence (0 = DefaultFlushRows).
	FlushRows int
	// DisableStreaming forces the buffered encode path even for
	// streaming-capable executors and formats.
	DisableStreaming bool

	inFlight     metrics.Gauge
	admitted     metrics.Counter
	rejected     metrics.Counter
	timeouts     metrics.Counter
	failures     metrics.Counter
	clientAborts metrics.Counter
	streamed     metrics.Counter
	updates      metrics.Counter
	latency      metrics.Histogram
	startedAt    time.Time
}

// NewServer returns a Server over exec.
func NewServer(exec Executor) *Server { return &Server{exec: exec, startedAt: time.Now()} }

// ServerMetrics is the HTTP half of the /metrics document.
type ServerMetrics struct {
	// UptimeSeconds counts from server construction.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// InFlight is the number of requests currently executing.
	InFlight int64 `json:"in_flight"`
	// WaitingAdmission is the limiter's queue length (0 without limiter).
	WaitingAdmission int `json:"waiting_admission"`
	// CapacityWeight is the limiter capacity (0 without limiter).
	CapacityWeight int64 `json:"capacity_weight"`
	// Admitted, Rejected429, Timeout504, Failures count request outcomes;
	// ClientAborts counts mid-stream client disconnects (not failures).
	Admitted     uint64 `json:"admitted"`
	Rejected429  uint64 `json:"rejected_429"`
	Timeout504   uint64 `json:"timeout_504"`
	Failures     uint64 `json:"failures"`
	ClientAborts uint64 `json:"client_aborts"`
	// Streamed counts responses served through a streaming encoder.
	Streamed uint64 `json:"streamed"`
	// Updates counts successfully applied SPARQL Update requests.
	Updates uint64 `json:"updates"`
	// Latency is the end-to-end request latency distribution.
	Latency metrics.HistogramSnapshot `json:"latency"`
}

// MetricsSnapshot captures the server's request metrics.
func (s *Server) MetricsSnapshot() ServerMetrics {
	m := ServerMetrics{
		UptimeSeconds: time.Since(s.startedAt).Seconds(),
		InFlight:      s.inFlight.Value(),
		Admitted:      s.admitted.Value(),
		Rejected429:   s.rejected.Value(),
		Timeout504:    s.timeouts.Value(),
		Failures:      s.failures.Value(),
		ClientAborts:  s.clientAborts.Value(),
		Streamed:      s.streamed.Value(),
		Updates:       s.updates.Value(),
		Latency:       s.latency.Snapshot(),
	}
	if s.Limiter != nil {
		m.WaitingAdmission = s.Limiter.Waiting()
		m.CapacityWeight = s.Limiter.Capacity()
	}
	return m
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var query, update string
	var explain bool
	switch r.Method {
	case http.MethodGet:
		// The protocol forbids updates via GET: a cacheable, replayable
		// method must not mutate, so only query= is looked for here.
		query = r.URL.Query().Get("query")
		explain = r.URL.Query().Get("explain") != ""
	case http.MethodPost:
		if mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && mt == UpdateContentType {
			// Direct POST: the body IS the update request.
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUpdateBytes))
			if err != nil {
				http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
				return
			}
			update = string(body)
		} else {
			if err := r.ParseForm(); err != nil {
				http.Error(w, "bad form: "+err.Error(), http.StatusBadRequest)
				return
			}
			query = r.PostForm.Get("query")
			update = r.PostForm.Get("update")
			explain = r.PostForm.Get("explain") != ""
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if update != "" {
		s.serveUpdate(w, r, update)
		return
	}
	if query == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	if explain {
		s.serveExplain(w, r, query)
		return
	}

	ctx := r.Context()
	start := time.Now()

	// Admission control: acquire the query's weight, waiting at most
	// AcquireTimeout, before any execution work starts.
	if s.Limiter != nil {
		weight := int64(1)
		if s.Cost != nil {
			weight = s.Cost(query)
		}
		acquireCtx := ctx
		var cancelAcquire context.CancelFunc
		if s.AcquireTimeout > 0 {
			acquireCtx, cancelAcquire = context.WithTimeout(ctx, s.AcquireTimeout)
		} else {
			// No wait budget: admit only if capacity is free right now.
			acquireCtx, cancelAcquire = context.WithCancel(ctx)
			cancelAcquire()
		}
		err := s.Limiter.Acquire(acquireCtx, weight)
		if cancelAcquire != nil {
			cancelAcquire()
		}
		if err != nil {
			if ctx.Err() != nil {
				// The client itself went away while queued.
				http.Error(w, ctx.Err().Error(), http.StatusGatewayTimeout)
				return
			}
			s.rejected.Inc()
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, "server saturated, retry later", http.StatusTooManyRequests)
			return
		}
		defer s.Limiter.Release(weight)
	}
	s.admitted.Inc()
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	// End-to-end latency for admitted requests, queue wait included —
	// under saturation the admission wait is exactly what the
	// Retry-After hint must reflect.
	defer func() { s.latency.Observe(time.Since(start)) }()

	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}

	if !s.DisableStreaming {
		if rexec, ok := s.exec.(sparql.RowExecutor); ok {
			flusher, _ := w.(http.Flusher)
			if contentType, streamer, ok := NegotiateStreamer(r.Header.Get("Accept"), w, flusher, s.FlushRows); ok {
				s.serveStreaming(ctx, w, rexec, query, contentType, streamer)
				return
			}
		}
	}
	s.serveBuffered(ctx, w, r, query)
}

// serveStreaming answers through a row-streaming encoder. Errors raised
// before the first byte (parse errors, saturation inside the engine,
// deadline during evaluation) still produce proper HTTP statuses; once
// the header is on the wire the response can only be truncated.
func (s *Server) serveStreaming(ctx context.Context, w http.ResponseWriter, rexec sparql.RowExecutor, query, contentType string, streamer ResultStreamer) {
	// The Content-Type header must be set before the streamer's first
	// write commits the response header, and the completeness trailer
	// must be declared then too — trailers cannot be announced
	// retroactively.
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Trailer", CompleteTrailer)
	err := rexec.QueryRows(ctx, query, streamer)
	if err != nil {
		if !streamer.Started() {
			// Nothing written yet: we can still change the status line.
			w.Header().Del("Content-Type")
			w.Header().Del("Trailer")
			s.writeError(w, err)
			return
		}
		// Mid-stream failure: abort WITHOUT the document terminator, so
		// the body is left syntactically incomplete and the client can
		// tell truncation from a smaller-but-complete result. Attribute
		// the outcome: an expired deadline is a timeout; everything else
		// that can fail once bytes are on the wire is the client side of
		// the connection going away (a canceled request context, a broken
		// response write) — tracked as a client abort, not a server
		// failure worth paging on.
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Inc()
		} else {
			s.clientAborts.Inc()
		}
		_ = streamer.Abort()
		return
	}
	// Mark completeness BEFORE the final flush: setting a declared
	// header field after WriteHeader turns it into a trailer, and it
	// must be in place when the terminating chunk goes out.
	w.Header().Set(CompleteTrailer, "1")
	if err := streamer.Close(); err != nil {
		// The only thing Close can fail on is the final write/flush: the
		// client went away at the last moment.
		s.clientAborts.Inc()
		return
	}
	s.streamed.Inc()
}

// serveBuffered is the original materialize-then-marshal path, used for
// formats without a streaming encoder and non-streaming executors.
func (s *Server) serveBuffered(ctx context.Context, w http.ResponseWriter, r *http.Request, query string) {
	res, err := s.exec.Query(ctx, query)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The engine checks the context inside its join loops, so a timeout or
	// client disconnect surfaces here promptly; it can also land exactly
	// between query completion and serialization — don't spend marshal
	// work on a request whose context is already dead.
	if ctxErr := ctx.Err(); ctxErr != nil {
		s.timeouts.Inc()
		http.Error(w, ctxErr.Error(), http.StatusGatewayTimeout)
		return
	}
	contentType, marshal := NegotiateFormat(r.Header.Get("Accept"))
	body, err := marshal(res)
	if err != nil {
		s.failures.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// serveUpdate applies a SPARQL Update request and acknowledges it with
// an UpdateStats JSON body. Updates bypass the query limiter — they
// serialize on the store's single writer lock, so admission weighting
// against query capacity would just double-queue them — but share the
// per-request timeout and the latency/in-flight accounting.
func (s *Server) serveUpdate(w http.ResponseWriter, r *http.Request, src string) {
	if s.Updater == nil {
		http.Error(w, "read-only endpoint: no update handler configured", http.StatusNotImplemented)
		return
	}
	ctx := r.Context()
	start := time.Now()
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	defer func() { s.latency.Observe(time.Since(start)) }()
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	res, err := s.Updater.Update(ctx, src)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Reaching here means Apply returned: the mutation is durable under
	// the WAL's sync policy. Only now is the acknowledgment written.
	s.updates.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(UpdateStats{
		Inserted:   res.Inserted,
		Deleted:    res.Deleted,
		Generation: res.To,
	})
}

// serveExplain answers an explain=1 request with the query's plan as
// JSON — the join order the planner chose, per-step cardinality and row
// estimates, and the operator kinds — without executing the query.
// Explain requests bypass the query limiter: planning touches only the
// snapshot statistics and index offsets, never the data.
func (s *Server) serveExplain(w http.ResponseWriter, r *http.Request, query string) {
	ex, ok := s.exec.(Explainer)
	if !ok {
		http.Error(w, "executor does not support explain", http.StatusNotImplemented)
		return
	}
	ctx := r.Context()
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	rep, err := ex.Explain(ctx, query)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		s.failures.Inc()
	}
}

// writeError maps an execution error to its HTTP status.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
		s.timeouts.Inc()
	case errors.Is(err, sparql.ErrTooLarge):
		status = http.StatusInsufficientStorage
		s.failures.Inc()
	case errors.Is(err, ErrReadOnly):
		status = http.StatusNotImplemented
		s.failures.Inc()
	default:
		s.failures.Inc()
	}
	http.Error(w, err.Error(), status)
}

// retryAfter derives the Retry-After hint from the observed latency
// distribution: roughly the time for the current median query to drain,
// with a 1-second floor so well-behaved clients back off meaningfully.
func (s *Server) retryAfter() string {
	p50 := s.latency.Snapshot().P50
	secs := int64(p50 / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
