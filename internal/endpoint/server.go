package endpoint

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"elinda/internal/sparql"
)

// ContentType is the media type of SPARQL JSON results.
const ContentType = "application/sparql-results+json"

// Executor answers SPARQL queries. *sparql.Engine satisfies it; the proxy
// in internal/proxy wraps one Executor with caching and routing.
type Executor interface {
	Query(ctx context.Context, src string) (*sparql.Result, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx context.Context, src string) (*sparql.Result, error)

// Query implements Executor.
func (f ExecutorFunc) Query(ctx context.Context, src string) (*sparql.Result, error) {
	return f(ctx, src)
}

// Server is an HTTP handler exposing an Executor at /sparql, accepting the
// query via GET ?query= or POST form field "query" (the two access methods
// the SPARQL protocol defines that Virtuoso supports over AJAX).
type Server struct {
	exec Executor
	// Timeout bounds each query's execution (0 = no bound).
	Timeout time.Duration
}

// NewServer returns a Server over exec.
func NewServer(exec Executor) *Server { return &Server{exec: exec} }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var query string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form: "+err.Error(), http.StatusBadRequest)
			return
		}
		query = r.PostForm.Get("query")
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if query == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}

	res, err := s.exec.Query(ctx, query)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		} else if errors.Is(err, sparql.ErrTooLarge) {
			status = http.StatusInsufficientStorage
		}
		http.Error(w, err.Error(), status)
		return
	}
	// The engine checks the context inside its join loops, so a timeout or
	// client disconnect surfaces here promptly; it can also land exactly
	// between query completion and serialization — don't spend marshal
	// work on a request whose context is already dead.
	if ctxErr := ctx.Err(); ctxErr != nil {
		http.Error(w, ctxErr.Error(), http.StatusGatewayTimeout)
		return
	}
	contentType, marshal := NegotiateFormat(r.Header.Get("Accept"))
	body, err := marshal(res)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
