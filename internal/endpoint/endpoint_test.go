package endpoint

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

func newTestEngine(t *testing.T) *sparql.Engine {
	t.Helper()
	st := store.New(16)
	_, err := st.Load([]rdf.Triple{
		{S: ex("plato"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("plato"), P: rdf.LabelIRI, O: rdf.NewLangLiteral("Plato", "en")},
		{S: ex("plato"), P: ex("born"), O: rdf.NewTypedLiteral("-427", rdf.XSDInteger)},
		{S: ex("aristotle"), P: rdf.TypeIRI, O: ex("Philosopher")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sparql.NewEngine(st)
}

func TestMarshalUnmarshalRoundtrip(t *testing.T) {
	res := &sparql.Result{
		Vars: []string{"s", "o"},
		Rows: []sparql.Solution{
			{"s": ex("plato"), "o": rdf.NewLangLiteral("Plato", "en")},
			{"s": rdf.NewBlank("b1"), "o": rdf.NewTypedLiteral("5", rdf.XSDInteger)},
			{"s": ex("partial")}, // unbound o
		},
	}
	data, err := MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Vars, back.Vars) {
		t.Errorf("vars: %v vs %v", res.Vars, back.Vars)
	}
	if len(back.Rows) != 3 {
		t.Fatalf("rows = %d", len(back.Rows))
	}
	for i := range res.Rows {
		if !reflect.DeepEqual(res.Rows[i], back.Rows[i]) {
			t.Errorf("row %d: %+v vs %+v", i, res.Rows[i], back.Rows[i])
		}
	}
}

func TestMarshalAsk(t *testing.T) {
	data, err := MarshalResult(&sparql.Result{Ask: true, AskTrue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"boolean":true`) {
		t.Errorf("ASK JSON: %s", data)
	}
	back, err := UnmarshalResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Ask || !back.AskTrue {
		t.Errorf("round-trip ASK: %+v", back)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalResult([]byte(`{`)); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := UnmarshalResult([]byte(`{"head":{}}`)); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := UnmarshalResult([]byte(`{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"alien","value":"?"}}]}}`)); err == nil {
		t.Error("unknown term type accepted")
	}
}

func TestServerGET(t *testing.T) {
	srv := httptest.NewServer(NewServer(newTestEngine(t)))
	defer srv.Close()
	q := url.QueryEscape(`SELECT ?s WHERE { ?s a <http://example.org/Philosopher> . }`)
	resp, err := http.Get(srv.URL + "?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q", ct)
	}
}

func TestServerPOSTAndClient(t *testing.T) {
	srv := httptest.NewServer(NewServer(newTestEngine(t)))
	defer srv.Close()

	for _, usePost := range []bool{false, true} {
		c := NewClient(srv.URL)
		c.UsePOST = usePost
		res, err := c.Query(context.Background(),
			`SELECT ?s WHERE { ?s a <http://example.org/Philosopher> . } ORDER BY ?s`)
		if err != nil {
			t.Fatalf("post=%v: %v", usePost, err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("post=%v: rows = %d", usePost, len(res.Rows))
		}
		var got []string
		for _, r := range res.Rows {
			got = append(got, r["s"].Value)
		}
		sort.Strings(got)
		if got[0] != "http://example.org/aristotle" {
			t.Errorf("rows: %v", got)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewServer(newTestEngine(t)))
	defer srv.Close()

	resp, err := http.Get(srv.URL) // no query
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query: status = %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "?query=" + url.QueryEscape("NOT SPARQL"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("syntax error: status = %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status = %d", resp.StatusCode)
	}
}

func TestServerTimeout(t *testing.T) {
	slow := ExecutorFunc(func(ctx context.Context, src string) (*sparql.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return &sparql.Result{}, nil
		}
	})
	s := NewServer(slow)
	s.Timeout = 20 * time.Millisecond
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timeout status = %d, want 504", resp.StatusCode)
	}
}

func TestClientErrorPaths(t *testing.T) {
	// Endpoint returning 500.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.Query(context.Background(), "SELECT ?s WHERE { ?s ?p ?o }"); err == nil {
		t.Error("500 response should error")
	}
	// Unreachable endpoint.
	c2 := NewClient("http://127.0.0.1:1/never")
	c2.HTTPClient = &http.Client{Timeout: 100 * time.Millisecond}
	if _, err := c2.Query(context.Background(), "SELECT ?s WHERE { ?s ?p ?o }"); err == nil {
		t.Error("unreachable endpoint should error")
	}
	// Garbage body.
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "not json")
	}))
	defer srv2.Close()
	if _, err := NewClient(srv2.URL).Query(context.Background(), "SELECT ?s WHERE { ?s ?p ?o }"); err == nil {
		t.Error("garbage body should error")
	}
}

func TestClientQueryWithExistingQueryString(t *testing.T) {
	var gotQuery string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotQuery = r.URL.Query().Get("query")
		data, _ := MarshalResult(&sparql.Result{Vars: []string{"s"}})
		w.Header().Set("Content-Type", ContentType)
		w.Write(data)
	}))
	defer srv.Close()
	c := NewClient(srv.URL + "?format=json")
	if _, err := c.Query(context.Background(), "ASK { ?s ?p ?o }"); err != nil {
		t.Fatal(err)
	}
	if gotQuery != "ASK { ?s ?p ?o }" {
		t.Errorf("query param = %q", gotQuery)
	}
}

// TestEndToEndRemoteMode: full stack — engine behind Server, accessed via
// Client, result identical to direct execution.
func TestEndToEndRemoteMode(t *testing.T) {
	eng := newTestEngine(t)
	srv := httptest.NewServer(NewServer(eng))
	defer srv.Close()

	src := `SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p ORDER BY DESC(?n) ?p`
	direct, err := eng.Query(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewClient(srv.URL).Query(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Rows) != len(remote.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(direct.Rows), len(remote.Rows))
	}
	for i := range direct.Rows {
		if !reflect.DeepEqual(direct.Rows[i], remote.Rows[i]) {
			t.Errorf("row %d differs: %+v vs %+v", i, direct.Rows[i], remote.Rows[i])
		}
	}
}

// TestServerHonorsCancellationMidQuery checks that a query whose context
// dies mid-execution is cut off with 504 instead of running (and
// serializing) to completion: the engine's in-loop context checks must
// surface through the HTTP handler.
func TestServerHonorsCancellationMidQuery(t *testing.T) {
	st := store.New(4096)
	var ts []rdf.Triple
	for i := 0; i < 1500; i++ {
		ts = append(ts, rdf.Triple{
			S: ex(fmt.Sprintf("s%d", i)), P: ex("p"), O: ex(fmt.Sprintf("o%d", i)),
		})
	}
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sparql.NewEngine(st))
	srv.Timeout = 20 * time.Millisecond

	// Three unconstrained patterns: ~3x10^9 intermediate rows, which only
	// terminates promptly because cancellation fires inside the join loop.
	q := url.QueryEscape(`SELECT ?a ?b ?c WHERE { ?a ?p1 ?x . ?b ?p2 ?y . ?c ?p3 ?z . }`)
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+q, nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body: %s)", rec.Code, rec.Body.String())
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s, want prompt abort", elapsed)
	}
}
