// Package endpoint implements the HTTP SPARQL protocol layer of eLinda's
// architecture (Figure 3): a server that plays the Virtuoso endpoint role,
// speaking the SPARQL 1.1 Query Results JSON Format, and the matching
// client used for "AJAX communication with the Virtuoso server via its
// HTTP/JSON SPARQL interface" (Section 4, remote compatibility).
package endpoint

import (
	"encoding/json"
	"fmt"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// jsonResults mirrors the SPARQL 1.1 Query Results JSON Format.
type jsonResults struct {
	Head    jsonHead      `json:"head"`
	Results *jsonBindings `json:"results,omitempty"`
	Boolean *bool         `json:"boolean,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars,omitempty"`
}

type jsonBindings struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"` // uri | literal | bnode
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

// MarshalResult encodes a query result in SPARQL 1.1 JSON.
func MarshalResult(res *sparql.Result) ([]byte, error) {
	doc := jsonResults{}
	if res.Ask {
		b := res.AskTrue
		doc.Boolean = &b
	} else {
		doc.Head.Vars = res.Vars
		bindings := make([]map[string]jsonTerm, 0, len(res.Rows))
		for _, row := range res.Rows {
			m := make(map[string]jsonTerm, len(row))
			for v, t := range row {
				m[v] = termToJSON(t)
			}
			bindings = append(bindings, m)
		}
		doc.Results = &jsonBindings{Bindings: bindings}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("endpoint: marshaling results: %w", err)
	}
	return out, nil
}

// UnmarshalResult decodes a SPARQL 1.1 JSON document back to a Result.
func UnmarshalResult(data []byte) (*sparql.Result, error) {
	var doc jsonResults
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("endpoint: unmarshaling results: %w", err)
	}
	if doc.Boolean != nil {
		return &sparql.Result{Ask: true, AskTrue: *doc.Boolean}, nil
	}
	if doc.Results == nil {
		return nil, fmt.Errorf("endpoint: document has neither results nor boolean")
	}
	res := &sparql.Result{Vars: doc.Head.Vars}
	for _, b := range doc.Results.Bindings {
		row := sparql.Solution{}
		for v, jt := range b {
			t, err := jsonToTerm(jt)
			if err != nil {
				return nil, err
			}
			row[v] = t
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

func jsonToTerm(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value), nil
	case "bnode":
		return rdf.NewBlank(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.NewTypedLiteral(jt.Value, jt.Datatype), nil
		default:
			return rdf.NewLiteral(jt.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("endpoint: unknown term type %q", jt.Type)
	}
}
