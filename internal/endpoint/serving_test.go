package endpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

// blockingExec blocks every query until released, to saturate the
// limiter deterministically.
type blockingExec struct {
	entered chan struct{} // one tick per query that started
	release chan struct{} // closed to let queries finish
}

func newBlockingExec() *blockingExec {
	return &blockingExec{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingExec) Query(ctx context.Context, src string) (*sparql.Result, error) {
	b.entered <- struct{}{}
	select {
	case <-b.release:
		return &sparql.Result{Vars: []string{"s"}}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestServerSheds429UnderSaturation is the satellite admission test: with
// capacity 1 occupied, a second request must be shed with 429 and a
// Retry-After header instead of queueing forever.
func TestServerSheds429UnderSaturation(t *testing.T) {
	exec := newBlockingExec()
	s := NewServer(exec)
	s.Limiter = NewLimiter(1)
	s.AcquireTimeout = 20 * time.Millisecond
	srv := httptest.NewServer(s)
	defer srv.Close()

	q := srv.URL + "?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(q)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-exec.entered // the first request now owns the whole capacity

	resp, err := http.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	close(exec.release)
	wg.Wait()

	m := s.MetricsSnapshot()
	if m.Rejected429 != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected429)
	}
	if m.Admitted != 1 {
		t.Errorf("admitted = %d, want 1", m.Admitted)
	}
}

// TestServerDeadline504ThroughLimiter: an admitted query that overruns
// the per-query deadline is answered 504 (and the weight is released for
// the next request).
func TestServerDeadline504ThroughLimiter(t *testing.T) {
	exec := newBlockingExec()
	s := NewServer(exec)
	s.Limiter = NewLimiter(2)
	s.AcquireTimeout = 50 * time.Millisecond
	s.Timeout = 30 * time.Millisecond
	srv := httptest.NewServer(s)
	defer srv.Close()
	defer close(exec.release)

	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504", resp.StatusCode)
	}
	if got := s.Limiter.InFlight(); got != 0 {
		t.Errorf("in-flight weight leaked: %d", got)
	}
	if m := s.MetricsSnapshot(); m.Timeout504 != 1 {
		t.Errorf("timeout counter = %d, want 1", m.Timeout504)
	}
}

// TestLimiterFIFOAndWeights exercises the weighted semaphore directly.
func TestLimiterFIFOAndWeights(t *testing.T) {
	l := NewLimiter(4)
	if err := l.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if !l.TryAcquire(1) {
		t.Fatal("capacity 4 should admit 3+1")
	}
	if l.TryAcquire(1) {
		t.Fatal("over-capacity TryAcquire succeeded")
	}
	// A queued heavy acquirer must not be starved by a light one arriving
	// later: FIFO order.
	heavyDone := make(chan struct{})
	lightDone := make(chan struct{})
	ready := make(chan struct{}, 2)
	go func() {
		ready <- struct{}{}
		if err := l.Acquire(context.Background(), 4); err == nil {
			close(heavyDone)
		}
	}()
	<-ready
	for l.Waiting() == 0 { // the heavy acquirer is queued
		time.Sleep(time.Millisecond)
	}
	go func() {
		ready <- struct{}{}
		if err := l.Acquire(context.Background(), 1); err == nil {
			close(lightDone)
		}
	}()
	<-ready
	for l.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}
	l.Release(1)
	select {
	case <-lightDone:
		t.Fatal("light acquirer jumped the FIFO queue past the heavy one")
	case <-time.After(30 * time.Millisecond):
	}
	l.Release(3) // now the heavy one fits, then the light one
	<-heavyDone
	l.Release(4)
	<-lightDone
	l.Release(1)
	if got := l.InFlight(); got != 0 {
		t.Errorf("in-flight = %d after full release", got)
	}
}

// TestLimiterAcquireCancellation: a canceled waiter leaves the queue and
// never holds weight.
func TestLimiterAcquireCancellation(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx, 1); err == nil {
		t.Fatal("expired acquire should fail")
	}
	if got := l.Waiting(); got != 0 {
		t.Errorf("waiting = %d after canceled acquire", got)
	}
	l.Release(1)
	if got := l.InFlight(); got != 0 {
		t.Errorf("in-flight = %d", got)
	}
}

// streamingFixtureEngine builds a store with every term shape the
// encoders must render: IRIs, plain/lang/typed literals, blank nodes,
// unbound optionals.
func streamingFixtureEngine(t *testing.T) *sparql.Engine {
	t.Helper()
	st := store.New(64)
	_, err := st.Load([]rdf.Triple{
		{S: ex("plato"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("plato"), P: rdf.LabelIRI, O: rdf.NewLangLiteral("Plato", "en")},
		{S: ex("plato"), P: ex("born"), O: rdf.NewTypedLiteral("-427", rdf.XSDInteger)},
		{S: ex("plato"), P: ex("quote"), O: rdf.NewLiteral("know\tthyself\nwell")},
		{S: ex("aristotle"), P: rdf.TypeIRI, O: ex("Philosopher")},
		{S: ex("aristotle"), P: ex("teacher"), O: ex("plato")},
		{S: rdf.NewBlank("b0"), P: ex("teacher"), O: ex("aristotle")},
		{S: ex("zeno"), P: rdf.TypeIRI, O: ex("Stoic")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sparql.NewEngine(st)
}

// streamingCorpus exercises projection, DISTINCT, aggregates, OPTIONAL
// with unbound cells, VALUES, UNION, ORDER BY/LIMIT/OFFSET, ASK, and
// empty results — the differential corpus of the acceptance criteria.
var streamingCorpus = []string{
	`SELECT ?s WHERE { ?s a <http://example.org/Philosopher> . }`,
	`SELECT * WHERE { ?s ?p ?o . }`,
	`SELECT DISTINCT ?p WHERE { ?s ?p ?o . }`,
	`SELECT ?s ?t WHERE { ?s a <http://example.org/Philosopher> . OPTIONAL { ?s <http://example.org/teacher> ?t . } }`,
	`SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p`,
	`SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p HAVING (?n > 1)`,
	`SELECT ?s WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 3 OFFSET 1`,
	`SELECT ?s WHERE { VALUES ?s { <http://example.org/plato> <http://example.org/zeno> } ?s a ?c . }`,
	`SELECT ?s WHERE { { ?s a <http://example.org/Stoic> . } UNION { ?s a <http://example.org/Philosopher> . } }`,
	`SELECT ?s WHERE { ?s a <http://example.org/Nothing> . }`,
	`SELECT ?o WHERE { <http://example.org/plato> <http://example.org/quote> ?o . }`,
	`ASK { ?s a <http://example.org/Philosopher> . }`,
	`ASK { ?s a <http://example.org/Nothing> . }`,
}

// TestStreamingEncodersByteIdentical is the acceptance-criteria
// differential: for every corpus query and both streaming formats, the
// streamed HTTP body must equal the buffered encoder's output exactly.
func TestStreamingEncodersByteIdentical(t *testing.T) {
	eng := streamingFixtureEngine(t)
	buffered := NewServer(eng)
	buffered.DisableStreaming = true
	streaming := NewServer(eng)
	streaming.FlushRows = 2 // aggressive cadence: many flush boundaries

	for _, accept := range []string{ContentType, ContentTypeTSV} {
		for _, src := range streamingCorpus {
			req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(src), nil)
			req.Header.Set("Accept", accept)
			recB := httptest.NewRecorder()
			buffered.ServeHTTP(recB, req.Clone(req.Context()))
			recS := httptest.NewRecorder()
			streaming.ServeHTTP(recS, req)

			if recB.Code != http.StatusOK || recS.Code != http.StatusOK {
				t.Fatalf("%s %q: status buffered=%d streaming=%d", accept, src, recB.Code, recS.Code)
			}
			if !bytes.Equal(recB.Body.Bytes(), recS.Body.Bytes()) {
				t.Errorf("%s %q:\nbuffered:  %s\nstreaming: %s", accept, src, recB.Body.String(), recS.Body.String())
			}
			if ct := recS.Header().Get("Content-Type"); ct != accept {
				t.Errorf("%s %q: streaming content type = %q", accept, src, ct)
			}
		}
	}
}

// TestStreamingFlushes: with FlushRows=1 the recorder must see a flush
// before the response completes.
func TestStreamingFlushes(t *testing.T) {
	eng := streamingFixtureEngine(t)
	s := NewServer(eng)
	s.FlushRows = 1
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(`SELECT * WHERE { ?s ?p ?o . }`), nil)
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !rec.Flushed {
		t.Error("streaming response was never flushed")
	}
}

// TestStreamingErrorsKeepStatusCodes: failures raised before the first
// row (parse errors, deadlines) must still map to proper statuses on the
// streaming path.
func TestStreamingErrorsKeepStatusCodes(t *testing.T) {
	eng := streamingFixtureEngine(t)
	s := NewServer(eng)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape("NOT SPARQL"), nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("parse error status = %d, want 400", rec.Code)
	}

	s.Timeout = time.Nanosecond
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(`SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . }`), nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("deadline status = %d, want 504", rec.Code)
	}
}

// TestStreamingCSVFallsBackBuffered: formats without a streaming encoder
// still work through the buffered path (with Content-Length set).
func TestStreamingCSVFallsBackBuffered(t *testing.T) {
	eng := streamingFixtureEngine(t)
	s := NewServer(eng)
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(`SELECT ?s WHERE { ?s a <http://example.org/Stoic> . }`), nil)
	req.Header.Set("Accept", ContentTypeCSV)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("Content-Length") == "" {
		t.Error("buffered fallback should set Content-Length")
	}
	if _, err := io.ReadAll(rec.Result().Body); err != nil {
		t.Fatal(err)
	}
}

// TestStreamerAbortLeavesDocumentUnterminated: a mid-stream abort must
// NOT write the JSON terminator — a truncated result has to stay
// syntactically incomplete so clients can tell it from a complete one.
func TestStreamerAbortLeavesDocumentUnterminated(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONStreamer(&buf, nil, 1)
	if err := s.Head([]string{"s"}, false, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Row(sparql.Solution{"s": ex("a")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if strings.HasSuffix(body, "]}}") {
		t.Fatalf("aborted stream was terminated as a complete document: %s", body)
	}
	var doc any
	if json.Unmarshal(buf.Bytes(), &doc) == nil {
		t.Fatalf("aborted body parses as complete JSON: %s", body)
	}
}

// TestLimiterCancelledHeadWakesFollowers is the missed-wakeup
// regression: when the head-of-line waiter cancels, smaller queued
// waiters that now fit must be granted immediately, not on the next
// Release.
func TestLimiterCancelledHeadWakesFollowers(t *testing.T) {
	l := NewLimiter(10)
	if err := l.Acquire(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	// Head waiter wants 5 (does not fit: 6+5>10).
	headCtx, cancelHead := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() { headErr <- l.Acquire(headCtx, 5) }()
	for l.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Follower wants 4 (fits: 6+4=10) but FIFO blocks it behind the head.
	followerDone := make(chan error, 1)
	go func() { followerDone <- l.Acquire(context.Background(), 4) }()
	for l.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancelHead()
	if err := <-headErr; err == nil {
		t.Fatal("canceled head acquire should fail")
	}
	select {
	case err := <-followerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("follower not granted after head-of-line waiter canceled")
	}
	l.Release(4)
	l.Release(6)
	if got := l.InFlight(); got != 0 {
		t.Errorf("in-flight = %d after full release", got)
	}
}
