package endpoint

import (
	"container/list"
	"context"
	"sync"
)

// Limiter is a FIFO weighted semaphore: the admission-control primitive
// of the serving tier. Each request acquires a weight (its estimated
// cost) against a fixed capacity; when the capacity is exhausted,
// acquirers queue in arrival order — FIFO, so a heavy request cannot be
// starved by a stream of light ones slipping past it. A saturated server
// sheds load at admission (the HTTP layer turns a failed Acquire into
// 429 + Retry-After) instead of stacking goroutines until it collapses.
type Limiter struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	waiters  list.List // of *limiterWaiter, FIFO
}

type limiterWaiter struct {
	weight int64
	ready  chan struct{}
}

// NewLimiter returns a limiter admitting at most capacity total weight
// concurrently. capacity must be positive.
func NewLimiter(capacity int64) *Limiter {
	if capacity <= 0 {
		capacity = 1
	}
	return &Limiter{capacity: capacity}
}

// Acquire blocks until weight units are available or ctx is done. A
// weight above the capacity is clamped to it (the request is maximally
// heavy, not impossible). The returned error is ctx.Err() on failure;
// nil means the caller owns the weight and must Release it.
func (l *Limiter) Acquire(ctx context.Context, weight int64) error {
	if weight < 1 {
		weight = 1
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	if l.waiters.Len() == 0 && l.inUse+weight <= l.capacity {
		l.inUse += weight
		l.mu.Unlock()
		return nil
	}
	if ctx.Err() != nil {
		// Saturated and the caller is not willing to wait at all.
		l.mu.Unlock()
		return ctx.Err()
	}
	w := &limiterWaiter{weight: weight, ready: make(chan struct{})}
	el := l.waiters.PushBack(w)
	l.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: hand the weight back and
			// wake whoever is next. (ready is only closed under l.mu, so
			// this re-check is race-free.)
			l.inUse -= weight
			l.grantLocked()
		default:
			l.waiters.Remove(el)
			// A departing head-of-line waiter may have been the only
			// thing blocking smaller queued requests that already fit.
			l.grantLocked()
		}
		l.mu.Unlock()
		return ctx.Err()
	}
}

// TryAcquire acquires weight units without waiting. It reports success.
func (l *Limiter) TryAcquire(weight int64) bool {
	if weight < 1 {
		weight = 1
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.waiters.Len() == 0 && l.inUse+weight <= l.capacity {
		l.inUse += weight
		return true
	}
	return false
}

// Release returns weight units (clamped like Acquire) and wakes queued
// acquirers in FIFO order.
func (l *Limiter) Release(weight int64) {
	if weight < 1 {
		weight = 1
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	l.inUse -= weight
	if l.inUse < 0 {
		l.inUse = 0
	}
	l.grantLocked()
	l.mu.Unlock()
}

// grantLocked admits queued waiters from the front while they fit.
func (l *Limiter) grantLocked() {
	for l.waiters.Len() > 0 {
		front := l.waiters.Front()
		w := front.Value.(*limiterWaiter)
		if l.inUse+w.weight > l.capacity {
			return
		}
		l.inUse += w.weight
		l.waiters.Remove(front)
		close(w.ready)
	}
}

// InFlight returns the weight currently admitted.
func (l *Limiter) InFlight() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// Waiting returns the number of queued acquirers.
func (l *Limiter) Waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiters.Len()
}

// Capacity returns the limiter's total weight capacity.
func (l *Limiter) Capacity() int64 { return l.capacity }
