package endpoint

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"elinda/internal/sparql"
)

// TestServerExplain: explain=1 returns the plan document instead of
// executing the query, via GET and POST form alike.
func TestServerExplain(t *testing.T) {
	srv := httptest.NewServer(NewServer(newTestEngine(t)))
	defer srv.Close()
	query := `SELECT ?s WHERE { ?s a <http://example.org/Philosopher> . ?s <http://example.org/born> ?y . }`

	get, err := http.Get(srv.URL + "?query=" + url.QueryEscape(query) + "&explain=1")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	post, err := http.PostForm(srv.URL, url.Values{"query": {query}, "explain": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()

	for name, resp := range map[string]*http.Response{"GET": get, "POST": post} {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content type = %q", name, ct)
		}
		var rep sparql.PlanReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if rep.Mode != "dp" || len(rep.Steps) != 2 {
			t.Errorf("%s report = %+v", name, rep)
		}
	}
}

// TestServerExplainErrors: a parse error is a 400; an executor without
// Explain support answers 501.
func TestServerExplainErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer(newTestEngine(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape("SELECT WHERE {") + "&explain=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parse error status = %d, want 400", resp.StatusCode)
	}

	plain := httptest.NewServer(NewServer(ExecutorFunc(func(ctx context.Context, src string) (*sparql.Result, error) {
		return &sparql.Result{}, nil
	})))
	defer plain.Close()
	resp, err = http.Get(plain.URL + "?query=" + url.QueryEscape("SELECT * WHERE { ?s ?p ?o . }") + "&explain=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("non-explainer status = %d, want 501 (%s)", resp.StatusCode, strings.TrimSpace(string(body)))
	}
}
