package endpoint

import (
	"encoding/csv"
	"encoding/xml"
	"fmt"
	"strings"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// Media types for the SPARQL 1.1 results formats the server negotiates.
const (
	ContentTypeCSV = "text/csv"
	ContentTypeTSV = "text/tab-separated-values"
	ContentTypeXML = "application/sparql-results+xml"
)

// NegotiateFormat picks a result serializer for an Accept header value.
// JSON is the default for empty, unknown, or wildcard values.
func NegotiateFormat(accept string) (contentType string, marshal func(*sparql.Result) ([]byte, error)) {
	for _, part := range strings.Split(accept, ",") {
		media := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch media {
		case ContentTypeCSV:
			return ContentTypeCSV, MarshalCSV
		case ContentTypeTSV:
			return ContentTypeTSV, MarshalTSV
		case ContentTypeXML:
			return ContentTypeXML, MarshalXML
		case ContentType, "application/json":
			return ContentType, MarshalResult
		}
	}
	return ContentType, MarshalResult
}

// MarshalCSV encodes results per the SPARQL 1.1 CSV format: a header of
// variable names, values as plain strings (IRIs bare, literals by lexical
// form), unbound cells empty.
func MarshalCSV(res *sparql.Result) ([]byte, error) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if res.Ask {
		if err := w.Write([]string{"boolean"}); err != nil {
			return nil, fmt.Errorf("endpoint: csv: %w", err)
		}
		if err := w.Write([]string{fmt.Sprint(res.AskTrue)}); err != nil {
			return nil, fmt.Errorf("endpoint: csv: %w", err)
		}
	} else {
		if err := w.Write(res.Vars); err != nil {
			return nil, fmt.Errorf("endpoint: csv: %w", err)
		}
		row := make([]string, len(res.Vars))
		for _, sol := range res.Rows {
			for i, v := range res.Vars {
				if t, ok := sol[v]; ok {
					row[i] = t.Value
				} else {
					row[i] = ""
				}
			}
			if err := w.Write(row); err != nil {
				return nil, fmt.Errorf("endpoint: csv: %w", err)
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, fmt.Errorf("endpoint: csv: %w", err)
	}
	return []byte(sb.String()), nil
}

// MarshalTSV encodes results per the SPARQL 1.1 TSV format: variables
// prefixed with '?', terms in N-Triples syntax, tab separators. It
// renders through the same line helpers as TSVStreamer, so the buffered
// and streaming bodies are identical by construction.
func MarshalTSV(res *sparql.Result) ([]byte, error) {
	var sb strings.Builder
	if res.Ask {
		sb.WriteString("?boolean\n")
		fmt.Fprintf(&sb, "%v\n", res.AskTrue)
		return []byte(sb.String()), nil
	}
	sb.WriteString(tsvHeaderLine(res.Vars))
	for _, sol := range res.Rows {
		sb.WriteString(tsvRowLine(res.Vars, sol))
	}
	return []byte(sb.String()), nil
}

// tsvHeaderLine renders the '?'-prefixed variable header row.
func tsvHeaderLine(vars []string) string {
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteByte('\t')
		}
		sb.WriteString("?" + v)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// tsvRowLine renders one solution row in variable order.
func tsvRowLine(vars []string, sol sparql.Solution) string {
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteByte('\t')
		}
		if t, ok := sol[v]; ok {
			sb.WriteString(tsvTerm(t))
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

func tsvTerm(t rdf.Term) string {
	// N-Triples rendering, with tabs/newlines already escaped by
	// Term.String for literals.
	return t.String()
}

// xmlSparql mirrors the SPARQL Query Results XML Format.
type xmlSparql struct {
	XMLName xml.Name    `xml:"sparql"`
	Xmlns   string      `xml:"xmlns,attr"`
	Head    xmlHead     `xml:"head"`
	Boolean *bool       `xml:"boolean,omitempty"`
	Results *xmlResults `xml:"results,omitempty"`
}

type xmlHead struct {
	Variables []xmlVariable `xml:"variable"`
}

type xmlVariable struct {
	Name string `xml:"name,attr"`
}

type xmlResults struct {
	Results []xmlResult `xml:"result"`
}

type xmlResult struct {
	Bindings []xmlBinding `xml:"binding"`
}

type xmlBinding struct {
	Name    string      `xml:"name,attr"`
	URI     string      `xml:"uri,omitempty"`
	BNode   string      `xml:"bnode,omitempty"`
	Literal *xmlLiteral `xml:"literal,omitempty"`
}

type xmlLiteral struct {
	Lang     string `xml:"xml:lang,attr,omitempty"`
	Datatype string `xml:"datatype,attr,omitempty"`
	Value    string `xml:",chardata"`
}

// MarshalXML encodes results per the SPARQL Query Results XML Format.
func MarshalXML(res *sparql.Result) ([]byte, error) {
	doc := xmlSparql{Xmlns: "http://www.w3.org/2005/sparql-results#"}
	if res.Ask {
		b := res.AskTrue
		doc.Boolean = &b
	} else {
		for _, v := range res.Vars {
			doc.Head.Variables = append(doc.Head.Variables, xmlVariable{Name: v})
		}
		doc.Results = &xmlResults{}
		for _, sol := range res.Rows {
			var r xmlResult
			for _, v := range res.Vars {
				t, ok := sol[v]
				if !ok {
					continue
				}
				b := xmlBinding{Name: v}
				switch t.Kind {
				case rdf.IRI:
					b.URI = t.Value
				case rdf.Blank:
					b.BNode = t.Value
				default:
					b.Literal = &xmlLiteral{Lang: t.Lang, Datatype: t.Datatype, Value: t.Value}
				}
				r.Bindings = append(r.Bindings, b)
			}
			doc.Results.Results = append(doc.Results.Results, r)
		}
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("endpoint: xml: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}
