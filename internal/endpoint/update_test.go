package endpoint

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"elinda/internal/store"
)

// stubUpdater records what it was asked to apply.
type stubUpdater struct {
	src string
	res store.ApplyResult
	err error
}

func (u *stubUpdater) Update(ctx context.Context, src string) (store.ApplyResult, error) {
	u.src = src
	return u.res, u.err
}

func postUpdate(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, UpdateContentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestUpdateDirectPost(t *testing.T) {
	u := &stubUpdater{res: store.ApplyResult{From: 4, To: 6, Inserted: 2}}
	s := NewServer(newTestEngine(t))
	s.Updater = u
	srv := httptest.NewServer(s)
	defer srv.Close()

	body := `INSERT DATA { <http://x/s> <http://x/p> <http://x/o> }`
	resp := postUpdate(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if u.src != body {
		t.Fatalf("updater saw %q, want %q", u.src, body)
	}
	var stats UpdateStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 2 || stats.Generation != 6 {
		t.Fatalf("ack = %+v", stats)
	}
	if got := s.MetricsSnapshot().Updates; got != 1 {
		t.Fatalf("updates metric = %d", got)
	}
}

// TestUpdateContentTypeParameters: media type parameters (charset) must
// not break content-type detection.
func TestUpdateContentTypeParameters(t *testing.T) {
	u := &stubUpdater{}
	s := NewServer(newTestEngine(t))
	s.Updater = u
	srv := httptest.NewServer(s)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL, strings.NewReader("DELETE DATA { <http://x/s> <http://x/p> <http://x/o> }"))
	req.Header.Set("Content-Type", UpdateContentType+"; charset=UTF-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || u.src == "" {
		t.Fatalf("status = %d, updater saw %q", resp.StatusCode, u.src)
	}
}

func TestUpdateFormField(t *testing.T) {
	u := &stubUpdater{}
	s := NewServer(newTestEngine(t))
	s.Updater = u
	srv := httptest.NewServer(s)
	defer srv.Close()

	body := `INSERT DATA { <http://x/s> <http://x/p> <http://x/o> }`
	resp, err := http.PostForm(srv.URL, url.Values{"update": {body}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if u.src != body {
		t.Fatalf("updater saw %q", u.src)
	}
}

// TestUpdateViaGETRejected: the SPARQL protocol forbids updates through
// GET; the update parameter must be ignored there.
func TestUpdateViaGETRejected(t *testing.T) {
	u := &stubUpdater{}
	s := NewServer(newTestEngine(t))
	s.Updater = u
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?update=" + url.QueryEscape(`INSERT DATA { <http://x/s> <http://x/p> <http://x/o> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET with update= served as success")
	}
	if u.src != "" {
		t.Fatalf("GET reached the updater: %q", u.src)
	}
}

func TestUpdateWithoutUpdaterIs501(t *testing.T) {
	s := NewServer(newTestEngine(t))
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp := postUpdate(t, srv.URL, `INSERT DATA { <http://x/s> <http://x/p> <http://x/o> }`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

// TestUpdateOversizedBodyRejected: bodies beyond maxUpdateBytes are
// refused, not buffered.
func TestUpdateOversizedBodyRejected(t *testing.T) {
	u := &stubUpdater{}
	s := NewServer(newTestEngine(t))
	s.Updater = u
	srv := httptest.NewServer(s)
	defer srv.Close()

	big := strings.Repeat("#", maxUpdateBytes+1)
	resp := postUpdate(t, srv.URL, big)
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("oversized update accepted")
	}
	if u.src != "" {
		t.Fatal("oversized body reached the updater")
	}
}
