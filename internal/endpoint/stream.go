package endpoint

// Streaming result encoders. The buffered path (NegotiateFormat +
// Marshal*) materializes a *sparql.Result and then a full []byte body;
// for large results that doubles peak memory and delays the first byte
// until the last row is computed. The streamers below implement
// sparql.RowSink and emit the SPARQL 1.1 JSON and TSV formats row by row,
// flushing the HTTP response every FlushRows rows so clients see results
// while the query is still producing. Their output is byte-identical to
// the buffered encoders — the differential test in stream_test.go holds
// the two paths together.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"elinda/internal/sparql"
)

// DefaultFlushRows is the streaming flush cadence when the server does
// not configure one: every 256 rows the encoder pushes buffered bytes to
// the client.
const DefaultFlushRows = 256

// ResultStreamer is a sparql.RowSink that serializes a result
// incrementally. Close finishes the document after a successful
// execution; Abort flushes what was written WITHOUT terminating the
// document, so a mid-stream failure leaves the body visibly truncated
// (a closed JSON document would read as a complete, smaller result);
// Started reports whether any byte has actually reached the underlying
// writer — not merely the encoder's internal buffer — i.e. whether an
// HTTP handler can still switch to an error status.
type ResultStreamer interface {
	sparql.RowSink
	Close() error
	Abort() error
	Started() bool
}

// NegotiateStreamer picks a streaming encoder for an Accept header value,
// writing to w (flushed through f, when non-nil, every flushEvery rows;
// flushEvery <= 0 means DefaultFlushRows). ok=false means the format only
// has a buffered encoder (CSV, XML) and the caller must fall back.
func NegotiateStreamer(accept string, w io.Writer, f http.Flusher, flushEvery int) (contentType string, s ResultStreamer, ok bool) {
	ct, _ := NegotiateFormat(accept)
	switch ct {
	case ContentType:
		return ct, NewJSONStreamer(w, f, flushEvery), true
	case ContentTypeTSV:
		return ct, NewTSVStreamer(w, f, flushEvery), true
	}
	return ct, nil, false
}

// countingWriter tracks whether anything reached the real writer — the
// bufio layer (and its automatic overflow flushes) makes "we wrote into
// the encoder" different from "the response is committed on the wire".
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// streamBase carries the shared buffering/flush mechanics.
type streamBase struct {
	cw      *countingWriter
	bw      *bufio.Writer
	flusher http.Flusher
	every   int
	rows    int
}

func newStreamBase(w io.Writer, f http.Flusher, every int) streamBase {
	if every <= 0 {
		every = DefaultFlushRows
	}
	cw := &countingWriter{w: w}
	return streamBase{cw: cw, bw: bufio.NewWriterSize(cw, 16<<10), flusher: f, every: every}
}

// Started implements ResultStreamer: true only once bytes are on the
// wire. An error raised while the header still sits in the bufio buffer
// can therefore still be turned into a proper HTTP error status (the
// buffered bytes are simply never flushed).
func (s *streamBase) Started() bool { return s.cw.n > 0 }

// Abort implements ResultStreamer: flush pending bytes, no terminator.
func (s *streamBase) Abort() error { return s.flushNow() }

// rowDone counts a row and flushes on the configured cadence.
func (s *streamBase) rowDone() error {
	s.rows++
	if s.rows%s.every != 0 {
		return nil
	}
	return s.flushNow()
}

func (s *streamBase) flushNow() error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
	return nil
}

// JSONStreamer emits the SPARQL 1.1 Query Results JSON Format
// incrementally, byte-identical to MarshalResult.
type JSONStreamer struct {
	streamBase
	ask bool
}

// NewJSONStreamer returns a streamer writing to w.
func NewJSONStreamer(w io.Writer, f http.Flusher, flushEvery int) *JSONStreamer {
	return &JSONStreamer{streamBase: newStreamBase(w, f, flushEvery)}
}

// Head implements sparql.RowSink.
func (s *JSONStreamer) Head(vars []string, ask, askTrue bool) error {
	if ask {
		// ASK bodies are a handful of bytes; reuse the buffered encoder
		// so the two paths cannot drift.
		s.ask = true
		data, err := MarshalResult(&sparql.Result{Ask: true, AskTrue: askTrue})
		if err != nil {
			return err
		}
		_, err = s.bw.Write(data)
		return err
	}
	head, err := json.Marshal(jsonHead{Vars: vars})
	if err != nil {
		return fmt.Errorf("endpoint: marshaling head: %w", err)
	}
	if _, err := fmt.Fprintf(s.bw, `{"head":%s,"results":{"bindings":[`, head); err != nil {
		return err
	}
	return nil
}

// Row implements sparql.RowSink. Each row is marshaled exactly as the
// buffered encoder marshals the elements of its bindings array (same
// struct, same map-key ordering from encoding/json).
func (s *JSONStreamer) Row(sol sparql.Solution) error {
	m := make(map[string]jsonTerm, len(sol))
	for v, t := range sol {
		m[v] = termToJSON(t)
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("endpoint: marshaling row: %w", err)
	}
	if s.rows > 0 {
		if err := s.bw.WriteByte(','); err != nil {
			return err
		}
	}
	if _, err := s.bw.Write(data); err != nil {
		return err
	}
	return s.rowDone()
}

// Close implements ResultStreamer.
func (s *JSONStreamer) Close() error {
	if !s.ask {
		if _, err := s.bw.WriteString("]}}"); err != nil {
			return err
		}
	}
	return s.flushNow()
}

// TSVStreamer emits the SPARQL 1.1 TSV format incrementally,
// byte-identical to MarshalTSV (both render through tsvHeaderLine and
// tsvRowLine).
type TSVStreamer struct {
	streamBase
	vars []string
}

// NewTSVStreamer returns a streamer writing to w.
func NewTSVStreamer(w io.Writer, f http.Flusher, flushEvery int) *TSVStreamer {
	return &TSVStreamer{streamBase: newStreamBase(w, f, flushEvery)}
}

// Head implements sparql.RowSink.
func (s *TSVStreamer) Head(vars []string, ask, askTrue bool) error {
	if ask {
		_, err := fmt.Fprintf(s.bw, "?boolean\n%v\n", askTrue)
		return err
	}
	s.vars = vars
	_, err := s.bw.WriteString(tsvHeaderLine(vars))
	return err
}

// Row implements sparql.RowSink.
func (s *TSVStreamer) Row(sol sparql.Solution) error {
	if _, err := s.bw.WriteString(tsvRowLine(s.vars, sol)); err != nil {
		return err
	}
	return s.rowDone()
}

// Close implements ResultStreamer.
func (s *TSVStreamer) Close() error { return s.flushNow() }
