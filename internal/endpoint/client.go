package endpoint

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"elinda/internal/sparql"
)

// Client queries a remote SPARQL endpoint over HTTP/JSON. It implements
// Executor, so the explorer can treat a remote Virtuoso endpoint exactly
// like the local engine — the paper's remote-compatibility mode, where
// "the user [applies] eLinda to the exploration of such sources ... by
// merely specifying the endpoint URL".
type Client struct {
	// URL is the endpoint address, e.g. "http://dbpedia.example/sparql".
	URL string
	// HTTPClient is the transport; http.DefaultClient when nil.
	HTTPClient *http.Client
	// UsePOST selects POST form submission instead of GET (needed for
	// queries longer than typical URL limits).
	UsePOST bool
}

// NewClient returns a client for the endpoint at rawURL.
func NewClient(rawURL string) *Client {
	return &Client{URL: rawURL, HTTPClient: &http.Client{Timeout: 60 * time.Second}}
}

// Query implements Executor by performing an HTTP round-trip.
func (c *Client) Query(ctx context.Context, src string) (*sparql.Result, error) {
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var req *http.Request
	var err error
	if c.UsePOST {
		form := url.Values{"query": {src}}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, c.URL, strings.NewReader(form.Encode()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	} else {
		u := c.URL
		if strings.Contains(u, "?") {
			u += "&query=" + url.QueryEscape(src)
		} else {
			u += "?query=" + url.QueryEscape(src)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}
	if err != nil {
		return nil, fmt.Errorf("endpoint: building request: %w", err)
	}
	req.Header.Set("Accept", ContentType)

	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("endpoint: request failed: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("endpoint: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("endpoint: HTTP %d: %s", resp.StatusCode, truncate(string(body), 200))
	}
	return UnmarshalResult(body)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
