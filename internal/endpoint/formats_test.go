package endpoint

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

func sampleResult() *sparql.Result {
	return &sparql.Result{
		Vars: []string{"s", "v"},
		Rows: []sparql.Solution{
			{"s": ex("plato"), "v": rdf.NewLangLiteral("Plato", "en")},
			{"s": rdf.NewBlank("b0"), "v": rdf.NewTypedLiteral("7", rdf.XSDInteger)},
			{"s": ex("partial")},
		},
	}
}

func TestMarshalCSV(t *testing.T) {
	out, err := MarshalCSV(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "s,v" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "http://example.org/plato") || !strings.Contains(lines[1], "Plato") {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Unbound cell renders empty.
	if !strings.HasSuffix(lines[3], ",") {
		t.Errorf("unbound cell not empty: %q", lines[3])
	}
}

func TestMarshalCSVAsk(t *testing.T) {
	out, err := MarshalCSV(&sparql.Result{Ask: true, AskTrue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "true") {
		t.Errorf("ASK CSV = %q", out)
	}
}

func TestMarshalTSV(t *testing.T) {
	out, err := MarshalTSV(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[0] != "?s\t?v" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "<http://example.org/plato>") {
		t.Errorf("IRIs must be N-Triples formatted: %q", lines[1])
	}
	if !strings.Contains(lines[1], `"Plato"@en`) {
		t.Errorf("literals must keep tags: %q", lines[1])
	}
	if !strings.Contains(lines[2], "_:b0") {
		t.Errorf("bnode form: %q", lines[2])
	}
}

func TestMarshalXML(t *testing.T) {
	out, err := MarshalXML(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`<variable name="s">`,
		`<uri>http://example.org/plato</uri>`,
		`xml:lang="en"`,
		`<bnode>b0</bnode>`,
		`datatype="` + rdf.XSDInteger + `"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("XML missing %q:\n%s", want, s)
		}
	}
	askOut, err := MarshalXML(&sparql.Result{Ask: true, AskTrue: false})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(askOut), "<boolean>false</boolean>") {
		t.Errorf("ASK XML = %s", askOut)
	}
}

func TestNegotiateFormat(t *testing.T) {
	cases := []struct {
		accept string
		want   string
	}{
		{"", ContentType},
		{"*/*", ContentType},
		{"application/sparql-results+json", ContentType},
		{"application/json", ContentType},
		{"text/csv", ContentTypeCSV},
		{"text/tab-separated-values", ContentTypeTSV},
		{"application/sparql-results+xml", ContentTypeXML},
		{"text/html, text/csv;q=0.9", ContentTypeCSV},
		{"totally/bogus", ContentType},
	}
	for _, c := range cases {
		got, marshal := NegotiateFormat(c.accept)
		if got != c.want {
			t.Errorf("Negotiate(%q) = %q, want %q", c.accept, got, c.want)
		}
		if marshal == nil {
			t.Errorf("Negotiate(%q) returned nil marshaler", c.accept)
		}
	}
}

func TestServerContentNegotiation(t *testing.T) {
	srv := httptest.NewServer(NewServer(newTestEngine(t)))
	defer srv.Close()
	q := url.QueryEscape(`SELECT ?s WHERE { ?s a <http://example.org/Philosopher> . } ORDER BY ?s`)
	for accept, wantCT := range map[string]string{
		"text/csv":                       ContentTypeCSV,
		"text/tab-separated-values":      ContentTypeTSV,
		"application/sparql-results+xml": ContentTypeXML,
		"":                               ContentType,
	} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"?query="+q, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if ct != wantCT {
			t.Errorf("Accept %q: content type = %q, want %q", accept, ct, wantCT)
		}
	}
}
