package endpoint

import (
	"net/http"
	"runtime/debug"
	"sync/atomic"

	"elinda/internal/metrics"
)

// RecoverPanics wraps next so a panicking handler costs one request, not
// the process: the panic is counted, logged with its stack, and answered
// with a 500 (when nothing was written yet). http.ErrAbortHandler is
// re-panicked — it is net/http's own sanctioned way to abort a response
// and must keep its semantics.
func RecoverPanics(next http.Handler, panics *metrics.Counter, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if panics != nil {
				panics.Inc()
			}
			if logf != nil {
				logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			}
			// Best effort: if the handler already wrote a header this is a
			// no-op superfluous-WriteHeader, which net/http just logs.
			w.WriteHeader(http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// Readiness is the /readyz probe state: distinct from liveness, it
// answers 503 while the process is loading, replaying its WAL, or
// draining for shutdown — exactly the windows a load balancer must route
// around even though the process is alive. The zero value is not ready
// with an empty phase.
type Readiness struct {
	phase atomic.Pointer[string]
	ready atomic.Bool
}

// Set marks the server not ready and records the phase name the probe
// reports (e.g. "loading", "wal-replay", "draining").
func (r *Readiness) Set(phase string) {
	r.phase.Store(&phase)
	r.ready.Store(false)
}

// Ready marks the server ready to serve.
func (r *Readiness) Ready() {
	r.ready.Store(true)
}

// IsReady reports the current state.
func (r *Readiness) IsReady() bool { return r.ready.Load() }

// ServeHTTP answers 200 "ready" or 503 "not ready: <phase>".
func (r *Readiness) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r.ready.Load() {
		w.Write([]byte("ready\n"))
		return
	}
	phase := ""
	if p := r.phase.Load(); p != nil {
		phase = *p
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	if phase == "" {
		w.Write([]byte("not ready\n"))
		return
	}
	w.Write([]byte("not ready: " + phase + "\n"))
}
