// Fixture for the maporder analyzer: a range over a map may only feed an
// ordered sink through an explicit sort.
package maporderfix

import (
	"fmt"
	"sort"
	"strings"
)

func badAppendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `"out" is never sorted in this function`
	}
	return out
}

func goodAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// goodProjectSortHelper: a project helper whose name says it sorts
// counts too (the analyzer cannot see through the call).
func sortLabels(ls []string) { sort.Strings(ls) }

func goodHelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortLabels(out)
	return out
}

func badFmtWrite(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want `fmt\.Fprintf inside a map range emits in nondeterministic order`
	}
}

func badBuilderWrite(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `sb\.WriteString inside a map range emits in nondeterministic order`
	}
}

func badChannelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside a map range`
	}
}

func badCallback(m map[string]int, emit func(string)) {
	for k := range m {
		emit(k) // want `callback emit inside a map range`
	}
}

// goodBucketPerKey rebuilds another map keyed by the range key; each
// bucket is written exactly once, so no iteration order leaks.
func goodBucketPerKey(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// goodReduce folds to a scalar — order-insensitive.
func goodReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodSuppressed documents a sink where order genuinely cannot matter.
func goodSuppressed(m map[string]int, sink func(string)) {
	for k := range m {
		//lint:ignore maporder sink deduplicates into a set, order never observed
		sink(k)
	}
}
