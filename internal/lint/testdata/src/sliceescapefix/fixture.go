// Fixture for the sliceescape analyzer: zero-copy snapshot slices must
// not be parked in storage that outlives the call frame.
package sliceescapefix

import (
	"elinda/internal/rdf"
	"elinda/internal/store"
)

type holder struct {
	ids []rdf.ID
}

var pkgIDs []rdf.ID

func badStructField(snap *store.Snapshot, h *holder, s, p rdf.ID) {
	h.ids = snap.Objects(s, p) // want `stored in struct field h\.ids`
}

func badPackageVar(snap *store.Snapshot, p, o rdf.ID) {
	pkgIDs = snap.Subjects(p, o) // want `stored in package variable pkgIDs`
}

func badChannelSend(snap *store.Snapshot, ch chan []rdf.ID, class rdf.ID) {
	ch <- snap.SubjectsOfType(class) // want `stored in a channel send`
}

func badCompositeLit(snap *store.Snapshot, s, p rdf.ID) map[string][]rdf.ID {
	return map[string][]rdf.ID{
		"objects": snap.Objects(s, p), // want `stored in a composite literal`
	}
}

func badMapElement(snap *store.Snapshot, m map[rdf.ID][]rdf.ID, s, p rdf.ID) {
	m[s] = snap.Objects(s, p) // want `stored in element m\[s\]`
}

func badStoreWrapper(st *store.Store, s, p rdf.ID, h *holder) {
	h.ids = st.Objects(s, p) // want `stored in struct field h\.ids`
}

// goodLocalUse keeps the slice inside the call frame.
func goodLocalUse(snap *store.Snapshot, s, p rdf.ID) int {
	objs := snap.Objects(s, p)
	return len(objs)
}

// goodCopy is the sanctioned escape: an explicit copy owns its memory.
func goodCopy(snap *store.Snapshot, h *holder, s, p rdf.ID) {
	h.ids = append([]rdf.ID(nil), snap.Objects(s, p)...)
}

// goodSuppressed documents a deliberate short-lived store.
func goodSuppressed(snap *store.Snapshot, h *holder, s, p rdf.ID) {
	//lint:ignore sliceescape holder is dropped before the snapshot in this scope
	h.ids = snap.Objects(s, p)
}
