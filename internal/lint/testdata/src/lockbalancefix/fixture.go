// Fixture for the lockbalance analyzer, rule 1: Lock/Unlock balance on
// every path.
package lockbalancefix

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func goodDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func goodExplicit(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func goodUnlockInBranches(c *counter, cond bool) int {
	c.mu.Lock()
	if cond {
		n := c.n
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()
	return 0
}

func goodUnlockBeforeNested(c *counter, cond bool) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	if cond {
		return n // the unlock above covers this nested return
	}
	return 0
}

func badNoUnlock(c *counter) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) has no matching Unlock`
	c.n++
}

func badNoRUnlock(c *counter) int {
	c.rw.RLock() // want `c\.rw\.RLock\(\) has no matching Unlock`
	return c.n
}

func badEarlyReturn(c *counter, cond bool) int {
	c.mu.Lock()
	if cond {
		return c.n // want `return while c\.mu\.Lock may still be held`
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func goodDeferredClosure(c *counter) int {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	return c.n
}

func goodSuppressed(c *counter) {
	//lint:ignore lockbalance handed to the caller locked; release happens in closeLocked
	c.mu.Lock()
	c.n++
}
