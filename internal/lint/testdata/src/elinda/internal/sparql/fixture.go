// Fixture for the ctxloop analyzer: it poses as the in-scope sparql
// package. Input-dependent loops in ctx-carrying functions must poll.
package sparql

import "context"

func work(n int) int { return n * 2 }

// badUnpolled loops over input-sized data without ever consulting ctx.
func badUnpolled(ctx context.Context, rows []int) int {
	total := 0
	for _, r := range rows { // want `without polling ctx`
		total += work(r)
	}
	_ = ctx
	return total
}

// goodDirectPoll checks ctx.Err on a stride.
func goodDirectPoll(ctx context.Context, rows []int) (int, error) {
	total := 0
	for i, r := range rows {
		if i%1024 == 1023 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += work(r)
	}
	return total, nil
}

// goodHelperPoll polls through a local closure — the check(i) idiom used
// by the ID-space filter path.
func goodHelperPoll(ctx context.Context, rows []int) (int, error) {
	check := func(i int) error {
		if i%1024 == 1023 {
			return ctx.Err()
		}
		return nil
	}
	total := 0
	for i, r := range rows {
		if err := check(i); err != nil {
			return 0, err
		}
		total += work(r)
	}
	return total, nil
}

// goodOuterPoll: polling in the enclosing loop covers the inner one.
func goodOuterPoll(ctx context.Context, blocks [][]int) (int, error) {
	total := 0
	for _, rows := range blocks {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, r := range rows {
			total += work(r)
		}
	}
	return total, nil
}

// goodNoCtx has nothing to poll; the analyzer stays silent.
func goodNoCtx(rows []int) int {
	total := 0
	for _, r := range rows {
		total += work(r)
	}
	return total
}

// goodConstantBound runs a fixed number of iterations.
func goodConstantBound(ctx context.Context) int {
	total := 0
	for i := 0; i < 64; i++ {
		total += work(i)
	}
	_ = ctx
	return total
}

// goodCheapBody only appends; no calls or nested loops worth a poll.
func goodCheapBody(ctx context.Context, rows []int) []int {
	var out []int
	for _, r := range rows {
		out = append(out, r)
	}
	_ = ctx
	return out
}

// goodSuppressed documents a loop whose bound the analyzer cannot see.
func goodSuppressed(ctx context.Context, rows []int) int {
	total := 0
	//lint:ignore ctxloop rows is capped at 3 entries by the caller
	for _, r := range rows {
		total += work(r)
	}
	_ = ctx
	return total
}
