// Fixture for the fsyncdiscipline analyzer: it poses as the in-scope
// wal package and mixes raw os file IO (flagged) with the sanctioned
// vfs seam and harmless os helpers (not flagged).
package wal

import (
	"os"

	"elinda/internal/vfs"
)

// badRawCreate writes a segment with raw os calls; none of these IO
// points would be covered by the crash matrix's fault injection.
func badRawCreate(dir string) error {
	f, err := os.Create(dir + "/wal-1.log") // want `os\.Create bypasses the vfs seam`
	if err != nil {
		return err
	}
	defer f.Close()
	if err := os.Rename(dir+"/a", dir+"/b"); err != nil { // want `os\.Rename bypasses the vfs seam`
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `os\.MkdirAll bypasses the vfs seam`
		return err
	}
	_ = os.Remove(dir + "/stale.tmp") // want `os\.Remove bypasses the vfs seam`
	if _, err := os.Stat(dir); err != nil { // want `os\.Stat bypasses the vfs seam`
		return err
	}
	_, err = os.ReadFile(dir + "/kb.snap") // want `os\.ReadFile bypasses the vfs seam`
	return err
}

// goodThroughVFS does the same work through the seam; every operation is
// a countable, injectable fault point.
func goodThroughVFS(fsys vfs.FS, dir string) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return err
	}
	f, err := fsys.Create(dir + "/wal-1.log")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// goodOSHelpers: error predicates and environment access are outside the
// discipline — they touch no files.
func goodOSHelpers(err error) bool {
	if os.IsNotExist(err) {
		return true
	}
	return os.Getenv("ELINDA_DEBUG") != ""
}

// suppressed: the escape hatch still works when a reason is given.
func suppressed(dir string) error {
	//lint:ignore fsyncdiscipline fixture exercising the suppression path
	return os.Remove(dir + "/x")
}
