// Fixture for the snapshotbind analyzer: it poses as the in-scope
// incremental package and exercises direct Store reads vs. bound
// snapshots.
package incremental

import (
	"elinda/internal/store"
)

// badDirectRead reads straight off the store twice; each read binds its
// own snapshot and the two may observe different generations.
func badDirectRead(st *store.Store) (int, int) {
	a := st.Len() // want `direct \(\*store\.Store\)\.Len read in query-scope code`
	b := st.Len() // want `direct \(\*store\.Store\)\.Len read in query-scope code`
	return a, b
}

// badDoubleBind takes two snapshots in one scope.
func badDoubleBind(st *store.Store) (int, int) {
	s1 := st.Snapshot()
	s2 := st.Snapshot() // want `Store\.Snapshot\(\) bound more than once`
	return s1.Len(), s2.Len()
}

// goodBoundReads binds once and reads through the snapshot.
func goodBoundReads(st *store.Store) (int, uint64) {
	snap := st.Snapshot()
	return snap.Len(), snap.Generation()
}

// goodSuppressed demonstrates the escape hatch for a deliberate
// single-read helper.
func goodSuppressed(st *store.Store) int {
	//lint:ignore snapshotbind single point-in-time read, no cross-read consistency needed
	return st.Len()
}

// goodNonReadMethods: Dict/Generation/TypeID do not bind snapshots per
// call and stay legal on the Store.
func goodNonReadMethods(st *store.Store) uint64 {
	_ = st.Dict()
	return st.Generation()
}
