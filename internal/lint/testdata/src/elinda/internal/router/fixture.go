// Fixture for the netretry analyzer: it poses as the in-scope router
// package. Outbound HTTP must carry a ctx deadline and flow through an
// explicitly injected transport.
package router

import (
	"context"
	"net/http"
	"net/url"
	"time"
)

// badConvenience uses the default-client helpers: no deadline, no seam.
func badConvenience() {
	http.Get("http://replica-0/readyz")                                       // want `http\.Get is forbidden`
	http.Post("http://replica-0/sparql", "text/plain", nil)                   // want `http\.Post is forbidden`
	http.Head("http://replica-0/healthz")                                     // want `http\.Head is forbidden`
	http.PostForm("http://replica-0/sparql", url.Values{"query": {"SELECT"}}) // want `http\.PostForm is forbidden`
}

// badDefaults references the shared client/transport directly.
func badDefaults() *http.Client {
	http.DefaultClient.Timeout = time.Second // want `http\.DefaultClient bypasses the netsim seam`
	c := &http.Client{                       // want `http\.Client literal without Transport`
		Timeout: time.Second,
	}
	c.Transport = http.DefaultTransport // want `http\.DefaultTransport bypasses the netsim seam`
	return c
}

// badPlainRequest builds a request with no context at all.
func badPlainRequest() (*http.Request, error) {
	return http.NewRequest(http.MethodGet, "http://replica-0/sparql", nil) // want `use http\.NewRequestWithContext`
}

// badBareContext attaches a context that can never expire.
func badBareContext() {
	http.NewRequestWithContext(context.Background(), http.MethodGet, "http://replica-0/sparql", nil) // want `context\.Background\(\) passed directly`
	http.NewRequestWithContext(context.TODO(), http.MethodGet, "http://replica-0/sparql", nil)       // want `context\.TODO\(\) passed directly`
}

// goodSeamClient is the required shape: explicit transport, request
// context derived from the caller's ctx with a deadline.
func goodSeamClient(ctx context.Context, tr http.RoundTripper) (*http.Response, error) {
	client := &http.Client{Transport: tr}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, "http://replica-0/sparql", nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// goodMethodCall: Get as a method on a locally built client is fine —
// the seam and deadline live on the client.
func goodMethodCall(tr http.RoundTripper) (*http.Response, error) {
	client := &http.Client{Transport: tr, Timeout: time.Second}
	return client.Get("http://replica-0/healthz")
}
