// Fixture for the lockbalance analyzer, rule 2: publish-side writes to
// the dictionary's shared state need the owning lock. It poses as the
// rdf package and declares minimal shapes of Dict and dictShard so the
// guarded-field table matches.
package rdf

import "sync"

type dictRead struct {
	byID []string
}

type readPtr struct {
	v *dictRead
}

func (p *readPtr) Store(r *dictRead) { p.v = r }

type Dict struct {
	mu    sync.Mutex
	arena []string
	stale int
	read  readPtr
}

type dictShard struct {
	mu    sync.Mutex
	byVal map[string]int
}

func badArenaWrite(d *Dict, t string) {
	d.arena = append(d.arena, t) // want `write to Dict\.arena without d\.mu held`
}

func badReadPublish(d *Dict, r *dictRead) {
	d.read.Store(r) // want `write to Dict\.read without d\.mu held`
}

func badShardWrite(sh *dictShard, k string, v int) {
	sh.byVal[k] = v // want `write to dictShard\.byVal without sh\.mu held`
}

func badShardClear(sh *dictShard) {
	clear(sh.byVal) // want `write to dictShard\.byVal without sh\.mu held`
}

func goodLockedWrites(d *Dict, t string, r *dictRead) {
	d.mu.Lock()
	d.arena = append(d.arena, t)
	d.stale++
	d.read.Store(r)
	d.mu.Unlock()
}

func goodLockedShard(sh *dictShard, k string, v int) {
	sh.mu.Lock()
	sh.byVal[k] = v
	sh.mu.Unlock()
}

// goodFresh initializes a dictionary no reader can see yet.
func goodFresh(n int) *Dict {
	d := &Dict{}
	d.arena = make([]string, 0, n)
	d.read.Store(&dictRead{})
	return d
}

// goodSuppressed mirrors NewDictFromTerms: the value is fresh but built
// through a constructor call, which the fresh-local heuristic cannot see.
func newDict() *Dict { return &Dict{} }

func goodSuppressedFresh(t string) *Dict {
	d := newDict()
	//lint:ignore lockbalance d is freshly built by newDict above and not yet shared
	d.arena = append(d.arena, t)
	return d
}
