package lint_test

import (
	"testing"

	"elinda/internal/lint"
	"elinda/internal/lint/linttest"
)

func TestSnapshotBind(t *testing.T) {
	linttest.Run(t, lint.SnapshotBind, "elinda/internal/incremental")
}

func TestSliceEscape(t *testing.T) {
	linttest.Run(t, lint.SliceEscape, "sliceescapefix")
}

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, lint.CtxLoop, "elinda/internal/sparql")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "maporderfix")
}

func TestLockBalance(t *testing.T) {
	linttest.Run(t, lint.LockBalance, "lockbalancefix")
}

func TestLockBalanceGuardedWrites(t *testing.T) {
	linttest.Run(t, lint.LockBalance, "elinda/internal/rdf")
}

func TestFsyncDiscipline(t *testing.T) {
	linttest.Run(t, lint.FsyncDiscipline, "elinda/internal/wal")
}

func TestNetRetry(t *testing.T) {
	linttest.Run(t, lint.NetRetry, "elinda/internal/router")
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if lint.ByName("nonexistent") != nil {
		t.Error("ByName(nonexistent) should be nil")
	}
}

// TestRepoIsClean is the suite's own acceptance gate: the full analyzer
// set over every production package must report nothing, which is what
// `elinda-lint ./...` exiting 0 means.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	dir, err := lint.ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
