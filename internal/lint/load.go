package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// This file loads and type-checks packages without golang.org/x/tools:
// `go list -deps -export -json` names every package's compiled export
// data in the build cache (building it if needed, no network required),
// the matched packages are parsed from source, and go/types checks them
// with an importer that reads dependencies straight from that export
// data. The result carries exactly what the analyzers need: syntax with
// comments, a *types.Package, and a fully populated types.Info.

// Package is one loaded, type-checked package.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir and decodes the
// package stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// DepImporter resolves import paths to *types.Package by reading the
// compiled export data `go list -export` reports, caching both the
// path→file mapping and the imported packages. It is the shared importer
// for the main load path and the fixture tests.
type DepImporter struct {
	dir  string // module directory go list runs in
	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string
	gc      types.Importer
}

// NewDepImporter returns an importer rooted at the given module
// directory.
func NewDepImporter(dir string, fset *token.FileSet) *DepImporter {
	di := &DepImporter{dir: dir, fset: fset, exports: map[string]string{}}
	di.gc = importer.ForCompiler(fset, "gc", di.lookup)
	return di
}

// add records export data locations from a go list run.
func (di *DepImporter) add(pkgs []listPkg) {
	di.mu.Lock()
	defer di.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			di.exports[p.ImportPath] = p.Export
		}
	}
}

func (di *DepImporter) lookup(path string) (io.ReadCloser, error) {
	di.mu.Lock()
	file, ok := di.exports[path]
	di.mu.Unlock()
	if !ok {
		// Resolve on demand (fixture tests import packages the initial
		// pattern list never mentioned). -deps records the transitive
		// closure so one run covers the import's own dependencies.
		pkgs, err := goList(di.dir, []string{path})
		if err != nil {
			return nil, err
		}
		di.add(pkgs)
		di.mu.Lock()
		file, ok = di.exports[path]
		di.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Import implements types.Importer.
func (di *DepImporter) Import(path string) (*types.Package, error) {
	return di.gc.Import(path)
}

// newTypesInfo allocates the full set of type-checker result maps.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// CheckFiles parses the given files and type-checks them as one package
// under importPath, resolving imports through imp.
func CheckFiles(fset *token.FileSet, importPath string, paths []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// Load type-checks every package matching the patterns (relative to the
// module rooted at dir) and returns them ready for analysis. Test files
// are not loaded: the invariants guard production paths, and fixture
// code under testdata is exercised separately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewDepImporter(dir, fset)
	imp.add(listed)
	var out []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		paths := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			paths[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := CheckFiles(fset, p.ImportPath, paths, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ModuleDir locates the enclosing module root (the directory holding
// go.mod) starting from dir, so callers can run the suite from any
// subdirectory — the self-check test runs from internal/lint.
func ModuleDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}
