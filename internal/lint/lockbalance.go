package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalance guards the two locking disciplines the parallel ingest
// dictionary (PR 5) depends on:
//
//  1. Balance: a mutex Lock/RLock must be released on every path — by a
//     `defer Unlock` on the same mutex, or, when the critical section
//     deliberately avoids defer (the dictionary's hot intern path), by an
//     explicit Unlock preceding every return in that return's own block.
//     An early `return` between Lock and Unlock is the classic leak that
//     deadlocks every later writer.
//  2. Publication: rdf.Dict's shared state (the id→term arena, the stale
//     counter, the published read pointer, each shard's byVal map) may
//     only be written while the corresponding lock is held — arena/read
//     under Dict.mu, byVal under the shard's mu. A write outside the lock
//     races the lock-free readers that make ingest scale.
//
// Freshly constructed, not-yet-shared values (`d := &Dict{...}`) are
// exempt from rule 2; sites that share state by other means document
// themselves with //lint:ignore lockbalance <reason>.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "mutex Lock needs defer Unlock or per-return explicit Unlock; rdf.Dict publish-side writes need the owning lock",
	Run:  runLockBalance,
}

const rdfPkgPath = "elinda/internal/rdf"

// guardRule ties a field of a type to the mutex field that must be held
// (lexically, within the writing function) when the field is written.
type guardRule struct {
	pkg, typ, field, mutex string
}

var guardRules = []guardRule{
	{rdfPkgPath, "Dict", "arena", "mu"},
	{rdfPkgPath, "Dict", "stale", "mu"},
	{rdfPkgPath, "Dict", "read", "mu"},
	{rdfPkgPath, "dictShard", "byVal", "mu"},
}

func runLockBalance(pass *Pass) error {
	for _, fn := range funcScopes(pass.Files) {
		checkLockReturns(pass, fn)
		checkGuardedWrites(pass, fn)
	}
	return nil
}

// --- rule 1: lock/unlock balance ---

// mutexCall matches <expr>.M() where expr is a sync.Mutex or
// sync.RWMutex and M is a lock/unlock method, returning the mutex key
// ("<expr>" rendered) and the method.
func mutexCall(pass *Pass, call *ast.CallExpr) (key, method string, ok bool) {
	recv, name, ok := methodCall(call)
	if !ok {
		return "", "", false
	}
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	t := pass.TypesInfo.TypeOf(recv)
	if t == nil || (!isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex")) {
		return "", "", false
	}
	key = exprString(recv)
	if key == "" {
		return "", "", false
	}
	return key, name, true
}

func checkLockReturns(pass *Pass, fn funcScope) {
	type lockSite struct {
		pos  token.Pos
		key  string // mutex expr + lock flavor, e.g. "s.mu/R"
		name string
	}
	var locks []lockSite
	unlocked := map[string]bool{} // keys with an explicit unlock somewhere
	deferred := map[string]bool{} // keys released via defer

	flavored := func(key, method string) string {
		if method == "RLock" || method == "RUnlock" {
			return key + "/R"
		}
		return key
	}

	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() — or a defer'd closure that unlocks.
			ast.Inspect(x.Call, func(d ast.Node) bool {
				if call, ok := d.(*ast.CallExpr); ok {
					if key, m, ok := mutexCall(pass, call); ok && (m == "Unlock" || m == "RUnlock") {
						deferred[flavored(key, m)] = true
					}
				}
				return true
			})
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(d ast.Node) bool {
					if call, ok := d.(*ast.CallExpr); ok {
						if key, m, ok := mutexCall(pass, call); ok && (m == "Unlock" || m == "RUnlock") {
							deferred[flavored(key, m)] = true
						}
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if key, m, ok := mutexCall(pass, x); ok {
				switch m {
				case "Lock", "RLock":
					locks = append(locks, lockSite{pos: x.Pos(), key: flavored(key, m), name: key + "." + m})
				case "Unlock", "RUnlock":
					unlocked[flavored(key, m)] = true
				}
			}
		}
		return true
	})

	if len(locks) == 0 {
		return
	}
	reported := map[token.Pos]bool{} // dedupe across lock sites of the same mutex
	for _, l := range locks {
		if deferred[l.key] {
			continue
		}
		if !unlocked[l.key] {
			pass.Reportf(l.pos, "%s() has no matching Unlock in this function; add `defer` or release on every path", l.name)
			continue
		}
		// Explicit-unlock discipline: every return after the Lock must
		// be directly preceded by an Unlock of the same mutex in the
		// return's own block (or the return sits before the Lock).
		checkReturnsAfterLock(pass, fn, l.pos, l.key, l.name, flavored, reported)
	}
}

// checkReturnsAfterLock flags returns past the lock position that are
// not preceded by an unlock within their own statement list.
func checkReturnsAfterLock(pass *Pass, fn funcScope, lockPos token.Pos, key, name string, flavored func(string, string) string, reported map[token.Pos]bool) {
	// released carries the straight-line lock state into nested blocks:
	// an unlock earlier in a parent block covers descendants, while an
	// unlock inside one if-branch covers only that branch.
	var visitBlock func(list []ast.Stmt, released bool)
	visitBlock = func(list []ast.Stmt, released bool) {
		for _, st := range list {
			switch x := st.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					if k, m, ok := mutexCall(pass, call); ok {
						switch m {
						case "Unlock", "RUnlock":
							if flavored(k, m) == key {
								released = true
							}
						case "Lock", "RLock":
							if flavored(k, m) == key {
								released = false // (re-)acquired on this path
							}
						}
					}
				}
			case *ast.ReturnStmt:
				if x.Pos() > lockPos && !released && !reported[x.Pos()] {
					reported[x.Pos()] = true
					pass.Reportf(x.Pos(), "return while %s may still be held (no Unlock earlier on this path); use `defer` or unlock before returning", name)
				}
			default:
				for _, nested := range nestedStmtLists(st) {
					visitBlock(nested, released)
				}
			}
		}
	}
	visitBlock(fn.body.List, false)
}

// nestedStmtLists extracts the statement lists directly nested in a
// statement (if/else bodies, for bodies, switch cases, select comms).
func nestedStmtLists(st ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch x := st.(type) {
	case *ast.BlockStmt:
		out = append(out, x.List)
	case *ast.IfStmt:
		out = append(out, x.Body.List)
		if x.Else != nil {
			out = append(out, nestedStmtLists(x.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, x.Body.List)
	case *ast.RangeStmt:
		out = append(out, x.Body.List)
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(x.Stmt)...)
	}
	return out
}

// --- rule 2: guarded publish-side writes in rdf.Dict ---

func checkGuardedWrites(pass *Pass, fn funcScope) {
	// Locks lexically taken in this function, keyed by base expression:
	// "d.mu.Lock()" records base "d", "d.shards[i].mu.Lock()" records
	// "d.shards[i]".
	heldBases := map[string]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := methodCall(call)
		if !ok || (name != "Lock" && name != "RLock") {
			return true
		}
		if sel, ok := recv.(*ast.SelectorExpr); ok {
			if base := exprString(sel.X); base != "" {
				heldBases[base+"."+sel.Sel.Name] = true
			}
		}
		return true
	})

	fresh := freshLocals(pass, fn)

	report := func(pos token.Pos, base ast.Expr, rule guardRule) {
		baseStr := exprString(base)
		if root := rootIdent(base); root != nil {
			if obj := pass.TypesInfo.ObjectOf(root); obj != nil && fresh[obj] {
				return // freshly constructed, not yet shared
			}
		}
		if heldBases[baseStr+"."+rule.mutex] {
			return
		}
		pass.Reportf(pos, "write to %s.%s without %s.%s held: publish-side dictionary state races lock-free readers", rule.typ, rule.field, baseStr, rule.mutex)
	}

	match := func(sel *ast.SelectorExpr) (guardRule, bool) {
		t := pass.TypesInfo.TypeOf(sel.X)
		if t == nil {
			return guardRule{}, false
		}
		for _, r := range guardRules {
			if sel.Sel.Name == r.field && isNamed(t, r.pkg, r.typ) {
				return r, true
			}
		}
		return guardRule{}, false
	}

	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				target := l
				if idx, ok := target.(*ast.IndexExpr); ok {
					target = idx.X // sh.byVal[k] = v writes the map field
				}
				if sel, ok := target.(*ast.SelectorExpr); ok {
					if r, ok := match(sel); ok {
						report(x.Pos(), sel.X, r)
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := x.X.(*ast.SelectorExpr); ok {
				if r, ok := match(sel); ok {
					report(x.Pos(), sel.X, r)
				}
			}
		case *ast.CallExpr:
			// clear(d.shards[i].byVal), and read-pointer publication
			// d.read.Store(next).
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "clear" && len(x.Args) == 1 {
				if sel, ok := x.Args[0].(*ast.SelectorExpr); ok {
					if r, ok := match(sel); ok {
						report(x.Pos(), sel.X, r)
					}
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Store" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					if r, ok := match(inner); ok {
						report(x.Pos(), inner.X, r)
					}
				}
			}
		}
		return true
	})
}

// freshLocals returns objects introduced in fn via `x := &T{...}`,
// `x := T{...}` or `x := new(T)` — values this function constructed and
// has not (yet) shared, which may be initialized lock-free.
func freshLocals(pass *Pass, fn funcScope) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			freshRHS := false
			switch r := rhs.(type) {
			case *ast.CompositeLit:
				freshRHS = true
			case *ast.UnaryExpr:
				_, freshRHS = r.X.(*ast.CompositeLit)
			case *ast.CallExpr:
				if fid, ok := r.Fun.(*ast.Ident); ok && fid.Name == "new" {
					_, isBuiltin := pass.TypesInfo.ObjectOf(fid).(*types.Builtin)
					freshRHS = isBuiltin
				}
			}
			if freshRHS {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
