// Package lint implements eLinda's invariant-enforcing static analysis
// suite: six analyzers that mechanically guard the correctness rules the
// lock-free snapshot store, the ID-space executor, the parallel ingest
// pipeline and the crash-durability layer rely on. The rules are documented in README.md ("Correctness
// tooling"); each analyzer's Doc string states the invariant it enforces.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer / Pass / Diagnostic, fixture tests with // want
// comments) so the suite can be ported to a real multichecker wholesale
// if the x/tools dependency ever becomes available. It is self-contained
// on the standard library: packages are loaded with `go list -export`
// and type-checked with go/types against the build cache's export data,
// which needs no network and no third-party module.
//
// Findings can be suppressed one statement at a time with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare ignore is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. It mirrors the x/tools
// analysis.Analyzer surface that this suite needs.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:ignore
	// comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		SnapshotBind,
		SliceEscape,
		CtxLoop,
		MapOrder,
		LockBalance,
		FsyncDiscipline,
		NetRetry,
	}
}

// ByName resolves an analyzer by name (nil when unknown).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers runs the given analyzers over the loaded packages and
// returns the surviving findings (suppressions applied), sorted by
// position. Analyzer errors abort the run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		out = append(out, sup.malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !sup.covers(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// --- shared AST/type helpers used by the analyzers ---

// walkStack traverses every file, invoking fn with each node and the
// stack of its ancestors (outermost first, not including n itself).
// Returning false skips the node's children.
func walkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			ok := fn(n, stack)
			stack = append(stack, n)
			if !ok {
				// Children are skipped; pop immediately since Inspect
				// will not deliver the matching nil.
				stack = stack[:len(stack)-1]
			}
			return ok
		})
	}
}

// namedType resolves t (through pointers and aliases) to its named type,
// or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t is (a pointer to) the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// methodCall decomposes a call of the form x.M(...) into its receiver
// expression and method name; ok is false for any other call shape.
func methodCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// exprString renders a (small) expression as a stable key, e.g.
// "s.shards[i].mu". Unrenderable shapes collapse to "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "[" + exprString(x.Index) + "]"
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		// Calls are not stable keys; give up on the whole chain.
		return ""
	default:
		return ""
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (nil when the chain does not start at an identifier).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcScopes returns every function body in the files with its
// describing node: FuncDecls and top-level FuncLits (those not nested
// inside another function, e.g. package-var initializers).
type funcScope struct {
	decl *ast.FuncDecl // nil for a bare FuncLit
	body *ast.BlockStmt
	name string
}

func funcScopes(files []*ast.File) []funcScope {
	var out []funcScope
	for _, f := range files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if decl.Body != nil {
					out = append(out, funcScope{decl: decl, body: decl.Body, name: decl.Name.Name})
				}
			case *ast.GenDecl:
				ast.Inspect(decl, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						out = append(out, funcScope{body: lit.Body, name: "func literal"})
						return false
					}
					return true
				})
			}
		}
	}
	return out
}
