package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces cancellation responsiveness in the query engine's
// match/join paths (PR 2's streaming executor contract): a loop that can
// run for an input-dependent number of iterations inside a function that
// has a context must poll that context — directly (ctx.Err()/ctx.Done(),
// possibly behind a visits%cancelCheckInterval guard) or through a local
// helper closure that does. Otherwise a heavy BGP join or scan keeps
// burning CPU long after the client hung up, which is exactly the load
// the admission controller exists to shed.
//
// The check is scoped to internal/sparql and internal/store, skips
// loops with a constant trip count, and considers a loop covered when
// any enclosing loop in the same function polls (the established
// poll-per-outer-row pattern).
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "unbounded loops on query paths must poll ctx so cancellation is honored",
	Run:  runCtxLoop,
}

var ctxLoopScope = map[string]bool{
	"elinda/internal/sparql": true,
	"elinda/internal/store":  true,
}

func runCtxLoop(pass *Pass) error {
	if !ctxLoopScope[pass.Pkg.Path()] {
		return nil
	}
	for _, fn := range funcScopes(pass.Files) {
		c := &ctxLoopChecker{pass: pass}
		if !c.ctxAvailable(fn) {
			continue
		}
		c.collectPollers(fn.body)
		c.walk(fn.body, false)
	}
	return nil
}

type ctxLoopChecker struct {
	pass *Pass
	// pollers are local closures whose body touches the context;
	// calling one counts as polling (the check(i) helper pattern).
	pollers map[types.Object]bool
}

// ctxAvailable reports whether fn has a context to poll: a
// context.Context parameter or receiver field, or any context-typed
// expression mentioned in the body (captured closures).
func (c *ctxLoopChecker) ctxAvailable(fn funcScope) bool {
	if fn.decl != nil {
		fields := []*ast.FieldList{fn.decl.Type.Params, fn.decl.Recv}
		for _, fl := range fields {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				t := c.pass.TypesInfo.TypeOf(f.Type)
				if t == nil {
					continue
				}
				if isContextType(t) {
					return true
				}
				if named := namedType(t); named != nil {
					if st, ok := named.Underlying().(*types.Struct); ok {
						for i := 0; i < st.NumFields(); i++ {
							if isContextType(st.Field(i).Type()) {
								return true
							}
						}
					}
				}
			}
		}
	}
	return c.mentionsCtx(fn.body)
}

func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// collectPollers records local `name := func(...) {... ctx ...}`
// closures.
func (c *ctxLoopChecker) collectPollers(body *ast.BlockStmt) {
	c.pollers = map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if c.mentionsCtx(lit.Body) {
				if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
					c.pollers[obj] = true
				}
			}
		}
		return true
	})
}

// mentionsCtx reports whether node references a context-typed expression
// or calls a polling closure.
func (c *ctxLoopChecker) mentionsCtx(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if t := c.pass.TypesInfo.TypeOf(x); t != nil && isContextType(t) {
				found = true
			}
			if obj := c.pass.TypesInfo.ObjectOf(x); obj != nil && c.pollers[obj] {
				found = true
			}
		case *ast.SelectorExpr:
			if t := c.pass.TypesInfo.TypeOf(x); t != nil && isContextType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// walk visits statements; polled means an enclosing loop already polls
// per iteration.
func (c *ctxLoopChecker) walk(n ast.Node, polled bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := node.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		loopPolls := c.mentionsCtx(body)
		if !polled && !loopPolls && c.candidate(node, body) {
			c.pass.Reportf(node.Pos(),
				"loop may run for an input-dependent number of iterations without polling ctx; check ctx.Err() (every cancelCheckInterval iterations is fine) or hoist the check into an enclosing loop")
			// Report the outermost offender only; descendants are the
			// same finding.
			c.walk(body, true)
			return false
		}
		c.walk(body, polled || loopPolls)
		return false
	})
}

// candidate reports whether the loop's trip count is input-dependent and
// heavy enough to matter (contains a call or a nested loop).
func (c *ctxLoopChecker) candidate(loop ast.Node, body *ast.BlockStmt) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		t := c.pass.TypesInfo.TypeOf(l.X)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
		default:
			return false // arrays, strings, ints and channels are bounded or blocking
		}
	case *ast.ForStmt:
		if l.Cond != nil {
			if bin, ok := l.Cond.(*ast.BinaryExpr); ok {
				if tv, ok := c.pass.TypesInfo.Types[bin.Y]; ok && tv.Value != nil {
					return false // constant trip bound
				}
			}
		}
	}
	heavy := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Builtins (append, copy, len, …) are cheap per iteration;
			// a loop of only those finishes in microseconds even on big
			// inputs and is not worth a poll.
			if id, ok := x.Fun.(*ast.Ident); ok {
				if _, isBuiltin := c.pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
					return true
				}
			}
			heavy = true
		case *ast.ForStmt, *ast.RangeStmt:
			heavy = true
		}
		return !heavy
	})
	return heavy
}
