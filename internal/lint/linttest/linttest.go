// Package linttest runs lint analyzers over fixture packages and checks
// their findings against // want "regex" comments, in the style of
// x/tools' analysistest. A fixture lives under
// testdata/src/<importPath>/ relative to the calling test's directory
// and is type-checked AS that import path, so fixtures can pose as
// in-scope packages (elinda/internal/sparql, elinda/internal/rdf, …)
// while importing the real production packages they exercise.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"elinda/internal/lint"
)

// Run loads testdata/src/<asPath> as package path asPath, applies the
// analyzer (with //lint:ignore suppressions in effect), and fails the
// test unless the findings match the fixture's want comments exactly:
// every finding must match a // want "regex" on its line, and every want
// must be matched by a finding.
func Run(t *testing.T, a *lint.Analyzer, asPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(asPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	moduleDir, err := lint.ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := lint.NewDepImporter(moduleDir, fset)
	pkg, err := lint.CheckFiles(fset, asPath, paths, imp)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, pkg)
	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("unexpected finding at %s:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	wants.reportUnmatched(t)
}

// wantSet indexes the fixture's want regexps by file:line.
type wantSet struct {
	byLine map[string][]*wantEntry
}

type wantEntry struct {
	re      *regexp.Regexp
	key     string
	matched bool
}

func (w *wantSet) match(key, message string) bool {
	for _, e := range w.byLine[key] {
		if !e.matched && e.re.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

func (w *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, es := range w.byLine {
		for _, e := range es {
			if !e.matched {
				t.Errorf("no finding matched want %q at %s", e.re, e.key)
			}
		}
	}
}

// wantPattern pulls the quoted or backquoted expectations out of a
// `// want "re" …` comment.
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, pkg *lint.Package) *wantSet {
	t.Helper()
	w := &wantSet{byLine: map[string][]*wantEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := pos.Filename + ":" + strconv.Itoa(pos.Line)
				for _, q := range wantPattern.FindAllString(text, -1) {
					expr := q[1 : len(q)-1]
					if q[0] == '"' {
						unq, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", key, q, err)
						}
						expr = unq
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, expr, err)
					}
					w.byLine[key] = append(w.byLine[key], &wantEntry{re: re, key: key})
				}
				if len(wantPattern.FindAllString(text, -1)) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern: %s", key, c.Text)
				}
			}
		}
	}
	return w
}
