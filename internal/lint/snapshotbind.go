package lint

import (
	"go/ast"
)

// SnapshotBind enforces the one-snapshot-per-query invariant introduced
// with the generation-tagged store (PR 3): a query, a chart evaluation or
// an index build must atomically bind *store.Snapshot once and do every
// read through it. Two findings:
//
//  1. Query-scope packages (the executor, the decomposer, the
//     incremental evaluator) calling a read method directly on
//     *store.Store. Each such call re-loads the current snapshot, so two
//     calls may observe different generations mid-query — exactly the
//     torn read the snapshot design exists to rule out.
//  2. Any function in those packages taking Store.Snapshot() more than
//     once. One scope, one snapshot; a second bind reintroduces the
//     cross-generation window with extra steps.
var SnapshotBind = &Analyzer{
	Name: "snapshotbind",
	Doc:  "query-scope code must read through one bound *store.Snapshot, never directly off *store.Store",
	Run:  runSnapshotBind,
}

const storePkgPath = "elinda/internal/store"

// snapshotBindScope lists the query-scope packages the invariant covers.
// The store package itself is exempt (its Store read wrappers are the
// documented single-bind convenience API), as is serving-tier glue that
// never spans more than one read per request.
var snapshotBindScope = map[string]bool{
	"elinda/internal/sparql":      true,
	"elinda/internal/decomposer":  true,
	"elinda/internal/incremental": true,
}

// storeReadMethods are the *store.Store methods that internally bind a
// fresh snapshot per call.
var storeReadMethods = map[string]bool{
	"Len": true, "Contains": true, "ContainsID": true, "ContainsTriple": true,
	"Scan": true, "Match": true, "CountMatch": true, "CardMatch": true,
	"Postings": true, "Objects": true, "Subjects": true, "SubjectsOfType": true,
	"PredicatesOf": true, "PredicatesInto": true, "Label": true,
}

func runSnapshotBind(pass *Pass) error {
	if !snapshotBindScope[pass.Pkg.Path()] {
		return nil
	}
	for _, fn := range funcScopes(pass.Files) {
		snapshotCalls := 0
		ast.Inspect(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := methodCall(call)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(recv)
			if t == nil || !isNamed(t, storePkgPath, "Store") {
				return true
			}
			switch {
			case storeReadMethods[name]:
				pass.Reportf(call.Pos(),
					"direct (*store.Store).%s read in query-scope code: bind s.Snapshot() once and read through it, or two reads may observe different generations", name)
			case name == "Snapshot":
				snapshotCalls++
				if snapshotCalls > 1 {
					pass.Reportf(call.Pos(),
						"Store.Snapshot() bound more than once in %s: one query scope must bind exactly one snapshot", fn.name)
				}
			}
			return true
		})
	}
	return nil
}
