package lint

import (
	"go/ast"
	"go/types"
)

// SliceEscape guards the zero-copy read contract of the columnar
// snapshot store: Postings/Objects/Subjects/SubjectsOfType/PredicatesOf
// return sub-slices of the snapshot's index arrays. Holding such a slice
// is safe only for as long as the snapshot itself is held — parking it in
// longer-lived storage (a struct field, a package variable, a channel, a
// composite literal, a map or slice element) silently pins snapshot
// memory and, worse, decouples the data from the generation it belongs
// to. The sanctioned escape hatch is an explicit copy:
//
//	mine := append([]rdf.ID(nil), snap.Objects(s, p)...)
//
// The analyzer flags direct stores of a zero-copy result into any of
// those sinks. Indirect flows (assign to a local, then store the local)
// are out of reach of this pass — reviews still own those — but the
// direct store is by far the common shape.
var SliceEscape = &Analyzer{
	Name: "sliceescape",
	Doc:  "zero-copy snapshot slices must not be stored beyond the call frame; append/copy first",
	Run:  runSliceEscape,
}

// zeroCopyMethods return views into snapshot-owned arrays.
var zeroCopyMethods = map[string]bool{
	"Postings": true, "Objects": true, "Subjects": true,
	"SubjectsOfType": true, "PredicatesOf": true,
}

func runSliceEscape(pass *Pass) error {
	if pass.Pkg.Path() == storePkgPath {
		// The store implements the contract; its own internals legally
		// hand these slices around.
		return nil
	}
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := zeroCopyCall(pass, call)
		if !ok {
			return true
		}
		if sink := escapeSink(pass, call, stack); sink != "" {
			pass.Reportf(call.Pos(),
				"zero-copy result of %s stored in %s: the slice aliases snapshot index memory and must not outlive the snapshot; copy with append(nil-slice, ids...) first", name, sink)
		}
		return true
	})
	return nil
}

// zeroCopyCall reports whether call is a zero-copy read on the store's
// Snapshot or Store, returning a display name like "Snapshot.Objects".
func zeroCopyCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	recv, name, ok := methodCall(call)
	if !ok || !zeroCopyMethods[name] {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(recv)
	if t == nil {
		return "", false
	}
	for _, typ := range []string{"Snapshot", "Store"} {
		if isNamed(t, storePkgPath, typ) {
			return typ + "." + name, true
		}
	}
	return "", false
}

// escapeSink classifies the syntactic context of call; "" means the
// result stays within the call frame.
func escapeSink(pass *Pass, call *ast.CallExpr, stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.AssignStmt:
		return assignSink(pass, p, call)
	case *ast.SendStmt:
		if p.Value == call {
			return "a channel send"
		}
	case *ast.CompositeLit:
		return "a composite literal"
	case *ast.KeyValueExpr:
		if p.Value == call && len(stack) >= 2 {
			if _, inLit := stack[len(stack)-2].(*ast.CompositeLit); inLit {
				return "a composite literal"
			}
		}
	case *ast.ValueSpec:
		// var x = call at package level.
		for i, v := range p.Values {
			if v == call && i < len(p.Names) {
				if obj := pass.TypesInfo.Defs[p.Names[i]]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
					return "package variable " + p.Names[i].Name
				}
			}
		}
	}
	return ""
}

// assignSink classifies the LHS an assigned zero-copy result lands in.
func assignSink(pass *Pass, as *ast.AssignStmt, call *ast.CallExpr) string {
	// Map the call to its LHS expression(s). A single multi-result call
	// (Postings returns (ids, ok)) covers the whole LHS; otherwise the
	// positions line up one to one.
	var lhs []ast.Expr
	if len(as.Rhs) == 1 {
		lhs = as.Lhs[:1] // first result is the slice
	} else {
		for i, r := range as.Rhs {
			if r == call && i < len(as.Lhs) {
				lhs = as.Lhs[i : i+1]
			}
		}
	}
	for _, l := range lhs {
		switch target := l.(type) {
		case *ast.SelectorExpr:
			return "struct field " + exprString(target)
		case *ast.IndexExpr:
			return "element " + exprString(target)
		case *ast.Ident:
			if target.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(target)
			if obj != nil && obj.Parent() == pass.Pkg.Scope() {
				return "package variable " + target.Name
			}
		case *ast.StarExpr:
			if t := pass.TypesInfo.TypeOf(target.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					return "pointer target " + exprString(target)
				}
			}
		}
	}
	return ""
}
