package lint

import (
	"go/ast"
	"go/types"
)

// FsyncDiscipline enforces the durability layer's filesystem seam
// (PR 7): inside internal/store and internal/wal, every file and
// directory mutation — and every read that recovery depends on — must go
// through the vfs.FS interface, never the os package directly. The crash
// matrix proves "recovery is a prefix of acknowledged writes" by
// injecting a fault at every vfs operation; a raw os.Create or os.Rename
// would be an IO point the matrix silently never crashes at, so the rule
// is what makes that proof mean anything.
//
// Error predicates (os.IsNotExist), environment access and process
// control are fine — only the file-touching entry points below are
// fenced.
var FsyncDiscipline = &Analyzer{
	Name: "fsyncdiscipline",
	Doc:  "durability-layer packages must do file IO through vfs.FS so fault injection covers every IO path",
	Run:  runFsyncDiscipline,
}

// fsyncScope lists the packages under the discipline: exactly the ones
// the crash matrix exercises through a vfs.Mem.
var fsyncScope = map[string]bool{
	"elinda/internal/store": true,
	"elinda/internal/wal":   true,
}

// fsyncForbidden names the os entry points that create, mutate, probe or
// read files — everything with a vfs.FS equivalent.
var fsyncForbidden = map[string]string{
	"Create":     "vfs.FS.Create",
	"CreateTemp": "vfs.FS.Create with a " + `".tmp"` + " name",
	"Open":       "vfs.FS.Open",
	"OpenFile":   "vfs.FS.Create or vfs.FS.Open",
	"NewFile":    "vfs.FS.Create or vfs.FS.Open",
	"Rename":     "vfs.FS.Rename",
	"Remove":     "vfs.FS.Remove",
	"RemoveAll":  "vfs.FS.Remove per file",
	"Mkdir":      "vfs.FS.MkdirAll",
	"MkdirAll":   "vfs.FS.MkdirAll",
	"ReadDir":    "vfs.FS.ReadDir",
	"ReadFile":   "vfs.FS.Open",
	"WriteFile":  "vfs.FS.Create",
	"Stat":       "vfs.FS.Size",
	"Lstat":      "vfs.FS.Size",
	"Truncate":   "segment rotation (the WAL never truncates in place)",
	"Link":       "vfs.FS.Rename",
	"Symlink":    "vfs.FS.Rename",
}

func runFsyncDiscipline(pass *Pass) error {
	if !fsyncScope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			replacement, forbidden := fsyncForbidden[sel.Sel.Name]
			if !forbidden {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "os" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"os.%s bypasses the vfs seam in a durability-layer package: use %s so fault injection covers this IO path", sel.Sel.Name, replacement)
			return true
		})
	}
	return nil
}
