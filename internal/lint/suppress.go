package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression comments let a human override an analyzer where the code
// is right and the machine is wrong, while leaving a grep-able audit
// trail:
//
//	//lint:ignore snapshotbind,sliceescape reason the rule does not apply
//
// The comment covers findings of the named analyzers on its own line and
// on the line directly below it (so it can sit above the statement it
// excuses). The reason is mandatory — an ignore without one is reported
// as a finding itself, because an unexplained suppression is exactly the
// tribal knowledge this suite exists to eliminate.

const ignorePrefix = "//lint:ignore "

// suppressions indexes the ignore comments of one package.
type suppressions struct {
	// byLine maps file:line to the analyzer names suppressed there.
	byLine    map[string][]string
	malformed []Diagnostic
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if names == "" || strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer>[,...] <reason>\" with a non-empty reason",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					// The comment excuses its own line and the next one.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := lineKey(pos.Filename, line)
						s.byLine[key] = append(s.byLine[key], name)
					}
				}
			}
		}
	}
	return s
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// covers reports whether a finding by analyzer at pos is suppressed.
func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	for _, name := range s.byLine[lineKey(pos.Filename, pos.Line)] {
		if name == analyzer {
			return true
		}
	}
	return false
}
