package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NetRetry enforces the read fleet's outbound-HTTP discipline (PR 8):
// every request the router or the replica agent sends must carry a
// context deadline and must flow through the netsim transport seam.
// The chaos matrix only proves what it can intercept — an http.Get or a
// default-transport client bypasses fault injection entirely, and a
// request without a context deadline turns an injected mid-body hang
// into a goroutine that never comes back. Concretely, in
// internal/fleet and internal/router:
//
//   - the net/http convenience calls (http.Get, http.Post, http.Head,
//     http.PostForm) are forbidden — they use the shared default client
//     with no deadline and no seam;
//   - http.DefaultClient and http.DefaultTransport must not be
//     referenced — outbound traffic must go through a locally
//     constructed client whose Transport is the injected RoundTripper;
//   - an http.Client composite literal must set its Transport field;
//   - requests are built with http.NewRequestWithContext, never plain
//     http.NewRequest;
//   - the context handed to NewRequestWithContext must not be a bare
//     context.Background() or context.TODO() — derive a deadline-bound
//     child (context.WithTimeout/WithDeadline) from the caller's ctx.
//
// Test files are exempt: tests drive the seam directly and often want a
// deliberately deadline-free request to assert timeout behavior.
var NetRetry = &Analyzer{
	Name: "netretry",
	Doc:  "fleet/router outbound HTTP must carry a ctx deadline and route through the netsim seam",
	Run:  runNetRetry,
}

var netRetryScope = map[string]bool{
	"elinda/internal/fleet":  true,
	"elinda/internal/router": true,
}

// netRetryBannedFuncs are net/http package-level helpers that pin the
// request to the shared default client.
var netRetryBannedFuncs = map[string]string{
	"Get":      "it uses http.DefaultClient (no deadline, bypasses the netsim seam)",
	"Post":     "it uses http.DefaultClient (no deadline, bypasses the netsim seam)",
	"Head":     "it uses http.DefaultClient (no deadline, bypasses the netsim seam)",
	"PostForm": "it uses http.DefaultClient (no deadline, bypasses the netsim seam)",
}

func runNetRetry(pass *Pass) error {
	if !netRetryScope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				netRetryCheckCall(pass, x)
			case *ast.SelectorExpr:
				netRetryCheckDefaultRef(pass, x)
			case *ast.CompositeLit:
				netRetryCheckClientLit(pass, x)
			}
			return true
		})
	}
	return nil
}

// httpFunc resolves call to a net/http package-level function name, or
// "" if it is anything else.
func httpFunc(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return ""
	}
	// Package-level function, not a method (http.Client.Get etc. is the
	// client the caller constructed — that one is fine).
	if fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	return fn.Name()
}

// contextFunc resolves call to a context package-level function name.
func contextFunc(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	return fn.Name()
}

func netRetryCheckCall(pass *Pass, call *ast.CallExpr) {
	switch name := httpFunc(pass, call); {
	case netRetryBannedFuncs[name] != "":
		pass.Reportf(call.Pos(),
			"http.%s is forbidden in the fleet tier: %s; build the request with http.NewRequestWithContext and send it through the package's seam-injected client",
			name, netRetryBannedFuncs[name])
	case name == "NewRequest":
		pass.Reportf(call.Pos(),
			"use http.NewRequestWithContext, not http.NewRequest: a fleet request without a context deadline turns an injected hang into a leaked goroutine")
	case name == "NewRequestWithContext" && len(call.Args) > 0:
		if inner, ok := call.Args[0].(*ast.CallExpr); ok {
			if cf := contextFunc(pass, inner); cf == "Background" || cf == "TODO" {
				pass.Reportf(call.Args[0].Pos(),
					"context.%s() passed directly to NewRequestWithContext has no deadline; derive the request context from the caller's ctx with context.WithTimeout", cf)
			}
		}
	}
}

// netRetryCheckDefaultRef flags any mention of http.DefaultClient or
// http.DefaultTransport.
func netRetryCheckDefaultRef(pass *Pass, sel *ast.SelectorExpr) {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "net/http" {
		return
	}
	if v.Name() == "DefaultClient" || v.Name() == "DefaultTransport" {
		pass.Reportf(sel.Pos(),
			"http.%s bypasses the netsim seam: the chaos matrix cannot inject faults into traffic it never sees; construct a client with an explicit Transport", v.Name())
	}
}

// netRetryCheckClientLit requires http.Client composite literals to set
// Transport (a nil Transport silently falls back to DefaultTransport).
func netRetryCheckClientLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil || !isNamed(t, "net/http", "Client") {
		return
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Transport" {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(),
		"http.Client literal without Transport falls back to http.DefaultTransport and escapes the netsim seam; set Transport to the injected RoundTripper")
}
