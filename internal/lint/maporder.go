package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder enforces the determinism invariant: query results, rendered
// documents and emitted streams must be byte-identical at any worker
// count and across runs (PR 5's canonical renumbering exists solely for
// this). Go map iteration order is randomized, so a `range` over a map
// may only feed an ordered sink — a slice that is subsequently sorted, a
// writer, a channel, a caller-supplied emit callback — through an
// explicit sort. The analyzer flags:
//
//   - map-range bodies that append to a slice which is never passed to a
//     sort.*/slices.Sort* call later in the same function;
//   - map-range bodies that write directly to an io.Writer,
//     strings.Builder, bytes.Buffer or via fmt.Fprint*/fmt.Print*;
//   - map-range bodies that send on a channel or invoke a func-typed
//     parameter (an emit callback).
//
// Building another map, counting, or reducing to a scalar inside a
// map-range is order-insensitive and stays silent.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration feeding an ordered sink must sort first (byte-identical output invariant)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, fn := range funcScopes(pass.Files) {
		runMapOrderFunc(pass, fn)
	}
	return nil
}

func runMapOrderFunc(pass *Pass, fn funcScope) {
	type appendSite struct {
		pos    ast.Node
		target types.Object
		name   string
	}
	var appends []appendSite
	params := paramObjects(pass, fn)

	ast.Inspect(fn.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		rangeKey := rangeKeyObject(pass, rng)
		ast.Inspect(rng.Body, func(b ast.Node) bool {
			switch x := b.(type) {
			case *ast.SendStmt:
				pass.Reportf(x.Pos(), "channel send inside a map range publishes values in nondeterministic order; collect and sort first")
			case *ast.CallExpr:
				if isBuiltinAppend(pass, x) && len(x.Args) > 0 {
					if bucketPerRangeKey(pass, x.Args[0], rangeKey) {
						// m[k] = append(m[k], ...) with k the range key:
						// each bucket is written by exactly one iteration,
						// so the result is another map — order-insensitive.
						return true
					}
					if root := rootIdent(x.Args[0]); root != nil {
						if obj := pass.TypesInfo.ObjectOf(root); obj != nil {
							appends = append(appends, appendSite{pos: x, target: obj, name: root.Name})
						}
					}
				} else if sink, ok := orderedSinkCall(pass, x, params); ok {
					pass.Reportf(x.Pos(), "%s inside a map range emits in nondeterministic order; collect into a slice and sort before writing", sink)
				}
			}
			return true
		})
		return true
	})

	if len(appends) == 0 {
		return
	}
	sorted := sortedObjects(pass, fn.body)
	for _, a := range appends {
		if !sorted[a.target] {
			pass.Reportf(a.pos.Pos(),
				"append to %q inside a map range accumulates in nondeterministic order and %q is never sorted in this function; sort it (or //lint:ignore maporder with the reason order cannot reach output)", a.name, a.name)
		}
	}
}

// rangeKeyObject returns the object bound to the range statement's key
// variable (nil when the key is blank or not an identifier definition).
func rangeKeyObject(pass *Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// bucketPerRangeKey reports whether target has the shape m[k] with k the
// current range key.
func bucketPerRangeKey(pass *Pass, target ast.Expr, rangeKey types.Object) bool {
	if rangeKey == nil {
		return false
	}
	idx, ok := target.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.ObjectOf(id) == rangeKey
}

// isBuiltinAppend matches calls to the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// paramObjects collects the objects bound to fn's parameters (including
// named results and the receiver).
func paramObjects(pass *Pass, fn funcScope) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fn.decl == nil {
		return out
	}
	for _, fl := range []*ast.FieldList{fn.decl.Recv, fn.decl.Type.Params, fn.decl.Type.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// orderedSinkCall reports whether call writes to an ordered output sink,
// returning a human label.
func orderedSinkCall(pass *Pass, call *ast.CallExpr, params map[types.Object]bool) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// fmt.Fprint*/fmt.Print* et al.
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.ObjectOf(pkgID).(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" && (name == "Fprintf" || name == "Fprint" || name == "Fprintln" ||
					name == "Printf" || name == "Print" || name == "Println") {
					return "fmt." + name, true
				}
				return "", false
			}
		}
		// Writer-shaped methods on builders/buffers/writers.
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			if t := pass.TypesInfo.TypeOf(fun.X); t != nil && writerLike(t) {
				return exprString(fun.X) + "." + name, true
			}
		}
	case *ast.Ident:
		// Calling a func-typed parameter: an emit callback observes the
		// iteration order directly.
		if obj := pass.TypesInfo.ObjectOf(fun); obj != nil && params[obj] {
			if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
				return "callback " + fun.Name, true
			}
		}
	}
	return "", false
}

// writerLike reports whether t is a known ordered byte sink.
func writerLike(t types.Type) bool {
	for _, c := range [...]struct{ path, name string }{
		{"strings", "Builder"},
		{"bytes", "Buffer"},
		{"bufio", "Writer"},
		{"encoding/json", "Encoder"},
		{"encoding/gob", "Encoder"},
	} {
		if isNamed(t, c.path, c.name) {
			return true
		}
	}
	// Anything satisfying io.Writer structurally (has Write([]byte)).
	if named := namedType(t); named != nil {
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "Write" {
				return true
			}
		}
	}
	return false
}

// sortedObjects collects the objects passed (possibly by address) to a
// sorting call anywhere in body: the sort and slices packages, or a
// project helper whose name contains "sort" (sortBars, sortByLabel, …).
func sortedObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sorts := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if pkgID, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.ObjectOf(pkgID).(*types.PkgName); ok {
					path := pn.Imported().Path()
					sorts = path == "sort" || path == "slices"
				}
			}
		case *ast.Ident:
			sorts = strings.Contains(strings.ToLower(fun.Name), "sort")
		}
		if !sorts {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := arg.(*ast.UnaryExpr); ok {
				arg = u.X
			}
			if root := rootIdent(arg); root != nil {
				if obj := pass.TypesInfo.ObjectOf(root); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
