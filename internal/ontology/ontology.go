// Package ontology builds and queries the class hierarchy of a dataset.
//
// The paper (Section 3.1): "the full power of the tool is exploited for
// datasets that define a class type hierarchy using the standard properties
// owl:Class (or rdfs:Class) and rdfs:subClassOf"; and (Section 3.2) each
// pane shows "the number of direct and indirect subclasses that class type
// T has" — e.g. Agent with 5 direct subclasses and 277 in total. The
// hierarchy is a DAG (a class may declare several superclasses); cycles in
// dirty data are tolerated by the closure computation.
package ontology

import (
	"sort"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// Hierarchy is an immutable snapshot of the subclass DAG of a store,
// built by Build. Rebuild after KB updates (compare store generations).
type Hierarchy struct {
	st         *store.Store
	generation uint64

	// children[c] = classes declared rdfs:subClassOf c (direct subclasses).
	children map[rdf.ID][]rdf.ID
	// parents[c] = direct superclasses of c.
	parents map[rdf.ID][]rdf.ID
	// classes is the set of every node mentioned by the hierarchy or used
	// as an rdf:type object.
	classes map[rdf.ID]struct{}
	// roots are classes with no parent, sorted by label.
	roots []rdf.ID
	// instanceCount[c] = number of direct instances (s, rdf:type, c).
	instanceCount map[rdf.ID]int
}

// Build constructs the hierarchy from one immutable store snapshot, so
// the recorded generation matches exactly the data the scan observed
// (and the scans themselves are lock-free).
func Build(st *store.Store) *Hierarchy {
	snap := st.Snapshot()
	h := &Hierarchy{
		st:            st,
		generation:    snap.Generation(),
		children:      make(map[rdf.ID][]rdf.ID),
		parents:       make(map[rdf.ID][]rdf.ID),
		classes:       make(map[rdf.ID]struct{}),
		instanceCount: make(map[rdf.ID]int),
	}
	// Subclass edges.
	snap.Match(rdf.NoID, snap.SubClassOfID(), rdf.NoID, func(e rdf.EncodedTriple) bool {
		h.children[e.O] = append(h.children[e.O], e.S)
		h.parents[e.S] = append(h.parents[e.S], e.O)
		h.classes[e.S] = struct{}{}
		h.classes[e.O] = struct{}{}
		return true
	})
	// Types: count instances and register classes.
	snap.Match(rdf.NoID, snap.TypeID(), rdf.NoID, func(e rdf.EncodedTriple) bool {
		h.instanceCount[e.O]++
		h.classes[e.O] = struct{}{}
		return true
	})
	// Declared classes with no instances and no edges still count
	// (DBpedia: "22 do not have instances at all").
	for _, id := range snap.DeclaredClassList() {
		h.classes[id] = struct{}{}
	}
	for c := range h.classes {
		if len(h.parents[c]) == 0 && !isMetaClass(st, c) {
			h.roots = append(h.roots, c)
		}
	}
	sortByLabel(st, h.roots)
	for _, kids := range h.children {
		sortByLabel(st, kids)
	}
	return h
}

// isMetaClass filters owl:Class, rdfs:Class themselves out of the root list.
func isMetaClass(st *store.Store, c rdf.ID) bool {
	t, ok := st.Dict().TermOK(c)
	if !ok {
		return false
	}
	switch t.Value {
	case rdf.OWLClass, rdf.RDFSClass, rdf.RDFProperty:
		return true
	}
	return false
}

func sortByLabel(st *store.Store, ids []rdf.ID) {
	sort.Slice(ids, func(i, j int) bool {
		li, lj := st.Label(ids[i]), st.Label(ids[j])
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
}

// Generation returns the store generation the snapshot was built at.
func (h *Hierarchy) Generation() uint64 { return h.generation }

// Stale reports whether the underlying store changed since Build.
func (h *Hierarchy) Stale() bool { return h.st.Generation() != h.generation }

// IsClass reports whether id is known as a class.
func (h *Hierarchy) IsClass(id rdf.ID) bool {
	_, ok := h.classes[id]
	return ok
}

// Classes returns every known class, sorted by label.
func (h *Hierarchy) Classes() []rdf.ID {
	out := make([]rdf.ID, 0, len(h.classes))
	for c := range h.classes {
		out = append(out, c)
	}
	sortByLabel(h.st, out)
	return out
}

// DirectSubclasses returns the classes declared rdfs:subClassOf c, sorted
// by label. The returned slice is shared; callers must not mutate it.
func (h *Hierarchy) DirectSubclasses(c rdf.ID) []rdf.ID { return h.children[c] }

// DirectSuperclasses returns the direct superclasses of c.
func (h *Hierarchy) DirectSuperclasses(c rdf.ID) []rdf.ID { return h.parents[c] }

// Roots returns the classes with no superclass (excluding meta-classes),
// sorted by label. For datasets like LinkedGeoData with no single root the
// list may be long; Explorer synthesizes a virtual root pane in that case
// (Section 3.2 footnote: "We also handle the case of datasets with no root
// class").
func (h *Hierarchy) Roots() []rdf.ID { return h.roots }

// Root returns the preferred root: owl:Thing if it is a known class,
// otherwise the single root if unique, otherwise NoID.
func (h *Hierarchy) Root() rdf.ID {
	if id, ok := h.st.Dict().Lookup(rdf.OWLThingIRI); ok {
		if _, isClass := h.classes[id]; isClass {
			return id
		}
	}
	if len(h.roots) == 1 {
		return h.roots[0]
	}
	return rdf.NoID
}

// SubclassClosure returns all descendants of c (not including c itself),
// deduplicated. Cycles are tolerated. Results are sorted by label.
func (h *Hierarchy) SubclassClosure(c rdf.ID) []rdf.ID {
	seen := map[rdf.ID]struct{}{c: {}}
	var out []rdf.ID
	stack := append([]rdf.ID(nil), h.children[c]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
		stack = append(stack, h.children[n]...)
	}
	sortByLabel(h.st, out)
	return out
}

// SuperclassClosure returns all ancestors of c (not including c itself).
func (h *Hierarchy) SuperclassClosure(c rdf.ID) []rdf.ID {
	seen := map[rdf.ID]struct{}{c: {}}
	var out []rdf.ID
	stack := append([]rdf.ID(nil), h.parents[c]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
		stack = append(stack, h.parents[n]...)
	}
	sortByLabel(h.st, out)
	return out
}

// SubclassCounts returns (direct, total) subclass counts for c — the
// numbers shown in the pane header and hover pop-up ("5 direct subclasses,
// and 277 subclasses in total").
func (h *Hierarchy) SubclassCounts(c rdf.ID) (direct, total int) {
	return len(h.children[c]), len(h.SubclassClosure(c))
}

// DirectInstanceCount returns the number of subjects typed directly as c.
func (h *Hierarchy) DirectInstanceCount(c rdf.ID) int { return h.instanceCount[c] }

// DeepInstanceCount returns the number of distinct subjects typed as c or
// any descendant of c.
func (h *Hierarchy) DeepInstanceCount(c rdf.ID) int {
	return len(h.DeepInstances(c))
}

// DeepInstances returns the distinct subjects typed as c or any descendant.
func (h *Hierarchy) DeepInstances(c rdf.ID) []rdf.ID {
	set := make(map[rdf.ID]struct{})
	add := func(class rdf.ID) {
		for _, s := range h.st.SubjectsOfType(class) {
			set[s] = struct{}{}
		}
	}
	add(c)
	for _, d := range h.SubclassClosure(c) {
		add(d)
	}
	out := make([]rdf.ID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsDescendantOf reports whether sub is in the subclass closure of sup.
func (h *Hierarchy) IsDescendantOf(sub, sup rdf.ID) bool {
	if sub == sup {
		return false
	}
	seen := map[rdf.ID]struct{}{}
	stack := append([]rdf.ID(nil), h.parents[sub]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == sup {
			return true
		}
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		stack = append(stack, h.parents[n]...)
	}
	return false
}

// PathFromRoot returns one shortest chain root → ... → c through the
// hierarchy, used for the breadcrumb trail. Returns nil if c is unreachable
// from the preferred root.
func (h *Hierarchy) PathFromRoot(c rdf.ID) []rdf.ID {
	root := h.Root()
	if root == rdf.NoID {
		return nil
	}
	if c == root {
		return []rdf.ID{root}
	}
	// BFS upward from c toward the root, then reverse.
	type node struct {
		id   rdf.ID
		prev *node
	}
	seen := map[rdf.ID]struct{}{c: {}}
	queue := []*node{{id: c}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range h.parents[n.id] {
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			nn := &node{id: p, prev: n}
			if p == root {
				var path []rdf.ID
				for cur := nn; cur != nil; cur = cur.prev {
					path = append(path, cur.id)
				}
				return path
			}
			queue = append(queue, nn)
		}
	}
	return nil
}

// TopLevelClasses returns the direct subclasses of the preferred root, or
// the root list when no preferred root exists. This is the paper's
// "first-level classes of the dataset" scenario.
func (h *Hierarchy) TopLevelClasses() []rdf.ID {
	if root := h.Root(); root != rdf.NoID {
		return h.DirectSubclasses(root)
	}
	return h.Roots()
}

// EmptyClasses returns classes (under the preferred root's closure, or all
// classes when rootless) that have zero direct and zero deep instances —
// the paper's "almost half of the classes (22) do not have instances at
// all" observation, restricted to top-level when topOnly is set.
func (h *Hierarchy) EmptyClasses(topOnly bool) []rdf.ID {
	var candidates []rdf.ID
	if topOnly {
		candidates = h.TopLevelClasses()
	} else {
		candidates = h.Classes()
	}
	var out []rdf.ID
	for _, c := range candidates {
		if h.DeepInstanceCount(c) == 0 {
			out = append(out, c)
		}
	}
	return out
}
