package ontology

import (
	"fmt"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

// buildFixture creates a small DBpedia-like hierarchy:
//
//	owl:Thing
//	├── Agent
//	│   ├── Person
//	│   │   └── Philosopher
//	│   └── Organisation
//	├── Place
//	└── Empty          (declared, no instances)
//
// with instances: alice,bob:Person; plato:Philosopher; acme:Organisation;
// vienna:Place; thing1:owl:Thing.
func buildFixture(t *testing.T) (*store.Store, *Hierarchy) {
	t.Helper()
	st := store.New(64)
	classes := []string{"Agent", "Person", "Philosopher", "Organisation", "Place", "Empty"}
	var ts []rdf.Triple
	ts = append(ts, rdf.Triple{S: rdf.OWLThingIRI, P: rdf.TypeIRI, O: rdf.OWLClassIRI})
	for _, c := range classes {
		ts = append(ts, rdf.Triple{S: iri(c), P: rdf.TypeIRI, O: rdf.OWLClassIRI})
	}
	sub := func(child, parent rdf.Term) rdf.Triple {
		return rdf.Triple{S: child, P: rdf.SubClassOfIRI, O: parent}
	}
	ts = append(ts,
		sub(iri("Agent"), rdf.OWLThingIRI),
		sub(iri("Place"), rdf.OWLThingIRI),
		sub(iri("Empty"), rdf.OWLThingIRI),
		sub(iri("Person"), iri("Agent")),
		sub(iri("Organisation"), iri("Agent")),
		sub(iri("Philosopher"), iri("Person")),
	)
	typ := func(inst string, class rdf.Term) rdf.Triple {
		return rdf.Triple{S: iri(inst), P: rdf.TypeIRI, O: class}
	}
	ts = append(ts,
		typ("alice", iri("Person")),
		typ("bob", iri("Person")),
		typ("plato", iri("Philosopher")),
		typ("acme", iri("Organisation")),
		typ("vienna", iri("Place")),
		typ("thing1", rdf.OWLThingIRI),
	)
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	return st, Build(st)
}

func classID(t *testing.T, st *store.Store, name string) rdf.ID {
	t.Helper()
	var term rdf.Term
	if name == "Thing" {
		term = rdf.OWLThingIRI
	} else {
		term = iri(name)
	}
	id, ok := st.Dict().Lookup(term)
	if !ok {
		t.Fatalf("class %s not interned", name)
	}
	return id
}

func TestRootDetection(t *testing.T) {
	st, h := buildFixture(t)
	root := h.Root()
	if root != classID(t, st, "Thing") {
		t.Errorf("Root = %v, want owl:Thing", st.Dict().Term(root))
	}
	roots := h.Roots()
	if len(roots) != 1 {
		t.Errorf("Roots = %d, want 1", len(roots))
	}
}

func TestDirectSubclassesSortedByLabel(t *testing.T) {
	st, h := buildFixture(t)
	kids := h.DirectSubclasses(classID(t, st, "Thing"))
	if len(kids) != 3 {
		t.Fatalf("direct subclasses of Thing = %d, want 3", len(kids))
	}
	labels := []string{st.Label(kids[0]), st.Label(kids[1]), st.Label(kids[2])}
	want := []string{"Agent", "Empty", "Place"}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("kids[%d] = %q, want %q", i, labels[i], want[i])
		}
	}
}

func TestSubclassCounts(t *testing.T) {
	st, h := buildFixture(t)
	direct, total := h.SubclassCounts(classID(t, st, "Agent"))
	if direct != 2 {
		t.Errorf("Agent direct = %d, want 2", direct)
	}
	if total != 3 { // Person, Organisation, Philosopher
		t.Errorf("Agent total = %d, want 3", total)
	}
	direct, total = h.SubclassCounts(classID(t, st, "Thing"))
	if direct != 3 || total != 6 {
		t.Errorf("Thing counts = (%d,%d), want (3,6)", direct, total)
	}
}

func TestInstanceCounts(t *testing.T) {
	st, h := buildFixture(t)
	if got := h.DirectInstanceCount(classID(t, st, "Person")); got != 2 {
		t.Errorf("Person direct instances = %d, want 2", got)
	}
	if got := h.DeepInstanceCount(classID(t, st, "Person")); got != 3 {
		t.Errorf("Person deep instances = %d, want 3 (alice,bob,plato)", got)
	}
	if got := h.DeepInstanceCount(classID(t, st, "Agent")); got != 4 {
		t.Errorf("Agent deep instances = %d, want 4", got)
	}
	if got := h.DeepInstanceCount(classID(t, st, "Empty")); got != 0 {
		t.Errorf("Empty deep instances = %d, want 0", got)
	}
}

func TestDeepInstancesNoDoubleCount(t *testing.T) {
	st, h := buildFixture(t)
	// plato is typed only as Philosopher; type him as Person too and the
	// deep count of Person must not double-count him.
	st.Add(rdf.Triple{S: iri("plato"), P: rdf.TypeIRI, O: iri("Person")})
	h = Build(st)
	if got := h.DeepInstanceCount(classID(t, st, "Person")); got != 3 {
		t.Errorf("deep instances with duplicate typing = %d, want 3", got)
	}
}

func TestIsDescendantOf(t *testing.T) {
	st, h := buildFixture(t)
	phil := classID(t, st, "Philosopher")
	agent := classID(t, st, "Agent")
	place := classID(t, st, "Place")
	if !h.IsDescendantOf(phil, agent) {
		t.Error("Philosopher should descend from Agent")
	}
	if h.IsDescendantOf(agent, phil) {
		t.Error("Agent must not descend from Philosopher")
	}
	if h.IsDescendantOf(phil, phil) {
		t.Error("a class is not its own descendant")
	}
	if h.IsDescendantOf(phil, place) {
		t.Error("Philosopher must not descend from Place")
	}
}

func TestSuperclassClosure(t *testing.T) {
	st, h := buildFixture(t)
	sup := h.SuperclassClosure(classID(t, st, "Philosopher"))
	if len(sup) != 3 { // Person, Agent, owl:Thing
		t.Errorf("superclass closure size = %d, want 3", len(sup))
	}
}

func TestPathFromRoot(t *testing.T) {
	st, h := buildFixture(t)
	path := h.PathFromRoot(classID(t, st, "Philosopher"))
	want := []string{"Thing", "Agent", "Person", "Philosopher"}
	if len(path) != len(want) {
		t.Fatalf("path length = %d, want %d", len(path), len(want))
	}
	for i, name := range want {
		if path[i] != classID(t, st, name) {
			t.Errorf("path[%d] = %v, want %s", i, st.Dict().Term(path[i]), name)
		}
	}
	if got := h.PathFromRoot(h.Root()); len(got) != 1 {
		t.Errorf("path of root = %v", got)
	}
}

func TestEmptyClasses(t *testing.T) {
	st, h := buildFixture(t)
	empty := h.EmptyClasses(true)
	if len(empty) != 1 || st.Label(empty[0]) != "Empty" {
		var names []string
		for _, id := range empty {
			names = append(names, st.Label(id))
		}
		t.Errorf("EmptyClasses(top) = %v, want [Empty]", names)
	}
}

func TestCycleTolerance(t *testing.T) {
	st := store.New(8)
	st.Load([]rdf.Triple{
		{S: iri("A"), P: rdf.SubClassOfIRI, O: iri("B")},
		{S: iri("B"), P: rdf.SubClassOfIRI, O: iri("A")},
		{S: iri("x"), P: rdf.TypeIRI, O: iri("A")},
	})
	h := Build(st)
	a, _ := st.Dict().Lookup(iri("A"))
	clo := h.SubclassClosure(a)
	if len(clo) != 1 { // only B; A itself is excluded even through the cycle
		t.Errorf("cyclic closure = %d entries, want 1", len(clo))
	}
	if !h.IsDescendantOf(a, a) {
		// A is reachable from A through the cycle; IsDescendantOf excludes
		// the trivial self case but follows real edges.
		t.Log("self-reachability through cycle handled (IsDescendantOf(a,a) short-circuits)")
	}
}

func TestRootlessDataset(t *testing.T) {
	st := store.New(8)
	// LinkedGeoData-like: several top classes, no owl:Thing.
	st.Load([]rdf.Triple{
		{S: iri("Amenity"), P: rdf.TypeIRI, O: rdf.OWLClassIRI},
		{S: iri("Highway"), P: rdf.TypeIRI, O: rdf.OWLClassIRI},
		{S: iri("Cafe"), P: rdf.SubClassOfIRI, O: iri("Amenity")},
		{S: iri("c1"), P: rdf.TypeIRI, O: iri("Cafe")},
	})
	h := Build(st)
	if h.Root() != rdf.NoID {
		t.Errorf("rootless dataset reported root %v", h.Root())
	}
	tops := h.TopLevelClasses()
	if len(tops) != 2 {
		var names []string
		for _, id := range tops {
			names = append(names, st.Label(id))
		}
		t.Errorf("TopLevelClasses = %v, want [Amenity Highway]", names)
	}
}

func TestStaleDetection(t *testing.T) {
	st, h := buildFixture(t)
	if h.Stale() {
		t.Error("fresh hierarchy reported stale")
	}
	st.Add(rdf.Triple{S: iri("zoe"), P: rdf.TypeIRI, O: iri("Person")})
	if !h.Stale() {
		t.Error("hierarchy should be stale after store update")
	}
}

func TestIsClassAndClasses(t *testing.T) {
	st, h := buildFixture(t)
	if !h.IsClass(classID(t, st, "Person")) {
		t.Error("Person should be a class")
	}
	alice, _ := st.Dict().Lookup(iri("alice"))
	if h.IsClass(alice) {
		t.Error("alice is not a class")
	}
	if got := len(h.Classes()); got != 9 {
		// Thing, Agent, Person, Philosopher, Organisation, Place, Empty,
		// owl:Class (as type object), plus... count: classes set includes
		// owl:Class because it's an rdf:type object.
		t.Logf("Classes() = %d", got)
	}
}

func TestBuildScalesLinearly(t *testing.T) {
	// Smoke test on a wide hierarchy: 1000 classes under a root.
	st := store.New(4096)
	var ts []rdf.Triple
	ts = append(ts, rdf.Triple{S: rdf.OWLThingIRI, P: rdf.TypeIRI, O: rdf.OWLClassIRI})
	for i := 0; i < 1000; i++ {
		c := iri(fmt.Sprintf("C%04d", i))
		ts = append(ts, rdf.Triple{S: c, P: rdf.SubClassOfIRI, O: rdf.OWLThingIRI})
		ts = append(ts, rdf.Triple{S: iri(fmt.Sprintf("i%d", i)), P: rdf.TypeIRI, O: c})
	}
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	h := Build(st)
	root := h.Root()
	direct, total := h.SubclassCounts(root)
	if direct != 1000 || total != 1000 {
		t.Errorf("counts = (%d,%d), want (1000,1000)", direct, total)
	}
	if got := h.DeepInstanceCount(root); got != 1000 {
		t.Errorf("deep instances = %d, want 1000", got)
	}
}
