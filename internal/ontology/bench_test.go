package ontology

import (
	"fmt"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

func benchHierarchyStore(classes, instances int) *store.Store {
	st := store.New(classes*3 + instances*2)
	var ts []rdf.Triple
	ts = append(ts, rdf.Triple{S: rdf.OWLThingIRI, P: rdf.TypeIRI, O: rdf.OWLClassIRI})
	for i := 0; i < classes; i++ {
		c := iri(fmt.Sprintf("C%d", i))
		parent := rdf.OWLThingIRI
		if i > 0 {
			parent = iri(fmt.Sprintf("C%d", (i-1)/3)) // ternary tree
		}
		ts = append(ts, rdf.Triple{S: c, P: rdf.TypeIRI, O: rdf.OWLClassIRI})
		ts = append(ts, rdf.Triple{S: c, P: rdf.SubClassOfIRI, O: parent})
	}
	for i := 0; i < instances; i++ {
		ts = append(ts, rdf.Triple{
			S: iri(fmt.Sprintf("inst%d", i)),
			P: rdf.TypeIRI,
			O: iri(fmt.Sprintf("C%d", i%classes)),
		})
	}
	st.Load(ts)
	return st
}

func BenchmarkBuild(b *testing.B) {
	st := benchHierarchyStore(500, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := Build(st)
		if h.Root() == rdf.NoID {
			b.Fatal("no root")
		}
	}
}

func BenchmarkSubclassClosure(b *testing.B) {
	st := benchHierarchyStore(500, 10000)
	h := Build(st)
	root := h.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := h.SubclassClosure(root); len(got) != 500 {
			b.Fatalf("closure = %d", len(got))
		}
	}
}

func BenchmarkDeepInstanceCount(b *testing.B) {
	st := benchHierarchyStore(500, 10000)
	h := Build(st)
	root := h.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := h.DeepInstanceCount(root); got != 10000 {
			b.Fatalf("deep = %d", got)
		}
	}
}

func BenchmarkPathFromRoot(b *testing.B) {
	st := benchHierarchyStore(500, 100)
	h := Build(st)
	leaf, _ := st.Dict().Lookup(iri("C499"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := h.PathFromRoot(leaf); len(p) == 0 {
			b.Fatal("no path")
		}
	}
}
