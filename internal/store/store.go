// Package store implements eLinda's dictionary-encoded in-memory triple
// store. It plays the role of the Virtuoso database in the paper's
// architecture (Figure 3): the generic SPARQL evaluator in internal/sparql
// runs against it, the decomposer's specialized indexes are built from it,
// and the incremental evaluator scans it in chunks of N triples.
//
// The store publishes generation-tagged immutable Snapshots. Each snapshot
// keeps the three permutation indexes (SPO, POS, OSP) as flat, columnar,
// sorted arrays — a two-level offset index over one contiguous []rdf.ID —
// so reads need no lock at all and Postings/Objects/Subjects return
// zero-copy sub-slices. Writes never mutate published state: Load
// bulk-builds a fresh columnar base with one sort per permutation, while
// individual Adds ride in a small overlay (a tiny insertion-order tail
// that periodically folds into a sorted delta, which in turn merges into
// a new columnar base once it outgrows its bound). Snapshot() is a single
// atomic pointer load, readers scale linearly with cores, and a query
// that binds one snapshot observes a perfectly consistent knowledge base
// for its whole lifetime.
package store

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"elinda/internal/rdf"
)

// Snapshot is a frozen, fully immutable view of the store at one
// generation: a columnar base covering most triples plus a small sorted
// delta and a tiny recent-adds tail (both empty in the steady state after
// a bulk Load or a compaction). Every method is safe for unlimited
// concurrency without locking, and nothing a snapshot returns is ever
// mutated afterwards — returned slices must be treated as read-only.
//
// Snapshots are cheap to hold: later store writes build new snapshots and
// never touch published ones, so a query, a chart evaluation, or an index
// build can keep reading one snapshot for as long as it likes and observe
// a perfectly consistent knowledge base.
type Snapshot struct {
	dict *rdf.Dict
	base *columnar

	// Delta triples (past the base), sorted per permutation order.
	deltaSPO []rdf.EncodedTriple
	deltaPOS []rdf.EncodedTriple
	deltaOSP []rdf.EncodedTriple

	// tail holds the most recent Adds in insertion order, unsorted and
	// bounded by tailMax; reads filter it linearly. Folding it into the
	// sorted delta in batches keeps Add's copy-on-write cost amortized
	// O(1) instead of O(delta) per insert.
	tail []rdf.EncodedTriple

	// Tombstones: base-resident triples deleted since the base was built,
	// sorted per permutation order (delSPO in SPO order, and so on).
	// Reads subtract them from base results; a fold/compaction drops the
	// triples physically. Deletes of overlay-resident triples never
	// become tombstones — they are filtered out of the delta/tail arrays
	// directly — so the overlay and the tombstone set are disjoint and a
	// tombstoned triple is never in log.
	delSPO []rdf.EncodedTriple
	delPOS []rdf.EncodedTriple
	delOSP []rdf.EncodedTriple

	// log is the full insertion-order triple log (base + delta + tail,
	// minus deleted triples). Between deletes writers only ever append;
	// a delete republishes a filtered copy.
	log []rdf.EncodedTriple

	generation uint64

	typeID     rdf.ID
	subClassID rdf.ID
	labelID    rdf.ID
}

// Store is a triple store over dictionary-encoded triples. All read
// methods are lock-free: they atomically load the current snapshot and
// serve from immutable data, so readers never block each other or
// writers, and read callbacks (Match, Scan) may safely re-enter the store
// — including its write methods (the re-entrant write is simply not
// visible to the in-flight iteration). Add/Load serialize on an internal
// writer lock.
//
// A monotonically increasing Generation lets caches (the HVS) detect
// knowledge-base updates: "The HVS is cleared on any update to the eLinda
// knowledge bases."
type Store struct {
	writeMu sync.Mutex // serializes Add/Load/compaction
	dict    *rdf.Dict
	snap    atomic.Pointer[Snapshot]

	// wal, when non-nil (AttachWAL), must durably log every write before
	// it is applied and acknowledged. Guarded by writeMu.
	wal WriteAheadLog

	// Frequently used IDs, resolved once.
	typeID     rdf.ID
	subClassID rdf.ID
	labelID    rdf.ID
}

const (
	// tailMax bounds the unsorted recent-adds tail before it folds into
	// the sorted delta (one O(delta) merge per tailMax Adds).
	tailMax = 256
	// minDeltaCompact is the smallest delta size that triggers a merge
	// into a new columnar base; the effective bound grows with the base
	// (max(minDeltaCompact, base/8)) so a long Add loop compacts
	// geometrically — amortized O(1) array work per insert.
	minDeltaCompact = 1024
)

// New returns an empty store with capacity hint n triples.
func New(n int) *Store {
	s := &Store{dict: rdf.NewDict(n / 4)}
	s.typeID = s.dict.Intern(rdf.TypeIRI)
	s.subClassID = s.dict.Intern(rdf.SubClassOfIRI)
	s.labelID = s.dict.Intern(rdf.LabelIRI)
	s.snap.Store(&Snapshot{
		dict:       s.dict,
		base:       buildColumnar(nil),
		log:        make([]rdf.EncodedTriple, 0, n),
		typeID:     s.typeID,
		subClassID: s.subClassID,
		labelID:    s.labelID,
	})
	return s
}

// Dict exposes the store's term dictionary.
func (s *Store) Dict() *rdf.Dict { return s.dict }

// TypeID returns the interned ID of rdf:type.
func (s *Store) TypeID() rdf.ID { return s.typeID }

// SubClassOfID returns the interned ID of rdfs:subClassOf.
func (s *Store) SubClassOfID() rdf.ID { return s.subClassID }

// LabelID returns the interned ID of rdfs:label.
func (s *Store) LabelID() rdf.ID { return s.labelID }

// Generation returns the update counter. It increases on every successful
// Add or Load, so equality of generations implies an unchanged KB.
func (s *Store) Generation() uint64 { return s.snap.Load().generation }

// Snapshot returns the currently published frozen view — a single atomic
// load, O(1) regardless of pending writes, so binding a snapshot per
// query costs nothing. The snapshot is immutable and lock-free for all
// reads; see Snapshot's doc.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// compacted merges snap's overlay (delta + tail) into a fresh columnar
// base covering the whole log — one linear merge per permutation, no
// re-sort. It reads snap but never mutates it (snapshots are shared
// immutable data); publishing the result requires holding writeMu.
func compacted(snap *Snapshot) *Snapshot {
	out := *snap
	if !snap.tombEmpty() {
		// Deletes to fold in: rebuild from the log (which already excludes
		// every deleted triple), physically dropping the tombstoned rows.
		// A linear three-way merge (base minus tombstones plus delta)
		// would be cheaper but the tombstone bound keeps this rare.
		out.base = buildColumnar(snap.log)
		out.deltaSPO, out.deltaPOS, out.deltaOSP, out.tail = nil, nil, nil, nil
		out.delSPO, out.delPOS, out.delOSP = nil, nil, nil
		return &out
	}
	out.deltaSPO = foldTail(snap.deltaSPO, snap.tail, cmpSPO)
	out.deltaPOS = foldTail(snap.deltaPOS, snap.tail, cmpPOS)
	out.deltaOSP = foldTail(snap.deltaOSP, snap.tail, cmpOSP)
	out.tail = nil
	out.base = &columnar{
		n:   len(snap.log),
		spo: mergePerm(&snap.base.spo, out.deltaSPO, keySPO),
		pos: mergePerm(&snap.base.pos, out.deltaPOS, keyPOS),
		osp: mergePerm(&snap.base.osp, out.deltaOSP, keyOSP),
	}
	// Statistics are recomputed at every base publication so they always
	// describe exactly the triples the new base covers.
	out.base.stats = computePlanStats(out.base)
	out.deltaSPO, out.deltaPOS, out.deltaOSP = nil, nil, nil
	return &out
}

// foldTail merges the unsorted tail into a permutation-sorted delta.
func foldTail(delta, tail []rdf.EncodedTriple, cmp func(x, y rdf.EncodedTriple) int) []rdf.EncodedTriple {
	if len(tail) == 0 {
		return delta
	}
	return mergeSortedTriples(delta, tail, cmp)
}

// maxDelta is the delta size bound before a merge into a new base.
func maxDelta(base *columnar) int {
	if n := base.n / 8; n > minDeltaCompact {
		return n
	}
	return minDeltaCompact
}

// Add inserts one term-level triple, returning whether it was new. It is
// a thin wrapper over Apply — a one-op insert delta — so the triple
// lands in the snapshot overlay and is visible to store reads
// immediately, with overlay maintenance (tail fold, base compaction)
// amortized O(1) per insert.
func (s *Store) Add(t rdf.Triple) (bool, error) {
	res, err := s.Apply(DeltaOf(rdf.Insert(t)))
	return res.Inserted > 0, err
}

// lookupEncoded encodes t if and only if all three terms are already
// interned. A triple with an unknown term cannot be in the store, so a
// false return means "definitely new" without touching the dictionary.
func lookupEncoded(d *rdf.Dict, t rdf.Triple) (rdf.EncodedTriple, bool) {
	sid, ok := d.Lookup(t.S)
	if !ok {
		return rdf.EncodedTriple{}, false
	}
	pid, ok := d.Lookup(t.P)
	if !ok {
		return rdf.EncodedTriple{}, false
	}
	oid, ok := d.Lookup(t.O)
	if !ok {
		return rdf.EncodedTriple{}, false
	}
	return rdf.EncodedTriple{S: sid, P: pid, O: oid}, true
}

// Load bulk-inserts triples, skipping duplicates, and returns the number
// actually added. Instead of per-insert index maintenance it encodes and
// deduplicates the whole batch, then sorts each permutation once and
// builds the columnar base directly (small batches fold into the overlay
// instead). Invalid triples abort the load with an error; triples added
// before the failure remain (the generation still advances).
func (s *Store) Load(ts []rdf.Triple) (int, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	snap := s.snap.Load()

	// Encode the valid prefix, then deduplicate with one sort instead of
	// a per-insert hash set.
	enc := make([]rdf.EncodedTriple, 0, len(ts))
	var loadErr error
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			loadErr = fmt.Errorf("store: triple %d: %w", i, err)
			break
		}
		enc = append(enc, s.dict.Encode(t))
	}
	// Fold the freshly interned vocabulary into the dictionary's
	// published read side (and empty the write shards): later lookups go
	// lock-free and the shard maps stop duplicating the read map.
	s.dict.PublishReads()
	batch := dedupBatch(snap, enc)
	if len(batch) > 0 {
		// Durability before acknowledgement, one durability point for the
		// whole batch. On failure nothing is applied: Load keeps the
		// acknowledged set and the log in agreement, same as Add. (Unlike
		// Add, the batch's vocabulary is already interned by the encode
		// pass above; a failed bulk load leaves those dictionary entries
		// behind, which wastes memory but affects no triple.)
		if s.wal != nil {
			ts := make([]rdf.Triple, len(batch))
			for i, e := range batch {
				ts[i] = s.dict.Decode(e)
			}
			if err := s.wal.AppendBatch(ts); err != nil {
				return 0, fmt.Errorf("store: %w", err)
			}
		}
		s.snap.Store(applyBatch(snap, batch))
	}
	return len(batch), loadErr
}

// dedupBatch filters enc down to the triples that are new to the
// snapshot, keeping the first occurrence of each (in original order,
// matching the per-insert semantics). The fast path sorts packed uint64
// keys; huge ID spaces fall back to a comparator sort.
func dedupBatch(snap *Snapshot, enc []rdf.EncodedTriple) []rdf.EncodedTriple {
	if maxIDIn(enc) < packMax {
		sorted := make([]uint64, len(enc))
		for i, e := range enc {
			sorted[i] = uint64(e.S)<<(2*packBits) | uint64(e.P)<<packBits | uint64(e.O)
		}
		slices.Sort(sorted)
		// Collect the values that occur more than once; bulk loads are
		// mostly duplicate-free, so this set is tiny (or empty, in which
		// case a fresh store can take the batch as is).
		dupCount := map[uint64]int{}
		for k := 1; k < len(sorted); k++ {
			if sorted[k] == sorted[k-1] {
				dupCount[sorted[k]]++
			}
		}
		if len(snap.log) == 0 && len(dupCount) == 0 {
			return enc
		}
		// Slow path (duplicates or a pre-populated store): re-derive each
		// element's key in original order.
		packed := make([]uint64, len(enc))
		for i, e := range enc {
			packed[i] = uint64(e.S)<<(2*packBits) | uint64(e.P)<<packBits | uint64(e.O)
		}
		existing := map[uint64]bool{}
		if len(snap.log) > 0 {
			sorted = slices.Compact(sorted)
			for _, p := range sorted {
				e := rdf.EncodedTriple{
					S: rdf.ID(p >> (2 * packBits)),
					P: rdf.ID(p>>packBits) & rdf.ID(packMask),
					O: rdf.ID(p) & rdf.ID(packMask),
				}
				if snap.Contains(e) {
					existing[p] = true
				}
			}
		}
		batch := enc[:0]
		for i, e := range enc {
			p := packed[i]
			if existing[p] {
				continue
			}
			if n, dup := dupCount[p]; dup {
				if n < 0 {
					continue // a dup already claimed its slot
				}
				dupCount[p] = -1
			}
			batch = append(batch, e)
		}
		return batch
	}
	type posTriple struct {
		e rdf.EncodedTriple
		i int32
	}
	byVal := make([]posTriple, len(enc))
	for i, e := range enc {
		byVal[i] = posTriple{e: e, i: int32(i)}
	}
	slices.SortFunc(byVal, func(x, y posTriple) int {
		if c := cmpSPO(x.e, y.e); c != 0 {
			return c
		}
		return int(x.i) - int(y.i)
	})
	drop := make([]bool, len(enc))
	for k := range byVal {
		if k > 0 && byVal[k].e == byVal[k-1].e {
			drop[byVal[k].i] = true // later duplicate within the batch
		} else if snap.Contains(byVal[k].e) {
			drop[byVal[k].i] = true // already in the store
		}
	}
	batch := enc[:0]
	for i, e := range enc {
		if !drop[i] {
			batch = append(batch, e)
		}
	}
	return batch
}

// applyBatch folds a duplicate-free batch into a new snapshot: small
// batches merge into the sorted delta overlay, large ones trigger a full
// sort-once rebuild of the columnar base from the log.
func applyBatch(snap *Snapshot, batch []rdf.EncodedTriple) *Snapshot {
	next := *snap
	next.generation = snap.generation + uint64(len(batch))
	next.log = append(snap.log, batch...)
	if len(snap.deltaSPO)+len(snap.tail)+len(batch) < maxDelta(snap.base) {
		merged := func(delta []rdf.EncodedTriple, cmp func(x, y rdf.EncodedTriple) int) []rdf.EncodedTriple {
			return mergeSortedTriples(foldTail(delta, snap.tail, cmp), batch, cmp)
		}
		next.deltaSPO = merged(snap.deltaSPO, cmpSPO)
		next.deltaPOS = merged(snap.deltaPOS, cmpPOS)
		next.deltaOSP = merged(snap.deltaOSP, cmpOSP)
		next.tail = nil
		return &next
	}
	next.base = buildColumnar(next.log)
	next.deltaSPO, next.deltaPOS, next.deltaOSP, next.tail = nil, nil, nil, nil
	next.delSPO, next.delPOS, next.delOSP = nil, nil, nil
	return &next
}

// mergeSortedTriples merges a sorted duplicate-free run with a batch that
// is sorted on the fly (it arrives in insertion order).
func mergeSortedTriples(list, batch []rdf.EncodedTriple, cmp func(x, y rdf.EncodedTriple) int) []rdf.EncodedTriple {
	sorted := make([]rdf.EncodedTriple, len(batch))
	copy(sorted, batch)
	slices.SortFunc(sorted, cmp)
	if len(list) == 0 {
		return sorted
	}
	out := make([]rdf.EncodedTriple, 0, len(list)+len(sorted))
	i, j := 0, 0
	for i < len(list) && j < len(sorted) {
		if cmp(list[i], sorted[j]) < 0 {
			out = append(out, list[i])
			i++
		} else {
			out = append(out, sorted[j])
			j++
		}
	}
	out = append(out, list[i:]...)
	out = append(out, sorted[j:]...)
	return out
}

// --- Snapshot read API (immutable, lock-free) ---

// Dict exposes the term dictionary (shared with the live store; the
// dictionary itself is safe for concurrent use and only ever grows).
func (s *Snapshot) Dict() *rdf.Dict { return s.dict }

// Generation returns the store generation this snapshot was taken at.
func (s *Snapshot) Generation() uint64 { return s.generation }

// Len returns the number of distinct triples in the snapshot.
func (s *Snapshot) Len() int { return len(s.log) }

// TypeID returns the interned ID of rdf:type.
func (s *Snapshot) TypeID() rdf.ID { return s.typeID }

// SubClassOfID returns the interned ID of rdfs:subClassOf.
func (s *Snapshot) SubClassOfID() rdf.ID { return s.subClassID }

// LabelID returns the interned ID of rdfs:label.
func (s *Snapshot) LabelID() rdf.ID { return s.labelID }

// overlayEmpty reports whether every triple lives in the columnar base.
func (s *Snapshot) overlayEmpty() bool { return len(s.deltaSPO) == 0 && len(s.tail) == 0 }

// tombEmpty reports whether no base triple is masked by a tombstone.
func (s *Snapshot) tombEmpty() bool { return len(s.delSPO) == 0 }

// tombstoned reports whether a base-resident triple is masked by a
// delete — O(log tombstones).
func (s *Snapshot) tombstoned(e rdf.EncodedTriple) bool {
	d := s.delSPO
	if len(d) == 0 {
		return false
	}
	i := sort.Search(len(d), func(i int) bool { return cmpSPO(d[i], e) >= 0 })
	return i < len(d) && d[i] == e
}

// Contains reports whether the encoded triple is present — two binary
// searches plus a posting probe on the base (minus tombstones), O(log
// delta) on the sorted delta, and a bounded linear scan of the
// recent-adds tail.
func (s *Snapshot) Contains(e rdf.EncodedTriple) bool {
	if s.base.containsID(e.S, e.P, e.O) && !s.tombstoned(e) {
		return true
	}
	if d := s.deltaSPO; len(d) > 0 {
		i := sort.Search(len(d), func(i int) bool { return cmpSPO(d[i], e) >= 0 })
		if i < len(d) && d[i] == e {
			return true
		}
	}
	for _, t := range s.tail {
		if t == e {
			return true
		}
	}
	return false
}

// ContainsID reports whether the fully bound triple is present. It is the
// O(log n) membership primitive behind the query engine's fully-bound
// pattern joins.
func (s *Snapshot) ContainsID(sub, pred, obj rdf.ID) bool {
	return s.Contains(rdf.EncodedTriple{S: sub, P: pred, O: obj})
}

// ContainsTriple reports whether the term-level triple is present.
func (s *Snapshot) ContainsTriple(t rdf.Triple) bool {
	st, ok1 := s.dict.Lookup(t.S)
	pt, ok2 := s.dict.Lookup(t.P)
	ot, ok3 := s.dict.Lookup(t.O)
	return ok1 && ok2 && ok3 && s.ContainsID(st, pt, ot)
}

// Scan invokes fn on triples in insertion order, starting at offset, for
// at most limit triples (limit <= 0 means all remaining), and returns the
// number visited. The iteration is over immutable data: the callback may
// freely call back into the live store, including its write methods.
func (s *Snapshot) Scan(offset, limit int, fn func(rdf.EncodedTriple) bool) int {
	if offset < 0 {
		offset = 0
	}
	if offset >= len(s.log) {
		return 0
	}
	end := len(s.log)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	n := 0
	for _, e := range s.log[offset:end] {
		n++
		if !fn(e) {
			break
		}
	}
	return n
}

// Match iterates over every triple matching the pattern (s, p, o) where
// rdf.NoID is a wildcard. fn returning false stops the iteration early.
// Index-backed shapes enumerate the columnar base in sorted ID order,
// followed by any overlay matches; the all-wildcard shape walks the
// insertion-order log. No lock is held: the callback may re-enter the
// store, including write methods.
func (s *Snapshot) Match(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) {
	if sub == rdf.NoID && pred == rdf.NoID && obj == rdf.NoID {
		for _, e := range s.log {
			if !fn(e) {
				return
			}
		}
		return
	}
	baseFn := fn
	if !s.tombEmpty() {
		baseFn = func(e rdf.EncodedTriple) bool {
			if s.tombstoned(e) {
				return true // masked: skip, keep iterating
			}
			return fn(e)
		}
	}
	if !s.base.match(sub, pred, obj, baseFn) {
		return
	}
	if s.overlayEmpty() {
		return
	}
	if !s.deltaMatch(sub, pred, obj, fn) {
		return
	}
	for _, e := range s.tail {
		if matchesPattern(e, sub, pred, obj) && !fn(e) {
			return
		}
	}
}

// matchesPattern reports whether e matches the pattern (rdf.NoID is a
// wildcard).
func matchesPattern(e rdf.EncodedTriple, sub, pred, obj rdf.ID) bool {
	return (sub == rdf.NoID || e.S == sub) &&
		(pred == rdf.NoID || e.P == pred) &&
		(obj == rdf.NoID || e.O == obj)
}

// deltaPrefix returns the sub-range of a permutation-sorted delta whose
// first position equals a (and, when useB, whose second position equals
// b). key maps an entry to its permutation tuple.
func deltaPrefix(d []rdf.EncodedTriple, key func(rdf.EncodedTriple) (a, b, c rdf.ID), a, b rdf.ID, useB bool) []rdf.EncodedTriple {
	lo := sort.Search(len(d), func(i int) bool {
		xa, xb, _ := key(d[i])
		if xa != a {
			return xa > a
		}
		return !useB || xb >= b
	})
	hi := sort.Search(len(d), func(i int) bool {
		xa, xb, _ := key(d[i])
		if xa != a {
			return xa > a
		}
		return useB && xb > b
	})
	return d[lo:hi]
}

// deltaMatch iterates the sorted-delta entries matching the pattern (at
// least one position bound); reports whether iteration ran to completion.
func (s *Snapshot) deltaMatch(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) bool {
	var span []rdf.EncodedTriple
	switch {
	case sub != rdf.NoID && pred != rdf.NoID:
		span = deltaPrefix(s.deltaSPO, keySPO, sub, pred, true)
	case pred != rdf.NoID && obj != rdf.NoID:
		span = deltaPrefix(s.deltaPOS, keyPOS, pred, obj, true)
	case sub != rdf.NoID && obj != rdf.NoID:
		span = deltaPrefix(s.deltaOSP, keyOSP, obj, sub, true)
	case sub != rdf.NoID:
		span = deltaPrefix(s.deltaSPO, keySPO, sub, rdf.NoID, false)
	case pred != rdf.NoID:
		span = deltaPrefix(s.deltaPOS, keyPOS, pred, rdf.NoID, false)
	default:
		span = deltaPrefix(s.deltaOSP, keyOSP, obj, rdf.NoID, false)
	}
	for _, e := range span {
		if matchesPattern(e, sub, pred, obj) && !fn(e) {
			return false
		}
	}
	return true
}

// CountMatch returns the number of triples matching the pattern. It
// delegates to CardMatch, which answers from index offsets without
// walking matches.
func (s *Snapshot) CountMatch(sub, pred, obj rdf.ID) int {
	return s.CardMatch(sub, pred, obj)
}

// CardMatch returns the exact number of triples matching the pattern
// (rdf.NoID is a wildcard) from index offsets — O(log n) binary searches
// plus the bounded overlay, never a walk over matching triples. This is
// what the query planner's selectivity estimates are built on.
func (s *Snapshot) CardMatch(sub, pred, obj rdf.ID) int {
	n := s.base.card(sub, pred, obj)
	if !s.tombEmpty() {
		n -= s.tombCard(sub, pred, obj)
	}
	if s.overlayEmpty() {
		return n
	}
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		if n == 0 && s.Contains(rdf.EncodedTriple{S: sub, P: pred, O: obj}) {
			n = 1
		}
		return n
	case sub != rdf.NoID && pred != rdf.NoID:
		n += len(deltaPrefix(s.deltaSPO, keySPO, sub, pred, true))
	case pred != rdf.NoID && obj != rdf.NoID:
		n += len(deltaPrefix(s.deltaPOS, keyPOS, pred, obj, true))
	case sub != rdf.NoID && obj != rdf.NoID:
		n += len(deltaPrefix(s.deltaOSP, keyOSP, obj, sub, true))
	case sub != rdf.NoID:
		n += len(deltaPrefix(s.deltaSPO, keySPO, sub, rdf.NoID, false))
	case pred != rdf.NoID:
		n += len(deltaPrefix(s.deltaPOS, keyPOS, pred, rdf.NoID, false))
	case obj != rdf.NoID:
		n += len(deltaPrefix(s.deltaOSP, keyOSP, obj, rdf.NoID, false))
	default:
		return len(s.log)
	}
	for _, e := range s.tail {
		if matchesPattern(e, sub, pred, obj) {
			n++
		}
	}
	return n
}

// tombCard returns the number of tombstoned base triples matching the
// pattern — the exact amount CardMatch must subtract from the base
// count. Same O(log) prefix searches as the sorted delta, over the
// tombstone arrays.
func (s *Snapshot) tombCard(sub, pred, obj rdf.ID) int {
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		if s.tombstoned(rdf.EncodedTriple{S: sub, P: pred, O: obj}) {
			return 1
		}
		return 0
	case sub != rdf.NoID && pred != rdf.NoID:
		return len(deltaPrefix(s.delSPO, keySPO, sub, pred, true))
	case pred != rdf.NoID && obj != rdf.NoID:
		return len(deltaPrefix(s.delPOS, keyPOS, pred, obj, true))
	case sub != rdf.NoID && obj != rdf.NoID:
		return len(deltaPrefix(s.delOSP, keyOSP, obj, sub, true))
	case sub != rdf.NoID:
		return len(deltaPrefix(s.delSPO, keySPO, sub, rdf.NoID, false))
	case pred != rdf.NoID:
		return len(deltaPrefix(s.delPOS, keyPOS, pred, rdf.NoID, false))
	case obj != rdf.NoID:
		return len(deltaPrefix(s.delOSP, keyOSP, obj, rdf.NoID, false))
	default:
		return len(s.delSPO)
	}
}

// overlaySingle extracts the single-wildcard values of a Postings-shaped
// pattern from the overlay, sorted.
func (s *Snapshot) overlaySingle(sub, pred, obj rdf.ID) []rdf.ID {
	out := extractSingle(s.deltaSPO, s.deltaPOS, s.deltaOSP, sub, pred, obj)
	tailStart := len(out)
	for _, e := range s.tail {
		if matchesPattern(e, sub, pred, obj) {
			out = append(out, pickSingle(e, sub, pred, obj))
		}
	}
	if tailStart < len(out) {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// pickSingle returns e's value at the pattern's single wildcard position.
func pickSingle(e rdf.EncodedTriple, sub, pred, obj rdf.ID) rdf.ID {
	switch {
	case obj == rdf.NoID:
		return e.O
	case sub == rdf.NoID:
		return e.S
	default:
		return e.P
	}
}

// extractSingle pulls the single-wildcard values of a Postings-shaped
// pattern out of one permutation-sorted triple-array family (the overlay
// deltas or the tombstones), sorted ascending.
func extractSingle(spo, pos, osp []rdf.EncodedTriple, sub, pred, obj rdf.ID) []rdf.ID {
	var span []rdf.EncodedTriple
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj == rdf.NoID:
		span = deltaPrefix(spo, keySPO, sub, pred, true)
	case sub == rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		span = deltaPrefix(pos, keyPOS, pred, obj, true)
	default: // (s, ?, o)
		span = deltaPrefix(osp, keyOSP, obj, sub, true)
	}
	var out []rdf.ID
	for _, e := range span {
		out = append(out, pickSingle(e, sub, pred, obj)) // span is sorted by the picked position
	}
	return out
}

// mergeSortedIDs merges two sorted duplicate-free ID lists.
func mergeSortedIDs(a, b []rdf.ID) []rdf.ID {
	out := make([]rdf.ID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Postings returns the sorted ID list for the single wildcard position of
// the pattern: the objects of (s, p, ?), the subjects of (?, p, o), or
// the predicates of (s, ?, o). ok is false unless exactly one position is
// rdf.NoID. When the overlay holds nothing for the key (the steady state)
// the result is a zero-copy view into the columnar index; otherwise it is
// a freshly merged slice. Either way it is safe to retain, never mutated,
// and must not be modified by the caller. Sortedness is what lets callers
// merge-intersect posting lists instead of probing one element at a time.
func (s *Snapshot) Postings(sub, pred, obj rdf.ID) (ids []rdf.ID, ok bool) {
	base, ok := s.base.postings(sub, pred, obj)
	if !ok {
		return nil, false
	}
	if !s.tombEmpty() {
		// Tombstoned postings are subtracted; keys no delete touches keep
		// the zero-copy view.
		if dead := extractSingle(s.delSPO, s.delPOS, s.delOSP, sub, pred, obj); len(dead) > 0 {
			base = subtractSorted(base, dead)
		}
	}
	if s.overlayEmpty() {
		return base, true
	}
	extra := s.overlaySingle(sub, pred, obj)
	if len(extra) == 0 {
		return base, true
	}
	return mergeSortedIDs(base, extra), true
}

// subtractSorted returns a with the members of b removed; both inputs
// are sorted and duplicate-free, and a is never mutated.
func subtractSorted(a, b []rdf.ID) []rdf.ID {
	out := make([]rdf.ID, 0, len(a))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Objects returns the sorted object IDs of triples (sub, pred, ?) —
// shared immutable data, do not modify.
func (s *Snapshot) Objects(sub, pred rdf.ID) []rdf.ID {
	ids, _ := s.Postings(sub, pred, rdf.NoID)
	return ids
}

// Subjects returns the sorted subject IDs of triples (?, pred, obj) —
// shared immutable data, do not modify.
func (s *Snapshot) Subjects(pred, obj rdf.ID) []rdf.ID {
	ids, _ := s.Postings(rdf.NoID, pred, obj)
	return ids
}

// SubjectsOfType returns the subjects s with (s, rdf:type, class) — the
// paper's "URI u is of class c" relation.
func (s *Snapshot) SubjectsOfType(class rdf.ID) []rdf.ID {
	return s.Subjects(s.typeID, class)
}

// PredicatesOf returns the distinct predicate IDs on subject sub, sorted
// ascending. With an empty overlay it is a zero-copy view of the SPO
// index's second level; do not modify it.
func (s *Snapshot) PredicatesOf(sub rdf.ID) []rdf.ID {
	base := s.base.spo.bKeysOf(sub)
	var dead []rdf.EncodedTriple
	if !s.tombEmpty() {
		dead = deltaPrefix(s.delSPO, keySPO, sub, rdf.NoID, false)
	}
	if s.overlayEmpty() && len(dead) == 0 {
		return base
	}
	extra := deltaPrefix(s.deltaSPO, keySPO, sub, rdf.NoID, false)
	var tailPreds []rdf.ID
	for _, e := range s.tail {
		if e.S == sub {
			tailPreds = append(tailPreds, e.P)
		}
	}
	if len(extra) == 0 && len(tailPreds) == 0 && len(dead) == 0 {
		return base
	}
	merged := make([]rdf.ID, 0, len(base)+len(extra)+len(tailPreds))
	if len(dead) == 0 {
		merged = append(merged, base...)
	} else {
		// A base predicate stays live iff it has more base postings than
		// tombstones on this subject.
		for _, p := range base {
			if s.base.card(sub, p, rdf.NoID) > len(deltaPrefix(dead, keySPO, sub, p, true)) {
				merged = append(merged, p)
			}
		}
	}
	for _, e := range extra {
		merged = append(merged, e.P)
	}
	merged = append(merged, tailPreds...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	return dedupSorted(merged)
}

// PredicatesInto returns the distinct predicate IDs arriving at object
// obj as a freshly allocated, sorted, deduplicated slice (deterministic
// across calls).
func (s *Snapshot) PredicatesInto(obj rdf.ID) []rdf.ID {
	span := s.base.osp.cSpanOf(obj)
	out := make([]rdf.ID, 0, len(span))
	if !s.tombEmpty() && len(deltaPrefix(s.delOSP, keyOSP, obj, rdf.NoID, false)) > 0 {
		// Deletes touched this object: walk its base triples and keep the
		// predicates of the live ones.
		s.base.match(rdf.NoID, rdf.NoID, obj, func(e rdf.EncodedTriple) bool {
			if !s.tombstoned(e) {
				out = append(out, e.P)
			}
			return true
		})
	} else {
		out = append(out, span...)
	}
	if !s.overlayEmpty() {
		for _, e := range deltaPrefix(s.deltaOSP, keyOSP, obj, rdf.NoID, false) {
			out = append(out, e.P)
		}
		for _, e := range s.tail {
			if e.O == obj {
				out = append(out, e.P)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupSorted(out)
}

// Triple decodes e back to term form.
func (s *Snapshot) Triple(e rdf.EncodedTriple) rdf.Triple { return s.dict.Decode(e) }

// Label returns the rdfs:label of the node if one exists, otherwise the
// IRI's local name.
func (s *Snapshot) Label(id rdf.ID) string {
	for _, o := range s.Objects(id, s.labelID) {
		if t, ok := s.dict.TermOK(o); ok && t.IsLiteral() {
			return t.Value
		}
	}
	if t, ok := s.dict.TermOK(id); ok {
		return t.LocalName()
	}
	return ""
}

// --- Store read API: one atomic snapshot load per call ---

// Len returns the number of distinct triples.
func (s *Store) Len() int { return s.Snapshot().Len() }

// Contains reports whether the encoded triple is present. O(log n), no
// locks.
func (s *Store) Contains(e rdf.EncodedTriple) bool { return s.Snapshot().Contains(e) }

// ContainsID reports whether the fully bound triple (sub, pred, obj) is
// present.
func (s *Store) ContainsID(sub, pred, obj rdf.ID) bool {
	return s.Snapshot().ContainsID(sub, pred, obj)
}

// ContainsTriple reports whether the term-level triple is present.
func (s *Store) ContainsTriple(t rdf.Triple) bool { return s.Snapshot().ContainsTriple(t) }

// Scan invokes fn on triples in insertion order, starting at offset, for
// at most limit triples (limit <= 0 means all remaining). It returns the
// number visited. This is the primitive behind incremental evaluation.
//
// Scan holds no lock: it captures the current snapshot atomically and
// iterates immutable data, so the callback may safely call back into the
// store — including Add and Load. Triples written during the scan belong
// to a newer snapshot and are not visited by the in-flight iteration.
func (s *Store) Scan(offset, limit int, fn func(rdf.EncodedTriple) bool) int {
	return s.Snapshot().Scan(offset, limit, fn)
}

// Match iterates over every triple matching the pattern (s, p, o) where
// rdf.NoID is a wildcard. fn returning false stops the iteration early.
// Like all store reads it is lock-free — the callback may re-enter the
// store, including its write methods; it observes the state from before
// the call.
func (s *Store) Match(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) {
	s.Snapshot().Match(sub, pred, obj, fn)
}

// CountMatch returns the number of triples matching the pattern. It
// delegates to CardMatch — index offsets, never a walk over matches.
func (s *Store) CountMatch(sub, pred, obj rdf.ID) int { return s.CardMatch(sub, pred, obj) }

// CardMatch returns the exact number of triples matching the pattern
// (rdf.NoID is a wildcard) from index offsets: O(log n) for every pattern
// shape. This is what the query planner's selectivity estimates are built
// on.
func (s *Store) CardMatch(sub, pred, obj rdf.ID) int {
	return s.Snapshot().CardMatch(sub, pred, obj)
}

// Postings returns the sorted ID list for the single wildcard position of
// the pattern; see Snapshot.Postings for the contract. The returned slice
// is safe to retain and must not be modified.
func (s *Store) Postings(sub, pred, obj rdf.ID) (ids []rdf.ID, ok bool) {
	return s.Snapshot().Postings(sub, pred, obj)
}

// Objects returns the sorted object IDs of triples (sub, pred, ?) —
// shared immutable data, do not modify.
func (s *Store) Objects(sub, pred rdf.ID) []rdf.ID { return s.Snapshot().Objects(sub, pred) }

// Subjects returns the sorted subject IDs of triples (?, pred, obj) —
// shared immutable data, do not modify.
func (s *Store) Subjects(pred, obj rdf.ID) []rdf.ID { return s.Snapshot().Subjects(pred, obj) }

// SubjectsOfType returns the subjects s with (s, rdf:type, class).
func (s *Store) SubjectsOfType(class rdf.ID) []rdf.ID { return s.Snapshot().SubjectsOfType(class) }

// PredicatesOf returns the distinct predicate IDs on subject sub, sorted
// ascending.
func (s *Store) PredicatesOf(sub rdf.ID) []rdf.ID { return s.Snapshot().PredicatesOf(sub) }

// PredicatesInto returns the distinct predicate IDs arriving at object
// obj as a sorted, deduplicated slice, deterministic across calls.
func (s *Store) PredicatesInto(obj rdf.ID) []rdf.ID { return s.Snapshot().PredicatesInto(obj) }

// Triple decodes e back to term form.
func (s *Store) Triple(e rdf.EncodedTriple) rdf.Triple { return s.dict.Decode(e) }

// Label returns the rdfs:label of the node if one exists, otherwise the
// IRI's local name (Section 3.1: "eLinda makes extensive use of standard
// rdfs:label properties").
func (s *Store) Label(id rdf.ID) string { return s.Snapshot().Label(id) }
