// Package store implements eLinda's dictionary-encoded in-memory triple
// store. It plays the role of the Virtuoso database in the paper's
// architecture (Figure 3): the generic SPARQL evaluator in internal/sparql
// runs against it, the decomposer's specialized indexes are built from it,
// and the incremental evaluator scans it in chunks of N triples.
//
// The store keeps three permutation indexes (SPO, POS, OSP) so that any
// triple pattern with at least one bound position is answered by index
// lookup, plus the insertion-order triple log that incremental evaluation
// needs ("compute the chart on the first N triples, then the next N").
package store

import (
	"fmt"
	"sync"

	"elinda/internal/rdf"
)

// Store is a triple store over dictionary-encoded triples. All read methods
// are safe for concurrent use with each other; Add/Load take an exclusive
// lock. A monotonically increasing Generation lets caches (the HVS) detect
// knowledge-base updates: "The HVS is cleared on any update to the eLinda
// knowledge bases."
type Store struct {
	mu   sync.RWMutex
	dict *rdf.Dict

	// log holds triples in insertion order for chunked scans.
	log []rdf.EncodedTriple
	// seen deduplicates triples.
	seen map[rdf.EncodedTriple]struct{}

	// Permutation indexes. spo[s][p] = sorted list of o, etc.
	spo map[rdf.ID]map[rdf.ID][]rdf.ID
	pos map[rdf.ID]map[rdf.ID][]rdf.ID
	osp map[rdf.ID]map[rdf.ID][]rdf.ID

	generation uint64

	// Frequently used IDs, resolved once.
	typeID     rdf.ID
	subClassID rdf.ID
	labelID    rdf.ID
}

// New returns an empty store with capacity hint n triples.
func New(n int) *Store {
	s := &Store{
		dict: rdf.NewDict(n / 4),
		log:  make([]rdf.EncodedTriple, 0, n),
		seen: make(map[rdf.EncodedTriple]struct{}, n),
		spo:  make(map[rdf.ID]map[rdf.ID][]rdf.ID),
		pos:  make(map[rdf.ID]map[rdf.ID][]rdf.ID),
		osp:  make(map[rdf.ID]map[rdf.ID][]rdf.ID),
	}
	s.typeID = s.dict.Intern(rdf.TypeIRI)
	s.subClassID = s.dict.Intern(rdf.SubClassOfIRI)
	s.labelID = s.dict.Intern(rdf.LabelIRI)
	return s
}

// Dict exposes the store's term dictionary.
func (s *Store) Dict() *rdf.Dict { return s.dict }

// TypeID returns the interned ID of rdf:type.
func (s *Store) TypeID() rdf.ID { return s.typeID }

// SubClassOfID returns the interned ID of rdfs:subClassOf.
func (s *Store) SubClassOfID() rdf.ID { return s.subClassID }

// LabelID returns the interned ID of rdfs:label.
func (s *Store) LabelID() rdf.ID { return s.labelID }

// Generation returns the update counter. It increases on every successful
// Add or Load, so equality of generations implies an unchanged KB.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.generation
}

// Add inserts one term-level triple, returning whether it was new.
func (s *Store) Add(t rdf.Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	e := s.dict.Encode(t)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(e), nil
}

// Load bulk-inserts triples, skipping duplicates, and returns the number
// actually added. Invalid triples abort the load with an error; triples
// added before the failure remain (the generation still advances).
func (s *Store) Load(ts []rdf.Triple) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			return n, fmt.Errorf("store: triple %d: %w", i, err)
		}
		if s.addLocked(s.dict.Encode(t)) {
			n++
		}
	}
	return n, nil
}

func (s *Store) addLocked(e rdf.EncodedTriple) bool {
	if _, dup := s.seen[e]; dup {
		return false
	}
	s.seen[e] = struct{}{}
	s.log = append(s.log, e)
	insertIdx(s.spo, e.S, e.P, e.O)
	insertIdx(s.pos, e.P, e.O, e.S)
	insertIdx(s.osp, e.O, e.S, e.P)
	s.generation++
	return true
}

func insertIdx(idx map[rdf.ID]map[rdf.ID][]rdf.ID, a, b, c rdf.ID) {
	m, ok := idx[a]
	if !ok {
		m = make(map[rdf.ID][]rdf.ID, 2)
		idx[a] = m
	}
	m[b] = append(m[b], c)
}

// Len returns the number of distinct triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// Contains reports whether the encoded triple is present.
func (s *Store) Contains(e rdf.EncodedTriple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.seen[e]
	return ok
}

// ContainsTriple reports whether the term-level triple is present.
func (s *Store) ContainsTriple(t rdf.Triple) bool {
	st, ok1 := s.dict.Lookup(t.S)
	pt, ok2 := s.dict.Lookup(t.P)
	ot, ok3 := s.dict.Lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return s.Contains(rdf.EncodedTriple{S: st, P: pt, O: ot})
}

// Scan invokes fn on triples in insertion order, starting at offset, for at
// most limit triples (limit <= 0 means all remaining). It returns the number
// visited. This is the primitive behind incremental evaluation.
func (s *Store) Scan(offset, limit int, fn func(rdf.EncodedTriple) bool) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if offset < 0 {
		offset = 0
	}
	if offset >= len(s.log) {
		return 0
	}
	end := len(s.log)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	n := 0
	for _, e := range s.log[offset:end] {
		n++
		if !fn(e) {
			break
		}
	}
	return n
}

// Match iterates over every triple matching the pattern (s, p, o) where
// rdf.NoID is a wildcard. fn returning false stops the iteration early.
// The callback must not call back into the store's write methods.
func (s *Store) Match(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.matchLocked(sub, pred, obj, fn)
}

func (s *Store) matchLocked(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) {
	switch {
	case sub != rdf.NoID:
		byP, ok := s.spo[sub]
		if !ok {
			return
		}
		if pred != rdf.NoID {
			for _, o := range byP[pred] {
				if obj != rdf.NoID && o != obj {
					continue
				}
				if !fn(rdf.EncodedTriple{S: sub, P: pred, O: o}) {
					return
				}
			}
			return
		}
		for p, objs := range byP {
			for _, o := range objs {
				if obj != rdf.NoID && o != obj {
					continue
				}
				if !fn(rdf.EncodedTriple{S: sub, P: p, O: o}) {
					return
				}
			}
		}
	case pred != rdf.NoID:
		byO, ok := s.pos[pred]
		if !ok {
			return
		}
		if obj != rdf.NoID {
			for _, sid := range byO[obj] {
				if !fn(rdf.EncodedTriple{S: sid, P: pred, O: obj}) {
					return
				}
			}
			return
		}
		for o, subs := range byO {
			for _, sid := range subs {
				if !fn(rdf.EncodedTriple{S: sid, P: pred, O: o}) {
					return
				}
			}
		}
	case obj != rdf.NoID:
		byS, ok := s.osp[obj]
		if !ok {
			return
		}
		for sid, preds := range byS {
			for _, p := range preds {
				if !fn(rdf.EncodedTriple{S: sid, P: p, O: obj}) {
					return
				}
			}
		}
	default:
		for _, e := range s.log {
			if !fn(e) {
				return
			}
		}
	}
}

// CountMatch returns the number of triples matching the pattern.
func (s *Store) CountMatch(sub, pred, obj rdf.ID) int {
	n := 0
	s.Match(sub, pred, obj, func(rdf.EncodedTriple) bool { n++; return true })
	return n
}

// Objects returns the object IDs of triples (sub, pred, ?). The returned
// slice is a copy.
func (s *Store) Objects(sub, pred rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byP, ok := s.spo[sub]
	if !ok {
		return nil
	}
	objs := byP[pred]
	out := make([]rdf.ID, len(objs))
	copy(out, objs)
	return out
}

// Subjects returns the subject IDs of triples (?, pred, obj). The returned
// slice is a copy.
func (s *Store) Subjects(pred, obj rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byO, ok := s.pos[pred]
	if !ok {
		return nil
	}
	subs := byO[obj]
	out := make([]rdf.ID, len(subs))
	copy(out, subs)
	return out
}

// SubjectsOfType returns the subjects s with (s, rdf:type, class) — the
// paper's "URI u is of class c" relation.
func (s *Store) SubjectsOfType(class rdf.ID) []rdf.ID {
	return s.Subjects(s.typeID, class)
}

// PredicatesOf returns the distinct predicate IDs on subject sub.
func (s *Store) PredicatesOf(sub rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byP, ok := s.spo[sub]
	if !ok {
		return nil
	}
	out := make([]rdf.ID, 0, len(byP))
	for p := range byP {
		out = append(out, p)
	}
	return out
}

// PredicatesInto returns the distinct predicate IDs arriving at object obj.
func (s *Store) PredicatesInto(obj rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byS, ok := s.osp[obj]
	if !ok {
		return nil
	}
	set := make(map[rdf.ID]struct{})
	for _, preds := range byS {
		for _, p := range preds {
			set[p] = struct{}{}
		}
	}
	out := make([]rdf.ID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return out
}

// Triple decodes e back to term form.
func (s *Store) Triple(e rdf.EncodedTriple) rdf.Triple { return s.dict.Decode(e) }

// Label returns the rdfs:label of the node if one exists, otherwise the
// IRI's local name (Section 3.1: "eLinda makes extensive use of standard
// rdfs:label properties").
func (s *Store) Label(id rdf.ID) string {
	objs := s.Objects(id, s.labelID)
	for _, o := range objs {
		if t, ok := s.dict.TermOK(o); ok && t.IsLiteral() {
			return t.Value
		}
	}
	if t, ok := s.dict.TermOK(id); ok {
		return t.LocalName()
	}
	return ""
}
