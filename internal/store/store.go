// Package store implements eLinda's dictionary-encoded in-memory triple
// store. It plays the role of the Virtuoso database in the paper's
// architecture (Figure 3): the generic SPARQL evaluator in internal/sparql
// runs against it, the decomposer's specialized indexes are built from it,
// and the incremental evaluator scans it in chunks of N triples.
//
// The store keeps three permutation indexes (SPO, POS, OSP) so that any
// triple pattern with at least one bound position is answered by index
// lookup, plus the insertion-order triple log that incremental evaluation
// needs ("compute the chart on the first N triples, then the next N").
// Posting lists are kept sorted, which gives O(log n) membership probes
// (Contains, ContainsID), O(1) cardinality statistics (CardMatch) for the
// query planner, and sorted ID streams (Postings) that the SPARQL engine's
// ID-space executor can merge-join.
package store

import (
	"fmt"
	"sort"
	"sync"

	"elinda/internal/rdf"
)

// Store is a triple store over dictionary-encoded triples. All read methods
// are safe for concurrent use with each other; Add/Load take an exclusive
// lock. A monotonically increasing Generation lets caches (the HVS) detect
// knowledge-base updates: "The HVS is cleared on any update to the eLinda
// knowledge bases."
type Store struct {
	mu   sync.RWMutex
	dict *rdf.Dict

	// log holds triples in insertion order for chunked scans.
	log []rdf.EncodedTriple

	// Permutation indexes. Posting lists are kept sorted on insert, so
	// bound-position membership is a binary search and the query engine's
	// ID-row joins can merge sorted lists instead of nested-looping.
	// Sortedness also makes the spo index double as the duplicate check.
	// spo[s][p] = sorted list of o, etc.
	spo map[rdf.ID]map[rdf.ID][]rdf.ID
	pos map[rdf.ID]map[rdf.ID][]rdf.ID
	osp map[rdf.ID]map[rdf.ID][]rdf.ID

	// Per-position triple counts backing O(1) cardinality estimates:
	// nS[s] is the number of triples with subject s, and so on.
	nS map[rdf.ID]int
	nP map[rdf.ID]int
	nO map[rdf.ID]int

	generation uint64

	// Frequently used IDs, resolved once.
	typeID     rdf.ID
	subClassID rdf.ID
	labelID    rdf.ID
}

// New returns an empty store with capacity hint n triples.
func New(n int) *Store {
	s := &Store{
		dict: rdf.NewDict(n / 4),
		log:  make([]rdf.EncodedTriple, 0, n),
		spo:  make(map[rdf.ID]map[rdf.ID][]rdf.ID),
		pos:  make(map[rdf.ID]map[rdf.ID][]rdf.ID),
		osp:  make(map[rdf.ID]map[rdf.ID][]rdf.ID),
		nS:   make(map[rdf.ID]int),
		nP:   make(map[rdf.ID]int),
		nO:   make(map[rdf.ID]int),
	}
	s.typeID = s.dict.Intern(rdf.TypeIRI)
	s.subClassID = s.dict.Intern(rdf.SubClassOfIRI)
	s.labelID = s.dict.Intern(rdf.LabelIRI)
	return s
}

// Dict exposes the store's term dictionary.
func (s *Store) Dict() *rdf.Dict { return s.dict }

// TypeID returns the interned ID of rdf:type.
func (s *Store) TypeID() rdf.ID { return s.typeID }

// SubClassOfID returns the interned ID of rdfs:subClassOf.
func (s *Store) SubClassOfID() rdf.ID { return s.subClassID }

// LabelID returns the interned ID of rdfs:label.
func (s *Store) LabelID() rdf.ID { return s.labelID }

// Generation returns the update counter. It increases on every successful
// Add or Load, so equality of generations implies an unchanged KB.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.generation
}

// Add inserts one term-level triple, returning whether it was new.
func (s *Store) Add(t rdf.Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	e := s.dict.Encode(t)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(e), nil
}

// Load bulk-inserts triples, skipping duplicates, and returns the number
// actually added. Invalid triples abort the load with an error; triples
// added before the failure remain (the generation still advances).
func (s *Store) Load(ts []rdf.Triple) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			return n, fmt.Errorf("store: triple %d: %w", i, err)
		}
		if s.addLocked(s.dict.Encode(t)) {
			n++
		}
	}
	return n, nil
}

func (s *Store) addLocked(e rdf.EncodedTriple) bool {
	if byP, ok := s.spo[e.S]; ok && containsSorted(byP[e.P], e.O) {
		return false
	}
	s.log = append(s.log, e)
	insertIdx(s.spo, e.S, e.P, e.O)
	insertIdx(s.pos, e.P, e.O, e.S)
	insertIdx(s.osp, e.O, e.S, e.P)
	s.nS[e.S]++
	s.nP[e.P]++
	s.nO[e.O]++
	s.generation++
	return true
}

// insertIdx adds c to the posting list idx[a][b], keeping it sorted. The
// common case (IDs arrive in roughly increasing order from the dictionary)
// is an O(1) append; out-of-order inserts binary-search and shift.
func insertIdx(idx map[rdf.ID]map[rdf.ID][]rdf.ID, a, b, c rdf.ID) {
	m, ok := idx[a]
	if !ok {
		m = make(map[rdf.ID][]rdf.ID, 2)
		idx[a] = m
	}
	list := m[b]
	if n := len(list); n == 0 || list[n-1] < c {
		m[b] = append(list, c)
		return
	}
	i := sort.Search(len(list), func(i int) bool { return list[i] >= c })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = c
	m[b] = list
}

// containsSorted reports whether id occurs in the sorted posting list.
func containsSorted(list []rdf.ID, id rdf.ID) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	return i < len(list) && list[i] == id
}

// Len returns the number of distinct triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.log)
}

// Contains reports whether the encoded triple is present. It is a binary
// search over the triple's SPO posting list (O(log n)).
func (s *Store) Contains(e rdf.EncodedTriple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byP, ok := s.spo[e.S]
	return ok && containsSorted(byP[e.P], e.O)
}

// ContainsID reports whether the fully bound triple (sub, pred, obj) is
// present. It is the O(log n) membership primitive behind the query
// engine's fully-bound pattern joins.
func (s *Store) ContainsID(sub, pred, obj rdf.ID) bool {
	return s.Contains(rdf.EncodedTriple{S: sub, P: pred, O: obj})
}

// ContainsTriple reports whether the term-level triple is present.
func (s *Store) ContainsTriple(t rdf.Triple) bool {
	st, ok1 := s.dict.Lookup(t.S)
	pt, ok2 := s.dict.Lookup(t.P)
	ot, ok3 := s.dict.Lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return s.Contains(rdf.EncodedTriple{S: st, P: pt, O: ot})
}

// Scan invokes fn on triples in insertion order, starting at offset, for at
// most limit triples (limit <= 0 means all remaining). It returns the number
// visited. This is the primitive behind incremental evaluation.
func (s *Store) Scan(offset, limit int, fn func(rdf.EncodedTriple) bool) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if offset < 0 {
		offset = 0
	}
	if offset >= len(s.log) {
		return 0
	}
	end := len(s.log)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	n := 0
	for _, e := range s.log[offset:end] {
		n++
		if !fn(e) {
			break
		}
	}
	return n
}

// Match iterates over every triple matching the pattern (s, p, o) where
// rdf.NoID is a wildcard. fn returning false stops the iteration early.
// The callback must not call back into the store's write methods.
func (s *Store) Match(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.matchLocked(sub, pred, obj, fn)
}

func (s *Store) matchLocked(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) {
	switch {
	case sub != rdf.NoID:
		byP, ok := s.spo[sub]
		if !ok {
			return
		}
		if pred != rdf.NoID {
			for _, o := range byP[pred] {
				if obj != rdf.NoID && o != obj {
					continue
				}
				if !fn(rdf.EncodedTriple{S: sub, P: pred, O: o}) {
					return
				}
			}
			return
		}
		for p, objs := range byP {
			for _, o := range objs {
				if obj != rdf.NoID && o != obj {
					continue
				}
				if !fn(rdf.EncodedTriple{S: sub, P: p, O: o}) {
					return
				}
			}
		}
	case pred != rdf.NoID:
		byO, ok := s.pos[pred]
		if !ok {
			return
		}
		if obj != rdf.NoID {
			for _, sid := range byO[obj] {
				if !fn(rdf.EncodedTriple{S: sid, P: pred, O: obj}) {
					return
				}
			}
			return
		}
		for o, subs := range byO {
			for _, sid := range subs {
				if !fn(rdf.EncodedTriple{S: sid, P: pred, O: o}) {
					return
				}
			}
		}
	case obj != rdf.NoID:
		byS, ok := s.osp[obj]
		if !ok {
			return
		}
		for sid, preds := range byS {
			for _, p := range preds {
				if !fn(rdf.EncodedTriple{S: sid, P: p, O: obj}) {
					return
				}
			}
		}
	default:
		for _, e := range s.log {
			if !fn(e) {
				return
			}
		}
	}
}

// CountMatch returns the number of triples matching the pattern by
// iterating them. Prefer CardMatch, which answers the same question from
// index sizes without walking matches.
func (s *Store) CountMatch(sub, pred, obj rdf.ID) int {
	n := 0
	s.Match(sub, pred, obj, func(rdf.EncodedTriple) bool { n++; return true })
	return n
}

// CardMatch returns the exact number of triples matching the pattern
// (rdf.NoID is a wildcard) from index map/slice sizes: O(1) for every
// pattern shape except the fully bound triple, which is an O(log n)
// membership probe. This is what the query planner's selectivity
// estimates are built on.
func (s *Store) CardMatch(sub, pred, obj rdf.ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		if byP, ok := s.spo[sub]; ok && containsSorted(byP[pred], obj) {
			return 1
		}
		return 0
	case sub != rdf.NoID && pred != rdf.NoID:
		return len(s.spo[sub][pred])
	case pred != rdf.NoID && obj != rdf.NoID:
		return len(s.pos[pred][obj])
	case sub != rdf.NoID && obj != rdf.NoID:
		return len(s.osp[obj][sub])
	case sub != rdf.NoID:
		return s.nS[sub]
	case pred != rdf.NoID:
		return s.nP[pred]
	case obj != rdf.NoID:
		return s.nO[obj]
	default:
		return len(s.log)
	}
}

// Postings returns the sorted ID list for the single wildcard position of
// the pattern: the objects of (s, p, ?), the subjects of (?, p, o), or the
// predicates of (s, ?, o). ok is false unless exactly one position is
// rdf.NoID. The returned slice is a copy and safe to retain; sortedness is
// what lets callers merge-intersect posting lists instead of probing one
// element at a time.
func (s *Store) Postings(sub, pred, obj rdf.ID) (ids []rdf.ID, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var list []rdf.ID
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj == rdf.NoID:
		list = s.spo[sub][pred]
	case sub == rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		list = s.pos[pred][obj]
	case sub != rdf.NoID && pred == rdf.NoID && obj != rdf.NoID:
		list = s.osp[obj][sub]
	default:
		return nil, false
	}
	out := make([]rdf.ID, len(list))
	copy(out, list)
	return out, true
}

// Objects returns the object IDs of triples (sub, pred, ?). The returned
// slice is a copy.
func (s *Store) Objects(sub, pred rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byP, ok := s.spo[sub]
	if !ok {
		return nil
	}
	objs := byP[pred]
	out := make([]rdf.ID, len(objs))
	copy(out, objs)
	return out
}

// Subjects returns the subject IDs of triples (?, pred, obj). The returned
// slice is a copy.
func (s *Store) Subjects(pred, obj rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byO, ok := s.pos[pred]
	if !ok {
		return nil
	}
	subs := byO[obj]
	out := make([]rdf.ID, len(subs))
	copy(out, subs)
	return out
}

// SubjectsOfType returns the subjects s with (s, rdf:type, class) — the
// paper's "URI u is of class c" relation.
func (s *Store) SubjectsOfType(class rdf.ID) []rdf.ID {
	return s.Subjects(s.typeID, class)
}

// PredicatesOf returns the distinct predicate IDs on subject sub.
func (s *Store) PredicatesOf(sub rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byP, ok := s.spo[sub]
	if !ok {
		return nil
	}
	out := make([]rdf.ID, 0, len(byP))
	for p := range byP {
		out = append(out, p)
	}
	return out
}

// PredicatesInto returns the distinct predicate IDs arriving at object obj.
func (s *Store) PredicatesInto(obj rdf.ID) []rdf.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byS, ok := s.osp[obj]
	if !ok {
		return nil
	}
	set := make(map[rdf.ID]struct{})
	for _, preds := range byS {
		for _, p := range preds {
			set[p] = struct{}{}
		}
	}
	out := make([]rdf.ID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return out
}

// Triple decodes e back to term form.
func (s *Store) Triple(e rdf.EncodedTriple) rdf.Triple { return s.dict.Decode(e) }

// Label returns the rdfs:label of the node if one exists, otherwise the
// IRI's local name (Section 3.1: "eLinda makes extensive use of standard
// rdfs:label properties").
func (s *Store) Label(id rdf.ID) string {
	objs := s.Objects(id, s.labelID)
	for _, o := range objs {
		if t, ok := s.dict.TermOK(o); ok && t.IsLiteral() {
			return t.Value
		}
	}
	if t, ok := s.dict.TermOK(id); ok {
		return t.LocalName()
	}
	return ""
}
