package store

import (
	"fmt"

	"elinda/internal/rdf"
)

// Delta is an ordered batch of triple mutations — the one write unit of
// the store. Store.Apply applies a delta atomically: readers observe
// either the snapshot before the whole delta or the snapshot after it,
// never an intermediate state, and with a WAL attached the delta is
// durable before it is acknowledged.
//
// Ops apply in order, so a delta may delete a triple and re-insert it
// (or vice versa); Apply reduces the sequence to its net effect before
// touching the indexes. The zero value is an empty delta ready for use.
type Delta struct {
	ops []rdf.TripleOp
}

// DeltaOf builds a delta from explicit ops.
func DeltaOf(ops ...rdf.TripleOp) Delta { return Delta{ops: ops} }

// Insert appends insertion ops for ts and returns d for chaining.
func (d *Delta) Insert(ts ...rdf.Triple) *Delta {
	for _, t := range ts {
		d.ops = append(d.ops, rdf.Insert(t))
	}
	return d
}

// Delete appends deletion ops for ts and returns d for chaining.
func (d *Delta) Delete(ts ...rdf.Triple) *Delta {
	for _, t := range ts {
		d.ops = append(d.ops, rdf.Delete(t))
	}
	return d
}

// Op appends one op and returns d for chaining.
func (d *Delta) Op(op rdf.TripleOp) *Delta {
	d.ops = append(d.ops, op)
	return d
}

// Ops returns the mutation sequence in application order. The slice is
// shared; callers must not mutate it.
func (d Delta) Ops() []rdf.TripleOp { return d.ops }

// Len returns the number of ops in the delta.
func (d Delta) Len() int { return len(d.ops) }

// ApplyResult describes what one Apply actually changed. From and To are
// the store generations before and after (equal when the delta was a
// complete no-op — all inserts already present, all deletes already
// absent). NetInserts and NetDeletes are the net membership changes in
// dictionary-encoded form: a triple deleted and re-inserted by the same
// delta appears in both (its insertion-order log position moved), a
// triple inserted and deleted by the same delta appears in neither.
type ApplyResult struct {
	From, To uint64
	// Inserted and Deleted count the net changes (= len of the slices).
	Inserted, Deleted int
	// NetInserts and NetDeletes are encoded against the store dictionary;
	// decode with Store.Triple. Shared slices — do not mutate.
	NetInserts []rdf.EncodedTriple
	NetDeletes []rdf.EncodedTriple
}

// Changed reports whether the delta had any effect.
func (r ApplyResult) Changed() bool { return r.To != r.From }

// Apply is the single write entry point of the store: it validates the
// delta, reduces it to its effective ops (inserts of absent triples,
// deletes of present ones — tracked through the delta's own ordering, so
// an insert-then-delete is two effective ops with zero net effect),
// makes those ops durable in one WAL batch before anything is applied or
// acknowledged, and publishes one new snapshot with the net effect.
//
// Deletes of base-resident triples become tombstones in the snapshot's
// delta layer: the columnar base is not rewritten, reads subtract the
// tombstoned postings, and the next fold/compaction drops the triples
// physically. Deletes of overlay-resident triples are filtered out of
// the overlay directly. The generation advances by the number of
// effective ops (matching a record-at-a-time WAL replay), so any change
// moves it even when the net membership delta is empty.
func (s *Store) Apply(d Delta) (ApplyResult, error) {
	for i, op := range d.ops {
		if err := op.Triple.Validate(); err != nil {
			return ApplyResult{}, fmt.Errorf("store: op %d: %w", i, err)
		}
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	snap := s.snap.Load()
	res := ApplyResult{From: snap.generation, To: snap.generation}

	// Reduce to effective ops. Membership is evaluated against the
	// current snapshot plus the delta's own earlier ops; the lookup never
	// grows the dictionary (see Add: durability precedes interning).
	var pending map[rdf.Triple]bool // membership overrides within this delta
	present := func(t rdf.Triple) bool {
		if v, ok := pending[t]; ok {
			return v
		}
		if enc, known := lookupEncoded(s.dict, t); known {
			return snap.Contains(enc)
		}
		return false
	}
	eff := make([]rdf.TripleOp, 0, len(d.ops))
	for _, op := range d.ops {
		if op.Del != present(op.Triple) {
			continue // delete of an absent triple / insert of a present one
		}
		eff = append(eff, op)
		if len(d.ops) > 1 {
			if pending == nil {
				pending = make(map[rdf.Triple]bool, len(d.ops))
			}
			pending[op.Triple] = !op.Del
		}
	}
	if len(eff) == 0 {
		return res, nil
	}

	// Durability before acknowledgement and before interning: one
	// durability point for the whole delta. On failure nothing is applied
	// and no new term was interned — the store, its dictionary and the
	// log never disagree on what was acknowledged.
	if s.wal != nil {
		if err := s.wal.AppendOps(eff); err != nil {
			return ApplyResult{}, fmt.Errorf("store: %w", err)
		}
	}

	// Net effect per distinct triple. The effective sequence for one
	// triple strictly alternates, starting from its pre-delta state, so
	// the first op tells us whether it was present before and the last op
	// tells us whether it is present after. Net inserts are ordered by
	// their last effective insert op, so the insertion log after a batch
	// Apply is identical to applying the same ops one delta at a time
	// (which is exactly what a record-at-a-time WAL replay does).
	order := make([]rdf.Triple, 0, len(eff))
	preDel := make(map[rdf.Triple]bool, len(eff))
	var insOrder []rdf.Triple
	dropIns := func(t rdf.Triple) {
		for i, x := range insOrder {
			if x == t {
				insOrder = append(insOrder[:i], insOrder[i+1:]...)
				return
			}
		}
	}
	for _, op := range eff {
		if _, seen := preDel[op.Triple]; !seen {
			preDel[op.Triple] = op.Del
			order = append(order, op.Triple)
		}
		dropIns(op.Triple)
		if !op.Del {
			insOrder = append(insOrder, op.Triple)
		}
	}
	var ins, del []rdf.EncodedTriple
	for _, t := range order {
		if preDel[t] {
			del = append(del, s.dict.Encode(t))
		}
	}
	for _, t := range insOrder {
		ins = append(ins, s.dict.Encode(t))
	}

	next := applyMutations(snap, ins, del, uint64(len(eff)))
	s.snap.Store(next)
	res.To = next.generation
	res.Inserted, res.Deleted = len(ins), len(del)
	res.NetInserts, res.NetDeletes = ins, del
	return res, nil
}

// applyMutations builds the successor snapshot for a net mutation set:
// ins are triples absent from snap (to add), del are triples present in
// snap (to remove); a triple in both moves to the end of the insertion
// log. gen is the generation advance. snap is never mutated.
func applyMutations(snap *Snapshot, ins, del []rdf.EncodedTriple, gen uint64) *Snapshot {
	if len(del) == 0 {
		return applyInserts(snap, ins, gen)
	}
	next := *snap
	next.generation = snap.generation + gen

	delSet := make(map[rdf.EncodedTriple]struct{}, len(del))
	for _, e := range del {
		delSet[e] = struct{}{}
	}

	// The insertion-order log drops deleted triples eagerly (Scan, Len,
	// rebuilds and persistence all read it), then grows by the inserts.
	newLog := make([]rdf.EncodedTriple, 0, len(snap.log)-len(del)+len(ins))
	for _, e := range snap.log {
		if _, dead := delSet[e]; !dead {
			newLog = append(newLog, e)
		}
	}
	newLog = append(newLog, ins...)
	next.log = newLog

	// Overlay-resident deletes are filtered out physically; base-resident
	// ones become tombstones. A triple masked by an existing tombstone is
	// not base-live, so it can only be deleted via its overlay copy.
	var baseDel []rdf.EncodedTriple
	for _, e := range del {
		if snap.base.containsID(e.S, e.P, e.O) && !snap.tombstoned(e) {
			baseDel = append(baseDel, e)
		}
	}
	next.deltaSPO = filterOps(snap.deltaSPO, delSet)
	next.deltaPOS = filterOps(snap.deltaPOS, delSet)
	next.deltaOSP = filterOps(snap.deltaOSP, delSet)
	next.tail = filterOps(snap.tail, delSet)
	if len(baseDel) > 0 {
		next.delSPO = mergeSortedTriples(snap.delSPO, baseDel, cmpSPO)
		next.delPOS = mergeSortedTriples(snap.delPOS, baseDel, cmpPOS)
		next.delOSP = mergeSortedTriples(snap.delOSP, baseDel, cmpOSP)
	}

	// Inserts merge into the (already filtered) sorted delta.
	if len(ins) > 0 {
		next.deltaSPO = mergeSortedTriples(foldTail(next.deltaSPO, next.tail, cmpSPO), ins, cmpSPO)
		next.deltaPOS = mergeSortedTriples(foldTail(next.deltaPOS, next.tail, cmpPOS), ins, cmpPOS)
		next.deltaOSP = mergeSortedTriples(foldTail(next.deltaOSP, next.tail, cmpOSP), ins, cmpOSP)
		next.tail = nil
	}

	// Compact when the tombstone set or the delta outgrows its bound: one
	// sort-once rebuild from the filtered log physically drops every
	// tombstoned triple.
	if len(next.delSPO) >= maxDelta(next.base) || len(next.deltaSPO) >= maxDelta(next.base) {
		next.base = buildColumnar(next.log)
		next.deltaSPO, next.deltaPOS, next.deltaOSP, next.tail = nil, nil, nil, nil
		next.delSPO, next.delPOS, next.delOSP = nil, nil, nil
	}
	return &next
}

// applyInserts is the delete-free fast path: small batches ride the
// recent-adds tail exactly like Add always has, larger ones fold into
// the sorted delta, and a delta past its bound compacts — a linear
// merge into a new base, or a rebuild from the log when tombstones must
// be dropped (compacted picks).
func applyInserts(snap *Snapshot, ins []rdf.EncodedTriple, gen uint64) *Snapshot {
	next := *snap
	next.generation = snap.generation + gen
	next.log = append(snap.log, ins...)
	if len(snap.tail)+len(ins) < tailMax {
		next.tail = append(snap.tail, ins...)
		return &next
	}
	next.deltaSPO = mergeSortedTriples(foldTail(snap.deltaSPO, snap.tail, cmpSPO), ins, cmpSPO)
	next.deltaPOS = mergeSortedTriples(foldTail(snap.deltaPOS, snap.tail, cmpPOS), ins, cmpPOS)
	next.deltaOSP = mergeSortedTriples(foldTail(snap.deltaOSP, snap.tail, cmpOSP), ins, cmpOSP)
	next.tail = nil
	if len(next.deltaSPO) >= maxDelta(next.base) {
		return compacted(&next)
	}
	return &next
}

// filterOps returns ops without the members of dead, sharing the input
// slice when nothing matches (the common case — most deltas touch the
// base, not the overlay).
func filterOps(ops []rdf.EncodedTriple, dead map[rdf.EncodedTriple]struct{}) []rdf.EncodedTriple {
	hit := false
	for _, e := range ops {
		if _, d := dead[e]; d {
			hit = true
			break
		}
	}
	if !hit {
		return ops
	}
	out := make([]rdf.EncodedTriple, 0, len(ops))
	for _, e := range ops {
		if _, d := dead[e]; !d {
			out = append(out, e)
		}
	}
	return out
}
