package store

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"elinda/internal/rdf"
)

// ingestCorpus builds a deterministic synthetic corpus with plenty of
// term reuse (classes, labels, language tags, typed literals), shaped
// like the datasets the loader actually sees.
func ingestCorpus(n int) []rdf.Triple {
	var ts []rdf.Triple
	iri := func(s string, i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://x/%s%d", s, i)) }
	for i := 0; i < n; i++ {
		s := iri("e", i)
		ts = append(ts,
			rdf.Triple{S: s, P: rdf.TypeIRI, O: iri("Class", i%13)},
			rdf.Triple{S: s, P: rdf.LabelIRI, O: rdf.NewLangLiteral(fmt.Sprintf("entity \"%d\"\n", i), "en")},
			rdf.Triple{S: s, P: iri("p", i%7), O: iri("e", (i*3+1)%n)},
			rdf.Triple{S: s, P: iri("age", 0), O: rdf.NewTypedLiteral(fmt.Sprint(i%90), rdf.XSDInteger)},
		)
		if i%11 == 0 {
			ts = append(ts, rdf.Triple{S: iri("Class", i%13), P: rdf.SubClassOfIRI, O: iri("Class", (i+1)%13)})
		}
	}
	return ts
}

// snapshotBytes serializes a store's snapshot for byte-level comparison.
func snapshotBytes(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadStreamMatchesLoad: the streaming parallel path must produce a
// store byte-identical to the serial materialize-then-Load path — same
// dictionary IDs, same log, same indexes, same generation.
func TestLoadStreamMatchesLoad(t *testing.T) {
	ts := ingestCorpus(400)
	doc := rdf.FormatNTriples(ts)

	serial := New(len(ts))
	parsed, err := rdf.ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serial.Load(parsed); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, serial)

	for _, workers := range []int{1, 2, 4, 8} {
		st := New(len(ts))
		added, err := st.LoadStream(strings.NewReader(doc), StreamOptions{Workers: workers, ChunkBytes: 512})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if added != serial.Len() {
			t.Fatalf("workers=%d: added %d triples, want %d", workers, added, serial.Len())
		}
		if got := snapshotBytes(t, st); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: snapshot bytes diverge from the serial path (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestLoadStreamDeterministicAcrossChunkSizes: chunk geometry must not
// leak into the result either.
func TestLoadStreamDeterministicAcrossChunkSizes(t *testing.T) {
	ts := ingestCorpus(150)
	doc := rdf.FormatNTriples(ts)
	var want []byte
	for _, chunk := range []int{64, 999, 1 << 20} {
		st := New(0)
		if _, err := st.LoadStream(strings.NewReader(doc), StreamOptions{Workers: 3, ChunkBytes: chunk}); err != nil {
			t.Fatal(err)
		}
		got := snapshotBytes(t, st)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("chunk=%d: snapshot bytes diverge", chunk)
		}
	}
}

func TestLoadStreamTurtle(t *testing.T) {
	doc := `@prefix ex: <http://x/> .
ex:a a ex:C ; ex:p ex:b, ex:c ; ex:n 41 .
ex:b ex:name "b node"@en .
@prefix ex: <http://y/> .
ex:a ex:p ex:z .
`
	parsed, err := rdf.ParseTurtle(doc)
	if err != nil {
		t.Fatal(err)
	}
	serial := New(0)
	if _, err := serial.Load(parsed); err != nil {
		t.Fatal(err)
	}
	st := New(0)
	added, err := st.LoadStream(strings.NewReader(doc), StreamOptions{Syntax: rdf.SyntaxTurtle, Workers: 4, ChunkBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if added != serial.Len() {
		t.Fatalf("added %d, want %d", added, serial.Len())
	}
	if !bytes.Equal(snapshotBytes(t, st), snapshotBytes(t, serial)) {
		t.Fatal("turtle stream load diverges from serial load")
	}
}

// TestLoadStreamErrorLeavesStoreUntouched: unlike Load's keep-the-prefix
// semantics, LoadStream is all-or-nothing — and it must not leak half a
// batch into the dictionary either.
func TestLoadStreamErrorLeavesStoreUntouched(t *testing.T) {
	st := New(0)
	if _, err := st.Load(ingestCorpus(5)); err != nil {
		t.Fatal(err)
	}
	lenBefore, dictBefore, genBefore := st.Len(), st.Dict().Len(), st.Generation()

	doc := rdf.FormatNTriples(ingestCorpus(80)) + "this is not a triple\n"
	if _, err := st.LoadStream(strings.NewReader(doc), StreamOptions{Workers: 4, ChunkBytes: 128}); err == nil {
		t.Fatal("want parse error")
	}
	if st.Len() != lenBefore || st.Dict().Len() != dictBefore || st.Generation() != genBefore {
		t.Fatalf("failed stream load mutated the store: len %d->%d dict %d->%d gen %d->%d",
			lenBefore, st.Len(), dictBefore, st.Dict().Len(), genBefore, st.Generation())
	}
}

// TestLoadStreamIntoPopulatedStore: existing terms keep their IDs and
// existing triples deduplicate, exactly like Load.
func TestLoadStreamIntoPopulatedStore(t *testing.T) {
	all := ingestCorpus(120)
	half := all[:len(all)/2]

	serial := New(0)
	if _, err := serial.Load(half); err != nil {
		t.Fatal(err)
	}
	if _, err := serial.Load(all); err != nil {
		t.Fatal(err)
	}

	st := New(0)
	if _, err := st.Load(half); err != nil {
		t.Fatal(err)
	}
	added, err := st.LoadStream(strings.NewReader(rdf.FormatNTriples(all)), StreamOptions{Workers: 4, ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if want := serial.Len() - len(half); added != want {
		t.Fatalf("added %d, want %d", added, want)
	}
	if !bytes.Equal(snapshotBytes(t, st), snapshotBytes(t, serial)) {
		t.Fatal("incremental stream load diverges from serial load")
	}
}

func TestLoadStreamEmptyInput(t *testing.T) {
	st := New(0)
	added, err := st.LoadStream(strings.NewReader(""), StreamOptions{})
	if err != nil || added != 0 {
		t.Fatalf("empty input: added=%d err=%v", added, err)
	}
	added, err = st.LoadStream(strings.NewReader("# only a comment\n\n"), StreamOptions{})
	if err != nil || added != 0 {
		t.Fatalf("comment-only input: added=%d err=%v", added, err)
	}
}
