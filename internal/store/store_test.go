package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"elinda/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func mkTriple(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

func TestAddAndContains(t *testing.T) {
	st := New(4)
	added, err := st.Add(mkTriple("s", "p", "o"))
	if err != nil || !added {
		t.Fatalf("Add = (%v, %v)", added, err)
	}
	added, err = st.Add(mkTriple("s", "p", "o"))
	if err != nil || added {
		t.Fatalf("duplicate Add = (%v, %v)", added, err)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
	if !st.ContainsTriple(mkTriple("s", "p", "o")) {
		t.Error("ContainsTriple should find added triple")
	}
	if st.ContainsTriple(mkTriple("s", "p", "other")) {
		t.Error("ContainsTriple found absent triple")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	st := New(1)
	bad := rdf.Triple{S: rdf.NewLiteral("x"), P: iri("p"), O: iri("o")}
	if _, err := st.Add(bad); err == nil {
		t.Error("invalid triple accepted")
	}
	if _, err := st.Load([]rdf.Triple{mkTriple("a", "p", "b"), bad}); err == nil {
		t.Error("Load should fail on invalid triple")
	}
}

func TestGenerationAdvances(t *testing.T) {
	st := New(2)
	g0 := st.Generation()
	st.Add(mkTriple("s", "p", "o"))
	g1 := st.Generation()
	if g1 <= g0 {
		t.Errorf("generation did not advance: %d -> %d", g0, g1)
	}
	st.Add(mkTriple("s", "p", "o")) // duplicate: no change
	if st.Generation() != g1 {
		t.Error("duplicate add must not advance generation")
	}
}

func TestMatchAllPatterns(t *testing.T) {
	st := New(16)
	data := []rdf.Triple{
		mkTriple("s1", "p1", "o1"),
		mkTriple("s1", "p1", "o2"),
		mkTriple("s1", "p2", "o1"),
		mkTriple("s2", "p1", "o1"),
		mkTriple("s2", "p2", "o3"),
	}
	if _, err := st.Load(data); err != nil {
		t.Fatal(err)
	}
	d := st.Dict()
	id := func(s string) rdf.ID {
		v, ok := d.Lookup(iri(s))
		if !ok {
			t.Fatalf("missing %s", s)
		}
		return v
	}
	cases := []struct {
		s, p, o rdf.ID
		want    int
	}{
		{rdf.NoID, rdf.NoID, rdf.NoID, 5},
		{id("s1"), rdf.NoID, rdf.NoID, 3},
		{rdf.NoID, id("p1"), rdf.NoID, 3},
		{rdf.NoID, rdf.NoID, id("o1"), 3},
		{id("s1"), id("p1"), rdf.NoID, 2},
		{id("s1"), rdf.NoID, id("o1"), 2},
		{rdf.NoID, id("p1"), id("o1"), 2},
		{id("s2"), id("p2"), id("o3"), 1},
		{id("s2"), id("p2"), id("o1"), 0},
	}
	for i, c := range cases {
		if got := st.CountMatch(c.s, c.p, c.o); got != c.want {
			t.Errorf("case %d: CountMatch = %d, want %d", i, got, c.want)
		}
	}
}

func TestMatchEarlyStop(t *testing.T) {
	st := New(8)
	for i := 0; i < 10; i++ {
		st.Add(mkTriple(fmt.Sprintf("s%d", i), "p", "o"))
	}
	n := 0
	st.Match(rdf.NoID, rdf.NoID, rdf.NoID, func(rdf.EncodedTriple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestScanChunks(t *testing.T) {
	st := New(10)
	for i := 0; i < 10; i++ {
		st.Add(mkTriple(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	var all []rdf.EncodedTriple
	offset := 0
	for {
		var chunk []rdf.EncodedTriple
		n := st.Scan(offset, 3, func(e rdf.EncodedTriple) bool {
			chunk = append(chunk, e)
			return true
		})
		if n == 0 {
			break
		}
		all = append(all, chunk...)
		offset += n
	}
	if len(all) != 10 {
		t.Fatalf("chunked scan visited %d, want 10", len(all))
	}
	// Insertion order must be preserved.
	for i, e := range all {
		want := iri(fmt.Sprintf("s%d", i))
		if st.Dict().Term(e.S) != want {
			t.Errorf("position %d: subject %v, want %v", i, st.Dict().Term(e.S), want)
		}
	}
	if st.Scan(-5, 2, func(rdf.EncodedTriple) bool { return true }) != 2 {
		t.Error("negative offset should clamp to 0")
	}
	if st.Scan(100, 5, func(rdf.EncodedTriple) bool { return true }) != 0 {
		t.Error("offset beyond end should visit nothing")
	}
	if st.Scan(8, 0, func(rdf.EncodedTriple) bool { return true }) != 2 {
		t.Error("limit<=0 should scan to the end")
	}
}

// TestIndexConsistencyProperty: the same random set of triples must be
// reported identically through each access path (full scan, per-subject,
// per-predicate, per-object).
func TestIndexConsistencyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	st := New(256)
	want := map[rdf.Triple]struct{}{}
	for i := 0; i < 1000; i++ {
		tri := mkTriple(
			fmt.Sprintf("s%d", r.Intn(30)),
			fmt.Sprintf("p%d", r.Intn(10)),
			fmt.Sprintf("o%d", r.Intn(50)),
		)
		st.Add(tri)
		want[tri] = struct{}{}
	}
	if st.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(want))
	}

	collect := func(s, p, o rdf.ID) map[rdf.Triple]struct{} {
		got := map[rdf.Triple]struct{}{}
		st.Match(s, p, o, func(e rdf.EncodedTriple) bool {
			got[st.Triple(e)] = struct{}{}
			return true
		})
		return got
	}
	if got := collect(rdf.NoID, rdf.NoID, rdf.NoID); !reflect.DeepEqual(got, want) {
		t.Fatal("full scan disagrees with inserted set")
	}

	// Union over each subject must equal the whole set, same for p and o.
	for pos := 0; pos < 3; pos++ {
		got := map[rdf.Triple]struct{}{}
		seen := map[rdf.ID]struct{}{}
		for tri := range want {
			var key rdf.Term
			switch pos {
			case 0:
				key = tri.S
			case 1:
				key = tri.P
			default:
				key = tri.O
			}
			id, ok := st.Dict().Lookup(key)
			if !ok {
				t.Fatalf("term not interned: %v", key)
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			var part map[rdf.Triple]struct{}
			switch pos {
			case 0:
				part = collect(id, rdf.NoID, rdf.NoID)
			case 1:
				part = collect(rdf.NoID, id, rdf.NoID)
			default:
				part = collect(rdf.NoID, rdf.NoID, id)
			}
			for k := range part {
				got[k] = struct{}{}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("index position %d union disagrees: got %d, want %d", pos, len(got), len(want))
		}
	}
}

func TestObjectsSubjectsHelpers(t *testing.T) {
	st := New(8)
	st.Load([]rdf.Triple{
		mkTriple("s1", "p", "o1"),
		mkTriple("s1", "p", "o2"),
		mkTriple("s2", "p", "o1"),
		mkTriple("s1", "q", "o3"),
	})
	d := st.Dict()
	s1, _ := d.Lookup(iri("s1"))
	p, _ := d.Lookup(iri("p"))
	o1, _ := d.Lookup(iri("o1"))
	if got := st.Objects(s1, p); len(got) != 2 {
		t.Errorf("Objects = %d, want 2", len(got))
	}
	if got := st.Subjects(p, o1); len(got) != 2 {
		t.Errorf("Subjects = %d, want 2", len(got))
	}
	if got := st.Objects(o1, p); got != nil {
		t.Errorf("Objects of non-subject should be nil, got %v", got)
	}
	preds := st.PredicatesOf(s1)
	if len(preds) != 2 {
		t.Errorf("PredicatesOf = %d, want 2", len(preds))
	}
	into := st.PredicatesInto(o1)
	if len(into) != 1 {
		t.Errorf("PredicatesInto = %d, want 1", len(into))
	}
}

func TestSubjectsOfType(t *testing.T) {
	st := New(8)
	person := iri("Person")
	st.Add(rdf.Triple{S: iri("alice"), P: rdf.TypeIRI, O: person})
	st.Add(rdf.Triple{S: iri("bob"), P: rdf.TypeIRI, O: person})
	st.Add(rdf.Triple{S: iri("rex"), P: rdf.TypeIRI, O: iri("Dog")})
	pid, _ := st.Dict().Lookup(person)
	got := st.SubjectsOfType(pid)
	if len(got) != 2 {
		t.Errorf("SubjectsOfType = %d, want 2", len(got))
	}
}

func TestLabelFallsBackToLocalName(t *testing.T) {
	st := New(4)
	st.Add(rdf.Triple{S: iri("Philosopher"), P: rdf.LabelIRI, O: rdf.NewLiteral("Philosopher (label)")})
	st.Add(rdf.Triple{S: iri("Unlabeled"), P: iri("p"), O: iri("o")})
	d := st.Dict()
	lab, _ := d.Lookup(iri("Philosopher"))
	if got := st.Label(lab); got != "Philosopher (label)" {
		t.Errorf("Label = %q", got)
	}
	unl, _ := d.Lookup(iri("Unlabeled"))
	if got := st.Label(unl); got != "Unlabeled" {
		t.Errorf("fallback Label = %q", got)
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	st := New(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.CountMatch(rdf.NoID, rdf.NoID, rdf.NoID)
				st.ComputeStats()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		st.Add(mkTriple(fmt.Sprintf("s%d", i), "p", "o"))
	}
	close(stop)
	wg.Wait()
	if st.Len() != 500 {
		t.Errorf("Len = %d, want 500", st.Len())
	}
}

func TestComputeStats(t *testing.T) {
	st := New(16)
	st.Load([]rdf.Triple{
		{S: iri("Person"), P: rdf.TypeIRI, O: rdf.OWLClassIRI},
		{S: iri("Dog"), P: rdf.TypeIRI, O: rdf.RDFSClassIRI},
		{S: iri("Person"), P: rdf.SubClassOfIRI, O: rdf.OWLThingIRI},
		{S: iri("alice"), P: rdf.TypeIRI, O: iri("Person")},
		{S: iri("alice"), P: iri("name"), O: rdf.NewLiteral("Alice")},
		{S: iri("rex"), P: rdf.TypeIRI, O: iri("Dog")},
	})
	stats := st.ComputeStats()
	if stats.Triples != 6 {
		t.Errorf("Triples = %d", stats.Triples)
	}
	if stats.DeclaredClasses != 2 {
		t.Errorf("DeclaredClasses = %d, want 2 (Person, Dog)", stats.DeclaredClasses)
	}
	// Classes: Person, Dog, owl:Class, rdfs:Class, owl:Thing.
	if stats.Classes != 5 {
		t.Errorf("Classes = %d, want 5", stats.Classes)
	}
	if stats.TypedSubjects != 4 {
		t.Errorf("TypedSubjects = %d, want 4 (Person, Dog, alice, rex)", stats.TypedSubjects)
	}
	if stats.Literals != 1 {
		t.Errorf("Literals = %d", stats.Literals)
	}
}

func TestDeclaredClassListAndSearch(t *testing.T) {
	st := New(16)
	st.Load([]rdf.Triple{
		{S: iri("Philosopher"), P: rdf.TypeIRI, O: rdf.OWLClassIRI},
		{S: iri("Politician"), P: rdf.TypeIRI, O: rdf.OWLClassIRI},
		{S: iri("Place"), P: rdf.TypeIRI, O: rdf.RDFSClassIRI},
	})
	all := st.DeclaredClassList()
	if len(all) != 3 {
		t.Fatalf("DeclaredClassList = %d, want 3", len(all))
	}
	labels := make([]string, len(all))
	for i, id := range all {
		labels[i] = st.Label(id)
	}
	if !sort.StringsAreSorted(labels) {
		t.Errorf("class list not sorted by label: %v", labels)
	}
	hits := st.SearchClasses("phil")
	if len(hits) != 1 || st.Label(hits[0]) != "Philosopher" {
		t.Errorf("SearchClasses(phil) = %v", hits)
	}
	if got := st.SearchClasses(""); len(got) != 3 {
		t.Errorf("empty query should return all, got %d", len(got))
	}
	if got := st.SearchClasses("zzz"); len(got) != 0 {
		t.Errorf("no-hit query returned %d", len(got))
	}
}

func TestContainsFold(t *testing.T) {
	cases := []struct {
		s, sub string
		want   bool
	}{
		{"Philosopher", "phil", true},
		{"Philosopher", "PHER", true},
		{"Philosopher", "xyz", false},
		{"abc", "", true},
		{"ab", "abc", false},
	}
	for _, c := range cases {
		if got := containsFold(c.s, c.sub); got != c.want {
			t.Errorf("containsFold(%q,%q) = %v", c.s, c.sub, got)
		}
	}
}

// randomStoreForCard loads a random dataset with deliberately shuffled
// insertion order, so sorted-posting maintenance is exercised on the
// out-of-order insert path too.
func randomStoreForCard(r *rand.Rand) *Store {
	st := New(64)
	n := 40 + r.Intn(60)
	for i := 0; i < n; i++ {
		st.Add(mkTriple(
			fmt.Sprintf("s%d", r.Intn(9)),
			fmt.Sprintf("p%d", r.Intn(4)),
			fmt.Sprintf("o%d", r.Intn(9))))
	}
	return st
}

// TestCardMatchAgreesWithCountMatch checks the O(1) index-size
// cardinalities against the triple-walking count for every pattern shape.
func TestCardMatchAgreesWithCountMatch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		st := randomStoreForCard(r)
		pick := func(pool string, n int) rdf.ID {
			if r.Intn(3) == 0 {
				return rdf.NoID
			}
			id, ok := st.Dict().Lookup(iri(fmt.Sprintf("%s%d", pool, r.Intn(n))))
			if !ok {
				return rdf.NoID
			}
			return id
		}
		for probe := 0; probe < 40; probe++ {
			s, p, o := pick("s", 9), pick("p", 4), pick("o", 9)
			want := st.CountMatch(s, p, o)
			if got := st.CardMatch(s, p, o); got != want {
				t.Fatalf("CardMatch(%d,%d,%d) = %d, CountMatch = %d", s, p, o, got, want)
			}
		}
	}
}

// TestPostingsSorted checks that every single-wildcard pattern yields its
// matches as a sorted ID list, and that other shapes report ok=false.
func TestPostingsSorted(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	st := randomStoreForCard(r)
	id := func(pool string, i int) rdf.ID {
		v, _ := st.Dict().Lookup(iri(fmt.Sprintf("%s%d", pool, i)))
		return v
	}
	checked := 0
	for si := 0; si < 9; si++ {
		for pi := 0; pi < 4; pi++ {
			for _, pat := range [][3]rdf.ID{
				{id("s", si), id("p", pi), rdf.NoID},
				{rdf.NoID, id("p", pi), id("o", si)},
				{id("s", si), rdf.NoID, id("o", si)},
			} {
				got, ok := st.Postings(pat[0], pat[1], pat[2])
				if !ok {
					t.Fatalf("Postings(%v) not ok", pat)
				}
				if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
					t.Fatalf("Postings(%v) not sorted: %v", pat, got)
				}
				var want []rdf.ID
				st.Match(pat[0], pat[1], pat[2], func(e rdf.EncodedTriple) bool {
					switch {
					case pat[2] == rdf.NoID:
						want = append(want, e.O)
					case pat[0] == rdf.NoID:
						want = append(want, e.S)
					default:
						want = append(want, e.P)
					}
					return true
				})
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("Postings(%v) = %v, want %v", pat, got, want)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no patterns checked")
	}
	for _, pat := range [][3]rdf.ID{
		{rdf.NoID, rdf.NoID, rdf.NoID},
		{id("s", 0), rdf.NoID, rdf.NoID},
		{id("s", 0), id("p", 0), id("o", 0)},
	} {
		if _, ok := st.Postings(pat[0], pat[1], pat[2]); ok {
			t.Errorf("Postings(%v) should not be ok", pat)
		}
	}
}

// TestContainsIDAndSortedDedup checks ContainsID and that duplicate
// detection survives without the old seen-map, including out-of-order
// inserts that shift posting lists.
func TestContainsIDAndSortedDedup(t *testing.T) {
	st := New(4)
	// Insert objects in descending dictionary order to force shifts.
	st.Add(mkTriple("s", "p", "z"))
	st.Add(mkTriple("s", "p", "a"))
	st.Add(mkTriple("s", "p", "m"))
	for _, o := range []string{"z", "a", "m"} {
		if added, _ := st.Add(mkTriple("s", "p", o)); added {
			t.Errorf("duplicate (s,p,%s) re-added", o)
		}
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	sid, _ := st.Dict().Lookup(iri("s"))
	pid, _ := st.Dict().Lookup(iri("p"))
	for _, o := range []string{"z", "a", "m"} {
		oid, _ := st.Dict().Lookup(iri(o))
		if !st.ContainsID(sid, pid, oid) {
			t.Errorf("ContainsID(s,p,%s) = false", o)
		}
	}
	if st.ContainsID(sid, pid, sid) {
		t.Error("ContainsID found absent triple")
	}
	objs := st.Objects(sid, pid)
	if !sort.SliceIsSorted(objs, func(i, j int) bool { return objs[i] < objs[j] }) {
		t.Errorf("Objects not sorted after out-of-order inserts: %v", objs)
	}
}
