package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elinda/internal/rdf"
)

// buildPersistStore assembles a store whose snapshot has both a columnar
// base and a live overlay (sorted delta + recent tail), so WriteSnapshot
// exercises the compaction fold.
func buildPersistStore(t *testing.T) *Store {
	t.Helper()
	st := New(0)
	ts := ingestCorpus(200)
	if _, err := st.Load(ts[:150]); err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts[150:] {
		if _, err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// storeTriples decodes every triple in insertion order.
func storeTriples(st *Store) []rdf.Triple {
	var out []rdf.Triple
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		out = append(out, st.Triple(e))
		return true
	})
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := buildPersistStore(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.snap")
	if err := st.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Len() != st.Len() {
		t.Fatalf("len %d, want %d", loaded.Len(), st.Len())
	}
	if loaded.Generation() != st.Generation() {
		t.Fatalf("generation %d, want %d", loaded.Generation(), st.Generation())
	}
	if loaded.Dict().Len() != st.Dict().Len() {
		t.Fatalf("dict len %d, want %d", loaded.Dict().Len(), st.Dict().Len())
	}
	want := storeTriples(st)
	got := storeTriples(loaded)
	if len(got) != len(want) {
		t.Fatalf("scan found %d triples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("triple %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Index-backed reads behave identically.
	snapA, snapB := st.Snapshot(), loaded.Snapshot()
	for _, tr := range want[:50] {
		s, _ := st.Dict().Lookup(tr.S)
		p, _ := st.Dict().Lookup(tr.P)
		ls, _ := loaded.Dict().Lookup(tr.S)
		lp, _ := loaded.Dict().Lookup(tr.P)
		if s != ls || p != lp {
			t.Fatalf("dictionary IDs diverge for %v", tr)
		}
		a := snapA.Objects(s, p)
		b := snapB.Objects(ls, lp)
		if len(a) != len(b) {
			t.Fatalf("postings diverge for %v", tr)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("postings diverge for %v", tr)
			}
		}
	}
	if snapB.CardMatch(rdf.NoID, loaded.TypeID(), rdf.NoID) != snapA.CardMatch(rdf.NoID, st.TypeID(), rdf.NoID) {
		t.Fatal("type cardinality diverges")
	}

	// The loaded store stays fully writable.
	added, err := loaded.Add(rdf.Triple{S: rdf.NewIRI("http://x/new"), P: rdf.NewIRI("http://x/p0"), O: rdf.NewIRI("http://x/e1")})
	if err != nil || !added {
		t.Fatalf("post-load Add = (%v, %v)", added, err)
	}
	if loaded.Generation() != st.Generation()+1 {
		t.Fatal("generation did not advance after post-load Add")
	}

	// Saving the loaded store reproduces the file byte for byte.
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), onDisk) {
		t.Fatal("WriteSnapshot is not deterministic across save/load")
	}
}

// validSnapshot returns the serialized bytes of a small store.
func validSnapshot(t *testing.T) []byte {
	t.Helper()
	st := New(0)
	if _, err := st.Load(ingestCorpus(40)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotCorruptionFailsLoudly flips single bytes across the file —
// header, dictionary, log, indexes, checksum — and every mutation must be
// rejected (the CRC covers the whole payload, so no flip can slip
// through as a silently wrong store).
func TestSnapshotCorruptionFailsLoudly(t *testing.T) {
	data := validSnapshot(t)
	// A sample of offsets spanning every section, plus the crc trailer.
	offsets := []int{8, 16, 21, 25, 40, len(data) / 3, len(data) / 2, 2 * len(data) / 3, len(data) - 5, len(data) - 1}
	for _, off := range offsets {
		if off < 0 || off >= len(data) {
			continue
		}
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x5a
		if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("byte flip at offset %d loaded successfully", off)
		}
	}
}

func TestSnapshotTruncationFailsLoudly(t *testing.T) {
	data := validSnapshot(t)
	for _, keep := range []int{0, 4, 7, 8, 20, 33, len(data) / 4, len(data) / 2, len(data) - 4, len(data) - 1} {
		if keep >= len(data) {
			continue
		}
		if _, err := ReadSnapshot(bytes.NewReader(data[:keep])); err == nil {
			t.Errorf("truncation to %d bytes loaded successfully", keep)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), data...), 0))); err == nil {
		t.Error("snapshot with trailing garbage loaded successfully")
	}
}

func TestSnapshotWrongVersionFailsLoudly(t *testing.T) {
	data := validSnapshot(t)
	bumped := append([]byte(nil), data...)
	bumped[7]++ // version byte
	_, err := ReadSnapshot(bytes.NewReader(bumped))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
	_, err = ReadSnapshot(strings.NewReader("definitely not a snapshot file"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
}

func TestSaveSnapshotIsAtomic(t *testing.T) {
	st := New(0)
	if _, err := st.Load(ingestCorpus(10)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.snap")
	if err := st.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second save; no temp files may remain.
	if _, err := st.Add(rdf.Triple{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://x/b"), O: rdf.NewIRI("http://x/c")}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "kb.snap" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
	loaded, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != st.Len() {
		t.Fatalf("reloaded len %d, want %d", loaded.Len(), st.Len())
	}
}
