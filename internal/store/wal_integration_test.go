package store_test

import (
	"fmt"
	"strings"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
	"elinda/internal/vfs"
	"elinda/internal/wal"
)

func walTriple(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i)),
		P: rdf.NewIRI("http://ex/p"),
		O: rdf.NewLiteral(fmt.Sprintf("v%d", i)),
	}
}

func recoverStore(t *testing.T, m *vfs.Mem, snapPath, walDir string) *store.Store {
	t.Helper()
	var st *store.Store
	if _, err := m.Size(snapPath); err == nil {
		st, err = store.OpenSnapshotFS(m, snapPath)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		st = store.New(0)
	}
	w, err := wal.Open(walDir, wal.Options{FS: m})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Replay(func(tr rdf.Triple) error {
		_, err := st.Add(tr)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAttachedWALSurvivesCrash: acknowledged Adds on a WAL-attached store
// survive a crash with no snapshot ever taken.
func TestAttachedWALSurvivesCrash(t *testing.T) {
	m := vfs.NewMem()
	w, err := wal.Open("data", wal.Options{FS: m, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(0)
	st.AttachWAL(w)
	for i := 0; i < 10; i++ {
		if ok, err := st.Add(walTriple(i)); err != nil || !ok {
			t.Fatalf("add %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Duplicate adds are not re-logged.
	if ok, err := st.Add(walTriple(3)); err != nil || ok {
		t.Fatalf("duplicate add: ok=%v err=%v", ok, err)
	}

	rec := recoverStore(t, m.Crashed(), "data/kb.snap", "data")
	if rec.Len() != 10 {
		t.Fatalf("recovered %d of 10 triples", rec.Len())
	}
	for i := 0; i < 10; i++ {
		if !rec.ContainsTriple(walTriple(i)) {
			t.Fatalf("triple %d missing after recovery", i)
		}
	}
}

// TestLoadGoesThroughWAL: bulk loads are durable before acknowledgement
// too.
func TestLoadGoesThroughWAL(t *testing.T) {
	m := vfs.NewMem()
	w, err := wal.Open("data", wal.Options{FS: m, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(0)
	st.AttachWAL(w)
	ts := make([]rdf.Triple, 50)
	for i := range ts {
		ts[i] = walTriple(i)
	}
	if n, err := st.Load(ts); err != nil || n != 50 {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	rec := recoverStore(t, m.Crashed(), "data/kb.snap", "data")
	if rec.Len() != 50 {
		t.Fatalf("recovered %d of 50 bulk-loaded triples", rec.Len())
	}
}

// TestSaveSnapshotCheckpointsWAL: a snapshot save truncates the segments
// it covers, and snapshot + remaining log still recover everything.
func TestSaveSnapshotCheckpointsWAL(t *testing.T) {
	m := vfs.NewMem()
	w, err := wal.Open("data", wal.Options{FS: m, Policy: wal.SyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(0)
	st.AttachWAL(w)
	for i := 0; i < 20; i++ {
		if _, err := st.Add(walTriple(i)); err != nil {
			t.Fatal(err)
		}
	}
	preSave, err := m.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshotFS(m, "data/kb.snap"); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 25; i++ {
		if _, err := st.Add(walTriple(i)); err != nil {
			t.Fatal(err)
		}
	}
	postSave, err := m.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	if len(postSave) >= len(preSave)+1 {
		t.Fatalf("snapshot did not truncate the WAL: %d entries before, %v after", len(preSave), postSave)
	}
	for _, name := range postSave {
		if strings.HasSuffix(name, vfs.TempSuffix) {
			t.Fatalf("save left a temp file behind: %v", postSave)
		}
	}

	rec := recoverStore(t, m.Crashed(), "data/kb.snap", "data")
	if rec.Len() != 25 {
		t.Fatalf("snapshot+WAL recovery found %d of 25 triples", rec.Len())
	}
	if rec.Generation() != 25 {
		t.Fatalf("recovered generation %d, want 25", rec.Generation())
	}
}

// TestWALAppendFailureRejectsWrite: when the log cannot accept a record
// the Add fails, nothing becomes visible, and the store keeps serving.
func TestWALAppendFailureRejectsWrite(t *testing.T) {
	m := vfs.NewMem()
	w, err := wal.Open("data", wal.Options{FS: m, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(0)
	st.AttachWAL(w)
	if _, err := st.Add(walTriple(0)); err != nil {
		t.Fatal(err)
	}
	gen := st.Generation()
	m.InjectFault(m.Ops(), vfs.FaultError)
	if ok, err := st.Add(walTriple(1)); err == nil {
		t.Fatalf("add during injected fault: ok=%v err=nil", ok)
	}
	if st.Len() != 1 || st.Generation() != gen {
		t.Fatalf("rejected write leaked into the store: len=%d gen=%d", st.Len(), st.Generation())
	}
	if st.ContainsTriple(walTriple(1)) {
		t.Fatal("rejected triple is visible")
	}
	// The store recovers on the next write.
	if ok, err := st.Add(walTriple(2)); err != nil || !ok {
		t.Fatalf("add after transient fault: ok=%v err=%v", ok, err)
	}
}
