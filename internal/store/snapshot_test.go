package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"elinda/internal/rdf"
)

// collectMatch gathers a pattern's matches from any reader into a set.
type reader interface {
	Match(s, p, o rdf.ID, fn func(rdf.EncodedTriple) bool)
	CardMatch(s, p, o rdf.ID) int
	Postings(s, p, o rdf.ID) ([]rdf.ID, bool)
	PredicatesOf(sub rdf.ID) []rdf.ID
	PredicatesInto(obj rdf.ID) []rdf.ID
}

func matchSet(r reader, s, p, o rdf.ID) map[rdf.EncodedTriple]struct{} {
	got := map[rdf.EncodedTriple]struct{}{}
	r.Match(s, p, o, func(e rdf.EncodedTriple) bool {
		got[e] = struct{}{}
		return true
	})
	return got
}

// TestSnapshotAgreesWithLiveStore is the store-level differential
// property: for random datasets built through a mix of Load batches and
// individual Adds (so both the bulk sort-once path and the sorted delta
// overlay are exercised), every read — Match, CardMatch, Postings,
// PredicatesOf, PredicatesInto — must agree between the live store and
// its published snapshot, for every pattern shape.
func TestSnapshotAgreesWithLiveStore(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		st := New(64)
		mk := func() rdf.Triple {
			return mkTriple(
				fmt.Sprintf("s%d", r.Intn(10)),
				fmt.Sprintf("p%d", r.Intn(5)),
				fmt.Sprintf("o%d", r.Intn(10)))
		}
		// A bulk batch first, then individual adds that stay in the delta.
		var batch []rdf.Triple
		for i := 0; i < 60+r.Intn(60); i++ {
			batch = append(batch, mk())
		}
		if _, err := st.Load(batch); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < r.Intn(40); i++ {
			st.Add(mk())
		}

		// The live store must agree with the snapshot it publishes for
		// every probe, whether a triple lives in the columnar base, the
		// sorted delta, or the recent-adds tail.
		type probe struct{ s, p, o rdf.ID }
		var probes []probe
		id := func(pool string, n int) rdf.ID {
			if r.Intn(4) == 0 {
				return rdf.NoID
			}
			v, _ := st.Dict().Lookup(iri(fmt.Sprintf("%s%d", pool, r.Intn(n))))
			return v
		}
		for i := 0; i < 60; i++ {
			probes = append(probes, probe{id("s", 10), id("p", 5), id("o", 10)})
		}

		before := make([]map[rdf.EncodedTriple]struct{}, len(probes))
		cards := make([]int, len(probes))
		for i, pr := range probes {
			before[i] = matchSet(st, pr.s, pr.p, pr.o)
			cards[i] = st.CardMatch(pr.s, pr.p, pr.o)
		}

		snap := st.Snapshot()
		for i, pr := range probes {
			if got := matchSet(snap, pr.s, pr.p, pr.o); !reflect.DeepEqual(got, before[i]) {
				t.Fatalf("trial %d: snapshot Match(%v) diverges from live store", trial, pr)
			}
			if got := snap.CardMatch(pr.s, pr.p, pr.o); got != cards[i] {
				t.Fatalf("trial %d: snapshot CardMatch(%v) = %d, live = %d", trial, pr, got, cards[i])
			}
			if got := matchSet(st, pr.s, pr.p, pr.o); !reflect.DeepEqual(got, before[i]) {
				t.Fatalf("trial %d: live store answers changed between reads", trial)
			}
			if len(before[i]) != cards[i] {
				t.Fatalf("trial %d: CardMatch(%v) = %d but %d matches", trial, pr, cards[i], len(before[i]))
			}
			liveP, okL := st.Postings(pr.s, pr.p, pr.o)
			snapP, okS := snap.Postings(pr.s, pr.p, pr.o)
			if okL != okS || !reflect.DeepEqual(append([]rdf.ID{}, liveP...), append([]rdf.ID{}, snapP...)) {
				t.Fatalf("trial %d: Postings(%v) diverge: live=%v snap=%v", trial, pr, liveP, snapP)
			}
		}
		for i := 0; i < 10; i++ {
			sid, _ := st.Dict().Lookup(iri(fmt.Sprintf("s%d", r.Intn(10))))
			oid, _ := st.Dict().Lookup(iri(fmt.Sprintf("o%d", r.Intn(10))))
			if !reflect.DeepEqual(st.PredicatesOf(sid), snap.PredicatesOf(sid)) {
				t.Fatalf("trial %d: PredicatesOf diverge", trial)
			}
			if !reflect.DeepEqual(st.PredicatesInto(oid), snap.PredicatesInto(oid)) {
				t.Fatalf("trial %d: PredicatesInto diverge", trial)
			}
		}
	}
}

// TestSnapshotImmutableUnderWrites pins the publication protocol: a
// snapshot's contents are frozen at its generation; later writes are
// visible in the live store and in later snapshots only.
func TestSnapshotImmutableUnderWrites(t *testing.T) {
	st := New(16)
	st.Load([]rdf.Triple{mkTriple("a", "p", "x"), mkTriple("b", "p", "x")})
	snap := st.Snapshot()
	if snap.Len() != 2 || snap.Generation() != st.Generation() {
		t.Fatalf("snapshot len=%d gen=%d, store gen=%d", snap.Len(), snap.Generation(), st.Generation())
	}
	pid, _ := st.Dict().Lookup(iri("p"))
	xid, _ := st.Dict().Lookup(iri("x"))
	subsBefore := snap.Subjects(pid, xid)
	if len(subsBefore) != 2 {
		t.Fatalf("Subjects = %d, want 2", len(subsBefore))
	}

	st.Add(mkTriple("c", "p", "x"))
	if snap.Len() != 2 {
		t.Error("published snapshot grew after Add")
	}
	if got := snap.Subjects(pid, xid); len(got) != 2 {
		t.Errorf("snapshot Subjects changed after Add: %v", got)
	}
	if got := st.Subjects(pid, xid); len(got) != 3 {
		t.Errorf("live Subjects = %d, want 3", len(got))
	}
	snap2 := st.Snapshot()
	if snap2.Len() != 3 || snap2.Generation() <= snap.Generation() {
		t.Errorf("new snapshot len=%d gen=%d (old gen %d)", snap2.Len(), snap2.Generation(), snap.Generation())
	}
	// Unchanged store: Snapshot() returns the same publication.
	if st.Snapshot() != snap2 {
		t.Error("Snapshot() should return the same snapshot when nothing changed")
	}
}

// TestScanCallbackMayWrite pins the re-entrancy contract: Scan (and
// Match) hold no lock, so their callbacks may call store write methods —
// this used to deadlock when reads held the store RWMutex. Writes made
// mid-scan are not visible to the in-flight iteration.
func TestScanCallbackMayWrite(t *testing.T) {
	st := New(16)
	for i := 0; i < 5; i++ {
		st.Add(mkTriple(fmt.Sprintf("s%d", i), "p", "o"))
	}
	visited := 0
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		visited++
		if _, err := st.Add(mkTriple(fmt.Sprintf("mid%d", visited), "p", "o")); err != nil {
			t.Errorf("re-entrant Add failed: %v", err)
		}
		return true
	})
	if visited != 5 {
		t.Errorf("scan visited %d, want 5 (mid-scan writes must not be visible)", visited)
	}
	if st.Len() != 10 {
		t.Errorf("Len = %d, want 10", st.Len())
	}
	// Same for Match.
	n := 0
	st.Match(rdf.NoID, rdf.NoID, rdf.NoID, func(e rdf.EncodedTriple) bool {
		n++
		st.Add(mkTriple("match-reentry", fmt.Sprintf("q%d", n), "o"))
		return n < 3
	})
	if n != 3 {
		t.Errorf("match visited %d, want 3", n)
	}
}

// TestPredicatesIntoSortedDeduped pins the satellite fix: the result is
// sorted, duplicate-free, and identical across calls.
func TestPredicatesIntoSortedDeduped(t *testing.T) {
	st := New(16)
	st.Load([]rdf.Triple{
		mkTriple("s1", "p2", "o"),
		mkTriple("s2", "p1", "o"),
		mkTriple("s3", "p2", "o"),
		mkTriple("s4", "p1", "o"),
		mkTriple("s5", "p3", "o"),
	})
	oid, _ := st.Dict().Lookup(iri("o"))
	got := st.PredicatesInto(oid)
	if len(got) != 3 {
		t.Fatalf("PredicatesInto = %v, want 3 distinct predicates", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("PredicatesInto not sorted: %v", got)
	}
	if again := st.PredicatesInto(oid); !reflect.DeepEqual(got, again) {
		t.Errorf("PredicatesInto not deterministic: %v vs %v", got, again)
	}
	// Delta path: an Add introducing a new predicate keeps the contract.
	st.Add(mkTriple("s6", "a1", "o"))
	got = st.PredicatesInto(oid)
	if len(got) != 4 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("PredicatesInto after delta Add: %v", got)
	}
}

// TestDeltaCompaction crosses the automatic compaction threshold through
// individual Adds and verifies reads stay correct on both sides of it.
func TestDeltaCompaction(t *testing.T) {
	st := New(16)
	n := minDeltaCompact*2 + 100
	for i := 0; i < n; i++ {
		added, err := st.Add(mkTriple(fmt.Sprintf("s%d", i%50), fmt.Sprintf("p%d", i%7), fmt.Sprintf("o%d", i)))
		if err != nil || !added {
			t.Fatalf("add %d = (%v, %v)", i, added, err)
		}
	}
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
	sid, _ := st.Dict().Lookup(iri("s7"))
	want := 0
	for i := 0; i < n; i++ {
		if i%50 == 7 {
			want++
		}
	}
	if got := st.CardMatch(sid, rdf.NoID, rdf.NoID); got != want {
		t.Errorf("CardMatch(s7,?,?) = %d, want %d", got, want)
	}
	// Every triple is findable after compactions.
	for i := 0; i < n; i += 97 {
		if !st.ContainsTriple(mkTriple(fmt.Sprintf("s%d", i%50), fmt.Sprintf("p%d", i%7), fmt.Sprintf("o%d", i))) {
			t.Fatalf("triple %d lost across compaction", i)
		}
	}
	// The log preserves insertion order across compactions.
	i := 0
	st.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		if st.Dict().Term(e.O) != iri(fmt.Sprintf("o%d", i)) {
			t.Fatalf("log position %d holds %v", i, st.Dict().Term(e.O))
		}
		i++
		return true
	})
}

// TestSnapshotConcurrentWithWrites races snapshot publication and
// lock-free reads against a stream of Add and Load calls; run under
// -race (make check) it doubles as the snapshot race test.
func TestSnapshotConcurrentWithWrites(t *testing.T) {
	st := New(256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Snapshot()
				// Reads on the frozen snapshot must be self-consistent:
				// the log length, index size, and full-scan count agree.
				n := 0
				snap.Match(rdf.NoID, rdf.NoID, rdf.NoID, func(rdf.EncodedTriple) bool { n++; return true })
				if n != snap.Len() || snap.CardMatch(rdf.NoID, rdf.NoID, rdf.NoID) != n {
					t.Errorf("snapshot inconsistent: scan=%d len=%d", n, snap.Len())
					return
				}
				// And live-store reads must never fail mid-write.
				st.CardMatch(rdf.NoID, rdf.NoID, rdf.NoID)
				st.Scan(0, 64, func(rdf.EncodedTriple) bool { return true })
			}
		}(g)
	}
	for i := 0; i < 300; i++ {
		if i%10 == 0 {
			var batch []rdf.Triple
			for j := 0; j < 20; j++ {
				batch = append(batch, mkTriple(fmt.Sprintf("b%d-%d", i, j), "p", "o"))
			}
			if _, err := st.Load(batch); err != nil {
				t.Fatal(err)
			}
		} else {
			st.Add(mkTriple(fmt.Sprintf("s%d", i), fmt.Sprintf("p%d", i%5), fmt.Sprintf("o%d", i%40)))
		}
	}
	close(stop)
	wg.Wait()
}

// TestLoadBulkEqualsAddLoop: the sort-once bulk build and the per-insert
// delta path must construct identical stores.
func TestLoadBulkEqualsAddLoop(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var ts []rdf.Triple
	for i := 0; i < 3000; i++ {
		ts = append(ts, mkTriple(
			fmt.Sprintf("s%d", r.Intn(40)),
			fmt.Sprintf("p%d", r.Intn(6)),
			fmt.Sprintf("o%d", r.Intn(80))))
	}
	bulk := New(len(ts))
	nBulk, err := bulk.Load(ts)
	if err != nil {
		t.Fatal(err)
	}
	loop := New(len(ts))
	nLoop := 0
	for _, tr := range ts {
		if added, err := loop.Add(tr); err != nil {
			t.Fatal(err)
		} else if added {
			nLoop++
		}
	}
	if nBulk != nLoop || bulk.Len() != loop.Len() {
		t.Fatalf("bulk added %d (len %d), loop added %d (len %d)", nBulk, bulk.Len(), nLoop, loop.Len())
	}
	if bulk.Generation() != loop.Generation() {
		t.Errorf("generations diverge: bulk %d, loop %d", bulk.Generation(), loop.Generation())
	}
	sb, sl := bulk.Snapshot(), loop.Snapshot()
	for i := 0; i < 40; i++ {
		s, _ := bulk.Dict().Lookup(iri(fmt.Sprintf("s%d", i)))
		if got, want := matchSet(sl, s, rdf.NoID, rdf.NoID), matchSet(sb, s, rdf.NoID, rdf.NoID); !reflect.DeepEqual(got, want) {
			t.Fatalf("subject s%d: bulk and add-loop stores diverge", i)
		}
	}
}
