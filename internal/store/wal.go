package store

import (
	"elinda/internal/rdf"
)

// WriteAheadLog is the durability hook the store drives. It is satisfied
// by *wal.WAL; the store depends on the shape only, so the wal package
// can import store in its crash tests without a cycle.
//
// The contract the store relies on: when Append/AppendBatch return nil
// the records are as durable as the log's sync policy promises, and Cut
// returns a boundary such that every record appended before the call is
// in a segment below it.
type WriteAheadLog interface {
	Append(t rdf.Triple) error
	AppendBatch(ts []rdf.Triple) error
	AppendOps(ops []rdf.TripleOp) error
	Cut() (uint64, error)
	TruncateBefore(cut uint64) error
}

// AttachWAL puts the store in write-ahead-logged mode: every Add and
// Load appends to w before the write is applied or acknowledged, and
// SaveSnapshot checkpoints w (cut at the snapshot boundary, truncate
// after durable publication).
//
// Attach after recovery replay and before serving writes: triples
// re-applied from the log during replay must go through Add on a
// detached store, or they would be appended to the log again.
func (s *Store) AttachWAL(w WriteAheadLog) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.wal = w
}
