package store

import (
	"slices"

	"elinda/internal/rdf"
)

// This file computes the snapshot statistics the query planner's cost
// model runs on: per-predicate triple counts, distinct-subject and
// distinct-object counts per predicate, and characteristic sets (Neumann
// & Moerkotte, ICDE 2011) — the distinct predicate combinations subjects
// carry, with occurrence totals. Everything derives from the columnar
// permutation indexes in one linear pass, is computed once when a
// columnar base is built (bulk load, fold, compaction), and is persisted
// in the binary snapshot format so replicas hydrate it for free.
//
// The statistics describe the columnar base only. Overlay triples and
// tombstones ride on top of a base until the next fold; estimates from a
// slightly stale base are fine for ranking join orders (the executor
// always reads exact, tombstone-subtracted postings), and the fold that
// absorbs the overlay rebuilds the statistics from the surviving triples.

// maxCharSets bounds the retained characteristic sets. Real datasets
// concentrate subjects in few sets (YAGO: tens for millions of
// subjects); the cap only trims pathological long tails, and the planner
// scales estimates by the retained coverage.
const maxCharSets = 1024

// PredStat summarizes one predicate: total triples and distinct
// subject/object counts.
type PredStat struct {
	Pred      rdf.ID
	Count     uint32 // triples with this predicate
	DistinctS uint32 // distinct subjects among them
	DistinctO uint32 // distinct objects among them
}

// CharSet is one characteristic set: the exact sorted predicate set some
// subjects share, how many subjects carry it, and the total triple count
// per predicate over those subjects (Occ is parallel to Preds).
type CharSet struct {
	Preds []rdf.ID
	Count uint32
	Occ   []uint32
}

// PlanStats is the planner-facing statistics bundle of one columnar base.
type PlanStats struct {
	Triples  int
	Subjects int // distinct subjects
	Objects  int // distinct objects
	// Preds is sorted by predicate ID ascending.
	Preds []PredStat
	// CharSets is sorted by Count descending (ties broken by predicate
	// sequence) and capped at maxCharSets.
	CharSets []CharSet
	// CharSetSubjects counts the subjects the retained CharSets cover —
	// equal to Subjects unless the cap trimmed a long tail.
	CharSetSubjects int
}

// computePlanStats derives the statistics from the columnar indexes: the
// POS index yields per-predicate counts and distinct objects directly
// from its offsets, and one pass over the SPO index's subject groups
// yields distinct subjects per predicate plus the characteristic sets
// (each subject's predicate span is already sorted and distinct).
func computePlanStats(col *columnar) *PlanStats {
	ps := &PlanStats{
		Triples:  col.n,
		Subjects: len(col.spo.aKeys),
		Objects:  len(col.osp.aKeys),
	}
	pos := &col.pos
	ps.Preds = make([]PredStat, len(pos.aKeys))
	predIdx := make(map[rdf.ID]int, len(pos.aKeys))
	for i, p := range pos.aKeys {
		ps.Preds[i] = PredStat{
			Pred:      p,
			Count:     pos.bOff[pos.aOff[i+1]] - pos.bOff[pos.aOff[i]],
			DistinctO: pos.aOff[i+1] - pos.aOff[i],
		}
		predIdx[p] = i
	}

	type csAcc struct {
		preds []rdf.ID
		count uint32
		occ   []uint32
	}
	spo := &col.spo
	sets := make(map[string]*csAcc)
	var keyBuf []byte
	for ai := range spo.aKeys {
		lo, hi := spo.aOff[ai], spo.aOff[ai+1]
		preds := spo.bKeys[lo:hi]
		keyBuf = keyBuf[:0]
		for _, p := range preds {
			ps.Preds[predIdx[p]].DistinctS++
			keyBuf = append(keyBuf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		acc := sets[string(keyBuf)]
		if acc == nil {
			acc = &csAcc{
				preds: append([]rdf.ID(nil), preds...),
				occ:   make([]uint32, len(preds)),
			}
			sets[string(keyBuf)] = acc
		}
		acc.count++
		for k := range acc.occ {
			j := lo + uint32(k)
			acc.occ[k] += spo.bOff[j+1] - spo.bOff[j]
		}
	}
	all := make([]*csAcc, 0, len(sets))
	for _, acc := range sets {
		all = append(all, acc)
	}
	slices.SortFunc(all, func(a, b *csAcc) int {
		if a.count != b.count {
			if a.count > b.count {
				return -1
			}
			return 1
		}
		if len(a.preds) != len(b.preds) {
			return len(a.preds) - len(b.preds)
		}
		return slices.Compare(a.preds, b.preds)
	})
	if len(all) > maxCharSets {
		all = all[:maxCharSets]
	}
	ps.CharSets = make([]CharSet, len(all))
	for i, acc := range all {
		ps.CharSets[i] = CharSet{Preds: acc.preds, Count: acc.count, Occ: acc.occ}
		ps.CharSetSubjects += int(acc.count)
	}
	return ps
}

// PredStatOf returns the statistics of one predicate (binary search).
func (ps *PlanStats) PredStatOf(p rdf.ID) (PredStat, bool) {
	i, ok := slices.BinarySearchFunc(ps.Preds, p, func(st PredStat, p rdf.ID) int {
		if st.Pred < p {
			return -1
		}
		if st.Pred > p {
			return 1
		}
		return 0
	})
	if !ok {
		return PredStat{}, false
	}
	return ps.Preds[i], true
}

// StarCard estimates how many rows a subject star over the given
// predicate set produces: for every characteristic set containing all of
// them, the covered subjects contribute the product of their mean
// per-predicate fanouts. preds must be sorted ascending and distinct.
// The result is scaled up for subjects the retained sets do not cover.
func (ps *PlanStats) StarCard(preds []rdf.ID) (float64, bool) {
	if len(preds) == 0 || len(ps.CharSets) == 0 || ps.CharSetSubjects == 0 {
		return 0, false
	}
	var total float64
	for _, cs := range ps.CharSets {
		rows := float64(cs.Count)
		j := 0
		for _, p := range preds {
			for j < len(cs.Preds) && cs.Preds[j] < p {
				j++
			}
			if j >= len(cs.Preds) || cs.Preds[j] != p {
				rows = 0
				break
			}
			rows *= float64(cs.Occ[j]) / float64(cs.Count)
		}
		total += rows
	}
	if ps.CharSetSubjects < ps.Subjects {
		total *= float64(ps.Subjects) / float64(ps.CharSetSubjects)
	}
	return total, true
}

// planStats returns the base's statistics. Every base-construction path
// computes them eagerly; the fallback computes on the spot (without
// caching — published bases are shared immutable data) so a zero-value
// base can never crash a caller.
func (c *columnar) planStats() *PlanStats {
	if c.stats != nil {
		return c.stats
	}
	return computePlanStats(c)
}

// PlanStats returns the statistics of the snapshot's columnar base,
// computed once when the base was built (or hydrated from a persisted
// snapshot). Overlay-only snapshots share their base — and therefore its
// statistics — with the snapshot the base was published under.
func (s *Snapshot) PlanStats() *PlanStats { return s.base.stats }
