package store

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"elinda/internal/rdf"
)

// This file implements the streaming, parallel bulk-load path. Load takes
// a fully materialized []rdf.Triple and encodes it serially; LoadStream
// instead pipelines the whole ingest over an io.Reader:
//
//	chunker  — one goroutine cuts the input on line/statement boundaries
//	workers  — parse chunks and intern terms concurrently through a
//	           dictionary batch (sharded maps, provisional IDs)
//	commit   — new terms get canonical dense IDs in first-occurrence
//	           order, the provisional log is remapped in parallel, and the
//	           batch flows into the usual packed-key dedup + sort-once
//	           columnar build
//
// String triples exist only per chunk; the only corpus-sized allocations
// are ID arrays. Because canonical IDs equal the IDs a serial pass would
// have assigned, the resulting snapshot — including a binary dump of it —
// is byte-identical at any worker count, and identical to Load over the
// same parsed document.
//
// Unlike Load, which keeps the valid prefix when it hits a bad triple,
// LoadStream is all-or-nothing: an error leaves the store and its
// dictionary exactly as they were.

// StreamOptions configures LoadStream.
type StreamOptions struct {
	// Syntax is the input syntax (rdf.SyntaxNTriples or rdf.SyntaxTurtle).
	Syntax rdf.Syntax
	// Workers is the parse/intern worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// ChunkBytes is the target chunk size; 0 means the rdf default (1 MiB).
	ChunkBytes int
}

// ingestChunk is a worker's output: the chunk's triples, dictionary-
// encoded with (possibly provisional) IDs.
type ingestChunk struct {
	index int
	enc   []rdf.EncodedTriple
	err   error
}

// LoadStream bulk-inserts every triple read from r, skipping duplicates,
// and returns the number actually added. See the file comment for the
// pipeline; on error nothing is applied.
func (s *Store) LoadStream(r io.Reader, opts StreamOptions) (int, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	s.writeMu.Lock()
	defer s.writeMu.Unlock()

	batch := s.dict.NewBatch()
	chunks := make(chan rdf.Chunk, workers*2)
	results := make(chan ingestChunk, workers*2)
	stop := make(chan struct{})
	var stopOnce sync.Once
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	errStopped := fmt.Errorf("store: ingest aborted")
	var chunkerErr error
	go func() {
		chunkerErr = rdf.StreamChunks(r, opts.Syntax, opts.ChunkBytes, func(c rdf.Chunk) error {
			select {
			case chunks <- c:
				return nil
			case <-stop:
				return errStopped
			}
		})
		close(chunks)
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range chunks {
				out := ingestChunk{index: c.Index}
				stmt := 0
				out.err = c.Parse(func(t rdf.Triple) error {
					if err := t.Validate(); err != nil {
						return fmt.Errorf("store: chunk at line %d, triple %d: %w", c.Line, stmt, err)
					}
					// The occurrence key orders every term occurrence the
					// way a serial pass would visit it: by chunk, then
					// statement, then S/P/O position.
					pos := uint64(c.Index)<<38 | uint64(stmt)<<2
					out.enc = append(out.enc, rdf.EncodedTriple{
						S: batch.Intern(pos, t.S),
						P: batch.Intern(pos+1, t.P),
						O: batch.Intern(pos+2, t.O),
					})
					stmt++
					return nil
				})
				if out.err != nil {
					results <- out
					abort()
					return
				}
				select {
				case results <- out:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collect chunk results; order them by index afterwards so slow
	// chunks never stall the pipeline.
	var (
		parts      []ingestChunk
		total      int
		loadErr    error
		loadErrIdx int
	)
	for res := range results {
		if res.err != nil {
			// Prefer the error from the earliest chunk so failure
			// messages are as stable as possible across interleavings.
			if loadErr == nil || res.index < loadErrIdx {
				loadErr, loadErrIdx = res.err, res.index
			}
			continue
		}
		total += len(res.enc)
		parts = append(parts, res)
	}
	abort() // release the chunker if it is still reading
	if loadErr == nil && chunkerErr != nil && chunkerErr != errStopped {
		loadErr = chunkerErr
	}
	if loadErr != nil {
		return 0, loadErr
	}

	sort.Slice(parts, func(i, j int) bool { return parts[i].index < parts[j].index })
	log := make([]rdf.EncodedTriple, 0, total)
	for _, p := range parts {
		log = append(log, p.enc...)
	}

	// Publish the batch's new terms under canonical first-occurrence IDs,
	// then rewrite the provisional log — embarrassingly parallel.
	batch.Commit()
	remapParallel(log, batch, workers)

	snap := s.snap.Load()
	added := dedupBatch(snap, log)
	if len(added) > 0 {
		s.snap.Store(applyBatch(snap, added))
	}
	return len(added), nil
}

// remapParallel rewrites provisional IDs to canonical ones in place.
func remapParallel(log []rdf.EncodedTriple, batch *rdf.DictBatch, workers int) {
	const minPerWorker = 1 << 15
	if workers > len(log)/minPerWorker {
		workers = len(log) / minPerWorker
	}
	if workers <= 1 {
		for i := range log {
			log[i] = batch.CanonicalTriple(log[i])
		}
		return
	}
	var wg sync.WaitGroup
	stride := (len(log) + workers - 1) / workers
	for lo := 0; lo < len(log); lo += stride {
		hi := lo + stride
		if hi > len(log) {
			hi = len(log)
		}
		wg.Add(1)
		go func(part []rdf.EncodedTriple) {
			defer wg.Done()
			for i := range part {
				part[i] = batch.CanonicalTriple(part[i])
			}
		}(log[lo:hi])
	}
	wg.Wait()
}
