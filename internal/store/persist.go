package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"elinda/internal/rdf"
	"elinda/internal/vfs"
)

// This file implements durable binary snapshots: a versioned little-endian
// dump of the dictionary arena, the insertion-order triple log, and the
// three columnar permutation indexes, exactly as they sit in memory. A
// warm restart therefore skips parsing, interning AND index sorting — the
// load path is bulk []ID reads plus structural validation. Files are
// written atomically (temp + rename) and carry a CRC-32 of the entire
// payload; a corrupt, truncated or wrong-version file fails loudly and
// never yields a half-loaded store.
//
// Layout (all integers little-endian):
//
//	[8]  magic "ELINDSN\x02" (version byte last)
//	u64  generation
//	u32  nTerms, nTriples
//	u32  typeID, subClassID, labelID
//	dict: [nTerms]u8 kinds, then 3 string columns (value, lang, datatype),
//	      each: [nTerms]u32 lengths, u64 blobLen, blob bytes
//	log:  [3*nTriples]u32 (S,P,O per triple, insertion order)
//	3 × permutation index (SPO, POS, OSP), each 5 arrays prefixed with a
//	      u32 count: aKeys, aOff, bKeys, bOff, c
//	planner statistics (version ≥ 2; see planstats.go):
//	      u32 nPreds, then nPreds × (u32 pred, count, distinctS, distinctO)
//	      u32 charSetSubjects, u32 nCharSets, then per set:
//	      u32 k, [k]u32 preds, u32 count, [k]u32 occ
//	u32  CRC-32 (IEEE) of every preceding byte
//
// Version 1 files (no statistics section) still load; their statistics
// are recomputed from the indexes after hydration.

const (
	snapshotMagic      = "ELINDSN\x02" // bump the final byte on format changes
	snapshotVersionMin = 1             // oldest version the reader accepts
	snapshotMaxSane    = 1 << 31       // upper bound for any count field
)

// --- writing ---

// crcWriter tees everything through a CRC-32 accumulator.
type crcWriter struct {
	w   *bufio.Writer
	sum uint32
}

func (cw *crcWriter) write(p []byte) error {
	cw.sum = crc32.Update(cw.sum, crc32.IEEETable, p)
	_, err := cw.w.Write(p)
	return err
}

func (cw *crcWriter) writeU32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return cw.write(b[:])
}

func (cw *crcWriter) writeU64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return cw.write(b[:])
}

// writeU32Slice bulk-encodes a 32-bit integer array (rdf.ID or uint32)
// through a reused scratch buffer.
func writeU32Slice[T ~uint32](cw *crcWriter, vs []T, scratch []byte) error {
	for len(vs) > 0 {
		n := len(scratch) / 4
		if n > len(vs) {
			n = len(vs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[4*i:], uint32(vs[i]))
		}
		if err := cw.write(scratch[:4*n]); err != nil {
			return err
		}
		vs = vs[n:]
	}
	return nil
}

// writeCounted writes a u32 element count followed by the array.
func writeCounted[T ~uint32](cw *crcWriter, vs []T, scratch []byte) error {
	if err := cw.writeU32(uint32(len(vs))); err != nil {
		return err
	}
	return writeU32Slice(cw, vs, scratch)
}

// writeString streams a string's bytes through scratch, avoiding the
// []byte(string) allocation a direct write would cost per call.
func (cw *crcWriter) writeString(s string, scratch []byte) error {
	for len(s) > 0 {
		n := copy(scratch, s)
		if err := cw.write(scratch[:n]); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

// WriteSnapshot serializes the store's current snapshot to w. A non-empty
// overlay (recent Adds) is folded into a columnar view first, so the file
// always holds the steady-state layout.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return writeSnapshot(s.Snapshot(), w)
}

// WriteSnapshot serializes this pinned snapshot to w. The fleet
// coordinator publishes through this entry point: it pins a snapshot,
// reads its generation, and serializes exactly that version, so the
// generation it advertises in the manifest and the bytes it serves can
// never drift apart under concurrent writes.
func (s *Snapshot) WriteSnapshot(w io.Writer) error {
	return writeSnapshot(s, w)
}

// writeSnapshot serializes one pinned snapshot — the savers pin a
// snapshot under writeMu together with the WAL cut point and must write
// exactly that version, not whatever is current by the time the bytes
// flow.
func writeSnapshot(snap *Snapshot, w io.Writer) error {
	if !snap.overlayEmpty() || !snap.tombEmpty() {
		// Fold recent Adds in and drop tombstoned triples: the file always
		// holds the steady-state layout with no masked rows.
		snap = compacted(snap)
	}
	terms := snap.dict.Terms()

	// Refuse to write anything the reader would reject — a snapshot that
	// saves fine but can never load back is worse than no snapshot.
	if len(terms) >= snapshotMaxSane || len(snap.log) >= snapshotMaxSane {
		return fmt.Errorf("store: writing snapshot: store exceeds the format's count limits (%d terms, %d triples)", len(terms), len(snap.log))
	}
	var valueBytes uint64
	for _, t := range terms {
		valueBytes += uint64(len(t.Value)) + uint64(len(t.Lang)) + uint64(len(t.Datatype))
	}
	if valueBytes >= snapshotMaxSane {
		return fmt.Errorf("store: writing snapshot: dictionary strings total %d bytes, beyond the format's blob limit", valueBytes)
	}

	cw := &crcWriter{w: bufio.NewWriterSize(w, 1<<20)}
	scratch := make([]byte, 1<<16)
	if err := cw.write([]byte(snapshotMagic)); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	put := func(steps ...func() error) error {
		for _, step := range steps {
			if err := step(); err != nil {
				return fmt.Errorf("store: writing snapshot: %w", err)
			}
		}
		return nil
	}
	if err := put(
		func() error { return cw.writeU64(snap.generation) },
		func() error { return cw.writeU32(uint32(len(terms))) },
		func() error { return cw.writeU32(uint32(len(snap.log))) },
		func() error { return cw.writeU32(uint32(snap.typeID)) },
		func() error { return cw.writeU32(uint32(snap.subClassID)) },
		func() error { return cw.writeU32(uint32(snap.labelID)) },
	); err != nil {
		return err
	}

	// Dictionary: kinds, then the three string columns.
	kinds := scratch[:0]
	for _, t := range terms {
		kinds = append(kinds, byte(t.Kind))
		if len(kinds) == len(scratch) {
			if err := cw.write(kinds); err != nil {
				return fmt.Errorf("store: writing snapshot: %w", err)
			}
			kinds = scratch[:0]
		}
	}
	if err := cw.write(kinds); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	for _, col := range []func(rdf.Term) string{
		func(t rdf.Term) string { return t.Value },
		func(t rdf.Term) string { return t.Lang },
		func(t rdf.Term) string { return t.Datatype },
	} {
		var blobLen uint64
		lens := make([]uint32, len(terms))
		for i, t := range terms {
			lens[i] = uint32(len(col(t)))
			blobLen += uint64(len(col(t)))
		}
		if err := writeU32Slice(cw, lens, scratch); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		if err := cw.writeU64(blobLen); err != nil {
			return fmt.Errorf("store: writing snapshot: %w", err)
		}
		for _, t := range terms {
			if err := cw.writeString(col(t), scratch); err != nil {
				return fmt.Errorf("store: writing snapshot: %w", err)
			}
		}
	}

	// Triple log.
	ids := make([]rdf.ID, 0, len(scratch)/4)
	for _, e := range snap.log {
		ids = append(ids, e.S, e.P, e.O)
		if len(ids)+3 > cap(ids) {
			if err := writeU32Slice(cw, ids, scratch); err != nil {
				return fmt.Errorf("store: writing snapshot: %w", err)
			}
			ids = ids[:0]
		}
	}
	if err := writeU32Slice(cw, ids, scratch); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}

	// Columnar permutation indexes (each array prefixed with its count).
	for _, p := range []*permIndex{&snap.base.spo, &snap.base.pos, &snap.base.osp} {
		for _, step := range []func() error{
			func() error { return writeCounted(cw, p.aKeys, scratch) },
			func() error { return writeCounted(cw, p.aOff, scratch) },
			func() error { return writeCounted(cw, p.bKeys, scratch) },
			func() error { return writeCounted(cw, p.bOff, scratch) },
			func() error { return writeCounted(cw, p.c, scratch) },
		} {
			if err := step(); err != nil {
				return fmt.Errorf("store: writing snapshot: %w", err)
			}
		}
	}

	// Planner statistics (version 2 section): replicas hydrate them
	// instead of recomputing at load.
	if err := writePlanStats(cw, snap.base.planStats(), scratch); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}

	// Trailing checksum (not part of its own coverage).
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], cw.sum)
	if _, err := cw.w.Write(b[:]); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := cw.w.Flush(); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	return nil
}

// writePlanStats serializes the planner statistics section (format
// version 2); see the layout comment at the top of the file.
func writePlanStats(cw *crcWriter, ps *PlanStats, scratch []byte) error {
	flat := make([]uint32, 0, 4*len(ps.Preds))
	for _, st := range ps.Preds {
		flat = append(flat, uint32(st.Pred), st.Count, st.DistinctS, st.DistinctO)
	}
	if err := cw.writeU32(uint32(len(ps.Preds))); err != nil {
		return err
	}
	if err := writeU32Slice(cw, flat, scratch); err != nil {
		return err
	}
	if err := cw.writeU32(uint32(ps.CharSetSubjects)); err != nil {
		return err
	}
	if err := cw.writeU32(uint32(len(ps.CharSets))); err != nil {
		return err
	}
	for _, cs := range ps.CharSets {
		if err := cw.writeU32(uint32(len(cs.Preds))); err != nil {
			return err
		}
		if err := writeU32Slice(cw, cs.Preds, scratch); err != nil {
			return err
		}
		if err := cw.writeU32(cs.Count); err != nil {
			return err
		}
		if err := writeU32Slice(cw, cs.Occ, scratch); err != nil {
			return err
		}
	}
	return nil
}

// SaveSnapshot writes the snapshot to path atomically on the real
// filesystem; see SaveSnapshotFS.
func (s *Store) SaveSnapshot(path string) error {
	return s.SaveSnapshotFS(vfs.OS, path)
}

// SaveSnapshotFS writes the snapshot to path atomically: the bytes land
// in path+".tmp" in the same directory, synced, and renamed over path
// only after a successful write, so a crash never leaves a torn file at
// path (at worst a stale temp file for the startup sweep).
//
// With a WAL attached the save is also the log's checkpoint: the WAL is
// cut at the pinned snapshot's boundary (under the writer lock, so the
// cut and the snapshot describe the same prefix of acknowledged writes)
// and the segments the snapshot covers are removed only after the
// rename and directory sync both succeed. A crash anywhere in between
// is safe — the old snapshot plus the uncut log, or the new snapshot
// plus a not-yet-truncated log, both replay to the same store because
// replay is idempotent.
func (s *Store) SaveSnapshotFS(fsys vfs.FS, path string) error {
	s.writeMu.Lock()
	w := s.wal
	var cut uint64
	if w != nil {
		var err error
		if cut, err = w.Cut(); err != nil {
			s.writeMu.Unlock()
			return fmt.Errorf("store: saving snapshot: %w", err)
		}
	}
	snap := s.snap.Load()
	s.writeMu.Unlock()

	dir := filepath.Dir(path)
	tmpName := path + vfs.TempSuffix
	tmp, err := fsys.Create(tmpName)
	if err != nil {
		return fmt.Errorf("store: saving snapshot: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		// Best effort: the startup sweep removes the temp file otherwise.
		_ = fsys.Remove(tmpName)
		return err
	}
	if err := writeSnapshot(snap, tmp); err != nil {
		return fail(err)
	}
	// Flush the data blocks before the rename becomes visible, or a
	// power loss could journal the rename ahead of the contents and
	// leave a torn (CRC-failing) file at path.
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("store: saving snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		_ = fsys.Remove(tmpName)
		return fmt.Errorf("store: saving snapshot: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		_ = fsys.Remove(tmpName)
		return fmt.Errorf("store: saving snapshot: %w", err)
	}
	// The directory entry must be durable before WAL truncation: if the
	// rename could still roll back, removing the segments it supersedes
	// would lose acknowledged writes.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: saving snapshot: %w", err)
	}
	if w != nil {
		if err := w.TruncateBefore(cut); err != nil {
			return fmt.Errorf("store: saving snapshot: %w", err)
		}
	}
	return nil
}

// --- reading ---

// crcReader verifies the running CRC-32 while decoding.
type crcReader struct {
	r   *bufio.Reader
	sum uint32
}

func (cr *crcReader) read(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("truncated file")
		}
		return err
	}
	cr.sum = crc32.Update(cr.sum, crc32.IEEETable, p)
	return nil
}

func (cr *crcReader) readU32() (uint32, error) {
	var b [4]byte
	if err := cr.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (cr *crcReader) readU64() (uint64, error) {
	var b [8]byte
	if err := cr.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// readU32Slice bulk-reads n 32-bit integers, growing the result
// incrementally so a corrupt count fails on the truncated read instead
// of attempting one giant allocation up front.
func readU32Slice[T ~uint32](cr *crcReader, n int, scratch []byte) ([]T, error) {
	out := make([]T, 0, min(n, 1<<20))
	for len(out) < n {
		k := (n - len(out)) * 4
		if k > len(scratch) {
			k = len(scratch)
		}
		if err := cr.read(scratch[:k]); err != nil {
			return nil, err
		}
		for i := 0; i < k; i += 4 {
			out = append(out, T(binary.LittleEndian.Uint32(scratch[i:])))
		}
	}
	return out, nil
}

// readBlob reads n bytes incrementally (same truncation rationale).
func (cr *crcReader) readBlob(n uint64) ([]byte, error) {
	if n >= snapshotMaxSane {
		return nil, fmt.Errorf("implausible blob size %d", n)
	}
	out := make([]byte, 0, min(int(n), 1<<24))
	var chunk [1 << 16]byte
	for uint64(len(out)) < n {
		k := n - uint64(len(out))
		if k > uint64(len(chunk)) {
			k = uint64(len(chunk))
		}
		if err := cr.read(chunk[:k]); err != nil {
			return nil, err
		}
		out = append(out, chunk[:k]...)
	}
	return out, nil
}

func snapErr(format string, args ...any) error {
	return fmt.Errorf("store: loading snapshot: "+format, args...)
}

// OpenSnapshot loads a store from a binary snapshot file written by
// SaveSnapshot.
func OpenSnapshot(path string) (*Store, error) {
	return OpenSnapshotFS(vfs.OS, path)
}

// OpenSnapshotFS loads a store from a snapshot on the given filesystem.
func OpenSnapshotFS(fsys vfs.FS, path string) (*Store, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: loading snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ReadSnapshot decodes a binary snapshot from r into a fully built store.
// Every failure — bad magic, unsupported version, truncation, checksum
// mismatch, or a structural invariant violation — returns an error and no
// store; a snapshot never loads partially.
func ReadSnapshot(r io.Reader) (*Store, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}
	scratch := make([]byte, 1<<16)

	magic := make([]byte, len(snapshotMagic))
	if err := cr.read(magic); err != nil {
		return nil, snapErr("%v", err)
	}
	if string(magic[:7]) != snapshotMagic[:7] {
		return nil, snapErr("bad magic %q: not an eLinda snapshot", magic)
	}
	version := int(magic[7])
	if version < snapshotVersionMin || version > int(snapshotMagic[7]) {
		return nil, snapErr("unsupported snapshot version %d (want %d..%d)", version, snapshotVersionMin, snapshotMagic[7])
	}

	generation, err := cr.readU64()
	if err != nil {
		return nil, snapErr("%v", err)
	}
	hdr := make([]uint32, 5)
	for i := range hdr {
		if hdr[i], err = cr.readU32(); err != nil {
			return nil, snapErr("%v", err)
		}
	}
	nTerms, nTriples := int(hdr[0]), int(hdr[1])
	typeID, subClassID, labelID := rdf.ID(hdr[2]), rdf.ID(hdr[3]), rdf.ID(hdr[4])
	if nTerms < 0 || nTerms >= snapshotMaxSane || nTriples < 0 || nTriples >= snapshotMaxSane {
		return nil, snapErr("implausible header counts (terms=%d triples=%d)", nTerms, nTriples)
	}

	// Dictionary columns. Kinds go through the incremental blob reader so
	// a corrupt count fails on the truncated read, never on a giant
	// upfront allocation.
	kinds, err := cr.readBlob(uint64(nTerms))
	if err != nil {
		return nil, snapErr("dictionary kinds: %v", err)
	}
	var cols [3][]string
	for ci := range cols {
		lens, err := readU32Slice[uint32](cr, nTerms, scratch)
		if err != nil {
			return nil, snapErr("dictionary lengths: %v", err)
		}
		blobLen, err := cr.readU64()
		if err != nil {
			return nil, snapErr("dictionary blob: %v", err)
		}
		var sum uint64
		for _, l := range lens {
			sum += uint64(l)
		}
		if sum != blobLen {
			return nil, snapErr("dictionary column %d: lengths sum to %d, blob is %d", ci, sum, blobLen)
		}
		blobBytes, err := cr.readBlob(blobLen)
		if err != nil {
			return nil, snapErr("dictionary blob: %v", err)
		}
		// One backing string for the whole column keeps the loaded
		// dictionary as compact as the file.
		blob := string(blobBytes)
		col := make([]string, nTerms)
		off := 0
		for i, l := range lens {
			col[i] = blob[off : off+int(l)]
			off += int(l)
		}
		cols[ci] = col
	}
	terms := make([]rdf.Term, nTerms)
	for i := range terms {
		if kinds[i] > byte(rdf.Blank) {
			return nil, snapErr("term %d has unknown kind %d", i+1, kinds[i])
		}
		terms[i] = rdf.Term{
			Kind:     rdf.TermKind(kinds[i]),
			Value:    cols[0][i],
			Lang:     cols[1][i],
			Datatype: cols[2][i],
		}
	}
	dict, err := rdf.NewDictFromTerms(terms)
	if err != nil {
		return nil, snapErr("%v", err)
	}

	// Triple log.
	flat, err := readU32Slice[rdf.ID](cr, 3*nTriples, scratch)
	if err != nil {
		return nil, snapErr("triple log: %v", err)
	}
	log := make([]rdf.EncodedTriple, nTriples)
	for i := range log {
		log[i] = rdf.EncodedTriple{S: flat[3*i], P: flat[3*i+1], O: flat[3*i+2]}
		if !validSnapID(log[i].S, nTerms) || !validSnapID(log[i].P, nTerms) || !validSnapID(log[i].O, nTerms) {
			return nil, snapErr("triple %d references an ID outside the dictionary (size %d)", i, nTerms)
		}
	}

	// Permutation indexes.
	base := &columnar{n: nTriples}
	for pi, p := range []*permIndex{&base.spo, &base.pos, &base.osp} {
		if err := readPerm(cr, p, nTriples, nTerms, scratch); err != nil {
			return nil, snapErr("permutation %d: %v", pi, err)
		}
	}

	// Planner statistics: hydrated from version ≥ 2 files, recomputed
	// from the indexes for version 1.
	if version >= 2 {
		stats, err := readPlanStats(cr, base, nTerms, scratch)
		if err != nil {
			return nil, snapErr("planner statistics: %v", err)
		}
		base.stats = stats
	} else {
		base.stats = computePlanStats(base)
	}

	// Checksum trailer (compare before trusting anything further).
	want := cr.sum
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return nil, snapErr("checksum: truncated file")
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, snapErr("checksum mismatch (file %08x, computed %08x): corrupt snapshot", got, want)
	}
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return nil, snapErr("trailing garbage after checksum")
	}

	// Well-known IDs must resolve to the terms the store hardwires.
	for _, chk := range []struct {
		id   rdf.ID
		term rdf.Term
		name string
	}{
		{typeID, rdf.TypeIRI, "rdf:type"},
		{subClassID, rdf.SubClassOfIRI, "rdfs:subClassOf"},
		{labelID, rdf.LabelIRI, "rdfs:label"},
	} {
		if !validSnapID(chk.id, nTerms) {
			return nil, snapErr("%s ID %d outside the dictionary", chk.name, chk.id)
		}
		if dict.Term(chk.id) != chk.term {
			return nil, snapErr("%s ID %d resolves to %s", chk.name, chk.id, dict.Term(chk.id))
		}
	}

	st := &Store{dict: dict, typeID: typeID, subClassID: subClassID, labelID: labelID}
	st.snap.Store(&Snapshot{
		dict:       dict,
		base:       base,
		log:        log,
		generation: generation,
		typeID:     typeID,
		subClassID: subClassID,
		labelID:    labelID,
	})
	return st, nil
}

func validSnapID(id rdf.ID, nTerms int) bool {
	return id != rdf.NoID && int(id) <= nTerms
}

// readPerm decodes one permutation index and checks the structural
// invariants the lock-free readers rely on: sorted unique first-level
// keys, monotonically increasing offset arrays with the right lengths,
// and a posting array covering exactly the triple count.
func readPerm(cr *crcReader, p *permIndex, nTriples, nTerms int, scratch []byte) error {
	arrs := make([][]rdf.ID, 2)
	offs := make([][]uint32, 2)
	var c []rdf.ID
	for i := 0; i < 5; i++ {
		n, err := cr.readU32()
		if err != nil {
			return err
		}
		if int(n) >= snapshotMaxSane {
			return fmt.Errorf("implausible array count %d", n)
		}
		switch i {
		case 0, 2: // aKeys, bKeys
			if arrs[i/2], err = readU32Slice[rdf.ID](cr, int(n), scratch); err != nil {
				return err
			}
		case 1, 3: // aOff, bOff
			if offs[i/2], err = readU32Slice[uint32](cr, int(n), scratch); err != nil {
				return err
			}
		default: // c
			if c, err = readU32Slice[rdf.ID](cr, int(n), scratch); err != nil {
				return err
			}
		}
	}
	aKeys, aOff, bKeys, bOff := arrs[0], offs[0], arrs[1], offs[1]
	if len(c) != nTriples {
		return fmt.Errorf("posting array has %d entries, want %d", len(c), nTriples)
	}
	if len(aOff) != len(aKeys)+1 || len(bOff) != len(bKeys)+1 {
		return fmt.Errorf("offset arrays sized %d/%d for %d/%d keys", len(aOff), len(bOff), len(aKeys), len(bKeys))
	}
	if len(aKeys) > 0 && (aOff[0] != 0 || bOff[0] != 0) {
		return fmt.Errorf("offset arrays do not start at zero")
	}
	if len(aOff) > 0 && int(aOff[len(aOff)-1]) != len(bKeys) {
		return fmt.Errorf("first-level offsets end at %d, want %d", aOff[len(aOff)-1], len(bKeys))
	}
	if len(bOff) > 0 && int(bOff[len(bOff)-1]) != len(c) {
		return fmt.Errorf("second-level offsets end at %d, want %d", bOff[len(bOff)-1], len(c))
	}
	for i := 1; i < len(aKeys); i++ {
		if aKeys[i] <= aKeys[i-1] {
			return fmt.Errorf("first-level keys not strictly increasing at %d", i)
		}
	}
	// Offsets must strictly increase: the permCursor relies on every
	// group being non-empty.
	for i := 1; i < len(aOff); i++ {
		if aOff[i] <= aOff[i-1] {
			return fmt.Errorf("empty or decreasing first-level group at %d", i-1)
		}
	}
	for i := 1; i < len(bOff); i++ {
		if bOff[i] <= bOff[i-1] {
			return fmt.Errorf("empty or decreasing second-level group at %d", i-1)
		}
	}
	for _, k := range aKeys {
		if !validSnapID(k, nTerms) {
			return fmt.Errorf("first-level key outside the dictionary")
		}
	}
	for _, k := range bKeys {
		if !validSnapID(k, nTerms) {
			return fmt.Errorf("second-level key outside the dictionary")
		}
	}
	for _, k := range c {
		if !validSnapID(k, nTerms) {
			return fmt.Errorf("posting entry outside the dictionary")
		}
	}
	p.aKeys, p.aOff, p.bKeys, p.bOff, p.c = aKeys, aOff, bKeys, bOff, c
	return nil
}

// readPlanStats decodes the planner-statistics section and validates it
// against the already-loaded indexes: the per-predicate rows must agree
// exactly with the POS index (predicate set, triple counts, distinct
// objects are all derivable from its offsets), and the characteristic
// sets must be structurally sound. A file whose statistics disagree with
// its own indexes is corrupt and fails loudly.
func readPlanStats(cr *crcReader, base *columnar, nTerms int, scratch []byte) (*PlanStats, error) {
	ps := &PlanStats{
		Triples:  base.n,
		Subjects: len(base.spo.aKeys),
		Objects:  len(base.osp.aKeys),
	}
	nPreds, err := cr.readU32()
	if err != nil {
		return nil, err
	}
	pos := &base.pos
	if int(nPreds) != len(pos.aKeys) {
		return nil, fmt.Errorf("statistics cover %d predicates, index has %d", nPreds, len(pos.aKeys))
	}
	flat, err := readU32Slice[uint32](cr, 4*int(nPreds), scratch)
	if err != nil {
		return nil, err
	}
	ps.Preds = make([]PredStat, nPreds)
	for i := range ps.Preds {
		st := PredStat{
			Pred:      rdf.ID(flat[4*i]),
			Count:     flat[4*i+1],
			DistinctS: flat[4*i+2],
			DistinctO: flat[4*i+3],
		}
		if st.Pred != pos.aKeys[i] {
			return nil, fmt.Errorf("predicate row %d is %d, index has %d", i, st.Pred, pos.aKeys[i])
		}
		if want := pos.bOff[pos.aOff[i+1]] - pos.bOff[pos.aOff[i]]; st.Count != want {
			return nil, fmt.Errorf("predicate %d count %d disagrees with index (%d)", st.Pred, st.Count, want)
		}
		if want := pos.aOff[i+1] - pos.aOff[i]; st.DistinctO != want {
			return nil, fmt.Errorf("predicate %d distinct objects %d disagrees with index (%d)", st.Pred, st.DistinctO, want)
		}
		if st.DistinctS == 0 || int(st.DistinctS) > ps.Subjects || st.DistinctS > st.Count {
			return nil, fmt.Errorf("predicate %d has implausible distinct subjects %d", st.Pred, st.DistinctS)
		}
		ps.Preds[i] = st
	}
	covered, err := cr.readU32()
	if err != nil {
		return nil, err
	}
	if int(covered) > ps.Subjects {
		return nil, fmt.Errorf("characteristic sets cover %d subjects, store has %d", covered, ps.Subjects)
	}
	ps.CharSetSubjects = int(covered)
	nSets, err := cr.readU32()
	if err != nil {
		return nil, err
	}
	if int(nSets) > ps.Subjects || nSets > uint32(maxCharSets) {
		return nil, fmt.Errorf("implausible characteristic-set count %d", nSets)
	}
	ps.CharSets = make([]CharSet, nSets)
	var sum uint64
	for i := range ps.CharSets {
		k, err := cr.readU32()
		if err != nil {
			return nil, err
		}
		if k == 0 || k > nPreds {
			return nil, fmt.Errorf("characteristic set %d has implausible size %d", i, k)
		}
		preds, err := readU32Slice[rdf.ID](cr, int(k), scratch)
		if err != nil {
			return nil, err
		}
		for j, p := range preds {
			if !validSnapID(p, nTerms) || (j > 0 && p <= preds[j-1]) {
				return nil, fmt.Errorf("characteristic set %d predicates not strictly increasing valid IDs", i)
			}
		}
		count, err := cr.readU32()
		if err != nil {
			return nil, err
		}
		occ, err := readU32Slice[uint32](cr, int(k), scratch)
		if err != nil {
			return nil, err
		}
		if count == 0 {
			return nil, fmt.Errorf("characteristic set %d has zero subjects", i)
		}
		for _, o := range occ {
			if o < count || int(o) > base.n {
				return nil, fmt.Errorf("characteristic set %d has implausible occurrence counts", i)
			}
		}
		sum += uint64(count)
		ps.CharSets[i] = CharSet{Preds: preds, Count: count, Occ: occ}
	}
	if sum != uint64(covered) {
		return nil, fmt.Errorf("characteristic-set subject counts sum to %d, header says %d", sum, covered)
	}
	return ps, nil
}
