package store

import (
	"bytes"
	"testing"

	"elinda/internal/rdf"
)

// fuzzSnapshotBytes serializes a small real store so the fuzzer starts
// from a valid snapshot and mutates from there.
func fuzzSnapshotBytes(tb testing.TB) []byte {
	tb.Helper()
	st := New(8)
	for _, tr := range []rdf.Triple{
		mkTriple("alice", "knows", "bob"),
		mkTriple("bob", "knows", "carol"),
		{S: iri("alice"), P: rdf.NewIRI(rdf.RDFType), O: iri("Person")},
		{S: iri("alice"), P: iri("age"), O: rdf.NewLiteral("42")},
	} {
		if _, err := st.Add(tr); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadSnapshot feeds arbitrary bytes to the binary snapshot loader.
// The contract: it never panics, and it never half-loads — either it
// returns an error, or the returned store is fully consistent (the log
// length matches Len, every logged triple is Contains-able, and every ID
// decodes through the dictionary).
func FuzzReadSnapshot(f *testing.F) {
	valid := fuzzSnapshotBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	if len(valid) > 40 {
		flipped := append([]byte(nil), valid...)
		flipped[40] ^= 0xff // corrupt the body → CRC mismatch
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("ELINDSN\x01"))
	f.Add([]byte("not a snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		snap := st.Snapshot()
		n := snap.Len()
		seen := 0
		snap.Scan(0, 0, func(e rdf.EncodedTriple) bool {
			seen++
			if !snap.Contains(e) {
				t.Fatalf("logged triple %v not Contains-able", e)
			}
			tr := snap.Triple(e)
			if tr.S.IsZero() || tr.P.IsZero() || tr.O.IsZero() {
				t.Fatalf("triple %v decodes to zero terms %v", e, tr)
			}
			return true
		})
		if seen != n {
			t.Fatalf("Scan visited %d triples, Len() = %d", seen, n)
		}
	})
}
