package store

import (
	"sort"

	"elinda/internal/rdf"
)

// Stats summarizes a dataset. The paper (Section 3.1): "The very first
// queries present the user with general statistics about the dataset such
// as the total number of RDF triples, and the number of classes the
// dataset has."
type Stats struct {
	// Triples is the total number of RDF triples.
	Triples int
	// Subjects is the number of distinct subjects.
	Subjects int
	// Predicates is the number of distinct predicates.
	Predicates int
	// Objects is the number of distinct objects (URIs and literals).
	Objects int
	// Classes is the number of distinct classes, collected as all subjects
	// of type owl:Class or rdfs:Class plus every object of rdf:type.
	Classes int
	// DeclaredClasses counts only explicitly declared classes
	// (owl:Class / rdfs:Class), the list behind the autocomplete box.
	DeclaredClasses int
	// TypedSubjects is the number of subjects with at least one rdf:type.
	TypedSubjects int
	// Literals is the number of distinct literal objects.
	Literals int
}

// ComputeStats derives the dataset statistics from the current snapshot.
func (s *Store) ComputeStats() Stats { return s.Snapshot().ComputeStats() }

// ComputeStats walks the snapshot's columnar indexes once and derives the
// dataset statistics. Distinct subject/predicate/object counts fall out
// of the base index key arrays, adjusted by one pass over the bounded
// overlay (delta + tail) — no index rebuild, whatever the write state.
func (s *Snapshot) ComputeStats() Stats {
	col := s.base

	var st Stats
	st.Triples = len(s.log)
	st.Subjects = len(col.spo.aKeys)
	st.Predicates = len(col.pos.aKeys)
	st.Objects = len(col.osp.aKeys)

	classSet := make(map[rdf.ID]struct{})
	declared := make(map[rdf.ID]struct{})
	typed := make(map[rdf.ID]struct{})
	litCount := 0

	owlClassID, okOwl := s.dict.Lookup(rdf.OWLClassIRI)
	rdfsClassID, okRdfs := s.dict.Lookup(rdf.RDFSClassIRI)

	isLit := func(o rdf.ID) bool {
		t, ok := s.dict.TermOK(o)
		return ok && t.IsLiteral()
	}
	for _, o := range col.osp.aKeys {
		if isLit(o) {
			litCount++
		}
	}
	if !s.overlayEmpty() {
		// Count the positions the overlay introduces beyond the base.
		newS := make(map[rdf.ID]struct{})
		newP := make(map[rdf.ID]struct{})
		newO := make(map[rdf.ID]struct{})
		overlay := func(e rdf.EncodedTriple) {
			if _, ok := col.spo.findA(e.S); !ok {
				newS[e.S] = struct{}{}
			}
			if _, ok := col.pos.findA(e.P); !ok {
				newP[e.P] = struct{}{}
			}
			if _, ok := col.osp.findA(e.O); !ok {
				newO[e.O] = struct{}{}
			}
		}
		for _, e := range s.deltaSPO {
			overlay(e)
		}
		for _, e := range s.tail {
			overlay(e)
		}
		st.Subjects += len(newS)
		st.Predicates += len(newP)
		st.Objects += len(newO)
		for o := range newO {
			if isLit(o) {
				litCount++
			}
		}
	}
	st.Literals = litCount

	// Type assertions: register classes, typed subjects, and declared
	// classes. Match covers base and overlay alike.
	s.Match(rdf.NoID, s.typeID, rdf.NoID, func(e rdf.EncodedTriple) bool {
		classSet[e.O] = struct{}{}
		typed[e.S] = struct{}{}
		if okOwl && e.O == owlClassID || okRdfs && e.O == rdfsClassID {
			declared[e.S] = struct{}{}
			classSet[e.S] = struct{}{}
		}
		return true
	})
	// Classes mentioned only in the subclass hierarchy also count.
	s.Match(rdf.NoID, s.subClassID, rdf.NoID, func(e rdf.EncodedTriple) bool {
		classSet[e.O] = struct{}{}
		classSet[e.S] = struct{}{}
		return true
	})

	st.Classes = len(classSet)
	st.DeclaredClasses = len(declared)
	st.TypedSubjects = len(typed)
	return st
}

// DeclaredClassList returns the IDs of every subject declared as
// owl:Class or rdfs:Class, sorted by label (current snapshot).
func (s *Store) DeclaredClassList() []rdf.ID { return s.Snapshot().DeclaredClassList() }

// DeclaredClassList returns the IDs of every subject declared as
// owl:Class or rdfs:Class, sorted by label. This populates the paper's
// autocomplete search box (Section 3.2).
func (s *Snapshot) DeclaredClassList() []rdf.ID {
	set := make(map[rdf.ID]struct{})
	for _, classIRI := range []rdf.Term{rdf.OWLClassIRI, rdf.RDFSClassIRI} {
		cid, ok := s.dict.Lookup(classIRI)
		if !ok {
			continue
		}
		for _, sub := range s.Subjects(s.typeID, cid) {
			set[sub] = struct{}{}
		}
	}
	out := make([]rdf.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return s.Label(out[i]) < s.Label(out[j]) })
	return out
}

// SearchClasses returns declared classes whose label contains the query
// under ASCII case folding (current snapshot). Empty query returns all
// classes.
func (s *Store) SearchClasses(query string) []rdf.ID { return s.Snapshot().SearchClasses(query) }

// SearchClasses returns declared classes whose label contains the query
// under ASCII case folding. Empty query returns all classes.
func (s *Snapshot) SearchClasses(query string) []rdf.ID {
	all := s.DeclaredClassList()
	if query == "" {
		return all
	}
	var out []rdf.ID
	for _, id := range all {
		if containsFold(s.Label(id), query) {
			out = append(out, id)
		}
	}
	return out
}

// containsFold reports whether substr occurs in s under ASCII case folding.
func containsFold(s, substr string) bool {
	if len(substr) == 0 {
		return true
	}
	if len(substr) > len(s) {
		return false
	}
	lower := func(c byte) byte {
		if c >= 'A' && c <= 'Z' {
			return c + 'a' - 'A'
		}
		return c
	}
	for i := 0; i+len(substr) <= len(s); i++ {
		match := true
		for j := 0; j < len(substr); j++ {
			if lower(s[i+j]) != lower(substr[j]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
