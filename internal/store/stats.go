package store

import (
	"sort"

	"elinda/internal/rdf"
)

// Stats summarizes a dataset. The paper (Section 3.1): "The very first
// queries present the user with general statistics about the dataset such
// as the total number of RDF triples, and the number of classes the
// dataset has."
type Stats struct {
	// Triples is the total number of RDF triples.
	Triples int
	// Subjects is the number of distinct subjects.
	Subjects int
	// Predicates is the number of distinct predicates.
	Predicates int
	// Objects is the number of distinct objects (URIs and literals).
	Objects int
	// Classes is the number of distinct classes, collected as all subjects
	// of type owl:Class or rdfs:Class plus every object of rdf:type.
	Classes int
	// DeclaredClasses counts only explicitly declared classes
	// (owl:Class / rdfs:Class), the list behind the autocomplete box.
	DeclaredClasses int
	// TypedSubjects is the number of subjects with at least one rdf:type.
	TypedSubjects int
	// Literals is the number of distinct literal objects.
	Literals int
}

// ComputeStats walks the store once and derives the dataset statistics.
func (s *Store) ComputeStats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var st Stats
	st.Triples = len(s.log)
	st.Subjects = len(s.spo)
	st.Predicates = len(s.pos)
	st.Objects = len(s.osp)

	classSet := make(map[rdf.ID]struct{})
	declared := make(map[rdf.ID]struct{})
	typed := make(map[rdf.ID]struct{})
	litCount := 0

	owlClassID, okOwl := s.dict.Lookup(rdf.OWLClassIRI)
	rdfsClassID, okRdfs := s.dict.Lookup(rdf.RDFSClassIRI)

	for o := range s.osp {
		if t, ok := s.dict.TermOK(o); ok && t.IsLiteral() {
			litCount++
		}
	}
	st.Literals = litCount

	if byO, ok := s.pos[s.typeID]; ok {
		for class, subs := range byO {
			classSet[class] = struct{}{}
			for _, sub := range subs {
				typed[sub] = struct{}{}
			}
			if okOwl && class == owlClassID || okRdfs && class == rdfsClassID {
				for _, sub := range subs {
					declared[sub] = struct{}{}
					classSet[sub] = struct{}{}
				}
			}
		}
	}
	// Classes mentioned only in the subclass hierarchy also count.
	if byO, ok := s.pos[s.subClassID]; ok {
		for super, subs := range byO {
			classSet[super] = struct{}{}
			for _, sub := range subs {
				classSet[sub] = struct{}{}
			}
		}
	}

	st.Classes = len(classSet)
	st.DeclaredClasses = len(declared)
	st.TypedSubjects = len(typed)
	return st
}

// DeclaredClassList returns the IDs of every subject declared as
// owl:Class or rdfs:Class, sorted by label. This populates the paper's
// autocomplete search box (Section 3.2).
func (s *Store) DeclaredClassList() []rdf.ID {
	set := make(map[rdf.ID]struct{})
	for _, classIRI := range []rdf.Term{rdf.OWLClassIRI, rdf.RDFSClassIRI} {
		cid, ok := s.dict.Lookup(classIRI)
		if !ok {
			continue
		}
		for _, sub := range s.Subjects(s.typeID, cid) {
			set[sub] = struct{}{}
		}
	}
	out := make([]rdf.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return s.Label(out[i]) < s.Label(out[j]) })
	return out
}

// SearchClasses returns declared classes whose label contains the query
// (case-sensitive substring match by label prefix-insensitivity is handled
// by the caller lowering both sides). Empty query returns all classes.
func (s *Store) SearchClasses(query string) []rdf.ID {
	all := s.DeclaredClassList()
	if query == "" {
		return all
	}
	var out []rdf.ID
	for _, id := range all {
		if containsFold(s.Label(id), query) {
			out = append(out, id)
		}
	}
	return out
}

// containsFold reports whether substr occurs in s under ASCII case folding.
func containsFold(s, substr string) bool {
	if len(substr) == 0 {
		return true
	}
	if len(substr) > len(s) {
		return false
	}
	lower := func(c byte) byte {
		if c >= 'A' && c <= 'Z' {
			return c + 'a' - 'A'
		}
		return c
	}
	for i := 0; i+len(substr) <= len(s); i++ {
		match := true
		for j := 0; j < len(substr); j++ {
			if lower(s[i+j]) != lower(substr[j]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
