package store

import (
	"fmt"
	"testing"

	"elinda/internal/rdf"
)

func benchTriples(n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rdf.Triple{
			S: iri(fmt.Sprintf("s%d", i%1000)),
			P: iri(fmt.Sprintf("p%d", i%20)),
			O: iri(fmt.Sprintf("o%d", i)),
		})
	}
	return out
}

// BenchmarkLoad measures bulk insertion with dictionary encoding — the
// "dictionary encoding" ablation's cost side.
func BenchmarkLoad(b *testing.B) {
	ts := benchTriples(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := New(len(ts))
		if _, err := st.Load(ts); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(ts)))
}

func BenchmarkMatchBySubject(b *testing.B) {
	st := New(0)
	st.Load(benchTriples(50_000))
	s, _ := st.Dict().Lookup(iri("s42"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		st.Match(s, rdf.NoID, rdf.NoID, func(rdf.EncodedTriple) bool { n++; return true })
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkMatchByPredicate(b *testing.B) {
	st := New(0)
	st.Load(benchTriples(50_000))
	p, _ := st.Dict().Lookup(iri("p2"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		st.Match(rdf.NoID, p, rdf.NoID, func(rdf.EncodedTriple) bool { n++; return true })
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkScanChunked(b *testing.B) {
	st := New(0)
	st.Load(benchTriples(50_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offset := 0
		for {
			n := st.Scan(offset, 4096, func(rdf.EncodedTriple) bool { return true })
			if n == 0 {
				break
			}
			offset += n
		}
	}
}

func BenchmarkComputeStats(b *testing.B) {
	st := New(0)
	st.Load(benchTriples(50_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := st.ComputeStats(); s.Triples == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkSnapshotObjects measures the zero-copy lock-free posting-list
// probe on a published snapshot — the executor's hottest read.
func BenchmarkSnapshotObjects(b *testing.B) {
	st := New(0)
	st.Load(benchTriples(50_000))
	snap := st.Snapshot()
	s, _ := st.Dict().Lookup(iri("s42"))
	p, _ := st.Dict().Lookup(iri("p2"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(snap.Objects(s, p)) == 0 {
			b.Fatal("no postings")
		}
	}
}

// BenchmarkSnapshotPublish measures Snapshot() with a small pending delta
// — the linear merge of the overlay into a new columnar base.
func BenchmarkSnapshotPublish(b *testing.B) {
	st := New(0)
	st.Load(benchTriples(50_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st.Add(rdf.Triple{S: iri("fresh"), P: iri("p"), O: iri(fmt.Sprintf("x%d", i))})
		b.StartTimer()
		if st.Snapshot().Len() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkAddDelta measures the copy-on-write sorted-delta insert path.
func BenchmarkAddDelta(b *testing.B) {
	st := New(0)
	st.Load(benchTriples(50_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Add(rdf.Triple{S: iri("s1"), P: iri("pX"), O: iri(fmt.Sprintf("n%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
}
