package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"sort"
	"strings"
	"testing"

	"elinda/internal/rdf"
)

// TestPlanStatsBasic checks the statistics against brute-force counts
// over the raw triples.
func TestPlanStatsBasic(t *testing.T) {
	st := New(0)
	ts := ingestCorpus(300)
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	ps := snap.PlanStats()
	if ps == nil {
		t.Fatal("snapshot has no planner statistics")
	}
	if ps.Triples != snap.Len() {
		t.Fatalf("stats cover %d triples, snapshot has %d", ps.Triples, snap.Len())
	}

	// Brute force from the log.
	type agg struct {
		count int
		subs  map[rdf.ID]struct{}
		objs  map[rdf.ID]struct{}
	}
	byPred := map[rdf.ID]*agg{}
	subjects := map[rdf.ID]struct{}{}
	objects := map[rdf.ID]struct{}{}
	subjPreds := map[rdf.ID]map[rdf.ID]int{}
	snap.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		a := byPred[e.P]
		if a == nil {
			a = &agg{subs: map[rdf.ID]struct{}{}, objs: map[rdf.ID]struct{}{}}
			byPred[e.P] = a
		}
		a.count++
		a.subs[e.S] = struct{}{}
		a.objs[e.O] = struct{}{}
		subjects[e.S] = struct{}{}
		objects[e.O] = struct{}{}
		if subjPreds[e.S] == nil {
			subjPreds[e.S] = map[rdf.ID]int{}
		}
		subjPreds[e.S][e.P]++
		return true
	})
	if ps.Subjects != len(subjects) || ps.Objects != len(objects) {
		t.Fatalf("stats count %d subjects / %d objects, want %d / %d",
			ps.Subjects, ps.Objects, len(subjects), len(objects))
	}
	if len(ps.Preds) != len(byPred) {
		t.Fatalf("stats cover %d predicates, want %d", len(ps.Preds), len(byPred))
	}
	for _, stp := range ps.Preds {
		want := byPred[stp.Pred]
		if want == nil {
			t.Fatalf("stats name unknown predicate %d", stp.Pred)
		}
		if int(stp.Count) != want.count || int(stp.DistinctS) != len(want.subs) || int(stp.DistinctO) != len(want.objs) {
			t.Fatalf("predicate %d: got (count=%d ds=%d do=%d), want (%d %d %d)",
				stp.Pred, stp.Count, stp.DistinctS, stp.DistinctO,
				want.count, len(want.subs), len(want.objs))
		}
		got, ok := ps.PredStatOf(stp.Pred)
		if !ok || got != stp {
			t.Fatalf("PredStatOf(%d) = (%v, %v)", stp.Pred, got, ok)
		}
	}
	if _, ok := ps.PredStatOf(rdf.ID(1 << 30)); ok {
		t.Fatal("PredStatOf found a predicate that does not exist")
	}

	// Characteristic sets partition the subjects.
	covered := 0
	for _, cs := range ps.CharSets {
		covered += int(cs.Count)
		if len(cs.Preds) == 0 || len(cs.Occ) != len(cs.Preds) {
			t.Fatalf("malformed characteristic set %+v", cs)
		}
	}
	if covered != ps.CharSetSubjects {
		t.Fatalf("CharSetSubjects = %d, sets sum to %d", ps.CharSetSubjects, covered)
	}
	if ps.CharSetSubjects != ps.Subjects {
		t.Fatalf("uncapped corpus should be fully covered: %d of %d subjects", ps.CharSetSubjects, ps.Subjects)
	}
	// Every subject's exact predicate set must appear with matching
	// occurrence totals for at least its own contribution.
	for s, pm := range subjPreds {
		found := false
		for _, cs := range ps.CharSets {
			if len(cs.Preds) != len(pm) {
				continue
			}
			match := true
			for _, p := range cs.Preds {
				if _, ok := pm[p]; !ok {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("subject %d's predicate set missing from characteristic sets", s)
		}
	}
}

// TestPlanStatsOverlayAndFold: overlay snapshots inherit the base's
// statistics; the fold that absorbs the overlay recomputes them.
func TestPlanStatsOverlayAndFold(t *testing.T) {
	st := New(0)
	if _, err := st.Load(ingestCorpus(300)); err != nil {
		t.Fatal(err)
	}
	base := st.Snapshot().PlanStats()
	if _, err := st.Add(mkTriple("ovl", "novelPred", "x")); err != nil {
		t.Fatal(err)
	}
	if got := st.Snapshot().PlanStats(); got != base {
		t.Fatal("overlay-resident Add should not rebuild the base statistics")
	}
	folded := compacted(st.Snapshot())
	ps := folded.PlanStats()
	if ps == base {
		t.Fatal("fold must recompute statistics")
	}
	if ps.Triples != folded.Len() {
		t.Fatalf("folded stats cover %d triples, snapshot has %d", ps.Triples, folded.Len())
	}
	id, ok := st.Dict().Lookup(iri("novelPred"))
	if !ok {
		t.Fatal("novel predicate not interned")
	}
	if _, ok := ps.PredStatOf(id); !ok {
		t.Fatal("folded statistics missing the overlay predicate")
	}
}

// TestPlanStatsTombstoneAudit is the PR's tombstone-awareness audit for
// statistics: deleting triples and folding must yield bit-identical
// statistics to a fresh load of only the surviving triples.
func TestPlanStatsTombstoneAudit(t *testing.T) {
	ts := ingestCorpus(300)
	live := New(0)
	if _, err := live.Load(ts); err != nil {
		t.Fatal(err)
	}
	// Delete every 5th triple (base-resident → tombstones).
	var ops []rdf.TripleOp
	var survivors []rdf.Triple
	seen := map[rdf.Triple]bool{}
	for i, tr := range ts {
		if seen[tr] {
			continue
		}
		seen[tr] = true
		if i%5 == 0 {
			ops = append(ops, rdf.Delete(tr))
		} else {
			survivors = append(survivors, tr)
		}
	}
	if _, err := live.Apply(DeltaOf(ops...)); err != nil {
		t.Fatal(err)
	}
	if live.Snapshot().tombEmpty() {
		t.Fatal("expected tombstones before the fold")
	}
	folded := compacted(live.Snapshot())

	fresh := New(0)
	if _, err := fresh.Load(survivors); err != nil {
		t.Fatal(err)
	}
	// A sub-threshold load lands in the overlay; fold so the fresh store
	// has a columnar base (and therefore statistics) to compare against.
	want := canonStats(compacted(fresh.Snapshot()).PlanStats(), fresh.Dict())
	got := canonStats(folded.PlanStats(), live.Dict())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-fold statistics diverge from a fresh load of the survivors:\ngot  %+v\nwant %+v", got, want)
	}
}

// canonStats rewrites statistics into dictionary-independent form (the
// two stores intern terms in different orders, so raw IDs differ).
func canonStats(ps *PlanStats, d *rdf.Dict) map[string]any {
	preds := map[string][3]uint32{}
	for _, p := range ps.Preds {
		preds[d.Term(p.Pred).String()] = [3]uint32{p.Count, p.DistinctS, p.DistinctO}
	}
	sets := map[string][]uint32{}
	for _, cs := range ps.CharSets {
		names := make([]string, len(cs.Preds))
		occ := map[string]uint32{}
		for i, p := range cs.Preds {
			names[i] = d.Term(p).String()
			occ[names[i]] = cs.Occ[i]
		}
		sort.Strings(names)
		vals := make([]uint32, 0, len(names)+1)
		vals = append(vals, cs.Count)
		for _, n := range names {
			vals = append(vals, occ[n])
		}
		sets[strings.Join(names, "\x00")] = vals
	}
	return map[string]any{
		"triples": ps.Triples, "subjects": ps.Subjects, "objects": ps.Objects,
		"covered": ps.CharSetSubjects, "preds": preds, "sets": sets,
	}
}

// TestPlanStatsPersistRoundTrip: the v2 snapshot carries the statistics
// and the loader hydrates them bit-identically instead of recomputing.
func TestPlanStatsPersistRoundTrip(t *testing.T) {
	st := New(0)
	if _, err := st.Load(ingestCorpus(300)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Snapshot().PlanStats(), st.Snapshot().PlanStats()) {
		t.Fatal("hydrated statistics diverge from the computed ones")
	}
}

// TestPlanStatsVersion1Compat: a version-1 file (no statistics section)
// still loads, and its statistics are recomputed at load time.
func TestPlanStatsVersion1Compat(t *testing.T) {
	st := New(0)
	if _, err := st.Load(ingestCorpus(300)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Measure the statistics section so we can strip it: serialize it
	// standalone through the same writer.
	var statsBuf bytes.Buffer
	cw := &crcWriter{w: bufio.NewWriter(&statsBuf)}
	if err := writePlanStats(cw, st.Snapshot().PlanStats(), make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if err := cw.w.Flush(); err != nil {
		t.Fatal(err)
	}
	statsLen := statsBuf.Len()

	v1 := append([]byte(nil), data[:len(data)-4-statsLen]...)
	v1[7] = 1 // version byte
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(v1))
	v1 = append(v1, crc[:]...)

	loaded, err := ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	if loaded.Len() != st.Len() {
		t.Fatalf("v1 load has %d triples, want %d", loaded.Len(), st.Len())
	}
	if !reflect.DeepEqual(loaded.Snapshot().PlanStats(), st.Snapshot().PlanStats()) {
		t.Fatal("v1 load should recompute statistics identical to the original")
	}
}

// TestPlanStatsCorruptStatsFailLoudly: statistics that disagree with the
// file's own indexes are rejected even when the CRC is fixed up.
func TestPlanStatsCorruptStatsFailLoudly(t *testing.T) {
	st := New(0)
	if _, err := st.Load(ingestCorpus(300)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var statsBuf bytes.Buffer
	cw := &crcWriter{w: bufio.NewWriter(&statsBuf)}
	if err := writePlanStats(cw, st.Snapshot().PlanStats(), make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if err := cw.w.Flush(); err != nil {
		t.Fatal(err)
	}
	statsOff := len(data) - 4 - statsBuf.Len()

	// Corrupt the first predicate's triple count (second u32 of the first
	// row, after the nPreds count) and fix the CRC so only the semantic
	// validation can catch it.
	corrupt := append([]byte(nil), data[:len(data)-4]...)
	pos := statsOff + 4 + 4 // skip nPreds and the pred ID
	binary.LittleEndian.PutUint32(corrupt[pos:], binary.LittleEndian.Uint32(corrupt[pos:])+1)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(corrupt))
	corrupt = append(corrupt, crc[:]...)

	if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("snapshot with self-inconsistent statistics loaded successfully")
	}
}
