package store

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"elinda/internal/rdf"
)

// The differential delete oracle: drive Store.Apply with random
// insert/delete interleavings and check, after every delta, that the
// mutated store is observationally equivalent to a fresh store loaded
// with exactly the surviving triples in surviving insertion order. The
// model is a plain ordered slice; anything the two stores disagree on —
// length, scan order, membership, pattern cardinalities, match sets,
// predicate indexes — is a bug in the tombstone/overlay bookkeeping.

// oracleModel is the reference implementation of the mutation
// semantics: an insertion-ordered survivor list.
type oracleModel struct {
	order []rdf.Triple
	seen  map[rdf.Triple]bool
}

func newOracleModel() *oracleModel {
	return &oracleModel{seen: make(map[rdf.Triple]bool)}
}

// apply mutates the model with one op and reports whether the op was
// effective (changed membership).
func (m *oracleModel) apply(op rdf.TripleOp) bool {
	present := m.seen[op.Triple]
	if op.Del != present {
		return false
	}
	if op.Del {
		delete(m.seen, op.Triple)
		for i, t := range m.order {
			if t == op.Triple {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	} else {
		m.seen[op.Triple] = true
		m.order = append(m.order, op.Triple)
	}
	return true
}

// oracleUniverse builds a small dense triple universe so random ops
// collide constantly: inserts of present triples, deletes of absent
// ones, re-inserts after deletes.
func oracleUniverse() []rdf.Triple {
	var u []rdf.Triple
	subjects := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	preds := []string{"p0", "p1", "p2", "p3"}
	objects := []string{"o0", "o1", "o2", "o3", "o4", "o5"}
	for _, s := range subjects {
		for _, p := range preds {
			for _, o := range objects {
				u = append(u, mkTriple(s, p, o))
			}
		}
	}
	return u
}

// assertStoreMatchesModel checks every observable read surface of st
// against both the model order and a fresh Load of the same survivors.
func assertStoreMatchesModel(t *testing.T, st *Store, model *oracleModel, universe []rdf.Triple) {
	t.Helper()

	// Length and insertion-order scan.
	if st.Len() != len(model.order) {
		t.Fatalf("Len = %d, model has %d survivors", st.Len(), len(model.order))
	}
	snap := st.Snapshot()
	var scanned []rdf.Triple
	snap.Scan(0, 0, func(e rdf.EncodedTriple) bool {
		scanned = append(scanned, snap.Triple(e))
		return true
	})
	if !reflect.DeepEqual(scanned, model.order) && !(len(scanned) == 0 && len(model.order) == 0) {
		t.Fatalf("scan order diverged from model:\n got %v\nwant %v", scanned, model.order)
	}

	// Membership over the whole universe.
	for _, u := range universe {
		if got, want := st.ContainsTriple(u), model.seen[u]; got != want {
			t.Fatalf("ContainsTriple(%v) = %v, model says %v", u, got, want)
		}
	}

	// A fresh store loaded with the survivors is the ground truth for
	// everything pattern-shaped.
	fresh := New(len(model.order))
	if _, err := fresh.Load(append([]rdf.Triple(nil), model.order...)); err != nil {
		t.Fatalf("fresh load: %v", err)
	}
	assertSameReadSurface(t, st, fresh, universe)
}

// assertSameReadSurface compares pattern matching between the mutated
// store and the freshly loaded one, translating terms through each
// store's own dictionary (the mutated dictionary retains terms of
// deleted triples; the fresh one never saw them).
func assertSameReadSurface(t *testing.T, mutated, fresh *Store, universe []rdf.Triple) {
	t.Helper()
	terms := make(map[rdf.Term]struct{})
	for _, u := range universe {
		terms[u.S] = struct{}{}
		terms[u.P] = struct{}{}
		terms[u.O] = struct{}{}
	}
	lookup := func(st *Store, tm rdf.Term) rdf.ID {
		id, ok := st.Dict().Lookup(tm)
		if !ok {
			return rdf.NoID
		}
		return id
	}
	matchSet := func(st *Store, s, p, o rdf.Term) []rdf.Triple {
		sid, pid, oid := lookup(st, s), lookup(st, p), lookup(st, o)
		// An unknown constant can never match (NoID from a named term
		// means the store never interned it).
		if (s != rdf.Term{} && sid == rdf.NoID) || (p != rdf.Term{} && pid == rdf.NoID) || (o != rdf.Term{} && oid == rdf.NoID) {
			return nil
		}
		var out []rdf.Triple
		st.Match(sid, pid, oid, func(e rdf.EncodedTriple) bool {
			out = append(out, st.Triple(e))
			return true
		})
		sort.Slice(out, func(i, j int) bool { return tripleLess(out[i], out[j]) })
		return out
	}
	var zero rdf.Term
	patterns := [][3]rdf.Term{{zero, zero, zero}}
	for tm := range terms {
		patterns = append(patterns,
			[3]rdf.Term{tm, zero, zero},
			[3]rdf.Term{zero, tm, zero},
			[3]rdf.Term{zero, zero, tm})
	}
	for _, u := range universe {
		patterns = append(patterns,
			[3]rdf.Term{u.S, u.P, zero},
			[3]rdf.Term{u.S, zero, u.O},
			[3]rdf.Term{zero, u.P, u.O},
			[3]rdf.Term{u.S, u.P, u.O})
	}
	for _, pat := range patterns {
		got := matchSet(mutated, pat[0], pat[1], pat[2])
		want := matchSet(fresh, pat[0], pat[1], pat[2])
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("Match(%v) diverged:\n got %v\nwant %v", pat, got, want)
		}
		gotN := cardOf(mutated, pat, lookup)
		wantN := cardOf(fresh, pat, lookup)
		if gotN != wantN || gotN != len(want) {
			t.Fatalf("CardMatch(%v) = %d (mutated) vs %d (fresh), match set has %d", pat, gotN, wantN, len(want))
		}
	}

	// Predicate indexes per node.
	for tm := range terms {
		gp := decodedIDs(mutated, mutated.PredicatesOf(lookup(mutated, tm)))
		fp := decodedIDs(fresh, fresh.PredicatesOf(lookup(fresh, tm)))
		if !reflect.DeepEqual(gp, fp) && !(len(gp) == 0 && len(fp) == 0) {
			t.Fatalf("PredicatesOf(%v) diverged: got %v want %v", tm, gp, fp)
		}
		gi := decodedIDs(mutated, mutated.PredicatesInto(lookup(mutated, tm)))
		fi := decodedIDs(fresh, fresh.PredicatesInto(lookup(fresh, tm)))
		if !reflect.DeepEqual(gi, fi) && !(len(gi) == 0 && len(fi) == 0) {
			t.Fatalf("PredicatesInto(%v) diverged: got %v want %v", tm, gi, fi)
		}
	}
}

func cardOf(st *Store, pat [3]rdf.Term, lookup func(*Store, rdf.Term) rdf.ID) int {
	var zero rdf.Term
	ids := [3]rdf.ID{}
	for i, tm := range pat {
		if tm == zero {
			ids[i] = rdf.NoID
			continue
		}
		ids[i] = lookup(st, tm)
		if ids[i] == rdf.NoID {
			return 0
		}
	}
	return st.CardMatch(ids[0], ids[1], ids[2])
}

func decodedIDs(st *Store, ids []rdf.ID) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, st.Dict().Term(id).Value)
	}
	sort.Strings(out)
	return out
}

func tripleLess(a, b rdf.Triple) bool {
	if a.S != b.S {
		return a.S.Value < b.S.Value
	}
	if a.P != b.P {
		return a.P.Value < b.P.Value
	}
	return a.O.Value < b.O.Value
}

// TestApplyDeleteOracle is the main differential run: many seeds, many
// deltas per seed, random op mixes heavy enough to cross the fold and
// compaction thresholds repeatedly.
func TestApplyDeleteOracle(t *testing.T) {
	universe := oracleUniverse()
	seeds := 12
	deltas := 25
	if testing.Short() {
		seeds, deltas = 4, 10
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		st := New(0)
		model := newOracleModel()
		for d := 0; d < deltas; d++ {
			nOps := 1 + rng.Intn(12)
			ops := make([]rdf.TripleOp, 0, nOps)
			for i := 0; i < nOps; i++ {
				tr := universe[rng.Intn(len(universe))]
				if rng.Intn(100) < 45 {
					ops = append(ops, rdf.Delete(tr))
				} else {
					ops = append(ops, rdf.Insert(tr))
				}
			}
			effective := 0
			before := make(map[rdf.Triple]bool, len(model.seen))
			for k := range model.seen {
				before[k] = true
			}
			for _, op := range ops {
				if model.apply(op) {
					effective++
				}
			}
			genBefore := st.Generation()
			res, err := st.Apply(DeltaOf(ops...))
			if err != nil {
				t.Fatalf("seed %d delta %d: Apply: %v", seed, d, err)
			}
			if res.From != genBefore {
				t.Fatalf("seed %d delta %d: From = %d, generation was %d", seed, d, res.From, genBefore)
			}
			if res.To-res.From != uint64(effective) {
				t.Fatalf("seed %d delta %d: generation advanced %d, %d ops were effective", seed, d, res.To-res.From, effective)
			}
			assertNetAgainstModel(t, st, res, before, model.seen)
			// Full read-surface check every few deltas (it is quadratic in
			// the universe), membership-only in between.
			if d%5 == 4 || d == deltas-1 {
				assertStoreMatchesModel(t, st, model, universe)
			} else if st.Len() != len(model.order) {
				t.Fatalf("seed %d delta %d: Len = %d, model %d", seed, d, st.Len(), len(model.order))
			}
		}
	}
}

// assertNetAgainstModel checks the reported net membership changes
// against the model's before/after sets.
func assertNetAgainstModel(t *testing.T, st *Store, res ApplyResult, before, after map[rdf.Triple]bool) {
	t.Helper()
	wantIns := make(map[rdf.Triple]bool)
	wantDel := make(map[rdf.Triple]bool)
	for k := range after {
		if !before[k] {
			wantIns[k] = true
		}
	}
	for k := range before {
		if !after[k] {
			wantDel[k] = true
		}
	}
	// Re-log moves (delete + re-insert of a present triple in one delta)
	// legitimately appear in both slices; membership-net entries must
	// cover exactly the model diff.
	gotIns := make(map[rdf.Triple]bool)
	for _, e := range res.NetInserts {
		gotIns[st.Triple(e)] = true
	}
	gotDel := make(map[rdf.Triple]bool)
	for _, e := range res.NetDeletes {
		gotDel[st.Triple(e)] = true
	}
	for k := range wantIns {
		if !gotIns[k] {
			t.Fatalf("NetInserts missing %v", k)
		}
	}
	for k := range wantDel {
		if !gotDel[k] {
			t.Fatalf("NetDeletes missing %v", k)
		}
	}
	for k := range gotIns {
		if !wantIns[k] && !gotDel[k] {
			t.Fatalf("NetInserts contains %v which the model says was already present", k)
		}
	}
	for k := range gotDel {
		if !wantDel[k] && !gotIns[k] {
			t.Fatalf("NetDeletes contains %v which the model says stayed present", k)
		}
	}
	if res.Inserted != len(res.NetInserts) || res.Deleted != len(res.NetDeletes) {
		t.Fatalf("counters disagree with slices: %d/%d vs %d/%d",
			res.Inserted, res.Deleted, len(res.NetInserts), len(res.NetDeletes))
	}
}

// TestApplyEdgeCases pins the intra-delta ordering semantics directly.
func TestApplyEdgeCases(t *testing.T) {
	a, b := mkTriple("ea", "p", "x"), mkTriple("eb", "p", "x")

	t.Run("empty delta", func(t *testing.T) {
		st := New(0)
		res, err := st.Apply(Delta{})
		if err != nil || res.Changed() {
			t.Fatalf("empty delta: res=%+v err=%v", res, err)
		}
	})

	t.Run("insert then delete is transient", func(t *testing.T) {
		st := New(0)
		var d Delta
		d.Insert(a)
		d.Delete(a)
		res, err := st.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.To-res.From != 2 {
			t.Fatalf("two effective ops expected, generation moved %d", res.To-res.From)
		}
		if res.Inserted != 0 || res.Deleted != 0 || st.Len() != 0 {
			t.Fatalf("transient triple leaked: %+v len=%d", res, st.Len())
		}
		if st.ContainsTriple(a) {
			t.Fatal("transient triple still visible")
		}
	})

	t.Run("delete then reinsert moves to log end", func(t *testing.T) {
		st := New(0)
		if _, err := st.Load([]rdf.Triple{a, b}); err != nil {
			t.Fatal(err)
		}
		var d Delta
		d.Delete(a)
		d.Insert(a)
		res, err := st.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inserted != 1 || res.Deleted != 1 {
			t.Fatalf("re-log should net one insert and one delete: %+v", res)
		}
		want := []rdf.Triple{b, a}
		var got []rdf.Triple
		snap := st.Snapshot()
		snap.Scan(0, 0, func(e rdf.EncodedTriple) bool {
			got = append(got, snap.Triple(e))
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("log order after re-insert: got %v want %v", got, want)
		}
	})

	t.Run("delete of absent and insert of present are no-ops", func(t *testing.T) {
		st := New(0)
		if _, err := st.Load([]rdf.Triple{a}); err != nil {
			t.Fatal(err)
		}
		gen := st.Generation()
		var d Delta
		d.Delete(b)
		d.Insert(a)
		res, err := st.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Changed() || st.Generation() != gen {
			t.Fatalf("no-op delta changed the store: %+v", res)
		}
	})

	t.Run("invalid triple rejects whole delta", func(t *testing.T) {
		st := New(0)
		bad := rdf.Triple{S: rdf.NewLiteral("x"), P: iri("p"), O: iri("o")}
		var d Delta
		d.Insert(a)
		d.Op(rdf.Insert(bad))
		if _, err := st.Apply(d); err == nil {
			t.Fatal("invalid op accepted")
		}
		if st.Len() != 0 {
			t.Fatal("partial delta applied")
		}
	})
}

// TestApplySnapshotReadersUnaffected: a reader holding the pre-delta
// snapshot keeps seeing the old state after deletes land.
func TestApplySnapshotReadersUnaffected(t *testing.T) {
	st := New(0)
	a, b := mkTriple("ra", "p", "x"), mkTriple("rb", "p", "x")
	if _, err := st.Load([]rdf.Triple{a, b}); err != nil {
		t.Fatal(err)
	}
	old := st.Snapshot()
	var d Delta
	d.Delete(a)
	if _, err := st.Apply(d); err != nil {
		t.Fatal(err)
	}
	if !old.ContainsTriple(a) || old.Len() != 2 {
		t.Fatal("pinned snapshot observed the delete")
	}
	if st.ContainsTriple(a) || st.Len() != 1 {
		t.Fatal("live store missed the delete")
	}
}
