package store

import (
	"slices"
	"sort"
	"sync"

	"elinda/internal/rdf"
)

// permIndex is one permutation index of a snapshot in columnar form: a
// two-level offset index over a contiguous sorted ID array. For the SPO
// permutation, aKeys holds the distinct subjects in ascending order,
// bKeys[aOff[i]:aOff[i+1]] the sorted predicates of aKeys[i], and
// c[bOff[j]:bOff[j+1]] the sorted posting list of bKeys[j]. Lookups are
// two binary searches; posting lists are returned as sub-slices of c
// without copying. The structure is immutable after construction.
type permIndex struct {
	aKeys []rdf.ID
	aOff  []uint32 // len(aKeys)+1, offsets into bKeys
	bKeys []rdf.ID
	bOff  []uint32 // len(bKeys)+1, offsets into c
	c     []rdf.ID
}

// findA binary-searches the first-level keys.
func (p *permIndex) findA(a rdf.ID) (int, bool) {
	i := sort.Search(len(p.aKeys), func(i int) bool { return p.aKeys[i] >= a })
	return i, i < len(p.aKeys) && p.aKeys[i] == a
}

// findB binary-searches the second-level keys of group ai.
func (p *permIndex) findB(ai int, b rdf.ID) (int, bool) {
	lo, hi := int(p.aOff[ai]), int(p.aOff[ai+1])
	j := lo + sort.Search(hi-lo, func(k int) bool { return p.bKeys[lo+k] >= b })
	return j, j < hi && p.bKeys[j] == b
}

// postings returns the sorted third-position IDs of (a, b) as a sub-slice
// of the index (nil when absent). Callers must not modify it.
func (p *permIndex) postings(a, b rdf.ID) []rdf.ID {
	ai, ok := p.findA(a)
	if !ok {
		return nil
	}
	j, ok := p.findB(ai, b)
	if !ok {
		return nil
	}
	return p.c[p.bOff[j]:p.bOff[j+1]]
}

// cardA returns the number of triples whose first position is a.
func (p *permIndex) cardA(a rdf.ID) int {
	ai, ok := p.findA(a)
	if !ok {
		return 0
	}
	return int(p.bOff[p.aOff[ai+1]]) - int(p.bOff[p.aOff[ai]])
}

// bKeysOf returns the sorted distinct second-position keys of a as a
// sub-slice (nil when absent). Callers must not modify it.
func (p *permIndex) bKeysOf(a rdf.ID) []rdf.ID {
	ai, ok := p.findA(a)
	if !ok {
		return nil
	}
	return p.bKeys[p.aOff[ai]:p.aOff[ai+1]]
}

// cSpanOf returns the contiguous third-position span of every triple whose
// first position is a — e.g. for the OSP index, all predicates arriving at
// object a. The span is sorted per (a,b) group, not globally.
func (p *permIndex) cSpanOf(a rdf.ID) []rdf.ID {
	ai, ok := p.findA(a)
	if !ok {
		return nil
	}
	return p.c[p.bOff[p.aOff[ai]]:p.bOff[p.aOff[ai+1]]]
}

// matchA iterates every (b, c) pair of group a in sorted order. fn
// returning false stops the iteration; matchA reports whether iteration
// ran to completion.
func (p *permIndex) matchA(a rdf.ID, fn func(b, c rdf.ID) bool) bool {
	ai, ok := p.findA(a)
	if !ok {
		return true
	}
	for j := int(p.aOff[ai]); j < int(p.aOff[ai+1]); j++ {
		b := p.bKeys[j]
		for _, c := range p.c[p.bOff[j]:p.bOff[j+1]] {
			if !fn(b, c) {
				return false
			}
		}
	}
	return true
}

// permBuilder assembles a permIndex from (a, b, c) tuples arriving in
// strictly increasing lexicographic order.
type permBuilder struct{ idx permIndex }

func newPermBuilder(nTriples int) *permBuilder {
	b := &permBuilder{}
	b.idx.c = make([]rdf.ID, 0, nTriples)
	// Key arrays grow with the number of distinct groups; seeding them at
	// a quarter of the triple count skips most of the append doublings.
	hint := nTriples/4 + 8
	b.idx.aKeys = make([]rdf.ID, 0, hint)
	b.idx.aOff = make([]uint32, 0, hint)
	b.idx.bKeys = make([]rdf.ID, 0, hint)
	b.idx.bOff = make([]uint32, 0, hint)
	return b
}

func (pb *permBuilder) add(a, b, c rdf.ID) {
	idx := &pb.idx
	if n := len(idx.aKeys); n == 0 || idx.aKeys[n-1] != a {
		idx.aKeys = append(idx.aKeys, a)
		idx.aOff = append(idx.aOff, uint32(len(idx.bKeys)))
		idx.bKeys = append(idx.bKeys, b)
		idx.bOff = append(idx.bOff, uint32(len(idx.c)))
	} else if m := len(idx.bKeys); idx.bKeys[m-1] != b {
		idx.bKeys = append(idx.bKeys, b)
		idx.bOff = append(idx.bOff, uint32(len(idx.c)))
	}
	idx.c = append(idx.c, c)
}

func (pb *permBuilder) finish() permIndex {
	pb.idx.aOff = append(pb.idx.aOff, uint32(len(pb.idx.bKeys)))
	pb.idx.bOff = append(pb.idx.bOff, uint32(len(pb.idx.c)))
	return pb.idx
}

// permCursor walks a permIndex's (a, b, c) tuples in sorted order. It
// relies on the invariant that every group is non-empty.
type permCursor struct {
	p          *permIndex
	ai, bi, ci int
}

func (cur *permCursor) valid() bool { return cur.ci < len(cur.p.c) }

func (cur *permCursor) tuple() (a, b, c rdf.ID) {
	return cur.p.aKeys[cur.ai], cur.p.bKeys[cur.bi], cur.p.c[cur.ci]
}

func (cur *permCursor) advance() {
	cur.ci++
	if cur.ci >= len(cur.p.c) {
		return
	}
	if uint32(cur.ci) >= cur.p.bOff[cur.bi+1] {
		cur.bi++
		if uint32(cur.bi) >= cur.p.aOff[cur.ai+1] {
			cur.ai++
		}
	}
}

// keySPO/keyPOS/keyOSP map an encoded triple to the (a, b, c) tuple of the
// corresponding permutation.
func keySPO(e rdf.EncodedTriple) (a, b, c rdf.ID) { return e.S, e.P, e.O }
func keyPOS(e rdf.EncodedTriple) (a, b, c rdf.ID) { return e.P, e.O, e.S }
func keyOSP(e rdf.EncodedTriple) (a, b, c rdf.ID) { return e.O, e.S, e.P }

// cmpIDs3 compares two (a, b, c) tuples lexicographically.
func cmpIDs3(a1, b1, c1, a2, b2, c2 rdf.ID) int {
	switch {
	case a1 != a2:
		if a1 < a2 {
			return -1
		}
		return 1
	case b1 != b2:
		if b1 < b2 {
			return -1
		}
		return 1
	case c1 != c2:
		if c1 < c2 {
			return -1
		}
		return 1
	}
	return 0
}

func cmpSPO(x, y rdf.EncodedTriple) int { return cmpIDs3(x.S, x.P, x.O, y.S, y.P, y.O) }
func cmpPOS(x, y rdf.EncodedTriple) int { return cmpIDs3(x.P, x.O, x.S, y.P, y.O, y.S) }
func cmpOSP(x, y rdf.EncodedTriple) int { return cmpIDs3(x.O, x.S, x.P, y.O, y.S, y.P) }

// buildPerm sorts scratch in the permutation's order and packs it into
// columnar form. scratch must be duplicate-free.
func buildPerm(scratch []rdf.EncodedTriple, cmp func(x, y rdf.EncodedTriple) int, key func(rdf.EncodedTriple) (a, b, c rdf.ID)) permIndex {
	slices.SortFunc(scratch, cmp)
	pb := newPermBuilder(len(scratch))
	for _, e := range scratch {
		pb.add(key(e))
	}
	return pb.finish()
}

// mergePerm linearly merges a base permutation with a sorted,
// duplicate-free delta (sorted by the same permutation order) into a new
// columnar index — O(base+delta), no re-sort.
func mergePerm(base *permIndex, delta []rdf.EncodedTriple, key func(rdf.EncodedTriple) (a, b, c rdf.ID)) permIndex {
	pb := newPermBuilder(len(base.c) + len(delta))
	cur := permCursor{p: base}
	di := 0
	for cur.valid() && di < len(delta) {
		a1, b1, c1 := cur.tuple()
		a2, b2, c2 := key(delta[di])
		if cmpIDs3(a1, b1, c1, a2, b2, c2) < 0 {
			pb.add(a1, b1, c1)
			cur.advance()
		} else {
			pb.add(a2, b2, c2)
			di++
		}
	}
	for ; cur.valid(); cur.advance() {
		pb.add(cur.tuple())
	}
	for ; di < len(delta); di++ {
		pb.add(key(delta[di]))
	}
	return pb.finish()
}

// packBits is the per-position width of the packed sort key: three IDs
// fit one uint64 whenever every ID is below 1<<21 (two million distinct
// terms), which covers everything short of web-scale dictionaries.
const (
	packBits = 21
	packMax  = rdf.ID(1) << packBits
	packMask = uint64(packMax - 1)
)

// buildPermPacked builds one permutation by packing each (a, b, c) tuple
// into a uint64 and sorting the plain integer slice — far faster than a
// comparator sort over structs, and the sorted keys unpack straight into
// the columnar builder.
func buildPermPacked(log []rdf.EncodedTriple, scratch []uint64, key func(rdf.EncodedTriple) (a, b, c rdf.ID)) permIndex {
	for i, e := range log {
		a, b, c := key(e)
		scratch[i] = uint64(a)<<(2*packBits) | uint64(b)<<packBits | uint64(c)
	}
	slices.Sort(scratch)
	pb := newPermBuilder(len(log))
	for _, p := range scratch {
		pb.add(rdf.ID(p>>(2*packBits)), rdf.ID(p>>packBits)&rdf.ID(packMask), rdf.ID(p)&rdf.ID(packMask))
	}
	return pb.finish()
}

// maxIDIn returns the largest ID appearing in the log.
func maxIDIn(log []rdf.EncodedTriple) rdf.ID {
	var m rdf.ID
	for _, e := range log {
		if e.S > m {
			m = e.S
		}
		if e.P > m {
			m = e.P
		}
		if e.O > m {
			m = e.O
		}
	}
	return m
}

// columnar is the frozen index core of a snapshot: the three permutation
// indexes as flat sorted arrays covering one duplicate-free triple log
// prefix. It is immutable after construction.
type columnar struct {
	n   int // triples covered
	spo permIndex
	pos permIndex
	osp permIndex
	// stats is the planner statistics bundle, computed once per base
	// build (see planstats.go) and immutable like everything else here.
	stats *PlanStats
}

// buildColumnar packs the (duplicate-free) log into the three columnar
// permutation indexes with one sort per permutation. The three builds are
// independent and run concurrently; each uses packed-uint64 keys when the
// ID space allows, falling back to comparator sorts otherwise.
func buildColumnar(log []rdf.EncodedTriple) *columnar {
	col := &columnar{n: len(log)}
	packed := maxIDIn(log) < packMax
	build := func(idx *permIndex, cmp func(x, y rdf.EncodedTriple) int, key func(rdf.EncodedTriple) (a, b, c rdf.ID)) {
		if packed {
			*idx = buildPermPacked(log, make([]uint64, len(log)), key)
			return
		}
		scratch := make([]rdf.EncodedTriple, len(log))
		copy(scratch, log)
		*idx = buildPerm(scratch, cmp, key)
	}
	if len(log) < 1<<14 {
		build(&col.spo, cmpSPO, keySPO)
		build(&col.pos, cmpPOS, keyPOS)
		build(&col.osp, cmpOSP, keyOSP)
	} else {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); build(&col.pos, cmpPOS, keyPOS) }()
		go func() { defer wg.Done(); build(&col.osp, cmpOSP, keyOSP) }()
		build(&col.spo, cmpSPO, keySPO)
		wg.Wait()
	}
	// Planner statistics are part of every base build: one linear pass,
	// far cheaper than the three sorts above.
	col.stats = computePlanStats(col)
	return col
}

// containsID reports membership via the SPO index.
func (c *columnar) containsID(sub, pred, obj rdf.ID) bool {
	return containsSorted(c.spo.postings(sub, pred), obj)
}

// match iterates the columnar triples matching the pattern (at least one
// position bound); reports whether iteration ran to completion.
func (c *columnar) match(sub, pred, obj rdf.ID, fn func(rdf.EncodedTriple) bool) bool {
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		if c.containsID(sub, pred, obj) {
			return fn(rdf.EncodedTriple{S: sub, P: pred, O: obj})
		}
	case sub != rdf.NoID && pred != rdf.NoID:
		for _, o := range c.spo.postings(sub, pred) {
			if !fn(rdf.EncodedTriple{S: sub, P: pred, O: o}) {
				return false
			}
		}
	case sub != rdf.NoID && obj != rdf.NoID:
		for _, p := range c.osp.postings(obj, sub) {
			if !fn(rdf.EncodedTriple{S: sub, P: p, O: obj}) {
				return false
			}
		}
	case pred != rdf.NoID && obj != rdf.NoID:
		for _, sid := range c.pos.postings(pred, obj) {
			if !fn(rdf.EncodedTriple{S: sid, P: pred, O: obj}) {
				return false
			}
		}
	case sub != rdf.NoID:
		return c.spo.matchA(sub, func(p, o rdf.ID) bool {
			return fn(rdf.EncodedTriple{S: sub, P: p, O: o})
		})
	case pred != rdf.NoID:
		return c.pos.matchA(pred, func(o, sid rdf.ID) bool {
			return fn(rdf.EncodedTriple{S: sid, P: pred, O: o})
		})
	default: // obj bound
		return c.osp.matchA(obj, func(sid, p rdf.ID) bool {
			return fn(rdf.EncodedTriple{S: sid, P: p, O: obj})
		})
	}
	return true
}

// card counts matches from index offsets — O(log n), never a walk.
func (c *columnar) card(sub, pred, obj rdf.ID) int {
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		if c.containsID(sub, pred, obj) {
			return 1
		}
		return 0
	case sub != rdf.NoID && pred != rdf.NoID:
		return len(c.spo.postings(sub, pred))
	case pred != rdf.NoID && obj != rdf.NoID:
		return len(c.pos.postings(pred, obj))
	case sub != rdf.NoID && obj != rdf.NoID:
		return len(c.osp.postings(obj, sub))
	case sub != rdf.NoID:
		return c.spo.cardA(sub)
	case pred != rdf.NoID:
		return c.pos.cardA(pred)
	case obj != rdf.NoID:
		return c.osp.cardA(obj)
	default:
		return c.n
	}
}

// postings returns the zero-copy posting list for a single-wildcard
// pattern shape; ok is false unless exactly one position is rdf.NoID.
func (c *columnar) postings(sub, pred, obj rdf.ID) (ids []rdf.ID, ok bool) {
	switch {
	case sub != rdf.NoID && pred != rdf.NoID && obj == rdf.NoID:
		return c.spo.postings(sub, pred), true
	case sub == rdf.NoID && pred != rdf.NoID && obj != rdf.NoID:
		return c.pos.postings(pred, obj), true
	case sub != rdf.NoID && pred == rdf.NoID && obj != rdf.NoID:
		return c.osp.postings(obj, sub), true
	default:
		return nil, false
	}
}

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(ids []rdf.ID) []rdf.ID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// containsSorted reports whether id occurs in the sorted posting list.
func containsSorted(list []rdf.ID, id rdf.ID) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	return i < len(list) && list[i] == id
}
