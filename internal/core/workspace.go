package core

import (
	"context"
	"fmt"

	"elinda/internal/incremental"
	"elinda/internal/rdf"
)

// Workspace manages the sequence of panes a user opens during a session
// (Section 3.2: "the user may open additional panes one beneath the
// other"). Each pane remembers how it was reached, giving the colored
// breadcrumb trails of Figure 2.
type Workspace struct {
	expl  *Explorer
	panes []*WorkspacePane
}

// WorkspacePane is one stacked pane plus its provenance.
type WorkspacePane struct {
	// Pane is the pane itself.
	Pane *Pane
	// Origin describes how the pane was opened (root, drill-down, search,
	// connections, filter).
	Origin string
	// Parent is the index of the pane this one was opened from (-1 for
	// the initial pane).
	Parent int
}

// NewWorkspace opens a workspace with the initial root pane.
func NewWorkspace(expl *Explorer) *Workspace {
	w := &Workspace{expl: expl}
	w.panes = append(w.panes, &WorkspacePane{
		Pane:   expl.OpenRootPane(),
		Origin: "initial",
		Parent: -1,
	})
	return w
}

// Panes returns the stacked panes in opening order.
func (w *Workspace) Panes() []*WorkspacePane { return w.panes }

// Current returns the most recently opened pane.
func (w *Workspace) Current() *WorkspacePane { return w.panes[len(w.panes)-1] }

// Len returns the number of open panes.
func (w *Workspace) Len() int { return len(w.panes) }

// DrillDown opens a new pane below the current one for a subclass bar of
// its subclass chart (a click on a bar).
func (w *Workspace) DrillDown(label rdf.Term) (*WorkspacePane, error) {
	cur := w.Current()
	chart := cur.Pane.SubclassChart()
	if _, ok := chart.Bar(label); !ok {
		return nil, fmt.Errorf("core: %s is not a subclass bar of pane %q", label, cur.Pane.Title)
	}
	return w.push(w.expl.OpenPane(label), "subclass:"+label.LocalName()), nil
}

// OpenBySearch opens a pane via the autocomplete search box, bypassing the
// drill-down.
func (w *Workspace) OpenBySearch(class rdf.Term) *WorkspacePane {
	return w.push(w.expl.OpenPane(class), "search:"+class.LocalName())
}

// OpenConnections opens a pane on the narrowed object set of a
// Connections-tab bar (Section 3.4's "new pane ... focusing on the
// aforementioned set of scientists").
func (w *Workspace) OpenConnections(prop rdf.Term, class rdf.Term, incoming bool) (*WorkspacePane, error) {
	cur := w.Current()
	chart, err := cur.Pane.ConnectionsChart(prop, incoming)
	if err != nil {
		return nil, err
	}
	bar, ok := chart.Bar(class)
	if !ok {
		return nil, fmt.Errorf("core: class %s not among the %s connections", class, prop)
	}
	return w.push(w.expl.OpenPaneForBar(bar.Bar), fmt.Sprintf("connect:%s→%s", prop.LocalName(), class.LocalName())), nil
}

// OpenFiltered opens a pane on Sf, the current set narrowed by filters
// (the filter expansion).
func (w *Workspace) OpenFiltered(filters []TableFilter) *WorkspacePane {
	cur := w.Current()
	sf := cur.Pane.FilterExpansion(filters)
	return w.push(w.expl.OpenPaneForBar(sf), "filter")
}

// Close removes the most recent pane; the initial pane cannot be closed.
// It reports whether a pane was removed.
func (w *Workspace) Close() bool {
	if len(w.panes) <= 1 {
		return false
	}
	w.panes = w.panes[:len(w.panes)-1]
	return true
}

// Trail renders the breadcrumb trail: pane titles joined by arrows.
func (w *Workspace) Trail() string {
	out := ""
	for i, p := range w.panes {
		if i > 0 {
			out += " → "
		}
		out += p.Pane.Title
	}
	return out
}

func (w *Workspace) push(p *Pane, origin string) *WorkspacePane {
	wp := &WorkspacePane{Pane: p, Origin: origin, Parent: len(w.panes) - 1}
	w.panes = append(w.panes, wp)
	return wp
}

// --- Incremental chart streaming (Section 4 wired into the UI model) ---

// IncrementalOptions configure streaming chart construction.
type IncrementalOptions struct {
	// ChunkSize is the administrator's N.
	ChunkSize int
	// MaxRounds is the administrator's k (0 = run to completion).
	MaxRounds int
	// Workers is the parallel shard count per round: each chunk is split
	// into Workers contiguous shards aggregated concurrently and merged.
	// Values <= 1 evaluate sequentially.
	Workers int
}

// config converts the options to the evaluator's configuration.
func (o IncrementalOptions) config() incremental.Config {
	return incremental.Config{ChunkSize: o.ChunkSize, MaxRounds: o.MaxRounds, Workers: o.Workers}
}

// StreamPropertyChart computes the pane's property chart incrementally,
// invoking onPartial after every chunk with the chart built from the
// counts so far. The final chart is returned. Partial charts are sorted
// like final ones, so the frontend can render them directly — "effective
// latency for user interaction".
func (p *Pane) StreamPropertyChart(ctx context.Context, incoming bool, opts IncrementalOptions, onPartial func(*Chart, incremental.Snapshot) bool) (*Chart, error) {
	st := p.expl.st
	opts = p.expl.fillIncremental(opts)
	agg := incremental.NewPropertyAggregator(p.nonNilSet(), incoming)

	kind := PropertyExpansion
	if incoming {
		kind = IncomingPropertyExpansion
	}
	build := func() *Chart {
		triples := agg.TripleCounts()
		chart := &Chart{Kind: kind, SourceLabel: p.bar.Label, SourceSize: p.bar.Len()}
		denom := float64(p.bar.Len())
		for prop, n := range agg.Counts() {
			propTerm := st.Dict().Term(prop)
			cb := ChartBar{
				Bar: &Bar{
					Label:   propTerm,
					Type:    PropertyBar,
					pattern: p.bar.pattern.withProperty(propTerm, incoming),
				},
				LabelText: st.Label(prop),
				Count:     n,
				Triples:   triples[prop],
			}
			if denom > 0 {
				cb.Coverage = float64(n) / denom
			}
			chart.Bars = append(chart.Bars, cb)
		}
		sortBars(chart.Bars)
		return chart
	}
	return p.streamChart(ctx, opts, agg, build, onPartial)
}
