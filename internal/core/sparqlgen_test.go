package core

import (
	"context"
	"strconv"
	"testing"

	"elinda/internal/datagen"
	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// genExplorer builds an explorer over the synthetic DBpedia-like dataset
// (richer than the hand fixture: deep hierarchy, many properties).
func genExplorer(t *testing.T) *Explorer {
	t.Helper()
	ds := datagen.Generate(datagen.Config{Seed: 8, Persons: 400, PoliticianProps: 50, ErrorRate: 0.05})
	st, err := ds.NewStore()
	if err != nil {
		t.Fatal(err)
	}
	return NewExplorer(st)
}

// runCounts executes a generated chart query and returns label → count.
func runCounts(t *testing.T, e *Explorer, src, labelVar, countVar string) map[rdf.Term]int {
	t.Helper()
	res, err := sparql.NewEngine(e.Store()).Query(context.Background(), src)
	if err != nil {
		t.Fatalf("generated query failed: %v\n%s", err, src)
	}
	out := map[rdf.Term]int{}
	for _, row := range res.Rows {
		n, err := strconv.Atoi(row[countVar].Value)
		if err != nil {
			t.Fatalf("count value %q: %v", row[countVar].Value, err)
		}
		out[row[labelVar]] = n
	}
	return out
}

// TestSubclassChartSPARQLEquivalence: the generated subclass-chart query
// must produce exactly the chart the explorer computes directly.
func TestSubclassChartSPARQLEquivalence(t *testing.T) {
	e := genExplorer(t)
	for _, class := range []rdf.Term{rdf.OWLThingIRI, datagen.Ont("Agent"), datagen.Ont("Person")} {
		direct := e.subclassExpansion(e.ClassBar(class))
		got := runCounts(t, e, SubclassChartSPARQL(class), "c", "n")
		// The SPARQL counts only non-empty bars; compare against those.
		want := map[rdf.Term]int{}
		for _, b := range direct.Bars {
			if b.Count > 0 {
				want[b.Bar.Label] = b.Count
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d SPARQL bars vs %d direct bars", class.LocalName(), len(got), len(want))
		}
		for label, n := range want {
			if got[label] != n {
				t.Errorf("%s / %s: SPARQL %d, direct %d", class.LocalName(), label.LocalName(), got[label], n)
			}
		}
	}
}

// TestPropertyExpansionSPARQLEquivalence: the paper's Section 4 query
// must agree with the direct property expansion for both directions.
func TestPropertyExpansionSPARQLEquivalence(t *testing.T) {
	e := genExplorer(t)
	class := datagen.Ont("Philosopher")
	bar := e.ClassBar(class)
	for _, incoming := range []bool{false, true} {
		direct := e.propertyExpansion(bar, incoming)
		got := runCounts(t, e, PropertyExpansionSPARQL(class, incoming), "p", "count")
		if len(got) != len(direct.Bars) {
			t.Fatalf("incoming=%v: %d SPARQL properties vs %d direct", incoming, len(got), len(direct.Bars))
		}
		for _, b := range direct.Bars {
			if got[b.Bar.Label] != b.Count {
				t.Errorf("incoming=%v %s: SPARQL %d, direct %d",
					incoming, b.LabelText, got[b.Bar.Label], b.Count)
			}
		}
	}
}

// TestObjectExpansionSPARQLEquivalence: the generated connections query
// must agree with the ConnectionsChart.
func TestObjectExpansionSPARQLEquivalence(t *testing.T) {
	e := genExplorer(t)
	class := datagen.Ont("Philosopher")
	prop := datagen.Ont("influencedBy")
	pane := e.OpenPane(class)
	direct, err := pane.ConnectionsChart(prop, false)
	if err != nil {
		t.Fatal(err)
	}
	got := runCounts(t, e, ObjectExpansionSPARQL(class, prop, false), "t", "n")
	if len(got) != len(direct.Bars) {
		t.Fatalf("%d SPARQL classes vs %d direct bars", len(got), len(direct.Bars))
	}
	for _, b := range direct.Bars {
		if got[b.Bar.Label] != b.Count {
			t.Errorf("%s: SPARQL %d, direct %d", b.LabelText, got[b.Bar.Label], b.Count)
		}
	}
}

// TestObjectExpansionSPARQLIncoming covers the ingoing variant (works
// entering philosophers).
func TestObjectExpansionSPARQLIncoming(t *testing.T) {
	e := genExplorer(t)
	class := datagen.Ont("Philosopher")
	prop := datagen.Ont("author")
	pane := e.OpenPane(class)
	direct, err := pane.ConnectionsChart(prop, true)
	if err != nil {
		t.Fatal(err)
	}
	got := runCounts(t, e, ObjectExpansionSPARQL(class, prop, true), "t", "n")
	for _, b := range direct.Bars {
		if got[b.Bar.Label] != b.Count {
			t.Errorf("%s: SPARQL %d, direct %d", b.LabelText, got[b.Bar.Label], b.Count)
		}
	}
}

// TestDatasetStatsSPARQL: the "very first queries" return the same totals
// as ComputeStats.
func TestDatasetStatsSPARQL(t *testing.T) {
	e := genExplorer(t)
	stats := e.Store().ComputeStats()
	triplesQ, classesQ := DatasetStatsSPARQL()
	eng := sparql.NewEngine(e.Store())

	res, err := eng.Query(context.Background(), triplesQ)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0]["n"].Value; got != strconv.Itoa(stats.Triples) {
		t.Errorf("triples: SPARQL %s, stats %d", got, stats.Triples)
	}

	res, err = eng.Query(context.Background(), classesQ)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0]["n"].Value; got != strconv.Itoa(stats.DeclaredClasses) {
		t.Errorf("classes: SPARQL %s, stats %d", got, stats.DeclaredClasses)
	}
}

// TestPaperQueryDetectedByDecomposer: the query string core generates is
// exactly the shape the decomposer detects — the contract tying the
// explorer to the fast path.
func TestPaperQueryDetectedByDecomposer(t *testing.T) {
	e := genExplorer(t)
	for _, incoming := range []bool{false, true} {
		src := PropertyExpansionSPARQL(rdf.OWLThingIRI, incoming)
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, ok := e.Decomposer().TryExecute(q)
		if !ok {
			t.Fatalf("incoming=%v: generated query not detected:\n%s", incoming, src)
		}
		if len(res.Rows) == 0 {
			t.Errorf("incoming=%v: decomposed result empty", incoming)
		}
	}
}
