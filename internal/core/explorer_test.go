package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"elinda/internal/decomposer"
	"elinda/internal/rdf"
	"elinda/internal/sparql"
	"elinda/internal/store"
)

func ont(s string) rdf.Term { return rdf.NewIRI("http://t/onto/" + s) }
func res(s string) rdf.Term { return rdf.NewIRI("http://t/res/" + s) }

// testFixture builds the running example of the paper:
//
//	owl:Thing ← Agent ← Person ← Philosopher
//	          ← Place
//	philosophers influencedBy scientists/philosophers; born in places.
func testFixture(t *testing.T) *Explorer {
	t.Helper()
	st := store.New(256)
	var ts []rdf.Triple
	sub := func(c string, parent rdf.Term) {
		ts = append(ts,
			rdf.Triple{S: ont(c), P: rdf.TypeIRI, O: rdf.OWLClassIRI},
			rdf.Triple{S: ont(c), P: rdf.SubClassOfIRI, O: parent})
	}
	ts = append(ts, rdf.Triple{S: rdf.OWLThingIRI, P: rdf.TypeIRI, O: rdf.OWLClassIRI})
	sub("Agent", rdf.OWLThingIRI)
	sub("Place", rdf.OWLThingIRI)
	sub("Person", ont("Agent"))
	sub("Philosopher", ont("Person"))
	sub("Scientist", ont("Person"))

	typ := func(inst rdf.Term, classes ...rdf.Term) {
		for _, c := range classes {
			ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: c})
		}
		ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: rdf.OWLThingIRI})
	}
	phil := func(name string) rdf.Term {
		p := res(name)
		typ(p, ont("Philosopher"), ont("Person"), ont("Agent"))
		return p
	}
	sci := func(name string) rdf.Term {
		s := res(name)
		typ(s, ont("Scientist"), ont("Person"), ont("Agent"))
		return s
	}
	plato := phil("plato")
	aristotle := phil("aristotle")
	kant := phil("kant")
	newton := sci("newton")
	euler := sci("euler")

	vienna := res("vienna")
	athens := res("athens")
	typ(vienna, ont("Place"))
	typ(athens, ont("Place"))

	add := func(s, p, o rdf.Term) { ts = append(ts, rdf.Triple{S: s, P: p, O: o}) }
	add(plato, ont("influencedBy"), res("socrates"))
	add(aristotle, ont("influencedBy"), plato)
	add(kant, ont("influencedBy"), newton)
	add(kant, ont("influencedBy"), euler)
	add(plato, ont("birthPlace"), athens)
	add(kant, ont("birthPlace"), vienna)
	add(aristotle, ont("birthPlace"), athens)
	add(plato, rdf.LabelIRI, rdf.NewLangLiteral("Plato", "en"))
	add(res("work1"), ont("author"), plato)
	add(res("work2"), ont("author"), kant)

	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	return NewExplorer(st)
}

func TestRootBarIsOwlThing(t *testing.T) {
	e := testFixture(t)
	root := e.RootBar()
	if root.Label != rdf.OWLThingIRI {
		t.Errorf("root label = %v", root.Label)
	}
	// Every typed instance carries owl:Thing, so |S| = 9 instances
	// (3 phil + 2 sci + 2 places ... plus none for socrates/works: they
	// are untyped).
	if root.Len() != 7 {
		t.Errorf("|S| = %d, want 7", root.Len())
	}
}

func TestSubclassExpansionSemantics(t *testing.T) {
	e := testFixture(t)
	chart, err := e.Expand(e.RootBar(), SubclassExpansion)
	if err != nil {
		t.Fatal(err)
	}
	if chart.Kind != SubclassExpansion {
		t.Errorf("kind = %v", chart.Kind)
	}
	// Two bars: Agent (5) and Place (2), sorted by decreasing height.
	if len(chart.Bars) != 2 {
		t.Fatalf("bars = %d, want 2", len(chart.Bars))
	}
	if chart.Bars[0].LabelText != "Agent" || chart.Bars[0].Count != 5 {
		t.Errorf("bar 0: %s=%d", chart.Bars[0].LabelText, chart.Bars[0].Count)
	}
	if chart.Bars[1].LabelText != "Place" || chart.Bars[1].Count != 2 {
		t.Errorf("bar 1: %s=%d", chart.Bars[1].LabelText, chart.Bars[1].Count)
	}
}

// TestSubclassExpansionInvariant: every bar's set is a subset of the
// parent's, and counts equal the type-filtered intersection.
func TestSubclassExpansionInvariant(t *testing.T) {
	e := testFixture(t)
	parent := e.ClassBar(ont("Person"))
	chart := e.subclassExpansion(parent)
	parentSet := idSet(parent.Set)
	for _, b := range chart.Bars {
		if b.Count != len(b.Bar.Set) {
			t.Errorf("%s: count %d != |set| %d", b.LabelText, b.Count, len(b.Bar.Set))
		}
		for _, id := range b.Bar.Set {
			if _, in := parentSet[id]; !in {
				t.Errorf("%s: member %v outside parent set", b.LabelText, id)
			}
		}
	}
}

func TestPropertyExpansionOutgoing(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	chart := e.propertyExpansion(phil, false)
	get := func(name string) ChartBar {
		b, ok := chart.Bar(ont(name))
		if !ok {
			t.Fatalf("property %s missing", name)
		}
		return *b
	}
	inf := get("influencedBy")
	if inf.Count != 3 || inf.Triples != 4 {
		t.Errorf("influencedBy = count %d triples %d, want 3/4", inf.Count, inf.Triples)
	}
	if inf.Coverage != 1.0 {
		t.Errorf("influencedBy coverage = %f", inf.Coverage)
	}
	bp := get("birthPlace")
	if bp.Count != 3 {
		t.Errorf("birthPlace count = %d", bp.Count)
	}
	// rdfs:label covers only plato: coverage 1/3.
	lbl, ok := chart.Bar(rdf.LabelIRI)
	if !ok || lbl.Count != 1 {
		t.Errorf("label bar: %+v ok=%v", lbl, ok)
	}
}

func TestPropertyExpansionIncoming(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	chart := e.propertyExpansion(phil, true)
	// author enters plato and kant; influencedBy enters plato (from
	// aristotle).
	author, ok := chart.Bar(ont("author"))
	if !ok || author.Count != 2 || author.Triples != 2 {
		t.Errorf("author: %+v ok=%v", author, ok)
	}
	inf, ok := chart.Bar(ont("influencedBy"))
	if !ok || inf.Count != 1 {
		t.Errorf("incoming influencedBy: %+v ok=%v", inf, ok)
	}
}

func TestPropertyExpansionMatchesDecomposer(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	philID, _ := e.st.Dict().Lookup(ont("Philosopher"))
	for _, incoming := range []bool{false, true} {
		chart := e.propertyExpansion(phil, incoming)
		dir := dirOf(incoming)
		stats := e.dec.PropertyStats(philID, dir)
		if len(chart.Bars) != len(stats) {
			t.Fatalf("incoming=%v: %d bars vs %d decomposer stats", incoming, len(chart.Bars), len(stats))
		}
		byProp := map[rdf.ID]ChartBar{}
		for _, b := range chart.Bars {
			id, _ := e.st.Dict().Lookup(b.Bar.Label)
			byProp[id] = b
		}
		for _, s := range stats {
			b, ok := byProp[s.Property]
			if !ok || b.Count != s.Subjects || b.Triples != s.Triples {
				t.Errorf("incoming=%v property %v: chart (%d,%d) vs decomposer (%d,%d)",
					incoming, s.Property, b.Count, b.Triples, s.Subjects, s.Triples)
			}
		}
	}
}

func TestObjectExpansion(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	propChart := e.propertyExpansion(phil, false)
	infBar, ok := propChart.Bar(ont("influencedBy"))
	if !ok {
		t.Fatal("influencedBy missing")
	}
	chart, err := e.Expand(infBar.Bar, ObjectExpansion)
	if err != nil {
		t.Fatal(err)
	}
	// Objects: socrates (untyped), plato (Philosopher+Person+Agent+Thing),
	// newton+euler (Scientist+Person+Agent+Thing).
	byClass := map[string]int{}
	for _, b := range chart.Bars {
		byClass[b.LabelText] = b.Count
	}
	if byClass["Scientist"] != 2 {
		t.Errorf("Scientist bar = %d, want 2", byClass["Scientist"])
	}
	if byClass["Philosopher"] != 1 {
		t.Errorf("Philosopher bar = %d, want 1", byClass["Philosopher"])
	}
	if byClass["Person"] != 3 {
		t.Errorf("Person bar = %d, want 3", byClass["Person"])
	}
}

func TestObjectExpansionIncoming(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	propChart := e.propertyExpansion(phil, true)
	authorBar, ok := propChart.Bar(ont("author"))
	if !ok {
		t.Fatal("author missing")
	}
	chart, err := e.Expand(authorBar.Bar, IncomingObjectExpansion)
	if err != nil {
		t.Fatal(err)
	}
	// works are untyped: no bars.
	if len(chart.Bars) != 0 {
		t.Errorf("untyped incoming objects produced %d bars", len(chart.Bars))
	}
}

func TestExpandApplicability(t *testing.T) {
	e := testFixture(t)
	classBar := e.ClassBar(ont("Philosopher"))
	propChart := e.propertyExpansion(classBar, false)
	propBar, _ := propChart.Bar(ont("influencedBy"))

	if _, err := e.Expand(propBar.Bar, SubclassExpansion); err == nil {
		t.Error("subclass expansion on property bar should fail")
	}
	if _, err := e.Expand(propBar.Bar, PropertyExpansion); err == nil {
		t.Error("property expansion on property bar should fail")
	}
	if _, err := e.Expand(classBar, ObjectExpansion); err == nil {
		t.Error("object expansion on class bar should fail")
	}
	if _, err := e.Expand(classBar, FilterExpansion); err == nil {
		t.Error("filter is not chart-producing via Expand")
	}
}

func TestFilterByPropertyValue(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	vienna := e.FilterByPropertyValue(phil, ont("birthPlace"), res("vienna"))
	if vienna.Len() != 1 {
		t.Fatalf("philosophers born in vienna = %d, want 1", vienna.Len())
	}
	term := e.st.Dict().Term(vienna.Set[0])
	if term != res("kant") {
		t.Errorf("filtered member = %v, want kant", term)
	}
	// The generated SPARQL must reproduce the same set.
	assertSPARQLSet(t, e, vienna)
}

func TestBarSPARQLReproducesSet(t *testing.T) {
	e := testFixture(t)
	// A multi-hop bar: Philosopher → influencedBy → objects of class
	// Scientist.
	phil := e.ClassBar(ont("Philosopher"))
	propChart := e.propertyExpansion(phil, false)
	infBar, _ := propChart.Bar(ont("influencedBy"))
	chart, err := e.Expand(infBar.Bar, ObjectExpansion)
	if err != nil {
		t.Fatal(err)
	}
	sciBar, ok := chart.Bar(ont("Scientist"))
	if !ok {
		t.Fatal("Scientist bar missing")
	}
	assertSPARQLSet(t, e, sciBar.Bar)
	// Also validate the intermediate bars.
	assertSPARQLSet(t, e, phil)
	assertSPARQLSet(t, e, infBar.Bar)
}

// assertSPARQLSet executes the bar's generated SPARQL and compares the
// result set with the materialized bar set.
func assertSPARQLSet(t *testing.T, e *Explorer, b *Bar) {
	t.Helper()
	src := b.SPARQL()
	if src == "" {
		t.Fatal("empty SPARQL")
	}
	res, err := sparql.NewEngine(e.st).Query(context.Background(), src)
	if err != nil {
		t.Fatalf("generated SPARQL failed: %v\n%s", err, src)
	}
	if len(res.Vars) != 1 {
		t.Fatalf("generated SPARQL projects %d vars", len(res.Vars))
	}
	v := res.Vars[0]
	got := map[rdf.Term]struct{}{}
	for _, row := range res.Rows {
		got[row[v]] = struct{}{}
	}
	want := map[rdf.Term]struct{}{}
	for _, id := range b.Set {
		want[e.st.Dict().Term(id)] = struct{}{}
	}
	if len(got) != len(want) {
		t.Fatalf("SPARQL set size %d != bar set size %d\n%s", len(got), len(want), src)
	}
	for term := range want {
		if _, ok := got[term]; !ok {
			t.Fatalf("SPARQL set missing %v\n%s", term, src)
		}
	}
}

// TestExpansionSetInvariantsRandom fuzzes the core invariants on random
// graphs: bar sets are subsets of their sources, counts match set sizes,
// and bars are sorted by decreasing count.
func TestExpansionSetInvariantsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		st := store.New(512)
		var ts []rdf.Triple
		ts = append(ts, rdf.Triple{S: rdf.OWLThingIRI, P: rdf.TypeIRI, O: rdf.OWLClassIRI})
		nClasses := 2 + r.Intn(4)
		for c := 0; c < nClasses; c++ {
			ts = append(ts, rdf.Triple{S: ont(fmt.Sprintf("C%d", c)), P: rdf.SubClassOfIRI, O: rdf.OWLThingIRI})
		}
		nInst := 20 + r.Intn(50)
		for i := 0; i < nInst; i++ {
			inst := res(fmt.Sprintf("i%d", i))
			c := ont(fmt.Sprintf("C%d", r.Intn(nClasses)))
			ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: c})
			ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: rdf.OWLThingIRI})
			for j := 0; j < r.Intn(4); j++ {
				ts = append(ts, rdf.Triple{
					S: inst,
					P: ont(fmt.Sprintf("p%d", r.Intn(3))),
					O: res(fmt.Sprintf("i%d", r.Intn(nInst))),
				})
			}
		}
		st.Load(ts)
		e := NewExplorer(st)
		root := e.RootBar()

		subChart := e.subclassExpansion(root)
		assertChartInvariants(t, subChart, root)

		propChart := e.propertyExpansion(root, false)
		assertChartInvariants(t, propChart, root)

		for _, pb := range propChart.Bars {
			objChart, err := e.Expand(pb.Bar, ObjectExpansion)
			if err != nil {
				t.Fatal(err)
			}
			// Object expansion bars contain objects, not members of S;
			// only check sortedness and count consistency.
			for _, b := range objChart.Bars {
				if b.Count != len(b.Bar.Set) {
					t.Fatalf("object bar count %d != set %d", b.Count, len(b.Bar.Set))
				}
			}
			assertSorted(t, objChart)
		}
	}
}

func assertChartInvariants(t *testing.T, c *Chart, source *Bar) {
	t.Helper()
	srcSet := idSet(source.Set)
	for _, b := range c.Bars {
		if b.Count != len(b.Bar.Set) {
			t.Fatalf("count %d != |set| %d", b.Count, len(b.Bar.Set))
		}
		for _, id := range b.Bar.Set {
			if _, in := srcSet[id]; !in {
				t.Fatalf("bar %s member outside source set", b.LabelText)
			}
		}
	}
	assertSorted(t, c)
}

func assertSorted(t *testing.T, c *Chart) {
	t.Helper()
	if !sort.SliceIsSorted(c.Bars, func(i, j int) bool {
		if c.Bars[i].Count != c.Bars[j].Count {
			return c.Bars[i].Count > c.Bars[j].Count
		}
		return c.Bars[i].LabelText < c.Bars[j].LabelText
	}) {
		t.Fatal("bars not sorted by decreasing count")
	}
}

func TestChartThresholdAndTop(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	chart := e.propertyExpansion(phil, false)
	full := len(chart.Bars)
	cut := chart.Threshold(0.5)
	if len(cut.Bars) >= full {
		t.Errorf("threshold did not remove bars: %d -> %d", full, len(cut.Bars))
	}
	for _, b := range cut.Bars {
		if b.Coverage < 0.5 {
			t.Errorf("bar %s below threshold survived", b.LabelText)
		}
	}
	top := chart.Top(2)
	if len(top.Bars) != 2 {
		t.Errorf("Top(2) = %d bars", len(top.Bars))
	}
	if got := chart.Top(100); len(got.Bars) != full {
		t.Errorf("Top(100) = %d bars, want %d", len(got.Bars), full)
	}
}

func TestVirtualRootForRootlessData(t *testing.T) {
	st := store.New(32)
	st.Load([]rdf.Triple{
		{S: ont("Amenity"), P: rdf.TypeIRI, O: rdf.RDFSClassIRI},
		{S: ont("Highway"), P: rdf.TypeIRI, O: rdf.RDFSClassIRI},
		{S: res("n1"), P: rdf.TypeIRI, O: ont("Amenity")},
		{S: res("n2"), P: rdf.TypeIRI, O: ont("Highway")},
		{S: res("n3"), P: rdf.TypeIRI, O: ont("Highway")},
	})
	e := NewExplorer(st)
	root := e.RootBar()
	if !root.Label.IsZero() {
		t.Errorf("virtual root should have zero label, got %v", root.Label)
	}
	if root.Len() != 3 {
		t.Errorf("virtual root |S| = %d, want 3", root.Len())
	}
	chart := e.subclassExpansion(root)
	if len(chart.Bars) != 2 {
		t.Fatalf("rootless chart bars = %d, want 2", len(chart.Bars))
	}
	if chart.Bars[0].LabelText != "Highway" || chart.Bars[0].Count != 2 {
		t.Errorf("top bar: %s=%d", chart.Bars[0].LabelText, chart.Bars[0].Count)
	}
}

func dirOf(incoming bool) decomposer.Direction {
	if incoming {
		return decomposer.Incoming
	}
	return decomposer.Outgoing
}
