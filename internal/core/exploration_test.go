package core

import (
	"strings"
	"testing"

	"elinda/internal/rdf"
)

func TestStartExplorationInitialChart(t *testing.T) {
	e := testFixture(t)
	x := e.StartExploration()
	b0 := x.Initial()
	if b0.Kind != SubclassExpansion {
		t.Errorf("B0 kind = %v", b0.Kind)
	}
	if b0.SourceLabel != rdf.OWLThingIRI {
		t.Errorf("B0 source = %v", b0.SourceLabel)
	}
	if x.Current() != b0 {
		t.Error("Current should be B0 before any step")
	}
}

// TestPaperExplorationPath walks the paper's Figure 2 path:
// owl:Thing → Agent → Person → Philosopher, then influencedBy connections.
func TestPaperExplorationPath(t *testing.T) {
	e := testFixture(t)
	x := e.StartExploration()

	if _, err := x.Expand(ont("Agent"), SubclassExpansion); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Expand(ont("Person"), SubclassExpansion); err != nil {
		t.Fatal(err)
	}
	philChart, err := x.Expand(ont("Philosopher"), SubclassExpansion)
	if err != nil {
		t.Fatal(err)
	}
	if len(philChart.Bars) != 0 {
		t.Errorf("Philosopher has no subclasses, chart has %d bars", len(philChart.Bars))
	}
	if got := x.Breadcrumbs(); got != "Thing → Agent → Person → Philosopher" {
		t.Errorf("breadcrumbs = %q", got)
	}
	if len(x.Steps()) != 3 {
		t.Errorf("steps = %d", len(x.Steps()))
	}
}

func TestExplorationPropertyThenObject(t *testing.T) {
	e := testFixture(t)
	x := e.StartExplorationAt(ont("Person"))
	if _, err := x.Expand(ont("Philosopher"), PropertyExpansion); err != nil {
		t.Fatal(err)
	}
	chart, err := x.Expand(ont("influencedBy"), ObjectExpansion)
	if err != nil {
		t.Fatal(err)
	}
	sci, ok := chart.Bar(ont("Scientist"))
	if !ok || sci.Count != 2 {
		t.Errorf("scientists influencing philosophers: %+v ok=%v", sci, ok)
	}
	if got := x.Breadcrumbs(); got != "Person → Philosopher → influencedBy" {
		t.Errorf("breadcrumbs = %q", got)
	}
}

func TestExpandRejectsUnknownLabel(t *testing.T) {
	e := testFixture(t)
	x := e.StartExploration()
	if _, err := x.Expand(ont("NotThere"), SubclassExpansion); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := x.ExpandByText("NotThere", SubclassExpansion); err == nil {
		t.Error("unknown text label accepted")
	}
}

func TestExpandRejectsInapplicableExpansion(t *testing.T) {
	e := testFixture(t)
	x := e.StartExploration()
	// Agent is a class bar: object expansion is inapplicable.
	if _, err := x.Expand(ont("Agent"), ObjectExpansion); err == nil {
		t.Error("object expansion on class bar accepted")
	}
	// Failed steps must not be recorded.
	if len(x.Steps()) != 0 {
		t.Errorf("failed expansion recorded: %d steps", len(x.Steps()))
	}
}

func TestExpandByText(t *testing.T) {
	e := testFixture(t)
	x := e.StartExploration()
	chart, err := x.ExpandByText("Agent", SubclassExpansion)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Bars) != 1 || chart.Bars[0].LabelText != "Person" {
		t.Errorf("Agent chart: %+v", chart.Bars)
	}
}

func TestBack(t *testing.T) {
	e := testFixture(t)
	x := e.StartExploration()
	x.Expand(ont("Agent"), SubclassExpansion)
	x.Expand(ont("Person"), SubclassExpansion)
	if !x.Back() {
		t.Fatal("Back failed")
	}
	if got := x.Breadcrumbs(); got != "Thing → Agent" {
		t.Errorf("after Back: %q", got)
	}
	x.Back()
	if x.Back() {
		t.Error("Back on empty path should report false")
	}
	if x.Current() != x.Initial() {
		t.Error("after full unwind, current should be B0")
	}
}

func TestBarSPARQLAlongPath(t *testing.T) {
	e := testFixture(t)
	x := e.StartExploration()
	x.Expand(ont("Agent"), SubclassExpansion)
	x.Expand(ont("Person"), SubclassExpansion)
	src, err := x.BarSPARQL(ont("Philosopher"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT DISTINCT ?s", "owl#Thing", "Agent", "Person", "Philosopher"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated SPARQL missing %q:\n%s", want, src)
		}
	}
	if _, err := x.BarSPARQL(ont("Nope")); err == nil {
		t.Error("BarSPARQL for unknown label should error")
	}
}

func TestExplorationOnRootlessDataset(t *testing.T) {
	st := testFixture(t).st // reuse typed fixture but start at a leaf class
	e := NewExplorer(st)
	x := e.StartExplorationAt(ont("Philosopher"))
	if x.Breadcrumbs() != "Philosopher" {
		t.Errorf("breadcrumbs = %q", x.Breadcrumbs())
	}
	if len(x.Initial().Bars) != 0 {
		t.Errorf("leaf class initial chart has %d bars", len(x.Initial().Bars))
	}
}
