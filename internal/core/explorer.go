package core

import (
	"fmt"
	"slices"
	"sync"

	"elinda/internal/decomposer"
	"elinda/internal/ontology"
	"elinda/internal/rdf"
	"elinda/internal/store"
)

// DefaultCoverageThreshold is the paper's default 20% property-coverage
// cutoff.
const DefaultCoverageThreshold = 0.20

// Explorer evaluates bar expansions over a store. It owns an ontology
// snapshot (rebuilt automatically when the store changes) and a decomposer
// for the fast property aggregates.
type Explorer struct {
	st  *store.Store
	mu  sync.Mutex // guards h
	h   *ontology.Hierarchy
	dec *decomposer.Decomposer

	// CoverageThreshold is the default property-chart cutoff.
	CoverageThreshold float64

	// IncrementalDefaults fills in the administrator-configured N, k, and
	// parallel worker count for streaming chart evaluations whose caller
	// left the corresponding IncrementalOptions field zero.
	IncrementalDefaults IncrementalOptions
}

// fillIncremental overlays the explorer-wide incremental defaults onto
// zero fields of opts.
func (e *Explorer) fillIncremental(opts IncrementalOptions) IncrementalOptions {
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = e.IncrementalDefaults.ChunkSize
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = e.IncrementalDefaults.MaxRounds
	}
	if opts.Workers <= 0 {
		opts.Workers = e.IncrementalDefaults.Workers
	}
	return opts
}

// NewExplorer builds an explorer over st.
func NewExplorer(st *store.Store) *Explorer {
	return &Explorer{
		st:                st,
		h:                 ontology.Build(st),
		dec:               decomposer.New(st),
		CoverageThreshold: DefaultCoverageThreshold,
	}
}

// Store returns the underlying store.
func (e *Explorer) Store() *store.Store { return e.st }

// Hierarchy returns the (fresh) ontology snapshot. It is safe for
// concurrent use: the snapshot is rebuilt under a lock when the store
// changed since it was built.
func (e *Explorer) Hierarchy() *ontology.Hierarchy {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.h.Stale() {
		e.h = ontology.Build(e.st)
	}
	return e.h
}

// Decomposer returns the property-aggregate engine.
func (e *Explorer) Decomposer() *decomposer.Decomposer { return e.dec }

// label returns the display label for a term.
func (e *Explorer) label(t rdf.Term) string {
	if id, ok := e.st.Dict().Lookup(t); ok {
		return e.st.Label(id)
	}
	return t.LocalName()
}

// RootBar returns the bar B = ⟨S, τ, class⟩ for the predefined root type τ
// (owl:Thing when present), with S = all s with (s, rdf:type, τ). For
// rootless datasets it returns a virtual bar whose set is every typed
// subject and whose label is empty.
func (e *Explorer) RootBar() *Bar {
	h := e.Hierarchy()
	root := h.Root()
	if root != rdf.NoID {
		return e.ClassBar(e.st.Dict().Term(root))
	}
	// Virtual root over all typed subjects (LinkedGeoData case). Subjects
	// typed only as meta-classes (class/property declarations) are not
	// instances and stay out of the set.
	meta := map[rdf.ID]struct{}{}
	for _, iri := range []rdf.Term{rdf.OWLClassIRI, rdf.RDFSClassIRI, rdf.NewIRI(rdf.RDFProperty)} {
		if id, ok := e.st.Dict().Lookup(iri); ok {
			meta[id] = struct{}{}
		}
	}
	seen := map[rdf.ID]struct{}{}
	var set []rdf.ID
	snap := e.st.Snapshot()
	snap.Match(rdf.NoID, snap.TypeID(), rdf.NoID, func(t rdf.EncodedTriple) bool {
		if _, isMeta := meta[t.O]; isMeta {
			return true
		}
		if _, dup := seen[t.S]; !dup {
			seen[t.S] = struct{}{}
			set = append(set, t.S)
		}
		return true
	})
	return &Bar{Set: set, Label: rdf.Term{}, Type: ClassBar, pattern: newPatternBuilder()}
}

// ClassBar returns the bar for a class: S is every subject with
// (s, rdf:type, class). The set is a zero-copy view of the store
// snapshot's index — immutable, so safe to retain in the bar.
func (e *Explorer) ClassBar(class rdf.Term) *Bar {
	var set []rdf.ID
	if cid, ok := e.st.Dict().Lookup(class); ok {
		set = e.st.Snapshot().SubjectsOfType(cid)
	}
	return &Bar{
		Set:     set,
		Label:   class,
		Type:    ClassBar,
		pattern: newPatternBuilder().withType(class),
	}
}

// Expand applies the expansion kind to the bar. ObjectExpansion requires a
// property bar; the others require a class bar (FilterExpansion accepts
// any). The paper: "ηi is applicable to Bi−1[λi]".
func (e *Explorer) Expand(b *Bar, kind ExpansionKind) (*Chart, error) {
	switch kind {
	case SubclassExpansion:
		if b.Type != ClassBar {
			return nil, fmt.Errorf("core: subclass expansion requires a class bar, got %s", b.Type)
		}
		return e.subclassExpansion(b), nil
	case PropertyExpansion, IncomingPropertyExpansion:
		if b.Type != ClassBar {
			return nil, fmt.Errorf("core: property expansion requires a class bar, got %s", b.Type)
		}
		return e.propertyExpansion(b, kind == IncomingPropertyExpansion), nil
	case ObjectExpansion, IncomingObjectExpansion:
		if b.Type != PropertyBar {
			return nil, fmt.Errorf("core: object expansion requires a property bar, got %s", b.Type)
		}
		return e.objectExpansion(b, kind == IncomingObjectExpansion), nil
	default:
		return nil, fmt.Errorf("core: expansion %s is not chart-producing", kind)
	}
}

// subclassExpansion: labels(B) = direct subclasses τ of λ; B[τ] = members
// of S of class τ.
func (e *Explorer) subclassExpansion(b *Bar) *Chart {
	h := e.Hierarchy()
	chart := &Chart{Kind: SubclassExpansion, SourceLabel: b.Label, SourceSize: b.Len()}

	var subclasses []rdf.ID
	if b.Label.IsZero() {
		subclasses = h.TopLevelClasses()
	} else if cid, ok := e.st.Dict().Lookup(b.Label); ok {
		subclasses = h.DirectSubclasses(cid)
	}

	snap := e.st.Snapshot()
	inSet := idSet(b.Set)
	for _, sub := range subclasses {
		subTerm := e.st.Dict().Term(sub)
		var members []rdf.ID
		for _, s := range snap.SubjectsOfType(sub) {
			if _, in := inSet[s]; in {
				members = append(members, s)
			}
		}
		bar := &Bar{
			Set:     members,
			Label:   subTerm,
			Type:    ClassBar,
			pattern: b.pattern.withType(subTerm),
		}
		chart.Bars = append(chart.Bars, ChartBar{
			Bar:       bar,
			LabelText: e.st.Label(sub),
			Count:     len(members),
		})
	}
	sortBars(chart.Bars)
	return chart
}

// propertyExpansion: labels(B) = properties π with (s, π, o) for s ∈ S
// (or (o, π, s) when incoming); B[π] = members of S featuring π. Property
// data "aggregates all properties found within instances in S" — no
// ontology declarations consulted.
func (e *Explorer) propertyExpansion(b *Bar, incoming bool) *Chart {
	kind := PropertyExpansion
	if incoming {
		kind = IncomingPropertyExpansion
	}
	chart := &Chart{Kind: kind, SourceLabel: b.Label, SourceSize: b.Len()}

	type agg struct {
		members []rdf.ID
		triples int
	}
	perProp := map[rdf.ID]*agg{}
	snap := e.st.Snapshot()
	for _, s := range b.Set {
		var seen map[rdf.ID]bool
		visit := func(t rdf.EncodedTriple) bool {
			a := perProp[t.P]
			if a == nil {
				a = &agg{}
				perProp[t.P] = a
			}
			a.triples++
			if !seen[t.P] {
				seen[t.P] = true
				a.members = append(a.members, s)
			}
			return true
		}
		seen = map[rdf.ID]bool{}
		if incoming {
			snap.Match(rdf.NoID, rdf.NoID, s, visit)
		} else {
			snap.Match(s, rdf.NoID, rdf.NoID, visit)
		}
	}
	denom := float64(b.Len())
	for p, a := range perProp {
		pTerm := e.st.Dict().Term(p)
		bar := &Bar{
			Set:     a.members,
			Label:   pTerm,
			Type:    PropertyBar,
			pattern: b.pattern.withProperty(pTerm, incoming),
		}
		cb := ChartBar{
			Bar:       bar,
			LabelText: e.st.Label(p),
			Count:     len(a.members),
			Triples:   a.triples,
		}
		if denom > 0 {
			cb.Coverage = float64(cb.Count) / denom
		}
		chart.Bars = append(chart.Bars, cb)
	}
	sortBars(chart.Bars)
	return chart
}

// objectExpansion: for property bar B = ⟨S, λ, property⟩, labels(B) = the
// classes τ of objects o with (s, λ, o), s ∈ S; B[τ] = those objects of
// class τ. The incoming variant reads (o, λ, s).
func (e *Explorer) objectExpansion(b *Bar, incoming bool) *Chart {
	kind := ObjectExpansion
	if incoming {
		kind = IncomingObjectExpansion
	}
	chart := &Chart{Kind: kind, SourceLabel: b.Label, SourceSize: b.Len()}
	propID, ok := e.st.Dict().Lookup(b.Label)
	if !ok {
		return chart
	}
	// Collect connected objects.
	snap := e.st.Snapshot()
	connected := map[rdf.ID]struct{}{}
	for _, s := range b.Set {
		if incoming {
			for _, o := range snap.Subjects(propID, s) {
				connected[o] = struct{}{}
			}
		} else {
			for _, o := range snap.Objects(s, propID) {
				connected[o] = struct{}{}
			}
		}
	}
	// Distribute by class, visiting objects in ID order so each class's
	// member list comes out the same on every run.
	objs := make([]rdf.ID, 0, len(connected))
	for o := range connected {
		objs = append(objs, o)
	}
	slices.Sort(objs)
	perClass := map[rdf.ID][]rdf.ID{}
	for _, o := range objs {
		for _, c := range snap.Objects(o, snap.TypeID()) {
			perClass[c] = append(perClass[c], o)
		}
	}
	for c, members := range perClass {
		cTerm := e.st.Dict().Term(c)
		bar := &Bar{
			Set:     members,
			Label:   cTerm,
			Type:    ClassBar,
			pattern: b.pattern.hopObject(b.Label, incoming).withType(cTerm),
		}
		chart.Bars = append(chart.Bars, ChartBar{
			Bar:       bar,
			LabelText: e.st.Label(c),
			Count:     len(members),
		})
	}
	sortBars(chart.Bars)
	return chart
}

// Filter applies the paper's filter operation: it "removes from each bar B
// the URIs that violate the condition". Here it narrows one bar by a
// predicate over terms, returning the narrowed bar Sf for a filter
// expansion pane. The SPARQL condition mirrors the predicate for query
// generation.
func (e *Explorer) Filter(b *Bar, keep func(rdf.Term) bool, sparqlCond func(anchorVar string) sparqlExpr) *Bar {
	var kept []rdf.ID
	for _, id := range b.Set {
		if t, ok := e.st.Dict().TermOK(id); ok && keep(t) {
			kept = append(kept, id)
		}
	}
	pattern := b.pattern
	if sparqlCond != nil {
		pattern = pattern.withFilter(func(anchor string) sparqlExpr { return sparqlCond(anchor) })
	}
	return &Bar{Set: kept, Label: b.Label, Type: b.Type, pattern: pattern}
}

// FilterByPropertyValue narrows a class bar to members whose property
// value equals (or contains, when substring) the given literal/IRI — the
// data filters of Section 3.3 ("view only those philosophers who were born
// in Vienna"). The returned bar is Sf, ready for a filter-expansion pane.
func (e *Explorer) FilterByPropertyValue(b *Bar, prop rdf.Term, value rdf.Term) *Bar {
	propID, okP := e.st.Dict().Lookup(prop)
	valID, okV := e.st.Dict().Lookup(value)
	var kept []rdf.ID
	if okP && okV {
		snap := e.st.Snapshot()
		for _, s := range b.Set {
			if snap.ContainsID(s, propID, valID) {
				kept = append(kept, s)
			}
		}
	}
	pattern := b.pattern.clone()
	v := pattern.freshVar("f")
	pattern.triples = append(pattern.triples, tpVar(pattern.anchor, prop, v))
	pattern.filters = append(pattern.filters, eqExpr(v, value))
	return &Bar{Set: kept, Label: b.Label, Type: b.Type, pattern: pattern}
}

func idSet(ids []rdf.ID) map[rdf.ID]struct{} {
	m := make(map[rdf.ID]struct{}, len(ids))
	for _, id := range ids {
		m[id] = struct{}{}
	}
	return m
}
