package core

import (
	"fmt"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// sparqlExpr aliases sparql.Expr for the filter-callback signatures.
type sparqlExpr = sparql.Expr

// tpVar builds the pattern {?anchor <prop> ?v}.
func tpVar(anchor string, prop rdf.Term, v string) sparql.TriplePattern {
	return sparql.TriplePattern{S: sparql.V(anchor), P: sparql.T(prop), O: sparql.V(v)}
}

// eqExpr builds FILTER (?v = value).
func eqExpr(v string, value rdf.Term) sparql.Expr {
	return &sparql.BinaryExpr{
		Op:    "=",
		Left:  &sparql.VarExpr{Name: v},
		Right: &sparql.ConstExpr{Term: value},
	}
}

// containsExpr builds FILTER (CONTAINS(STR(?v), needle)).
func containsExpr(v, needle string) sparql.Expr {
	return &sparql.FuncExpr{Name: "CONTAINS", Args: []sparql.Expr{
		&sparql.FuncExpr{Name: "STR", Args: []sparql.Expr{&sparql.VarExpr{Name: v}}},
		&sparql.ConstExpr{Term: rdf.NewLiteral(needle)},
	}}
}

// PropertyExpansionSPARQL renders the paper's Section 4 query for the
// property expansion of a class in the given direction — the exact query
// eLinda sends to the endpoint, and the shape the decomposer detects.
func PropertyExpansionSPARQL(class rdf.Term, incoming bool) string {
	propTriple := "?s ?p ?o."
	if incoming {
		propTriple = "?o ?p ?s."
	}
	return fmt.Sprintf(`SELECT ?p COUNT(?p) AS ?count SUM(?sp) AS ?sp
FROM {SELECT ?s ?p count(*) AS ?sp
FROM {?s a %s. %s}
GROUP BY ?s ?p} GROUP BY ?p`, class.String(), propTriple)
}

// SubclassChartSPARQL renders the query computing a subclass chart: the
// per-subclass instance counts within the instances of class.
func SubclassChartSPARQL(class rdf.Term) string {
	q := &sparql.Query{
		Items: []sparql.SelectItem{
			{Var: "c"},
			{Var: "n", Expr: &sparql.AggExpr{Op: "COUNT", Distinct: true, Arg: &sparql.VarExpr{Name: "s"}}},
		},
		Where: &sparql.GroupPattern{Triples: []sparql.TriplePattern{
			{S: sparql.V("c"), P: sparql.T(rdf.SubClassOfIRI), O: sparql.T(class)},
			{S: sparql.V("s"), P: sparql.T(rdf.TypeIRI), O: sparql.T(class)},
			{S: sparql.V("s"), P: sparql.T(rdf.TypeIRI), O: sparql.V("c")},
		}},
		GroupBy: []string{"c"},
		OrderBy: []sparql.OrderKey{{Expr: &sparql.VarExpr{Name: "n"}, Desc: true}},
		Limit:   -1,
	}
	return q.String()
}

// ObjectExpansionSPARQL renders the query computing an object chart: the
// classes of objects connected to instances of class via prop.
func ObjectExpansionSPARQL(class, prop rdf.Term, incoming bool) string {
	link := sparql.TriplePattern{S: sparql.V("s"), P: sparql.T(prop), O: sparql.V("o")}
	if incoming {
		link = sparql.TriplePattern{S: sparql.V("o"), P: sparql.T(prop), O: sparql.V("s")}
	}
	q := &sparql.Query{
		Items: []sparql.SelectItem{
			{Var: "t"},
			{Var: "n", Expr: &sparql.AggExpr{Op: "COUNT", Distinct: true, Arg: &sparql.VarExpr{Name: "o"}}},
		},
		Where: &sparql.GroupPattern{Triples: []sparql.TriplePattern{
			{S: sparql.V("s"), P: sparql.T(rdf.TypeIRI), O: sparql.T(class)},
			link,
			{S: sparql.V("o"), P: sparql.T(rdf.TypeIRI), O: sparql.V("t")},
		}},
		GroupBy: []string{"t"},
		OrderBy: []sparql.OrderKey{{Expr: &sparql.VarExpr{Name: "n"}, Desc: true}},
		Limit:   -1,
	}
	return q.String()
}

// DatasetStatsSPARQL returns the queries behind the "very first queries"
// of Section 3.1: total triple count and class count.
func DatasetStatsSPARQL() (triples, classes string) {
	triples = `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }`
	classes = `SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { { ?c a owl:Class . } UNION { ?c a rdfs:Class . } }`
	return triples, classes
}
