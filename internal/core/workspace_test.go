package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"elinda/internal/incremental"
	"elinda/internal/rdf"
)

func TestWorkspaceDrillDownPath(t *testing.T) {
	e := testFixture(t)
	w := NewWorkspace(e)
	if w.Len() != 1 || w.Current().Origin != "initial" {
		t.Fatalf("initial workspace: %+v", w.Current())
	}
	for _, c := range []string{"Agent", "Person", "Philosopher"} {
		if _, err := w.DrillDown(ont(c)); err != nil {
			t.Fatalf("drill %s: %v", c, err)
		}
	}
	if w.Len() != 4 {
		t.Errorf("panes = %d", w.Len())
	}
	if got := w.Trail(); got != "Thing → Agent → Person → Philosopher" {
		t.Errorf("trail = %q", got)
	}
	if w.Current().Parent != 2 {
		t.Errorf("parent index = %d", w.Current().Parent)
	}
}

func TestWorkspaceDrillDownRejectsNonBar(t *testing.T) {
	e := testFixture(t)
	w := NewWorkspace(e)
	// Philosopher is not a direct bar of the root chart.
	if _, err := w.DrillDown(ont("Philosopher")); err == nil {
		t.Error("non-bar drill-down accepted")
	}
	if w.Len() != 1 {
		t.Error("failed drill-down added a pane")
	}
}

func TestWorkspaceOpenBySearch(t *testing.T) {
	e := testFixture(t)
	w := NewWorkspace(e)
	wp := w.OpenBySearch(ont("Philosopher"))
	if wp.Pane.Title != "Philosopher" || wp.Origin != "search:Philosopher" {
		t.Errorf("search pane: %+v", wp)
	}
}

func TestWorkspaceOpenConnections(t *testing.T) {
	e := testFixture(t)
	w := NewWorkspace(e)
	w.OpenBySearch(ont("Philosopher"))
	wp, err := w.OpenConnections(ont("influencedBy"), ont("Scientist"), false)
	if err != nil {
		t.Fatal(err)
	}
	if wp.Pane.Stats().Instances != 2 {
		t.Errorf("narrowed set = %d, want 2", wp.Pane.Stats().Instances)
	}
	if _, err := w.OpenConnections(ont("influencedBy"), ont("Place"), false); err == nil {
		t.Error("absent connection class accepted")
	}
	if _, err := w.OpenConnections(ont("nosuch"), ont("Scientist"), false); err == nil {
		t.Error("absent property accepted")
	}
}

func TestWorkspaceOpenFiltered(t *testing.T) {
	e := testFixture(t)
	w := NewWorkspace(e)
	w.OpenBySearch(ont("Philosopher"))
	wp := w.OpenFiltered([]TableFilter{{Property: ont("birthPlace"), Equals: res("vienna")}})
	if wp.Pane.Stats().Instances != 1 {
		t.Errorf("Sf size = %d", wp.Pane.Stats().Instances)
	}
	if wp.Origin != "filter" {
		t.Errorf("origin = %q", wp.Origin)
	}
}

func TestWorkspaceClose(t *testing.T) {
	e := testFixture(t)
	w := NewWorkspace(e)
	w.OpenBySearch(ont("Person"))
	if !w.Close() {
		t.Error("Close failed")
	}
	if w.Close() {
		t.Error("initial pane must not close")
	}
	if w.Len() != 1 {
		t.Errorf("panes = %d", w.Len())
	}
}

func TestStreamPropertyChartConvergesToDirect(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	direct := pane.PropertyChart(false, -1)

	for _, chunk := range []int{1, 5, 1000} {
		partials := 0
		final, err := pane.StreamPropertyChart(context.Background(), false,
			IncrementalOptions{ChunkSize: chunk},
			func(c *Chart, s incremental.Snapshot) bool {
				partials++
				// Partial counts never exceed the direct chart's.
				for _, b := range c.Bars {
					db, ok := direct.Bar(b.Bar.Label)
					if !ok || b.Count > db.Count {
						t.Fatalf("partial bar %s=%d exceeds final", b.LabelText, b.Count)
					}
				}
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		if partials == 0 {
			t.Error("no partial callbacks")
		}
		if !chartsEqual(final, direct) {
			t.Fatalf("chunk %d: streamed chart differs from direct", chunk)
		}
	}
}

func chartsEqual(a, b *Chart) bool {
	if len(a.Bars) != len(b.Bars) {
		return false
	}
	am := map[rdf.Term][3]int{}
	bm := map[rdf.Term][3]int{}
	for _, x := range a.Bars {
		am[x.Bar.Label] = [3]int{x.Count, x.Triples, int(x.Coverage * 1000)}
	}
	for _, x := range b.Bars {
		bm[x.Bar.Label] = [3]int{x.Count, x.Triples, int(x.Coverage * 1000)}
	}
	return reflect.DeepEqual(am, bm)
}

func TestStreamPropertyChartMaxRounds(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	rounds := 0
	_, err := pane.StreamPropertyChart(context.Background(), false,
		IncrementalOptions{ChunkSize: 3, MaxRounds: 2},
		func(c *Chart, s incremental.Snapshot) bool {
			rounds = s.Round
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Errorf("rounds = %d, want 2", rounds)
	}
}

func TestStreamPropertyChartCancel(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pane.StreamPropertyChart(ctx, false, IncrementalOptions{ChunkSize: 2}, nil); err == nil {
		t.Error("cancelled stream should error")
	}
}

func TestStreamPropertyChartIncomingBars(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	final, err := pane.StreamPropertyChart(context.Background(), true, IncrementalOptions{ChunkSize: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct := pane.PropertyChart(true, -1)
	if !chartsEqual(final, direct) {
		t.Error("incoming streamed chart differs from direct")
	}
}

func TestStreamSubclassChartConvergesToDirect(t *testing.T) {
	e := testFixture(t)
	for _, class := range []rdf.Term{rdf.OWLThingIRI, ont("Agent"), ont("Person")} {
		pane := e.OpenPane(class)
		direct := pane.SubclassChart()
		for _, chunk := range []int{1, 5, 1000} {
			final, err := pane.StreamSubclassChart(context.Background(),
				IncrementalOptions{ChunkSize: chunk}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !chartsEqual(final, direct) {
				t.Fatalf("%s chunk %d: streamed subclass chart differs from direct", class, chunk)
			}
		}
	}
}

func TestStreamConnectionsChartConvergesToDirect(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	direct, err := pane.ConnectionsChart(ont("influencedBy"), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 1000} {
		final, err := pane.StreamConnectionsChart(context.Background(), ont("influencedBy"), false,
			IncrementalOptions{ChunkSize: chunk}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !chartsEqual(final, direct) {
			t.Fatalf("chunk %d: streamed connections chart differs from direct", chunk)
		}
	}
	// A property the set does not feature yields an empty chart, not an error.
	empty, err := pane.StreamConnectionsChart(context.Background(), ont("nosuchprop"), false,
		IncrementalOptions{ChunkSize: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Bars) != 0 {
		t.Errorf("absent property produced %d bars", len(empty.Bars))
	}
}

// TestStreamChartsParallelWorkers: every streamed chart kind converges to
// its direct counterpart when evaluated by a worker pool.
func TestStreamChartsParallelWorkers(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	for _, workers := range []int{2, 4, 8} {
		opts := IncrementalOptions{ChunkSize: 3, Workers: workers}
		prop, err := pane.StreamPropertyChart(context.Background(), false, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !chartsEqual(prop, pane.PropertyChart(false, -1)) {
			t.Errorf("workers=%d: parallel property chart differs from direct", workers)
		}
		sub, err := pane.StreamSubclassChart(context.Background(), opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !chartsEqual(sub, pane.SubclassChart()) {
			t.Errorf("workers=%d: parallel subclass chart differs from direct", workers)
		}
		direct, err := pane.ConnectionsChart(ont("influencedBy"), false)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := pane.StreamConnectionsChart(context.Background(), ont("influencedBy"), false, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !chartsEqual(conn, direct) {
			t.Errorf("workers=%d: parallel connections chart differs from direct", workers)
		}
	}
}

// TestStreamChartsEmptyPane: a pane over a class with no instances has a
// nil set, which must stream an empty chart — not fall into the
// aggregators' "nil means all subjects" mode and chart the whole store.
func TestStreamChartsEmptyPane(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("NoSuchClass"))
	prop, err := pane.StreamPropertyChart(context.Background(), false, IncrementalOptions{ChunkSize: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prop.Bars) != 0 {
		t.Errorf("empty pane streamed %d property bars", len(prop.Bars))
	}
	sub, err := pane.StreamSubclassChart(context.Background(), IncrementalOptions{ChunkSize: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sub.Bars {
		if b.Count != 0 {
			t.Errorf("empty pane streamed subclass bar %s=%d", b.LabelText, b.Count)
		}
	}
}

// TestExplorerIncrementalDefaults: zero option fields inherit the
// explorer-wide administrator configuration.
func TestExplorerIncrementalDefaults(t *testing.T) {
	e := testFixture(t)
	e.IncrementalDefaults = IncrementalOptions{ChunkSize: 3, Workers: 4}
	pane := e.OpenPane(ont("Philosopher"))
	rounds := 0
	final, err := pane.StreamPropertyChart(context.Background(), false, IncrementalOptions{},
		func(c *Chart, s incremental.Snapshot) bool {
			rounds = s.Round
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 2 {
		t.Errorf("default ChunkSize not applied: %d rounds", rounds)
	}
	if !chartsEqual(final, pane.PropertyChart(false, -1)) {
		t.Error("defaulted stream differs from direct")
	}
	// Explicit options still win over the defaults.
	rounds = 0
	if _, err := pane.StreamPropertyChart(context.Background(), false,
		IncrementalOptions{ChunkSize: 1 << 20},
		func(c *Chart, s incremental.Snapshot) bool { rounds = s.Round; return true }); err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Errorf("explicit ChunkSize overridden: %d rounds", rounds)
	}
}

func TestExplorerConcurrentHierarchy(t *testing.T) {
	e := testFixture(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g == 0 && i%10 == 0 {
					// Writer: mutate the store so snapshots go stale.
					e.Store().Add(rdf.Triple{
						S: res(fmt.Sprintf("new%d", i)),
						P: rdf.TypeIRI,
						O: ont("Person"),
					})
				}
				h := e.Hierarchy()
				if h == nil {
					t.Error("nil hierarchy")
					return
				}
				e.OpenPane(ont("Person")).Stats()
			}
		}(g)
	}
	wg.Wait()
}
