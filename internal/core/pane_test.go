package core

import (
	"context"
	"strings"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

func TestOpenPaneStats(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Person"))
	st := pane.Stats()
	if st.Instances != 5 {
		t.Errorf("instances = %d, want 5", st.Instances)
	}
	if st.DirectSubclasses != 2 {
		t.Errorf("direct = %d, want 2 (Philosopher, Scientist)", st.DirectSubclasses)
	}
	if st.IndirectSubclasses != 0 {
		t.Errorf("indirect = %d, want 0", st.IndirectSubclasses)
	}
	if pane.Title != "Person" {
		t.Errorf("title = %q", pane.Title)
	}
}

func TestRootPaneStats(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenRootPane()
	st := pane.Stats()
	if st.Instances != 7 {
		t.Errorf("instances = %d, want 7", st.Instances)
	}
	if st.DirectSubclasses != 2 { // Agent, Place
		t.Errorf("direct = %d, want 2", st.DirectSubclasses)
	}
	if st.IndirectSubclasses != 3 { // Person, Philosopher, Scientist
		t.Errorf("indirect = %d, want 3", st.IndirectSubclasses)
	}
}

func TestPaneSubclassChart(t *testing.T) {
	e := testFixture(t)
	chart := e.OpenPane(ont("Person")).SubclassChart()
	if len(chart.Bars) != 2 {
		t.Fatalf("bars = %d", len(chart.Bars))
	}
	if chart.Bars[0].LabelText != "Philosopher" || chart.Bars[0].Count != 3 {
		t.Errorf("bar 0: %s=%d", chart.Bars[0].LabelText, chart.Bars[0].Count)
	}
}

func TestPanePropertyChartThreshold(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	raw := pane.PropertyChart(false, -1)
	// rdfs:label has coverage 1/3 > 0.2: survives default threshold.
	def := pane.PropertyChart(false, 0)
	if len(def.Bars) != len(raw.Bars) {
		t.Errorf("default threshold dropped bars: %d -> %d", len(raw.Bars), len(def.Bars))
	}
	strict := pane.PropertyChart(false, 0.5)
	for _, b := range strict.Bars {
		if b.Coverage < 0.5 {
			t.Errorf("bar %s below 0.5 survived", b.LabelText)
		}
	}
	if len(strict.Bars) >= len(raw.Bars) {
		t.Error("strict threshold removed nothing")
	}
}

func TestPaneConnectionsChart(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	chart, err := pane.ConnectionsChart(ont("influencedBy"), false)
	if err != nil {
		t.Fatal(err)
	}
	sci, ok := chart.Bar(ont("Scientist"))
	if !ok || sci.Count != 2 {
		t.Errorf("Scientist connections: %+v ok=%v", sci, ok)
	}
	if _, err := pane.ConnectionsChart(ont("nonexistent"), false); err == nil {
		t.Error("missing property should error")
	}
}

func TestPaneContinueExplorationOnConnections(t *testing.T) {
	// Section 3.4: clicking the Scientist bar opens a new pane on the
	// narrowed set; expansions now operate on it, not all Scientists.
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	chart, err := pane.ConnectionsChart(ont("influencedBy"), false)
	if err != nil {
		t.Fatal(err)
	}
	sci, _ := chart.Bar(ont("Scientist"))
	sub := e.OpenPaneForBar(sci.Bar)
	if sub.Stats().Instances != 2 {
		t.Errorf("narrowed pane size = %d, want 2", sub.Stats().Instances)
	}
	// Full Scientist pane would have 2 as well here; narrow the fixture
	// check instead: pane set must be exactly newton+euler.
	names := map[string]bool{}
	for _, id := range sub.Set() {
		names[e.st.Dict().Term(id).LocalName()] = true
	}
	if !names["newton"] || !names["euler"] {
		t.Errorf("narrowed set = %v", names)
	}
}

func TestDataTableValues(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	table := pane.DataTable([]rdf.Term{ont("birthPlace"), ont("influencedBy")}, nil)
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
	// Rows sorted by instance IRI: aristotle, kant, plato.
	if table.Rows[0].Instance != res("aristotle") {
		t.Errorf("row 0 = %v", table.Rows[0].Instance)
	}
	kantRow := table.Rows[1]
	if kantRow.Instance != res("kant") {
		t.Fatalf("row 1 = %v", kantRow.Instance)
	}
	if len(kantRow.Values[0]) != 1 || kantRow.Values[0][0] != res("vienna") {
		t.Errorf("kant birthPlace = %v", kantRow.Values[0])
	}
	if len(kantRow.Values[1]) != 2 {
		t.Errorf("kant influencedBy = %v", kantRow.Values[1])
	}
}

func TestDataTableFilters(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	table := pane.DataTable(
		[]rdf.Term{ont("birthPlace")},
		[]TableFilter{{Property: ont("birthPlace"), Equals: res("athens")}},
	)
	if len(table.Rows) != 2 {
		t.Fatalf("filtered rows = %d, want 2 (plato, aristotle)", len(table.Rows))
	}
	// The pane's S is unchanged by data filters.
	if pane.Stats().Instances != 3 {
		t.Error("data filter mutated the pane's set")
	}
}

func TestDataTableContainsFilter(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	table := pane.DataTable(
		[]rdf.Term{ont("birthPlace")},
		[]TableFilter{{Property: ont("birthPlace"), Contains: "vienna"}},
	)
	if len(table.Rows) != 1 || table.Rows[0].Instance != res("kant") {
		t.Errorf("contains filter rows = %+v", table.Rows)
	}
}

func TestDataTableSPARQLExecutable(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	table := pane.DataTable(
		[]rdf.Term{ont("birthPlace"), ont("influencedBy")},
		[]TableFilter{{Property: ont("birthPlace"), Equals: res("athens")}},
	)
	if table.Query == "" {
		t.Fatal("table exposes no SPARQL")
	}
	res, err := sparql.NewEngine(e.st).Query(context.Background(), table.Query)
	if err != nil {
		t.Fatalf("table SPARQL failed: %v\n%s", err, table.Query)
	}
	// Distinct instances in the result must equal the table's rows.
	instances := map[rdf.Term]struct{}{}
	for _, row := range res.Rows {
		instances[row["s"]] = struct{}{}
	}
	if len(instances) != len(table.Rows) {
		t.Errorf("SPARQL instances = %d, table rows = %d\n%s", len(instances), len(table.Rows), table.Query)
	}
	if !strings.Contains(table.Query, "OPTIONAL") {
		t.Error("table SPARQL should use OPTIONAL for columns")
	}
}

func TestFilterExpansionNarrowsSet(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	sf := pane.FilterExpansion([]TableFilter{{Property: ont("birthPlace"), Equals: res("vienna")}})
	if sf.Len() != 1 {
		t.Fatalf("|Sf| = %d, want 1", sf.Len())
	}
	// Sf supports further expansions.
	chart, err := e.Expand(sf, PropertyExpansion)
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := chart.Bar(ont("influencedBy"))
	if !ok || inf.Count != 1 || inf.Triples != 2 {
		t.Errorf("expansion on Sf: %+v ok=%v", inf, ok)
	}
	// And its SPARQL reproduces the set.
	assertSPARQLSet(t, e, sf)
}

func TestFilterGenericPredicate(t *testing.T) {
	e := testFixture(t)
	phil := e.ClassBar(ont("Philosopher"))
	kantOnly := e.Filter(phil, func(term rdf.Term) bool {
		return strings.Contains(term.Value, "kant")
	}, func(anchor string) sparqlExpr {
		return containsExpr(anchor, "kant")
	})
	if kantOnly.Len() != 1 {
		t.Errorf("|filtered| = %d, want 1", kantOnly.Len())
	}
}

func TestPaneForClassWithNoInstances(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("NoSuchClass"))
	if pane.Stats().Instances != 0 {
		t.Error("unknown class pane should be empty")
	}
	chart := pane.PropertyChart(false, 0)
	if len(chart.Bars) != 0 {
		t.Error("empty pane property chart should have no bars")
	}
	table := pane.DataTable([]rdf.Term{ont("birthPlace")}, nil)
	if len(table.Rows) != 0 {
		t.Error("empty pane table should have no rows")
	}
}
