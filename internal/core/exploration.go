package core

import (
	"fmt"
	"strings"

	"elinda/internal/rdf"
)

// Step records one exploration step (λi, ηi) ↦ Bi.
type Step struct {
	// Label is λi, the label of the bar selected from the previous chart.
	Label rdf.Term
	// Kind is ηi, the expansion applied.
	Kind ExpansionKind
	// Chart is Bi = ηi(Bi−1[λi]).
	Chart *Chart
}

// Exploration is the paper's sequence (λ1, η1) ↦ B1, ..., (λm, ηm) ↦ Bm
// over a predefined initial chart B0. It also maintains the breadcrumb
// trail shown above each pane (Figure 2).
type Exploration struct {
	expl    *Explorer
	initial *Chart
	steps   []Step
}

// StartExploration builds B0: the subclass expansion of the root bar
// ("η(B) where η is the subclass expansion and B = ⟨S, τ, class⟩ with τ
// being a predefined type ... a sensible choice of τ is owl:Thing").
func (e *Explorer) StartExploration() *Exploration {
	return &Exploration{expl: e, initial: e.subclassExpansion(e.RootBar())}
}

// StartExplorationAt begins from an arbitrary class — what the
// autocomplete search box does ("Selecting a class that way immediately
// opens the associated pane without the need to drill down").
func (e *Explorer) StartExplorationAt(class rdf.Term) *Exploration {
	return &Exploration{expl: e, initial: e.subclassExpansion(e.ClassBar(class))}
}

// Initial returns B0.
func (x *Exploration) Initial() *Chart { return x.initial }

// Current returns the most recent chart (B0 when no steps were taken).
func (x *Exploration) Current() *Chart {
	if len(x.steps) == 0 {
		return x.initial
	}
	return x.steps[len(x.steps)-1].Chart
}

// Steps returns the recorded steps.
func (x *Exploration) Steps() []Step { return x.steps }

// Expand performs one step: select the bar labeled λ from the current
// chart and apply the expansion. The paper's applicability conditions are
// enforced: (a) λ ∈ labels(Bi−1); (b) ηi is applicable to Bi−1[λi].
func (x *Exploration) Expand(label rdf.Term, kind ExpansionKind) (*Chart, error) {
	cur := x.Current()
	bar, ok := cur.Bar(label)
	if !ok {
		return nil, fmt.Errorf("core: label %s not in current chart", label)
	}
	chart, err := x.expl.Expand(bar.Bar, kind)
	if err != nil {
		return nil, err
	}
	x.steps = append(x.steps, Step{Label: label, Kind: kind, Chart: chart})
	return chart, nil
}

// ExpandByText is Expand using the display label.
func (x *Exploration) ExpandByText(label string, kind ExpansionKind) (*Chart, error) {
	cur := x.Current()
	bar, ok := cur.BarByText(label)
	if !ok {
		return nil, fmt.Errorf("core: label %q not in current chart", label)
	}
	return x.Expand(bar.Bar.Label, kind)
}

// Back undoes the last step. It reports whether a step was removed.
func (x *Exploration) Back() bool {
	if len(x.steps) == 0 {
		return false
	}
	x.steps = x.steps[:len(x.steps)-1]
	return true
}

// Breadcrumbs renders the colored breadcrumb trail of Figure 2 as text:
// the labels selected along the path.
func (x *Exploration) Breadcrumbs() string {
	parts := []string{x.rootName()}
	for _, s := range x.steps {
		parts = append(parts, x.expl.label(s.Label))
	}
	return strings.Join(parts, " → ")
}

func (x *Exploration) rootName() string {
	if x.initial.SourceLabel.IsZero() {
		return "All instances"
	}
	return x.expl.label(x.initial.SourceLabel)
}

// BarSPARQL returns the generated SPARQL for the bar labeled λ in the
// current chart — the per-bar query-generation feature of Section 2.
func (x *Exploration) BarSPARQL(label rdf.Term) (string, error) {
	bar, ok := x.Current().Bar(label)
	if !ok {
		return "", fmt.Errorf("core: label %s not in current chart", label)
	}
	return bar.Bar.SPARQL(), nil
}
