// Package core implements eLinda's formal model (Section 2) and the
// interaction logic behind its user interface (Section 3): bars, bar
// charts, the three bar expansions (subclass, property, object — each with
// incoming variants), the filter operation, exploration paths, panes with
// their statistics and data tables, and automatic SPARQL generation for
// every bar along an exploration.
package core

import (
	"fmt"
	"sort"

	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// BarType is the type t of a bar ⟨S, λ, t⟩: class or property.
type BarType uint8

const (
	// ClassBar represents URIs associated with some type.
	ClassBar BarType = iota
	// PropertyBar represents URIs associated with some property.
	PropertyBar
)

// String names the bar type as in the paper.
func (t BarType) String() string {
	if t == PropertyBar {
		return "property"
	}
	return "class"
}

// Bar is the paper's B = ⟨S, λ, t⟩: a set S of URIs, a label λ, and a type
// t. Each bar additionally carries the query pattern that defines its set,
// so eLinda can "generate SPARQL code to extract each of the bars along
// the exploration".
type Bar struct {
	// Set is S, the URIs represented by the bar (dictionary-encoded).
	Set []rdf.ID
	// Label is λ.
	Label rdf.Term
	// Type is t.
	Type BarType
	// pattern defines the set as a SPARQL pattern over variable anchor.
	pattern *patternBuilder
}

// Len returns |S|.
func (b *Bar) Len() int { return len(b.Set) }

// SPARQL returns a SELECT query extracting the bar's URI set.
func (b *Bar) SPARQL() string {
	if b.pattern == nil {
		return ""
	}
	return b.pattern.selectQuery().String()
}

// ExpansionKind identifies the η applied at an exploration step.
type ExpansionKind uint8

const (
	// SubclassExpansion distributes S over the direct subclasses of λ.
	SubclassExpansion ExpansionKind = iota
	// PropertyExpansion distributes S over its outgoing properties.
	PropertyExpansion
	// IncomingPropertyExpansion distributes S over its ingoing properties.
	IncomingPropertyExpansion
	// ObjectExpansion distributes the objects reached from S via λ over
	// their classes.
	ObjectExpansion
	// IncomingObjectExpansion distributes the subjects reaching S via λ
	// over their classes.
	IncomingObjectExpansion
	// FilterExpansion narrows S by a condition without changing labels.
	FilterExpansion
)

// String names the expansion.
func (k ExpansionKind) String() string {
	switch k {
	case SubclassExpansion:
		return "subclass"
	case PropertyExpansion:
		return "property"
	case IncomingPropertyExpansion:
		return "property-in"
	case ObjectExpansion:
		return "object"
	case IncomingObjectExpansion:
		return "object-in"
	case FilterExpansion:
		return "filter"
	default:
		return fmt.Sprintf("ExpansionKind(%d)", uint8(k))
	}
}

// ChartBar is one rendered bar of a chart: the underlying Bar plus its
// display statistics.
type ChartBar struct {
	// Bar is the underlying ⟨S, λ, t⟩.
	Bar *Bar
	// LabelText is the display label (rdfs:label or IRI local name).
	LabelText string
	// Count is |S| — bar height is proportional to it.
	Count int
	// Coverage is Count as a fraction of the source set (property charts).
	Coverage float64
	// Triples is the total matching triple count (property charts; the
	// SUM(?sp) of the paper's decomposer query).
	Triples int
}

// Chart is the paper's B: a finite label set mapped to bars, here held
// sorted by decreasing count ("bars are sorted by decreasing height").
type Chart struct {
	// Kind is the expansion that produced the chart.
	Kind ExpansionKind
	// SourceLabel is the label of the expanded bar.
	SourceLabel rdf.Term
	// SourceSize is |S| of the expanded bar (the coverage denominator).
	SourceSize int
	// Bars is the sorted bar list.
	Bars []ChartBar
}

// Labels returns labels(B) in display order.
func (c *Chart) Labels() []rdf.Term {
	out := make([]rdf.Term, len(c.Bars))
	for i, b := range c.Bars {
		out[i] = b.Bar.Label
	}
	return out
}

// Bar returns B[λ], the bar with the given label.
func (c *Chart) Bar(label rdf.Term) (*ChartBar, bool) {
	for i := range c.Bars {
		if c.Bars[i].Bar.Label == label {
			return &c.Bars[i], true
		}
	}
	return nil, false
}

// BarByText returns the first bar whose display label matches.
func (c *Chart) BarByText(label string) (*ChartBar, bool) {
	for i := range c.Bars {
		if c.Bars[i].LabelText == label {
			return &c.Bars[i], true
		}
	}
	return nil, false
}

// Threshold returns a copy of the chart keeping only bars with coverage at
// or above the given fraction — the property-chart coverage filter
// ("filtering out properties with a coverage lower than a threshold").
func (c *Chart) Threshold(minCoverage float64) *Chart {
	out := &Chart{Kind: c.Kind, SourceLabel: c.SourceLabel, SourceSize: c.SourceSize}
	for _, b := range c.Bars {
		if b.Coverage >= minCoverage {
			out.Bars = append(out.Bars, b)
		}
	}
	return out
}

// Top returns a copy keeping only the first n bars (the visible window
// controlled by the widget at the top of the chart).
func (c *Chart) Top(n int) *Chart {
	out := &Chart{Kind: c.Kind, SourceLabel: c.SourceLabel, SourceSize: c.SourceSize}
	if n > len(c.Bars) {
		n = len(c.Bars)
	}
	out.Bars = append(out.Bars, c.Bars[:n]...)
	return out
}

// sortBars orders bars by decreasing count, breaking ties by label text
// for deterministic output.
func sortBars(bars []ChartBar) {
	sort.Slice(bars, func(i, j int) bool {
		if bars[i].Count != bars[j].Count {
			return bars[i].Count > bars[j].Count
		}
		return bars[i].LabelText < bars[j].LabelText
	})
}

// --- SPARQL pattern builder ---

// patternBuilder composes the graph pattern that defines a bar's set. The
// anchor variable is the one whose bindings form the set; expansions that
// hop to objects introduce a fresh anchor.
type patternBuilder struct {
	triples []sparql.TriplePattern
	filters []sparql.Expr
	anchor  string
	fresh   int
}

func newPatternBuilder() *patternBuilder {
	return &patternBuilder{anchor: "s"}
}

// clone deep-copies the builder.
func (p *patternBuilder) clone() *patternBuilder {
	out := &patternBuilder{anchor: p.anchor, fresh: p.fresh}
	out.triples = append([]sparql.TriplePattern(nil), p.triples...)
	out.filters = append([]sparql.Expr(nil), p.filters...)
	return out
}

func (p *patternBuilder) freshVar(prefix string) string {
	p.fresh++
	return fmt.Sprintf("%s%d", prefix, p.fresh)
}

// withType adds {?anchor a <class>}.
func (p *patternBuilder) withType(class rdf.Term) *patternBuilder {
	out := p.clone()
	out.triples = append(out.triples, sparql.TriplePattern{
		S: sparql.V(out.anchor), P: sparql.T(rdf.TypeIRI), O: sparql.T(class),
	})
	return out
}

// withProperty adds {?anchor <p> ?fresh} (outgoing) or {?fresh <p> ?anchor}
// (incoming) without moving the anchor.
func (p *patternBuilder) withProperty(prop rdf.Term, incoming bool) *patternBuilder {
	out := p.clone()
	v := out.freshVar("o")
	tp := sparql.TriplePattern{S: sparql.V(out.anchor), P: sparql.T(prop), O: sparql.V(v)}
	if incoming {
		tp = sparql.TriplePattern{S: sparql.V(v), P: sparql.T(prop), O: sparql.V(out.anchor)}
	}
	out.triples = append(out.triples, tp)
	return out
}

// hopObject moves the anchor across the property to the connected node.
// When the pattern already ends with the matching property triple (a
// property-expansion bar being object-expanded), the anchor just moves to
// that triple's far end instead of adding a redundant pattern.
func (p *patternBuilder) hopObject(prop rdf.Term, incoming bool) *patternBuilder {
	out := p.clone()
	if n := len(out.triples); n > 0 {
		last := out.triples[n-1]
		if !last.P.IsVar && last.P.Term == prop {
			if !incoming && last.S.IsVar && last.S.Name == out.anchor && last.O.IsVar {
				out.anchor = last.O.Name
				return out
			}
			if incoming && last.O.IsVar && last.O.Name == out.anchor && last.S.IsVar {
				out.anchor = last.S.Name
				return out
			}
		}
	}
	v := out.freshVar("o")
	tp := sparql.TriplePattern{S: sparql.V(out.anchor), P: sparql.T(prop), O: sparql.V(v)}
	if incoming {
		tp = sparql.TriplePattern{S: sparql.V(v), P: sparql.T(prop), O: sparql.V(out.anchor)}
	}
	out.triples = append(out.triples, tp)
	out.anchor = v
	return out
}

// withFilter adds a FILTER on the anchor variable produced by cond.
func (p *patternBuilder) withFilter(cond func(anchorVar string) sparql.Expr) *patternBuilder {
	out := p.clone()
	out.filters = append(out.filters, cond(out.anchor))
	return out
}

// selectQuery renders SELECT DISTINCT ?anchor WHERE {...}.
func (p *patternBuilder) selectQuery() *sparql.Query {
	return &sparql.Query{
		Distinct: true,
		Items:    []sparql.SelectItem{{Var: p.anchor}},
		Where:    &sparql.GroupPattern{Triples: p.triples, Filters: p.filters},
		Limit:    -1,
	}
}
