package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"elinda/internal/rdf"
)

// TestConcurrentChartEvaluationWithWrites pins down the reader/writer
// contract of the store under exploration load: all store read methods are
// safe for concurrent use, Add takes an exclusive lock, and the insertion-
// order log only ever grows. Several goroutines evaluate charts — direct
// and streamed, the streamed ones with a parallel worker pool, so shard
// scans race the writer too — while one goroutine keeps mutating the KB.
// Run under -race, the test verifies the synchronization itself; the
// assertions verify that every observed chart is a consistent snapshot
// (counts never shrink below the pre-mutation baseline for pre-existing
// instances).
func TestConcurrentChartEvaluationWithWrites(t *testing.T) {
	e := testFixture(t)
	pane := e.OpenPane(ont("Philosopher"))
	baseline := pane.PropertyChart(false, -1)
	ctx := context.Background()

	var readers, writer sync.WaitGroup

	// The writer: grow the KB with a bounded burst of fresh typed
	// subjects and property triples. Bounded, because a stream judges
	// completeness against the live log length — an unbounded writer
	// outrunning a small ChunkSize would keep the readers scanning
	// forever.
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < 400; i++ {
			s := res(fmt.Sprintf("conc%d", i))
			e.Store().Add(rdf.Triple{S: s, P: rdf.TypeIRI, O: ont("Person")})
			e.Store().Add(rdf.Triple{S: s, P: ont("birthPlace"), O: res("vienna")})
		}
	}()

	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			opts := IncrementalOptions{ChunkSize: 32, Workers: 4}
			for i := 0; i < 8; i++ {
				final, err := pane.StreamPropertyChart(ctx, false, opts, nil)
				if err != nil {
					t.Errorf("stream: %v", err)
					return
				}
				// The writer never touches Philosopher instances, so the
				// baseline bars must keep at least their counts.
				for _, b := range baseline.Bars {
					got, ok := final.Bar(b.Bar.Label)
					if !ok || got.Count < b.Count {
						t.Errorf("bar %s shrank under concurrent writes", b.LabelText)
						return
					}
				}
				if _, err := pane.StreamSubclassChart(ctx, opts, nil); err != nil {
					t.Errorf("subclass stream: %v", err)
					return
				}
				if _, err := pane.StreamConnectionsChart(ctx, ont("influencedBy"), false, opts, nil); err != nil {
					t.Errorf("connections stream: %v", err)
					return
				}
				// Direct evaluations and hierarchy rebuilds race the same
				// writer through the store's read methods.
				pane.SubclassChart()
				e.Hierarchy()
				e.OpenPane(ont("Person")).Stats()
			}
		}(g)
	}
	readers.Wait()
	writer.Wait()
}
