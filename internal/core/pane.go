package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"elinda/internal/incremental"
	"elinda/internal/rdf"
	"elinda/internal/sparql"
)

// PaneStats are the numbers shown at the upper-left corner of a pane:
// "the total number of instances (i.e., |S|), and the number of direct and
// indirect subclasses that class type T has" (Section 3.2).
type PaneStats struct {
	Instances          int
	DirectSubclasses   int
	IndirectSubclasses int
}

// Pane visualizes data related to a set of subjects S, all of the same
// type T (Section 3.2). A pane is opened either for a class (S = all its
// instances) or for a narrowed set produced by an object or filter
// expansion ("Note that S does not necessarily include all instances of
// T").
type Pane struct {
	expl *Explorer
	// bar is the pane's underlying ⟨S, T, class⟩ bar.
	bar *Bar
	// Title is the display name of T.
	Title string
}

// OpenPane opens the pane for a class with S = all its direct instances.
func (e *Explorer) OpenPane(class rdf.Term) *Pane {
	bar := e.ClassBar(class)
	return &Pane{expl: e, bar: bar, Title: e.label(class)}
}

// OpenRootPane opens the initial pane (owl:Thing, or a virtual root for
// rootless datasets).
func (e *Explorer) OpenRootPane() *Pane {
	bar := e.RootBar()
	title := "Thing"
	if bar.Label.IsZero() {
		title = "All instances"
	} else {
		title = e.label(bar.Label)
	}
	return &Pane{expl: e, bar: bar, Title: title}
}

// OpenPaneForBar opens a pane focused on an existing bar's (possibly
// narrowed) set — the "new pane ... focusing on the aforementioned set of
// scientists" of Section 3.4 and the filter expansion of Section 3.3.
func (e *Explorer) OpenPaneForBar(bar *Bar) *Pane {
	return &Pane{expl: e, bar: bar, Title: e.label(bar.Label)}
}

// Bar returns the pane's underlying bar.
func (p *Pane) Bar() *Bar { return p.bar }

// Set returns S.
func (p *Pane) Set() []rdf.ID { return p.bar.Set }

// Stats computes the pane-header statistics.
func (p *Pane) Stats() PaneStats {
	st := PaneStats{Instances: p.bar.Len()}
	if cid, ok := p.expl.st.Dict().Lookup(p.bar.Label); ok {
		direct, total := p.expl.Hierarchy().SubclassCounts(cid)
		st.DirectSubclasses = direct
		st.IndirectSubclasses = total - direct
	}
	return st
}

// SubclassChart returns the default chart of the pane.
func (p *Pane) SubclassChart() *Chart {
	return p.expl.subclassExpansion(p.bar)
}

// PropertyChart returns the Property Data tab's chart, already filtered by
// the explorer's coverage threshold. Pass threshold < 0 for the raw chart.
func (p *Pane) PropertyChart(incoming bool, threshold float64) *Chart {
	chart := p.expl.propertyExpansion(p.bar, incoming)
	if threshold < 0 {
		return chart
	}
	if threshold == 0 {
		threshold = p.expl.CoverageThreshold
	}
	return chart.Threshold(threshold)
}

// ConnectionsChart returns the Connections tab's chart for the chosen
// property: the object expansion of the property bar.
func (p *Pane) ConnectionsChart(prop rdf.Term, incoming bool) (*Chart, error) {
	propChart := p.expl.propertyExpansion(p.bar, incoming)
	bar, ok := propChart.Bar(prop)
	if !ok {
		return nil, fmt.Errorf("core: property %s not featured by instances of %s", prop, p.Title)
	}
	kind := ObjectExpansion
	if incoming {
		kind = IncomingObjectExpansion
	}
	return p.expl.Expand(bar.Bar, kind)
}

// --- Streaming charts (Section 4 wired into the pane's tabs) ---

// nonNilSet returns the pane's set, never nil: the subclass and property
// aggregators read a nil set as "all subjects", while an empty pane must
// count nothing.
func (p *Pane) nonNilSet() []rdf.ID {
	if p.bar.Set == nil {
		return []rdf.ID{}
	}
	return p.bar.Set
}

// streamChart drives an incremental evaluation of agg, rebuilding the
// chart from the aggregator state after each round. build is called with
// the round's state already folded in; onPartial returning false stops the
// stream early. The chart of the final observed state is returned.
func (p *Pane) streamChart(ctx context.Context, opts IncrementalOptions, agg incremental.Aggregator, build func() *Chart, onPartial func(*Chart, incremental.Snapshot) bool) (*Chart, error) {
	ev := incremental.New(p.expl.st, opts.config())
	var final *Chart
	_, err := ev.Run(ctx, agg, func(s incremental.Snapshot) bool {
		chart := build()
		if s.Complete {
			final = chart
		}
		if onPartial != nil {
			return onPartial(chart, s)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if final == nil {
		final = build()
	}
	return final, nil
}

// StreamSubclassChart computes the pane's subclass chart incrementally,
// invoking onPartial after every chunk of N triples. Bars carry labels and
// counts but not member sets (counting is what the chunked scan buys);
// candidate subclasses that have not yet been seen show with count zero,
// exactly like the direct SubclassChart.
func (p *Pane) StreamSubclassChart(ctx context.Context, opts IncrementalOptions, onPartial func(*Chart, incremental.Snapshot) bool) (*Chart, error) {
	st := p.expl.st
	h := p.expl.Hierarchy()
	opts = p.expl.fillIncremental(opts)

	var subclasses []rdf.ID
	if p.bar.Label.IsZero() {
		subclasses = h.TopLevelClasses()
	} else if cid, ok := st.Dict().Lookup(p.bar.Label); ok {
		subclasses = h.DirectSubclasses(cid)
	}
	agg := incremental.NewSubclassAggregator(st.TypeID(), p.nonNilSet(), subclasses)

	build := func() *Chart {
		counts := agg.Counts()
		chart := &Chart{Kind: SubclassExpansion, SourceLabel: p.bar.Label, SourceSize: p.bar.Len()}
		for _, sub := range subclasses {
			subTerm := st.Dict().Term(sub)
			chart.Bars = append(chart.Bars, ChartBar{
				Bar: &Bar{
					Label:   subTerm,
					Type:    ClassBar,
					pattern: p.bar.pattern.withType(subTerm),
				},
				LabelText: st.Label(sub),
				Count:     counts[sub],
			})
		}
		sortBars(chart.Bars)
		return chart
	}
	return p.streamChart(ctx, opts, agg, build, onPartial)
}

// StreamConnectionsChart computes the Connections tab's chart (the object
// expansion for the chosen property) incrementally. Unlike
// ConnectionsChart it does not first materialize the property bar, so it
// reports the pane's |S| as SourceSize and yields an empty chart — not an
// error — for a property the set does not feature.
func (p *Pane) StreamConnectionsChart(ctx context.Context, prop rdf.Term, incoming bool, opts IncrementalOptions, onPartial func(*Chart, incremental.Snapshot) bool) (*Chart, error) {
	st := p.expl.st
	opts = p.expl.fillIncremental(opts)
	kind := ObjectExpansion
	if incoming {
		kind = IncomingObjectExpansion
	}
	propID, ok := st.Dict().Lookup(prop)
	if !ok {
		return &Chart{Kind: kind, SourceLabel: prop, SourceSize: p.bar.Len()}, nil
	}
	agg := incremental.NewObjectAggregator(st.TypeID(), propID, p.bar.Set, incoming)
	pattern := p.bar.pattern.withProperty(prop, incoming).hopObject(prop, incoming)

	build := func() *Chart {
		chart := &Chart{Kind: kind, SourceLabel: prop, SourceSize: p.bar.Len()}
		for c, n := range agg.Counts() {
			cTerm := st.Dict().Term(c)
			chart.Bars = append(chart.Bars, ChartBar{
				Bar: &Bar{
					Label:   cTerm,
					Type:    ClassBar,
					pattern: pattern.withType(cTerm),
				},
				LabelText: st.Label(c),
				Count:     n,
			})
		}
		sortBars(chart.Bars)
		return chart
	}
	return p.streamChart(ctx, opts, agg, build, onPartial)
}

// --- Data table (Section 3.3, "Browse instance data") ---

// TableFilter restricts rows by a property value condition.
type TableFilter struct {
	// Property is the filtered column's property.
	Property rdf.Term
	// Equals requires an exact value match when non-zero.
	Equals rdf.Term
	// Contains requires a substring match on the value's string form when
	// non-empty (used when Equals is zero).
	Contains string
}

// matches reports whether a value satisfies the filter.
func (f TableFilter) matches(v rdf.Term) bool {
	if !f.Equals.IsZero() {
		return v == f.Equals
	}
	if f.Contains != "" {
		return strings.Contains(v.Value, f.Contains)
	}
	return true
}

// DataTable presents instance data in tabular format: one row per
// instance, one column per selected property, "filled-in with actual
// values that are fetched from the dataset". It also exposes the SPARQL
// query it was generated from.
type DataTable struct {
	// Columns are the selected properties, in selection order.
	Columns []rdf.Term
	// Rows maps each instance to its values per column (possibly several
	// values per cell).
	Rows []TableRow
	// Query is the SPARQL the table was generated from.
	Query string
}

// TableRow is one instance's row.
type TableRow struct {
	// Instance is the row's subject.
	Instance rdf.Term
	// Values holds the cell values, indexed like Columns.
	Values [][]rdf.Term
}

// DataTable builds the table for the selected properties under the given
// filters. Filters restrict which rows appear but do not change the
// pane's set S ("the set S that is captured by the pane is left
// unchanged").
func (p *Pane) DataTable(props []rdf.Term, filters []TableFilter) *DataTable {
	d := p.expl.st.Dict()
	// One immutable snapshot for the whole table: every row reads the
	// same generation, lock-free.
	snap := p.expl.st.Snapshot()
	table := &DataTable{Columns: props, Query: p.tableSPARQL(props, filters)}

	propIDs := make([]rdf.ID, len(props))
	for i, pr := range props {
		propIDs[i], _ = d.Lookup(pr)
	}
	filterIdx := map[rdf.ID][]TableFilter{}
	for _, f := range filters {
		if fid, ok := d.Lookup(f.Property); ok {
			filterIdx[fid] = append(filterIdx[fid], f)
		}
	}

	for _, s := range p.bar.Set {
		row := TableRow{Instance: d.Term(s), Values: make([][]rdf.Term, len(props))}
		keep := true
		for fid, fs := range filterIdx {
			objs := snap.Objects(s, fid)
			for _, f := range fs {
				ok := false
				for _, o := range objs {
					if t, valid := d.TermOK(o); valid && f.matches(t) {
						ok = true
						break
					}
				}
				if !ok {
					keep = false
					break
				}
			}
			if !keep {
				break
			}
		}
		if !keep {
			continue
		}
		for i, pid := range propIDs {
			if pid == rdf.NoID {
				continue
			}
			for _, o := range snap.Objects(s, pid) {
				if t, valid := d.TermOK(o); valid {
					row.Values[i] = append(row.Values[i], t)
				}
			}
			sort.Slice(row.Values[i], func(a, b int) bool {
				return row.Values[i][a].Compare(row.Values[i][b]) < 0
			})
		}
		table.Rows = append(table.Rows, row)
	}
	sort.Slice(table.Rows, func(i, j int) bool {
		return table.Rows[i].Instance.Compare(table.Rows[j].Instance) < 0
	})
	return table
}

// tableSPARQL renders the query a data table was generated from: the
// pane's pattern plus one OPTIONAL block per column and the filters.
func (p *Pane) tableSPARQL(props []rdf.Term, filters []TableFilter) string {
	pattern := p.bar.pattern.clone()
	anchor := pattern.anchor
	items := []sparql.SelectItem{{Var: anchor}}
	group := &sparql.GroupPattern{
		Triples: append([]sparql.TriplePattern(nil), pattern.triples...),
		Filters: append([]sparql.Expr(nil), pattern.filters...),
	}
	for i, prop := range props {
		v := fmt.Sprintf("v%d", i+1)
		items = append(items, sparql.SelectItem{Var: v})
		group.Optionals = append(group.Optionals, &sparql.GroupPattern{
			Triples: []sparql.TriplePattern{tpVar(anchor, prop, v)},
		})
	}
	for i, f := range filters {
		v := fmt.Sprintf("f%d", i+1)
		group.Triples = append(group.Triples, tpVar(anchor, f.Property, v))
		if !f.Equals.IsZero() {
			group.Filters = append(group.Filters, eqExpr(v, f.Equals))
		} else if f.Contains != "" {
			group.Filters = append(group.Filters, containsExpr(v, f.Contains))
		}
	}
	q := &sparql.Query{Items: items, Where: group, Limit: -1}
	return q.String()
}

// FilterExpansion opens a new bar Sf — the pane's set narrowed by the
// filters — for exploration "using all available expansions that will now
// operate on a narrowed set" (Section 3.3).
func (p *Pane) FilterExpansion(filters []TableFilter) *Bar {
	d := p.expl.st.Dict()
	snap := p.expl.st.Snapshot()
	filterIdx := map[rdf.ID][]TableFilter{}
	for _, f := range filters {
		if fid, ok := d.Lookup(f.Property); ok {
			filterIdx[fid] = append(filterIdx[fid], f)
		}
	}
	var kept []rdf.ID
	for _, s := range p.bar.Set {
		keep := true
		for fid, fs := range filterIdx {
			objs := snap.Objects(s, fid)
			for _, f := range fs {
				ok := false
				for _, o := range objs {
					if t, valid := d.TermOK(o); valid && f.matches(t) {
						ok = true
						break
					}
				}
				if !ok {
					keep = false
					break
				}
			}
			if !keep {
				break
			}
		}
		if keep {
			kept = append(kept, s)
		}
	}
	pattern := p.bar.pattern.clone()
	for _, f := range filters {
		v := pattern.freshVar("f")
		pattern.triples = append(pattern.triples, tpVar(pattern.anchor, f.Property, v))
		if !f.Equals.IsZero() {
			pattern.filters = append(pattern.filters, eqExpr(v, f.Equals))
		} else if f.Contains != "" {
			pattern.filters = append(pattern.filters, containsExpr(v, f.Contains))
		}
	}
	return &Bar{Set: kept, Label: p.bar.Label, Type: ClassBar, pattern: pattern}
}
