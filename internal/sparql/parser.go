package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"elinda/internal/rdf"
)

// SyntaxError is a parse-time error with byte offset information.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sparql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a SPARQL SELECT or ASK query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	for k, v := range rdf.WellKnownPrefixes {
		p.prefixes[k] = v
	}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing content %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectKeyword(kw string) error {
	if p.cur().kind != tokKeyword || p.cur().text != kw {
		return p.errf("expected %s, found %q", kw, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) expectPunct(s string) error {
	if p.cur().kind != tokPunct || p.cur().text != s {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) query() (*Query, error) {
	if err := p.prologue(); err != nil {
		return nil, err
	}
	q, err := p.selectQuery()
	if err != nil {
		return nil, err
	}
	q.Prefixes = p.prefixes
	return q, nil
}

// prologue consumes PREFIX / BASE declarations (shared by queries and
// updates).
func (p *parser) prologue() error {
	for p.isKeyword("PREFIX") || p.isKeyword("BASE") {
		if p.isKeyword("BASE") {
			p.pos++
			if p.cur().kind != tokIRI {
				return p.errf("expected IRI after BASE")
			}
			p.pos++ // base IRIs are accepted and ignored; we only see absolute IRIs
			continue
		}
		p.pos++
		if p.cur().kind != tokPrefixedName || !strings.HasSuffix(p.cur().text, ":") {
			return p.errf("expected prefix name after PREFIX, found %q", p.cur().text)
		}
		name := strings.TrimSuffix(p.next().text, ":")
		if p.cur().kind != tokIRI {
			return p.errf("expected namespace IRI in PREFIX")
		}
		p.prefixes[name] = p.next().text
	}
	return nil
}

func (p *parser) selectQuery() (*Query, error) {
	q := &Query{Limit: -1}
	switch {
	case p.isKeyword("SELECT"):
		p.pos++
	case p.isKeyword("ASK"):
		p.pos++
		q.Ask = true
	default:
		return nil, p.errf("expected SELECT or ASK, found %q", p.cur().text)
	}
	if !q.Ask {
		if p.isKeyword("DISTINCT") {
			q.Distinct = true
			p.pos++
		} else if p.isKeyword("REDUCED") {
			p.pos++ // treat REDUCED as DISTINCT-less passthrough
		}
		if p.isPunct("*") {
			q.Star = true
			p.pos++
		} else {
			for {
				item, ok, err := p.selectItem()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				q.Items = append(q.Items, item)
			}
			if len(q.Items) == 0 {
				return nil, p.errf("SELECT requires at least one projection")
			}
		}
	}
	// WHERE keyword is optional before '{'. Virtuoso's dialect (used in the
	// paper's Section 4 query) writes FROM where standard SPARQL has WHERE.
	if p.isKeyword("WHERE") || p.isKeyword("FROM") {
		p.pos++
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	where, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = where
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	// Solution modifiers.
	if p.isKeyword("GROUP") {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for p.cur().kind == tokVar {
			q.GroupBy = append(q.GroupBy, p.next().text)
		}
		if len(q.GroupBy) == 0 {
			return nil, p.errf("GROUP BY requires at least one variable")
		}
	}
	for p.isKeyword("HAVING") {
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		q.Having = append(q.Having, e)
	}
	if p.isKeyword("ORDER") {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			key, ok, err := p.orderKey()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.OrderBy = append(q.OrderBy, key)
		}
		if len(q.OrderBy) == 0 {
			return nil, p.errf("ORDER BY requires at least one key")
		}
	}
	for p.isKeyword("LIMIT") || p.isKeyword("OFFSET") {
		kw := p.next().text
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected number after %s", kw)
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid %s value", kw)
		}
		if kw == "LIMIT" {
			q.Limit = n
		} else {
			q.Offset = n
		}
	}
	return q, nil
}

func (p *parser) selectItem() (SelectItem, bool, error) {
	switch {
	case p.cur().kind == tokVar:
		return SelectItem{Var: p.next().text}, true, nil
	case p.isPunct("("):
		p.pos++
		e, err := p.expression()
		if err != nil {
			return SelectItem{}, false, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return SelectItem{}, false, err
		}
		if p.cur().kind != tokVar {
			return SelectItem{}, false, p.errf("expected variable after AS")
		}
		name := p.next().text
		if err := p.expectPunct(")"); err != nil {
			return SelectItem{}, false, err
		}
		return SelectItem{Var: name, Expr: e}, true, nil
	case p.cur().kind == tokKeyword && isAggKeyword(p.cur().text):
		// Virtuoso-style bare aggregate: COUNT(?p) AS ?count (no parens
		// around the whole item). The paper's example query uses this form.
		e, err := p.primaryExpr()
		if err != nil {
			return SelectItem{}, false, err
		}
		if p.isKeyword("AS") {
			p.pos++
			if p.cur().kind != tokVar {
				return SelectItem{}, false, p.errf("expected variable after AS")
			}
			return SelectItem{Var: p.next().text, Expr: e}, true, nil
		}
		return SelectItem{Var: fmt.Sprintf("agg%d", p.pos), Expr: e}, true, nil
	default:
		return SelectItem{}, false, nil
	}
}

func isAggKeyword(kw string) bool {
	switch kw {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT":
		return true
	}
	return false
}

func (p *parser) orderKey() (OrderKey, bool, error) {
	switch {
	case p.isKeyword("ASC"), p.isKeyword("DESC"):
		desc := p.next().text == "DESC"
		if err := p.expectPunct("("); err != nil {
			return OrderKey{}, false, err
		}
		e, err := p.expression()
		if err != nil {
			return OrderKey{}, false, err
		}
		if err := p.expectPunct(")"); err != nil {
			return OrderKey{}, false, err
		}
		return OrderKey{Expr: e, Desc: desc}, true, nil
	case p.cur().kind == tokVar:
		return OrderKey{Expr: &VarExpr{Name: p.next().text}}, true, nil
	case p.isPunct("("):
		p.pos++
		e, err := p.expression()
		if err != nil {
			return OrderKey{}, false, err
		}
		if err := p.expectPunct(")"); err != nil {
			return OrderKey{}, false, err
		}
		return OrderKey{Expr: e}, true, nil
	default:
		return OrderKey{}, false, nil
	}
}

// groupPattern parses the inside of { ... } (without the braces).
func (p *parser) groupPattern() (*GroupPattern, error) {
	g := &GroupPattern{}
	for {
		switch {
		case p.isPunct("}"):
			return g, nil
		case p.cur().kind == tokEOF:
			return nil, p.errf("unexpected end of query inside group")
		case p.isKeyword("FILTER"):
			p.pos++
			withParens := p.isPunct("(")
			if withParens {
				p.pos++
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if withParens {
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			g.Filters = append(g.Filters, e)
			p.skipDot()
		case p.isKeyword("OPTIONAL"):
			p.pos++
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			inner, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			g.Optionals = append(g.Optionals, inner)
			p.skipDot()
		case p.isKeyword("VALUES"):
			p.pos++
			vb, err := p.valuesBlock()
			if err != nil {
				return nil, err
			}
			g.Values = append(g.Values, vb)
			p.skipDot()
		case p.isKeyword("FROM"):
			// The paper writes "FROM {SELECT ...}" for subqueries (a
			// Virtuoso-ism). Accept FROM followed by a braced group as an
			// alias for a plain nested group.
			p.pos++
			if !p.isPunct("{") {
				return nil, p.errf("expected '{' after FROM")
			}
			continue
		case p.isKeyword("SELECT"):
			// Inline subselect without extra braces, as written in the
			// paper's "FROM {SELECT ...}" form.
			sub, err := p.selectQuery()
			if err != nil {
				return nil, err
			}
			g.SubSelects = append(g.SubSelects, sub)
			p.skipDot()
		case p.isPunct("{"):
			p.pos++
			// Nested group: either a subselect or a plain group (possibly
			// the first branch of a UNION).
			if p.isKeyword("SELECT") {
				sub, err := p.selectQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("}"); err != nil {
					return nil, err
				}
				g.SubSelects = append(g.SubSelects, sub)
				p.skipDot()
				continue
			}
			branch, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			branches := []*GroupPattern{branch}
			for p.isKeyword("UNION") {
				p.pos++
				if err := p.expectPunct("{"); err != nil {
					return nil, err
				}
				alt, err := p.groupPattern()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("}"); err != nil {
					return nil, err
				}
				branches = append(branches, alt)
			}
			if len(branches) == 1 {
				// Plain nested group: splice its contents.
				g.Triples = append(g.Triples, branch.Triples...)
				g.Filters = append(g.Filters, branch.Filters...)
				g.SubSelects = append(g.SubSelects, branch.SubSelects...)
				g.Optionals = append(g.Optionals, branch.Optionals...)
				g.Unions = append(g.Unions, branch.Unions...)
			} else {
				g.Unions = append(g.Unions, branches)
			}
			p.skipDot()
		default:
			if err := p.triplesBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// valuesBlock parses the body of a VALUES clause: either the single-var
// form `?x { term... }` or the full form `(?x ?y) { (t t)... }`. UNDEF
// entries become zero terms.
func (p *parser) valuesBlock() (*ValuesBlock, error) {
	vb := &ValuesBlock{}
	single := false
	switch {
	case p.cur().kind == tokVar:
		vb.Vars = []string{p.next().text}
		single = true
	case p.isPunct("("):
		p.pos++
		for p.cur().kind == tokVar {
			vb.Vars = append(vb.Vars, p.next().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if len(vb.Vars) == 0 {
			return nil, p.errf("VALUES requires at least one variable")
		}
	default:
		return nil, p.errf("expected variable or '(' after VALUES")
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unexpected end of query in VALUES")
		}
		if single {
			term, err := p.valuesTerm()
			if err != nil {
				return nil, err
			}
			vb.Rows = append(vb.Rows, []rdf.Term{term})
			continue
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []rdf.Term
		for !p.isPunct(")") {
			term, err := p.valuesTerm()
			if err != nil {
				return nil, err
			}
			row = append(row, term)
		}
		p.pos++ // ')'
		if len(row) != len(vb.Vars) {
			return nil, p.errf("VALUES row has %d entries for %d variables", len(row), len(vb.Vars))
		}
		vb.Rows = append(vb.Rows, row)
	}
	p.pos++ // '}'
	return vb, nil
}

// valuesTerm parses one VALUES data entry (no variables allowed).
func (p *parser) valuesTerm() (rdf.Term, error) {
	if p.isKeyword("UNDEF") {
		p.pos++
		return rdf.Term{}, nil
	}
	tv, err := p.termOrVar(false)
	if err != nil {
		return rdf.Term{}, err
	}
	if tv.IsVar {
		return rdf.Term{}, p.errf("variables are not allowed inside VALUES data")
	}
	return tv.Term, nil
}

func (p *parser) skipDot() {
	if p.isPunct(".") {
		p.pos++
	}
}

// triplesBlock parses subject predicate object with ';' and ',' lists.
func (p *parser) triplesBlock(g *GroupPattern) error {
	subj, err := p.termOrVar(false)
	if err != nil {
		return err
	}
	for {
		pred, err := p.termOrVar(true)
		if err != nil {
			return err
		}
		for {
			obj, err := p.termOrVar(false)
			if err != nil {
				return err
			}
			g.Triples = append(g.Triples, TriplePattern{S: subj, P: pred, O: obj})
			if p.isPunct(",") {
				p.pos++
				continue
			}
			break
		}
		if p.isPunct(";") {
			p.pos++
			if p.isPunct(".") || p.isPunct("}") { // dangling semicolon
				break
			}
			continue
		}
		break
	}
	p.skipDot()
	return nil
}

// termOrVar parses one triple-pattern position.
func (p *parser) termOrVar(isPredicate bool) (TermOrVar, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.pos++
		return V(t.text), nil
	case tokIRI:
		p.pos++
		return T(rdf.NewIRI(t.text)), nil
	case tokA:
		if !isPredicate {
			return TermOrVar{}, p.errf("'a' is only valid as a predicate")
		}
		p.pos++
		return T(rdf.TypeIRI), nil
	case tokPrefixedName:
		iri, err := p.expandPrefixed(t.text)
		if err != nil {
			return TermOrVar{}, err
		}
		p.pos++
		return T(rdf.NewIRI(iri)), nil
	case tokLiteral:
		if isPredicate {
			return TermOrVar{}, p.errf("literal cannot be a predicate")
		}
		p.pos++
		return T(p.literalTerm(t)), nil
	case tokNumber:
		if isPredicate {
			return TermOrVar{}, p.errf("number cannot be a predicate")
		}
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			return T(rdf.NewTypedLiteral(t.text, rdf.XSDDouble)), nil
		}
		return T(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	case tokBlank:
		if isPredicate {
			return TermOrVar{}, p.errf("blank node cannot be a predicate")
		}
		p.pos++
		return T(rdf.NewBlank(t.text)), nil
	case tokKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			p.pos++
			return T(rdf.NewTypedLiteral(strings.ToLower(t.text), rdf.XSDBoolean)), nil
		}
	}
	return TermOrVar{}, p.errf("expected term or variable, found %q", t.text)
}

func (p *parser) literalTerm(t token) rdf.Term {
	switch {
	case t.lang != "":
		return rdf.NewLangLiteral(t.text, t.lang)
	case t.dt != "":
		dt := t.dt
		if !strings.Contains(dt, "://") {
			if exp, err := p.expandPrefixed(dt); err == nil {
				dt = exp
			}
		}
		return rdf.NewTypedLiteral(t.text, dt)
	default:
		return rdf.NewLiteral(t.text)
	}
}

func (p *parser) expandPrefixed(name string) (string, error) {
	i := strings.IndexByte(name, ':')
	if i < 0 {
		return "", p.errf("malformed prefixed name %q", name)
	}
	pfx, local := name[:i], name[i+1:]
	ns, ok := p.prefixes[pfx]
	if !ok {
		return "", p.errf("undeclared prefix %q", pfx)
	}
	return ns + local, nil
}

// --- expressions (precedence climbing: || < && < comparison < additive <
// multiplicative < unary) ---

func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.pos++
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		p.pos++
		right, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct {
		op := p.cur().text
		switch op {
		case "=", "!=", "<", ">", "<=", ">=":
			p.pos++
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		default:
			return left, nil
		}
	}
	return left, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.next().text
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.next().text
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.isPunct("!") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	if p.isPunct("-") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", Left: &NumExpr{Val: 0}, Right: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.pos++
		return &VarExpr{Name: t.text}, nil
	case tokNumber:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &NumExpr{Val: f}, nil
	case tokLiteral:
		p.pos++
		return &ConstExpr{Term: p.literalTerm(t)}, nil
	case tokIRI:
		p.pos++
		return &ConstExpr{Term: rdf.NewIRI(t.text)}, nil
	case tokPrefixedName:
		iri, err := p.expandPrefixed(t.text)
		if err != nil {
			return nil, err
		}
		p.pos++
		return &ConstExpr{Term: rdf.NewIRI(iri)}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		switch {
		case t.text == "TRUE":
			p.pos++
			return &BoolExpr{Val: true}, nil
		case t.text == "FALSE":
			p.pos++
			return &BoolExpr{Val: false}, nil
		case isAggKeyword(t.text):
			return p.aggExpr()
		case isBuiltinFunc(t.text):
			return p.funcExpr()
		}
	}
	return nil, p.errf("expected expression, found %q", t.text)
}

func isBuiltinFunc(kw string) bool {
	switch kw {
	case "BOUND", "STR", "LANG", "DATATYPE", "ISIRI", "ISURI",
		"ISLITERAL", "ISBLANK", "REGEX", "CONTAINS", "STRSTARTS", "STRENDS",
		"STRLEN", "UCASE", "LCASE", "STRBEFORE", "STRAFTER", "IF",
		"COALESCE", "SAMETERM", "ABS", "CEIL", "FLOOR", "ROUND":
		return true
	}
	return false
}

func (p *parser) aggExpr() (Expr, error) {
	op := p.next().text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := &AggExpr{Op: op}
	if p.isKeyword("DISTINCT") {
		agg.Distinct = true
		p.pos++
	}
	if p.isPunct("*") {
		if op != "COUNT" {
			return nil, p.errf("only COUNT accepts *")
		}
		agg.Star = true
		p.pos++
	} else {
		arg, err := p.expression()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	// GROUP_CONCAT(?x; SEPARATOR="...") — the separator clause.
	if p.isPunct(";") {
		if agg.Op != "GROUP_CONCAT" {
			return nil, p.errf("';' inside aggregate is only valid in GROUP_CONCAT")
		}
		p.pos++
		if p.cur().kind != tokKeyword || p.cur().text != "SEPARATOR" {
			return nil, p.errf("expected SEPARATOR, found %q", p.cur().text)
		}
		p.pos++
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if p.cur().kind != tokLiteral {
			return nil, p.errf("expected string literal after SEPARATOR=")
		}
		agg.Separator = p.next().text
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *parser) funcExpr() (Expr, error) {
	name := p.next().text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &FuncExpr{Name: name}
	if !p.isPunct(")") {
		for {
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			fn.Args = append(fn.Args, arg)
			if p.isPunct(",") {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := checkArity(fn); err != nil {
		return nil, p.errf("%v", err)
	}
	return fn, nil
}

func checkArity(fn *FuncExpr) error {
	want := map[string][2]int{
		"BOUND": {1, 1}, "STR": {1, 1}, "LANG": {1, 1}, "DATATYPE": {1, 1},
		"ISIRI": {1, 1}, "ISURI": {1, 1}, "ISLITERAL": {1, 1}, "ISBLANK": {1, 1},
		"REGEX": {2, 3}, "CONTAINS": {2, 2}, "STRSTARTS": {2, 2}, "STRENDS": {2, 2},
		"STRLEN": {1, 1}, "UCASE": {1, 1}, "LCASE": {1, 1},
		"STRBEFORE": {2, 2}, "STRAFTER": {2, 2}, "IF": {3, 3},
		"COALESCE": {1, 16}, "SAMETERM": {2, 2},
		"ABS": {1, 1}, "CEIL": {1, 1}, "FLOOR": {1, 1}, "ROUND": {1, 1},
	}
	lim, ok := want[fn.Name]
	if !ok {
		return fmt.Errorf("unknown function %s", fn.Name)
	}
	if len(fn.Args) < lim[0] || len(fn.Args) > lim[1] {
		return fmt.Errorf("%s expects %d..%d arguments, got %d", fn.Name, lim[0], lim[1], len(fn.Args))
	}
	return nil
}
