package sparql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// Solution is one variable binding row.
type Solution map[string]rdf.Term

// clone copies the solution.
func (s Solution) clone() Solution {
	out := make(Solution, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Result is the outcome of executing a query: the projected variable names
// in order and the solution rows. For ASK queries, Ask holds the answer
// and Rows is empty.
type Result struct {
	Vars    []string
	Rows    []Solution
	Ask     bool
	AskTrue bool
}

// Engine executes parsed queries against a store. This is the "Virtuoso
// SPARQL" path of Figure 3/4: correct on the whole subset, but — unlike
// the decomposer — it still evaluates the query's join structure, so heavy
// expansion queries pay for their intermediate results.
//
// By default execution runs in ID space (see idexec.go): rows are compact
// []rdf.ID slot vectors flowing through a streaming pattern-join pipeline,
// and IDs decode to terms only at projection. The historical map-based
// evaluator below is kept behind UseLegacy as the differential-testing
// oracle; it materializes a map[string]rdf.Term per row per join step
// ("a complex join with hundreds of millions of tuples as an intermediate
// result, which delays the response").
type Engine struct {
	st *store.Store
	// MaxIntermediate bounds the intermediate result size (0 = unlimited);
	// exceeding it aborts with ErrTooLarge to protect the endpoint. When
	// set, BGP execution stays serial so the per-stage counts it guards
	// are deterministic.
	MaxIntermediate int
	// DisablePlanner turns off join ordering entirely (for the planner
	// ablation bench). Equivalent to Planner = PlannerOff.
	DisablePlanner bool
	// Planner selects the join-ordering strategy. The zero value is the
	// cost-based dynamic-programming orderer (PlannerDP); PlannerGreedy
	// restores the previous greedy ordering; PlannerOff evaluates patterns
	// in query order.
	Planner PlannerMode
	// DisableLeapfrog turns off the multiway sorted-merge intersection
	// operator, forcing cascaded binary joins (for the join bench's
	// ablation arm).
	DisableLeapfrog bool
	// UseLegacy routes execution through the map-based evaluator instead
	// of the ID-space streaming executor. Both must return identical row
	// sets; the legacy path exists as the oracle for differential tests
	// and as the baseline for BenchmarkQueryEngine.
	UseLegacy bool
	// Workers sizes the worker pool that the streaming executor fans a
	// BGP's root-pattern candidate rows across (snapshot reads are
	// lock-free, so workers share nothing but immutable data). 0 means
	// GOMAXPROCS; 1 forces serial execution. Results — including row
	// order — are identical at every setting.
	Workers int
}

// ErrTooLarge is returned when an intermediate result exceeds the
// engine's configured bound.
var ErrTooLarge = errors.New("sparql: intermediate result exceeds configured bound")

// NewEngine returns an engine over st.
func NewEngine(st *store.Store) *Engine { return &Engine{st: st} }

// Store returns the underlying store.
func (e *Engine) Store() *store.Store { return e.st }

// Query parses and executes src.
func (e *Engine) Query(ctx context.Context, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, q)
}

// Execute runs a parsed query on the ID-space streaming executor, or on
// the legacy map-based evaluator when UseLegacy is set.
func (e *Engine) Execute(ctx context.Context, q *Query) (*Result, error) {
	if e.UseLegacy {
		return e.executeLegacy(ctx, q)
	}
	return e.executeStream(ctx, q)
}

// executeLegacy is the map-based evaluation path (the differential-test
// oracle). Like the streaming path it binds one store snapshot for the
// whole execution, so both paths answer from the same frozen view.
func (e *Engine) executeLegacy(ctx context.Context, q *Query) (*Result, error) {
	return e.executeLegacyOn(ctx, q, e.st.Snapshot())
}

func (e *Engine) executeLegacyOn(ctx context.Context, q *Query, snap *store.Snapshot) (*Result, error) {
	rows, err := e.evalGroup(ctx, q.Where, snap)
	if err != nil {
		return nil, err
	}
	if q.Ask {
		return &Result{Ask: true, AskTrue: len(rows) > 0}, nil
	}
	return e.finish(q, rows)
}

// finish applies grouping, projection, distinct, order and slice.
func (e *Engine) finish(q *Query, rows []Solution) (*Result, error) {
	var out []Solution
	var vars []string

	grouped := len(q.GroupBy) > 0 || q.HasAggregates()
	if grouped {
		groups := groupRows(rows, q.GroupBy)
		if len(q.Items) == 0 && !q.Star {
			return nil, fmt.Errorf("sparql: grouped query requires explicit projection")
		}
		for _, it := range q.Items {
			vars = append(vars, it.Var)
		}
		for _, g := range groups {
			// HAVING constraints.
			keep := true
			for _, h := range q.Having {
				b, ok := evalWithGroup(h, g.rows).AsBool()
				if !ok || !b {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			row := Solution{}
			for _, it := range q.Items {
				var v Value
				if it.Expr != nil {
					v = evalWithGroup(it.Expr, g.rows)
				} else {
					v = (&VarExpr{Name: it.Var}).Eval(first(g.rows))
				}
				if t, ok := valueToTerm(v); ok {
					row[it.Var] = t
				}
			}
			out = append(out, row)
		}
	} else {
		switch {
		case q.Star:
			seen := map[string]struct{}{}
			for _, r := range rows {
				for v := range r {
					if _, dup := seen[v]; !dup {
						seen[v] = struct{}{}
						vars = append(vars, v)
					}
				}
			}
			sort.Strings(vars)
			out = rows
		default:
			for _, it := range q.Items {
				vars = append(vars, it.Var)
			}
			out = make([]Solution, 0, len(rows))
			for _, r := range rows {
				row := Solution{}
				for _, it := range q.Items {
					if it.Expr != nil {
						if t, ok := valueToTerm(it.Expr.Eval(r)); ok {
							row[it.Var] = t
						}
					} else if t, ok := r[it.Var]; ok {
						row[it.Var] = t
					}
				}
				out = append(out, row)
			}
		}
	}

	if q.Distinct {
		out = dedupRows(out, vars)
	}
	if len(q.OrderBy) > 0 {
		sortRows(out, q.OrderBy)
	}
	out = SliceSolutions(out, q.Offset, q.Limit)
	return &Result{Vars: vars, Rows: out}, nil
}

// SortSolutions sorts rows in place by the ORDER BY keys using the
// engine's comparison semantics (numeric when both sides coerce, else
// lexical; unbound sorts first ascending). It is exported so result
// producers outside the engine — the decomposer's index-backed fast path —
// apply exactly the same ordering the generic evaluator would.
func SortSolutions(rows []Solution, keys []OrderKey) { sortRows(rows, keys) }

// SliceSolutions applies OFFSET/LIMIT solution modifiers (limit < 0 means
// unlimited).
func SliceSolutions(rows []Solution, offset, limit int) []Solution {
	if offset > 0 {
		if offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[offset:]
		}
	}
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}

func valueToTerm(v Value) (rdf.Term, bool) {
	switch v.Kind {
	case VTerm:
		return v.Term, true
	case VNum:
		s := trimFloat(v.Num)
		if strings.ContainsAny(s, ".eE") {
			return rdf.NewTypedLiteral(s, rdf.XSDDouble), true
		}
		return rdf.NewTypedLiteral(s, rdf.XSDInteger), true
	case VBool:
		if v.Bool {
			return rdf.NewTypedLiteral("true", rdf.XSDBoolean), true
		}
		return rdf.NewTypedLiteral("false", rdf.XSDBoolean), true
	case VStr:
		return rdf.NewLiteral(v.Str), true
	}
	return rdf.Term{}, false
}

func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

type group struct {
	key  string
	rows []Solution
}

func groupRows(rows []Solution, by []string) []group {
	if len(by) == 0 {
		if len(rows) == 0 {
			// Aggregates over an empty pattern still yield one group so
			// COUNT(*) returns 0.
			return []group{{rows: nil}}
		}
		return []group{{rows: rows}}
	}
	idx := map[string]int{}
	var out []group
	for _, r := range rows {
		var b strings.Builder
		for _, v := range by {
			if t, ok := r[v]; ok {
				b.WriteString(t.String())
			}
			b.WriteByte('\x00')
		}
		key := b.String()
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, group{key: key})
		}
		out[i].rows = append(out[i].rows, r)
	}
	return out
}

func dedupRows(rows []Solution, vars []string) []Solution {
	seen := map[string]struct{}{}
	out := rows[:0]
	for _, r := range rows {
		var b strings.Builder
		for _, v := range vars {
			if t, ok := r[v]; ok {
				b.WriteString(t.String())
			}
			b.WriteByte('\x00')
		}
		key := b.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, r)
	}
	return out
}

// cmpSolutionsOrder compares two solutions under the ORDER BY keys,
// returning -1/0/+1 with Desc already applied. It is the single source
// of ordering truth shared by the stable full sort and the bounded-heap
// top-k selection.
func cmpSolutionsOrder(a, b Solution, keys []OrderKey) int {
	for _, k := range keys {
		vi := k.Expr.Eval(a)
		vj := k.Expr.Eval(b)
		cmp, ok := compareValues(vi, vj)
		if !ok {
			// Unbound sorts first (ascending).
			switch {
			case vi.Kind == VUnbound && vj.Kind != VUnbound:
				cmp = -1
			case vi.Kind != VUnbound && vj.Kind == VUnbound:
				cmp = 1
			default:
				continue
			}
		}
		if cmp == 0 {
			continue
		}
		if k.Desc {
			return -cmp
		}
		return cmp
	}
	return 0
}

func sortRows(rows []Solution, keys []OrderKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		return cmpSolutionsOrder(rows[i], rows[j], keys) < 0
	})
}

// evalGroup evaluates a group graph pattern to a list of solutions, all
// reads going through the execution's bound snapshot.
func (e *Engine) evalGroup(ctx context.Context, g *GroupPattern, snap *store.Snapshot) ([]Solution, error) {
	rows := []Solution{{}}
	var err error

	// Subselects join first (they are usually the most selective part of
	// eLinda's generated queries).
	for _, sub := range g.SubSelects {
		subRes, serr := e.executeLegacyOn(ctx, sub, snap)
		if serr != nil {
			return nil, serr
		}
		rows, err = e.hashJoin(rows, subRes.Rows)
		if err != nil {
			return nil, err
		}
	}

	// Triple patterns: nested-loop joins with index-backed pattern lookup,
	// ordered by estimated selectivity.
	for _, tp := range e.planPatterns(snap, g.Triples) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sparql: %w", err)
		}
		rows, err = e.joinPattern(ctx, snap, rows, tp)
		if err != nil {
			return nil, err
		}
		if e.MaxIntermediate > 0 && len(rows) > e.MaxIntermediate {
			return nil, ErrTooLarge
		}
	}

	// VALUES blocks: compatibility join with the inline data. UNDEF
	// entries leave the variable unbound, so a plain hash join on shared
	// variables would be wrong — each inline row may bind a different
	// subset. VALUES tables are small; the pairwise product is fine.
	for _, vb := range g.Values {
		var inline []Solution
		for _, row := range vb.Rows {
			sol := Solution{}
			for i, v := range vb.Vars {
				if i < len(row) && !row[i].IsZero() {
					sol[v] = row[i]
				}
			}
			inline = append(inline, sol)
		}
		var joined []Solution
		for li, l := range rows {
			if li%cancelCheckInterval == cancelCheckInterval-1 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("sparql: %w", err)
				}
			}
			for _, r := range inline {
				if !compatible(l, r) {
					continue
				}
				m := l.clone()
				for k, v := range r {
					m[k] = v
				}
				joined = append(joined, m)
				if e.MaxIntermediate > 0 && len(joined) > e.MaxIntermediate {
					return nil, ErrTooLarge
				}
			}
		}
		rows = joined
	}

	// UNION branches.
	for _, branches := range g.Unions {
		var unionRows []Solution
		for _, br := range branches {
			brRows, berr := e.evalGroup(ctx, br, snap)
			if berr != nil {
				return nil, berr
			}
			unionRows = append(unionRows, brRows...)
		}
		rows, err = e.hashJoin(rows, unionRows)
		if err != nil {
			return nil, err
		}
	}

	// OPTIONAL: left joins.
	for _, opt := range g.Optionals {
		optRows, oerr := e.evalGroup(ctx, opt, snap)
		if oerr != nil {
			return nil, oerr
		}
		rows = leftJoin(rows, optRows)
	}

	// FILTER constraints.
	for _, f := range g.Filters {
		kept := rows[:0]
		for ri, r := range rows {
			if ri%cancelCheckInterval == cancelCheckInterval-1 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("sparql: %w", err)
				}
			}
			if b, ok := f.Eval(r).AsBool(); ok && b {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	return rows, nil
}

// joinPattern extends each solution with bindings from matching triples.
func (e *Engine) joinPattern(ctx context.Context, snap *store.Snapshot, rows []Solution, tp TriplePattern) ([]Solution, error) {
	d := snap.Dict()
	var out []Solution
	visits := 0
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sparql: %w", err)
		}
		sid, sOK, sBound := resolvePos(d, row, tp.S)
		pid, pOK, pBound := resolvePos(d, row, tp.P)
		oid, oOK, oBound := resolvePos(d, row, tp.O)
		if !sOK || !pOK || !oOK {
			// A bound term that is not in the dictionary matches nothing.
			continue
		}
		stop := false
		snap.Match(sid, pid, oid, func(tr rdf.EncodedTriple) bool {
			// A single pattern can scan a large share of the store, so the
			// per-row context check above is not enough for prompt
			// cancellation; re-check periodically inside the scan too.
			visits++
			if visits%cancelCheckInterval == 0 && ctx.Err() != nil {
				stop = true
				return false
			}
			sol := row.clone()
			if !sBound && tp.S.IsVar {
				sol[tp.S.Name] = d.Term(tr.S)
			}
			if !pBound && tp.P.IsVar {
				sol[tp.P.Name] = d.Term(tr.P)
			}
			if !oBound && tp.O.IsVar {
				sol[tp.O.Name] = d.Term(tr.O)
			}
			// Repeated variables within the pattern must agree.
			if !consistent(d, sol, tp, tr) {
				return true
			}
			out = append(out, sol)
			return true
		})
		if stop {
			return nil, fmt.Errorf("sparql: %w", ctx.Err())
		}
	}
	return out, nil
}

// resolvePos maps a pattern position to a concrete ID (or NoID wildcard).
// ok=false means the term cannot match anything in this store. bound
// reports whether the position was already fixed (term or bound variable).
func resolvePos(d *rdf.Dict, row Solution, tv TermOrVar) (id rdf.ID, ok, bound bool) {
	if tv.IsVar {
		if t, has := row[tv.Name]; has {
			id, found := d.Lookup(t)
			return id, found, true
		}
		return rdf.NoID, true, false
	}
	id, found := d.Lookup(tv.Term)
	return id, found, true
}

// consistent verifies repeated-variable constraints like ?x ?p ?x.
func consistent(d *rdf.Dict, sol Solution, tp TriplePattern, tr rdf.EncodedTriple) bool {
	check := func(tv TermOrVar, got rdf.ID) bool {
		if !tv.IsVar {
			return true
		}
		want, ok := sol[tv.Name]
		if !ok {
			return true
		}
		return want == d.Term(got)
	}
	return check(tp.S, tr.S) && check(tp.P, tr.P) && check(tp.O, tr.O)
}

// hashJoin joins two solution sets on their shared variables.
func (e *Engine) hashJoin(left, right []Solution) ([]Solution, error) {
	if len(left) == 1 && len(left[0]) == 0 {
		return right, nil
	}
	if len(right) == 0 || len(left) == 0 {
		return nil, nil
	}
	shared := sharedVars(left[0], right)
	if len(shared) == 0 {
		// Cross product.
		var out []Solution
		for _, l := range left {
			for _, r := range right {
				m := l.clone()
				for k, v := range r {
					m[k] = v
				}
				out = append(out, m)
				if e.MaxIntermediate > 0 && len(out) > e.MaxIntermediate {
					return nil, ErrTooLarge
				}
			}
		}
		return out, nil
	}
	index := map[string][]Solution{}
	for _, r := range right {
		index[joinKey(r, shared)] = append(index[joinKey(r, shared)], r)
	}
	var out []Solution
	for _, l := range left {
		for _, r := range index[joinKey(l, shared)] {
			if !compatible(l, r) {
				continue
			}
			m := l.clone()
			for k, v := range r {
				m[k] = v
			}
			out = append(out, m)
			if e.MaxIntermediate > 0 && len(out) > e.MaxIntermediate {
				return nil, ErrTooLarge
			}
		}
	}
	return out, nil
}

// leftJoin implements OPTIONAL semantics: keep every left row, extend with
// compatible right rows when any exist.
func leftJoin(left, right []Solution) []Solution {
	var out []Solution
	for _, l := range left {
		matched := false
		for _, r := range right {
			if compatible(l, r) {
				m := l.clone()
				for k, v := range r {
					m[k] = v
				}
				out = append(out, m)
				matched = true
			}
		}
		if !matched {
			out = append(out, l)
		}
	}
	return out
}

func compatible(a, b Solution) bool {
	for k, v := range a {
		if w, ok := b[k]; ok && w != v {
			return false
		}
	}
	return true
}

func sharedVars(sample Solution, right []Solution) []string {
	if len(right) == 0 {
		return nil
	}
	var shared []string
	for v := range sample {
		if _, ok := right[0][v]; ok {
			shared = append(shared, v)
		}
	}
	sort.Strings(shared)
	return shared
}

func joinKey(s Solution, vars []string) string {
	var b strings.Builder
	for _, v := range vars {
		if t, ok := s[v]; ok {
			b.WriteString(t.String())
		}
		b.WriteByte('\x00')
	}
	return b.String()
}
