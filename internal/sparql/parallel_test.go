package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// TestParallelBGPMatchesSerial: the parallel root-BGP fan-out must return
// exactly the serial executor's rows — including row order, since the
// per-worker outputs concatenate in chunk order. Reuses the PR 2 random
// query generator.
func TestParallelBGPMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	ctx := context.Background()
	for trial := 0; trial < 200; trial++ {
		st, _ := genDiffStore(r)
		serial := NewEngine(st)
		serial.Workers = 1
		parallel := NewEngine(st)
		parallel.Workers = 4
		q := genDiffQuery(r)

		resS, errS := serial.Execute(ctx, q)
		resP, errP := parallel.Execute(ctx, q)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("trial %d: error mismatch: serial=%v parallel=%v\nquery:\n%s", trial, errS, errP, q)
		}
		if errS != nil {
			continue
		}
		if q.Ask {
			if resS.AskTrue != resP.AskTrue {
				t.Fatalf("trial %d: ASK mismatch\nquery:\n%s", trial, q)
			}
			continue
		}
		if len(resS.Rows) != len(resP.Rows) {
			t.Fatalf("trial %d: row counts diverge: serial=%d parallel=%d\nquery:\n%s",
				trial, len(resS.Rows), len(resP.Rows), q)
		}
		// Order must match exactly, not just the row sets.
		for i := range resS.Rows {
			if fmt.Sprint(resS.Rows[i]) != fmt.Sprint(resP.Rows[i]) {
				t.Fatalf("trial %d: row %d differs: serial=%v parallel=%v\nquery:\n%s",
					trial, i, resS.Rows[i], resP.Rows[i], q)
			}
		}
	}
}

// TestParallelBGPLargeFanOut forces the parallel path past its row
// threshold on a join wide enough that every worker gets real work, and
// checks it against the serial result.
func TestParallelBGPLargeFanOut(t *testing.T) {
	st := store.New(8192)
	var ts []rdf.Triple
	for i := 0; i < 2000; i++ {
		inst := ex(fmt.Sprintf("i%d", i))
		ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: rdf.OWLThingIRI})
		ts = append(ts, rdf.Triple{S: inst, P: ex("p"), O: ex(fmt.Sprintf("o%d", i%37))})
		ts = append(ts, rdf.Triple{S: inst, P: ex("q"), O: ex(fmt.Sprintf("v%d", i%11))})
	}
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	src := `SELECT ?s ?o ?v WHERE { ?s a owl:Thing . ?s <http://example.org/p> ?o . ?s <http://example.org/q> ?v . }`
	serial := NewEngine(st)
	serial.Workers = 1
	parallel := NewEngine(st)
	parallel.Workers = 8
	rs, err := serial.Query(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.Query(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2000 || len(rp.Rows) != 2000 {
		t.Fatalf("row counts: serial=%d parallel=%d, want 2000", len(rs.Rows), len(rp.Rows))
	}
	for i := range rs.Rows {
		if fmt.Sprint(rs.Rows[i]) != fmt.Sprint(rp.Rows[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestSnapshotPathMatchesLiveStorePath is the snapshot/live differential
// of the issue: a store whose recent writes sit in the sorted delta
// overlay (individual Adds, not yet compacted) must answer every random
// query identically to a store bulk-built to the same contents whose
// snapshot is fully columnar. Reuses the PR 2 random query generator.
func TestSnapshotPathMatchesLiveStorePath(t *testing.T) {
	r := rand.New(rand.NewSource(307))
	ctx := context.Background()
	for trial := 0; trial < 200; trial++ {
		delta, triples := genDiffStore(r) // built via Add: delta overlay populated
		bulk := store.New(len(triples))
		if _, err := bulk.Load(triples); err != nil { // sort-once columnar build
			t.Fatal(err)
		}
		eDelta := NewEngine(delta)
		eBulk := NewEngine(bulk)
		q := genDiffQuery(r)

		resD, errD := eDelta.Execute(ctx, q)
		resB, errB := eBulk.Execute(ctx, q)
		if (errD == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch: delta=%v bulk=%v\nquery:\n%s", trial, errD, errB, q)
		}
		if errD != nil {
			continue
		}
		if q.Ask {
			if resD.AskTrue != resB.AskTrue {
				t.Fatalf("trial %d: ASK mismatch\nquery:\n%s", trial, q)
			}
			continue
		}
		if !sameSolutions(resD.Rows, resB.Rows) {
			t.Fatalf("trial %d: delta-overlay and bulk-built stores diverge (%d vs %d rows)\nquery:\n%s",
				trial, len(resD.Rows), len(resB.Rows), q)
		}
	}
}

// TestQueriesConcurrentWithWrites runs snapshot-bound queries while the
// store absorbs Adds and Loads; under -race (make check) this is the
// engine-level snapshot race test. Every query must see a consistent KB:
// the two patterns always join on the same frozen view, so the result
// size equals the snapshot's class cardinality even mid-load.
func TestQueriesConcurrentWithWrites(t *testing.T) {
	st := store.New(4096)
	seed := make([]rdf.Triple, 0, 200)
	for i := 0; i < 100; i++ {
		inst := ex(fmt.Sprintf("seed%d", i))
		seed = append(seed,
			rdf.Triple{S: inst, P: rdf.TypeIRI, O: ex("C")},
			rdf.Triple{S: inst, P: ex("p"), O: ex(fmt.Sprintf("v%d", i))})
	}
	if _, err := st.Load(seed); err != nil {
		t.Fatal(err)
	}
	src := `SELECT ?s ?v WHERE { ?s a <http://example.org/C> . ?s <http://example.org/p> ?v . }`
	e := NewEngine(st)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Snapshot()
				res, err := e.Query(context.Background(), src)
				if err != nil {
					t.Errorf("query failed mid-write: %v", err)
					return
				}
				// The engine's snapshot is at least as new as ours; both
				// stay internally consistent, so the row count can only
				// grow and never exceeds the live class size.
				min := len(snap.SubjectsOfType(mustID(t, snap.Dict(), ex("C"))))
				if len(res.Rows) < min {
					t.Errorf("query saw %d rows, below its snapshot floor %d", len(res.Rows), min)
					return
				}
			}
		}()
	}
	for i := 0; i < 400; i++ {
		inst := ex(fmt.Sprintf("w%d", i))
		if i%20 == 0 {
			st.Load([]rdf.Triple{
				{S: inst, P: rdf.TypeIRI, O: ex("C")},
				{S: inst, P: ex("p"), O: ex(fmt.Sprintf("bulk%d", i))},
			})
		} else {
			// p before type: views are totally ordered, so any snapshot
			// holding the type triple also holds the p triple and the
			// row-count floor below stays valid.
			st.Add(rdf.Triple{S: inst, P: ex("p"), O: ex(fmt.Sprintf("live%d", i))})
			st.Add(rdf.Triple{S: inst, P: rdf.TypeIRI, O: ex("C")})
		}
	}
	close(stop)
	wg.Wait()
}

func mustID(t *testing.T, d *rdf.Dict, term rdf.Term) rdf.ID {
	t.Helper()
	id, ok := d.Lookup(term)
	if !ok {
		t.Fatalf("term %v not interned", term)
	}
	return id
}
