package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// TestLexerNeverPanics feeds random byte strings to the lexer; it may
// reject them but must not panic (failure-injection robustness).
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("lexer panicked on %q: %v", src, r)
			}
		}()
		lex(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics feeds semi-structured garbage to the full parser.
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"SELECT", "?s", "?p", "WHERE", "{", "}", "(", ")", "a", "owl:Thing",
		"FILTER", "OPTIONAL", "UNION", "GROUP", "BY", "COUNT", "AS", ".",
		";", ",", "<http://x>", `"lit"`, "42", "*", "=", "<", "LIMIT",
	}
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		n := r.Intn(20)
		src := ""
		for j := 0; j < n; j++ {
			src += fragments[r.Intn(len(fragments))] + " "
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("parser panicked on %q: %v", src, rec)
				}
			}()
			Parse(src)
		}()
	}
}

// referenceMatch is a brute-force single-pattern evaluator used as the
// ground truth for the engine's BGP evaluation.
func referenceMatch(triples []rdf.Triple, tp TriplePattern) []Solution {
	var out []Solution
	for _, tr := range triples {
		sol := Solution{}
		ok := true
		bind := func(tv TermOrVar, val rdf.Term) {
			if !ok {
				return
			}
			if tv.IsVar {
				if prev, bound := sol[tv.Name]; bound && prev != val {
					ok = false
					return
				}
				sol[tv.Name] = val
				return
			}
			if tv.Term != val {
				ok = false
			}
		}
		bind(tp.S, tr.S)
		bind(tp.P, tr.P)
		bind(tp.O, tr.O)
		if ok {
			out = append(out, sol)
		}
	}
	return out
}

// TestEngineMatchesReferenceSinglePattern fuzzes single-pattern queries
// against the brute-force evaluator.
func TestEngineMatchesReferenceSinglePattern(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		st := store.New(64)
		var triples []rdf.Triple
		for i := 0; i < 30+r.Intn(40); i++ {
			tr := rdf.Triple{
				S: ex(fmt.Sprintf("s%d", r.Intn(8))),
				P: ex(fmt.Sprintf("p%d", r.Intn(4))),
				O: ex(fmt.Sprintf("o%d", r.Intn(8))),
			}
			if st.ContainsTriple(tr) {
				continue
			}
			st.Add(tr)
			triples = append(triples, tr)
		}
		e := NewEngine(st)

		// Random pattern: each position is a var or a known constant.
		pos := func(varName, pool string, n int) TermOrVar {
			if r.Intn(2) == 0 {
				return V(varName)
			}
			return T(ex(fmt.Sprintf("%s%d", pool, r.Intn(n))))
		}
		tp := TriplePattern{S: pos("a", "s", 8), P: pos("b", "p", 4), O: pos("c", "o", 8)}
		// Possibly force a repeated variable (?a ?b ?a).
		if tp.S.IsVar && tp.O.IsVar && r.Intn(3) == 0 {
			tp.O = V(tp.S.Name)
		}

		q := &Query{
			Star:  true,
			Where: &GroupPattern{Triples: []TriplePattern{tp}},
			Limit: -1,
		}
		got, err := e.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceMatch(triples, tp)
		if !sameSolutions(got.Rows, want) {
			t.Fatalf("trial %d: engine disagrees with reference for %v\n got %v\nwant %v",
				trial, tp, got.Rows, want)
		}
	}
}

func sameSolutions(a, b []Solution) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(s Solution) string {
		var names []string
		for k := range s {
			names = append(names, k)
		}
		sort.Strings(names)
		out := ""
		for _, k := range names {
			out += k + "=" + s[k].String() + ";"
		}
		return out
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
	}
	for i := range b {
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}

// TestValueCoercionProperties checks algebraic properties of the Value
// coercions with testing/quick.
func TestValueCoercionProperties(t *testing.T) {
	// Numeric literals round-trip through AsNumber.
	f := func(n int32) bool {
		v := TermValue(rdf.NewTypedLiteral(fmt.Sprint(n), rdf.XSDInteger))
		got, ok := v.AsNumber()
		return ok && got == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Comparison is antisymmetric on numbers.
	g := func(a, b int16) bool {
		va, vb := NumValue(float64(a)), NumValue(float64(b))
		c1, ok1 := compareValues(va, vb)
		c2, ok2 := compareValues(vb, va)
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// EBV of the boolean literal matches its lexical form.
	for _, lex := range []string{"true", "false", "1", "0"} {
		v := TermValue(rdf.NewTypedLiteral(lex, rdf.XSDBoolean))
		got, ok := v.AsBool()
		want := lex == "true" || lex == "1"
		if !ok || got != want {
			t.Errorf("EBV(%q) = (%v,%v)", lex, got, ok)
		}
	}
}
