package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// plannerFixture: one selective pattern (?s a Rare) and one broad
// (?s knows ?o). Unplanned order (broad first) materializes everything.
func plannerFixture(t testing.TB) *Engine {
	st := store.New(4096)
	var ts []rdf.Triple
	for i := 0; i < 1000; i++ {
		inst := ex(fmt.Sprintf("i%d", i))
		ts = append(ts, rdf.Triple{S: inst, P: ex("knows"), O: ex(fmt.Sprintf("i%d", (i+1)%1000))})
		if i < 3 {
			ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: ex("Rare")})
		}
	}
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	return NewEngine(st)
}

func TestPlannerOrdersBySelectivity(t *testing.T) {
	e := plannerFixture(t)
	tps := []TriplePattern{
		{S: V("s"), P: T(ex("knows")), O: V("o")},        // 1000 matches
		{S: V("s"), P: T(rdf.TypeIRI), O: T(ex("Rare"))}, // 3 matches
	}
	planned := e.planPatterns(e.st.Snapshot(), tps)
	if planned[0].P.Term != rdf.TypeIRI {
		t.Errorf("selective pattern not first: %v", planned[0])
	}
}

func TestPlannerPrefersConnectedPatterns(t *testing.T) {
	e := plannerFixture(t)
	// Three patterns; the unconnected one (?x ?y ?z over a different var
	// set) must come last even if mid-cheap.
	tps := []TriplePattern{
		{S: V("x"), P: T(ex("knows")), O: V("y")},
		{S: V("s"), P: T(rdf.TypeIRI), O: T(ex("Rare"))},
		{S: V("s"), P: T(ex("knows")), O: V("o")},
	}
	planned := e.planPatterns(e.st.Snapshot(), tps)
	if planned[0].P.Term != rdf.TypeIRI {
		t.Fatalf("plan[0] = %v", planned[0])
	}
	// plan[1] must share ?s with plan[0].
	if !planned[1].S.IsVar || planned[1].S.Name != "s" {
		t.Errorf("plan[1] not connected: %v", planned[1])
	}
}

func TestPlannerSameResultsAsUnplanned(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		st := store.New(256)
		for i := 0; i < 200; i++ {
			st.Add(rdf.Triple{
				S: ex(fmt.Sprintf("s%d", r.Intn(20))),
				P: ex(fmt.Sprintf("p%d", r.Intn(5))),
				O: ex(fmt.Sprintf("o%d", r.Intn(20))),
			})
		}
		src := `SELECT ?a ?b WHERE {
  ?a <http://example.org/p0> ?x .
  ?x <http://example.org/p1> ?b .
  ?a <http://example.org/p2> ?y .
}`
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		planned := NewEngine(st)
		unplanned := NewEngine(st)
		unplanned.DisablePlanner = true
		r1, err := planned.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := unplanned.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolutions(r1.Rows, r2.Rows) {
			t.Fatalf("trial %d: planner changed results: %d vs %d rows", trial, len(r1.Rows), len(r2.Rows))
		}
	}
}

func TestPlannerUnknownConstantFirst(t *testing.T) {
	e := plannerFixture(t)
	tps := []TriplePattern{
		{S: V("s"), P: T(ex("knows")), O: V("o")},
		{S: V("s"), P: T(ex("neverSeen")), O: V("z")}, // estimate 0
	}
	planned := e.planPatterns(e.st.Snapshot(), tps)
	if planned[0].P.Term != ex("neverSeen") {
		t.Errorf("zero-cardinality pattern should lead: %v", planned[0])
	}
	// And the query short-circuits to empty.
	q := &Query{Star: true, Where: &GroupPattern{Triples: tps}, Limit: -1}
	res, err := e.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

// BenchmarkPlannerEffect quantifies the ordering win on the selective
// fixture (the planner ablation).
func BenchmarkPlannerEffect(b *testing.B) {
	e := plannerFixture(b)
	src := `SELECT ?s ?o WHERE {
  ?s <http://example.org/knows> ?o .
  ?s a <http://example.org/Rare> .
}`
	q, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Execute(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unplanned", func(b *testing.B) {
		e2 := NewEngine(e.Store())
		e2.DisablePlanner = true
		for i := 0; i < b.N; i++ {
			if _, err := e2.Execute(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
