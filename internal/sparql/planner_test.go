package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"elinda/internal/rdf"
	"elinda/internal/store"
)

// plannerFixture: one selective pattern (?s a Rare) and one broad
// (?s knows ?o). Unplanned order (broad first) materializes everything.
func plannerFixture(t testing.TB) *Engine {
	st := store.New(4096)
	var ts []rdf.Triple
	for i := 0; i < 1000; i++ {
		inst := ex(fmt.Sprintf("i%d", i))
		ts = append(ts, rdf.Triple{S: inst, P: ex("knows"), O: ex(fmt.Sprintf("i%d", (i+1)%1000))})
		if i < 3 {
			ts = append(ts, rdf.Triple{S: inst, P: rdf.TypeIRI, O: ex("Rare")})
		}
	}
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	return NewEngine(st)
}

func TestPlannerOrdersBySelectivity(t *testing.T) {
	e := plannerFixture(t)
	tps := []TriplePattern{
		{S: V("s"), P: T(ex("knows")), O: V("o")},        // 1000 matches
		{S: V("s"), P: T(rdf.TypeIRI), O: T(ex("Rare"))}, // 3 matches
	}
	planned := e.planPatterns(e.st.Snapshot(), tps)
	if planned[0].P.Term != rdf.TypeIRI {
		t.Errorf("selective pattern not first: %v", planned[0])
	}
}

func TestPlannerPrefersConnectedPatterns(t *testing.T) {
	e := plannerFixture(t)
	// Three patterns; the unconnected one (?x ?y ?z over a different var
	// set) must come last even if mid-cheap.
	tps := []TriplePattern{
		{S: V("x"), P: T(ex("knows")), O: V("y")},
		{S: V("s"), P: T(rdf.TypeIRI), O: T(ex("Rare"))},
		{S: V("s"), P: T(ex("knows")), O: V("o")},
	}
	planned := e.planPatterns(e.st.Snapshot(), tps)
	if planned[0].P.Term != rdf.TypeIRI {
		t.Fatalf("plan[0] = %v", planned[0])
	}
	// plan[1] must share ?s with plan[0].
	if !planned[1].S.IsVar || planned[1].S.Name != "s" {
		t.Errorf("plan[1] not connected: %v", planned[1])
	}
}

func TestPlannerSameResultsAsUnplanned(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		st := store.New(256)
		for i := 0; i < 200; i++ {
			st.Add(rdf.Triple{
				S: ex(fmt.Sprintf("s%d", r.Intn(20))),
				P: ex(fmt.Sprintf("p%d", r.Intn(5))),
				O: ex(fmt.Sprintf("o%d", r.Intn(20))),
			})
		}
		src := `SELECT ?a ?b WHERE {
  ?a <http://example.org/p0> ?x .
  ?x <http://example.org/p1> ?b .
  ?a <http://example.org/p2> ?y .
}`
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		planned := NewEngine(st)
		unplanned := NewEngine(st)
		unplanned.DisablePlanner = true
		r1, err := planned.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := unplanned.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolutions(r1.Rows, r2.Rows) {
			t.Fatalf("trial %d: planner changed results: %d vs %d rows", trial, len(r1.Rows), len(r2.Rows))
		}
	}
}

func TestPlannerUnknownConstantFirst(t *testing.T) {
	e := plannerFixture(t)
	tps := []TriplePattern{
		{S: V("s"), P: T(ex("knows")), O: V("o")},
		{S: V("s"), P: T(ex("neverSeen")), O: V("z")}, // estimate 0
	}
	planned := e.planPatterns(e.st.Snapshot(), tps)
	if planned[0].P.Term != ex("neverSeen") {
		t.Errorf("zero-cardinality pattern should lead: %v", planned[0])
	}
	// And the query short-circuits to empty.
	q := &Query{Star: true, Where: &GroupPattern{Triples: tps}, Limit: -1}
	res, err := e.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

// crossProducts counts the plan positions that share no variable with
// everything planned before them (the forced cross products).
func crossProducts(tps []TriplePattern) int {
	bound := map[string]bool{}
	n := 0
	for i, tp := range tps {
		conn := false
		for _, tv := range []TermOrVar{tp.S, tp.P, tp.O} {
			if tv.IsVar && bound[tv.Name] {
				conn = true
			}
		}
		if i > 0 && !conn {
			n++
		}
		for _, tv := range []TermOrVar{tp.S, tp.P, tp.O} {
			if tv.IsVar {
				bound[tv.Name] = true
			}
		}
	}
	return n
}

// TestPlannerDisconnectedBGP: a BGP with two components must cross
// exactly once — each component is joined down before the product — in
// every planner mode, and the results must agree with the unplanned
// order.
func TestPlannerDisconnectedBGP(t *testing.T) {
	st := store.New(1024)
	var ts []rdf.Triple
	for i := 0; i < 50; i++ {
		ts = append(ts, rdf.Triple{S: ex(fmt.Sprintf("a%d", i)), P: ex("p1"), O: ex(fmt.Sprintf("b%d", i%7))})
		ts = append(ts, rdf.Triple{S: ex(fmt.Sprintf("b%d", i%7)), P: ex("p2"), O: ex(fmt.Sprintf("c%d", i%3))})
		if i < 4 {
			ts = append(ts, rdf.Triple{S: ex(fmt.Sprintf("x%d", i)), P: ex("p3"), O: ex(fmt.Sprintf("y%d", i))})
		}
	}
	if _, err := st.Load(ts); err != nil {
		t.Fatal(err)
	}
	tps := []TriplePattern{
		{S: V("a"), P: T(ex("p1")), O: V("b")},
		{S: V("x"), P: T(ex("p3")), O: V("y")},
		{S: V("b"), P: T(ex("p2")), O: V("c")},
	}
	for _, mode := range []PlannerMode{PlannerDP, PlannerGreedy} {
		e := NewEngine(st)
		e.Planner = mode
		planned := e.planPatterns(st.Snapshot(), tps)
		if got := crossProducts(planned); got != 1 {
			t.Errorf("mode %v: %d cross products in plan %v, want 1", mode, got, planned)
		}
		q := &Query{Star: true, Where: &GroupPattern{Triples: tps}, Limit: -1}
		res, err := e.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		off := NewEngine(st)
		off.DisablePlanner = true
		want, err := off.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolutions(res.Rows, want.Rows) {
			t.Errorf("mode %v: planner changed results: %d vs %d rows", mode, len(res.Rows), len(want.Rows))
		}
	}
}

// TestGreedyCrossProductBlowup pins the greedy fallback's choice when a
// cross product is forced: it must pick the component whose estimated
// blowup (own cardinality × best follow-up join selectivity) is
// smallest, not the component with the smallest raw cardinality.
func TestGreedyCrossProductBlowup(t *testing.T) {
	pat := func(name string, v string) TriplePattern {
		return TriplePattern{S: V(v), P: T(ex(name)), O: T(ex("o"))}
	}
	// Component A (vars v1): cheapRoot card 10, but its only join partner
	// joins almost unselectively (dv 2 over card 1000 → 500 rows/row).
	// Component B (vars v2): card 50 root with a perfectly selective
	// partner (dv 1000 over card 1000 → 1 row/row).
	infos := []patInfo{
		{tp: pat("lone", "v0"), card: 5, vars: 1 << 0, slot: [3]int{0, -1, -1}, dv: [3]float64{5}},
		{tp: pat("cheapRoot", "v1"), card: 10, vars: 1 << 1, slot: [3]int{1, -1, -1}, dv: [3]float64{10}},
		{tp: pat("cheapFollow", "v1"), card: 1000, vars: 1 << 1, slot: [3]int{1, -1, -1}, dv: [3]float64{2}},
		{tp: pat("wideRoot", "v2"), card: 50, vars: 1 << 2, slot: [3]int{2, -1, -1}, dv: [3]float64{50}},
		{tp: pat("wideFollow", "v2"), card: 1000, vars: 1 << 2, slot: [3]int{2, -1, -1}, dv: [3]float64{1000}},
	}
	steps := orderGreedy(infos)
	if steps[0].tp.P.Term != ex("lone") {
		t.Fatalf("steps[0] = %v, want the cheapest pattern", steps[0].tp)
	}
	// The first forced cross product: blowup(cheapRoot) = 10×500 = 5000,
	// blowup(wideRoot) = 50×1 = 50 → wideRoot must win despite 50 > 10.
	if steps[1].tp.P.Term != ex("wideRoot") {
		t.Errorf("fallback picked %v, want wideRoot (smallest estimated blowup)", steps[1].tp)
	}
}

// BenchmarkPlannerEffect quantifies the ordering win on the selective
// fixture (the planner ablation).
func BenchmarkPlannerEffect(b *testing.B) {
	e := plannerFixture(b)
	src := `SELECT ?s ?o WHERE {
  ?s <http://example.org/knows> ?o .
  ?s a <http://example.org/Rare> .
}`
	q, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Execute(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unplanned", func(b *testing.B) {
		e2 := NewEngine(e.Store())
		e2.DisablePlanner = true
		for i := 0; i < b.N; i++ {
			if _, err := e2.Execute(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
