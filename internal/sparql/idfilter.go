package sparql

// FILTER evaluation over ID rows. The general bridge decodes the
// variables an expression references into a term-level Solution — but
// most filters don't need that per row:
//
//   - sameTerm(?x, <const>) is exact term identity, and within one
//     execEnv term identity IS ID identity, so the filter is a single
//     integer compare per row with no decode at all.
//   - any filter referencing exactly one variable is a pure function of
//     that variable's term, so its verdict can be memoized per distinct
//     ID — each distinct value decodes and evaluates once, and every
//     further row with the same ID is a map probe.
//   - multi-variable filters still bridge, but through a reusable
//     slot-keyed scratch that only touches entries whose binding actually
//     changed, instead of clearing and rebuilding the map every row.
//
// Note sameTerm is the only shape where raw ID equality is the full
// semantics: the `=` operator value-compares (numerically, or on the
// STR() view), so "01"^^xsd:integer = "1"^^xsd:integer holds across
// different IDs. Single-variable `=` filters against constants therefore
// take the memo path, which preserves those coercions exactly.

import (
	"context"
	"fmt"

	"elinda/internal/rdf"
)

// scratchSol is a reusable term-level Solution keyed by slot: fill
// overwrites bindings in place and deletes only on a bound→unbound
// transition, eliminating the per-row map churn of clear-and-rebuild.
type scratchSol struct {
	sol  Solution
	refs []slotRef
	set  []bool // set[k]: refs[k].name is currently present in sol
}

func newScratchSol(refs []slotRef) *scratchSol {
	return &scratchSol{sol: make(Solution, len(refs)), refs: refs, set: make([]bool, len(refs))}
}

// fill syncs the scratch solution to row and returns it. The returned
// map is reused by the next call — callers must not retain it.
func (s *scratchSol) fill(row []rdf.ID, env *execEnv) Solution {
	for k, ref := range s.refs {
		if id := row[ref.slot]; id != rdf.NoID {
			s.sol[ref.name] = env.decode(id)
			s.set[k] = true
		} else if s.set[k] {
			delete(s.sol, ref.name)
			s.set[k] = false
		}
	}
	return s.sol
}

// sameTermConstFilter matches sameTerm(?x, const) / sameTerm(const, ?x)
// where ?x has a slot, returning the slot and the constant's ID under
// env. ok is false for every other shape (including a slotless variable,
// which the constant-filter path handles).
func sameTermConstFilter(f Expr, slots *slotTable, env *execEnv) (slot int, id rdf.ID, ok bool) {
	fe, isFunc := f.(*FuncExpr)
	if !isFunc || fe.Name != "SAMETERM" || len(fe.Args) != 2 {
		return 0, 0, false
	}
	varArg, constArg := fe.Args[0], fe.Args[1]
	if _, isVar := varArg.(*VarExpr); !isVar {
		varArg, constArg = constArg, varArg
	}
	v, isVar := varArg.(*VarExpr)
	c, isConst := constArg.(*ConstExpr)
	if !isVar || !isConst {
		return 0, 0, false
	}
	s, hasSlot := slots.lookup(v.Name)
	if !hasSlot {
		return 0, 0, false
	}
	return s, env.encode(c.Term), true
}

// applyFilterIDs filters rows by f, picking the cheapest exact strategy
// for the expression's shape (see the file comment).
func (e *Engine) applyFilterIDs(ctx context.Context, f Expr, rows *idRows, slots *slotTable, env *execEnv) (*idRows, error) {
	kept := newIDRows(rows.w)
	check := func(i int) error {
		if i%cancelCheckInterval == cancelCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sparql: %w", err)
			}
		}
		return nil
	}

	if slot, want, ok := sameTermConstFilter(f, slots, env); ok {
		// Term identity == ID identity under one execEnv; an unbound
		// slot is NoID, which no interned term's ID can equal — exactly
		// the legacy "sameTerm on unbound is not true" behavior.
		for i := 0; i < rows.n; i++ {
			if err := check(i); err != nil {
				return nil, err
			}
			if row := rows.row(i); row[slot] == want {
				kept.push(row)
			}
		}
		return kept, nil
	}

	refs := filterRefs(f, slots)
	switch len(refs) {
	case 0:
		// No bindable variables: the verdict is row-independent.
		if b, ok := f.Eval(Solution{}).AsBool(); ok && b {
			return rows, nil
		}
		return kept, nil
	case 1:
		ref := refs[0]
		verdict := make(map[rdf.ID]bool)
		scratch := make(Solution, 1)
		for i := 0; i < rows.n; i++ {
			if err := check(i); err != nil {
				return nil, err
			}
			row := rows.row(i)
			id := row[ref.slot]
			pass, seen := verdict[id]
			if !seen {
				if id != rdf.NoID {
					scratch[ref.name] = env.decode(id)
				} else {
					delete(scratch, ref.name)
				}
				b, ok := f.Eval(scratch).AsBool()
				pass = ok && b
				verdict[id] = pass
			}
			if pass {
				kept.push(row)
			}
		}
		return kept, nil
	}

	sc := newScratchSol(refs)
	for i := 0; i < rows.n; i++ {
		if err := check(i); err != nil {
			return nil, err
		}
		row := rows.row(i)
		if b, ok := f.Eval(sc.fill(row, env)).AsBool(); ok && b {
			kept.push(row)
		}
	}
	return kept, nil
}
