package sparql

import (
	"context"
	"fmt"
)

// Top-k solution selection for ORDER BY + LIMIT queries. The full-sort
// path costs O(n log n) comparisons — each one evaluating the ORDER BY
// expressions — even when the query only wants the first ten rows. When
// LIMIT is set (and OFFSET is small), a bounded max-heap of size
// offset+limit finds exactly the same prefix in O(n log k): every row is
// compared against the current worst kept row and usually discarded with
// a single comparison.
//
// Tie-breaking matters for equivalence: sortRows is a stable sort, so
// rows comparing equal keep their pre-sort order. The heap therefore
// breaks ties on the original row index, which makes TopKSolutions
// return byte-identical prefixes to sortRows-then-slice.

// topKMaxOffset bounds the OFFSET for which the heap path is used: a
// huge offset forces a huge heap, at which point the full sort wins.
const topKMaxOffset = 1 << 12

// topKBound reports whether the heap path applies to the query given the
// result size, and the number of leading rows to select (offset+limit).
func topKBound(q *Query, n int) (int, bool) {
	if len(q.OrderBy) == 0 || q.Limit < 0 || q.Offset < 0 || q.Offset > topKMaxOffset {
		return 0, false
	}
	k := q.Offset + q.Limit
	if k < 0 || k >= n { // overflow or no fewer rows than a full sort
		return 0, false
	}
	return k, true
}

// TopKSolutions returns the first k rows of the stable ORDER BY sort of
// rows — the exact prefix SortSolutions followed by rows[:k] would
// produce — without sorting the full slice. The input is not modified.
// The scan over rows polls ctx so a hung-up client stops paying for its
// ordering pass.
func TopKSolutions(ctx context.Context, rows []Solution, keys []OrderKey, k int) ([]Solution, error) {
	if k <= 0 {
		return nil, nil
	}
	if k >= len(rows) {
		out := append([]Solution(nil), rows...)
		sortRows(out, keys)
		return out, nil
	}
	// worse reports whether row i sorts strictly after row j, with the
	// original index as the stable-sort tiebreak.
	worse := func(i, j int) bool {
		if c := cmpSolutionsOrder(rows[i], rows[j], keys); c != 0 {
			return c > 0
		}
		return i > j
	}
	// Max-heap of the k best indices: the root is the worst kept row.
	h := make([]int, 0, k)
	siftUp := func(c int) {
		for c > 0 {
			p := (c - 1) / 2
			if !worse(h[c], h[p]) {
				break
			}
			h[c], h[p] = h[p], h[c]
			c = p
		}
	}
	siftDown := func() {
		p := 0
		//lint:ignore ctxloop bounded by heap depth, log2(k) iterations
		for {
			c := 2*p + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && worse(h[c+1], h[c]) {
				c++
			}
			if !worse(h[c], h[p]) {
				break
			}
			h[p], h[c] = h[c], h[p]
			p = c
		}
	}
	for i := range rows {
		if i%cancelCheckInterval == cancelCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sparql: %w", err)
			}
		}
		if len(h) < k {
			h = append(h, i)
			siftUp(len(h) - 1)
			continue
		}
		if worse(h[0], i) { // i beats the current worst: replace the root
			h[0] = i
			siftDown()
		}
	}
	// Pop from worst to best into the output, back to front.
	out := make([]Solution, len(h))
	for n := len(h) - 1; n >= 0; n-- {
		out[n] = rows[h[0]]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		siftDown()
	}
	return out, nil
}

// OrderAndSlice applies the query's ORDER BY, OFFSET and LIMIT solution
// modifiers with the engine's exact semantics, routing through the
// bounded-heap top-k selection when LIMIT makes it cheaper. Exported for
// result producers outside the engine (the decomposer's fast path, whose
// index-backed results are small enough that cancellation is handled at
// the serving tier instead).
func OrderAndSlice(rows []Solution, q *Query) []Solution {
	out, _ := applyOrderSlice(context.Background(), rows, q)
	return out
}

// applyOrderSlice applies ORDER BY, OFFSET and LIMIT, routing through the
// bounded heap when the query shape allows it.
func applyOrderSlice(ctx context.Context, rows []Solution, q *Query) ([]Solution, error) {
	if len(q.OrderBy) > 0 {
		if k, ok := topKBound(q, len(rows)); ok {
			var err error
			rows, err = TopKSolutions(ctx, rows, q.OrderBy, k)
			if err != nil {
				return nil, err
			}
		} else {
			sortRows(rows, q.OrderBy)
		}
	}
	return SliceSolutions(rows, q.Offset, q.Limit), nil
}
